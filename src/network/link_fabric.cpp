#include "network/link_fabric.hpp"

#include "sim/log.hpp"

namespace footprint {

namespace {

/**
 * Elements of size @p elem per 64-byte cache line, for group padding;
 * 1 (no padding) if the element size does not divide a line.
 */
std::size_t
alignUnits(std::size_t elem)
{
    return 64 % elem == 0 ? 64 / elem : 1;
}

std::size_t
roundUp(std::size_t n, std::size_t unit)
{
    return (n + unit - 1) / unit * unit;
}

/** Ring capacity: peak occupancy is maxRate sends per cycle for each
 * of the latency+1 cycles an entry can be in flight. */
std::size_t
ringCap(const LinkFabric::Spec& s)
{
    FP_ASSERT(s.latency >= 1 && s.maxRate >= 1,
              "link spec needs latency and maxRate >= 1");
    return FlitChannel::ceilPow2(
        static_cast<std::size_t>(s.maxRate)
        * (static_cast<std::size_t>(s.latency) + 1));
}

/**
 * Assign lane slots / ring offsets for one channel family, padding to
 * a cache line whenever the writer node changes. Returns the cursor
 * positions after the family (each rounded up to its line boundary so
 * the next region starts clean). Asserts the grouped-by-writer
 * precondition: a writer's channels must be adjacent.
 */
struct FamilyLayout
{
    std::vector<std::size_t> laneSlot;
    std::vector<std::size_t> ringOffset;
    std::vector<std::size_t> cap;
    std::size_t laneEnd = 0;
    std::size_t ringReadyEnd = 0;    ///< in ready-lane units
    std::size_t ringPayloadEnd = 0;  ///< in payload units
};

FamilyLayout
layoutFamily(const std::vector<LinkFabric::Spec>& specs,
             std::size_t lane_begin, std::size_t payload_align)
{
    constexpr std::size_t kLaneAlign = 64 / sizeof(std::int64_t);
    FamilyLayout out;
    out.laneSlot.reserve(specs.size());
    out.ringOffset.reserve(specs.size());
    out.cap.reserve(specs.size());

    std::vector<char> seen;
    std::size_t lane = roundUp(lane_begin, kLaneAlign);
    std::size_t ready = 0;    // ready/payload rings share offsets in
    std::size_t payload = 0;  // their own units; aligned separately
    int prev_writer = -1;
    for (const LinkFabric::Spec& s : specs) {
        FP_ASSERT(s.writerNode >= 0, "negative writer node");
        if (s.writerNode != prev_writer) {
            if (static_cast<std::size_t>(s.writerNode) >= seen.size())
                seen.resize(
                    static_cast<std::size_t>(s.writerNode) + 1, 0);
            FP_ASSERT(
                !seen[static_cast<std::size_t>(s.writerNode)],
                "link specs not grouped by writer node (node "
                    << s.writerNode << " split across groups)");
            seen[static_cast<std::size_t>(s.writerNode)] = 1;
            lane = roundUp(lane, kLaneAlign);
            ready = roundUp(ready, kLaneAlign);
            payload = roundUp(payload, payload_align);
            prev_writer = s.writerNode;
        }
        const std::size_t cap = ringCap(s);
        out.laneSlot.push_back(lane++);
        // Ready and payload rings use one offset stream: capacities
        // are powers of two >= 1 so a shared cursor stays aligned for
        // both lanes as long as we advance by the larger granularity.
        const std::size_t off = ready > payload ? ready : payload;
        out.ringOffset.push_back(off);
        out.cap.push_back(cap);
        ready = off + cap;
        payload = off + cap;
    }
    out.laneEnd = roundUp(lane, kLaneAlign);
    out.ringReadyEnd = roundUp(ready, kLaneAlign);
    out.ringPayloadEnd = roundUp(payload, payload_align);
    return out;
}

} // namespace

void
LinkFabric::build(const std::vector<Spec>& flit_specs,
                  const std::vector<Spec>& credit_specs)
{
    FP_ASSERT(flit_.empty() && credit_.empty(),
              "LinkFabric::build called twice");

    const FamilyLayout fl =
        layoutFamily(flit_specs, 0, alignUnits(sizeof(Flit)));
    const FamilyLayout cl = layoutFamily(
        credit_specs, fl.laneEnd, alignUnits(sizeof(Credit)));
    flitLaneEnd_ = fl.laneEnd;

    // Allocate every arena before binding anything: bound pipes hold
    // raw pointers into these lanes, so they must never reallocate.
    const std::size_t ring_end =
        fl.ringReadyEnd > fl.ringPayloadEnd ? fl.ringReadyEnd
                                            : fl.ringPayloadEnd;
    const std::size_t cring_end =
        cl.ringReadyEnd > cl.ringPayloadEnd ? cl.ringReadyEnd
                                            : cl.ringPayloadEnd;
    flitReady_.assign(ring_end, 0);
    flitPayload_.assign(ring_end, Flit{});
    creditReady_.assign(cring_end, 0);
    creditPayload_.assign(cring_end, Credit{});
    headReady_.assign(cl.laneEnd, FlitChannel::kNoArrival);
    sent_.assign(cl.laneEnd, 0);

    flitSlot_ = fl.laneSlot;
    creditSlot_ = cl.laneSlot;
    flitWriter_.reserve(flit_specs.size());
    creditWriter_.reserve(credit_specs.size());

    flit_.reserve(flit_specs.size());
    for (std::size_t i = 0; i < flit_specs.size(); ++i) {
        flitWriter_.push_back(flit_specs[i].writerNode);
        flit_.emplace_back(flit_specs[i].latency);
        flit_.back().bindLanes(flitReady_.data() + fl.ringOffset[i],
                               flitPayload_.data() + fl.ringOffset[i],
                               fl.cap[i],
                               headReady_.data() + fl.laneSlot[i],
                               sent_.data() + fl.laneSlot[i]);
    }
    credit_.reserve(credit_specs.size());
    for (std::size_t i = 0; i < credit_specs.size(); ++i) {
        creditWriter_.push_back(credit_specs[i].writerNode);
        credit_.emplace_back(credit_specs[i].latency);
        credit_.back().bindLanes(
            creditReady_.data() + cl.ringOffset[i],
            creditPayload_.data() + cl.ringOffset[i], cl.cap[i],
            headReady_.data() + cl.laneSlot[i],
            sent_.data() + cl.laneSlot[i]);
    }
}

} // namespace footprint
