#include "network/network.hpp"

#include "obs/telemetry.hpp"
#include "sim/log.hpp"

namespace footprint {

void
StatusBoard::init(int num_nodes)
{
    front_.assign(static_cast<std::size_t>(num_nodes), {});
    back_.assign(static_cast<std::size_t>(num_nodes), {});
}

void
StatusBoard::publish(int node, int port, int count)
{
    back_.at(static_cast<std::size_t>(node))
        .at(static_cast<std::size_t>(port)) = count;
}

void
StatusBoard::flip()
{
    front_.swap(back_);
}

int
StatusBoard::idleCount(int node, int port) const
{
    return front_.at(static_cast<std::size_t>(node))
        .at(static_cast<std::size_t>(port));
}

FlitChannel*
Network::newFlitChannel(int latency)
{
    flitChannels_.push_back(std::make_unique<FlitChannel>(latency));
    return flitChannels_.back().get();
}

CreditChannel*
Network::newCreditChannel(int latency)
{
    creditChannels_.push_back(std::make_unique<CreditChannel>(latency));
    return creditChannels_.back().get();
}

Network::Network(const SimConfig& cfg)
    : mesh_(static_cast<int>(cfg.getInt("mesh_width")),
            static_cast<int>(cfg.getInt("mesh_height")))
{
    params_.numVcs = static_cast<int>(cfg.getInt("num_vcs"));
    params_.vcBufSize = static_cast<int>(cfg.getInt("vc_buf_size"));
    params_.internalSpeedup =
        static_cast<int>(cfg.getInt("internal_speedup"));
    params_.outputFifoSize =
        static_cast<int>(cfg.getInt("output_fifo_size"));

    routing_ = makeRoutingAlgorithm(cfg.getStr("routing"), cfg);
    if (routing_->numEscapeVcs() >= params_.numVcs)
        fatal("routing algorithm needs more VCs than configured");

    const int n = mesh_.numNodes();
    const auto seed = static_cast<std::uint64_t>(cfg.getInt("seed"));
    const int link_latency = static_cast<int>(cfg.getInt("link_latency"));

    status_.init(n);
    nodeOutChannels_.resize(static_cast<std::size_t>(n));

    EndpointParams ep;
    ep.numVcs = params_.numVcs;
    ep.vcBufSize = params_.vcBufSize;
    ep.ejectionRate = static_cast<int>(cfg.getInt("ejection_rate"));
    ep.atomicVcAlloc = routing_->atomicVcAlloc();

    routers_.reserve(static_cast<std::size_t>(n));
    endpoints_.reserve(static_cast<std::size_t>(n));
    for (int node = 0; node < n; ++node) {
        routers_.push_back(std::make_unique<Router>(
            mesh_, node, params_, routing_.get(), seed, &status_));
        endpoints_.push_back(
            std::make_unique<Endpoint>(node, ep, seed));
    }

    // Inter-router links: for each node, wire East and North links (the
    // reverse directions are the neighbor's West/South ports).
    for (int node = 0; node < n; ++node) {
        for (Dir d : {Dir::East, Dir::North}) {
            if (!mesh_.hasNeighbor(node, d))
                continue;
            const int nbr = mesh_.neighbor(node, d);
            const Dir rd = opposite(d);

            // node --flits--> nbr and the credit return path.
            FlitChannel* f_fwd = newFlitChannel(link_latency);
            CreditChannel* c_fwd = newCreditChannel(link_latency);
            router(node).connectOutput(portOf(d), f_fwd, c_fwd);
            router(nbr).connectInput(portOf(rd), f_fwd, c_fwd);
            nodeOutChannels_[idx(node)].push_back(f_fwd);
            links_.push_back({LinkRecord::Kind::RouterToRouter, node,
                              portOf(d), nbr, portOf(rd), f_fwd, c_fwd});

            // nbr --flits--> node and its credit return path.
            FlitChannel* f_rev = newFlitChannel(link_latency);
            CreditChannel* c_rev = newCreditChannel(link_latency);
            router(nbr).connectOutput(portOf(rd), f_rev, c_rev);
            router(node).connectInput(portOf(d), f_rev, c_rev);
            nodeOutChannels_[idx(nbr)].push_back(f_rev);
            links_.push_back({LinkRecord::Kind::RouterToRouter, nbr,
                              portOf(rd), node, portOf(d), f_rev,
                              c_rev});

            router(node).setNeighbor(portOf(d), nbr);
            router(nbr).setNeighbor(portOf(rd), node);
        }
    }

    // Endpoint links on each router's local port.
    for (int node = 0; node < n; ++node) {
        FlitChannel* inj = newFlitChannel(link_latency);
        CreditChannel* inj_credit = newCreditChannel(link_latency);
        FlitChannel* ej = newFlitChannel(link_latency);
        CreditChannel* ej_credit = newCreditChannel(link_latency);

        router(node).connectInput(portOf(Dir::Local), inj, inj_credit);
        router(node).connectOutput(portOf(Dir::Local), ej, ej_credit);
        endpoint(node).connect(inj, inj_credit, ej, ej_credit);
        nodeOutChannels_[idx(node)].push_back(ej);
        links_.push_back({LinkRecord::Kind::EndpointToRouter, node, -1,
                          node, portOf(Dir::Local), inj, inj_credit});
        links_.push_back({LinkRecord::Kind::RouterToEndpoint, node,
                          portOf(Dir::Local), node, -1, ej, ej_credit});
    }
}

void
Network::step(std::int64_t cycle)
{
    const int n = mesh_.numNodes();
    for (int node = 0; node < n; ++node) {
        routers_[idx(node)]->receivePhase(cycle);
        endpoints_[idx(node)]->receivePhase(cycle);
    }
    for (int node = 0; node < n; ++node) {
        routers_[idx(node)]->computePhase(cycle);
        endpoints_[idx(node)]->computePhase(cycle);
    }
    for (int node = 0; node < n; ++node) {
        routers_[idx(node)]->transmitPhase(cycle);
        for (int port = 0; port < kNumPorts; ++port) {
            status_.publish(node, port,
                            routers_[idx(node)]->idleVcCount(port));
        }
    }
    status_.flip();
}

std::int64_t
Network::totalFlitsInFlight() const
{
    std::int64_t total = 0;
    for (const auto& r : routers_)
        total += r->totalBufferedFlits();
    for (const auto& e : endpoints_)
        total += e->sinkBufferedFlits();
    for (const auto& ch : flitChannels_)
        total += static_cast<std::int64_t>(ch->inFlightCount());
    return total;
}

Router::Counters
Network::aggregateCounters() const
{
    Router::Counters sum;
    for (const auto& r : routers_) {
        const Router::Counters& c = r->counters();
        sum.vcAllocSuccess += c.vcAllocSuccess;
        sum.vcAllocFail += c.vcAllocFail;
        sum.puritySum += c.puritySum;
        sum.puritySamples += c.puritySamples;
        sum.flitsTraversed += c.flitsTraversed;
    }
    return sum;
}

void
Network::resetCounters()
{
    for (auto& r : routers_)
        r->resetCounters();
}

std::uint64_t
Network::totalFlitsInjected() const
{
    std::uint64_t total = 0;
    for (const auto& e : endpoints_)
        total += e->flitsInjected();
    return total;
}

std::uint64_t
Network::totalFlitsEjected() const
{
    std::uint64_t total = 0;
    for (const auto& e : endpoints_)
        total += e->flitsEjected();
    return total;
}

std::uint64_t
Network::totalFlitsSent() const
{
    std::uint64_t total = 0;
    for (const auto& ch : flitChannels_)
        total += ch->sentCount();
    return total;
}

void
Network::attachTelemetry(TelemetryHub& hub)
{
    if (!hub.enabled())
        return;

    if (PacketTracer* tracer = hub.tracer()) {
        for (auto& r : routers_)
            r->setTracer(tracer);
        for (auto& e : endpoints_)
            e->setTracer(tracer);
    }
    if (!hub.samplingEnabled())
        return;

    const int n = mesh_.numNodes();

    // Network-wide aggregates.
    hub.addChannel("net.flits_in_flight", ChannelKind::Gauge,
                   [this] {
                       return static_cast<double>(totalFlitsInFlight());
                   });
    hub.addChannel("net.vc_occ", ChannelKind::Gauge, [this] {
        double total = 0.0;
        for (const auto& r : routers_)
            total += r->inputBufferedFlits();
        return total;
    });
    hub.addChannel("net.link_util", ChannelKind::Rate, [this] {
        return static_cast<double>(totalFlitsSent())
            / static_cast<double>(flitChannels_.size());
    });
    hub.addChannel("net.va_grants", ChannelKind::Counter, [this] {
        double total = 0.0;
        for (const auto& r : routers_)
            total += static_cast<double>(r->counters().vcAllocSuccess);
        return total;
    });
    hub.addChannel("net.va_stalls", ChannelKind::Counter, [this] {
        double total = 0.0;
        for (const auto& r : routers_)
            total += static_cast<double>(r->counters().vcAllocFail);
        return total;
    });
    hub.addChannel("net.fp_occ", ChannelKind::Gauge, [this] {
        double total = 0.0;
        for (const auto& r : routers_)
            total += r->occupiedOutVcs();
        return total;
    });
    hub.addChannel("net.inj_backlog", ChannelKind::Gauge, [this] {
        double total = 0.0;
        for (const auto& e : endpoints_)
            total += static_cast<double>(e->sourceBacklogFlits());
        return total;
    });

    if (!hub.config().perRouter)
        return;

    for (int node = 0; node < n; ++node) {
        const std::string r = "r" + std::to_string(node) + ".";
        Router* router = routers_[idx(node)].get();
        hub.addChannel(r + "vc_occ", ChannelKind::Gauge, [router] {
            return static_cast<double>(router->inputBufferedFlits());
        });
        hub.addChannel(r + "credits", ChannelKind::Gauge, [router] {
            return static_cast<double>(router->totalOutputCredits());
        });
        hub.addChannel(r + "fp_occ", ChannelKind::Gauge, [router] {
            return static_cast<double>(router->occupiedOutVcs());
        });
        hub.addChannel(r + "va_grants", ChannelKind::Counter, [router] {
            return static_cast<double>(
                router->counters().vcAllocSuccess);
        });
        hub.addChannel(r + "va_stalls", ChannelKind::Counter, [router] {
            return static_cast<double>(router->counters().vcAllocFail);
        });
        const auto& links = nodeOutChannels_[idx(node)];
        hub.addChannel(r + "link_util", ChannelKind::Rate, [&links] {
            double sent = 0.0;
            for (const FlitChannel* ch : links)
                sent += static_cast<double>(ch->sentCount());
            return sent / static_cast<double>(links.size());
        });

        const std::string e = "ep" + std::to_string(node) + ".";
        Endpoint* ep = endpoints_[idx(node)].get();
        hub.addChannel(e + "inj_q", ChannelKind::Gauge, [ep] {
            return static_cast<double>(ep->sourceBacklogFlits());
        });
    }
}

} // namespace footprint
