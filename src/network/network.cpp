#include "network/network.hpp"

#include <algorithm>
#include <bit>

#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "sim/log.hpp"

namespace footprint {

void
StatusBoard::init(int num_nodes)
{
    counts_.assign(static_cast<std::size_t>(num_nodes), {});
}

void
StatusBoard::publish(int node, int port, int count)
{
    counts_[static_cast<std::size_t>(node)]
           [static_cast<std::size_t>(port)] = count;
}

int
StatusBoard::idleCount(int node, int port) const
{
    return counts_[static_cast<std::size_t>(node)]
                  [static_cast<std::size_t>(port)];
}

Network::Network(const SimConfig& cfg)
    : topo_(Topology::fromConfig(cfg))
{
    params_.numVcs = static_cast<int>(cfg.getInt("num_vcs"));
    params_.vcBufSize = static_cast<int>(cfg.getInt("vc_buf_size"));
    params_.internalSpeedup =
        static_cast<int>(cfg.getInt("internal_speedup"));
    params_.outputFifoSize =
        static_cast<int>(cfg.getInt("output_fifo_size"));

    routing_ = makeRoutingAlgorithm(cfg.getStr("routing"), cfg);
    if (routing_->numEscapeVcs() >= params_.numVcs)
        fatal("routing algorithm needs more VCs than configured");
    if (topo_.hasWrap()) {
        // Wrapped topologies break deadlock cycles with dateline VC
        // classes, which only plain dimension-order routing honours;
        // the adaptive algorithms' escape/turn arguments assume an
        // acyclic mesh channel graph.
        if (routing_->name() != "dor") {
            std::string msg = "topology '";
            msg += topo_.kindName();
            msg += "' supports routing=dor only (dateline VC "
                   "deadlock avoidance); got routing=";
            msg += routing_->name();
            fatal(msg);
        }
        if (params_.numVcs < 2)
            fatal("torus/ring DOR needs num_vcs >= 2 for the two "
                  "dateline VC classes");
    }

    const std::string mode =
        cfg.contains("step_mode") ? cfg.getStr("step_mode") : "activity";
    if (mode == "activity")
        stepMode_ = StepMode::Activity;
    else if (mode == "full")
        stepMode_ = StepMode::Full;
    else if (mode == "verify")
        stepMode_ = StepMode::Verify;
    else if (mode == "sharded")
        stepMode_ = StepMode::Sharded;
    else {
        std::string msg = "unknown step_mode '";
        msg += mode;
        msg += "' (want activity, full, verify, or sharded)";
        fatal(msg);
    }

    threads_ = cfg.contains("threads")
        ? static_cast<int>(cfg.getInt("threads"))
        : 1;
    if (threads_ < 1)
        fatal("threads must be >= 1");
    const int shard_cfg = cfg.contains("shards")
        ? static_cast<int>(cfg.getInt("shards"))
        : 0;
    if (shard_cfg < 0)
        fatal("shards must be >= 0 (0 = one per thread)");

    const int n = topo_.numNodes();
    const auto seed = static_cast<std::uint64_t>(cfg.getInt("seed"));

    status_.init(n);
    nodeOutChannels_.resize(static_cast<std::size_t>(n));
    // One descriptor segment per source endpoint, created up front so
    // parallel phases never grow the segment table.
    pool_.initSegments(n);

    EndpointParams ep;
    ep.numVcs = params_.numVcs;
    ep.vcBufSize = params_.vcBufSize;
    ep.ejectionRate = static_cast<int>(cfg.getInt("ejection_rate"));
    ep.atomicVcAlloc = routing_->atomicVcAlloc();

    routers_.reserve(static_cast<std::size_t>(n));
    endpoints_.reserve(static_cast<std::size_t>(n));
    for (int node = 0; node < n; ++node) {
        routers_.push_back(std::make_unique<Router>(
            topo_, node, params_, routing_.get(), seed, &status_));
        endpoints_.push_back(
            std::make_unique<Endpoint>(node, ep, seed, &pool_));
        endpoints_.back()->setWakeHook(&active_, endpointComp(node));
        // Releases flush from the serial end-of-step epilogue in node
        // order in *every* step mode, so descriptor free lists — and
        // hence allocation sequences — are identical across modes and
        // thread counts.
        endpoints_.back()->setDeferReleases(true);
    }

    // --- Link enumeration (two-phase construction, DESIGN.md §17). ---
    // First enumerate every directed link without creating channels:
    // the plan order below is the historical links_ order (East/North
    // pairs per node, then the endpoint pair per node), which the
    // auditor, heatmap, and state dumps iterate. Channel *ids* are
    // then assigned grouped by writer node so the fabric can lay each
    // writer's lanes out contiguously.
    struct LinkPlan
    {
        LinkRecord::Kind kind;
        int srcNode;
        int srcPort;
        int dstNode;
        int dstPort;
    };
    std::vector<LinkPlan> plans;
    plans.reserve(static_cast<std::size_t>(6 * n));
    for (int node = 0; node < n; ++node) {
        for (Dir d : {Dir::East, Dir::North}) {
            if (!topo_.hasNeighbor(node, d))
                continue;
            const int nbr = topo_.neighbor(node, d);
            const Dir rd = opposite(d);
            plans.push_back({LinkRecord::Kind::RouterToRouter, node,
                             portOf(d), nbr, portOf(rd)});
            plans.push_back({LinkRecord::Kind::RouterToRouter, nbr,
                             portOf(rd), node, portOf(d)});
            router(node).setNeighbor(portOf(d), nbr);
            router(nbr).setNeighbor(portOf(rd), node);
        }
    }
    for (int node = 0; node < n; ++node) {
        plans.push_back({LinkRecord::Kind::EndpointToRouter, node, -1,
                         node, portOf(Dir::Local)});
        plans.push_back({LinkRecord::Kind::RouterToEndpoint, node,
                         portOf(Dir::Local), node, -1});
    }

    // Stable counting sort of plan index -> channel id: flit channels
    // are written by their srcNode (router transmit or endpoint
    // inject), credit channels by their dstNode (the flit receiver
    // returns credits).
    const std::size_t nl = plans.size();
    std::vector<std::size_t> flit_id(nl);
    std::vector<std::size_t> credit_id(nl);
    {
        std::vector<std::size_t> start(static_cast<std::size_t>(n) + 1,
                                       0);
        for (const LinkPlan& p : plans)
            ++start[idx(p.srcNode) + 1];
        for (std::size_t i = 1; i < start.size(); ++i)
            start[i] += start[i - 1];
        for (std::size_t i = 0; i < nl; ++i)
            flit_id[i] = start[idx(plans[i].srcNode)]++;
        start.assign(static_cast<std::size_t>(n) + 1, 0);
        for (const LinkPlan& p : plans)
            ++start[idx(p.dstNode) + 1];
        for (std::size_t i = 1; i < start.size(); ++i)
            start[i] += start[i - 1];
        for (std::size_t i = 0; i < nl; ++i)
            credit_id[i] = start[idx(plans[i].dstNode)]++;
    }

    // Ring capacity bound per writer: a flit link carries at most one
    // flit per cycle; a credit link carries up to internalSpeedup
    // credits per cycle when a router returns them (moveFlit) and up
    // to ejectionRate when the sink does.
    std::vector<LinkFabric::Spec> flit_specs(nl);
    std::vector<LinkFabric::Spec> credit_specs(nl);
    for (std::size_t i = 0; i < nl; ++i) {
        const LinkPlan& p = plans[i];
        // Per-dimension latencies come from the topology: a link's
        // dimension is its source-side direction (endpoint links are
        // Local). The credit channel shares its link's latency.
        const int link_latency = topo_.linkLatency(
            p.kind == LinkRecord::Kind::RouterToRouter
                ? dirOf(p.srcPort)
                : Dir::Local);
        flit_specs[flit_id[i]] = {p.srcNode, link_latency, 1};
        const int credit_rate =
            p.kind == LinkRecord::Kind::RouterToEndpoint
            ? ep.ejectionRate
            : params_.internalSpeedup;
        credit_specs[credit_id[i]] = {p.dstNode, link_latency,
                                      credit_rate};
    }
    fabric_.build(flit_specs, credit_specs);

    // Second phase: wire the fabric's pipes to routers and endpoints
    // in plan order. Endpoint wiring is gathered per node because
    // Endpoint::connect takes all four pipes at once.
    std::vector<std::array<void*, 4>> ep_wiring(
        static_cast<std::size_t>(n), {nullptr, nullptr, nullptr,
                                      nullptr});
    links_.reserve(nl);
    for (std::size_t i = 0; i < nl; ++i) {
        const LinkPlan& p = plans[i];
        FlitChannel* f = &fabric_.flit(flit_id[i]);
        CreditChannel* c = &fabric_.credit(credit_id[i]);
        switch (p.kind) {
        case LinkRecord::Kind::RouterToRouter:
            router(p.srcNode).connectOutput(p.srcPort, f, c);
            router(p.dstNode).connectInput(p.dstPort, f, c);
            nodeOutChannels_[idx(p.srcNode)].push_back(f);
            break;
        case LinkRecord::Kind::EndpointToRouter:
            router(p.dstNode).connectInput(p.dstPort, f, c);
            ep_wiring[idx(p.srcNode)][0] = f;
            ep_wiring[idx(p.srcNode)][1] = c;
            break;
        case LinkRecord::Kind::RouterToEndpoint:
            router(p.srcNode).connectOutput(p.srcPort, f, c);
            nodeOutChannels_[idx(p.srcNode)].push_back(f);
            ep_wiring[idx(p.dstNode)][2] = f;
            ep_wiring[idx(p.dstNode)][3] = c;
            break;
        }
        links_.push_back({p.kind, p.srcNode, p.srcPort, p.dstNode,
                          p.dstPort, f, c, flit_id[i], credit_id[i]});
    }
    for (int node = 0; node < n; ++node) {
        auto& w = ep_wiring[idx(node)];
        endpoint(node).connect(static_cast<FlitChannel*>(w[0]),
                               static_cast<CreditChannel*>(w[1]),
                               static_cast<FlitChannel*>(w[2]),
                               static_cast<CreditChannel*>(w[3]));
    }

    buildWakeGraph();
    if (stepMode_ == StepMode::Sharded) {
        const std::string policy = cfg.contains("shard_partition")
            ? cfg.getStr("shard_partition")
            : "weighted";
        buildShards(threads_, shard_cfg, policy);
    }
}

void
Network::buildShards(int threads, int shards,
                     const std::string& policy)
{
    const int n = topo_.numNodes();
    int num = shards == 0 ? threads : shards;
    if (num > n)
        num = n;
    // Partition the row-major node space into contiguous bands. Row-
    // major ids make a band a set of adjacent rows (plus partial rows
    // at the seams), so most links stay shard-internal. A shard owns
    // both the routers and the endpoints of its band: component ids
    // 2k/2k+1 keep each node's pair in one shard.
    //
    // Band boundaries (shard_partition key; deterministic from config
    // alone — results are bit-identical either way, only wall time
    // differs):
    //  - "nodes":    near-equal node counts (the historic split),
    //  - "weighted": near-equal per-node work estimates. Edge and
    //    corner routers have fewer connected ports, hence fewer
    //    channels to drain and arbitrate; the PR 6 profiler's
    //    per-shard busy times show interior bands running long under
    //    equal node counts. The static weight (2 + link degree)
    //    mirrors that measured imbalance without feeding timing back
    //    into partition selection.
    std::vector<int> begin(static_cast<std::size_t>(num) + 1, 0);
    begin[static_cast<std::size_t>(num)] = n;
    if (policy == "nodes" || num == 1) {
        for (int s = 1; s < num; ++s)
            begin[static_cast<std::size_t>(s)] = static_cast<int>(
                static_cast<std::int64_t>(s) * n / num);
    } else if (policy == "weighted") {
        std::vector<std::int64_t> pfx(static_cast<std::size_t>(n) + 1,
                                      0);
        for (int node = 0; node < n; ++node) {
            std::int64_t wgt = 2; // endpoint + router baseline
            for (Dir d :
                 {Dir::East, Dir::West, Dir::North, Dir::South}) {
                if (topo_.hasNeighbor(node, d))
                    ++wgt;
            }
            pfx[static_cast<std::size_t>(node) + 1] =
                pfx[static_cast<std::size_t>(node)] + wgt;
        }
        const std::int64_t total = pfx[static_cast<std::size_t>(n)];
        for (int s = 1; s < num; ++s) {
            const std::int64_t target = s * total / num;
            // First node whose prefix weight reaches the target,
            // clamped so every band keeps at least one node.
            int b = static_cast<int>(
                std::lower_bound(pfx.begin(), pfx.end(), target)
                - pfx.begin());
            b = std::max(b, begin[static_cast<std::size_t>(s - 1)] + 1);
            b = std::min(b, n - (num - s));
            begin[static_cast<std::size_t>(s)] = b;
        }
    } else {
        fatal("unknown shard_partition '" + policy
              + "' (want weighted or nodes)");
    }
    // Round interior boundaries to 32-node multiples — 64 components,
    // exactly one ActiveSet bitmap word — so concurrent drainRange
    // calls of neighboring shards never split a word (the fetch_and
    // boundary-word path) and never share a cache line. Skipped when
    // rounding would empty a band (tiny meshes / many shards).
    for (int s = 1; s < num; ++s) {
        const int b = begin[static_cast<std::size_t>(s)];
        const int r = (b / 32 + (b % 32 >= 16 ? 1 : 0)) * 32;
        if (r > begin[static_cast<std::size_t>(s - 1)]
            && r < begin[static_cast<std::size_t>(s) + 1]
            && r <= n - (num - s))
            begin[static_cast<std::size_t>(s)] = r;
    }
    shards_.resize(static_cast<std::size_t>(num));
    for (int s = 0; s < num; ++s) {
        const int nodeBegin = begin[static_cast<std::size_t>(s)];
        const int nodeEnd = begin[static_cast<std::size_t>(s) + 1];
        shards_[static_cast<std::size_t>(s)].compBegin = 2 * nodeBegin;
        shards_[static_cast<std::size_t>(s)].compEnd = 2 * nodeEnd;
        shards_[static_cast<std::size_t>(s)].active.reserve(
            static_cast<std::size_t>(2 * (nodeEnd - nodeBegin)));
    }
    shardChunks_ = threads < num ? threads : num;
    barrier_.reset(shardChunks_);
    // The calling thread is crew member 0; the pool carries the rest.
    if (shardChunks_ > 1)
        crew_ = std::make_unique<ThreadPool>(
            static_cast<unsigned>(shardChunks_ - 1));
}

void
Network::buildWakeGraph()
{
    const int comps = 2 * topo_.numNodes();
    active_.init(comps);
    for (const LinkRecord& l : links_) {
        int flit_src = -1;
        int flit_dst = -1;
        switch (l.kind) {
        case LinkRecord::Kind::RouterToRouter:
            flit_src = routerComp(l.srcNode);
            flit_dst = routerComp(l.dstNode);
            break;
        case LinkRecord::Kind::RouterToEndpoint:
            flit_src = routerComp(l.srcNode);
            flit_dst = endpointComp(l.dstNode);
            break;
        case LinkRecord::Kind::EndpointToRouter:
            flit_src = endpointComp(l.srcNode);
            flit_dst = routerComp(l.dstNode);
            break;
        }
        // Sending into a pipe wakes its receiver for the next cycle;
        // credits travel against the flit direction (the flit receiver
        // sends them, the flit sender consumes them).
        l.flit->setWakeHook(&active_, flit_dst);
        l.credit->setWakeHook(&active_, flit_src);
    }

    fullOrder_.resize(static_cast<std::size_t>(comps));
    for (int c = 0; c < comps; ++c)
        fullOrder_[static_cast<std::size_t>(c)] = c;
    verifyMark_.assign(static_cast<std::size_t>(comps), 0);
}

bool
Network::componentHasPendingWork(int comp) const
{
    const std::size_t node = idx(comp >> 1);
    return (comp & 1) ? endpoints_[node]->hasPendingWork()
                      : routers_[node]->hasPendingWork();
}

void
Network::phaseReceive(const std::vector<int>& comps,
                      std::int64_t cycle)
{
    for (const int c : comps) {
        if (c & 1)
            endpoints_[idx(c >> 1)]->receivePhase(cycle);
        else
            routers_[idx(c >> 1)]->receivePhase(cycle);
    }
}

void
Network::phaseCompute(const std::vector<int>& comps,
                      std::int64_t cycle)
{
    for (const int c : comps) {
        if (c & 1)
            endpoints_[idx(c >> 1)]->computePhase(cycle);
        else
            routers_[idx(c >> 1)]->computePhase(cycle);
    }
}

void
Network::phaseTransmit(const std::vector<int>& comps,
                       std::int64_t cycle)
{
    for (const int c : comps) {
        if (c & 1)
            continue;
        const int node = c >> 1;
        Router& r = *routers_[idx(node)];
        r.transmitPhase(cycle);
        // Publishes happen strictly after every compute-phase read of
        // the board this cycle, so readers always see last cycle's
        // values (the one-cycle status delay) without double
        // buffering. Only ports whose count may have changed are
        // republished — for skipped routers and clean ports the
        // board's stored value is already current.
        for (std::uint32_t m = r.takePublishMask(); m != 0;
             m &= m - 1) {
            const int port = std::countr_zero(m);
            status_.publish(node, port, r.idleVcCount(port));
        }
    }
}

void
Network::stepPhases(const std::vector<int>& comps, std::int64_t cycle)
{
    // Each phase is a barrier over the whole list, exactly as full
    // stepping runs them; comps is sorted, so the visit order within a
    // phase matches full stepping's node order too. Each scope is one
    // never-taken branch when no profiler is attached.
    {
        ProfileScope ps(profiler_, ProfPhase::Drain);
        phaseReceive(comps, cycle);
    }
    {
        ProfileScope ps(profiler_, ProfPhase::Compute);
        phaseCompute(comps, cycle);
    }
    {
        ProfileScope ps(profiler_, ProfPhase::Transmit);
        phaseTransmit(comps, cycle);
    }
}

void
Network::rescheduleAfterStep(const std::vector<int>& comps)
{
    // Wakes from sends were raised by the channel hooks as they
    // happened; all that remains is self-sustain: a component with
    // buffered flits, pending injection, or a non-empty incoming pipe
    // must run again next cycle (an incoming pipe stays non-empty
    // until its latency elapses, so the initial send-hook wake hands
    // off to this check for the rest of the window).
    for (const int c : comps) {
        if (componentHasPendingWork(c))
            active_.wake(c);
    }
}

void
Network::stepActivity(std::int64_t cycle, bool contiguous)
{
    // The first step (and any cycle jump) is a full step: it seeds the
    // status board and the wake graph from the complete state.
    if (!contiguous)
        active_.wakeAll();
    const std::vector<int>& act = active_.beginCycle();
    stepPhases(act, cycle);
    epilogue(act);
}

void
Network::epilogue(const std::vector<int>& comps)
{
    // Reschedule + descriptor flush/refill, attributed to the
    // epilogue phase when a profiler is attached.
    ProfileScope ps(profiler_, ProfPhase::Epilogue);
    rescheduleAfterStep(comps);
    finishComps(comps);
}

template <typename Fn>
void
Network::runShardPhase(Fn&& fn)
{
    // Phase bodies run inside try/catch so a panicking invariant
    // (FP_ASSERT -> InvariantError) cannot strand the other crew
    // members at a barrier: the throwing worker records the error,
    // everyone keeps arriving at the remaining barriers as no-ops, and
    // stepSharded rethrows after the join.
    if (shardFailed_.load(std::memory_order_relaxed))
        return;
    try {
        fn();
    } catch (...) {
        std::lock_guard<std::mutex> lock(shardErrMutex_);
        if (!shardError_)
            shardError_ = std::current_exception();
        shardFailed_.store(true, std::memory_order_relaxed);
    }
}

int
Network::chunkOf(std::size_t sBegin) const
{
    // Recover the parallelFor chunk index from its start shard: chunk
    // c covers [c*n/chunks, (c+1)*n/chunks), and chunks <= n keeps the
    // starts strictly increasing, so the match is unique. The loop is
    // over at most `threads` entries and runs once per worker per
    // profiled cycle — noise next to the phase work it labels.
    const std::size_t n = shards_.size();
    const auto chunks = static_cast<std::size_t>(shardChunks_);
    for (std::size_t c = 0; c < chunks; ++c) {
        if (c * n / chunks == sBegin)
            return static_cast<int>(c);
    }
    return 0;
}

void
Network::barrierArrive(int chunk)
{
    if (!profiler_) {
        barrier_.arriveAndWait();
        return;
    }
    const std::uint64_t t0 = Profiler::nowNs();
    barrier_.arriveAndWait();
    profiler_->recordBarrierWaitNs(chunk, Profiler::nowNs() - t0);
}

void
Network::shardWorker(std::size_t sBegin, std::size_t sEnd,
                     std::int64_t cycle)
{
    Profiler* const prof = profiler_;
    const int chunk = prof ? chunkOf(sBegin) : 0;
    // Drain + receive share one barrier window: receivePhase only pops
    // channels (it never send()s), so the first wake of this cycle is
    // raised in a compute phase — strictly after the barrier below —
    // and no drain can swallow a cycle-N wake into cycle N's list.
    runShardPhase([&] {
        for (std::size_t s = sBegin; s < sEnd; ++s) {
            Shard& sh = shards_[s];
            sh.active.clear();
            const std::uint64_t t0 = prof ? Profiler::nowNs() : 0;
            active_.drainRange(sh.compBegin, sh.compEnd, sh.active);
            phaseReceive(sh.active, cycle);
            if (prof)
                prof->addShardBusyNs(static_cast<int>(s),
                                     Profiler::nowNs() - t0);
        }
    });
    barrierArrive(chunk);
    // Compute reads cycle-N channel/status state and commits sends for
    // cycle N+latency; the barrier above guarantees every receive (and
    // drain) finished first, the one below orders it before transmit's
    // status publishes.
    runShardPhase([&] {
        for (std::size_t s = sBegin; s < sEnd; ++s) {
            const std::uint64_t t0 = prof ? Profiler::nowNs() : 0;
            phaseCompute(shards_[s].active, cycle);
            if (prof)
                prof->addShardBusyNs(static_cast<int>(s),
                                     Profiler::nowNs() - t0);
        }
    });
    barrierArrive(chunk);
    runShardPhase([&] {
        for (std::size_t s = sBegin; s < sEnd; ++s) {
            const std::uint64_t t0 = prof ? Profiler::nowNs() : 0;
            phaseTransmit(shards_[s].active, cycle);
            if (prof)
                prof->addShardBusyNs(static_cast<int>(s),
                                     Profiler::nowNs() - t0);
        }
    });
    barrierArrive(chunk);
    // Self-sustain wakes read input pipes other shards wrote during
    // transmit, hence the barrier above. Wakes target cycle N+1's
    // bitmap, which nobody drains until after the join.
    runShardPhase([&] {
        for (std::size_t s = sBegin; s < sEnd; ++s) {
            const std::uint64_t t0 = prof ? Profiler::nowNs() : 0;
            rescheduleAfterStep(shards_[s].active);
            if (prof)
                prof->addShardBusyNs(static_cast<int>(s),
                                     Profiler::nowNs() - t0);
        }
    });
}

void
Network::stepSharded(std::int64_t cycle, bool contiguous)
{
    if (!contiguous)
        active_.wakeAll();
    shardFailed_.store(false, std::memory_order_relaxed);
    shardError_ = nullptr;
    if (shardChunks_ == 1) {
        shardWorker(0, shards_.size(), cycle);
    } else {
        crew_->parallelFor(
            shards_.size(),
            [this, cycle](std::size_t b, std::size_t e) {
                shardWorker(b, e, cycle);
            },
            static_cast<std::size_t>(shardChunks_));
    }
    if (shardError_)
        std::rethrow_exception(shardError_);
    // Serial epilogue, identical to the serial modes' finishComps over
    // the concatenated (ascending) shard lists: all flushes strictly
    // before all refills, so free-list contents match serial stepping
    // slot for slot.
    ProfileScope ps(profiler_, ProfPhase::Epilogue);
    for (const Shard& sh : shards_) {
        for (const int c : sh.active) {
            if (c & 1)
                endpoints_[idx(c >> 1)]->flushReleases();
        }
    }
    for (const Shard& sh : shards_) {
        for (const int c : sh.active) {
            if (c & 1)
                pool_.refill(c >> 1);
        }
    }
    // Workers recorded barrier waits into per-chunk scratch; fold them
    // into the histogram here, after the join, where no worker races.
    if (profiler_)
        profiler_->mergeCycleScratch();
}

void
Network::finishComps(const std::vector<int>& comps)
{
    // Serial end-of-step epilogue: return this cycle's deferred
    // descriptor releases in node order, then top every touched
    // segment back up to >= 1 free slot so the next cycle's
    // allocations cannot grow a slot array mid-phase. Components that
    // were not stepped have nothing to flush and a non-empty free
    // list, so iterating only the stepped list is mode-independent.
    for (const int c : comps) {
        if (c & 1)
            endpoints_[idx(c >> 1)]->flushReleases();
    }
    for (const int c : comps) {
        if (c & 1)
            pool_.refill(c >> 1);
    }
}

void
Network::stepVerify(std::int64_t cycle, bool contiguous)
{
    if (!contiguous)
        active_.wakeAll();
    const std::vector<int>& act = active_.beginCycle();
    for (const int c : act)
        verifyMark_[static_cast<std::size_t>(c)] = 1;
    for (const int c : fullOrder_) {
        if (verifyMark_[static_cast<std::size_t>(c)]) {
            verifyMark_[static_cast<std::size_t>(c)] = 0;
            continue;
        }
        FP_ASSERT(!componentHasPendingWork(c),
                  "activity stepping would skip "
                      << ((c & 1) ? "endpoint " : "router ") << (c >> 1)
                      << " with pending work at cycle " << cycle
                      << " (missed wakeup)");
    }
    // Step everything; quiescent components are no-ops, so this is
    // the same cycle the active list would have produced.
    stepPhases(fullOrder_, cycle);
    epilogue(fullOrder_);
}

void
Network::step(std::int64_t cycle)
{
    const bool contiguous = haveStepped_ && cycle == lastCycle_ + 1;
    lastCycle_ = cycle;
    haveStepped_ = true;
    switch (stepMode_) {
    case StepMode::Full: {
        stepPhases(fullOrder_, cycle);
        ProfileScope ps(profiler_, ProfPhase::Epilogue);
        finishComps(fullOrder_);
        break;
    }
    case StepMode::Activity:
        stepActivity(cycle, contiguous);
        break;
    case StepMode::Verify:
        stepVerify(cycle, contiguous);
        break;
    case StepMode::Sharded:
        if (tracerAttached_) {
            // The packet tracer mutates shared trace state from
            // router/endpoint hooks *during* phases; keep its event
            // ordering exact by stepping serially (results are
            // bit-identical either way).
            if (!warnedTracerFallback_) {
                warn("packet tracer attached: sharded stepping falls "
                     "back to serial activity stepping");
                warnedTracerFallback_ = true;
            }
            stepActivity(cycle, contiguous);
        } else {
            stepSharded(cycle, contiguous);
        }
        break;
    }
}

bool
Network::idle() const
{
    // Every pipe in the system feeds exactly one component's
    // hasPendingWork() (router input flit pipes + credit-return
    // pipes; endpoint ejection + credit pipes), so "no component has
    // pending work" implies every channel is empty and every buffer
    // drained: the network cannot change state on its own.
    //
    // In the activity-family modes the pending bitmap already encodes
    // this (rescheduleAfterStep re-arms any component with pending
    // work, and sends wake their receivers). Full mode never drains
    // the bitmap, so it scans components directly — the scan is off
    // the hot path (it only runs when the driver suspects idleness).
    if (stepMode_ != StepMode::Full)
        return active_.pendingEmpty();
    for (const int c : fullOrder_) {
        if (componentHasPendingWork(c))
            return false;
    }
    return true;
}

void
Network::skipTo(std::int64_t cycle)
{
    FP_ASSERT(idle(), "skipTo(" << cycle
                                << ") on a non-quiescent network");
    FP_ASSERT(!haveStepped_ || cycle > lastCycle_,
              "skipTo(" << cycle << ") does not advance past "
                        << lastCycle_);
    // An idle network steps every skipped cycle as an exact no-op, so
    // jumping is just clock bookkeeping: pretend cycle-1 was stepped
    // so step(cycle) counts as contiguous and stays on the activity
    // fast path (no wakeAll). Wakes raised meanwhile (e.g. an
    // endpoint enqueue at the horizon) sit in the pending bitmap
    // untouched.
    lastCycle_ = cycle - 1;
    haveStepped_ = true;
}

std::int64_t
Network::nextLinkArrivalCycle() const
{
    ProfileScope ps(profiler_, ProfPhase::Link);
    return fabric_.minHeadReady();
}

std::int64_t
Network::totalFlitsInFlight() const
{
    std::int64_t total = 0;
    for (const auto& r : routers_)
        total += r->totalBufferedFlits();
    for (const auto& e : endpoints_)
        total += e->sinkBufferedFlits();
    return total + fabric_.flitsInFlight();
}

Router::Counters
Network::aggregateCounters() const
{
    Router::Counters sum;
    for (const auto& r : routers_) {
        const Router::Counters& c = r->counters();
        sum.vcAllocSuccess += c.vcAllocSuccess;
        sum.vcAllocFail += c.vcAllocFail;
        sum.puritySum += c.puritySum;
        sum.puritySamples += c.puritySamples;
        sum.flitsTraversed += c.flitsTraversed;
        for (std::size_t p = 0; p < sum.vaGrantsByPriority.size(); ++p)
            sum.vaGrantsByPriority[p] += c.vaGrantsByPriority[p];
    }
    return sum;
}

void
Network::resetCounters()
{
    for (auto& r : routers_)
        r->resetCounters();
}

std::uint64_t
Network::totalFlitsInjected() const
{
    std::uint64_t total = 0;
    for (const auto& e : endpoints_)
        total += e->flitsInjected();
    return total;
}

std::uint64_t
Network::totalFlitsEjected() const
{
    std::uint64_t total = 0;
    for (const auto& e : endpoints_)
        total += e->flitsEjected();
    return total;
}

std::uint64_t
Network::totalFlitsSent() const
{
    ProfileScope ps(profiler_, ProfPhase::Link);
    return fabric_.totalFlitsSent();
}

void
Network::attachProfiler(Profiler* profiler)
{
    profiler_ = (profiler && profiler->enabled()) ? profiler : nullptr;
    if (profiler_ && stepMode_ == StepMode::Sharded) {
        profiler_->configureSharded(static_cast<int>(shards_.size()),
                                    shardChunks_, threads_);
    }
}

void
Network::attachTelemetry(TelemetryHub& hub)
{
    if (!hub.enabled())
        return;

    if (PacketTracer* tracer = hub.tracer()) {
        tracer->setPool(&pool_);
        for (auto& r : routers_)
            r->setTracer(tracer);
        for (auto& e : endpoints_)
            e->setTracer(tracer);
        tracerAttached_ = true;
    }
    if (!hub.samplingEnabled())
        return;

    const int n = topo_.numNodes();

    // Network-wide aggregates.
    hub.addChannel("net.flits_in_flight", ChannelKind::Gauge,
                   [this] {
                       return static_cast<double>(totalFlitsInFlight());
                   });
    hub.addChannel("net.vc_occ", ChannelKind::Gauge, [this] {
        double total = 0.0;
        for (const auto& r : routers_)
            total += r->inputBufferedFlits();
        return total;
    });
    hub.addChannel("net.link_util", ChannelKind::Rate, [this] {
        return static_cast<double>(totalFlitsSent())
            / static_cast<double>(fabric_.flitCount());
    });
    hub.addChannel("net.va_grants", ChannelKind::Counter, [this] {
        double total = 0.0;
        for (const auto& r : routers_)
            total += static_cast<double>(r->counters().vcAllocSuccess);
        return total;
    });
    hub.addChannel("net.va_stalls", ChannelKind::Counter, [this] {
        double total = 0.0;
        for (const auto& r : routers_)
            total += static_cast<double>(r->counters().vcAllocFail);
        return total;
    });
    hub.addChannel("net.fp_occ", ChannelKind::Gauge, [this] {
        double total = 0.0;
        for (const auto& r : routers_)
            total += r->occupiedOutVcs();
        return total;
    });
    hub.addChannel("net.inj_backlog", ChannelKind::Gauge, [this] {
        double total = 0.0;
        for (const auto& e : endpoints_)
            total += static_cast<double>(e->sourceBacklogFlits());
        return total;
    });

    if (!hub.config().perRouter)
        return;

    for (int node = 0; node < n; ++node) {
        std::string r = "r";
        r += std::to_string(node);
        r += '.';
        Router* router = routers_[idx(node)].get();
        hub.addChannel(r + "vc_occ", ChannelKind::Gauge, [router] {
            return static_cast<double>(router->inputBufferedFlits());
        });
        hub.addChannel(r + "credits", ChannelKind::Gauge, [router] {
            return static_cast<double>(router->totalOutputCredits());
        });
        hub.addChannel(r + "fp_occ", ChannelKind::Gauge, [router] {
            return static_cast<double>(router->occupiedOutVcs());
        });
        hub.addChannel(r + "va_grants", ChannelKind::Counter, [router] {
            return static_cast<double>(
                router->counters().vcAllocSuccess);
        });
        hub.addChannel(r + "va_stalls", ChannelKind::Counter, [router] {
            return static_cast<double>(router->counters().vcAllocFail);
        });
        const auto& links = nodeOutChannels_[idx(node)];
        hub.addChannel(r + "link_util", ChannelKind::Rate, [&links] {
            double sent = 0.0;
            for (const FlitChannel* ch : links)
                sent += static_cast<double>(ch->sentCount());
            return sent / static_cast<double>(links.size());
        });

        std::string e = "ep";
        e += std::to_string(node);
        e += '.';
        Endpoint* ep = endpoints_[idx(node)].get();
        hub.addChannel(e + "inj_q", ChannelKind::Gauge, [ep] {
            return static_cast<double>(ep->sourceBacklogFlits());
        });
    }
}

} // namespace footprint
