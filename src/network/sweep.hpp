/**
 * @file
 * Experiment drivers: latency-throughput curves and saturation-
 * throughput search — the measurement procedures behind the paper's
 * Figs. 5-9.
 */

#ifndef FOOTPRINT_NETWORK_SWEEP_HPP
#define FOOTPRINT_NETWORK_SWEEP_HPP

#include <string>
#include <vector>

#include "network/traffic_manager.hpp"
#include "sim/config.hpp"

namespace footprint {

/** One point on a latency-throughput curve. */
struct CurvePoint
{
    double offered = 0.0;   ///< flits/node/cycle offered
    double accepted = 0.0;  ///< flits/node/cycle accepted
    double latency = 0.0;   ///< average packet latency (cycles)
    bool saturated = false;
};

/**
 * Run the config at each offered rate and collect curve points.
 * Points past the first clearly saturated rate are still run (their
 * accepted throughput is meaningful) but marked saturated.
 */
std::vector<CurvePoint>
latencyThroughputCurve(const SimConfig& base,
                       const std::vector<double>& rates);

/** Zero-load latency, probed at a very low injection rate. */
double zeroLoadLatency(const SimConfig& base, double probe_rate = 0.02);

/**
 * Saturation throughput: the largest offered load (flits/node/cycle)
 * the network sustains with average latency below
 * @p latency_factor x zero-load latency, found by bisection to within
 * @p tolerance. This is the quantity behind the paper's "saturation
 * throughput improved by X%" statements.
 */
double saturationThroughput(const SimConfig& base,
                            double latency_factor = 3.0,
                            double tolerance = 0.01);

/** Evenly spaced rates in [lo, hi] (inclusive), helper for benches. */
std::vector<double> linspace(double lo, double hi, int count);

/** Render curve points as aligned table rows for bench output. */
std::string formatCurve(const std::string& label,
                        const std::vector<CurvePoint>& points);

} // namespace footprint

#endif // FOOTPRINT_NETWORK_SWEEP_HPP
