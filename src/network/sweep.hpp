/**
 * @file
 * Experiment drivers: latency-throughput curves and saturation-
 * throughput search — the measurement procedures behind the paper's
 * Figs. 5-9.
 */

#ifndef FOOTPRINT_NETWORK_SWEEP_HPP
#define FOOTPRINT_NETWORK_SWEEP_HPP

#include <string>
#include <vector>

#include "network/traffic_manager.hpp"
#include "sim/config.hpp"

namespace footprint {

class ExecContext;

/** One point on a latency-throughput curve. */
struct CurvePoint
{
    double offered = 0.0;   ///< flits/node/cycle offered
    double accepted = 0.0;  ///< flits/node/cycle accepted
    double latency = 0.0;   ///< average packet latency (cycles)
    bool saturated = false;
};

/**
 * Classify one run as saturated: it failed to drain, or its average
 * latency exceeds @p factor x @p zero_load. (Accepted-vs-offered
 * comparisons are deliberately not used: patterns with fixed points,
 * e.g. transpose, legitimately accept less than the per-node offered
 * rate.) Shared by the curve drivers and SweepRunner so every layer
 * applies one definition.
 */
bool runSaturated(const RunStats& stats, double zero_load,
                  double factor = 3.0);

/**
 * Run the config at each offered rate and collect curve points.
 * Points past the first clearly saturated rate are still run (their
 * accepted throughput is meaningful) but marked saturated.
 */
std::vector<CurvePoint>
latencyThroughputCurve(const SimConfig& base,
                       const std::vector<double>& rates);

/**
 * Parallel latency-throughput curve: the zero-load probe and every
 * rate point run as independent jobs on @p ctx. Produces exactly the
 * CurvePoints of the sequential overload for any jobs value (the
 * post-saturation carry-forward of the sequential path is replayed as
 * a post-processing step), so thread count never changes results —
 * only wall-clock.
 */
std::vector<CurvePoint>
latencyThroughputCurve(const SimConfig& base,
                       const std::vector<double>& rates,
                       ExecContext& ctx);

/** Zero-load latency, probed at a very low injection rate. */
double zeroLoadLatency(const SimConfig& base, double probe_rate = 0.02);

/**
 * Saturation throughput: the largest offered load (flits/node/cycle)
 * the network sustains with average latency below
 * @p latency_factor x zero-load latency, found by bisection to within
 * @p tolerance. This is the quantity behind the paper's "saturation
 * throughput improved by X%" statements.
 */
double saturationThroughput(const SimConfig& base,
                            double latency_factor = 3.0,
                            double tolerance = 0.01);

/**
 * Parallel saturation search: each refinement step evaluates
 * @p bracket evenly spaced interior rates of the current interval
 * concurrently on @p ctx, shrinking the interval by bracket+1 per step
 * instead of 2. The probe schedule depends only on @p bracket — never
 * on ctx.jobs() — so the result is identical for any thread count;
 * bracket == 1 degenerates to the sequential overload's binary
 * bisection exactly.
 */
double saturationThroughput(const SimConfig& base, ExecContext& ctx,
                            double latency_factor = 3.0,
                            double tolerance = 0.01, int bracket = 4);

/** Evenly spaced rates in [lo, hi] (inclusive), helper for benches. */
std::vector<double> linspace(double lo, double hi, int count);

/** Render curve points as aligned table rows for bench output. */
std::string formatCurve(const std::string& label,
                        const std::vector<CurvePoint>& points);

} // namespace footprint

#endif // FOOTPRINT_NETWORK_SWEEP_HPP
