/**
 * @file
 * Network-owned flat link/credit fabric (DESIGN.md §17).
 *
 * The fabric owns every flit and credit pipe of a Network plus the
 * flat arenas their state lives in: ring lanes (arrival timestamps and
 * payloads, structure-of-arrays), one head-arrival slot per channel,
 * and one sent counter per channel. Channels are laid out grouped by
 * *writer node* — the component that send()s into the pipe during its
 * compute/transmit phase — with each group padded to a 64-byte
 * boundary, so:
 *
 *  - a shard's transmit-phase writes land in a contiguous run of cache
 *    lines no other shard touches (no false sharing at seams);
 *  - the horizon's next-arrival query is one branch-light min over the
 *    contiguous head-arrival lane (padding slots hold kNoArrival, the
 *    identity of min);
 *  - telemetry/heatmap sent-counter sweeps walk one flat array
 *    (padding slots hold 0, the identity of +).
 *
 * Flit channels occupy the front region of the combined lanes, credit
 * channels the back region, so "all flits sent" is a partial sum.
 */

#ifndef FOOTPRINT_NETWORK_LINK_FABRIC_HPP
#define FOOTPRINT_NETWORK_LINK_FABRIC_HPP

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "router/channel.hpp"
#include "sim/horizon.hpp"

namespace footprint {

/** Minimal 64-byte-aligned allocator for the fabric's flat lanes. */
template <typename T>
struct LaneAlloc
{
    using value_type = T;
    static constexpr std::align_val_t kAlign{64};

    LaneAlloc() = default;
    template <typename U>
    LaneAlloc(const LaneAlloc<U>&)
    {}

    T*
    allocate(std::size_t n)
    {
        return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
    }

    void
    deallocate(T* p, std::size_t n)
    {
        ::operator delete(p, n * sizeof(T), kAlign);
    }

    template <typename U>
    bool
    operator==(const LaneAlloc<U>&) const
    {
        return true;
    }
};

template <typename T>
using Lane = std::vector<T, LaneAlloc<T>>;

/**
 * The flat link-state store for one Network. Build once (build()),
 * then the pipes are stable for the fabric's lifetime — every
 * Pipe::send/receive updates the flat lanes through its bound slot
 * pointers, so the batched queries below never poll channel objects.
 */
class LinkFabric
{
  public:
    /** One channel to create. maxRate = sends per cycle bound. */
    struct Spec
    {
        int writerNode = 0;  ///< node whose phases send into the pipe
        int latency = 1;
        int maxRate = 1;
    };

    LinkFabric() = default;
    LinkFabric(const LinkFabric&) = delete;
    LinkFabric& operator=(const LinkFabric&) = delete;

    /**
     * Create every channel and bind it onto the flat lanes. Specs must
     * arrive grouped by writerNode (all of a node's channels adjacent)
     * — the Network enumerates links in node order, which guarantees
     * it; FP_ASSERTed here. Call exactly once.
     */
    void build(const std::vector<Spec>& flit_specs,
               const std::vector<Spec>& credit_specs);

    FlitChannel& flit(std::size_t id) { return flit_[id]; }
    const FlitChannel& flit(std::size_t id) const { return flit_[id]; }
    CreditChannel& credit(std::size_t id) { return credit_[id]; }
    const CreditChannel&
    credit(std::size_t id) const
    {
        return credit_[id];
    }

    std::size_t flitCount() const { return flit_.size(); }
    std::size_t creditCount() const { return credit_.size(); }

    /**
     * Earliest arrival cycle over every flit and credit channel, or
     * Pipe::kNoArrival: one pass over the contiguous head-arrival
     * lane.
     */
    std::int64_t
    minHeadReady() const
    {
        return minArrivalOver(headReady_.data(), headReady_.size());
    }

    /** Flits ever sent across all flit channels: one partial sum. */
    std::uint64_t
    totalFlitsSent() const
    {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < flitLaneEnd_; ++i)
            total += sent_[i];
        return total;
    }

    /** Flits currently in flight across all flit channels. */
    std::int64_t
    flitsInFlight() const
    {
        std::int64_t total = 0;
        for (const FlitChannel& ch : flit_)
            total += static_cast<std::int64_t>(ch.inFlightCount());
        return total;
    }

    /** Sent counter of flit channel @p id (reads the flat lane). */
    std::uint64_t
    flitSent(std::size_t id) const
    {
        return sent_[flitSlot_[id]];
    }

    /** Writer node of flit channel @p id (layout introspection). */
    int flitWriter(std::size_t id) const { return flitWriter_[id]; }
    /** Writer node of credit channel @p id. */
    int
    creditWriter(std::size_t id) const
    {
        return creditWriter_[id];
    }

    /** Combined head-arrival lane (tests: seam/padding checks). */
    const Lane<std::int64_t>& headReadyLane() const { return headReady_; }
    /** Combined sent-counter lane (flit region then credit region). */
    const Lane<std::uint64_t>& sentLane() const { return sent_; }
    /** One past the last flit slot in the combined lanes. */
    std::size_t flitLaneEnd() const { return flitLaneEnd_; }

  private:
    std::vector<FlitChannel> flit_;
    std::vector<CreditChannel> credit_;

    // Ring arenas (SoA: arrival timestamps apart from payloads).
    Lane<std::int64_t> flitReady_;
    Lane<Flit> flitPayload_;
    Lane<std::int64_t> creditReady_;
    Lane<Credit> creditPayload_;

    // Combined per-channel lanes: flit slots [0, flitLaneEnd_), credit
    // slots after; writer-node groups 64B-padded within each region.
    Lane<std::int64_t> headReady_;
    Lane<std::uint64_t> sent_;
    std::size_t flitLaneEnd_ = 0;

    std::vector<std::size_t> flitSlot_;    ///< flit id -> lane slot
    std::vector<std::size_t> creditSlot_;  ///< credit id -> lane slot
    std::vector<int> flitWriter_;
    std::vector<int> creditWriter_;
};

} // namespace footprint

#endif // FOOTPRINT_NETWORK_LINK_FABRIC_HPP
