#include "network/endpoint.hpp"

#include <bit>

#include "sim/active_set.hpp"
#include "obs/packet_tracer.hpp"
#include "sim/log.hpp"

namespace footprint {

Endpoint::Endpoint(int node, const EndpointParams& params,
                   std::uint64_t seed, PacketPool* pool)
    : node_(node), params_(params),
      rng_(seed * 0xabcdef1234567ULL + static_cast<std::uint64_t>(node)),
      pool_(pool)
{
    FP_ASSERT(pool_ != nullptr, "endpoint needs a packet pool");
    sourceQueue_.reset(16, /*growable=*/true);
    injectVcs_.assign(static_cast<std::size_t>(params.numVcs),
                      OutVcState(params.vcBufSize));
    sinkVcs_.resize(static_cast<std::size_t>(params.numVcs));
    for (auto& buf : sinkVcs_)
        buf.reset(static_cast<std::size_t>(params.vcBufSize));
    // At most ejectionRate tails leave per cycle and drivers drain
    // every cycle; reserving a few cycles' worth up front keeps the
    // first ejection at a far-away endpoint from allocating inside the
    // steady-state measurement window (DESIGN.md §17).
    const auto burst = static_cast<std::size_t>(params.ejectionRate);
    ejected_.reserve(4 * burst + 4);
    pendingRelease_.reserve(4 * burst + 4);
}

void
Endpoint::connect(FlitChannel* to_router,
                  CreditChannel* credit_from_router,
                  FlitChannel* from_router,
                  CreditChannel* credit_to_router)
{
    toRouter_ = to_router;
    creditFromRouter_ = credit_from_router;
    fromRouter_ = from_router;
    creditToRouter_ = credit_to_router;
}

void
Endpoint::enqueue(const Packet& packet)
{
    FP_ASSERT(packet.src == node_, "packet enqueued at wrong endpoint");
    sourceQueue_.push_back(packet);
    // Traffic is generated outside the step loop, so an otherwise
    // quiescent endpoint must register itself for the next cycle.
    if (wakeSet_)
        wakeSet_->wake(wakeComp_);
}

void
Endpoint::receivePhase(std::int64_t cycle)
{
    // Credits for the router's local-input VCs.
    if (creditFromRouter_) {
        while (auto c = creditFromRouter_->receive(cycle)) {
            injectVcs_[static_cast<std::size_t>(c->vc)].returnCredit();
        }
    }
    // Flits arriving at the sink.
    if (fromRouter_) {
        while (auto f = fromRouter_->receive(cycle)) {
            FP_ASSERT(f->dest == node_,
                      "misrouted flit at endpoint " << node_ << ": "
                                                    << f->toString());
            auto& buf = sinkVcs_[static_cast<std::size_t>(f->vc)];
            FP_ASSERT(static_cast<int>(buf.size()) < params_.vcBufSize,
                      "sink VC buffer overflow");
            buf.push_back(*f);
            sinkOccMask_ |= VcMask{1} << f->vc;
            ++sinkFlits_;
        }
    }
}

bool
Endpoint::startNextPacket()
{
    if (sourceQueue_.empty())
        return false;
    // Round-robin over allocatable injection VCs so consecutive packets
    // spread across VCs.
    const int num_vcs = params_.numVcs;
    for (int i = 0; i < num_vcs; ++i) {
        const int vc = (nextVcHint_ + i) % num_vcs;
        OutVcState& state = injectVcs_[static_cast<std::size_t>(vc)];
        if (state.allocatable(params_.atomicVcAlloc)) {
            current_ = sourceQueue_.front();
            sourceQueue_.pop_front();
            currentDesc_ = pool_->allocFrom(node_, current_);
            state.allocate(current_.dest);
            currentVc_ = vc;
            cursor_ = 0;
            injecting_ = true;
            nextVcHint_ = (vc + 1) % num_vcs;
            return true;
        }
    }
    return false;
}

void
Endpoint::computePhase(std::int64_t cycle)
{
    // --- Source: inject at most one flit per cycle. ---
    if (!injecting_)
        startNextPacket();
    if (injecting_) {
        OutVcState& state =
            injectVcs_[static_cast<std::size_t>(currentVc_)];
        if (state.credits() > 0 && toRouter_) {
            Flit f = makeFlit(current_, cursor_, currentDesc_);
            f.vc = static_cast<std::int16_t>(currentVc_);
            if (cursor_ == 0)
                pool_->get(currentDesc_).injectTime = cycle;
            state.consumeCredit();
            toRouter_->send(f, cycle);
            ++flitsInjected_;
            ++cursor_;
            if (cursor_ == current_.size) {
                state.tailSent();
                injecting_ = false;
                currentVc_ = -1;
            }
        }
    }

    // --- Sink: drain up to ejectionRate flits per cycle. ---
    const int num_vcs = params_.numVcs;
    for (int e = 0; e < params_.ejectionRate; ++e) {
        if (sinkOccMask_ == 0)
            break;
        // First non-empty VC at or (cyclically) after drainHint_:
        // rotate the occupancy mask so the hint lands at bit 0, then
        // count trailing zeros — same pick as the old linear scan in
        // two instructions.
        const int picked =
            (drainHint_
             + std::countr_zero(std::rotr(
                 sinkOccMask_, static_cast<unsigned>(drainHint_))))
            & 63;
        drainHint_ = picked + 1 == num_vcs ? 0 : picked + 1;
        auto& buf = sinkVcs_[static_cast<std::size_t>(picked)];
        const Flit f = buf.front();
        buf.pop_front();
        if (buf.empty())
            sinkOccMask_ &= ~(VcMask{1} << picked);
        --sinkFlits_;
        ++flitsEjected_;
        if (creditToRouter_)
            creditToRouter_->send(Credit{picked}, cycle);
        if (f.tail) {
            if (tracer_ && tracer_->traced(f.packetId))
                tracer_->onEject(f, node_, cycle);
            const PacketDescriptor& d = pool_->get(f.desc);
            EjectedPacket p;
            p.packetId = f.packetId;
            p.src = f.src;
            p.dest = f.dest;
            p.size = d.packetSize;
            p.createTime = d.createTime;
            p.ejectTime = cycle;
            p.hops = f.hops;
            p.flowClass = d.flowClass;
            p.measured = d.measured;
            ejected_.push_back(p);
            // The tail has left the network: the packet's descriptor
            // slot can be recycled. The slot belongs to the *source*
            // endpoint's segment, so under sharded stepping it must
            // not be returned from here (see setDeferReleases).
            if (deferReleases_)
                pendingRelease_.push_back(f.desc);
            else
                pool_->release(f.desc);
        }
    }
}

std::vector<EjectedPacket>
Endpoint::drainEjected()
{
    std::vector<EjectedPacket> out;
    out.swap(ejected_);
    return out;
}

void
Endpoint::drainEjectedInto(std::vector<EjectedPacket>& out)
{
    out.insert(out.end(), ejected_.begin(), ejected_.end());
    ejected_.clear();
}

void
Endpoint::reserveSourceQueue(std::size_t packets)
{
    FP_ASSERT(sourceQueue_.empty(),
              "reserveSourceQueue on a non-empty source queue");
    if (packets > sourceQueue_.capacity())
        sourceQueue_.reset(packets, /*growable=*/true);
}

std::int64_t
Endpoint::sourceBacklogFlits() const
{
    std::int64_t flits = 0;
    for (const Packet& p : sourceQueue_)
        flits += p.size;
    if (injecting_)
        flits += current_.size - cursor_;
    return flits;
}

int
Endpoint::sinkBufferedFlits() const
{
    return sinkFlits_;
}

bool
Endpoint::hasPendingWork() const
{
    if (injecting_ || !sourceQueue_.empty() || sinkFlits_ > 0)
        return true;
    if (fromRouter_ && !fromRouter_->empty())
        return true;
    if (creditFromRouter_ && !creditFromRouter_->empty())
        return true;
    return false;
}

} // namespace footprint
