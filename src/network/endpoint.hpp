/**
 * @file
 * Endpoint node model: an injection source (unbounded source queue,
 * one flit per cycle, credit-respecting VC selection) and an ejection
 * sink (per-VC buffers drained at a configurable ejection rate). The
 * sink's finite drain bandwidth is what turns oversubscribed endpoints
 * into real endpoint congestion with backpressure into the network.
 */

#ifndef FOOTPRINT_NETWORK_ENDPOINT_HPP
#define FOOTPRINT_NETWORK_ENDPOINT_HPP

#include <cstdint>
#include <vector>

#include "router/channel.hpp"
#include "router/packet_pool.hpp"
#include "router/vc_state.hpp"
#include "sim/ring_buffer.hpp"
#include "sim/rng.hpp"

namespace footprint {

class ActiveSet;
class PacketTracer;

/** A completed (fully ejected) packet, for statistics collection. */
struct EjectedPacket
{
    std::uint64_t packetId = 0;
    int src = -1;
    int dest = -1;
    int size = 1;
    std::int64_t createTime = 0;
    std::int64_t ejectTime = 0;
    int hops = 0;
    FlowClass flowClass = FlowClass::Background;
    bool measured = false;

    std::int64_t latency() const { return ejectTime - createTime; }
};

/** Endpoint configuration. */
struct EndpointParams
{
    int numVcs = 10;
    int vcBufSize = 4;
    int ejectionRate = 1;      ///< flits drained from the sink per cycle
    bool atomicVcAlloc = true; ///< VC reallocation policy at injection
};

/**
 * The source + sink pair attached to one router's local port.
 */
class Endpoint
{
  public:
    /**
     * @param pool descriptor pool shared by every endpoint of the
     *        network; holds the per-packet constants of in-flight
     *        packets (allocated at injection, released at ejection).
     */
    Endpoint(int node, const EndpointParams& params, std::uint64_t seed,
             PacketPool* pool);

    /**
     * Wire the endpoint to its router's local port.
     *
     * @param to_router flits source -> router local input.
     * @param credit_from_router credits router -> source.
     * @param from_router flits router local output -> sink.
     * @param credit_to_router credits sink -> router.
     */
    void connect(FlitChannel* to_router, CreditChannel* credit_from_router,
                 FlitChannel* from_router,
                 CreditChannel* credit_to_router);

    /** Queue a packet for injection (open-loop source). */
    void enqueue(const Packet& packet);

    void receivePhase(std::int64_t cycle);
    void computePhase(std::int64_t cycle);

    /**
     * Register this endpoint on @p set (as component @p comp) whenever
     * work arrives from outside the step loop (enqueue). Unset by
     * default: endpoints used standalone never touch an active list.
     */
    void
    setWakeHook(ActiveSet* set, int comp)
    {
        wakeSet_ = set;
        wakeComp_ = comp;
    }

    /**
     * Defer descriptor releases until flushReleases() instead of
     * returning them to the pool at ejection. The Network turns this
     * on for every endpoint: an ejected packet's descriptor lives in
     * its *source* endpoint's pool segment, so releasing it inline
     * would race that segment's owner under sharded stepping — and
     * flushing from a serial end-of-step epilogue in node order keeps
     * free-list contents identical across step modes and thread
     * counts. Off by default for standalone use.
     */
    void setDeferReleases(bool on) { deferReleases_ = on; }

    /** Return deferred releases to the pool (serial contexts only). */
    void
    flushReleases()
    {
        for (const std::uint32_t desc : pendingRelease_)
            pool_->release(desc);
        pendingRelease_.clear();
    }

    /**
     * True when stepping this endpoint next cycle could change state:
     * a packet mid-injection or queued, flits buffered in the sink, or
     * anything in flight on the incoming flit/credit pipes. Quiescent
     * endpoints are observationally inert, mirroring
     * Router::hasPendingWork().
     */
    bool hasPendingWork() const;

    /** Packets fully ejected since the last call (caller consumes). */
    std::vector<EjectedPacket> drainEjected();

    /**
     * Append the ejected packets to @p out and clear the internal
     * list. Allocation-free once @p out's capacity has warmed up —
     * the per-cycle collect loops use this instead of the by-value
     * drainEjected() so a steady-state cycle performs no heap
     * allocation (DESIGN.md §17).
     */
    void drainEjectedInto(std::vector<EjectedPacket>& out);

    /**
     * Ejected packets waiting for drainEjected(). Drivers check this
     * before calling drainEjected() so the per-node collect loop
     * costs one inlined load on quiet nodes instead of a by-value
     * vector round trip.
     */
    std::size_t ejectedCount() const { return ejected_.size(); }

    int node() const { return node_; }

    /** Flits waiting in the source (queued packets + current). */
    std::int64_t sourceBacklogFlits() const;

    /**
     * Pre-size the source queue for @p packets queued packets. The
     * queue grows on demand either way; reserving up front lets
     * zero-allocation benches keep a monotonically growing saturation
     * backlog without the queue doubling mid-measurement. Only valid
     * while the queue is empty.
     */
    void reserveSourceQueue(std::size_t packets);

    /** Flits currently buffered in the sink. */
    int sinkBufferedFlits() const;

    std::uint64_t flitsInjected() const { return flitsInjected_; }
    std::uint64_t flitsEjected() const { return flitsEjected_; }

    /**
     * Attach (or detach with nullptr) a packet-lifecycle tracer; the
     * sink-drain hook costs one branch while @p tracer is nullptr.
     */
    void setTracer(PacketTracer* tracer) { tracer_ = tracer; }

    // Forensic accessors (auditor / state dumps; off the hot path).

    /** Source-side credits toward router local-input VC @p vc. */
    int injectVcCredits(int vc) const
    {
        return injectVcs_[static_cast<std::size_t>(vc)].credits();
    }

    /** True if injection VC @p vc is allocated to a packet. */
    bool injectVcBusy(int vc) const
    {
        return injectVcs_[static_cast<std::size_t>(vc)].busy();
    }

    /** Flits buffered in sink VC @p vc. */
    int sinkVcOccupancy(int vc) const
    {
        return static_cast<int>(
            sinkVcs_[static_cast<std::size_t>(vc)].size());
    }

    /** True while a packet is mid-injection. */
    bool injecting() const { return injecting_; }

    /** VC the current packet injects on; -1 when none. */
    int currentInjectVc() const { return currentVc_; }

  private:
    bool startNextPacket();

    int node_;
    EndpointParams params_;
    Rng rng_;
    PacketPool* pool_;
    ActiveSet* wakeSet_ = nullptr;
    int wakeComp_ = -1;

    // Source side.
    FlitChannel* toRouter_ = nullptr;
    CreditChannel* creditFromRouter_ = nullptr;
    RingBuffer<Packet> sourceQueue_;  ///< growable (open-loop backlog)
    std::vector<OutVcState> injectVcs_;  ///< router local-input VC view
    bool injecting_ = false;
    Packet current_;
    std::uint32_t currentDesc_ = 0;  ///< pool slot of current_
    int cursor_ = 0;
    int currentVc_ = -1;
    int nextVcHint_ = 0;

    // Sink side.
    FlitChannel* fromRouter_ = nullptr;
    CreditChannel* creditToRouter_ = nullptr;
    std::vector<RingBuffer<Flit>> sinkVcs_;
    VcMask sinkOccMask_ = 0;  ///< bit v set while sinkVcs_[v] non-empty
    int sinkFlits_ = 0;  ///< total flits across sink VCs
    int drainHint_ = 0;
    std::vector<EjectedPacket> ejected_;
    bool deferReleases_ = false;
    std::vector<std::uint32_t> pendingRelease_;

    std::uint64_t flitsInjected_ = 0;
    std::uint64_t flitsEjected_ = 0;
    PacketTracer* tracer_ = nullptr;
};

} // namespace footprint

#endif // FOOTPRINT_NETWORK_ENDPOINT_HPP
