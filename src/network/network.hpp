/**
 * @file
 * Full network assembly: routers, endpoints, channels, and the
 * side-band status network, stepped one cycle at a time.
 */

#ifndef FOOTPRINT_NETWORK_NETWORK_HPP
#define FOOTPRINT_NETWORK_NETWORK_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/spin_barrier.hpp"
#include "exec/thread_pool.hpp"
#include "sim/active_set.hpp"
#include "network/endpoint.hpp"
#include "network/link_fabric.hpp"
#include "router/packet_pool.hpp"
#include "router/router.hpp"
#include "sim/config.hpp"
#include "topo/topology.hpp"

namespace footprint {

class Profiler;
class TelemetryHub;

/**
 * Per-router status table: routers publish idle-VC counts during
 * their transmit phase; neighbors read during the compute phase.
 * Because every compute phase of a cycle completes before any
 * transmit phase begins, a read always observes the previous cycle's
 * publishes — the one-cycle-delayed side-band network DBAR assumes —
 * without double buffering. A router whose state did not change
 * (quiescent under activity-driven stepping) may skip publishing: its
 * stored counts are already current.
 */
class StatusBoard : public StatusProvider
{
  public:
    void init(int num_nodes);

    /** Publish @p count for (node, port); call in the transmit phase. */
    void publish(int node, int port, int count);

    int idleCount(int node, int port) const override;

  private:
    std::vector<std::array<int, kNumPorts>> counts_;
};

/** How Network::step visits components each cycle. */
enum class StepMode {
    Full,      ///< step every router and endpoint every cycle
    Activity,  ///< step only components on the active list
    Verify,    ///< full stepping, cross-checking the active list
    Sharded,   ///< activity stepping, shards in parallel (bit-identical)
};

/**
 * A 2D-mesh network of routers and endpoints built from a SimConfig.
 *
 * Per cycle (step): routers and endpoints run their receive phase,
 * then their compute phase, then routers transmit into links. The
 * phase structure makes the simulation independent of iteration order
 * and hence deterministic.
 *
 * Under the default "activity" step mode only components that can do
 * work are visited: a component is woken for cycle t+1 when it still
 * has pending work after cycle t (buffered flits, queued packets, or
 * in-flight pipe entries) or when an active neighbor's outgoing pipe
 * is non-empty. Stepping a quiescent component is observationally a
 * no-op, so results are bit-identical to "full" stepping; the
 * "verify" mode proves it per run by stepping everything while
 * panicking if a component the active list would have skipped reports
 * pending work (see DESIGN.md §12).
 */
class Network
{
  public:
    explicit Network(const SimConfig& cfg);

    /** Advance the whole network by one cycle. */
    void step(std::int64_t cycle);

    /**
     * @return true if the network is fully quiescent: no component has
     * pending work, which (because every pipe feeds some component's
     * pending-work check) implies no flit or credit is in flight and
     * no buffer holds anything. Stepping an idle network any number of
     * cycles is an exact no-op, so the driver may skipTo() an event
     * horizon instead. Meaningful between steps, never during one.
     */
    bool idle() const;

    /**
     * Jump the clock over a quiescent span: record that the network
     * has (conceptually) been stepped through every cycle strictly
     * before @p cycle, so the next step(cycle) is treated as
     * contiguous. Caller must ensure idle() — FP_ASSERTed here —
     * because skipped cycles are replayed as nothing at all.
     */
    void skipTo(std::int64_t cycle);

    /**
     * Earliest arrival cycle over every flit and credit channel, or
     * Pipe::kNoArrival: one branch-light pass over the fabric's flat
     * head-arrival lane. Diagnostic/test aid for the horizon
     * invariant — the skip fast path itself only runs when idle()
     * proves all channels empty.
     */
    std::int64_t nextLinkArrivalCycle() const;

    /** The flat link/credit fabric (DESIGN.md §17). */
    const LinkFabric& linkFabric() const { return fabric_; }

    StepMode stepMode() const { return stepMode_; }

    /** Descriptor pool backing Flit::desc for in-flight packets. */
    PacketPool& packetPool() { return pool_; }
    const PacketPool& packetPool() const { return pool_; }

    /** The topology this network was built from (DESIGN.md §18). */
    const Topology& topology() const { return topo_; }
    /** The topology's coordinate grid (row-major node numbering). */
    const Mesh& mesh() const { return topo_.grid(); }
    const RoutingAlgorithm& routing() const { return *routing_; }
    const RouterParams& routerParams() const { return params_; }

    Router& router(int node) { return *routers_[idx(node)]; }
    const Router& router(int node) const { return *routers_[idx(node)]; }
    Endpoint& endpoint(int node) { return *endpoints_[idx(node)]; }
    const Endpoint& endpoint(int node) const
    {
        return *endpoints_[idx(node)];
    }

    /** Flits anywhere in the system (buffers, FIFOs, links, sinks). */
    std::int64_t totalFlitsInFlight() const;

    /** Sum of all routers' event counters. */
    Router::Counters aggregateCounters() const;

    /** Reset all routers' event counters. */
    void resetCounters();

    /**
     * Register this network's probes with @p hub and wire its packet
     * tracer into every router and endpoint. Registers network-wide
     * aggregate channels always, and per-router / per-endpoint
     * channels when the hub's config asks for them (see DESIGN.md
     * "Observability" for the channel name schema). No-op on a
     * disabled hub.
     */
    void attachTelemetry(TelemetryHub& hub);

    /** Flits ever sent on any flit channel (links + endpoint links). */
    std::uint64_t totalFlitsSent() const;

    /**
     * Attach a self-profiler: subsequent step() calls attribute wall
     * time to the drain/compute/transmit/epilogue phases and, under
     * sharded stepping, to per-shard busy time and barrier waits (see
     * DESIGN.md §14). A null or disabled profiler detaches — the hot
     * path then pays exactly one never-taken branch per phase.
     * Profiling reads the clock but never simulation state, so results
     * are bit-identical with or without it, in every step mode.
     */
    void attachProfiler(Profiler* profiler);

    /** Shards built for sharded stepping (0 outside that mode). */
    int shardCount() const
    {
        return static_cast<int>(shards_.size());
    }

    /**
     * One directed link: the forward flit channel and its backward
     * credit channel. Port fields are meaningful only on router ends
     * (-1 on endpoint ends). Built once at construction for the
     * auditor's per-link credit-conservation walk and state dumps.
     */
    struct LinkRecord
    {
        enum class Kind {
            RouterToRouter,
            RouterToEndpoint,  ///< ejection link into the sink
            EndpointToRouter,  ///< injection link from the source
        };

        Kind kind = Kind::RouterToRouter;
        int srcNode = -1;
        int srcPort = -1;  ///< output port at src
        int dstNode = -1;
        int dstPort = -1;  ///< input port at dst
        FlitChannel* flit = nullptr;
        CreditChannel* credit = nullptr;
        std::size_t flitId = 0;    ///< fabric flit-channel id
        std::size_t creditId = 0;  ///< fabric credit-channel id
    };

    const std::vector<LinkRecord>& links() const { return links_; }

    /** Flits ever injected across all endpoints. */
    std::uint64_t totalFlitsInjected() const;

    /** Flits ever ejected (drained from sinks) across all endpoints. */
    std::uint64_t totalFlitsEjected() const;

  private:
    static std::size_t idx(int node)
    {
        return static_cast<std::size_t>(node);
    }

    // Component ids on the active list: router of node k is 2k, its
    // endpoint 2k+1 (dense, so the sorted active list reproduces full
    // stepping's node order).
    static int routerComp(int node) { return 2 * node; }
    static int endpointComp(int node) { return 2 * node + 1; }

    void buildWakeGraph();
    void buildShards(int threads, int shards,
                     const std::string& policy);
    bool componentHasPendingWork(int comp) const;
    void phaseReceive(const std::vector<int>& comps,
                      std::int64_t cycle);
    void phaseCompute(const std::vector<int>& comps,
                      std::int64_t cycle);
    void phaseTransmit(const std::vector<int>& comps,
                       std::int64_t cycle);
    void stepPhases(const std::vector<int>& comps, std::int64_t cycle);
    void rescheduleAfterStep(const std::vector<int>& comps);
    void stepActivity(std::int64_t cycle, bool contiguous);
    void stepVerify(std::int64_t cycle, bool contiguous);
    void stepSharded(std::int64_t cycle, bool contiguous);
    void shardWorker(std::size_t sBegin, std::size_t sEnd,
                     std::int64_t cycle);
    template <typename Fn> void runShardPhase(Fn&& fn);
    void finishComps(const std::vector<int>& comps);
    void epilogue(const std::vector<int>& comps);
    int chunkOf(std::size_t sBegin) const;
    void barrierArrive(int chunk);

    Topology topo_;
    RouterParams params_;
    std::unique_ptr<RoutingAlgorithm> routing_;
    StatusBoard status_;
    PacketPool pool_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<Endpoint>> endpoints_;
    /** Every link pipe + the flat lanes behind the batched queries. */
    LinkFabric fabric_;
    /** Outgoing flit channels per node (router outputs incl. local). */
    std::vector<std::vector<const FlitChannel*>> nodeOutChannels_;
    std::vector<LinkRecord> links_;

    // Activity-driven stepping state. The wake graph maps each
    // component to its outgoing pipes and the component on their far
    // end: after a component's cycle, any non-empty outgoing pipe
    // wakes its receiver (credits flow opposite to their link's flit
    // direction, hence separate lists).
    StepMode stepMode_ = StepMode::Activity;
    ActiveSet active_;
    std::int64_t lastCycle_ = 0;
    bool haveStepped_ = false;
    std::vector<int> fullOrder_;       ///< all component ids, sorted
    std::vector<std::uint8_t> verifyMark_;  ///< scratch (verify mode)

    // Sharded stepping state (step_mode=sharded; see DESIGN.md §13).
    // The mesh is partitioned into spatially contiguous node bands;
    // each shard owns the routers *and* endpoints of its band, so a
    // shard id range is a contiguous component id range. Workers step
    // chunks of shards through barrier-aligned phases; the calling
    // thread is crew member 0 (crew_ holds the other threads-1).
    struct Shard
    {
        int compBegin = 0;         ///< first component id (inclusive)
        int compEnd = 0;           ///< one past the last component id
        std::vector<int> active;   ///< this cycle's drained wake list
    };

    int threads_ = 1;              ///< worker count (config "threads")
    int shardChunks_ = 1;          ///< min(threads, shards) = parties
    std::vector<Shard> shards_;
    std::unique_ptr<ThreadPool> crew_;
    SpinBarrier barrier_;
    std::exception_ptr shardError_;
    std::mutex shardErrMutex_;
    std::atomic<bool> shardFailed_{false};
    bool tracerAttached_ = false;
    bool warnedTracerFallback_ = false;

    /** Self-profiler; null (the common case) skips all timing. */
    Profiler* profiler_ = nullptr;
};

} // namespace footprint

#endif // FOOTPRINT_NETWORK_NETWORK_HPP
