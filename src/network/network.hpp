/**
 * @file
 * Full network assembly: routers, endpoints, channels, and the
 * side-band status network, stepped one cycle at a time.
 */

#ifndef FOOTPRINT_NETWORK_NETWORK_HPP
#define FOOTPRINT_NETWORK_NETWORK_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "network/endpoint.hpp"
#include "router/router.hpp"
#include "sim/config.hpp"
#include "topo/mesh.hpp"

namespace footprint {

class TelemetryHub;

/**
 * Double-buffered per-router status table: routers publish idle-VC
 * counts each cycle; neighbors read the previous cycle's values
 * (a one-cycle-delayed side-band network, as DBAR assumes).
 */
class StatusBoard : public StatusProvider
{
  public:
    void init(int num_nodes);

    /** Publish @p count for (node, port); visible after flip(). */
    void publish(int node, int port, int count);

    /** Make this cycle's published values visible to readers. */
    void flip();

    int idleCount(int node, int port) const override;

  private:
    std::vector<std::array<int, kNumPorts>> front_;
    std::vector<std::array<int, kNumPorts>> back_;
};

/**
 * A 2D-mesh network of routers and endpoints built from a SimConfig.
 *
 * Per cycle (step): all routers and endpoints run their receive phase,
 * then their compute phase, then routers transmit into links; finally
 * the status board flips. The two-phase structure makes the simulation
 * independent of iteration order and hence deterministic.
 */
class Network
{
  public:
    explicit Network(const SimConfig& cfg);

    /** Advance the whole network by one cycle. */
    void step(std::int64_t cycle);

    const Mesh& mesh() const { return mesh_; }
    const RoutingAlgorithm& routing() const { return *routing_; }
    const RouterParams& routerParams() const { return params_; }

    Router& router(int node) { return *routers_[idx(node)]; }
    const Router& router(int node) const { return *routers_[idx(node)]; }
    Endpoint& endpoint(int node) { return *endpoints_[idx(node)]; }
    const Endpoint& endpoint(int node) const
    {
        return *endpoints_[idx(node)];
    }

    /** Flits anywhere in the system (buffers, FIFOs, links, sinks). */
    std::int64_t totalFlitsInFlight() const;

    /** Sum of all routers' event counters. */
    Router::Counters aggregateCounters() const;

    /** Reset all routers' event counters. */
    void resetCounters();

    /**
     * Register this network's probes with @p hub and wire its packet
     * tracer into every router and endpoint. Registers network-wide
     * aggregate channels always, and per-router / per-endpoint
     * channels when the hub's config asks for them (see DESIGN.md
     * "Observability" for the channel name schema). No-op on a
     * disabled hub.
     */
    void attachTelemetry(TelemetryHub& hub);

    /** Flits ever sent on any flit channel (links + endpoint links). */
    std::uint64_t totalFlitsSent() const;

    /**
     * One directed link: the forward flit channel and its backward
     * credit channel. Port fields are meaningful only on router ends
     * (-1 on endpoint ends). Built once at construction for the
     * auditor's per-link credit-conservation walk and state dumps.
     */
    struct LinkRecord
    {
        enum class Kind {
            RouterToRouter,
            RouterToEndpoint,  ///< ejection link into the sink
            EndpointToRouter,  ///< injection link from the source
        };

        Kind kind = Kind::RouterToRouter;
        int srcNode = -1;
        int srcPort = -1;  ///< output port at src
        int dstNode = -1;
        int dstPort = -1;  ///< input port at dst
        const FlitChannel* flit = nullptr;
        const CreditChannel* credit = nullptr;
    };

    const std::vector<LinkRecord>& links() const { return links_; }

    /** Flits ever injected across all endpoints. */
    std::uint64_t totalFlitsInjected() const;

    /** Flits ever ejected (drained from sinks) across all endpoints. */
    std::uint64_t totalFlitsEjected() const;

  private:
    static std::size_t idx(int node)
    {
        return static_cast<std::size_t>(node);
    }

    FlitChannel* newFlitChannel(int latency);
    CreditChannel* newCreditChannel(int latency);

    Mesh mesh_;
    RouterParams params_;
    std::unique_ptr<RoutingAlgorithm> routing_;
    StatusBoard status_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<Endpoint>> endpoints_;
    std::vector<std::unique_ptr<FlitChannel>> flitChannels_;
    std::vector<std::unique_ptr<CreditChannel>> creditChannels_;
    /** Outgoing flit channels per node (router outputs incl. local). */
    std::vector<std::vector<const FlitChannel*>> nodeOutChannels_;
    std::vector<LinkRecord> links_;
};

} // namespace footprint

#endif // FOOTPRINT_NETWORK_NETWORK_HPP
