#include "network/sweep.hpp"

#include <cstdio>
#include <sstream>

#include "exec/exec_context.hpp"
#include "sim/log.hpp"

namespace footprint {

bool
runSaturated(const RunStats& stats, double zero_load, double factor)
{
    // A run that failed to drain its measured packets is saturated by
    // definition; otherwise use the standard latency criterion.
    if (stats.saturated)
        return true;
    return zero_load > 0.0 && stats.avgLatency() > factor * zero_load;
}

namespace {

/** One curve point at @p rate, classified against @p zero_load. */
CurvePoint
runCurvePoint(const SimConfig& base, double rate, double zero_load)
{
    SimConfig cfg = base;
    cfg.setDouble("injection_rate", rate);
    const RunStats stats = runExperiment(cfg);
    CurvePoint p;
    p.offered = rate;
    p.accepted = stats.acceptedFlitsPerNodeCycle;
    p.latency = stats.avgLatency();
    p.saturated = runSaturated(stats, zero_load, 3.0);
    return p;
}

/**
 * Replay the sequential skip rule over in-order points: once two
 * consecutive points are saturated, later points carry the plateau
 * values forward. Applying this to eagerly computed points yields
 * exactly what the lazy sequential walk produces, which is what makes
 * the parallel curve bit-identical to the sequential one.
 */
void
applySaturationCarryForward(std::vector<CurvePoint>& points)
{
    int consecutive_saturated = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (consecutive_saturated >= 2) {
            points[i].accepted = points[i - 1].accepted;
            points[i].latency = points[i - 1].latency;
            points[i].saturated = true;
            continue;
        }
        consecutive_saturated =
            points[i].saturated ? consecutive_saturated + 1 : 0;
    }
}

} // namespace

std::vector<CurvePoint>
latencyThroughputCurve(const SimConfig& base,
                       const std::vector<double>& rates)
{
    const double zero_load = zeroLoadLatency(base);
    std::vector<CurvePoint> points;
    points.reserve(rates.size());
    int consecutive_saturated = 0;
    for (double rate : rates) {
        // Once the curve is clearly past saturation, skip further
        // (expensive, fully congested) runs; the carried-forward
        // accepted throughput approximates the post-saturation
        // plateau.
        if (consecutive_saturated >= 2) {
            CurvePoint p;
            p.offered = rate;
            p.accepted = points.back().accepted;
            p.latency = points.back().latency;
            p.saturated = true;
            points.push_back(p);
            continue;
        }
        points.push_back(runCurvePoint(base, rate, zero_load));
        consecutive_saturated =
            points.back().saturated ? consecutive_saturated + 1 : 0;
    }
    return points;
}

std::vector<CurvePoint>
latencyThroughputCurve(const SimConfig& base,
                       const std::vector<double>& rates,
                       ExecContext& ctx)
{
    if (!ctx.parallel())
        return latencyThroughputCurve(base, rates);

    // Eager evaluation: the zero-load probe and every rate point are
    // independent jobs. Post-saturation points the sequential path
    // would skip are computed (and discarded by the carry-forward
    // pass) — wasted work that parallelism absorbs, in exchange for
    // results that match the sequential curve bit for bit.
    std::vector<std::function<CurvePoint()>> tasks;
    tasks.reserve(rates.size() + 1);
    tasks.push_back([&base]() {
        CurvePoint p;
        p.latency = zeroLoadLatency(base);
        return p;
    });
    for (double rate : rates) {
        tasks.push_back(
            [&base, rate]() { return runCurvePoint(base, rate, 0.0); });
    }
    std::vector<CurvePoint> raw = ctx.map(std::move(tasks));

    const double zero_load = raw.front().latency;
    std::vector<CurvePoint> points(raw.begin() + 1, raw.end());
    for (CurvePoint& p : points) {
        // Re-classify against the probe's zero-load latency (the rate
        // jobs ran before it was known).
        if (!p.saturated)
            p.saturated = zero_load > 0.0
                && p.latency > 3.0 * zero_load;
    }
    applySaturationCarryForward(points);
    return points;
}

double
zeroLoadLatency(const SimConfig& base, double probe_rate)
{
    SimConfig cfg = base;
    cfg.setDouble("injection_rate", probe_rate);
    const RunStats stats = runExperiment(cfg);
    return stats.avgLatency();
}

double
saturationThroughput(const SimConfig& base, double latency_factor,
                     double tolerance)
{
    // Binary bisection == bracket-1 parallel search run inline.
    return saturationThroughput(base, ExecContext::sequential(),
                                latency_factor, tolerance, 1);
}

double
saturationThroughput(const SimConfig& base, ExecContext& ctx,
                     double latency_factor, double tolerance,
                     int bracket)
{
    FP_ASSERT(bracket >= 1, "saturation search needs bracket >= 1");
    const double zero_load = zeroLoadLatency(base);

    auto saturated_at = [&base, zero_load,
                         latency_factor](double rate) {
        SimConfig cfg = base;
        cfg.setDouble("injection_rate", rate);
        const RunStats stats = runExperiment(cfg);
        return runSaturated(stats, zero_load, latency_factor);
    };

    double lo = 0.02;
    double hi = 1.0;
    if (saturated_at(lo))
        return lo;
    while (hi - lo > tolerance) {
        // Fixed probe schedule: `bracket` evenly spaced interior
        // rates, evaluated concurrently. The schedule depends only on
        // (lo, hi, bracket), so any jobs value walks the same interval
        // sequence and returns the same answer.
        std::vector<double> probes;
        probes.reserve(static_cast<std::size_t>(bracket));
        for (int i = 1; i <= bracket; ++i) {
            probes.push_back(lo
                             + (hi - lo) * static_cast<double>(i)
                                 / static_cast<double>(bracket + 1));
        }
        std::vector<std::function<bool()>> tasks;
        tasks.reserve(probes.size());
        for (double rate : probes)
            tasks.push_back(
                [&saturated_at, rate]() { return saturated_at(rate); });
        const std::vector<bool> sat = ctx.map(std::move(tasks));

        // New bracket: hi becomes the lowest saturated probe; lo the
        // highest unsaturated probe below it.
        double new_hi = hi;
        for (std::size_t i = 0; i < probes.size(); ++i) {
            if (sat[i]) {
                new_hi = probes[i];
                break;
            }
        }
        double new_lo = lo;
        for (std::size_t i = probes.size(); i-- > 0;) {
            if (!sat[i] && probes[i] < new_hi) {
                new_lo = probes[i];
                break;
            }
        }
        lo = new_lo;
        hi = new_hi;
    }
    return lo;
}

std::vector<double>
linspace(double lo, double hi, int count)
{
    FP_ASSERT(count >= 2, "linspace needs at least two points");
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        out.push_back(lo
                      + (hi - lo) * static_cast<double>(i)
                          / static_cast<double>(count - 1));
    }
    return out;
}

std::string
formatCurve(const std::string& label,
            const std::vector<CurvePoint>& points)
{
    std::ostringstream oss;
    for (const CurvePoint& p : points) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%-18s offered=%.3f accepted=%.3f latency=%8.2f%s\n",
                      label.c_str(), p.offered, p.accepted, p.latency,
                      p.saturated ? "  [saturated]" : "");
        oss << line;
    }
    return oss.str();
}

} // namespace footprint
