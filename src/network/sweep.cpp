#include "network/sweep.hpp"

#include <cstdio>
#include <sstream>

#include "sim/log.hpp"

namespace footprint {

namespace {

/** Classify a run as saturated for the purposes of the search. */
bool
isSaturated(const RunStats& stats, double zero_load, double factor)
{
    // A run that failed to drain its measured packets is saturated by
    // definition; otherwise use the standard latency criterion.
    // (Accepted-vs-offered comparisons are deliberately not used:
    // patterns with fixed points, e.g. transpose, legitimately accept
    // less than the per-node offered rate.)
    if (stats.saturated)
        return true;
    return zero_load > 0.0 && stats.avgLatency() > factor * zero_load;
}

} // namespace

std::vector<CurvePoint>
latencyThroughputCurve(const SimConfig& base,
                       const std::vector<double>& rates)
{
    const double zero_load = zeroLoadLatency(base);
    std::vector<CurvePoint> points;
    points.reserve(rates.size());
    int consecutive_saturated = 0;
    for (double rate : rates) {
        CurvePoint p;
        p.offered = rate;
        // Once the curve is clearly past saturation, skip further
        // (expensive, fully congested) runs; the carried-forward
        // accepted throughput approximates the post-saturation
        // plateau.
        if (consecutive_saturated >= 2) {
            p.accepted = points.back().accepted;
            p.latency = points.back().latency;
            p.saturated = true;
            points.push_back(p);
            continue;
        }
        SimConfig cfg = base;
        cfg.setDouble("injection_rate", rate);
        const RunStats stats = runExperiment(cfg);
        p.accepted = stats.acceptedFlitsPerNodeCycle;
        p.latency = stats.avgLatency();
        p.saturated = isSaturated(stats, zero_load, 3.0);
        consecutive_saturated =
            p.saturated ? consecutive_saturated + 1 : 0;
        points.push_back(p);
    }
    return points;
}

double
zeroLoadLatency(const SimConfig& base, double probe_rate)
{
    SimConfig cfg = base;
    cfg.setDouble("injection_rate", probe_rate);
    const RunStats stats = runExperiment(cfg);
    return stats.avgLatency();
}

double
saturationThroughput(const SimConfig& base, double latency_factor,
                     double tolerance)
{
    const double zero_load = zeroLoadLatency(base);

    auto saturated_at = [&](double rate) {
        SimConfig cfg = base;
        cfg.setDouble("injection_rate", rate);
        const RunStats stats = runExperiment(cfg);
        return isSaturated(stats, zero_load, latency_factor);
    };

    double lo = 0.02;
    double hi = 1.0;
    if (saturated_at(lo))
        return lo;
    while (hi - lo > tolerance) {
        const double mid = (lo + hi) / 2.0;
        if (saturated_at(mid))
            hi = mid;
        else
            lo = mid;
    }
    return lo;
}

std::vector<double>
linspace(double lo, double hi, int count)
{
    FP_ASSERT(count >= 2, "linspace needs at least two points");
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        out.push_back(lo
                      + (hi - lo) * static_cast<double>(i)
                          / static_cast<double>(count - 1));
    }
    return out;
}

std::string
formatCurve(const std::string& label,
            const std::vector<CurvePoint>& points)
{
    std::ostringstream oss;
    for (const CurvePoint& p : points) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%-18s offered=%.3f accepted=%.3f latency=%8.2f%s\n",
                      label.c_str(), p.offered, p.accepted, p.latency,
                      p.saturated ? "  [saturated]" : "");
        oss << line;
    }
    return oss.str();
}

} // namespace footprint
