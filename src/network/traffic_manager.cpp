#include "network/traffic_manager.hpp"

#include <algorithm>
#include <csignal>
#include <memory>
#include <mutex>
#include <optional>
#include <set>

#include "network/network.hpp"
#include "obs/auditor.hpp"
#include "obs/console.hpp"
#include "obs/heatmap.hpp"
#include "obs/profiler.hpp"
#include "obs/run_metadata.hpp"
#include "obs/state_dump.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeseries.hpp"
#include "obs/watchdog.hpp"
#include "sim/horizon.hpp"
#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"
#include "traffic/trace.hpp"

namespace footprint {

namespace {

/** Cycles of drain inactivity after which a run is declared saturated. */
constexpr std::int64_t kDrainStallLimit = 2500;

/**
 * Fraction of measured packets that must have ejected by the end of
 * the measurement window for the drain phase to be worth running; a
 * deeply saturated network (huge source backlogs) is reported
 * saturated immediately instead of burning the whole drain budget.
 */
constexpr double kDrainWorthwhileFraction = 0.5;

volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void
sigintFlag(int)
{
    g_interrupted = 1;
}

/**
 * Installs a SIGINT handler that only raises a flag, so a dump-on-abort
 * run can serialize its forensic state before exiting; restores the
 * previous handler once the last concurrent user leaves. Signal
 * dispositions are process-global, so when several sweep jobs run
 * dump_on_abort simultaneously only the first instance installs the
 * handler and only the last restores it (every instance still sees the
 * shared flag fire).
 */
class ScopedSigintFlag
{
  public:
    ScopedSigintFlag()
    {
        std::lock_guard<std::mutex> lock(mutex());
        if (users()++ == 0) {
            g_interrupted = 0;
            savedPrev() = std::signal(SIGINT, sigintFlag);
        }
    }
    ~ScopedSigintFlag()
    {
        std::lock_guard<std::mutex> lock(mutex());
        if (--users() == 0)
            std::signal(SIGINT, savedPrev());
    }

    ScopedSigintFlag(const ScopedSigintFlag&) = delete;
    ScopedSigintFlag& operator=(const ScopedSigintFlag&) = delete;

    static bool fired() { return g_interrupted != 0; }

  private:
    using Handler = void (*)(int);

    static std::mutex&
    mutex()
    {
        static std::mutex m;
        return m;
    }
    static int&
    users()
    {
        static int n = 0;
        return n;
    }
    static Handler&
    savedPrev()
    {
        static Handler h = nullptr;
        return h;
    }
};

} // namespace

TrafficManager::TrafficManager(const SimConfig& cfg) : cfg_(cfg) {}

RunStats
TrafficManager::run()
{
    Network net(cfg_);
    const Topology& topo = net.topology();
    const Mesh& mesh = net.mesh();
    const int n = mesh.numNodes();
    // Synthetic patterns inject per *terminal*: on mesh/torus/ring a
    // terminal is a node, on a cmesh each router hosts `concentration`
    // terminals sharing its endpoint.
    const int num_terminals = topo.numTerminals();

    // Telemetry: an externally attached hub wins; otherwise build one
    // from the config's telemetry_* keys when they enable anything.
    // `hub` stays nullptr on untelemetered runs, so the per-cycle cost
    // of the subsystem being compiled in is a single null check.
    std::unique_ptr<TelemetryHub> owned_hub;
    TelemetryHub* hub = externalHub_;
    if (!hub) {
        const TelemetryConfig tc = TelemetryHub::configFromSim(cfg_);
        if (tc.anyEnabled()) {
            owned_hub = std::make_unique<TelemetryHub>(tc);
            hub = owned_hub.get();
        }
    }
    if (hub)
        net.attachTelemetry(*hub);

    const RunMetadata meta = RunMetadata::fromConfig(cfg_);
    if (owned_hub)
        owned_hub->setRunMetadata(meta);

    // Self-profiler and spatial observatory (DESIGN.md §14). Both stay
    // null/disabled unless their config key asks for them; the profiler
    // pointer is the only thing the stepping hot path ever sees, and
    // the heatmap collector only reads network state from this serial
    // loop, so neither can perturb results.
    std::unique_ptr<Profiler> profiler;
    if (cfg_.getBool("profile")) {
        profiler = std::make_unique<Profiler>();
        net.attachProfiler(profiler.get());
    }
    Profiler* const prof = profiler.get();
    const HeatmapConfig hm_cfg = HeatmapConfig::fromSim(cfg_);
    std::unique_ptr<HeatmapCollector> heatmap;
    if (hm_cfg.enabled)
        heatmap = std::make_unique<HeatmapCollector>(net, hm_cfg);

    // Flight recorder (DESIGN.md §15): streams windowed throughput /
    // latency / regime records and feeds the steady-state detector.
    // Built whenever the stream or warmup=auto needs it; like every
    // other collector it only reads network state from this serial
    // loop, so determinism is untouched, and when off it costs one
    // null check per cycle.
    const TimeseriesConfig ts_cfg = TimeseriesConfig::fromSim(cfg_);
    std::unique_ptr<FlightRecorder> recorder;
    if (ts_cfg.active())
        recorder = std::make_unique<FlightRecorder>(net, ts_cfg, &meta);

    // Live status line (display-only, rate-limited, off by default).
    std::unique_ptr<RunConsole> console;
    if (cfg_.getBool("console")) {
        console = std::make_unique<RunConsole>(
            static_cast<int>(cfg_.getInt("console_interval_ms")));
    }

    // Observability supervisors: the invariant auditor and the
    // deadlock/livelock watchdog, both gated on the "audit" key and
    // both a single null check per cycle when disabled.
    std::unique_ptr<InvariantAuditor> auditor;
    std::unique_ptr<Watchdog> watchdog;
    if (cfg_.getBool("audit")) {
        InvariantAuditor::Params ap;
        ap.interval = cfg_.getInt("audit_interval");
        auditor = std::make_unique<InvariantAuditor>(net, ap);

        Watchdog::Params wp;
        wp.interval = cfg_.getInt("watchdog_interval");
        wp.maxHops = static_cast<int>(cfg_.getInt("watchdog_max_hops"));
        wp.maxAge = cfg_.getInt("watchdog_max_age");
        watchdog = std::make_unique<Watchdog>(
            net, hub ? hub->tracer() : nullptr, wp);
    }
    if (recorder)
        recorder->setWatchdog(watchdog.get());
    const bool dump_on_abort = cfg_.getBool("dump_on_abort");
    const std::string dump_path = cfg_.getStr("dump_path");
    std::optional<ScopedSigintFlag> sigint_guard;
    if (dump_on_abort)
        sigint_guard.emplace();

    const std::string mode = cfg_.getStr("traffic");
    // Under warmup=auto the warmup length is detector-driven: it
    // starts at the warmup_max_cycles cap and shrinks to the cycle at
    // which the steady-state detector converges. The detector only
    // consumes bit-identical window records, so the chosen warmup —
    // and everything downstream of it — is identical across step
    // modes and thread counts.
    std::int64_t warmup = cfg_.getInt("warmup_cycles");
    if (ts_cfg.warmupAuto)
        warmup = ts_cfg.warmupMax;
    const auto measure = cfg_.getInt("measure_cycles");
    const auto drain_limit = cfg_.getInt("drain_cycles");
    const bool skip_ahead = cfg_.getBool("skip_ahead");
    const double rate = cfg_.getDouble("injection_rate");
    const PacketSizeDist size_dist =
        PacketSizeDist::parse(cfg_.getStr("packet_size"));
    Rng gen(static_cast<std::uint64_t>(cfg_.getInt("seed"))
            ^ 0x7a43f00d5eedULL);

    RunStats stats;
    stats.offeredFlitsPerNodeCycle = rate;

    // --- Per-mode setup. ---
    // Synthetic modes drive injection through an InjectionSchedule:
    // geometric inter-arrival gaps drawn per fire event instead of a
    // Bernoulli trial per node per cycle. Same process in
    // distribution, O(fires) instead of O(nodes × cycles), and —
    // crucially for the skip-ahead fast path — the schedule knows the
    // exact next-arrival cycle, and its RNG consumption is tied to
    // fire events so skipping idle cycles cannot shift any draw.
    std::unique_ptr<TrafficPattern> pattern;
    std::unique_ptr<TrafficPattern> background_pattern;
    std::unique_ptr<InjectionSchedule> sched;
    std::unique_ptr<InjectionSchedule> hs_sched;
    std::unique_ptr<InjectionSchedule> bg_sched;
    std::vector<std::pair<int, int>> hotspot_flows;
    std::set<int> hotspot_sources;
    std::vector<int> bg_nodes;  ///< non-hotspot sources, slot order
    std::unique_ptr<TraceReader> trace;
    std::optional<TraceEvent> pending;

    const bool is_trace = mode == "trace";
    const bool is_hotspot = mode == "hotspot";
    if (is_trace) {
        trace = std::make_unique<TraceReader>(cfg_.getStr("trace_file"));
        pending = trace->next();
    } else if (is_hotspot) {
        hotspot_flows = defaultHotspotFlows(mesh);
        for (const auto& flow : hotspot_flows)
            hotspot_sources.insert(flow.first);
        const double bg_rate = cfg_.contains("background_rate")
            ? cfg_.getDouble("background_rate")
            : 0.3;
        background_pattern = makeTrafficPattern("uniform", mesh);
        for (int node = 0; node < n; ++node) {
            if (hotspot_sources.count(node) == 0)
                bg_nodes.push_back(node);
        }
        if (!hotspot_flows.empty())
            hs_sched = std::make_unique<InjectionSchedule>(
                static_cast<int>(hotspot_flows.size()),
                rate / size_dist.mean(), gen);
        if (!bg_nodes.empty())
            bg_sched = std::make_unique<InjectionSchedule>(
                static_cast<int>(bg_nodes.size()),
                bg_rate / size_dist.mean(), gen);
    } else {
        pattern = makeTrafficPattern(mode, topo);
        sched = std::make_unique<InjectionSchedule>(
            num_terminals, rate / size_dist.mean(), gen);
    }

    std::uint64_t next_packet_id = 1;
    auto make_packet = [&](int src, int dest, int size,
                           std::int64_t cycle, FlowClass fc,
                           bool measured) {
        Packet p;
        p.id = next_packet_id++;
        p.src = src;
        p.dest = dest;
        p.size = size;
        p.createTime = cycle;
        p.flowClass = fc;
        p.measured = measured;
        if (measured)
            ++stats.measuredCreated;
        if (recorder)
            recorder->onOffered(size);
        net.endpoint(src).enqueue(p);
    };

    // --- Main loop. ---
    std::uint64_t flits_at_measure_start = 0;
    std::uint64_t flits_at_measure_end = 0;
    std::int64_t trace_end_cycle = -1;
    std::int64_t last_progress_cycle = 0;
    std::int64_t cycle = 0;
    std::int64_t hard_limit = warmup + measure + drain_limit;
    // Collect-loop scratch; capacity warms up once, then the per-cycle
    // drain is allocation-free.
    std::vector<EjectedPacket> drained;

    const char* abort_reason = nullptr;

    if (hub)
        hub->beginPhase("warmup", 0);
    if (prof)
        prof->beginRun();
    try {
    for (; cycle < hard_limit; ++cycle) {
        const bool measuring = cycle >= warmup
            && cycle < warmup + measure;
        if (hub) {
            if (cycle == warmup)
                hub->beginPhase("measure", cycle);
            else if (cycle == warmup + measure)
                hub->beginPhase("drain", cycle);
        }

        // Generate traffic.
        const std::uint64_t inject_t0 = prof ? Profiler::nowNs() : 0;
        if (is_trace) {
            while (pending && pending->cycle <= cycle) {
                // Trace events carry their own packet size.
                make_packet(pending->src, pending->dest, pending->size,
                            cycle, FlowClass::Background, true);
                pending = trace->next();
            }
            if (!pending && trace_end_cycle < 0)
                trace_end_cycle = cycle;
        } else if (is_hotspot) {
            // Per fire: draws in a fixed order (dest where applicable,
            // size, next gap), so the RNG sequence depends only on the
            // fire events — never on how many idle cycles elapsed.
            if (hs_sched) {
                for (int slot; (slot = hs_sched->popDue(cycle)) >= 0;) {
                    const auto& flow =
                        hotspot_flows[static_cast<std::size_t>(slot)];
                    const int size = size_dist.sample(gen);
                    hs_sched->scheduleNext(slot, cycle, gen);
                    make_packet(flow.first, flow.second, size, cycle,
                                FlowClass::Hotspot, false);
                }
            }
            if (bg_sched) {
                for (int slot; (slot = bg_sched->popDue(cycle)) >= 0;) {
                    const int node =
                        bg_nodes[static_cast<std::size_t>(slot)];
                    const int dest = background_pattern->dest(node, gen);
                    const int size = size_dist.sample(gen);
                    bg_sched->scheduleNext(slot, cycle, gen);
                    if (dest >= 0) {
                        make_packet(node, dest, size, cycle,
                                    FlowClass::Background, measuring);
                    }
                }
            }
        } else {
            // Slots are terminals; packets travel router-to-router, so
            // map terminal ids down before enqueueing (identity when
            // concentration == 1). Intra-router cmesh traffic injects
            // with src == dest and turns around at the local port.
            for (int slot; (slot = sched->popDue(cycle)) >= 0;) {
                const int dest = pattern->dest(slot, gen);
                const int size = size_dist.sample(gen);
                sched->scheduleNext(slot, cycle, gen);
                if (dest >= 0) {
                    make_packet(topo.terminalRouter(slot),
                                topo.terminalRouter(dest), size, cycle,
                                FlowClass::Background, measuring);
                }
            }
        }
        if (prof) {
            prof->addPhaseNs(ProfPhase::Inject,
                             Profiler::nowNs() - inject_t0);
        }

        if (cycle == warmup) {
            net.resetCounters();
            if (recorder)
                recorder->onCountersReset();
            for (int node = 0; node < n; ++node) {
                flits_at_measure_start +=
                    net.endpoint(node).flitsEjected();
            }
        }

        net.step(cycle);
        if (heatmap)
            heatmap->tick(cycle);
        if (hub)
            hub->tick(cycle);
        if (auditor)
            auditor->tick(cycle);
        if (watchdog) {
            watchdog->tick(cycle);
            if (watchdog->deadlockDetected()) {
                // A cyclic wait-for dependency never resolves; abort
                // now so the forensic dump captures the cycle intact.
                abort_reason = "deadlock";
                ++cycle;
                break;
            }
        }
        if (sigint_guard && ScopedSigintFlag::fired()) {
            abort_reason = "sigint";
            ++cycle;
            break;
        }

        // Collect completions.
        const std::uint64_t collect_t0 = prof ? Profiler::nowNs() : 0;
        for (int node = 0; node < n; ++node) {
            if (net.endpoint(node).ejectedCount() == 0)
                continue;
            drained.clear();
            net.endpoint(node).drainEjectedInto(drained);
            for (const EjectedPacket& p : drained) {
                if (recorder)
                    recorder->onEjected(p.latency());
                if (p.flowClass == FlowClass::Hotspot) {
                    stats.hotspotLatency.add(
                        static_cast<double>(p.latency()));
                    stats.hotspotLatencyHdr.add(
                        static_cast<std::uint64_t>(p.latency()));
                }
                if (!p.measured)
                    continue;
                ++stats.measuredEjected;
                last_progress_cycle = cycle;
                stats.latency.add(static_cast<double>(p.latency()));
                stats.latencyHist.add(static_cast<double>(p.latency()));
                stats.latencyHdr.add(
                    static_cast<std::uint64_t>(p.latency()));
                stats.hops.add(static_cast<double>(p.hops));
            }
        }
        if (prof) {
            prof->addPhaseNs(ProfPhase::Collect,
                             Profiler::nowNs() - collect_t0);
        }

        // The recorder ticks after the collect loop so a window close
        // sees the cycle's ejections in both the latency histogram and
        // the accepted-flit delta.
        if (recorder) {
            recorder->tick(cycle);
            // warmup=auto: end warmup at the first steady window.
            if (ts_cfg.warmupAuto && cycle + 1 < warmup
                && recorder->detector().converged()) {
                warmup = cycle + 1;
                hard_limit = warmup + measure + drain_limit;
            }
        }
        if (console) {
            const char* phase = cycle < warmup ? "warmup"
                : cycle < warmup + measure     ? "measure"
                                               : "drain";
            const WindowRecord* last = recorder
                    && !recorder->windows().empty()
                ? &recorder->windows().back()
                : nullptr;
            console->updateRun(cycle, hard_limit, phase, last, n);
        }

        if (cycle == warmup + measure - 1) {
            stats.counters = net.aggregateCounters();
            flits_at_measure_end = 0;
            for (int node = 0; node < n; ++node) {
                flits_at_measure_end +=
                    net.endpoint(node).flitsEjected();
            }
            // Deeply saturated (most measured packets still stuck in
            // source queues): draining would take unbounded time, so
            // report saturation right away.
            if (!is_trace
                && static_cast<double>(stats.measuredEjected)
                    < kDrainWorthwhileFraction
                        * static_cast<double>(stats.measuredCreated)) {
                ++cycle;
                break;
            }
        }

        // Termination: all measured packets drained.
        const bool gen_done = is_trace
            ? (!pending && cycle >= warmup + measure)
            : (cycle >= warmup + measure);
        if (gen_done && stats.measuredEjected >= stats.measuredCreated) {
            stats.drained = true;
            ++cycle;
            break;
        }
        // Saturation heuristic: no measured packet completed for a
        // long stretch of the drain phase.
        if (gen_done && cycle - std::max(last_progress_cycle,
                                         warmup + measure)
                > kDrainStallLimit) {
            break;
        }

        // --- Event-horizon fast path (DESIGN.md §16). ---
        // A fully quiescent network cannot change state until an
        // external event: fold every upcoming event cycle into a
        // horizon and jump the clock there in one step. Periodic
        // observers are clamped so the jump lands exactly on their
        // due cycle (a late re-arm would shift their schedule); the
        // flight recorder and heatmap are instead jump-aware and are
        // caught up to horizon-1 here, on the frozen pre-landing
        // state, before the landing cycle steps. The drain-stall
        // heuristic needs no clamp: idle + generation done implies
        // fully drained, which already broke out above.
        if (skip_ahead) {
            ProfileScope skip_ps(prof, ProfPhase::Skip);
            if (net.idle()) {
                HorizonTracker hz(cycle + 1, hard_limit);
                if (is_trace) {
                    if (pending)
                        hz.clamp(pending->cycle);
                } else {
                    if (sched)
                        hz.clamp(sched->nextFireCycle());
                    if (hs_sched)
                        hz.clamp(hs_sched->nextFireCycle());
                    if (bg_sched)
                        hz.clamp(bg_sched->nextFireCycle());
                }
                hz.clamp(warmup);
                hz.clamp(warmup + measure - 1);
                hz.clamp(warmup + measure);
                if (auditor)
                    hz.clamp(auditor->nextDueCycle());
                if (watchdog)
                    hz.clamp(watchdog->nextDueCycle());
                if (hub)
                    hz.clamp(hub->nextSampleCycle(cycle + 1));
                if (hz.skips()) {
                    const std::int64_t target = hz.cycle();
                    net.skipTo(target);
                    stats.cyclesSkipped += target - (cycle + 1);
                    if (recorder)
                        recorder->tick(target - 1);
                    if (heatmap)
                        heatmap->tick(target - 1);
                    cycle = target - 1;
                }
            }
        }
    }
    } catch (const InvariantError& e) {
        // A violated runtime invariant: close trace artifacts, write
        // the forensic dump, and let the error propagate.
        if (hub)
            hub->finish(cycle);
        if (dump_on_abort) {
            StateDumpContext ctx;
            ctx.cycle = cycle;
            ctx.reason = std::string("panic: ") + e.what();
            ctx.meta = &meta;
            if (auditor)
                ctx.violations = &auditor->violations();
            if (watchdog)
                ctx.events = &watchdog->events();
            dumpStateToFile(dump_path, net, ctx);
        }
        throw;
    }

    if (hub)
        hub->finish(cycle);

    if (console)
        console->close();
    stats.cyclesRun = cycle;
    stats.saturated = !stats.drained;
    stats.warmupUsed = warmup;
    if (recorder) {
        recorder->finish(cycle);
        stats.steadyStateCycle = recorder->steadyCycle();
        stats.saturationOnsetCycle = recorder->saturationOnsetCycle();
        if (ts_cfg.enabled)
            stats.timeseriesPath = ts_cfg.outPath;
        // Flag measurement windows that opened before convergence:
        // their statistics may carry warmup bias.
        if (cycle > warmup
            && (stats.steadyStateCycle < 0
                || stats.steadyStateCycle > warmup)) {
            stats.measuredBeforeSteady = true;
            warn("measurement started at cycle "
                 + std::to_string(warmup)
                 + " before steady state was "
                 + (stats.steadyStateCycle < 0
                        ? std::string("reached")
                        : "detected (steady at cycle "
                            + std::to_string(stats.steadyStateCycle)
                            + ")")
                 + "; consider warmup=auto or a longer warmup");
        }
    }
    if (auditor)
        stats.auditViolations = auditor->violationCount();
    if (watchdog)
        stats.watchdogEvents =
            static_cast<std::uint64_t>(watchdog->events().size());

    // Classify any non-drained exit, even when the watchdog was off:
    // the one-shot wait-for-graph pass distinguishes a true deadlock
    // from endpoint tree saturation at negligible cost.
    Watchdog::Report stall;
    if (!stats.drained) {
        if (watchdog) {
            stall = watchdog->classify(cycle);
        } else {
            Watchdog::Params wp;
            wp.interval = 0;
            stall = Watchdog(net, nullptr, wp).classify(cycle);
        }
        stats.stallClass = Watchdog::stallClassName(stall.stallClass);
    }

    // Forensic dump: invariant violation, watchdog detection, SIGINT,
    // or any abort short of a clean drain.
    if (dump_on_abort) {
        std::string reason;
        if (abort_reason)
            reason = abort_reason;
        else if (auditor && !auditor->clean())
            reason = "invariant_violation";
        else if (!stats.drained)
            reason = cycle >= hard_limit ? "hard_limit" : "saturation";
        if (!reason.empty()) {
            StateDumpContext ctx;
            ctx.cycle = cycle;
            ctx.reason = reason;
            ctx.meta = &meta;
            if (auditor)
                ctx.violations = &auditor->violations();
            if (!stats.drained)
                ctx.stall = &stall;
            if (watchdog)
                ctx.events = &watchdog->events();
            if (dumpStateToFile(dump_path, net, ctx))
                stats.stateDumpPath = dump_path;
        }
    }
    if (measure > 0 && flits_at_measure_end >= flits_at_measure_start) {
        // Normalized per terminal (== per node except on a cmesh), the
        // same basis as the offered rate.
        stats.acceptedFlitsPerNodeCycle =
            static_cast<double>(flits_at_measure_end
                                - flits_at_measure_start)
            / (static_cast<double>(num_terminals)
               * static_cast<double>(measure));
    }

    if (prof) {
        prof->endRun(cycle);
        const std::string out = cfg_.getStr("profile_out");
        const std::string row = prof->toJsonRow(
            cfg_.getStr("traffic") + "/" + cfg_.getStr("routing"),
            cfg_.getStr("step_mode"),
            static_cast<int>(cfg_.getInt("threads")));
        if (writeProfileDocument(out, &meta, {row}))
            stats.profilePath = out;
        else
            warn("could not write profile document to " + out);
    }
    if (heatmap) {
        heatmap->finish(cycle);
        if (heatmap->writeTo(hm_cfg.outPath, &meta))
            stats.heatmapPath = hm_cfg.outPath;
        else
            warn("could not write heatmap document to "
                 + hm_cfg.outPath);
    }
    return stats;
}

RunStats
runExperiment(const SimConfig& cfg)
{
    TrafficManager tm(cfg);
    return tm.run();
}

} // namespace footprint
