/**
 * @file
 * Traffic manager: drives a Network through warmup / measurement /
 * drain phases with synthetic, hotspot, or trace-driven traffic and
 * collects the statistics the paper's evaluation reports.
 */

#ifndef FOOTPRINT_NETWORK_TRAFFIC_MANAGER_HPP
#define FOOTPRINT_NETWORK_TRAFFIC_MANAGER_HPP

#include <cstdint>
#include <string>

#include "obs/hdr_histogram.hpp"
#include "router/router.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace footprint {

class TelemetryHub;

/** Aggregate results of one simulation run. */
struct RunStats
{
    /** Latency of measured packets (background class only). */
    StatAccumulator latency;
    /** Latency distribution of measured packets (5-cycle bins). */
    Histogram latencyHist{5.0, 400};
    /**
     * Log-bucketed latency distribution of measured packets: p99/p999
     * in bounded memory with <=0.4% relative error, where the linear
     * histogram above saturates its top bin (see DESIGN.md §14).
     */
    HdrHistogram latencyHdr;
    /** Latency of hotspot-class packets (informational). */
    StatAccumulator hotspotLatency;
    /** Log-bucketed latency distribution of hotspot-class packets. */
    HdrHistogram hotspotLatencyHdr;
    /** Hop counts of measured packets. */
    StatAccumulator hops;

    double offeredFlitsPerNodeCycle = 0.0;
    double acceptedFlitsPerNodeCycle = 0.0;

    std::uint64_t measuredCreated = 0;
    std::uint64_t measuredEjected = 0;

    bool drained = false;    ///< every measured packet was ejected
    bool saturated = false;  ///< run aborted / did not drain

    /**
     * Watchdog classification of a non-drained exit: "deadlock",
     * "tree_saturation", or "none" (drained / network empty).
     */
    std::string stallClass = "none";

    /** Invariant violations found by the auditor (0 when audit off). */
    std::uint64_t auditViolations = 0;

    /** Watchdog detections (progress stalls + livelock suspects). */
    std::uint64_t watchdogEvents = 0;

    /** Path of the forensic state dump, when one was written. */
    std::string stateDumpPath;

    /** Path of the footprint.profile/1 document (profile=true). */
    std::string profilePath;

    /** Path of the footprint.heatmap/1 document (heatmap=true). */
    std::string heatmapPath;

    /** Path of the footprint.timeseries/1 stream (timeseries=true). */
    std::string timeseriesPath;

    /**
     * Cycle at which the steady-state detector converged (end cycle
     * of the first steady window); -1 when the flight recorder was
     * off or the run never reached steady state.
     */
    std::int64_t steadyStateCycle = -1;

    /**
     * Start cycle of the first sustained window where accepted
     * throughput lagged offered while the in-flight backlog grew
     * (tree-saturation onset); -1 when the recorder was off or no
     * onset was seen.
     */
    std::int64_t saturationOnsetCycle = -1;

    /** Warmup cycles actually applied (differs under warmup=auto). */
    std::int64_t warmupUsed = 0;

    /**
     * True when the measurement window opened before the detector
     * had converged — the measured statistics may carry warmup bias.
     * Only meaningful when the flight recorder ran.
     */
    bool measuredBeforeSteady = false;

    /** Router event counters over the measurement window. */
    Router::Counters counters;

    std::int64_t cyclesRun = 0;

    /**
     * Cycles the event-horizon fast path jumped over instead of
     * ticking (skip_ahead=true). Included in cyclesRun; results are
     * bit-identical to cyclesSkipped == 0.
     */
    std::int64_t cyclesSkipped = 0;

    double avgLatency() const { return latency.mean(); }
};

/**
 * Runs one experiment described by a SimConfig.
 *
 * Traffic modes (config key "traffic"):
 *  - "uniform" / "transpose" / "shuffle": open-loop Bernoulli injection
 *    at "injection_rate" flits/node/cycle;
 *  - "hotspot": the Table-3 persistent flows at "injection_rate" plus
 *    uniform background at "background_rate" from all other nodes;
 *    only background packets are measured (Fig. 9 methodology);
 *  - "trace": replay "trace_file"; every packet is measured.
 */
class TrafficManager
{
  public:
    explicit TrafficManager(const SimConfig& cfg);

    /**
     * Use an externally owned telemetry hub instead of building one
     * from the config's telemetry_* keys. Call before run(); pass
     * nullptr to revert to config-driven telemetry. The hub must
     * outlive run().
     */
    void attachTelemetry(TelemetryHub* hub) { externalHub_ = hub; }

    /** Execute the run and return its statistics. */
    RunStats run();

  private:
    SimConfig cfg_;
    TelemetryHub* externalHub_ = nullptr;
};

/** Convenience wrapper: construct, run, return. */
RunStats runExperiment(const SimConfig& cfg);

} // namespace footprint

#endif // FOOTPRINT_NETWORK_TRAFFIC_MANAGER_HPP
