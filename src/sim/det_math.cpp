#include "sim/det_math.hpp"

#include <cmath>

namespace footprint {

double
detLog(double x)
{
    // x = m * 2^e with m in [0.5, 1); recentre m into
    // [sqrt(1/2), sqrt(2)) so z = (m-1)/(m+1) stays within ~0.1716
    // and the atanh series converges past double precision in 11
    // terms. frexp and every arithmetic op below are exactly
    // specified by IEEE-754, so the result is platform-independent.
    int e = 0;
    double m = std::frexp(x, &e);
    if (m < 0.70710678118654752) {
        m *= 2.0;
        e -= 1;
    }
    const double z = (m - 1.0) / (m + 1.0);
    const double z2 = z * z;
    // ln m = 2z * (1 + z^2/3 + z^4/5 + ...), Horner from the tail so
    // the evaluation order is fixed.
    double s = 1.0 / 23.0;
    s = s * z2 + 1.0 / 21.0;
    s = s * z2 + 1.0 / 19.0;
    s = s * z2 + 1.0 / 17.0;
    s = s * z2 + 1.0 / 15.0;
    s = s * z2 + 1.0 / 13.0;
    s = s * z2 + 1.0 / 11.0;
    s = s * z2 + 1.0 / 9.0;
    s = s * z2 + 1.0 / 7.0;
    s = s * z2 + 1.0 / 5.0;
    s = s * z2 + 1.0 / 3.0;
    s = s * z2 + 1.0;
    const double ln_m = (2.0 * z) * s;
    constexpr double kLn2 = 0.69314718055994530942;
    return static_cast<double>(e) * kLn2 + ln_m;
}

std::int64_t
geometricGap(double u, double log_one_minus_p)
{
    // Inverse-CDF sampling: gap = floor(ln(1-u) / ln(1-p)) + 1 has
    // P(gap = k) = p (1-p)^(k-1) for k >= 1. u in [0, 1) makes
    // 1-u in (0, 1], so detLog's domain is respected and the ratio
    // is >= 0 (both logs are <= 0).
    const double x = 1.0 - u;
    const double r = detLog(x) / log_one_minus_p;
    // Gaps beyond ~1e15 cycles can never land inside a run; report
    // "never" instead of overflowing the packed schedule keys.
    if (!(r < 1.0e15))
        return -1;
    return 1 + static_cast<std::int64_t>(r);
}

} // namespace footprint
