/**
 * @file
 * The per-cycle active set behind activity-driven stepping.
 *
 * Components (routers and endpoints) are identified by a dense integer
 * id. During cycle t anyone may wake() a component for cycle t+1; at
 * the start of cycle t+1 beginCycle() drains the pending set into the
 * cycle's active list, ascending by component id, so activity-driven
 * stepping visits components in exactly the order full stepping does.
 * (Within a phase the order is observationally irrelevant — phases are
 * global barriers and channels are latency-gated — but keeping the
 * order identical makes per-component RNG and pool-allocation
 * sequences trivially bit-identical too.)
 *
 * The pending set is a bitmap, so wake() is one OR (idempotent and
 * duplicate-free by construction) and beginCycle() costs one pass over
 * numComponents/64 words plus one push per active component — no
 * sorting.
 */

#ifndef FOOTPRINT_SIM_ACTIVE_SET_HPP
#define FOOTPRINT_SIM_ACTIVE_SET_HPP

#include <bit>
#include <cstdint>
#include <vector>

namespace footprint {

class ActiveSet
{
  public:
    /** Size for @p num_components ids; clears any pending wakes. */
    void
    init(int num_components)
    {
        n_ = num_components;
        words_.assign(
            static_cast<std::size_t>((num_components + 63) / 64), 0);
        active_.clear();
        active_.reserve(static_cast<std::size_t>(num_components));
    }

    int size() const { return n_; }

    /** Schedule component @p comp for the next cycle (idempotent). */
    void
    wake(int comp)
    {
        words_[static_cast<std::size_t>(comp) >> 6] |=
            std::uint64_t{1} << (comp & 63);
    }

    /** Schedule every component (full step / non-contiguous cycle). */
    void
    wakeAll()
    {
        if (words_.empty())
            return;
        for (std::uint64_t& w : words_)
            w = ~std::uint64_t{0};
        if ((n_ & 63) != 0)
            words_.back() = (std::uint64_t{1} << (n_ & 63)) - 1;
    }

    /**
     * Promote the pending set to this cycle's active list (ascending
     * by id) and start collecting wakes for the next cycle. The
     * returned reference is valid until the next beginCycle().
     */
    const std::vector<int>&
    beginCycle()
    {
        active_.clear();
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t w = words_[wi];
            words_[wi] = 0;
            const int base = static_cast<int>(wi) * 64;
            for (; w != 0; w &= w - 1)
                active_.push_back(base + std::countr_zero(w));
        }
        return active_;
    }

  private:
    int n_ = 0;
    std::vector<std::uint64_t> words_;  ///< pending bitmap
    std::vector<int> active_;  ///< this cycle's list (beginCycle)
};

} // namespace footprint

#endif // FOOTPRINT_SIM_ACTIVE_SET_HPP
