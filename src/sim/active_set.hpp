/**
 * @file
 * The per-cycle active set behind activity-driven stepping.
 *
 * Components (routers and endpoints) are identified by a dense integer
 * id. During cycle t anyone may wake() a component for cycle t+1; at
 * the start of cycle t+1 beginCycle() drains the pending set into the
 * cycle's active list, ascending by component id, so activity-driven
 * stepping visits components in exactly the order full stepping does.
 * (Within a phase the order is observationally irrelevant — phases are
 * global barriers and channels are latency-gated — but keeping the
 * order identical makes per-component RNG and pool-allocation
 * sequences trivially bit-identical too.)
 *
 * The pending set is a bitmap of atomic words, so wake() is safe from
 * concurrent shard workers: setting a bit is an idempotent,
 * commutative OR, which makes the drained bitmap independent of the
 * order wakes land in — the cornerstone of sharded stepping's
 * determinism. Relaxed ordering suffices because every drain is
 * separated from the wakes it collects by a phase barrier or a
 * fork/join edge. On the serial hot path wake() stays cheap via
 * test-and-test-and-set: most wakes re-set an already-set bit and
 * skip the RMW entirely.
 *
 * Sharded stepping drains disjoint id ranges concurrently with
 * drainRange(): boundary words shared by two shards are split with
 * per-range bit masks and fetch_and, so each shard extracts exactly
 * its own components.
 */

#ifndef FOOTPRINT_SIM_ACTIVE_SET_HPP
#define FOOTPRINT_SIM_ACTIVE_SET_HPP

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace footprint {

class ActiveSet
{
  public:
    /** Size for @p num_components ids; clears any pending wakes. */
    void
    init(int num_components)
    {
        n_ = num_components;
        nwords_ = static_cast<std::size_t>((num_components + 63) / 64);
        // Cache-line-aligned word array: shard partition boundaries
        // round to whole words (64 components = 32 nodes), so with
        // the base aligned too, neighboring shards' drainRange
        // exchanges never touch the same cache line.
        words_.reset(new (std::align_val_t{64})
                         std::atomic<std::uint64_t>[nwords_]);
        for (std::size_t i = 0; i < nwords_; ++i)
            words_[i].store(0, std::memory_order_relaxed);
        active_.clear();
        active_.reserve(static_cast<std::size_t>(num_components));
    }

    int size() const { return n_; }

    /** Schedule component @p comp for the next cycle (idempotent). */
    void
    wake(int comp)
    {
        std::atomic<std::uint64_t>& w =
            words_[static_cast<std::size_t>(comp) >> 6];
        const std::uint64_t bit = std::uint64_t{1} << (comp & 63);
        if ((w.load(std::memory_order_relaxed) & bit) == 0)
            w.fetch_or(bit, std::memory_order_relaxed);
    }

    /** Schedule every component (full step / non-contiguous cycle). */
    void
    wakeAll()
    {
        if (nwords_ == 0)
            return;
        for (std::size_t i = 0; i < nwords_; ++i)
            words_[i].store(~std::uint64_t{0},
                            std::memory_order_relaxed);
        if ((n_ & 63) != 0)
            words_[nwords_ - 1].store(
                (std::uint64_t{1} << (n_ & 63)) - 1,
                std::memory_order_relaxed);
    }

    /**
     * Promote the pending set to this cycle's active list (ascending
     * by id) and start collecting wakes for the next cycle. The
     * returned reference is valid until the next beginCycle().
     */
    const std::vector<int>&
    beginCycle()
    {
        active_.clear();
        drainRange(0, n_, active_);
        return active_;
    }

    /** The list the last beginCycle() produced (unchanged since). */
    const std::vector<int>& active() const { return active_; }

    /**
     * @return true if no component is scheduled for the next cycle.
     * Relaxed loads are sufficient: callers only consult this from
     * the serial section between steps, after any shard workers have
     * joined.
     */
    bool
    pendingEmpty() const
    {
        for (std::size_t i = 0; i < nwords_; ++i)
            if (words_[i].load(std::memory_order_relaxed) != 0)
                return false;
        return true;
    }

    /**
     * Drain pending components with begin <= id < end, appending them
     * to @p out ascending and clearing their bits. Safe to call
     * concurrently for disjoint ranges; wakes raised concurrently for
     * ids inside the range may land in either this cycle's list or the
     * pending set (callers must order wakes vs. drains with barriers
     * when that matters).
     */
    void
    drainRange(int begin, int end, std::vector<int>& out)
    {
        if (begin >= end)
            return;
        const std::size_t w0 = static_cast<std::size_t>(begin) >> 6;
        const std::size_t w1 = static_cast<std::size_t>(end - 1) >> 6;
        for (std::size_t wi = w0; wi <= w1; ++wi) {
            std::uint64_t mask = ~std::uint64_t{0};
            if (wi == w0 && (begin & 63) != 0)
                mask &= ~std::uint64_t{0} << (begin & 63);
            if (wi == w1 && (end & 63) != 0)
                mask &= ~std::uint64_t{0} >> (64 - (end & 63));
            std::uint64_t bits;
            if (mask == ~std::uint64_t{0}) {
                bits = words_[wi].exchange(0,
                                           std::memory_order_relaxed);
            } else {
                bits = words_[wi].fetch_and(
                           ~mask, std::memory_order_relaxed)
                    & mask;
            }
            const int base = static_cast<int>(wi) * 64;
            for (; bits != 0; bits &= bits - 1)
                out.push_back(base + std::countr_zero(bits));
        }
    }

  private:
    /** Deleter matching the over-aligned array new in init(). */
    struct AlignedDelete
    {
        void
        operator()(std::atomic<std::uint64_t>* p) const
        {
            ::operator delete[](p, std::align_val_t{64});
        }
    };

    int n_ = 0;
    std::size_t nwords_ = 0;
    /** Pending bitmap, 64-byte aligned. */
    std::unique_ptr<std::atomic<std::uint64_t>[], AlignedDelete> words_;
    std::vector<int> active_;  ///< this cycle's list (beginCycle)
};

} // namespace footprint

#endif // FOOTPRINT_SIM_ACTIVE_SET_HPP
