/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component (traffic sources, tie-breaking arbiters)
 * draws from its own Rng instance seeded from the experiment seed, so a
 * run is bit-reproducible for a given SimConfig.
 */

#ifndef FOOTPRINT_SIM_RNG_HPP
#define FOOTPRINT_SIM_RNG_HPP

#include <cstdint>

namespace footprint {

/**
 * A small, fast xoshiro256** generator.
 *
 * Chosen over std::mt19937 for speed (it sits on the router critical
 * path for tie-breaking) and for a stable, implementation-independent
 * sequence across standard libraries.
 */
/**
 * One SplitMix64 step: advance @p state and return the next value of
 * the sequence. The mixer behind Rng seeding and per-job seed
 * derivation; exposed so every consumer shares one definition.
 */
std::uint64_t splitmix64Step(std::uint64_t& state);

/**
 * Seed of independent RNG stream @p stream derived from @p base: the
 * @p stream-th element of the SplitMix64 sequence started at @p base.
 * Distinct stream indices yield statistically independent seeds, and
 * the value depends only on (base, stream) — never on which thread or
 * in which order a stream is consumed. This is the determinism anchor
 * of the parallel sweep engine: job k of a sweep always runs with
 * deriveStreamSeed(base_seed, k).
 */
std::uint64_t deriveStreamSeed(std::uint64_t base,
                               std::uint64_t stream);

class Rng
{
  public:
    /** Seed with SplitMix64 expansion of @p seed (any value is fine). */
    explicit Rng(std::uint64_t seed = 1);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform integer in [0, bound), bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** @return uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability @p p. */
    bool nextBool(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace footprint

#endif // FOOTPRINT_SIM_RNG_HPP
