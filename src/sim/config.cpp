#include "sim/config.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/log.hpp"

namespace footprint {

namespace {

/**
 * Every key some subsystem reads: simulator core, observability,
 * benches, and examples. set()/loadFile() accept anything (forward
 * compatibility), but warnUnknownKeys() flags keys outside this list.
 */
constexpr std::array kKnownKeys = {
    // Topology and router microarchitecture (DESIGN.md §18).
    "topology", "mesh_width", "mesh_height", "concentration",
    "num_vcs", "vc_buf_size", "internal_speedup", "link_latency",
    "link_latency_x", "link_latency_y", "link_latency_local",
    "output_fifo_size", "ejection_rate",
    // Routing.
    "routing", "fp_vc_cap", "fp_variant", "fp_converge_threshold",
    "congestion_threshold", "dbar_use_remote",
    // Traffic.
    "traffic", "injection_rate", "background_rate", "packet_size",
    "trace_file", "trace_length", "app", "app2",
    // Simulation phases / execution.
    "warmup_cycles", "measure_cycles", "drain_cycles", "seed",
    "step_mode", "threads", "shards", "shard_partition",
    "skip_ahead",
    // Telemetry.
    "telemetry_out", "telemetry_format", "sample_interval",
    "telemetry_per_router", "trace_out", "trace_packets",
    // Self-profiler / spatial heatmap observatory (DESIGN.md §14).
    "profile", "profile_out", "heatmap", "heatmap_out",
    "heatmap_window", "heatmap_sample_interval",
    // Flight recorder / steady-state detector / console (DESIGN.md
    // §15).
    "timeseries", "timeseries_out", "timeseries_interval",
    "steady_windows", "steady_tolerance", "warmup",
    "warmup_max_cycles", "console", "console_interval_ms",
    // Auditing / watchdog / forensics.
    "audit", "audit_interval", "watchdog_interval",
    "watchdog_max_hops", "watchdog_max_age", "dump_on_abort",
    "dump_path", "chrome_trace", "chrome_trace_out",
    // Execution engine / sweeps (examples/sweep, simulate --sweep).
    "jobs", "sweep_rates", "sweep_routings", "sweep_meshes",
    "sweep_traffics", "sweep_seeds", "bench_out",
};

/** Levenshtein distance, for did-you-mean suggestions. */
std::size_t
editDistance(const std::string& a, const std::string& b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t prev = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t cur = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
            prev = cur;
        }
    }
    return row[b.size()];
}

/** Closest known key within edit distance 3, or "". */
std::string
closestKnownKey(const std::string& key)
{
    std::string best;
    std::size_t best_dist = 4;
    for (const char* known : kKnownKeys) {
        const std::size_t d = editDistance(key, known);
        if (d < best_dist) {
            best_dist = d;
            best = known;
        }
    }
    return best;
}

} // namespace

SimConfig::SimConfig() = default;

void
SimConfig::set(const std::string& key, const std::string& value)
{
    values_[key] = value;
}

void
SimConfig::setInt(const std::string& key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
SimConfig::setDouble(const std::string& key, double value)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << value;
    values_[key] = oss.str();
}

void
SimConfig::setBool(const std::string& key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
SimConfig::contains(const std::string& key) const
{
    return values_.count(key) > 0;
}

std::string
SimConfig::getStr(const std::string& key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        fatal("config key not found: " + key);
    return it->second;
}

std::int64_t
SimConfig::getInt(const std::string& key) const
{
    const std::string raw = getStr(key);
    char* end = nullptr;
    std::int64_t v = std::strtoll(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0')
        fatal("config key '" + key + "' is not an integer: " + raw);
    return v;
}

double
SimConfig::getDouble(const std::string& key) const
{
    const std::string raw = getStr(key);
    char* end = nullptr;
    double v = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0')
        fatal("config key '" + key + "' is not a number: " + raw);
    return v;
}

bool
SimConfig::getBool(const std::string& key) const
{
    const std::string raw = getStr(key);
    if (raw == "true" || raw == "1")
        return true;
    if (raw == "false" || raw == "0")
        return false;
    fatal("config key '" + key + "' is not a bool: " + raw);
}

bool
SimConfig::parseAssignment(const std::string& arg)
{
    auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(arg.substr(0, eq), arg.substr(eq + 1));
    return true;
}

void
SimConfig::parseArgs(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg(argv[i]);
        if (!parseAssignment(arg))
            warn("ignoring non key=value argument: " + arg);
    }
}

namespace {

/** Strip leading/trailing whitespace. */
std::string
trim(const std::string& s)
{
    const auto begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
}

} // namespace

void
SimConfig::loadFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file: " + path);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto comment = line.find('#');
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos || eq == 0) {
            fatal("malformed config line " + std::to_string(line_no)
                  + " in " + path + ": " + line);
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("empty key at config line " + std::to_string(line_no)
                  + " in " + path);
        set(key, value);
    }
}

std::vector<std::string>
SimConfig::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& kv : values_)
        out.push_back(kv.first);
    return out;
}

bool
SimConfig::isKnownKey(const std::string& key)
{
    return std::find(kKnownKeys.begin(), kKnownKeys.end(), key)
        != kKnownKeys.end();
}

std::vector<std::string>
SimConfig::unknownKeys() const
{
    std::vector<std::string> out;
    for (const auto& kv : values_) {
        if (!isKnownKey(kv.first))
            out.push_back(kv.first);
    }
    return out;
}

std::size_t
SimConfig::warnUnknownKeys() const
{
    const std::vector<std::string> unknown = unknownKeys();
    for (const std::string& key : unknown) {
        std::string msg = "unrecognized config key '" + key
            + "' (no subsystem reads it";
        const std::string hint = closestKnownKey(key);
        if (!hint.empty() && hint != key)
            msg += "; did you mean '" + hint + "'?";
        msg += ")";
        warn(msg);
    }
    return unknown.size();
}

std::string
SimConfig::toString() const
{
    std::ostringstream oss;
    for (const auto& kv : values_)
        oss << kv.first << " = " << kv.second << "\n";
    return oss.str();
}

SimConfig
defaultConfig()
{
    SimConfig cfg;
    // Topology (Table 2 defaults; DESIGN.md §18 for the other kinds).
    cfg.set("topology", "mesh"); // or torus, cmesh, ring
    cfg.setInt("mesh_width", 8);
    cfg.setInt("mesh_height", 8);
    cfg.setInt("concentration", 1); // terminals/router (cmesh only)
    // Router microarchitecture.
    cfg.setInt("num_vcs", 10);
    cfg.setInt("vc_buf_size", 4);
    cfg.setInt("internal_speedup", 2);
    cfg.setInt("link_latency", 1);
    cfg.setInt("output_fifo_size", 8);
    cfg.setInt("ejection_rate", 1); // flits/cycle drained at endpoints
    // Routing.
    cfg.set("routing", "footprint");
    cfg.setInt("fp_vc_cap", 0);        // 0 = unlimited footprint VCs
    cfg.setInt("congestion_threshold", 0); // 0 = auto (num_vcs / 2)
    // Traffic.
    cfg.set("traffic", "uniform");
    cfg.setDouble("injection_rate", 0.1);
    cfg.set("packet_size", "1");       // "1" fixed, or "uniform1-6"
    // Simulation phases.
    cfg.setInt("warmup_cycles", 5000);
    cfg.setInt("measure_cycles", 10000);
    cfg.setInt("drain_cycles", 50000);
    cfg.setInt("seed", 1);
    // "activity" steps only components with pending work (bit-identical
    // to "full"); "verify" runs both and panics on any divergence;
    // "sharded" steps activity lists in parallel across "threads"
    // workers over "shards" mesh bands (0 = one shard per thread),
    // still bit-identical (DESIGN.md §13).
    cfg.set("step_mode", "activity");
    cfg.setInt("threads", 1);
    cfg.setInt("shards", 0);
    // Shard band boundaries: "weighted" sizes bands by per-node link
    // degree (edge rows are cheaper than interior rows), "nodes" is
    // the historic equal-node split. Bit-identical either way.
    cfg.set("shard_partition", "weighted");
    // Event-horizon fast path: jump the clock over quiescent spans
    // (bit-identical results; skip_ahead=false forces per-cycle
    // ticking, mainly for equivalence tests and benchmarks).
    cfg.setBool("skip_ahead", true);
    // Telemetry / observability (see DESIGN.md "Observability").
    cfg.set("telemetry_out", "");       // empty = no time series
    cfg.set("telemetry_format", "csv"); // or "jsonl"
    cfg.setInt("sample_interval", 100); // cycles between samples
    cfg.setBool("telemetry_per_router", true);
    cfg.set("trace_out", "");           // default "trace.jsonl"
    cfg.setInt("trace_packets", 0);     // trace packet ids [1, N]
    // Self-profiler / spatial heatmap observatory (DESIGN.md §14).
    cfg.setBool("profile", false);      // per-phase wall-time profile
    cfg.set("profile_out", "profile.json");
    cfg.setBool("heatmap", false);      // windowed spatial heatmaps
    cfg.set("heatmap_out", "heatmap.json");
    cfg.setInt("heatmap_window", 1000); // cycles per window
    cfg.setInt("heatmap_sample_interval", 8); // gauge sampling stride
    // Flight recorder / steady-state detector / console (§15).
    cfg.setBool("timeseries", false);   // windowed JSONL stream
    cfg.set("timeseries_out", "timeseries.jsonl");
    cfg.setInt("timeseries_interval", 1000); // cycles per window
    cfg.setInt("steady_windows", 8);    // trailing means compared
    cfg.setDouble("steady_tolerance", 0.02); // relative half-width
    cfg.set("warmup", "");              // "auto" = detector-driven
    cfg.setInt("warmup_max_cycles", 50000); // cap on auto warmup
    cfg.setBool("console", false);      // live stderr status line
    cfg.setInt("console_interval_ms", 250); // redraw rate limit
    // Auditing / watchdog / forensics (DESIGN.md "Runtime auditing").
    cfg.setBool("audit", false);        // invariant auditor + watchdog
    cfg.setInt("audit_interval", 1000); // cycles between audits
    cfg.setInt("watchdog_interval", 5000); // stall/livelock checks
    cfg.setInt("watchdog_max_hops", 0); // 0 = auto (2 * (W + H))
    cfg.setInt("watchdog_max_age", 0);  // 0 = age check off
    cfg.setBool("dump_on_abort", false); // forensic dump on abort
    cfg.set("dump_path", "state_dump.json");
    cfg.setBool("chrome_trace", false); // trace-event timeline export
    cfg.set("chrome_trace_out", "");    // default "trace.json"
    return cfg;
}

} // namespace footprint
