/**
 * @file
 * Lightweight statistics primitives used throughout the simulator:
 * scalar accumulators for latency/throughput and fixed-bin histograms
 * for distribution reporting.
 */

#ifndef FOOTPRINT_SIM_STATS_HPP
#define FOOTPRINT_SIM_STATS_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace footprint {

/**
 * Accumulates samples and reports count / mean / min / max / stddev.
 */
class StatAccumulator
{
  public:
    StatAccumulator() { reset(); }

    /** Discard all samples. */
    void reset();

    /** Record one sample. */
    void add(double sample);

    /** Merge another accumulator's samples into this one. */
    void merge(const StatAccumulator& other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const;
    double max() const;
    /** Population variance of the recorded samples. */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t count_;
    double sum_;
    double sumSq_;
    double min_;
    double max_;
};

/**
 * Fixed-width-bin histogram over [0, binWidth * numBins); samples past
 * the last bin are clamped into an overflow bin.
 */
class Histogram
{
  public:
    Histogram(double bin_width, std::size_t num_bins);

    void reset();
    void add(double sample);

    std::uint64_t count() const { return count_; }
    std::size_t numBins() const { return bins_.size(); }
    std::uint64_t binCount(std::size_t bin) const { return bins_.at(bin); }
    std::uint64_t overflowCount() const { return overflow_; }

    /**
     * Value below which @p fraction of samples fall, interpolated
     * linearly within the containing bin. @p fraction is clamped to
     * [0, 1]; an empty histogram reports 0 and a fraction landing in
     * the overflow bin reports the overflow threshold
     * (binWidth * numBins), the histogram's upper resolution limit.
     */
    double percentile(double fraction) const;

    /** Render as "lo-hi: count" lines for reports. */
    std::string toString() const;

  private:
    double binWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_;
    std::uint64_t count_;
};

} // namespace footprint

#endif // FOOTPRINT_SIM_STATS_HPP
