#include "sim/rng.hpp"

#include "sim/log.hpp"

namespace footprint {

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitmix64Step(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
deriveStreamSeed(std::uint64_t base, std::uint64_t stream)
{
    // Element `stream` of the SplitMix64 sequence seeded at `base`,
    // computed in O(1) by jumping the additive state forward.
    std::uint64_t x = base + stream * 0x9e3779b97f4a7c15ULL;
    return splitmix64Step(x);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : s_)
        s = splitmix64Step(sm);
    // All-zero state is the one invalid state for xoshiro.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    FP_ASSERT(bound > 0, "nextBounded bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    FP_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    return lo + static_cast<std::int64_t>(
        nextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace footprint
