#include "sim/log.hpp"

#include <cstdlib>
#include <iostream>

namespace footprint {

namespace {
bool quietFlag = false;
std::ostream* logSink = nullptr;

std::ostream&
statusStream()
{
    return logSink ? *logSink : std::cerr;
}
} // namespace

void
panicImpl(const std::string& msg, const char* file, int line)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw InvariantError(msg, file, line);
}

void
fatal(const std::string& msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warn(const std::string& msg)
{
    if (!quietFlag)
        statusStream() << "warn: " << msg << std::endl;
}

void
inform(const std::string& msg)
{
    if (!quietFlag)
        statusStream() << "info: " << msg << std::endl;
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

void
setLogSink(std::ostream* sink)
{
    logSink = sink;
}

} // namespace footprint
