#include "sim/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace footprint {

namespace {

std::atomic<bool> quietFlag{false};

/**
 * Guards the process-wide sink pointer and serializes writes through
 * it, so concurrent sweep jobs logging warnings never interleave
 * half-formed lines or race a setLogSink() swap. The global sink is a
 * convenience for single-run tools; parallel runs should prefer
 * per-job sinks (an isolated TelemetryHub per SimJob) and leave the
 * global one alone.
 */
std::mutex&
sinkMutex()
{
    static std::mutex m;
    return m;
}

std::ostream* logSink = nullptr; // guarded by sinkMutex()

void
emit(const char* prefix, const std::string& msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::ostream& os = logSink ? *logSink : std::cerr;
    os << prefix << msg << std::endl;
}

} // namespace

void
panicImpl(const std::string& msg, const char* file, int line)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::cerr << "panic: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    throw InvariantError(msg, file, line);
}

void
fatal(const std::string& msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::cerr << "fatal: " << msg << std::endl;
    }
    std::exit(1);
}

void
warn(const std::string& msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        emit("warn: ", msg);
}

void
inform(const std::string& msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        emit("info: ", msg);
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

void
setLogSink(std::ostream* sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    logSink = sink;
}

} // namespace footprint
