/**
 * @file
 * Typed key/value simulation configuration, in the spirit of BookSim's
 * configuration system. All simulator knobs flow through SimConfig so
 * experiments are reproducible from a flat parameter list.
 */

#ifndef FOOTPRINT_SIM_CONFIG_HPP
#define FOOTPRINT_SIM_CONFIG_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace footprint {

/**
 * A flat, typed key/value store for simulation parameters.
 *
 * Values are stored as strings and converted on read; reading a key that
 * was never set and has no registered default is a fatal error, which
 * catches typos in experiment scripts early.
 */
class SimConfig
{
  public:
    SimConfig();

    /** Set (or override) a parameter. */
    void set(const std::string& key, const std::string& value);
    void setInt(const std::string& key, std::int64_t value);
    void setDouble(const std::string& key, double value);
    void setBool(const std::string& key, bool value);

    /** @return true if @p key has a value (set or default). */
    bool contains(const std::string& key) const;

    /** Typed getters; fatal() on missing key or malformed value. */
    std::string getStr(const std::string& key) const;
    std::int64_t getInt(const std::string& key) const;
    double getDouble(const std::string& key) const;
    bool getBool(const std::string& key) const;

    /**
     * Parse a "key=value" assignment (as accepted on bench command
     * lines) into this config. @return false if @p arg is not of that
     * shape.
     */
    bool parseAssignment(const std::string& arg);

    /** Parse every argv entry of the form key=value. */
    void parseArgs(int argc, char** argv);

    /**
     * Load assignments from a config file: one "key = value" (or
     * "key=value") per line, '#' starts a comment. fatal() on missing
     * file or malformed lines.
     */
    void loadFile(const std::string& path);

    /** All keys currently present, sorted (for dumping). */
    std::vector<std::string> keys() const;

    /**
     * Whether @p key is recognized by any subsystem (the curated list
     * covers every key the simulator, benches, and examples read).
     */
    static bool isKnownKey(const std::string& key);

    /** Present keys no subsystem recognizes, sorted. */
    std::vector<std::string> unknownKeys() const;

    /**
     * warn() (through the log sink) about every unrecognized key, with
     * the closest known key suggested when one is plausibly a typo.
     * A typo'd "telemetry_*" / "audit_*" key silently disabling a
     * subsystem is exactly the failure mode this catches.
     *
     * @return the number of unknown keys warned about.
     */
    std::size_t warnUnknownKeys() const;

    /** Render the whole config as "key = value" lines. */
    std::string toString() const;

  private:
    std::map<std::string, std::string> values_;
};

/**
 * Build the paper's baseline configuration (Table 2 defaults): 8x8 mesh,
 * 10 VCs, buffer depth 4, speedup 2, credit-based wormhole flow control.
 */
SimConfig defaultConfig();

} // namespace footprint

#endif // FOOTPRINT_SIM_CONFIG_HPP
