/**
 * @file
 * Event-horizon accounting for skip-ahead stepping.
 *
 * When the network is quiescent (no component has pending work and no
 * flit or credit is in flight) nothing can change until an external
 * event arrives: the next scheduled packet injection, a driver-side
 * phase boundary (end of warmup / measurement), a periodic observer
 * (auditor, watchdog, telemetry sample), or the run's hard limit. A
 * HorizonTracker folds those candidate cycles into the earliest one,
 * and the stepping loop jumps the clock there in a single skipTo()
 * instead of ticking through the dead span.
 *
 * The horizon invariant (DESIGN.md §16): no simulator or observer
 * state may change strictly inside a jumped span. Anything that fires
 * periodically must either be clamped into the tracker (so the jump
 * lands exactly on its due cycle) or be jump-aware (able to replay the
 * skipped span from frozen state, e.g. the flight recorder's empty
 * windows). Violating this silently is impossible in CI: checksums
 * with skip-ahead on and off are compared bit-for-bit.
 */

#ifndef FOOTPRINT_SIM_HORIZON_HPP
#define FOOTPRINT_SIM_HORIZON_HPP

#include <cstddef>
#include <cstdint>
#include <limits>

namespace footprint {

/**
 * Fold a flat lane of arrival cycles (kNever = empty slot) into the
 * earliest one. This is the skip-ahead-facing view of the link
 * fabric's head-arrival lane (DESIGN.md §17): padding slots hold
 * kNever — the identity of min — so the scan is one branch-light pass
 * over contiguous memory with no per-channel indirection.
 */
inline std::int64_t
minArrivalOver(const std::int64_t* lane, std::size_t n)
{
    std::int64_t earliest = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < n; ++i)
        earliest = lane[i] < earliest ? lane[i] : earliest;
    return earliest;
}

class HorizonTracker
{
  public:
    static constexpr std::int64_t kNever =
        std::numeric_limits<std::int64_t>::max();

    /**
     * Start a fold for a jump out of the cycle before @p from: the
     * horizon starts at @p limit (e.g. the run's hard limit) and only
     * candidates >= @p from pull it down — boundaries already in the
     * past (a warmup end long gone) must not drag the horizon
     * backwards.
     */
    HorizonTracker(std::int64_t from, std::int64_t limit)
        : from_(from), horizon_(limit < from ? from : limit)
    {}

    /** Pull the horizon down to @p cycle if in [from, horizon). */
    void
    clamp(std::int64_t cycle)
    {
        if (cycle >= from_ && cycle < horizon_)
            horizon_ = cycle;
    }

    /**
     * Clamp to the first cycle >= from where a period-@p interval
     * event anchored at @p anchor fires (the next c with
     * (c - anchor) % interval == 0). No-op for interval <= 0.
     */
    void
    clampPeriodic(std::int64_t anchor, std::int64_t interval)
    {
        if (interval <= 0)
            return;
        // Portable nonnegative remainder: anchor may lie after from.
        const std::int64_t rem =
            ((from_ - anchor) % interval + interval) % interval;
        clamp(rem == 0 ? from_ : from_ + (interval - rem));
    }

    /** The folded horizon: first cycle anything can happen. */
    std::int64_t cycle() const { return horizon_; }

    /** True if jumping to the horizon skips at least one cycle. */
    bool skips() const { return horizon_ > from_; }

  private:
    std::int64_t from_;     ///< earliest admissible landing cycle
    std::int64_t horizon_;
};

} // namespace footprint

#endif // FOOTPRINT_SIM_HORIZON_HPP
