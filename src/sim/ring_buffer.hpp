/**
 * @file
 * Fixed-capacity ring buffer used for every FIFO on the simulator's
 * per-cycle hot path (input-VC buffers, router output FIFOs, endpoint
 * sink VCs, channel pipes).
 *
 * std::deque allocates storage in chunks as elements churn through it;
 * at tens of thousands of simulated cycles per second that heap
 * traffic dominates the inner loop. A RingBuffer allocates once — its
 * capacity is fixed by a structural bound (VC buffer depth, output
 * FIFO depth, channel latency) — and push/pop are an index increment
 * behind a power-of-two mask.
 *
 * Two overflow policies:
 *  - fixed (default): pushing into a full buffer is a simulator bug
 *    (the flow-control invariants bound every FIFO) and FP_ASSERTs.
 *  - growable: storage doubles when full. Used only by Pipe<T>, whose
 *    occupancy is bounded by latency in the simulator proper but not
 *    in unit tests that send without receiving.
 */

#ifndef FOOTPRINT_SIM_RING_BUFFER_HPP
#define FOOTPRINT_SIM_RING_BUFFER_HPP

#include <cstddef>
#include <iterator>
#include <vector>

#include "sim/log.hpp"

namespace footprint {

template <typename T>
class RingBuffer
{
  public:
    /** An empty buffer with zero capacity; reset() before pushing. */
    RingBuffer() = default;

    explicit RingBuffer(std::size_t capacity, bool growable = false)
    {
        reset(capacity, growable);
    }

    /**
     * Discard contents and reallocate for at least @p capacity
     * elements (rounded up to a power of two).
     */
    void
    reset(std::size_t capacity, bool growable = false)
    {
        growable_ = growable;
        head_ = 0;
        size_ = 0;
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        data_.assign(cap, T{});
        mask_ = cap - 1;
    }

    void
    push_back(const T& value)
    {
        if (size_ == data_.size()) {
            if (growable_) {
                grow();
            } else {
                FP_ASSERT(size_ < data_.size(),
                          "ring buffer overflow (capacity "
                              << data_.size() << ")");
            }
        }
        data_[(head_ + size_) & mask_] = value;
        ++size_;
    }

    void
    pop_front()
    {
        FP_ASSERT(size_ > 0, "pop_front on empty ring buffer");
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    T&
    front()
    {
        FP_ASSERT(size_ > 0, "front on empty ring buffer");
        return data_[head_];
    }

    const T&
    front() const
    {
        FP_ASSERT(size_ > 0, "front on empty ring buffer");
        return data_[head_];
    }

    T&
    back()
    {
        FP_ASSERT(size_ > 0, "back on empty ring buffer");
        return data_[(head_ + size_ - 1) & mask_];
    }

    const T&
    back() const
    {
        FP_ASSERT(size_ > 0, "back on empty ring buffer");
        return data_[(head_ + size_ - 1) & mask_];
    }

    /** Element @p i positions behind the front (0 == front). */
    const T& operator[](std::size_t i) const
    {
        return data_[(head_ + i) & mask_];
    }

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == data_.size(); }
    std::size_t size() const { return size_; }

    /** Slots allocated (>= the capacity passed to reset()). */
    std::size_t capacity() const { return data_.size(); }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Forward const iterator, front to back (audits, dumps, tests). */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = const T*;
        using reference = const T&;

        const_iterator() = default;
        const_iterator(const RingBuffer* rb, std::size_t pos)
            : rb_(rb), pos_(pos)
        {}

        reference operator*() const { return (*rb_)[pos_]; }
        pointer operator->() const { return &(*rb_)[pos_]; }

        const_iterator&
        operator++()
        {
            ++pos_;
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator old = *this;
            ++pos_;
            return old;
        }

        bool
        operator==(const const_iterator& o) const
        {
            return rb_ == o.rb_ && pos_ == o.pos_;
        }

        bool operator!=(const const_iterator& o) const
        {
            return !(*this == o);
        }

      private:
        const RingBuffer* rb_ = nullptr;
        std::size_t pos_ = 0;
    };

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    void
    grow()
    {
        std::vector<T> bigger(data_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            bigger[i] = data_[(head_ + i) & mask_];
        data_.swap(bigger);
        head_ = 0;
        mask_ = data_.size() - 1;
    }

    std::vector<T> data_;
    std::size_t mask_ = 0;  ///< data_.size() - 1 (power-of-two sizes)
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    bool growable_ = false;
};

} // namespace footprint

#endif // FOOTPRINT_SIM_RING_BUFFER_HPP
