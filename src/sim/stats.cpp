#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/log.hpp"

namespace footprint {

void
StatAccumulator::reset()
{
    count_ = 0;
    sum_ = 0.0;
    sumSq_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

void
StatAccumulator::add(double sample)
{
    ++count_;
    sum_ += sample;
    sumSq_ += sample * sample;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

void
StatAccumulator::merge(const StatAccumulator& other)
{
    count_ += other.count_;
    sum_ += other.sum_;
    sumSq_ += other.sumSq_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
StatAccumulator::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
StatAccumulator::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
StatAccumulator::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
StatAccumulator::variance() const
{
    if (count_ == 0)
        return 0.0;
    const double m = mean();
    const double v = sumSq_ / static_cast<double>(count_) - m * m;
    return v > 0.0 ? v : 0.0;
}

double
StatAccumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double bin_width, std::size_t num_bins)
    : binWidth_(bin_width), bins_(num_bins, 0), overflow_(0), count_(0)
{
    FP_ASSERT(bin_width > 0.0, "histogram bin width must be positive");
    FP_ASSERT(num_bins > 0, "histogram needs at least one bin");
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    overflow_ = 0;
    count_ = 0;
}

void
Histogram::add(double sample)
{
    ++count_;
    if (sample < 0.0)
        sample = 0.0;
    auto bin = static_cast<std::size_t>(sample / binWidth_);
    if (bin >= bins_.size())
        ++overflow_;
    else
        ++bins_[bin];
}

double
Histogram::percentile(double fraction) const
{
    if (count_ == 0)
        return 0.0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    const double target = fraction * static_cast<double>(count_);

    // Walk the cumulative distribution; interpolate linearly inside
    // the bin the target falls into. fraction 0.0 thus returns the
    // lower edge of the first non-empty bin and fraction 1.0 the
    // upper edge of the last non-empty bin.
    double seen = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        const double next = seen + static_cast<double>(bins_[i]);
        if (target <= next) {
            const double lo = static_cast<double>(i) * binWidth_;
            const double in_bin =
                (target - seen) / static_cast<double>(bins_[i]);
            return lo + binWidth_ * in_bin;
        }
        seen = next;
    }
    // The target falls among overflow samples (clamped past the last
    // bin), whose values are unknown: report the overflow threshold.
    return static_cast<double>(bins_.size()) * binWidth_;
}

std::string
Histogram::toString() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        oss << binWidth_ * static_cast<double>(i) << "-"
            << binWidth_ * static_cast<double>(i + 1) << ": " << bins_[i]
            << "\n";
    }
    if (overflow_ > 0)
        oss << ">=" << binWidth_ * static_cast<double>(bins_.size())
            << ": " << overflow_ << "\n";
    return oss.str();
}

} // namespace footprint
