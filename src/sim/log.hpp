/**
 * @file
 * Error-reporting and status-message helpers, modeled on gem5's
 * logging conventions: panic() for internal invariant violations,
 * fatal() for user/configuration errors, warn()/inform() for status.
 */

#ifndef FOOTPRINT_SIM_LOG_HPP
#define FOOTPRINT_SIM_LOG_HPP

#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace footprint {

/**
 * A violated simulator invariant (FP_PANIC / FP_ASSERT), thrown so
 * that supervisory layers — the invariant auditor, TrafficManager's
 * forensic dump-on-abort — can attach diagnostics before the process
 * exits. Uncaught, it terminates the process exactly like the abort()
 * it replaced (the message has already been printed to stderr when the
 * exception is constructed by panicImpl).
 */
class InvariantError : public std::runtime_error
{
  public:
    InvariantError(const std::string& msg, const char* file, int line)
        : std::runtime_error(msg), file_(file), line_(line)
    {}

    const char* file() const { return file_; }
    int line() const { return line_; }

  private:
    const char* file_;
    int line_;
};

/**
 * Report a violated simulator invariant: print "panic: ..." to stderr,
 * then throw InvariantError. Use for conditions that indicate a bug in
 * the simulator itself. Callers that cannot recover simply let the
 * exception escape (std::terminate preserves the old abort behavior);
 * the traffic manager catches it to write a forensic state dump first.
 *
 * @param msg Description of the violated invariant.
 * @param file Source file (use the FP_PANIC macro).
 * @param line Source line.
 */
[[noreturn]] void panicImpl(const std::string& msg, const char* file,
                            int line);

/**
 * Exit the process because the simulation cannot continue due to a
 * user-visible error (bad configuration, invalid arguments).
 *
 * @param msg Description of the error.
 */
[[noreturn]] void fatal(const std::string& msg);

/** Print a warning about questionable but survivable behaviour. */
void warn(const std::string& msg);

/** Print an informational status message. */
void inform(const std::string& msg);

/** Globally silence warn()/inform() output (used by benches/tests). */
void setQuiet(bool quiet);

/**
 * Redirect warn()/inform() to @p sink instead of std::cerr; pass
 * nullptr to restore std::cerr. Lets tests and telemetry runs capture
 * status output instead of only silencing it. panic()/fatal() always
 * write to std::cerr. The caller keeps @p sink alive until it is
 * replaced or reset.
 *
 * Thread safety: the sink pointer and every write through it are
 * serialized by an internal mutex, so concurrent sweep jobs cannot
 * interleave partial lines or race a sink swap. The pointer is still
 * process-global state — parallel experiment code should prefer
 * per-job sinks (each SimJob's isolated TelemetryHub) and reserve
 * setLogSink for single-run tools and tests.
 */
void setLogSink(std::ostream* sink);

} // namespace footprint

#define FP_PANIC(msg) ::footprint::panicImpl((msg), __FILE__, __LINE__)

/** Assert a simulator invariant; always active (not tied to NDEBUG). */
#define FP_ASSERT(cond, msg)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            std::ostringstream oss_;                                    \
            oss_ << "assertion failed: " #cond ": " << msg;             \
            ::footprint::panicImpl(oss_.str(), __FILE__, __LINE__);     \
        }                                                               \
    } while (0)

#endif // FOOTPRINT_SIM_LOG_HPP
