/**
 * @file
 * Deterministic transcendental helpers for event scheduling.
 *
 * The injection schedule converts uniform RNG draws into geometric
 * inter-arrival gaps with a logarithm. libm's log() is correctly
 * rounded on glibc but not specified bit-for-bit across C libraries,
 * and pinned bench checksums must be machine-independent, so the gap
 * math uses detLog(): a fixed-order IEEE-754 evaluation (frexp +
 * atanh series) whose every operation is exactly specified. It is
 * accurate to a few ulp — irrelevant for sampling — and bit-identical
 * on any platform that evaluates double arithmetic in double
 * precision without FMA contraction (det_math.cpp is compiled with
 * contraction off).
 */

#ifndef FOOTPRINT_SIM_DET_MATH_HPP
#define FOOTPRINT_SIM_DET_MATH_HPP

#include <cstdint>

namespace footprint {

/**
 * Natural logarithm of @p x for x in (0, 1], deterministic across
 * platforms and C libraries. Returns 0.0 for x == 1.0 and a negative
 * value otherwise; callers must not pass x <= 0 or x > 1.
 */
double detLog(double x);

/**
 * One geometric inter-arrival gap (support {1, 2, ...}) for a
 * per-cycle firing probability p, from a uniform draw @p u in [0, 1).
 * @p log_one_minus_p must be detLog(1.0 - p), precomputed by the
 * caller. Returns -1 when the gap is astronomically large (treat as
 * "never fires").
 */
std::int64_t geometricGap(double u, double log_one_minus_p);

} // namespace footprint

#endif // FOOTPRINT_SIM_DET_MATH_HPP
