#include "metrics/adaptiveness.hpp"

#include <functional>
#include <vector>

#include "routing/odd_even.hpp"
#include "routing/routing.hpp"
#include "sim/log.hpp"

namespace footprint {

namespace {

/** Legal minimal directions of @p algorithm at @p cur (static view). */
std::vector<Dir>
legalDirs(const Mesh& mesh, const std::string& algorithm, int src,
          int cur, int dest)
{
    if (cur == dest)
        return {};
    if (algorithm.rfind("dor", 0) == 0)
        return {dorDir(mesh, cur, dest)};
    if (algorithm.rfind("oddeven", 0) == 0)
        return OddEvenRouting::legalDirs(mesh, src, cur, dest);
    if (algorithm.rfind("dbar", 0) == 0
        || algorithm.rfind("footprint", 0) == 0) {
        return mesh.minimalDirs(cur, dest);
    }
    fatal("unknown algorithm for adaptiveness: " + algorithm);
}

/** Nodes reachable from src along allowed minimal paths (excl dest). */
std::vector<int>
reachableNodes(const Mesh& mesh, const std::string& algorithm, int src,
               int dest)
{
    std::vector<bool> seen(static_cast<std::size_t>(mesh.numNodes()));
    std::vector<int> frontier{src};
    std::vector<int> out;
    seen[static_cast<std::size_t>(src)] = true;
    while (!frontier.empty()) {
        const int cur = frontier.back();
        frontier.pop_back();
        if (cur == dest)
            continue;
        out.push_back(cur);
        for (Dir d : legalDirs(mesh, algorithm, src, cur, dest)) {
            const int nxt = mesh.neighbor(cur, d);
            if (!seen[static_cast<std::size_t>(nxt)]) {
                seen[static_cast<std::size_t>(nxt)] = true;
                frontier.push_back(nxt);
            }
        }
    }
    return out;
}

} // namespace

double
portAdaptiveness(const Mesh& mesh, const std::string& algorithm,
                 int src, int dest)
{
    if (src == dest)
        return 1.0;
    double sum = 0.0;
    int count = 0;
    for (int node : reachableNodes(mesh, algorithm, src, dest)) {
        const auto allowed = legalDirs(mesh, algorithm, src, node, dest);
        const auto minimal = mesh.minimalDirs(node, dest);
        FP_ASSERT(!minimal.empty(), "non-dest node with no minimal dir");
        sum += static_cast<double>(allowed.size())
            / static_cast<double>(minimal.size());
        ++count;
    }
    return count == 0 ? 1.0 : sum / static_cast<double>(count);
}

double
pathAdaptiveness(const Mesh& mesh, const std::string& algorithm,
                 int src, int dest)
{
    if (src == dest)
        return 1.0;
    std::vector<double> memo(static_cast<std::size_t>(mesh.numNodes()),
                             -1.0);
    std::function<double(int)> count = [&](int cur) -> double {
        if (cur == dest)
            return 1.0;
        double& m = memo[static_cast<std::size_t>(cur)];
        if (m >= 0.0)
            return m;
        double total = 0.0;
        for (Dir d : legalDirs(mesh, algorithm, src, cur, dest))
            total += count(mesh.neighbor(cur, d));
        m = total;
        return total;
    };
    return count(src) / mesh.numMinimalPaths(src, dest);
}

double
vcAdaptiveness(const std::string& algorithm, int num_vcs)
{
    // Only Footprint selects VCs adaptively per packet; every baseline
    // either uses VCs obliviously (DOR, Odd-Even, DBAR) or statically
    // (+XORDET), giving zero VC adaptiveness (Sec. 3.1).
    if (algorithm == "footprint") {
        return static_cast<double>(num_vcs - 1)
            / static_cast<double>(num_vcs);
    }
    return 0.0;
}

AdaptivenessReport
adaptivenessReport(const Mesh& mesh, const std::string& algorithm,
                   int num_vcs)
{
    AdaptivenessReport rep;
    rep.algorithm = algorithm;
    double port_sum = 0.0;
    double path_sum = 0.0;
    int pairs = 0;
    const int n = mesh.numNodes();
    for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
            if (s == d)
                continue;
            port_sum += portAdaptiveness(mesh, algorithm, s, d);
            path_sum += pathAdaptiveness(mesh, algorithm, s, d);
            ++pairs;
        }
    }
    rep.portAdaptiveness = port_sum / pairs;
    rep.pathAdaptiveness = path_sum / pairs;
    rep.vcAdaptiveness = vcAdaptiveness(algorithm, num_vcs);
    return rep;
}

} // namespace footprint
