#include "metrics/congestion_tree.hpp"

#include <algorithm>
#include <sstream>

#include "network/network.hpp"

namespace footprint {

int
CongestionTree::totalVcs() const
{
    int total = 0;
    for (const TreeBranch& b : branches)
        total += b.thickness();
    return total;
}

double
CongestionTree::avgThickness() const
{
    return branches.empty()
        ? 0.0
        : static_cast<double>(totalVcs())
            / static_cast<double>(branches.size());
}

int
CongestionTree::maxThickness() const
{
    int best = 0;
    for (const TreeBranch& b : branches)
        best = std::max(best, b.thickness());
    return best;
}

std::string
CongestionTree::toString() const
{
    std::ostringstream oss;
    oss << "tree(dest=" << dest << "): " << numBranches()
        << " branches, " << totalVcs() << " VCs, avg thickness "
        << avgThickness() << ", max thickness " << maxThickness();
    return oss.str();
}

CongestionTree
extractCongestionTree(const Network& net, int dest)
{
    CongestionTree tree;
    tree.dest = dest;
    const int n = net.mesh().numNodes();
    const int num_vcs = net.routerParams().numVcs;
    for (int node = 0; node < n; ++node) {
        const Router& r = net.router(node);
        for (int port = 0; port < kNumPorts; ++port) {
            TreeBranch branch;
            branch.router = node;
            branch.inPort = port;
            for (int vc = 0; vc < num_vcs; ++vc) {
                if (r.inputHoldsDest(port, vc, dest))
                    branch.vcs.push_back(vc);
            }
            if (!branch.vcs.empty())
                tree.branches.push_back(std::move(branch));
        }
    }
    return tree;
}

int
totalCongestionVcs(const Network& net, const std::vector<int>& dests)
{
    int total = 0;
    for (int dest : dests)
        total += extractCongestionTree(net, dest).totalVcs();
    return total;
}

} // namespace footprint
