/**
 * @file
 * Purity-of-blocking analysis (Fig. 10(b,c)): the share of footprint
 * VCs among busy VCs at VC-allocation failures, and the derived degree
 * of head-of-line blocking.
 */

#ifndef FOOTPRINT_METRICS_PURITY_HPP
#define FOOTPRINT_METRICS_PURITY_HPP

#include <cstdint>
#include <string>

namespace footprint {

class Network;

/** Network-wide blocking summary over a measurement window. */
struct PuritySummary
{
    /** Mean ratio of footprint VCs to busy VCs at blocking events. */
    double purity = 0.0;
    /** Number of VC-allocation failures (blocking events). */
    std::uint64_t blockingEvents = 0;
    /** Degree of HoL blocking: (1 - purity) x blocking events. */
    double holDegree = 0.0;
    /** VC allocation successes (for blocking-rate normalisation). */
    std::uint64_t allocSuccesses = 0;

    /** Blocking events per allocation attempt. */
    double blockingRate() const;

    std::string toString() const;
};

/** Aggregate the routers' counters into a summary. */
PuritySummary collectPurity(const Network& net);

} // namespace footprint

#endif // FOOTPRINT_METRICS_PURITY_HPP
