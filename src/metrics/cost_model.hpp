/**
 * @file
 * Implementation-cost model of Footprint routing (Sec. 4.4): the extra
 * per-port storage (idle-VC counter + per-VC owner registers) and its
 * overhead relative to flit buffering.
 */

#ifndef FOOTPRINT_METRICS_COST_MODEL_HPP
#define FOOTPRINT_METRICS_COST_MODEL_HPP

#include <string>

namespace footprint {

/** Storage cost of Footprint's bookkeeping at one router port. */
struct FootprintCost
{
    int numVcs = 0;
    int numNodes = 0;

    int ownerBitsPerVc = 0;    ///< log2(N) destination register
    int busyBitsPerVc = 1;     ///< occupancy/valid bit
    int idleCounterBits = 0;   ///< log2(V+1) idle-VC counter per port

    /** Total extra bits per port. */
    int bitsPerPort() const;

    /** Overhead expressed in flit-buffer entries of @p flit_bits. */
    double flitEquivalents(int flit_bits) const;

    std::string toString() const;
};

/** ceil(log2(x)) for x >= 1. */
int ceilLog2(int x);

/** Build the cost model for a network of @p num_nodes with @p num_vcs
 * VCs per physical channel. */
FootprintCost footprintCost(int num_vcs, int num_nodes);

} // namespace footprint

#endif // FOOTPRINT_METRICS_COST_MODEL_HPP
