/**
 * @file
 * Congestion-tree extraction (Figs. 2 and 4): given a network snapshot
 * and a destination, find the tree of channels and VCs holding traffic
 * to that destination, and report its size and branch thickness.
 */

#ifndef FOOTPRINT_METRICS_CONGESTION_TREE_HPP
#define FOOTPRINT_METRICS_CONGESTION_TREE_HPP

#include <string>
#include <vector>

namespace footprint {

class Network;

/** One branch of a congestion tree: a channel and its occupied VCs. */
struct TreeBranch
{
    int router = -1;  ///< router whose input channel this is
    int inPort = -1;  ///< input port (the channel's downstream end)
    std::vector<int> vcs;  ///< input VCs holding traffic to the dest

    int thickness() const { return static_cast<int>(vcs.size()); }
};

/** A congestion tree rooted at one destination endpoint. */
struct CongestionTree
{
    int dest = -1;
    std::vector<TreeBranch> branches;

    int numBranches() const { return static_cast<int>(branches.size()); }
    int totalVcs() const;
    double avgThickness() const;
    int maxThickness() const;

    std::string toString() const;
};

/**
 * Extract the congestion tree for @p dest from the current buffer
 * occupancy of @p net: every input (channel, VC) holding at least one
 * flit destined to @p dest is a member; branch thickness is the VC
 * count per channel (the quantity Footprint minimises).
 */
CongestionTree extractCongestionTree(const Network& net, int dest);

/** Sum of totalVcs over the trees of several destinations. */
int totalCongestionVcs(const Network& net,
                       const std::vector<int>& dests);

} // namespace footprint

#endif // FOOTPRINT_METRICS_CONGESTION_TREE_HPP
