#include "metrics/cost_model.hpp"

#include <sstream>

#include "sim/log.hpp"

namespace footprint {

int
ceilLog2(int x)
{
    FP_ASSERT(x >= 1, "ceilLog2 of non-positive value");
    int bits = 0;
    int v = 1;
    while (v < x) {
        v *= 2;
        ++bits;
    }
    return bits;
}

int
FootprintCost::bitsPerPort() const
{
    return numVcs * (ownerBitsPerVc + busyBitsPerVc) + idleCounterBits;
}

double
FootprintCost::flitEquivalents(int flit_bits) const
{
    return static_cast<double>(bitsPerPort())
        / static_cast<double>(flit_bits);
}

std::string
FootprintCost::toString() const
{
    std::ostringstream oss;
    oss << "footprint cost: " << numVcs << " VCs x ("
        << ownerBitsPerVc << " owner + " << busyBitsPerVc
        << " busy) bits + " << idleCounterBits
        << " counter bits = " << bitsPerPort() << " bits/port";
    return oss.str();
}

FootprintCost
footprintCost(int num_vcs, int num_nodes)
{
    FootprintCost cost;
    cost.numVcs = num_vcs;
    cost.numNodes = num_nodes;
    // Owner register: log2(N) bits per VC to name the destination of
    // the occupying packet (Sec. 4.4), plus one busy/valid bit.
    cost.ownerBitsPerVc = ceilLog2(num_nodes);
    cost.busyBitsPerVc = 1;
    // Idle-VC counter: counts 0..numVcs, so log2(V+1) bits per port.
    cost.idleCounterBits = ceilLog2(num_vcs + 1);
    return cost;
}

} // namespace footprint
