#include "metrics/purity.hpp"

#include <sstream>

#include "network/network.hpp"

namespace footprint {

double
PuritySummary::blockingRate() const
{
    const std::uint64_t attempts = blockingEvents + allocSuccesses;
    return attempts == 0
        ? 0.0
        : static_cast<double>(blockingEvents)
            / static_cast<double>(attempts);
}

std::string
PuritySummary::toString() const
{
    std::ostringstream oss;
    oss << "purity=" << purity << " blocking_events=" << blockingEvents
        << " hol_degree=" << holDegree
        << " blocking_rate=" << blockingRate();
    return oss.str();
}

PuritySummary
collectPurity(const Network& net)
{
    const Router::Counters c = net.aggregateCounters();
    PuritySummary s;
    s.purity = c.purity();
    s.blockingEvents = c.vcAllocFail;
    s.holDegree = c.holDegree();
    s.allocSuccesses = c.vcAllocSuccess;
    return s;
}

} // namespace footprint
