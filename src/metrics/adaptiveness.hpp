/**
 * @file
 * The paper's two-level routing adaptiveness metrics (Sec. 3.1):
 * port adaptiveness (Eq. 1) and VC adaptiveness (Eq. 2), computed
 * analytically for each routing algorithm.
 */

#ifndef FOOTPRINT_METRICS_ADAPTIVENESS_HPP
#define FOOTPRINT_METRICS_ADAPTIVENESS_HPP

#include <string>

#include "topo/mesh.hpp"

namespace footprint {

/** Two-level adaptiveness summary for one algorithm. */
struct AdaptivenessReport
{
    std::string algorithm;
    /** Average of P_adapt(ni, nj) over all ordered node pairs. */
    double portAdaptiveness = 0.0;
    /** Fraction of minimal *paths* allowed (Glass & Ni adaptiveness). */
    double pathAdaptiveness = 0.0;
    /** VC adaptiveness per Eq. 2 (averaged over channel types). */
    double vcAdaptiveness = 0.0;
};

/**
 * Port adaptiveness between a node pair: averaged over every node on
 * any allowed minimal path, the ratio of allowed productive ports to
 * minimal ports (Eq. 1).
 */
double portAdaptiveness(const Mesh& mesh, const std::string& algorithm,
                        int src, int dest);

/**
 * Path adaptiveness between a node pair: allowed minimal paths divided
 * by all minimal paths.
 */
double pathAdaptiveness(const Mesh& mesh, const std::string& algorithm,
                        int src, int dest);

/**
 * VC adaptiveness of an algorithm for a non-escape channel (Eq. 2):
 * 1 for algorithms that choose VCs adaptively per-packet, 0 for
 * algorithms that pick VCs obliviously or statically; Duato-based
 * adaptive-VC algorithms score (V-1)/V on non-escape channels.
 */
double vcAdaptiveness(const std::string& algorithm, int num_vcs);

/** Full report averaged over all ordered node pairs of @p mesh. */
AdaptivenessReport adaptivenessReport(const Mesh& mesh,
                                      const std::string& algorithm,
                                      int num_vcs);

} // namespace footprint

#endif // FOOTPRINT_METRICS_ADAPTIVENESS_HPP
