#include "obs/timeseries.hpp"

#include <cmath>
#include <cstdio>

#include "network/network.hpp"
#include "obs/run_metadata.hpp"
#include "obs/watchdog.hpp"
#include "sim/config.hpp"

namespace footprint {

const char*
vaRegimeName(int priority)
{
    // Indexed by Priority value (routing.hpp): Lowest..Reclaim.
    static const char* kNames[kNumVaRegimes] = {
        "escape", "busy", "footprint", "idle", "reclaim"};
    if (priority < 0 || priority >= kNumVaRegimes)
        return "unknown";
    return kNames[priority];
}

TimeseriesConfig
TimeseriesConfig::fromSim(const SimConfig& cfg)
{
    TimeseriesConfig tc;
    tc.enabled =
        cfg.contains("timeseries") && cfg.getBool("timeseries");
    if (cfg.contains("timeseries_out")
        && !cfg.getStr("timeseries_out").empty())
        tc.outPath = cfg.getStr("timeseries_out");
    if (cfg.contains("timeseries_interval"))
        tc.interval = cfg.getInt("timeseries_interval");
    if (tc.interval < 1)
        tc.interval = 1;
    if (cfg.contains("steady_windows"))
        tc.steadyWindows = static_cast<int>(cfg.getInt("steady_windows"));
    if (tc.steadyWindows < 2)
        tc.steadyWindows = 2;
    if (cfg.contains("steady_tolerance"))
        tc.steadyTolerance = cfg.getDouble("steady_tolerance");
    if (!(tc.steadyTolerance > 0.0))
        tc.steadyTolerance = 0.02;
    tc.warmupAuto =
        cfg.contains("warmup") && cfg.getStr("warmup") == "auto";
    if (cfg.contains("warmup_max_cycles"))
        tc.warmupMax = cfg.getInt("warmup_max_cycles");
    if (tc.warmupMax < tc.interval)
        tc.warmupMax = tc.interval;
    return tc;
}

double
WindowRecord::offeredRate(int nodes) const
{
    const double denom = static_cast<double>(endCycle - startCycle)
        * static_cast<double>(nodes);
    return denom > 0.0
        ? static_cast<double>(offeredFlits) / denom
        : 0.0;
}

double
WindowRecord::acceptedRate(int nodes) const
{
    const double denom = static_cast<double>(endCycle - startCycle)
        * static_cast<double>(nodes);
    return denom > 0.0
        ? static_cast<double>(acceptedFlits) / denom
        : 0.0;
}

SteadyStateDetector::SteadyStateDetector(int windows, double tolerance)
    : windows_(windows < 2 ? 2 : windows),
      tolerance_(tolerance > 0.0 ? tolerance : 0.02),
      latencyMeans_(static_cast<std::size_t>(windows_), 0.0),
      acceptedRates_(static_cast<std::size_t>(windows_), 0.0)
{
}

double
SteadyStateDetector::relativeHalfWidth(const std::vector<double>& ring,
                                       std::size_t filled)
{
    double lo = ring[0];
    double hi = ring[0];
    for (std::size_t i = 1; i < filled; ++i) {
        lo = std::min(lo, ring[i]);
        hi = std::max(hi, ring[i]);
    }
    const double scale = std::max(std::abs(hi), 1e-12);
    return (hi - lo) / (2.0 * scale);
}

void
SteadyStateDetector::addWindow(const WindowRecord& w, int nodes)
{
    if (converged())
        return;
    // A window with no ejected packets cannot witness a steady
    // latency; it resets the trailing evidence (the run is either
    // still filling or fully stalled).
    if (w.latencyCount == 0) {
        filled_ = 0;
        next_ = 0;
        return;
    }
    latencyMeans_[next_] = w.latencyMean;
    acceptedRates_[next_] = w.acceptedRate(nodes);
    next_ = (next_ + 1) % latencyMeans_.size();
    if (filled_ < latencyMeans_.size())
        ++filled_;
    if (filled_ < latencyMeans_.size())
        return;

    lastLatencySpread_ = relativeHalfWidth(latencyMeans_, filled_);
    const double rate_spread =
        relativeHalfWidth(acceptedRates_, filled_);
    if (lastLatencySpread_ <= tolerance_ && rate_spread <= tolerance_)
        steadyCycle_ = w.endCycle;
}

FlightRecorder::FlightRecorder(const Network& net,
                               const TimeseriesConfig& cfg,
                               const RunMetadata* meta)
    : net_(net),
      cfg_(cfg),
      detector_(cfg.steadyWindows, cfg.steadyTolerance)
{
    width_ = net.mesh().width();
    height_ = net.mesh().height();
    nodes_ = net.mesh().numNodes();

    ejectedBase_ = net.totalFlitsEjected();
    const Router::Counters agg = net.aggregateCounters();
    vaGrantBase_ = agg.vaGrantsByPriority;
    vaFailBase_ = agg.vcAllocFail;

    headerCache_ = "{\"schema\":\"footprint.timeseries/1\"";
    if (meta) {
        headerCache_ += ",\"meta\":";
        headerCache_ += meta->toJson();
    }
    headerCache_ += ",\"mesh\":{\"width\":" + std::to_string(width_)
        + ",\"height\":" + std::to_string(height_) + "}"
        + ",\"interval\":" + std::to_string(cfg_.interval)
        + ",\"steady_windows\":" + std::to_string(cfg_.steadyWindows);
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"steady_tolerance\":%.6g}",
                  cfg_.steadyTolerance);
    headerCache_ += buf;

    if (cfg_.enabled && !cfg_.outPath.empty()) {
        stream_ = std::make_unique<std::ofstream>(cfg_.outPath);
        if (*stream_) {
            *stream_ << headerCache_ << '\n';
            stream_->flush();
        } else {
            stream_.reset();
        }
    }
}

void
FlightRecorder::onCountersReset()
{
    // Network::resetCounters() zeroed the per-router counters; the
    // per-window deltas must re-baseline at zero or the next window
    // would underflow. Ejected-flit totals are monotone and survive
    // the reset untouched on the endpoint side, but re-read them too
    // in case the driver reset those as well.
    ejectedBase_ = net_.totalFlitsEjected();
    const Router::Counters agg = net_.aggregateCounters();
    vaGrantBase_ = agg.vaGrantsByPriority;
    vaFailBase_ = agg.vcAllocFail;
}

void
FlightRecorder::closeWindow(std::int64_t end_cycle)
{
    WindowRecord w;
    w.index = windowIndex_++;
    w.startCycle = windowStart_;
    w.endCycle = end_cycle;

    w.offeredFlits = offeredFlits_;
    const std::uint64_t ejected = net_.totalFlitsEjected();
    w.acceptedFlits = ejected - ejectedBase_;
    ejectedBase_ = ejected;
    w.packetsEjected = packetsEjected_;

    w.latencyCount = windowHist_.count();
    w.latencyMean = windowHist_.mean();
    w.latencyP50 = windowHist_.percentile(0.50);
    w.latencyP99 = windowHist_.percentile(0.99);
    w.latencyP999 = windowHist_.percentile(0.999);
    w.latencyMax = windowHist_.max();
    mergedHist_.merge(windowHist_);
    windowHist_.reset();

    w.flitsInFlight = net_.totalFlitsInFlight();
    int active = 0;
    for (int node = 0; node < nodes_; ++node) {
        if (net_.router(node).hasPendingWork()
            || net_.endpoint(node).hasPendingWork())
            ++active;
    }
    w.activeNodes = active;

    const Router::Counters agg = net_.aggregateCounters();
    for (int p = 0; p < kNumVaRegimes; ++p) {
        const auto i = static_cast<std::size_t>(p);
        w.vaGrants[i] = agg.vaGrantsByPriority[i] - vaGrantBase_[i];
        vaGrantBase_[i] = agg.vaGrantsByPriority[i];
    }
    w.vaFails = agg.vcAllocFail - vaFailBase_;
    vaFailBase_ = agg.vcAllocFail;

    if (watchdog_) {
        const std::uint64_t total = watchdog_->events().size();
        w.watchdogEvents = total - watchdogBase_;
        watchdogBase_ = total;
    }

    detector_.addWindow(w, nodes_);

    if (stream_) {
        *stream_ << windowJson(w) << '\n';
        stream_->flush();
    }
    windows_.push_back(w);

    offeredFlits_ = 0;
    packetsEjected_ = 0;
    windowStart_ = end_cycle;
}

void
FlightRecorder::finish(std::int64_t cycle)
{
    if (cycle > windowStart_)
        closeWindow(cycle);
    if (stream_)
        stream_->flush();
}

std::int64_t
FlightRecorder::saturationOnsetCycle() const
{
    // Saturation onset: offered load sustainedly exceeds what the
    // network accepts while the in-flight backlog keeps growing. Two
    // consecutive windows are required so a single bursty window
    // (e.g. a drain hiccup) does not read as collapse.
    const double tol = 0.05;
    int streak = 0;
    for (std::size_t i = 1; i < windows_.size(); ++i) {
        const WindowRecord& w = windows_[i];
        const bool lagging = w.offeredFlits > 0
            && static_cast<double>(w.acceptedFlits)
                < static_cast<double>(w.offeredFlits) * (1.0 - tol);
        const bool growing =
            w.flitsInFlight > windows_[i - 1].flitsInFlight;
        if (lagging && growing) {
            if (++streak >= 2) {
                return windows_[i + 1 - static_cast<std::size_t>(streak)]
                    .startCycle;
            }
        } else {
            streak = 0;
        }
    }
    return -1;
}

std::string
FlightRecorder::headerJson() const
{
    return headerCache_;
}

std::string
FlightRecorder::windowJson(const WindowRecord& w) const
{
    char buf[64];
    std::string out = "{\"window\":" + std::to_string(w.index)
        + ",\"start\":" + std::to_string(w.startCycle)
        + ",\"end\":" + std::to_string(w.endCycle)
        + ",\"offered_flits\":" + std::to_string(w.offeredFlits)
        + ",\"accepted_flits\":" + std::to_string(w.acceptedFlits)
        + ",\"packets\":" + std::to_string(w.packetsEjected);

    std::snprintf(buf, sizeof(buf), ",\"offered_rate\":%.6g",
                  w.offeredRate(nodes_));
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"accepted_rate\":%.6g",
                  w.acceptedRate(nodes_));
    out += buf;

    out += ",\"latency\":{\"count\":" + std::to_string(w.latencyCount);
    std::snprintf(buf, sizeof(buf), ",\"mean\":%.6g", w.latencyMean);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"p50\":%.6g", w.latencyP50);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"p99\":%.6g", w.latencyP99);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"p999\":%.6g", w.latencyP999);
    out += buf;
    out += ",\"max\":" + std::to_string(w.latencyMax) + "}";

    out += ",\"in_flight\":" + std::to_string(w.flitsInFlight)
        + ",\"active_nodes\":" + std::to_string(w.activeNodes);

    out += ",\"va_grants\":{";
    for (int p = 0; p < kNumVaRegimes; ++p) {
        if (p > 0)
            out += ',';
        out += '"';
        out += vaRegimeName(p);
        out += "\":"
            + std::to_string(w.vaGrants[static_cast<std::size_t>(p)]);
    }
    out += "}";
    out += ",\"va_fails\":" + std::to_string(w.vaFails)
        + ",\"watchdog_events\":" + std::to_string(w.watchdogEvents)
        + "}";
    return out;
}

} // namespace footprint
