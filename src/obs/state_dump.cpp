#include "obs/state_dump.hpp"

#include <fstream>

#include "network/network.hpp"
#include "obs/run_metadata.hpp"
#include "obs/sink.hpp"
#include "sim/log.hpp"

namespace footprint {

namespace {

void
writeFlit(std::ostream& os, const Flit& f, const PacketPool& pool)
{
    os << "{\"packet\":" << f.packetId << ",\"src\":" << f.src
       << ",\"dest\":" << f.dest << ",\"vc\":" << f.vc
       << ",\"head\":" << (f.head ? "true" : "false")
       << ",\"tail\":" << (f.tail ? "true" : "false")
       << ",\"hops\":" << f.hops
       << ",\"create\":" << pool.get(f.desc).createTime << '}';
}

template <typename Range>
void
writeFlitArray(std::ostream& os, const Range& flits,
               const PacketPool& pool)
{
    os << '[';
    bool first = true;
    for (const Flit& f : flits) {
        if (!first)
            os << ',';
        first = false;
        writeFlit(os, f, pool);
    }
    os << ']';
}

void
writeRouter(std::ostream& os, const Network& net, int node)
{
    const Router& r = net.router(node);
    const int num_vcs = net.routerParams().numVcs;

    os << "{\"node\":" << node << ",\"inputs\":[";
    for (int port = 0; port < kNumPorts; ++port) {
        if (port > 0)
            os << ',';
        os << "{\"port\":\"" << dirName(dirOf(port))
           << "\",\"vcs\":[";
        for (int vc = 0; vc < num_vcs; ++vc) {
            const InputVc& ivc = r.inputVc(port, vc);
            if (vc > 0)
                os << ',';
            os << "{\"vc\":" << vc << ",\"state\":\""
               << inputVcStateName(ivc.state) << '"';
            if (ivc.state == InputVc::State::Active) {
                os << ",\"out_port\":" << ivc.outPort
                   << ",\"out_vc\":" << ivc.outVc;
            }
            if (!ivc.empty()) {
                os << ",\"flits\":";
                writeFlitArray(os, ivc.buffer, net.packetPool());
            }
            os << '}';
        }
        os << "]}";
    }
    os << "],\"outputs\":[";
    for (int port = 0; port < kNumPorts; ++port) {
        if (port > 0)
            os << ',';
        os << "{\"port\":\"" << dirName(dirOf(port))
           << "\",\"vcs\":[";
        for (int vc = 0; vc < num_vcs; ++vc) {
            if (vc > 0)
                os << ',';
            os << "{\"vc\":" << vc << ",\"credits\":"
               << r.outVcCredits(port, vc) << ",\"busy\":"
               << (r.outVcBusy(port, vc) ? "true" : "false")
               << ",\"owner\":" << r.outVcOwner(port, vc) << '}';
        }
        os << ']';
        if (!r.outputFifo(port).empty()) {
            os << ",\"fifo\":";
            writeFlitArray(os, r.outputFifo(port), net.packetPool());
        }
        os << '}';
    }
    os << "]}";
}

void
writeEndpoint(std::ostream& os, const Network& net, int node)
{
    const Endpoint& ep = net.endpoint(node);
    const int num_vcs = net.routerParams().numVcs;

    os << "{\"node\":" << node << ",\"source_backlog\":"
       << ep.sourceBacklogFlits() << ",\"injecting\":"
       << (ep.injecting() ? "true" : "false");
    if (ep.injecting())
        os << ",\"inject_vc\":" << ep.currentInjectVc();
    os << ",\"inject_vcs\":[";
    for (int vc = 0; vc < num_vcs; ++vc) {
        if (vc > 0)
            os << ',';
        os << "{\"vc\":" << vc << ",\"credits\":"
           << ep.injectVcCredits(vc) << ",\"busy\":"
           << (ep.injectVcBusy(vc) ? "true" : "false") << '}';
    }
    os << "],\"sink_occ\":[";
    for (int vc = 0; vc < num_vcs; ++vc) {
        if (vc > 0)
            os << ',';
        os << ep.sinkVcOccupancy(vc);
    }
    os << "]}";
}

const char*
linkKindName(Network::LinkRecord::Kind kind)
{
    switch (kind) {
    case Network::LinkRecord::Kind::RouterToRouter: return "link";
    case Network::LinkRecord::Kind::RouterToEndpoint: return "eject";
    case Network::LinkRecord::Kind::EndpointToRouter: return "inject";
    }
    return "?";
}

/** Channels carrying payloads; quiet links are omitted for brevity. */
void
writeChannels(std::ostream& os, const Network& net)
{
    os << '[';
    bool first = true;
    for (const Network::LinkRecord& link : net.links()) {
        if (link.flit->empty() && link.credit->empty())
            continue;
        if (!first)
            os << ',';
        first = false;
        os << "{\"kind\":\"" << linkKindName(link.kind)
           << "\",\"src\":" << link.srcNode << ",\"src_port\":"
           << link.srcPort << ",\"dst\":" << link.dstNode
           << ",\"dst_port\":" << link.dstPort;
        if (!link.flit->empty()) {
            os << ",\"flits\":[";
            bool f_first = true;
            link.flit->forEachInFlight([&](const Flit& f) {
                if (!f_first)
                    os << ',';
                f_first = false;
                writeFlit(os, f, net.packetPool());
            });
            os << ']';
        }
        if (!link.credit->empty()) {
            os << ",\"credits\":[";
            bool c_first = true;
            link.credit->forEachInFlight([&](const Credit& c) {
                if (!c_first)
                    os << ',';
                c_first = false;
                os << c.vc;
            });
            os << ']';
        }
        os << '}';
    }
    os << ']';
}

} // namespace

void
writeStateDump(std::ostream& os, const Network& net,
               const StateDumpContext& ctx)
{
    os << "{\"schema\":\"footprint.state_dump/1\",\"cycle\":"
       << ctx.cycle << ",\"reason\":\"" << jsonEscape(ctx.reason)
       << '"';
    if (ctx.meta)
        os << ",\"meta\":" << ctx.meta->toJson();

    os << ",\"totals\":{\"injected\":" << net.totalFlitsInjected()
       << ",\"ejected\":" << net.totalFlitsEjected()
       << ",\"resident\":" << net.totalFlitsInFlight() << '}';

    if (ctx.stall) {
        os << ",\"stall\":{\"class\":\""
           << Watchdog::stallClassName(ctx.stall->stallClass)
           << "\",\"blocked_vcs\":" << ctx.stall->blockedVcs
           << ",\"detail\":\"" << jsonEscape(ctx.stall->detail)
           << "\"}";
    }

    if (ctx.violations && !ctx.violations->empty()) {
        os << ",\"violations\":[";
        for (std::size_t i = 0; i < ctx.violations->size(); ++i) {
            const InvariantAuditor::Violation& v =
                (*ctx.violations)[i];
            if (i > 0)
                os << ',';
            os << "{\"check\":\"" << jsonEscape(v.check)
               << "\",\"node\":" << v.node << ",\"cycle\":" << v.cycle
               << ",\"detail\":\"" << jsonEscape(v.detail) << "\"}";
        }
        os << ']';
    }

    if (ctx.events && !ctx.events->empty()) {
        os << ",\"watchdog_events\":[";
        for (std::size_t i = 0; i < ctx.events->size(); ++i) {
            const Watchdog::Event& e = (*ctx.events)[i];
            if (i > 0)
                os << ',';
            os << "{\"kind\":\"" << jsonEscape(e.kind)
               << "\",\"cycle\":" << e.cycle << ",\"detail\":\""
               << jsonEscape(e.detail) << "\"}";
        }
        os << ']';
    }

    const int n = net.mesh().numNodes();
    os << ",\"routers\":[";
    for (int node = 0; node < n; ++node) {
        if (node > 0)
            os << ',';
        writeRouter(os, net, node);
    }
    os << "],\"endpoints\":[";
    for (int node = 0; node < n; ++node) {
        if (node > 0)
            os << ',';
        writeEndpoint(os, net, node);
    }
    os << "],\"channels\":";
    writeChannels(os, net);
    os << "}\n";
}

bool
dumpStateToFile(const std::string& path, const Network& net,
                const StateDumpContext& ctx)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open state dump file: " + path);
        return false;
    }
    writeStateDump(os, net, ctx);
    return os.good();
}

} // namespace footprint
