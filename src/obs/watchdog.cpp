#include "obs/watchdog.hpp"

#include <algorithm>
#include <sstream>

#include "network/network.hpp"
#include "obs/packet_tracer.hpp"
#include "routing/routing.hpp"
#include "sim/rng.hpp"

namespace footprint {

std::vector<int>
WaitForGraph::findCycle(const std::vector<int>* within) const
{
    // Iterative colored DFS. Gray nodes are on the current stack; an
    // edge into a gray node closes a cycle, which is read back off the
    // explicit stack.
    enum : std::uint8_t { White, Gray, Black };
    const int n = numNodes();
    std::vector<std::uint8_t> color(static_cast<std::size_t>(n), White);
    if (within) {
        // Everything outside the restriction set is pre-visited.
        color.assign(static_cast<std::size_t>(n), Black);
        for (int node : *within)
            color[static_cast<std::size_t>(node)] = White;
    }
    std::vector<int> stack;       // DFS path (gray nodes, in order)
    std::vector<std::size_t> it;  // per-path-node successor cursor

    for (int root = 0; root < n; ++root) {
        if (color[static_cast<std::size_t>(root)] != White)
            continue;
        stack.assign(1, root);
        it.assign(1, 0);
        color[static_cast<std::size_t>(root)] = Gray;
        while (!stack.empty()) {
            const int node = stack.back();
            const auto& succ = successors(node);
            if (it.back() < succ.size()) {
                const int next = succ[it.back()++];
                const auto ni = static_cast<std::size_t>(next);
                if (color[ni] == Gray) {
                    const auto pos = std::find(stack.begin(),
                                               stack.end(), next);
                    return std::vector<int>(pos, stack.end());
                }
                if (color[ni] == White) {
                    color[ni] = Gray;
                    stack.push_back(next);
                    it.push_back(0);
                }
            } else {
                color[static_cast<std::size_t>(node)] = Black;
                stack.pop_back();
                it.pop_back();
            }
        }
    }
    return {};
}

std::vector<int>
WaitForGraph::unsafeNodes() const
{
    // A node is safe when it can reach a drain: seed with every node
    // that has no outgoing wait (draining or untouched), then flood
    // backwards — any-successor-safe makes the predecessor safe, the
    // OR semantics of multi-resource waits.
    const int n = numNodes();
    std::vector<std::vector<int>> radj(static_cast<std::size_t>(n));
    std::vector<char> safe(static_cast<std::size_t>(n), 0);
    std::vector<int> work;
    for (int u = 0; u < n; ++u) {
        for (int v : adj_[static_cast<std::size_t>(u)])
            radj[static_cast<std::size_t>(v)].push_back(u);
        if (adj_[static_cast<std::size_t>(u)].empty()) {
            safe[static_cast<std::size_t>(u)] = 1;
            work.push_back(u);
        }
    }
    while (!work.empty()) {
        const int v = work.back();
        work.pop_back();
        for (int u : radj[static_cast<std::size_t>(v)]) {
            if (!safe[static_cast<std::size_t>(u)]) {
                safe[static_cast<std::size_t>(u)] = 1;
                work.push_back(u);
            }
        }
    }
    std::vector<int> unsafe;
    for (int u = 0; u < n; ++u) {
        if (!safe[static_cast<std::size_t>(u)])
            unsafe.push_back(u);
    }
    return unsafe;
}

const char*
Watchdog::stallClassName(StallClass c)
{
    switch (c) {
    case StallClass::None: return "none";
    case StallClass::TreeSaturation: return "tree_saturation";
    case StallClass::Deadlock: return "deadlock";
    }
    return "?";
}

Watchdog::Watchdog(const Network& net, PacketTracer* tracer,
                   const Params& params)
    : net_(&net), tracer_(tracer), params_(params)
{
    maxHops_ = params_.maxHops > 0
        ? params_.maxHops
        : 2 * (net.mesh().width() + net.mesh().height());

    // Index each output port's credit-return channel so the wait-for
    // graph can tell "credits in flight" from "downstream full".
    creditAt_.assign(
        static_cast<std::size_t>(net.mesh().numNodes() * kNumPorts),
        nullptr);
    for (const Network::LinkRecord& link : net.links()) {
        if (link.srcPort < 0)
            continue;
        creditAt_[static_cast<std::size_t>(
            link.srcNode * kNumPorts + link.srcPort)] = link.credit;
    }
}

bool
Watchdog::creditInFlight(int node, int port, int vc) const
{
    const CreditChannel* chan =
        creditAt_[static_cast<std::size_t>(node * kNumPorts + port)];
    if (!chan)
        return false;
    bool found = false;
    chan->forEachInFlight([&](const Credit& c) {
        if (c.vc == vc)
            found = true;
    });
    return found;
}

int
Watchdog::waitNodeId(int node, int port, int vc) const
{
    const int num_vcs = net_->routerParams().numVcs;
    return (node * kNumPorts + port) * num_vcs + vc;
}

std::string
Watchdog::waitNodeName(int id) const
{
    const int num_vcs = net_->routerParams().numVcs;
    const int vc = id % num_vcs;
    const int port = (id / num_vcs) % kNumPorts;
    const int node = id / (num_vcs * kNumPorts);
    std::ostringstream os;
    os << "(n" << node << ", " << dirName(dirOf(port)) << ", vc" << vc
       << ')';
    return os.str();
}

WaitForGraph
Watchdog::buildGraph(int* blocked_vcs) const
{
    const Mesh& mesh = net_->mesh();
    const int n = mesh.numNodes();
    const int num_vcs = net_->routerParams().numVcs;
    const bool atomic = net_->routing().atomicVcAlloc();
    const RoutingAlgorithm& routing = net_->routing();

    WaitForGraph graph(n * kNumPorts * num_vcs);
    int blocked = 0;

    // Per-router scratch: which input VC holds each output VC.
    std::vector<int> holder(
        static_cast<std::size_t>(kNumPorts * num_vcs));

    for (int node = 0; node < n; ++node) {
        const Router& r = net_->router(node);

        holder.assign(holder.size(), -1);
        for (int port = 0; port < kNumPorts; ++port) {
            for (int vc = 0; vc < num_vcs; ++vc) {
                const InputVc& ivc = r.inputVc(port, vc);
                if (ivc.state == InputVc::State::Active
                    && ivc.outPort >= 0) {
                    holder[static_cast<std::size_t>(
                        ivc.outPort * num_vcs + ivc.outVc)] =
                        waitNodeId(node, port, vc);
                }
            }
        }

        for (int port = 0; port < kNumPorts; ++port) {
            for (int vc = 0; vc < num_vcs; ++vc) {
                const InputVc& ivc = r.inputVc(port, vc);
                if (ivc.empty())
                    continue;
                const int self = waitNodeId(node, port, vc);
                const int edges_before = graph.numEdges();

                if (ivc.state == InputVc::State::Active) {
                    // Blocked only when the granted output VC has no
                    // credits AND none are in flight back on the link
                    // (credit-pipeline latency makes a saturated but
                    // flowing stream read credits==0 every cycle); the
                    // output FIFO drains one flit per cycle and is
                    // never a permanent blocker. The wait is on the
                    // downstream input VC freeing a slot. Local-port
                    // ejection sinks always drain, so an ejecting VC
                    // is a chain terminal.
                    if (r.outVcCredits(ivc.outPort, ivc.outVc) == 0
                        && ivc.outPort != portOf(Dir::Local)
                        && !creditInFlight(node, ivc.outPort,
                                           ivc.outVc)) {
                        const int nbr = r.neighborAt(ivc.outPort);
                        const int opp =
                            portOf(opposite(dirOf(ivc.outPort)));
                        graph.addEdge(
                            self, waitNodeId(nbr, opp, ivc.outVc));
                    }
                } else {
                    // Waiting in VC allocation: re-run the (stateless)
                    // routing function to recover the request set,
                    // restoring the router's RNG so the post-mortem
                    // does not perturb tie-break determinism.
                    Rng saved = r.rng();
                    OutputSet set;
                    routing.route(r, ivc.front(), set);
                    r.rng() = saved;

                    const int buf_size =
                        net_->routerParams().vcBufSize;
                    bool grantable = false;
                    for (const VcRequest& req : set.requests()) {
                        for (int ov = 0; ov < num_vcs; ++ov) {
                            if (((req.vcs >> ov) & 1) == 0)
                                continue;
                            if (!r.outVcBusy(req.port, ov)
                                && (!atomic
                                    || r.outVcCredits(req.port, ov)
                                        == buf_size)) {
                                grantable = true;
                            }
                        }
                    }
                    if (!grantable) {
                        for (const VcRequest& req : set.requests()) {
                            for (int ov = 0; ov < num_vcs; ++ov) {
                                if (((req.vcs >> ov) & 1) == 0)
                                    continue;
                                const int h = holder
                                    [static_cast<std::size_t>(
                                        req.port * num_vcs + ov)];
                                if (h >= 0)
                                    graph.addEdge(self, h);
                                else if (atomic
                                         && req.port
                                             != portOf(Dir::Local)
                                         && r.outVcCredits(req.port,
                                                           ov)
                                             < buf_size
                                         && !creditInFlight(node,
                                                            req.port,
                                                            ov)) {
                                    // Draining VC: atomic realloc
                                    // waits on the downstream buffer
                                    // emptying.
                                    const int nbr =
                                        r.neighborAt(req.port);
                                    const int opp = portOf(opposite(
                                        dirOf(req.port)));
                                    graph.addEdge(
                                        self,
                                        waitNodeId(nbr, opp, ov));
                                }
                            }
                        }
                    }
                }

                if (graph.numEdges() > edges_before)
                    ++blocked;
            }
        }
    }

    if (blocked_vcs)
        *blocked_vcs = blocked;
    return graph;
}

Watchdog::Report
Watchdog::classify(std::int64_t cycle) const
{
    (void)cycle;
    Report rep;
    WaitForGraph graph = buildGraph(&rep.blockedVcs);
    // Deadlock is a knot, not a mere cycle: waits have OR semantics
    // (any granted alternative unblocks a VC), so adaptive-layer
    // cycles with an escape path out are survivable. Only a node set
    // with no wait path to any draining resource can never resolve.
    const std::vector<int> unsafe = graph.unsafeNodes();
    if (!unsafe.empty())
        rep.cycle = graph.findCycle(&unsafe);

    std::ostringstream os;
    if (!unsafe.empty()) {
        rep.stallClass = StallClass::Deadlock;
        os << unsafe.size() << " VCs in a closed wait-for knot (no "
           << "path to a draining resource); cycle: ";
        for (std::size_t i = 0; i < rep.cycle.size(); ++i) {
            if (i > 0)
                os << " -> ";
            os << waitNodeName(rep.cycle[i]);
        }
        os << " -> " << waitNodeName(rep.cycle.front());
    } else if (rep.blockedVcs > 0) {
        rep.stallClass = StallClass::TreeSaturation;
        os << rep.blockedVcs << " blocked input VCs, every wait "
           << "path reaches a draining resource (endpoint congestion, "
           << "not deadlock)";
    } else {
        os << "no blocked input VCs";
    }
    rep.detail = os.str();
    return rep;
}

std::size_t
Watchdog::scanForLivelock(std::int64_t cycle)
{
    const int n = net_->mesh().numNodes();
    const int num_vcs = net_->routerParams().numVcs;
    std::size_t found = 0;

    for (int node = 0; node < n; ++node) {
        const Router& r = net_->router(node);
        for (int port = 0; port < kNumPorts; ++port) {
            for (int vc = 0; vc < num_vcs; ++vc) {
                for (const Flit& f : r.inputVc(port, vc).buffer) {
                    if (!f.head)
                        continue;
                    const std::int64_t age = cycle
                        - net_->packetPool().get(f.desc).createTime;
                    const bool hops_bad = f.hops > maxHops_;
                    const bool age_bad = params_.maxAge > 0
                        && age > params_.maxAge;
                    if (!hops_bad && !age_bad)
                        continue;
                    if (std::find(livelockReported_.begin(),
                                  livelockReported_.end(), f.packetId)
                        != livelockReported_.end())
                        continue;
                    livelockReported_.push_back(f.packetId);
                    ++found;

                    std::ostringstream os;
                    os << "packet " << f.packetId << " (src " << f.src
                       << " dest " << f.dest << ") at node " << node
                       << ": " << f.hops << " hops, age " << age
                       << " cycles (bounds: " << maxHops_ << " hops";
                    if (params_.maxAge > 0)
                        os << ", " << params_.maxAge << " cycles";
                    os << ')';
                    if (tracer_ && tracer_->traced(f.packetId))
                        os << "; history: "
                           << tracer_->describe(f.packetId);
                    events_.push_back(
                        Event{"livelock", cycle, os.str()});
                }
            }
        }
    }
    return found;
}

void
Watchdog::check(std::int64_t cycle)
{
    nextDue_ = cycle + params_.interval;

    const std::uint64_t work =
        net_->totalFlitsSent() + net_->totalFlitsEjected();
    const bool resident = net_->totalFlitsInFlight() > 0;
    if (resident && work == lastWork_) {
        const Report rep = classify(cycle);
        if (rep.stallClass == StallClass::Deadlock)
            deadlockDetected_ = true;
        std::ostringstream os;
        os << "no forward progress for " << params_.interval
           << " cycles; " << rep.detail;
        events_.push_back(Event{stallClassName(rep.stallClass), cycle,
                                os.str()});
    }
    lastWork_ = work;

    if (params_.maxAge > 0 || params_.maxHops > 0)
        scanForLivelock(cycle);
}

} // namespace footprint
