/**
 * @file
 * Runtime invariant auditor: a periodic checker that walks the whole
 * network and verifies the structural invariants the simulator's
 * correctness rests on — global flit conservation, per-link credit
 * conservation, VC state-machine legality, and escape-VC routing
 * legality for Duato-based algorithms.
 *
 * The auditor is pull-based and runs entirely off the hot path: the
 * driver calls tick(cycle) once per cycle, which is a single compare
 * until the audit interval elapses; a full audit then inspects router
 * and channel state through const accessors without mutating anything.
 * Violations are recorded (not thrown) so a run can complete, report,
 * and dump forensic state.
 */

#ifndef FOOTPRINT_OBS_AUDITOR_HPP
#define FOOTPRINT_OBS_AUDITOR_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace footprint {

class Network;

/**
 * Periodic whole-network invariant checker.
 *
 * Checks performed per audit (see DESIGN.md "Invariant auditing"):
 *  - flit_conservation: flits injected - flits ejected equals flits
 *    resident in buffers, FIFOs, channels, and sinks.
 *  - credit_conservation: for every link and VC, upstream credits +
 *    upstream output-FIFO flits + in-flight flits + downstream buffer
 *    occupancy + in-flight credits == the VC buffer size.
 *  - vc_legality: input-VC state machine and output-VC allocation
 *    invariants (head flit at front of an idle/routing VC, Active VCs
 *    point at busy output VCs with matching owners, exactly one Active
 *    input VC per busy output VC, credits within bounds, at most one
 *    packet per buffer under atomic reallocation).
 *  - escape_legality: occupied escape VCs (VC 0) sit on the
 *    dimension-order output port toward their owner destination, the
 *    property Duato-based deadlock freedom relies on.
 */
class InvariantAuditor
{
  public:
    struct Params
    {
        /** Cycles between audits; <= 0 disables periodic audits. */
        std::int64_t interval = 1000;
        /** Violations retained verbatim (all are still counted). */
        std::size_t maxRecorded = 64;
    };

    /** One failed invariant check. */
    struct Violation
    {
        std::string check;  ///< "flit_conservation", "vc_legality", ...
        int node = -1;      ///< router involved; -1 for global checks
        std::string detail; ///< human-readable specifics
        std::int64_t cycle = 0;

        std::string toString() const;
    };

    InvariantAuditor(const Network& net, const Params& params);

    /**
     * Per-cycle hook: runs a full audit when the interval has elapsed
     * since the previous one; otherwise a single compare.
     */
    void
    tick(std::int64_t cycle)
    {
        if (params_.interval <= 0 || cycle < nextDue_)
            return;
        auditNow(cycle);
    }

    /**
     * Next cycle at which tick() will audit (max() when auditing is
     * off). The skip-ahead fast path clamps its horizon here so a
     * jump never overshoots a due audit — re-arming late would shift
     * every subsequent audit cycle.
     */
    std::int64_t
    nextDueCycle() const
    {
        return params_.interval <= 0
            ? std::numeric_limits<std::int64_t>::max()
            : nextDue_;
    }

    /**
     * Run every check immediately (also re-arms the interval).
     * @return number of new violations found by this audit.
     */
    std::size_t auditNow(std::int64_t cycle);

    /** Total violations across all audits (recorded or not). */
    std::uint64_t violationCount() const { return violationCount_; }

    /** Audits executed so far. */
    std::uint64_t auditsRun() const { return auditsRun_; }

    bool clean() const { return violationCount_ == 0; }

    /** Retained violations, oldest first (capped at maxRecorded). */
    const std::vector<Violation>& violations() const
    {
        return violations_;
    }

  private:
    void checkFlitConservation(std::int64_t cycle);
    void checkCreditConservation(std::int64_t cycle);
    void checkVcLegality(std::int64_t cycle);
    void checkEscapeLegality(std::int64_t cycle);

    void report(const std::string& check, int node, std::string detail,
                std::int64_t cycle);

    const Network* net_;
    Params params_;
    std::int64_t nextDue_ = 0;
    std::uint64_t auditsRun_ = 0;
    std::uint64_t violationCount_ = 0;
    std::vector<Violation> violations_;
};

} // namespace footprint

#endif // FOOTPRINT_OBS_AUDITOR_HPP
