/**
 * @file
 * Streaming time-series flight recorder (DESIGN.md §15): every
 * timeseries_interval cycles the recorder closes a window capturing
 * offered/accepted throughput, windowed latency percentiles (per-window
 * mergeable HdrHistogram), in-flight flits, active-node count, the
 * per-regime VC-allocation grant counts that make Footprint's
 * Algorithm-1 regime transitions visible over time, and watchdog stall
 * pressure — and appends it as one self-contained JSONL record to a
 * schema-versioned footprint.timeseries/1 stream. Append-per-window
 * with an immediate flush means a multi-hour run can be watched with
 * `tail -f` and a crashed run leaves every closed window intact.
 *
 * On top of the window stream sit two consumers:
 *  - SteadyStateDetector: an online windowed-mean convergence test
 *    (relative half-width of the trailing K window means of latency
 *    and accepted throughput, MSER-style) that records the first cycle
 *    at which the run is statistically steady — so a measurement
 *    window that started before convergence is flagged instead of
 *    silently biasing results, and warmup=auto can end warmup exactly
 *    at convergence;
 *  - saturation-onset extraction: the first window where accepted
 *    throughput falls below offered while the in-flight backlog keeps
 *    growing — the temporal signature of tree-saturation onset
 *    (paper Fig. 2) — sustained for two consecutive windows.
 *
 * Determinism contract: the recorder is driven from the serial driver
 * loop (TrafficManager) and consumes only step-mode-invariant inputs
 * (packet events from the serial collect loop, counter deltas and
 * gauge reads at window boundaries), so its window records — and hence
 * every detector decision, including the warmup=auto end cycle — are
 * bit-identical across full/activity/sharded stepping for any thread
 * count. Disabled, it costs the driver one null check per cycle.
 */

#ifndef FOOTPRINT_OBS_TIMESERIES_HPP
#define FOOTPRINT_OBS_TIMESERIES_HPP

#include <array>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/hdr_histogram.hpp"

namespace footprint {

class Network;
class SimConfig;
class Watchdog;
struct RunMetadata;

/** Number of Priority regimes a VC-allocation grant can fall into. */
inline constexpr int kNumVaRegimes = 5;

/** JSON field names of the VA regimes, indexed by Priority value. */
const char* vaRegimeName(int priority);

/** Flight-recorder parameters (timeseries_* / steady_* config keys). */
struct TimeseriesConfig
{
    /** Stream windows to outPath as footprint.timeseries/1 JSONL. */
    bool enabled = false;
    std::string outPath = "timeseries.jsonl";
    /** Cycles per window. */
    std::int64_t interval = 1000;

    // Steady-state detector (active whenever the recorder runs).
    /** Trailing windows whose means must agree for convergence. */
    int steadyWindows = 8;
    /** Maximum relative half-width of the trailing means. */
    double steadyTolerance = 0.02;

    /** warmup=auto: extend warmup until the detector converges. */
    bool warmupAuto = false;
    /** Hard cap on auto-extended warmup (warmup_max_cycles). */
    std::int64_t warmupMax = 50000;

    /** Read the timeseries / steady / warmup keys of @p cfg. */
    static TimeseriesConfig fromSim(const SimConfig& cfg);

    /** True when a FlightRecorder must run (stream or auto warmup). */
    bool active() const { return enabled || warmupAuto; }
};

/** One closed aggregation window of the flight recorder. */
struct WindowRecord
{
    std::int64_t index = 0;
    std::int64_t startCycle = 0;
    std::int64_t endCycle = 0;  ///< exclusive

    /** Flits entering source queues during the window (offered). */
    std::uint64_t offeredFlits = 0;
    /** Flits drained from ejection sinks during the window. */
    std::uint64_t acceptedFlits = 0;
    /** Packets fully ejected during the window. */
    std::uint64_t packetsEjected = 0;

    // Windowed latency distribution of packets ejected in the window
    // (midpoint-of-bucket quantiles from the per-window HdrHistogram).
    std::uint64_t latencyCount = 0;
    double latencyMean = 0.0;
    double latencyP50 = 0.0;
    double latencyP99 = 0.0;
    double latencyP999 = 0.0;
    std::uint64_t latencyMax = 0;

    /** Flits anywhere in the system at window close. */
    std::int64_t flitsInFlight = 0;
    /** Nodes whose router or endpoint has pending work at close. */
    int activeNodes = 0;

    /** VC-allocation grants per priority regime during the window. */
    std::array<std::uint64_t, kNumVaRegimes> vaGrants{};
    /** VC-allocation blocking events during the window. */
    std::uint64_t vaFails = 0;

    /** Watchdog detections (stalls + livelock suspects) in window. */
    std::uint64_t watchdogEvents = 0;

    bool operator==(const WindowRecord&) const = default;

    /** Offered flits/node/cycle over the window. */
    double offeredRate(int nodes) const;
    /** Accepted flits/node/cycle over the window. */
    double acceptedRate(int nodes) const;
};

/**
 * Online steady-state detector: feeds on closed windows and reports
 * the first cycle at which the trailing steadyWindows window means of
 * both latency and accepted throughput have relative half-width
 * (max-min)/(2*mean) within steadyTolerance. Pure integer/double
 * arithmetic over deterministic inputs — the detected cycle is part of
 * the determinism contract.
 */
class SteadyStateDetector
{
  public:
    SteadyStateDetector(int windows, double tolerance);

    /** Observe one closed window. */
    void addWindow(const WindowRecord& w, int nodes);

    bool converged() const { return steadyCycle_ >= 0; }

    /** End cycle of the first converged window; -1 until converged. */
    std::int64_t steadyCycle() const { return steadyCycle_; }

    /** Relative half-width of the trailing latency means (debug). */
    double lastLatencySpread() const { return lastLatencySpread_; }

  private:
    static double relativeHalfWidth(const std::vector<double>& ring,
                                    std::size_t filled);

    int windows_;
    double tolerance_;
    std::vector<double> latencyMeans_;   ///< ring of trailing means
    std::vector<double> acceptedRates_;  ///< ring of trailing rates
    std::size_t next_ = 0;
    std::size_t filled_ = 0;
    std::int64_t steadyCycle_ = -1;
    double lastLatencySpread_ = 0.0;
};

/**
 * The flight recorder proper. Construct against a Network (must
 * outlive it), feed per-cycle events from the serial driver loop, and
 * call tick() after every Network::step; windows close themselves on
 * their interval boundary and stream out immediately.
 */
class FlightRecorder
{
  public:
    /**
     * @param net  network to observe.
     * @param cfg  recorder parameters; cfg.active() should be true.
     * @param meta optional run metadata stamped onto the stream
     *        header (copied); pass nullptr for headerless tests.
     */
    FlightRecorder(const Network& net, const TimeseriesConfig& cfg,
                   const RunMetadata* meta);

    const TimeseriesConfig& config() const { return cfg_; }

    /** Observe the watchdog (may be null) for stall-pressure counts. */
    void setWatchdog(const Watchdog* watchdog)
    {
        watchdog_ = watchdog;
    }

    /** A packet of @p flits flits entered a source queue. */
    void onOffered(int flits)
    {
        offeredFlits_ += static_cast<std::uint64_t>(flits);
    }

    /** A packet fully ejected with the given latency. */
    void
    onEjected(std::int64_t latency)
    {
        ++packetsEjected_;
        windowHist_.add(latency < 0
                            ? std::uint64_t{0}
                            : static_cast<std::uint64_t>(latency));
    }

    /**
     * The driver reset the network's event counters (measurement
     * start): re-baseline the per-window counter deltas.
     */
    void onCountersReset();

    /**
     * Per-cycle hook; call after Network::step for cycle @p cycle.
     * Jump-aware: @p cycle may be arbitrarily far past the last tick
     * (skip-ahead over a quiescent span). Every elapsed window
     * boundary closes in order at its exact boundary cycle — skipped
     * spans contribute empty windows (zero offered/accepted, counter
     * deltas of zero, gauges of the frozen state), byte-identical to
     * ticking through the span cycle by cycle.
     */
    void
    tick(std::int64_t cycle)
    {
        while (cycle + 1 - windowStart_ >= cfg_.interval)
            closeWindow(windowStart_ + cfg_.interval);
    }

    /** First cycle at which tick() would close a window. */
    std::int64_t
    nextWindowBoundary() const
    {
        return windowStart_ + cfg_.interval - 1;
    }

    /** Close any partial trailing window and flush the stream. */
    void finish(std::int64_t cycle);

    const std::vector<WindowRecord>& windows() const
    {
        return windows_;
    }

    const SteadyStateDetector& detector() const { return detector_; }

    /** End cycle of first steady window; -1 if never converged. */
    std::int64_t steadyCycle() const { return detector_.steadyCycle(); }

    /**
     * Start cycle of the first of >=2 consecutive windows where
     * accepted throughput lags offered while the in-flight backlog
     * grows; -1 when the run never showed saturation onset.
     */
    std::int64_t saturationOnsetCycle() const;

    /**
     * All per-window latency histograms merged (same totals as one
     * run-wide histogram — the mergeability property tests pin down).
     */
    const HdrHistogram& mergedLatencyHist() const
    {
        return mergedHist_;
    }

    /** The stream header line (schema + meta + geometry). */
    std::string headerJson() const;

    /** One window as its JSONL record (no trailing newline). */
    std::string windowJson(const WindowRecord& w) const;

  private:
    void closeWindow(std::int64_t end_cycle);

    const Network& net_;
    TimeseriesConfig cfg_;
    const Watchdog* watchdog_ = nullptr;
    int nodes_ = 0;
    int width_ = 0;
    int height_ = 0;

    std::int64_t windowStart_ = 0;
    std::int64_t windowIndex_ = 0;

    // In-window accumulators.
    std::uint64_t offeredFlits_ = 0;
    std::uint64_t packetsEjected_ = 0;
    HdrHistogram windowHist_;
    HdrHistogram mergedHist_;

    // Baselines for exact end-of-window deltas.
    std::uint64_t ejectedBase_ = 0;
    std::array<std::uint64_t, kNumVaRegimes> vaGrantBase_{};
    std::uint64_t vaFailBase_ = 0;
    std::uint64_t watchdogBase_ = 0;

    SteadyStateDetector detector_;
    std::vector<WindowRecord> windows_;

    std::string headerCache_;  ///< emitted stream header line
    std::unique_ptr<std::ofstream> stream_;  ///< null when not streaming
};

} // namespace footprint

#endif // FOOTPRINT_OBS_TIMESERIES_HPP
