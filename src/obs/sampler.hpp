/**
 * @file
 * Periodic probe sampler: named, typed telemetry channels polled every
 * N cycles, emitted to structured sinks and optionally retained in
 * memory for programmatic consumption (benches, tests).
 */

#ifndef FOOTPRINT_OBS_SAMPLER_HPP
#define FOOTPRINT_OBS_SAMPLER_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/sink.hpp"

namespace footprint {

/**
 * How a channel's probe readings are turned into sampled values.
 *
 * - Gauge: the probe's instantaneous value is emitted as-is
 *   (occupancy, queue depth).
 * - Counter: the emitted value is the increase since the previous
 *   sample; a probe reading below the previous one is treated as a
 *   counter reset and emitted as the raw reading (the measurement
 *   window reset of TrafficManager does this once at warmup end).
 * - Rate: the Counter delta divided by the cycles elapsed since the
 *   previous sample (utilisation in events/cycle); the first sample
 *   of a Rate channel is 0.
 */
enum class ChannelKind { Gauge, Counter, Rate };

/** One retained sample of a channel (in-memory mode). */
struct Sample
{
    std::int64_t cycle;
    double value;
};

/**
 * The probe registry and sampling engine behind TelemetryHub.
 *
 * Channels are registered up front (registration after the first
 * sample is rejected); sample() polls every probe, applies the
 * channel-kind transform, and forwards one row to every sink.
 */
class Sampler
{
  public:
    /**
     * Register a channel. @return its index.
     * @param name column/series name (must be unique).
     * @param kind value transform, see ChannelKind.
     * @param probe called at each sample; must stay valid for the
     *        sampler's lifetime.
     */
    std::size_t addChannel(const std::string& name, ChannelKind kind,
                           std::function<double()> probe);

    /** Attach a sink; rows are written to every attached sink. */
    void addSink(std::unique_ptr<TimeSeriesSink> sink);

    /** Stamp run metadata onto every sink (before the first sample). */
    void writeMeta(const RunMetadata& meta);

    /** Retain all samples in memory (series() access). */
    void setKeepInMemory(bool keep) { keepInMemory_ = keep; }

    /** Poll every probe and emit one row tagged with @p phase. */
    void sample(std::int64_t cycle, const std::string& phase);

    void flush();

    std::size_t numChannels() const { return channels_.size(); }
    std::uint64_t samplesTaken() const { return samplesTaken_; }
    std::int64_t lastSampleCycle() const { return lastSampleCycle_; }

    std::vector<std::string> channelNames() const;

    /** Retained series of @p name; empty if unknown or not retained. */
    const std::vector<Sample>& series(const std::string& name) const;

  private:
    struct Channel
    {
        std::string name;
        ChannelKind kind;
        std::function<double()> probe;
        double prevRaw = 0.0;
        bool hasPrev = false;
        std::vector<Sample> retained;
    };

    Channel* find(const std::string& name);

    std::vector<Channel> channels_;
    std::vector<std::unique_ptr<TimeSeriesSink>> sinks_;
    std::vector<double> row_;  ///< scratch, avoids per-sample alloc
    bool keepInMemory_ = false;
    bool headerWritten_ = false;
    std::uint64_t samplesTaken_ = 0;
    std::int64_t lastSampleCycle_ = -1;
};

} // namespace footprint

#endif // FOOTPRINT_OBS_SAMPLER_HPP
