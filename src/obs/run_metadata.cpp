#include "obs/run_metadata.hpp"

#include <cstdio>
#include <thread>

#include "obs/sink.hpp"
#include "sim/config.hpp"

#ifndef FP_GIT_DESCRIBE
#define FP_GIT_DESCRIBE "unknown"
#endif

#ifndef FP_BUILD_TYPE
#define FP_BUILD_TYPE "unknown"
#endif

namespace footprint {

std::string
fnv1aHex(const std::string& s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

RunMetadata
RunMetadata::fromConfig(const SimConfig& cfg)
{
    RunMetadata meta;
    if (cfg.contains("seed"))
        meta.seed = static_cast<std::uint64_t>(cfg.getInt("seed"));
    meta.configHash = fnv1aHex(cfg.toString());
    meta.gitDescribe = buildVersion();
    meta.buildType = compiledBuildType();
    meta.numCpus =
        static_cast<int>(std::thread::hardware_concurrency());
    return meta;
}

std::string
RunMetadata::buildVersion()
{
    return FP_GIT_DESCRIBE;
}

std::string
RunMetadata::compiledBuildType()
{
    const char* t = FP_BUILD_TYPE;
    return *t != '\0' ? t : "unknown";
}

std::string
RunMetadata::toJson() const
{
    return "{\"seed\":" + std::to_string(seed) + ",\"config_hash\":\""
        + jsonEscape(configHash) + "\",\"git\":\""
        + jsonEscape(gitDescribe) + "\",\"build_type\":\""
        + jsonEscape(buildType) + "\",\"num_cpus\":"
        + std::to_string(numCpus) + ",\"start_cycle\":"
        + std::to_string(startCycle) + "}";
}

std::string
RunMetadata::toKeyValue() const
{
    return "seed=" + std::to_string(seed) + " config_hash="
        + configHash + " git=" + gitDescribe + " start_cycle="
        + std::to_string(startCycle);
}

} // namespace footprint
