#include "obs/console.hpp"

#include <cstdio>

#ifdef _WIN32
#include <io.h>
#define FP_ISATTY _isatty
#define FP_FILENO _fileno
#else
#include <unistd.h>
#define FP_ISATTY isatty
#define FP_FILENO fileno
#endif

#include "obs/timeseries.hpp"

namespace footprint {

RunConsole::RunConsole(int interval_ms)
    : interval_(interval_ms < 10 ? 10 : interval_ms),
      start_(Clock::now()),
      lastDraw_(start_ - interval_),  // first update draws immediately
      lastCycleAt_(start_),
      tty_(FP_ISATTY(FP_FILENO(stderr)) != 0)
{
}

RunConsole::~RunConsole()
{
    close();
}

bool
RunConsole::shouldDraw(Clock::time_point now)
{
    if (now - lastDraw_ < interval_)
        return false;
    lastDraw_ = now;
    return true;
}

void
RunConsole::draw(const std::string& line)
{
    if (tty_) {
        std::fprintf(stderr, "\r\033[K%s", line.c_str());
        drewInPlace_ = true;
    } else {
        std::fprintf(stderr, "%s\n", line.c_str());
    }
    std::fflush(stderr);
}

void
RunConsole::updateRun(std::int64_t cycle, std::int64_t total_cycles,
                      const char* phase,
                      const WindowRecord* last_window, int nodes)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_)
        return;
    const Clock::time_point now = Clock::now();
    if (!shouldDraw(now))
        return;

    // Cycles/sec over the interval since the previous redraw; the
    // redraw cadence is long enough (>=10ms) for a stable estimate.
    const double dt = std::chrono::duration<double>(now - lastCycleAt_)
                          .count();
    const double cps = dt > 0.0
        ? static_cast<double>(cycle - lastCycle_) / dt
        : 0.0;
    lastCycle_ = cycle;
    lastCycleAt_ = now;

    char buf[256];
    int n = std::snprintf(
        buf, sizeof(buf), "[%s] cycle %lld/%lld (%.0f%%) %.0f cyc/s",
        phase, static_cast<long long>(cycle),
        static_cast<long long>(total_cycles),
        total_cycles > 0
            ? 100.0 * static_cast<double>(cycle)
                / static_cast<double>(total_cycles)
            : 0.0,
        cps);
    if (cps > 0.0 && total_cycles > cycle) {
        const double eta =
            static_cast<double>(total_cycles - cycle) / cps;
        n += std::snprintf(buf + n,
                           sizeof(buf) - static_cast<std::size_t>(n),
                           " eta %.0fs", eta);
    }
    if (last_window && n > 0
        && static_cast<std::size_t>(n) < sizeof(buf)) {
        std::snprintf(buf + n,
                      sizeof(buf) - static_cast<std::size_t>(n),
                      " | acc %.3f f/n/c p99 %.0f infl %lld",
                      last_window->acceptedRate(nodes),
                      last_window->latencyP99,
                      static_cast<long long>(last_window->flitsInFlight));
    }
    draw(buf);
}

void
RunConsole::updateSweep(int done, int total)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_)
        return;
    const Clock::time_point now = Clock::now();
    // Always draw the final job so the bar ends at 100%.
    if (done < total && !shouldDraw(now))
        return;
    lastDraw_ = now;

    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
    char buf[192];
    int n = std::snprintf(buf, sizeof(buf),
                          "[sweep] %d/%d jobs (%.0f%%) %.2f jobs/s",
                          done, total,
                          total > 0
                              ? 100.0 * static_cast<double>(done)
                                  / static_cast<double>(total)
                              : 0.0,
                          rate);
    if (rate > 0.0 && done < total && n > 0
        && static_cast<std::size_t>(n) < sizeof(buf)) {
        std::snprintf(buf + n,
                      sizeof(buf) - static_cast<std::size_t>(n),
                      " eta %.0fs",
                      static_cast<double>(total - done) / rate);
    }
    draw(buf);
}

void
RunConsole::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_)
        return;
    closed_ = true;
    if (drewInPlace_) {
        std::fputc('\n', stderr);
        std::fflush(stderr);
    }
}

} // namespace footprint
