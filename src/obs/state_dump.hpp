/**
 * @file
 * Forensic state dumps: serialize the complete microarchitectural
 * state of a Network — every router's input-VC stages and buffers,
 * output-VC credit/busy/owner registers, output FIFOs, endpoint
 * source/sink state, and in-flight channel payloads — to a single
 * JSON document (schema "footprint.state_dump/1").
 *
 * Dumps are written when something went wrong: an invariant violation,
 * a watchdog firing, a hard cycle-limit abort, or SIGINT. The document
 * carries the trigger reason, any recorded violations, the watchdog's
 * stall classification, and the run metadata needed to reproduce the
 * run (seed, config hash, build).
 */

#ifndef FOOTPRINT_OBS_STATE_DUMP_HPP
#define FOOTPRINT_OBS_STATE_DUMP_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/auditor.hpp"
#include "obs/watchdog.hpp"

namespace footprint {

class Network;
struct RunMetadata;

/** Everything a dump records beyond the network itself. */
struct StateDumpContext
{
    std::int64_t cycle = 0;
    std::string reason;  ///< "invariant_violation", "watchdog", ...
    const RunMetadata* meta = nullptr;
    const std::vector<InvariantAuditor::Violation>* violations =
        nullptr;
    const Watchdog::Report* stall = nullptr;
    const std::vector<Watchdog::Event>* events = nullptr;
};

/** Serialize the forensic state of @p net as JSON onto @p os. */
void writeStateDump(std::ostream& os, const Network& net,
                    const StateDumpContext& ctx);

/**
 * Dump to @p path. @return true on success; failures are warned, not
 * fatal — a dump must never take down the abort path that invoked it.
 */
bool dumpStateToFile(const std::string& path, const Network& net,
                     const StateDumpContext& ctx);

} // namespace footprint

#endif // FOOTPRINT_OBS_STATE_DUMP_HPP
