/**
 * @file
 * Run metadata stamped onto every exported artifact (CSV/JSONL time
 * series, packet traces, chrome trace timelines, state dumps) so each
 * file is self-describing: which code, which configuration, and which
 * seed produced it.
 */

#ifndef FOOTPRINT_OBS_RUN_METADATA_HPP
#define FOOTPRINT_OBS_RUN_METADATA_HPP

#include <cstdint>
#include <string>

namespace footprint {

class SimConfig;

/**
 * Identity of one simulation run. configHash is a 64-bit FNV-1a over
 * the full rendered configuration, so two artifacts with equal hashes
 * came from identical parameter sets; gitDescribe is injected at build
 * time (FP_GIT_DESCRIBE) and pins the code version.
 */
struct RunMetadata
{
    std::uint64_t seed = 0;
    std::string configHash;
    std::string gitDescribe;
    std::string buildType;  ///< CMAKE_BUILD_TYPE the library compiled as
    int numCpus = 0;        ///< hardware threads visible at run time
    std::int64_t startCycle = 0;

    /** Derive metadata from @p cfg (seed + hash of all keys). */
    static RunMetadata fromConfig(const SimConfig& cfg);

    /** The build's git describe string ("unknown" outside git). */
    static std::string buildVersion();

    /** CMAKE_BUILD_TYPE baked at compile time ("unknown" if unset). */
    static std::string compiledBuildType();

    /**
     * {"seed":S,"config_hash":"H","git":"G","build_type":"B",
     *  "num_cpus":N,"start_cycle":C}. Perf gates read build_type /
     * num_cpus to flag numbers measured on a debug build or an
     * unexpected machine shape.
     */
    std::string toJson() const;

    /** "seed=S config_hash=H git=G start_cycle=C" (CSV comments). */
    std::string toKeyValue() const;
};

/** FNV-1a 64-bit hash of @p s, rendered as 16 hex digits. */
std::string fnv1aHex(const std::string& s);

} // namespace footprint

#endif // FOOTPRINT_OBS_RUN_METADATA_HPP
