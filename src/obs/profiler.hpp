/**
 * @file
 * Simulator self-profiler: attributes wall-clock time to the phases of
 * a simulation cycle (inject / drain / compute / transmit / epilogue /
 * collect) and, under sharded stepping, to individual shards and
 * barrier waits, so performance work starts from measurements instead
 * of guesses.
 *
 * Threading contract (mirrors the sharded-stepping determinism design,
 * DESIGN.md §13/§14): workers write only per-shard and per-chunk
 * accumulator slots they own during a cycle; the Network folds the
 * per-chunk barrier-wait scratch into the shared HDR histogram from
 * its *serial* end-of-step epilogue. Nothing the profiler does touches
 * simulation state, so checksums and sharded-vs-serial equality are
 * untouched — the profiled run is bit-identical to the unprofiled one.
 *
 * Overhead contract: a Network with no profiler attached pays one
 * never-taken branch per phase; TrafficManager pays one null check per
 * cycle section. The CI gate (check_telemetry_overhead.py --obs)
 * holds the disabled configuration within 2% of the bare cycle loop.
 */

#ifndef FOOTPRINT_OBS_PROFILER_HPP
#define FOOTPRINT_OBS_PROFILER_HPP

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/hdr_histogram.hpp"

namespace footprint {

struct RunMetadata;

/** Wall-time attribution buckets of one simulation cycle. */
enum class ProfPhase : int {
    Inject = 0,   ///< traffic generation (TrafficManager)
    Drain,        ///< active-list drain + receive phase
    Compute,      ///< routing + VA + SA + crossbar traversal
    Transmit,     ///< output FIFOs into links + status publish
    Epilogue,     ///< reschedule, descriptor flush/refill, scratch merge
    Collect,      ///< ejected-packet collection (TrafficManager)
    Skip,         ///< horizon computation + clock jumps (skip-ahead)
    Link,         ///< batched fabric-lane passes (arrival min, sent sums)
    Count,
};

const char* profPhaseName(ProfPhase p);

class Profiler
{
  public:
    /** A disabled profiler never records; attach points skip it. */
    explicit Profiler(bool enabled = true) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }

    /** Monotonic nanosecond clock used by every scope. */
    static std::uint64_t
    nowNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /** Mark the start of the profiled run (wall-clock anchor). */
    void beginRun() { runStartNs_ = nowNs(); }

    /** Close the run after @p cycles simulated cycles. */
    void
    endRun(std::int64_t cycles)
    {
        runNs_ = nowNs() - runStartNs_;
        cycles_ = cycles;
    }

    void
    addPhaseNs(ProfPhase p, std::uint64_t ns)
    {
        phaseNs_[static_cast<std::size_t>(p)] += ns;
        ++phaseCalls_[static_cast<std::size_t>(p)];
    }

    // --- Sharded-stepping instrumentation. ---

    /**
     * Size the per-shard and per-chunk accumulators. Called by
     * Network::attachProfiler when step_mode=sharded; @p chunks is the
     * worker-crew size (each chunk of shards runs on one thread).
     */
    void configureSharded(int shards, int chunks, int threads);

    bool sharded() const { return !shardBusyNs_.empty(); }
    int shardCount() const
    {
        return static_cast<int>(shardBusyNs_.size());
    }

    /**
     * Add @p ns of phase-body work to @p shard. Race-free without
     * atomics: a shard is stepped by exactly one worker per cycle.
     */
    void
    addShardBusyNs(int shard, std::uint64_t ns)
    {
        shardBusyNs_[static_cast<std::size_t>(shard)] += ns;
    }

    /**
     * Record one barrier wait of worker chunk @p chunk into its
     * private scratch slot; folded into the shared histogram by
     * mergeCycleScratch() from the serial epilogue.
     */
    void
    recordBarrierWaitNs(int chunk, std::uint64_t ns)
    {
        ChunkScratch& s = scratch_[static_cast<std::size_t>(chunk)];
        if (s.count < kMaxWaitsPerCycle)
            s.waitNs[s.count++] = ns;
    }

    /**
     * Serial end-of-step merge: fold every chunk's barrier-wait
     * scratch into the shared HDR histogram and per-chunk totals.
     * Must only be called while no worker is inside a phase.
     */
    void mergeCycleScratch();

    // --- Report accessors (tests, benches). ---

    double
    phaseSeconds(ProfPhase p) const
    {
        return static_cast<double>(
                   phaseNs_[static_cast<std::size_t>(p)])
            * 1e-9;
    }
    std::uint64_t
    phaseCalls(ProfPhase p) const
    {
        return phaseCalls_[static_cast<std::size_t>(p)];
    }
    double
    shardBusySeconds(int shard) const
    {
        return static_cast<double>(
                   shardBusyNs_[static_cast<std::size_t>(shard)])
            * 1e-9;
    }
    const HdrHistogram& barrierWaits() const { return barrierHist_; }
    double runSeconds() const
    {
        return static_cast<double>(runNs_) * 1e-9;
    }
    std::int64_t cycles() const { return cycles_; }

    /** max(shard busy) / mean(shard busy); 1.0 is perfectly balanced. */
    double imbalanceRatio() const;

    /**
     * One footprint.profile/1 row: phase table, sharded block (when
     * sharded) with per-shard busy seconds, imbalance ratio, and
     * barrier-wait percentiles.
     */
    std::string toJsonRow(const std::string& name,
                          const std::string& mode, int threads) const;

  private:
    // 3 phase barriers per cycle per chunk, with headroom.
    static constexpr int kMaxWaitsPerCycle = 8;

    struct ChunkScratch
    {
        std::array<std::uint64_t, kMaxWaitsPerCycle> waitNs{};
        int count = 0;
    };

    bool enabled_;
    std::array<std::uint64_t,
               static_cast<std::size_t>(ProfPhase::Count)>
        phaseNs_{};
    std::array<std::uint64_t,
               static_cast<std::size_t>(ProfPhase::Count)>
        phaseCalls_{};
    std::vector<std::uint64_t> shardBusyNs_;
    std::vector<std::uint64_t> chunkWaitNs_;
    std::vector<ChunkScratch> scratch_;
    HdrHistogram barrierHist_{1ULL << 34};  ///< up to ~17 s waits
    int threads_ = 1;
    std::uint64_t runStartNs_ = 0;
    std::uint64_t runNs_ = 0;
    std::int64_t cycles_ = 0;
};

/**
 * RAII phase scope: records the elapsed wall time of its lifetime into
 * @p profiler, or nothing at all when @p profiler is null (one branch).
 */
class ProfileScope
{
  public:
    ProfileScope(Profiler* profiler, ProfPhase phase)
        : profiler_(profiler), phase_(phase),
          t0_(profiler ? Profiler::nowNs() : 0)
    {
    }

    ~ProfileScope()
    {
        if (profiler_)
            profiler_->addPhaseNs(phase_, Profiler::nowNs() - t0_);
    }

    ProfileScope(const ProfileScope&) = delete;
    ProfileScope& operator=(const ProfileScope&) = delete;

  private:
    Profiler* profiler_;
    ProfPhase phase_;
    std::uint64_t t0_;
};

/**
 * Wrap @p rows (each a toJsonRow string) into a schema-versioned
 * footprint.profile/1 document with an optional metadata header.
 */
std::string profileDocument(const RunMetadata* meta,
                            const std::vector<std::string>& rows);

/** Write profileDocument to @p path; false on I/O failure. */
bool writeProfileDocument(const std::string& path,
                          const RunMetadata* meta,
                          const std::vector<std::string>& rows);

} // namespace footprint

#endif // FOOTPRINT_OBS_PROFILER_HPP
