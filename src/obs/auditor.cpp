#include "obs/auditor.hpp"

#include <sstream>

#include "network/network.hpp"
#include "routing/routing.hpp"

namespace footprint {

namespace {

/** Count in-flight payloads on @p pipe destined for VC @p vc. */
template <typename PipeT>
int
inFlightForVc(const PipeT& pipe, int vc)
{
    int count = 0;
    pipe.forEachInFlight([&](const auto& item) {
        if (item.vc == vc)
            ++count;
    });
    return count;
}

const char*
linkKindName(Network::LinkRecord::Kind kind)
{
    switch (kind) {
    case Network::LinkRecord::Kind::RouterToRouter: return "link";
    case Network::LinkRecord::Kind::RouterToEndpoint: return "eject";
    case Network::LinkRecord::Kind::EndpointToRouter: return "inject";
    }
    return "?";
}

} // namespace

std::string
InvariantAuditor::Violation::toString() const
{
    std::ostringstream os;
    os << "[cycle " << cycle << "] " << check;
    if (node >= 0)
        os << " @ node " << node;
    os << ": " << detail;
    return os.str();
}

InvariantAuditor::InvariantAuditor(const Network& net,
                                   const Params& params)
    : net_(&net), params_(params)
{}

std::size_t
InvariantAuditor::auditNow(std::int64_t cycle)
{
    nextDue_ = cycle + (params_.interval > 0 ? params_.interval : 1);
    const std::uint64_t before = violationCount_;
    ++auditsRun_;

    checkFlitConservation(cycle);
    checkCreditConservation(cycle);
    checkVcLegality(cycle);
    checkEscapeLegality(cycle);

    return static_cast<std::size_t>(violationCount_ - before);
}

void
InvariantAuditor::report(const std::string& check, int node,
                         std::string detail, std::int64_t cycle)
{
    ++violationCount_;
    if (violations_.size() < params_.maxRecorded) {
        violations_.push_back(
            Violation{check, node, std::move(detail), cycle});
    }
}

void
InvariantAuditor::checkFlitConservation(std::int64_t cycle)
{
    const auto injected =
        static_cast<std::int64_t>(net_->totalFlitsInjected());
    const auto ejected =
        static_cast<std::int64_t>(net_->totalFlitsEjected());
    const std::int64_t resident = net_->totalFlitsInFlight();
    if (injected - ejected == resident)
        return;
    std::ostringstream os;
    os << "injected " << injected << " - ejected " << ejected << " = "
       << injected - ejected << " but " << resident
       << " flits are resident in the network";
    report("flit_conservation", -1, os.str(), cycle);
}

void
InvariantAuditor::checkCreditConservation(std::int64_t cycle)
{
    using Kind = Network::LinkRecord::Kind;
    const int num_vcs = net_->routerParams().numVcs;
    const int buf_size = net_->routerParams().vcBufSize;

    for (const Network::LinkRecord& link : net_->links()) {
        for (int vc = 0; vc < num_vcs; ++vc) {
            // Upstream view: credits held plus flits already switched
            // into the output FIFO (credits are consumed at switch
            // traversal, before the flit reaches the wire).
            int upstream = 0;
            switch (link.kind) {
            case Kind::RouterToRouter:
            case Kind::RouterToEndpoint:
                upstream = net_->router(link.srcNode)
                               .outVcCredits(link.srcPort, vc)
                    + net_->router(link.srcNode)
                          .outputFifoFlitsForVc(link.srcPort, vc);
                break;
            case Kind::EndpointToRouter:
                upstream =
                    net_->endpoint(link.srcNode).injectVcCredits(vc);
                break;
            }

            int downstream = 0;
            switch (link.kind) {
            case Kind::RouterToRouter:
            case Kind::EndpointToRouter:
                downstream = net_->router(link.dstNode)
                                 .inputOccupancy(link.dstPort, vc);
                break;
            case Kind::RouterToEndpoint:
                downstream =
                    net_->endpoint(link.dstNode).sinkVcOccupancy(vc);
                break;
            }

            const int flits_wire = inFlightForVc(*link.flit, vc);
            const int credits_wire = inFlightForVc(*link.credit, vc);
            const int total =
                upstream + flits_wire + downstream + credits_wire;
            if (total == buf_size)
                continue;

            std::ostringstream os;
            os << linkKindName(link.kind) << ' ' << link.srcNode << ':'
               << link.srcPort << " -> " << link.dstNode << ':'
               << link.dstPort << " vc " << vc << ": credits+fifo "
               << upstream << " + flits-in-flight " << flits_wire
               << " + downstream occ " << downstream
               << " + credits-in-flight " << credits_wire << " = "
               << total << ", expected " << buf_size;
            report("credit_conservation", link.srcNode, os.str(),
                   cycle);
        }
    }
}

void
InvariantAuditor::checkVcLegality(std::int64_t cycle)
{
    const int num_vcs = net_->routerParams().numVcs;
    const int buf_size = net_->routerParams().vcBufSize;
    const bool atomic = net_->routing().atomicVcAlloc();
    const int n = net_->mesh().numNodes();

    std::vector<int> active_count(
        static_cast<std::size_t>(kNumPorts * num_vcs));

    for (int node = 0; node < n; ++node) {
        const Router& r = net_->router(node);
        active_count.assign(active_count.size(), 0);

        for (int port = 0; port < kNumPorts; ++port) {
            for (int vc = 0; vc < num_vcs; ++vc) {
                const InputVc& ivc = r.inputVc(port, vc);
                std::ostringstream where;
                where << "input (" << port << ", " << vc << ") ["
                      << inputVcStateName(ivc.state) << ']';

                if (ivc.state != InputVc::State::Active) {
                    // A packet not yet granted a route must expose its
                    // head flit first.
                    if (!ivc.empty() && !ivc.front().head) {
                        report("vc_legality", node,
                               where.str()
                                   + ": non-head flit at front",
                               cycle);
                    }
                } else {
                    if (ivc.outPort < 0 || ivc.outPort >= kNumPorts
                        || ivc.outVc < 0 || ivc.outVc >= num_vcs) {
                        std::ostringstream os;
                        os << where.str() << ": bad grant ("
                           << ivc.outPort << ", " << ivc.outVc << ')';
                        report("vc_legality", node, os.str(), cycle);
                    } else {
                        ++active_count[static_cast<std::size_t>(
                            ivc.outPort * num_vcs + ivc.outVc)];
                        if (!r.outVcBusy(ivc.outPort, ivc.outVc)) {
                            std::ostringstream os;
                            os << where.str()
                               << ": granted output VC ("
                               << ivc.outPort << ", " << ivc.outVc
                               << ") is not busy";
                            report("vc_legality", node, os.str(),
                                   cycle);
                        } else if (!ivc.empty()
                                   && r.outVcOwner(ivc.outPort,
                                                   ivc.outVc)
                                       != ivc.front().dest) {
                            std::ostringstream os;
                            os << where.str() << ": output VC ("
                               << ivc.outPort << ", " << ivc.outVc
                               << ") owner "
                               << r.outVcOwner(ivc.outPort, ivc.outVc)
                               << " != flit dest "
                               << ivc.front().dest;
                            report("vc_legality", node, os.str(),
                                   cycle);
                        }
                    }
                }

                if (atomic) {
                    // Atomic reallocation admits at most one packet
                    // per input buffer: one head flit, at the front.
                    int heads = 0;
                    bool mid_head = false;
                    bool first = true;
                    for (const Flit& f : ivc.buffer) {
                        if (f.head) {
                            ++heads;
                            mid_head = mid_head || !first;
                        }
                        first = false;
                    }
                    if (heads > 1 || mid_head) {
                        std::ostringstream os;
                        os << where.str() << ": " << heads
                           << " head flits (atomic reallocation)";
                        report("vc_legality", node, os.str(), cycle);
                    }
                }
            }
        }

        for (int port = 0; port < kNumPorts; ++port) {
            for (int vc = 0; vc < num_vcs; ++vc) {
                const int credits = r.outVcCredits(port, vc);
                if (credits < 0 || credits > buf_size) {
                    std::ostringstream os;
                    os << "output (" << port << ", " << vc
                       << "): credits " << credits
                       << " outside [0, " << buf_size << ']';
                    report("vc_legality", node, os.str(), cycle);
                }
                const int holders =
                    active_count[static_cast<std::size_t>(
                        port * num_vcs + vc)];
                const int expected = r.outVcBusy(port, vc) ? 1 : 0;
                if (holders != expected) {
                    std::ostringstream os;
                    os << "output (" << port << ", " << vc << "): "
                       << holders << " Active input VCs hold it, "
                       << "expected " << expected;
                    report("vc_legality", node, os.str(), cycle);
                }
            }
        }
    }
}

void
InvariantAuditor::checkEscapeLegality(std::int64_t cycle)
{
    if (net_->routing().numEscapeVcs() < 1)
        return;
    const Topology& topo = net_->topology();
    const int n = topo.numNodes();

    for (int node = 0; node < n; ++node) {
        const Router& r = net_->router(node);
        for (int port = 0; port < kNumPorts; ++port) {
            if (!r.outVcOccupied(port, 0))
                continue;
            const int dest = r.outVcOwner(port, 0);
            if (dest < 0)
                continue;
            const int expected = portOf(dorDir(topo, node, dest));
            if (port == expected)
                continue;
            std::ostringstream os;
            os << "escape VC 0 on port " << port << " owned by dest "
               << dest << ", but dimension order requires port "
               << expected;
            report("escape_legality", node, os.str(), cycle);
        }
    }
}

} // namespace footprint
