#include "obs/sink.hpp"

#include <cmath>
#include <cstdio>

#include "obs/run_metadata.hpp"
#include "sim/log.hpp"

namespace footprint {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatTelemetryValue(double v)
{
    if (std::isfinite(v) && v == std::floor(v)
        && std::abs(v) < 1e15) {
        return std::to_string(static_cast<long long>(v));
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

StreamSink::StreamSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(owned_.get())
{
    if (!*owned_)
        fatal("cannot open telemetry output file: " + path);
}

void
CsvSink::writeMeta(const RunMetadata& meta)
{
    os() << "# footprint.telemetry/1 " << meta.toKeyValue() << '\n';
}

void
JsonlSink::writeMeta(const RunMetadata& meta)
{
    os() << "{\"schema\":\"footprint.telemetry/1\",\"meta\":"
         << meta.toJson() << "}\n";
}

void
CsvSink::writeHeader(const std::vector<std::string>& columns)
{
    columns_ = columns;
    os() << "cycle,phase";
    for (const std::string& c : columns)
        os() << ',' << c;
    os() << '\n';
}

void
CsvSink::writeRow(std::int64_t cycle, const std::string& phase,
                  const std::vector<double>& values)
{
    FP_ASSERT(values.size() == columns_.size(),
              "telemetry row width mismatch");
    os() << cycle << ',' << phase;
    for (const double v : values)
        os() << ',' << formatTelemetryValue(v);
    os() << '\n';
}

void
JsonlSink::writeHeader(const std::vector<std::string>& columns)
{
    escaped_.clear();
    escaped_.reserve(columns.size());
    for (const std::string& c : columns)
        escaped_.push_back(jsonEscape(c));
}

void
JsonlSink::writeRow(std::int64_t cycle, const std::string& phase,
                    const std::vector<double>& values)
{
    FP_ASSERT(values.size() == escaped_.size(),
              "telemetry row width mismatch");
    os() << "{\"cycle\":" << cycle << ",\"phase\":\""
         << jsonEscape(phase) << "\",\"metrics\":{";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0)
            os() << ',';
        os() << '"' << escaped_[i]
             << "\":" << formatTelemetryValue(values[i]);
    }
    os() << "}}\n";
}

} // namespace footprint
