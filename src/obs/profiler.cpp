#include "obs/profiler.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/run_metadata.hpp"
#include "obs/sink.hpp"

namespace footprint {

const char*
profPhaseName(ProfPhase p)
{
    switch (p) {
    case ProfPhase::Inject:
        return "inject";
    case ProfPhase::Drain:
        return "drain";
    case ProfPhase::Compute:
        return "compute";
    case ProfPhase::Transmit:
        return "transmit";
    case ProfPhase::Epilogue:
        return "epilogue";
    case ProfPhase::Collect:
        return "collect";
    case ProfPhase::Skip:
        return "skip";
    case ProfPhase::Link:
        return "link";
    case ProfPhase::Count:
        break;
    }
    return "unknown";
}

void
Profiler::configureSharded(int shards, int chunks, int threads)
{
    shardBusyNs_.assign(static_cast<std::size_t>(shards), 0);
    chunkWaitNs_.assign(static_cast<std::size_t>(chunks), 0);
    scratch_.assign(static_cast<std::size_t>(chunks), ChunkScratch{});
    threads_ = threads;
}

void
Profiler::mergeCycleScratch()
{
    for (std::size_t c = 0; c < scratch_.size(); ++c) {
        ChunkScratch& s = scratch_[c];
        for (int i = 0; i < s.count; ++i) {
            barrierHist_.add(s.waitNs[i]);
            chunkWaitNs_[c] += s.waitNs[i];
        }
        s.count = 0;
    }
}

double
Profiler::imbalanceRatio() const
{
    if (shardBusyNs_.empty())
        return 0.0;
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
    for (const std::uint64_t ns : shardBusyNs_) {
        max = max < ns ? ns : max;
        sum += ns;
    }
    if (sum == 0)
        return 0.0;
    const double mean = static_cast<double>(sum)
        / static_cast<double>(shardBusyNs_.size());
    return static_cast<double>(max) / mean;
}

namespace {

void
appendF(std::string& out, const char* fmt, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    out += buf;
}

} // namespace

std::string
Profiler::toJsonRow(const std::string& name, const std::string& mode,
                    int threads) const
{
    std::uint64_t total_ns = 0;
    for (const std::uint64_t ns : phaseNs_)
        total_ns += ns;

    std::string out = "{\"name\":\"" + jsonEscape(name)
        + "\",\"mode\":\"" + jsonEscape(mode) + "\",\"threads\":"
        + std::to_string(threads) + ",\"cycles\":"
        + std::to_string(cycles_) + ",\"wall_seconds\":";
    appendF(out, "%.6f", runSeconds());
    out += ",\"cycles_per_sec\":";
    appendF(out, "%.1f",
            runNs_ > 0 ? static_cast<double>(cycles_)
                    / (static_cast<double>(runNs_) * 1e-9)
                       : 0.0);
    out += ",\"phases\":[";
    for (int p = 0; p < static_cast<int>(ProfPhase::Count); ++p) {
        if (p > 0)
            out += ',';
        const auto phase = static_cast<ProfPhase>(p);
        out += "{\"name\":\"";
        out += profPhaseName(phase);
        out += "\",\"seconds\":";
        appendF(out, "%.6f", phaseSeconds(phase));
        out += ",\"calls\":" + std::to_string(phaseCalls(phase))
            + ",\"share\":";
        appendF(out, "%.4f",
                total_ns > 0
                    ? static_cast<double>(
                          phaseNs_[static_cast<std::size_t>(p)])
                        / static_cast<double>(total_ns)
                    : 0.0);
        out += '}';
    }
    out += ']';

    if (sharded()) {
        out += ",\"sharded\":{\"shards\":"
            + std::to_string(shardBusyNs_.size()) + ",\"chunks\":"
            + std::to_string(chunkWaitNs_.size()) + ",\"threads\":"
            + std::to_string(threads_) + ",\"shard_busy_seconds\":[";
        for (std::size_t s = 0; s < shardBusyNs_.size(); ++s) {
            if (s > 0)
                out += ',';
            appendF(out, "%.6f",
                    shardBusySeconds(static_cast<int>(s)));
        }
        out += "],\"imbalance_ratio\":";
        appendF(out, "%.4f", imbalanceRatio());
        out += ",\"barrier_wait\":{\"count\":"
            + std::to_string(barrierHist_.count());
        out += ",\"p50_ns\":";
        appendF(out, "%.0f", barrierHist_.percentile(0.50));
        out += ",\"p99_ns\":";
        appendF(out, "%.0f", barrierHist_.percentile(0.99));
        out += ",\"p999_ns\":";
        appendF(out, "%.0f", barrierHist_.percentile(0.999));
        out += ",\"max_ns\":"
            + std::to_string(barrierHist_.max()) + "}}";
    } else {
        out += ",\"sharded\":null";
    }
    out += '}';
    return out;
}

std::string
profileDocument(const RunMetadata* meta,
                const std::vector<std::string>& rows)
{
    std::string out = "{\"schema\":\"footprint.profile/1\"";
    if (meta) {
        out += ",\"meta\":";
        out += meta->toJson();
    }
    out += ",\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i > 0)
            out += ',';
        out += rows[i];
    }
    out += "]}\n";
    return out;
}

bool
writeProfileDocument(const std::string& path, const RunMetadata* meta,
                     const std::vector<std::string>& rows)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << profileDocument(meta, rows);
    return static_cast<bool>(os);
}

} // namespace footprint
