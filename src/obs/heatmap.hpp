/**
 * @file
 * Spatial observatory: aggregates per-link utilization, per-router VC
 * occupancy, footprint size (occupied output VCs), escape-VC usage,
 * and injection backlog into windowed 2-D grids over the mesh — the
 * spatial footprint of congestion trees the paper regulates, resolved
 * in time so a congestion tree can be watched growing and draining.
 *
 * Collection cost model: link utilization is computed from flit-channel
 * sent-counter deltas at window boundaries only (exact and nearly
 * free); occupancy-style gauges are sampled every sampleInterval
 * cycles and averaged per window. The collector is strictly read-only
 * over Network state and runs from the serial driver loop, so enabling
 * it cannot change simulation results in any step mode.
 *
 * Export is a schema-versioned footprint.heatmap/1 JSON document with
 * a run-metadata header; tools/render_heatmap.py turns it into ASCII
 * or PNG mesh heatmaps and tools/check_profile_schema.py validates it
 * in CI.
 */

#ifndef FOOTPRINT_OBS_HEATMAP_HPP
#define FOOTPRINT_OBS_HEATMAP_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace footprint {

class Network;
class SimConfig;
struct RunMetadata;

/** Heatmap collection parameters (heatmap_* config keys). */
struct HeatmapConfig
{
    bool enabled = false;
    /** Output path of the footprint.heatmap/1 document. */
    std::string outPath = "heatmap.json";
    /** Cycles per aggregation window. */
    std::int64_t window = 1000;
    /** Cycles between occupancy-gauge samples within a window. */
    std::int64_t sampleInterval = 8;

    /** Read the heatmap_* keys of @p cfg. */
    static HeatmapConfig fromSim(const SimConfig& cfg);
};

/**
 * One closed aggregation window: per-node means of the sampled gauges
 * and per-link flits/cycle, all row-major W*H grids.
 */
struct HeatmapWindow
{
    std::int64_t startCycle = 0;
    std::int64_t endCycle = 0;    ///< exclusive
    std::int64_t samples = 0;     ///< gauge samples in this window

    /** Mean flits/cycle leaving each node per direction (E/W/N/S). */
    std::vector<double> linkUtil[4];
    /** Mean flits/cycle node->router (inject) and router->node. */
    std::vector<double> injectUtil;
    std::vector<double> ejectUtil;

    /** Mean flits buffered in each router's input VCs. */
    std::vector<double> vcOcc;
    /** Mean occupied output VCs per router (footprint size). */
    std::vector<double> fpOcc;
    /** Mean occupied escape output VCs per router. */
    std::vector<double> escOcc;
    /** Mean flits backlogged in each endpoint's source queue. */
    std::vector<double> injBacklog;
};

class HeatmapCollector
{
  public:
    /**
     * @param net network to observe; must outlive the collector. The
     *        collector holds per-link sent-count baselines, so attach
     *        before the first observed cycle.
     */
    HeatmapCollector(const Network& net, const HeatmapConfig& cfg);

    bool enabled() const { return cfg_.enabled; }
    const HeatmapConfig& config() const { return cfg_; }

    /**
     * Per-cycle hook; call after Network::step. Samples gauges on the
     * sample interval and closes the window on its boundary.
     *
     * Jump-aware: @p cycle may be far past the previous tick (the
     * skip-ahead fast path jumps quiescent spans). The elapsed span is
     * replayed event by event — every sample boundary and window close
     * in order, a sample before a coincident close, exactly as ticking
     * each cycle would have — against the network's current (frozen)
     * state. The driver catches collectors up to horizon-1 *before*
     * stepping the landing cycle, so replayed samples read the same
     * quiescent state the skipped cycles held.
     */
    void
    tick(std::int64_t cycle)
    {
        if (!cfg_.enabled)
            return;
        std::int64_t x = lastTick_ + 1;
        lastTick_ = cycle;
        while (x <= cycle) {
            const std::int64_t close_at =
                windowStart_ + cfg_.window - 1;
            const std::int64_t rem =
                (x - windowStart_) % cfg_.sampleInterval;
            const std::int64_t next_sample =
                rem == 0 ? x : x + (cfg_.sampleInterval - rem);
            const std::int64_t next =
                next_sample < close_at ? next_sample : close_at;
            if (next > cycle)
                break;
            x = next;
            if (x == next_sample)
                sampleGauges();
            if (x == close_at)
                closeWindow(x + 1);
            ++x;
        }
    }

    /** Close any partial window at end of run. */
    void finish(std::int64_t cycle);

    const std::vector<HeatmapWindow>& windows() const
    {
        return windows_;
    }

    /** Render the footprint.heatmap/1 document. */
    std::string toJson(const RunMetadata* meta) const;

    /** Write toJson to @p path; false on I/O failure. */
    bool writeTo(const std::string& path,
                 const RunMetadata* meta) const;

  private:
    void sampleGauges();
    void closeWindow(std::int64_t end_cycle);

    const Network& net_;
    HeatmapConfig cfg_;
    int width_ = 0;
    int height_ = 0;
    int nodes_ = 0;
    int escapeVcs_ = 0;

    std::int64_t windowStart_ = 0;
    std::int64_t samples_ = 0;
    std::int64_t lastTick_ = -1;  ///< last cycle tick() replayed up to

    // Gauge accumulators (sums over samples, divided at window close).
    std::vector<double> vcOccSum_;
    std::vector<double> fpOccSum_;
    std::vector<double> escOccSum_;
    std::vector<double> injBacklogSum_;

    // Per-link sent-count baselines, index-aligned with
    // Network::links(); deltas at window close give exact counts.
    std::vector<std::uint64_t> linkSentBase_;

    std::vector<HeatmapWindow> windows_;
};

} // namespace footprint

#endif // FOOTPRINT_OBS_HEATMAP_HPP
