/**
 * @file
 * Chrome trace-event (chrome://tracing / Perfetto) timeline export.
 *
 * ChromeTraceWriter streams the JSON object format of the Trace Event
 * specification: {"traceEvents":[...],"displayTimeUnit":"ms",...}.
 * Events are appended as they occur; close() finishes the JSON and
 * attaches run metadata. One simulation cycle maps to one microsecond
 * of trace time, so cycle arithmetic reads directly off the timeline.
 *
 * The writer is fed from two directions:
 *  - PacketTracer re-emits completed packet lifecycles as "X"
 *    (complete) slices — one per hop, on a per-packet track — so the
 *    journey of a packet through the mesh renders as a flame chart.
 *  - TelemetryHub emits phase transitions as global "i" (instant)
 *    events, and ChromeCounterSink adapts sampled telemetry rows into
 *    "C" (counter) tracks.
 */

#ifndef FOOTPRINT_OBS_TRACE_EVENT_HPP
#define FOOTPRINT_OBS_TRACE_EVENT_HPP

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/run_metadata.hpp"
#include "obs/sink.hpp"

namespace footprint {

/** Streaming writer for the trace-event JSON object format. */
class ChromeTraceWriter
{
  public:
    /** Stream into a borrowed ostream (tests). */
    explicit ChromeTraceWriter(std::ostream& os);

    /** Stream into @p path; fatal() if it cannot be opened. */
    explicit ChromeTraceWriter(const std::string& path);

    ~ChromeTraceWriter() { close(); }

    ChromeTraceWriter(const ChromeTraceWriter&) = delete;
    ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

    /** Attach run metadata, emitted into the footer by close(). */
    void setMeta(const RunMetadata& meta);

    /**
     * "X" complete slice: @p dur cycles starting at @p ts on track
     * (pid, tid). @p args is a JSON object body ("\"k\":1") or empty.
     */
    void completeEvent(const std::string& name, std::int64_t pid,
                       std::int64_t tid, std::int64_t ts,
                       std::int64_t dur, const std::string& args = "");

    /** Global "i" instant event (a vertical marker line). */
    void instantEvent(const std::string& name, std::int64_t ts);

    /** "C" counter sample: series @p name has @p value at @p ts. */
    void counterEvent(const std::string& name, std::int64_t pid,
                      std::int64_t ts, double value);

    /** "M" metadata: name a process or thread track. */
    void processName(std::int64_t pid, const std::string& name);
    void threadName(std::int64_t pid, std::int64_t tid,
                    const std::string& name);

    /** Finish the JSON document (idempotent; run by the destructor). */
    void close();

    std::uint64_t eventsWritten() const { return events_; }

  private:
    void beginEvent();

    std::unique_ptr<std::ofstream> owned_;
    std::ostream* os_;
    bool closed_ = false;
    bool first_ = true;
    std::uint64_t events_ = 0;
    bool hasMeta_ = false;
    RunMetadata meta_;
};

/**
 * TimeSeriesSink adapter: forwards every sampled telemetry row into
 * counter tracks of a ChromeTraceWriter (borrowed, not owned). Only
 * network-aggregate channels ("net.*") are forwarded; per-router
 * counter tracks would swamp the timeline.
 */
class ChromeCounterSink : public TimeSeriesSink
{
  public:
    explicit ChromeCounterSink(ChromeTraceWriter* writer)
        : writer_(writer)
    {}

    void writeHeader(const std::vector<std::string>& columns) override;
    void writeRow(std::int64_t cycle, const std::string& phase,
                  const std::vector<double>& values) override;
    void flush() override {}

  private:
    ChromeTraceWriter* writer_;
    std::vector<std::string> columns_;
    std::vector<bool> forwarded_;  ///< per-column "net.*" filter
};

} // namespace footprint

#endif // FOOTPRINT_OBS_TRACE_EVENT_HPP
