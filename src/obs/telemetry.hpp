/**
 * @file
 * TelemetryHub — the central coordination point of the observability
 * subsystem. A hub owns the probe Sampler (named, typed channels), the
 * structured time-series sinks, and the PacketTracer, and receives
 * per-cycle ticks and phase markers from the simulation driver.
 *
 * Overhead discipline: every per-cycle integration point is guarded by
 * a single branch — TrafficManager checks one pointer, tick() checks
 * one flag, Router/Endpoint hooks check one pointer — so a build with
 * telemetry compiled in but disabled runs the same hot path as before
 * plus predictable never-taken branches.
 */

#ifndef FOOTPRINT_OBS_TELEMETRY_HPP
#define FOOTPRINT_OBS_TELEMETRY_HPP

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "obs/packet_tracer.hpp"
#include "obs/sampler.hpp"
#include "obs/trace_event.hpp"

namespace footprint {

class SimConfig;

/** What a TelemetryHub records and where it writes. */
struct TelemetryConfig
{
    /** Time-series output path; empty disables time-series export. */
    std::string timeSeriesPath;
    /** Time-series format: "csv" or "jsonl". */
    std::string format = "csv";
    /** Cycles between samples. */
    std::int64_t sampleInterval = 100;
    /** Register per-router/per-endpoint channels (else aggregates). */
    bool perRouter = true;
    /** Packet-trace output path; empty with tracePackets=0 disables. */
    std::string tracePath;
    /** Trace packets with id in [1, tracePackets]. */
    std::uint64_t tracePackets = 0;
    /** Retain samples in memory for series() access. */
    bool keepInMemory = false;
    /** Chrome trace-event timeline path; empty disables. */
    std::string chromeTracePath;

    bool
    anyEnabled() const
    {
        return !timeSeriesPath.empty() || !tracePath.empty()
            || tracePackets > 0 || keepInMemory
            || !chromeTracePath.empty();
    }
};

/** A recorded phase transition (warmup / measure / drain markers). */
struct PhaseMark
{
    std::string name;
    std::int64_t cycle;
};

/**
 * Central telemetry coordinator. Construct (optionally from a
 * SimConfig via configFromSim), attach to a Network with
 * Network::attachTelemetry, then drive with beginPhase()/tick() and
 * close with finish().
 *
 * A default-constructed hub is disabled: attach and tick are no-ops
 * beyond a single branch, which is the configuration the overhead
 * micro-benchmarks gate.
 */
class TelemetryHub
{
  public:
    /** Disabled hub (no sinks, no tracer, sampling off). */
    TelemetryHub() = default;

    explicit TelemetryHub(const TelemetryConfig& cfg);

    /** Read the telemetry_* / trace_* keys of @p cfg. */
    static TelemetryConfig configFromSim(const SimConfig& cfg);

    bool enabled() const { return enabled_; }
    bool samplingEnabled() const { return sampling_; }
    const TelemetryConfig& config() const { return cfg_; }

    /** Register a channel (forwards to the sampler). */
    std::size_t
    addChannel(const std::string& name, ChannelKind kind,
               std::function<double()> probe)
    {
        return sampler_.addChannel(name, kind, std::move(probe));
    }

    /** Attach an additional time-series sink (tests, benches). */
    void
    addSink(std::unique_ptr<TimeSeriesSink> sink)
    {
        sampler_.addSink(std::move(sink));
        sampling_ = enabled_ = true;
    }

    /** Mark a simulation phase transition at @p cycle. */
    void beginPhase(const std::string& name, std::int64_t cycle);

    /**
     * Per-cycle hook: samples every probe when @p cycle lands on the
     * sampling interval. A single branch when sampling is disabled.
     */
    void
    tick(std::int64_t cycle)
    {
        if (!sampling_)
            return;
        if (cycle % cfg_.sampleInterval == 0)
            sampler_.sample(cycle, phase_);
    }

    /**
     * First cycle >= @p from on the sampling grid (max() when
     * sampling is off). Skip-ahead horizon clamp: a jump lands on the
     * next sample cycle instead of silently passing it.
     */
    std::int64_t
    nextSampleCycle(std::int64_t from) const
    {
        if (!sampling_ || cfg_.sampleInterval <= 0)
            return std::numeric_limits<std::int64_t>::max();
        const std::int64_t rem = from % cfg_.sampleInterval;
        return rem == 0 ? from : from + (cfg_.sampleInterval - rem);
    }

    /** Final sample (if due), tracer + sink flush, trace close. */
    void finish(std::int64_t cycle);

    /**
     * Stamp run metadata onto every artifact this hub writes (sinks,
     * packet trace, chrome trace). Call before the first sample.
     */
    void setRunMetadata(const RunMetadata& meta);

    /** The packet tracer, or nullptr when tracing is disabled. */
    PacketTracer* tracer() { return tracer_.get(); }

    /** The chrome trace writer, or nullptr when disabled. */
    ChromeTraceWriter* chromeTrace() { return chrome_.get(); }

    Sampler& sampler() { return sampler_; }
    const Sampler& sampler() const { return sampler_; }

    const std::string& phase() const { return phase_; }
    const std::vector<PhaseMark>& phaseMarks() const { return marks_; }

    /** Retained series of a channel (keepInMemory mode). */
    const std::vector<Sample>&
    series(const std::string& name) const
    {
        return sampler_.series(name);
    }

    /**
     * Mean of a retained channel over the cycles a phase was active;
     * 0 when the channel or phase has no retained samples.
     */
    double meanInPhase(const std::string& name,
                       const std::string& phase) const;

  private:
    TelemetryConfig cfg_;
    Sampler sampler_;
    std::unique_ptr<PacketTracer> tracer_;
    std::unique_ptr<ChromeTraceWriter> chrome_;
    std::string phase_ = "init";
    std::vector<PhaseMark> marks_;
    bool enabled_ = false;
    bool sampling_ = false;
};

} // namespace footprint

#endif // FOOTPRINT_OBS_TELEMETRY_HPP
