#include "obs/packet_tracer.hpp"

#include <algorithm>
#include <sstream>

#include "obs/run_metadata.hpp"
#include "obs/sink.hpp"
#include "obs/trace_event.hpp"
#include "sim/log.hpp"

namespace footprint {

PacketTracer::PacketTracer(std::ostream& os, std::uint64_t max_packets)
    : os_(&os), maxPackets_(max_packets)
{}

PacketTracer::PacketTracer(const std::string& path,
                           std::uint64_t max_packets)
    : owned_(std::make_unique<std::ofstream>(path)), os_(owned_.get()),
      maxPackets_(max_packets)
{
    if (!*owned_)
        fatal("cannot open packet trace file: " + path);
}

PacketTracer::PacketTracer(std::uint64_t max_packets)
    : os_(nullptr), maxPackets_(max_packets)
{}

void
PacketTracer::setMeta(const RunMetadata& meta)
{
    if (os_) {
        *os_ << "{\"schema\":\"footprint.packet_trace/1\",\"meta\":"
             << meta.toJson() << "}\n";
    }
}

PacketTracer::PacketRecord&
PacketTracer::record(const Flit& flit)
{
    auto [it, inserted] = records_.try_emplace(flit.packetId);
    if (inserted) {
        PacketRecord& rec = it->second;
        rec.src = flit.src;
        rec.dest = flit.dest;
        if (pool_) {
            const PacketDescriptor& d = pool_->get(flit.desc);
            rec.size = d.packetSize;
            rec.flowClass = d.flowClass;
            rec.create = d.createTime;
            rec.inject = d.injectTime;
        }
    }
    return it->second;
}

void
PacketTracer::onHopArrive(const Flit& flit, int node,
                          std::int64_t cycle)
{
    PacketRecord& rec = record(flit);
    if (rec.inject < 0 && pool_)
        rec.inject = pool_->get(flit.desc).injectTime;
    HopRecord hop;
    hop.node = node;
    hop.arrive = cycle;
    rec.hops.push_back(hop);
}

void
PacketTracer::onVaGrant(const Flit& flit, int node, std::int64_t cycle)
{
    PacketRecord& rec = record(flit);
    for (auto it = rec.hops.rbegin(); it != rec.hops.rend(); ++it) {
        if (it->node == node) {
            it->va = cycle;
            return;
        }
    }
    // VA observed without a recorded arrival (tracing attached
    // mid-flight): synthesise the hop.
    HopRecord hop;
    hop.node = node;
    hop.va = cycle;
    rec.hops.push_back(hop);
}

void
PacketTracer::onSwitchTraverse(const Flit& flit, int node,
                               std::int64_t cycle)
{
    PacketRecord& rec = record(flit);
    for (auto it = rec.hops.rbegin(); it != rec.hops.rend(); ++it) {
        if (it->node == node) {
            if (it->st < 0)
                it->st = cycle;
            return;
        }
    }
    HopRecord hop;
    hop.node = node;
    hop.st = cycle;
    rec.hops.push_back(hop);
}

void
PacketTracer::onEject(const Flit& flit, int node, std::int64_t cycle)
{
    (void)node;
    auto it = records_.find(flit.packetId);
    if (it == records_.end())
        return;
    writeRecord(flit.packetId, it->second, cycle);
    ++completed_;
    records_.erase(it);
}

void
PacketTracer::writeRecord(std::uint64_t id, const PacketRecord& rec,
                          std::int64_t eject)
{
    if (chrome_) {
        // One track (tid) per packet under the "packets" process; the
        // whole lifetime as an enclosing slice, one nested slice per
        // hop. A hop's slice spans arrival to switch traversal.
        const auto tid = static_cast<std::int64_t>(id);
        std::ostringstream name;
        name << "pkt " << id << " n" << rec.src << "->n" << rec.dest;
        chrome_->threadName(1, tid, name.str());
        if (rec.inject >= 0 && eject >= rec.inject) {
            std::ostringstream args;
            args << "\"src\":" << rec.src << ",\"dest\":" << rec.dest
                 << ",\"size\":" << rec.size << ",\"hops\":"
                 << rec.hops.size();
            chrome_->completeEvent("pkt", 1, tid, rec.inject,
                                   eject - rec.inject, args.str());
        }
        for (const HopRecord& h : rec.hops) {
            const std::int64_t start = h.arrive >= 0 ? h.arrive : h.st;
            if (start < 0)
                continue;
            const std::int64_t end = h.st >= start ? h.st + 1
                                                   : start + 1;
            std::ostringstream args;
            if (h.arrive >= 0 && h.va >= 0)
                args << "\"va_stall\":" << h.va - h.arrive;
            if (h.va >= 0 && h.st >= 0) {
                if (args.tellp() > 0)
                    args << ',';
                args << "\"sa_stall\":" << h.st - h.va;
            }
            std::string track = "n";
            track += std::to_string(h.node);
            chrome_->completeEvent(track, 1, tid, start, end - start,
                                   args.str());
        }
    }

    if (!os_)
        return;
    std::ostream& os = *os_;
    os << "{\"packet\":" << id << ",\"src\":" << rec.src
       << ",\"dest\":" << rec.dest << ",\"size\":" << rec.size
       << ",\"class\":\""
       << (rec.flowClass == FlowClass::Hotspot ? "hotspot" : "bg")
       << "\",\"create\":" << rec.create << ",\"inject\":" << rec.inject
       << ",\"eject\":" << eject;
    if (eject >= 0)
        os << ",\"latency\":" << eject - rec.create;
    else
        os << ",\"complete\":false";
    os << ",\"hops\":[";
    for (std::size_t i = 0; i < rec.hops.size(); ++i) {
        const HopRecord& h = rec.hops[i];
        if (i > 0)
            os << ',';
        os << "{\"node\":" << h.node << ",\"arrive\":" << h.arrive
           << ",\"va\":" << h.va << ",\"st\":" << h.st;
        if (h.arrive >= 0 && h.va >= 0)
            os << ",\"va_stall\":" << h.va - h.arrive;
        if (h.va >= 0 && h.st >= 0)
            os << ",\"sa_stall\":" << h.st - h.va;
        os << '}';
    }
    os << "]}\n";
}

void
PacketTracer::flush()
{
    // Emit still-in-flight packets in id order so the output is
    // deterministic across unordered_map implementations.
    std::vector<std::uint64_t> ids;
    ids.reserve(records_.size());
    for (const auto& [id, rec] : records_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const std::uint64_t id : ids)
        writeRecord(id, records_.at(id), -1);
    records_.clear();
    if (os_)
        os_->flush();
}

std::string
PacketTracer::describe(std::uint64_t packet_id) const
{
    const auto it = records_.find(packet_id);
    if (it == records_.end())
        return "";
    const PacketRecord& rec = it->second;
    std::ostringstream os;
    os << "injected@" << rec.inject;
    for (const HopRecord& h : rec.hops) {
        os << " -> n" << h.node << '@' << h.arrive;
        if (h.va >= 0 || h.st >= 0) {
            os << "(va=" << h.va << ",st=" << h.st << ')';
        }
    }
    return os.str();
}

} // namespace footprint
