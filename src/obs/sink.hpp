/**
 * @file
 * Structured-export sinks for the telemetry subsystem: a common
 * time-series row interface with CSV and JSONL implementations, plus
 * the JSON string-escaping helper shared with the packet tracer.
 *
 * Sinks either borrow an external stream (tests write into a
 * stringstream) or own a file stream opened from a path.
 */

#ifndef FOOTPRINT_OBS_SINK_HPP
#define FOOTPRINT_OBS_SINK_HPP

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace footprint {

struct RunMetadata;

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string& s);

/**
 * Format a telemetry value compactly: integral values print without a
 * decimal point, others with up to six significant digits.
 */
std::string formatTelemetryValue(double v);

/**
 * One row of the sampled time series: the sample cycle, the simulation
 * phase active at that cycle, and one value per registered channel.
 */
class TimeSeriesSink
{
  public:
    virtual ~TimeSeriesSink() = default;

    /**
     * Stamp run metadata onto the artifact, before the header. Sinks
     * that have no self-describing representation may ignore it.
     */
    virtual void writeMeta(const RunMetadata& meta) { (void)meta; }

    /** Called once, before any row, with the channel names. */
    virtual void writeHeader(const std::vector<std::string>& columns) = 0;

    /** Append one sample row; values align with the header columns. */
    virtual void writeRow(std::int64_t cycle, const std::string& phase,
                          const std::vector<double>& values) = 0;

    virtual void flush() = 0;
};

/**
 * Base for sinks that write text lines to a borrowed or owned stream.
 */
class StreamSink : public TimeSeriesSink
{
  public:
    /** Borrow @p os; the caller keeps it alive past the sink. */
    explicit StreamSink(std::ostream& os) : os_(&os) {}

    /** Open @p path for writing; fatal() if it cannot be opened. */
    explicit StreamSink(const std::string& path);

    void flush() override { os_->flush(); }

  protected:
    std::ostream& os() { return *os_; }

  private:
    std::unique_ptr<std::ofstream> owned_;
    std::ostream* os_;
};

/**
 * CSV time series: a "cycle,phase,<channel...>" header line followed
 * by one comma-separated row per sample.
 */
class CsvSink : public StreamSink
{
  public:
    using StreamSink::StreamSink;

    /** "# footprint.telemetry/1 seed=... config_hash=..." comment. */
    void writeMeta(const RunMetadata& meta) override;

    void writeHeader(const std::vector<std::string>& columns) override;
    void writeRow(std::int64_t cycle, const std::string& phase,
                  const std::vector<double>& values) override;

  private:
    std::vector<std::string> columns_;
};

/**
 * JSONL time series: one JSON object per sample,
 * {"cycle":C,"phase":"p","metrics":{"name":value,...}}.
 */
class JsonlSink : public StreamSink
{
  public:
    using StreamSink::StreamSink;

    /** {"meta":{...},"schema":"footprint.telemetry/1"} first record. */
    void writeMeta(const RunMetadata& meta) override;

    void writeHeader(const std::vector<std::string>& columns) override;
    void writeRow(std::int64_t cycle, const std::string& phase,
                  const std::vector<double>& values) override;

  private:
    std::vector<std::string> escaped_;  ///< pre-escaped channel names
};

} // namespace footprint

#endif // FOOTPRINT_OBS_SINK_HPP
