#include "obs/telemetry.hpp"

#include <limits>

#include "sim/config.hpp"
#include "sim/log.hpp"

namespace footprint {

TelemetryHub::TelemetryHub(const TelemetryConfig& cfg) : cfg_(cfg)
{
    if (cfg_.sampleInterval < 1) {
        fatal("sample_interval must be >= 1, got "
              + std::to_string(cfg_.sampleInterval));
    }
    enabled_ = cfg_.anyEnabled();
    sampling_ = !cfg_.timeSeriesPath.empty() || cfg_.keepInMemory;

    if (!cfg_.timeSeriesPath.empty()) {
        if (cfg_.format == "csv") {
            sampler_.addSink(
                std::make_unique<CsvSink>(cfg_.timeSeriesPath));
        } else if (cfg_.format == "jsonl") {
            sampler_.addSink(
                std::make_unique<JsonlSink>(cfg_.timeSeriesPath));
        } else {
            fatal("telemetry_format must be csv or jsonl, got: "
                  + cfg_.format);
        }
    }
    sampler_.setKeepInMemory(cfg_.keepInMemory);

    if (!cfg_.chromeTracePath.empty()) {
        chrome_ =
            std::make_unique<ChromeTraceWriter>(cfg_.chromeTracePath);
        chrome_->processName(1, "packets");
        chrome_->processName(2, "telemetry");
        if (sampling_) {
            sampler_.addSink(
                std::make_unique<ChromeCounterSink>(chrome_.get()));
        }
    }

    // The chrome timeline is fed from packet lifecycles, so it implies
    // a tracer even when no JSONL trace was requested; a generous
    // default packet budget keeps the timeline representative.
    std::uint64_t trace_packets = cfg_.tracePackets;
    if (chrome_ && trace_packets == 0)
        trace_packets = 20000;

    if (trace_packets > 0) {
        if (!cfg_.tracePath.empty() || cfg_.tracePackets > 0) {
            const std::string path = cfg_.tracePath.empty()
                ? "trace.jsonl"
                : cfg_.tracePath;
            tracer_ =
                std::make_unique<PacketTracer>(path, trace_packets);
        } else {
            tracer_ = std::make_unique<PacketTracer>(trace_packets);
        }
    }
    if (tracer_ && chrome_)
        tracer_->setChromeTrace(chrome_.get());
}

TelemetryConfig
TelemetryHub::configFromSim(const SimConfig& cfg)
{
    TelemetryConfig tc;
    if (cfg.contains("telemetry_out"))
        tc.timeSeriesPath = cfg.getStr("telemetry_out");
    if (cfg.contains("telemetry_format"))
        tc.format = cfg.getStr("telemetry_format");
    if (cfg.contains("sample_interval"))
        tc.sampleInterval = cfg.getInt("sample_interval");
    if (cfg.contains("telemetry_per_router"))
        tc.perRouter = cfg.getBool("telemetry_per_router");
    if (cfg.contains("trace_out"))
        tc.tracePath = cfg.getStr("trace_out");
    if (cfg.contains("trace_packets")) {
        const std::int64_t n = cfg.getInt("trace_packets");
        if (n < 0)
            fatal("trace_packets must be non-negative");
        tc.tracePackets = static_cast<std::uint64_t>(n);
    }
    if (cfg.contains("chrome_trace") && cfg.getBool("chrome_trace")) {
        tc.chromeTracePath = cfg.contains("chrome_trace_out")
                && !cfg.getStr("chrome_trace_out").empty()
            ? cfg.getStr("chrome_trace_out")
            : "trace.json";
    }
    return tc;
}

void
TelemetryHub::setRunMetadata(const RunMetadata& meta)
{
    if (!enabled_)
        return;
    sampler_.writeMeta(meta);
    if (tracer_)
        tracer_->setMeta(meta);
    if (chrome_)
        chrome_->setMeta(meta);
}

void
TelemetryHub::beginPhase(const std::string& name, std::int64_t cycle)
{
    if (!enabled_)
        return;
    phase_ = name;
    marks_.push_back(PhaseMark{name, cycle});
    if (chrome_)
        chrome_->instantEvent("phase: " + name, cycle);
}

void
TelemetryHub::finish(std::int64_t cycle)
{
    if (!enabled_)
        return;
    if (sampling_ && sampler_.lastSampleCycle() != cycle)
        sampler_.sample(cycle, phase_);
    if (tracer_)
        tracer_->flush();
    sampler_.flush();
    if (chrome_)
        chrome_->close();
}

double
TelemetryHub::meanInPhase(const std::string& name,
                          const std::string& phase) const
{
    // Determine the cycle range(s) the phase covered.
    std::int64_t begin = -1;
    std::int64_t end = -1;
    for (std::size_t i = 0; i < marks_.size(); ++i) {
        if (marks_[i].name != phase)
            continue;
        begin = marks_[i].cycle;
        end = i + 1 < marks_.size()
            ? marks_[i + 1].cycle
            : std::numeric_limits<std::int64_t>::max();
        break;
    }
    if (begin < 0)
        return 0.0;
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const Sample& s : sampler_.series(name)) {
        if (s.cycle >= begin && s.cycle < end) {
            sum += s.value;
            ++n;
        }
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

} // namespace footprint
