#include "obs/telemetry.hpp"

#include <limits>

#include "sim/config.hpp"
#include "sim/log.hpp"

namespace footprint {

TelemetryHub::TelemetryHub(const TelemetryConfig& cfg) : cfg_(cfg)
{
    if (cfg_.sampleInterval < 1) {
        fatal("sample_interval must be >= 1, got "
              + std::to_string(cfg_.sampleInterval));
    }
    enabled_ = cfg_.anyEnabled();
    sampling_ = !cfg_.timeSeriesPath.empty() || cfg_.keepInMemory;

    if (!cfg_.timeSeriesPath.empty()) {
        if (cfg_.format == "csv") {
            sampler_.addSink(
                std::make_unique<CsvSink>(cfg_.timeSeriesPath));
        } else if (cfg_.format == "jsonl") {
            sampler_.addSink(
                std::make_unique<JsonlSink>(cfg_.timeSeriesPath));
        } else {
            fatal("telemetry_format must be csv or jsonl, got: "
                  + cfg_.format);
        }
    }
    sampler_.setKeepInMemory(cfg_.keepInMemory);

    if (cfg_.tracePackets > 0) {
        const std::string path =
            cfg_.tracePath.empty() ? "trace.jsonl" : cfg_.tracePath;
        tracer_ =
            std::make_unique<PacketTracer>(path, cfg_.tracePackets);
    }
}

TelemetryConfig
TelemetryHub::configFromSim(const SimConfig& cfg)
{
    TelemetryConfig tc;
    if (cfg.contains("telemetry_out"))
        tc.timeSeriesPath = cfg.getStr("telemetry_out");
    if (cfg.contains("telemetry_format"))
        tc.format = cfg.getStr("telemetry_format");
    if (cfg.contains("sample_interval"))
        tc.sampleInterval = cfg.getInt("sample_interval");
    if (cfg.contains("telemetry_per_router"))
        tc.perRouter = cfg.getBool("telemetry_per_router");
    if (cfg.contains("trace_out"))
        tc.tracePath = cfg.getStr("trace_out");
    if (cfg.contains("trace_packets")) {
        const std::int64_t n = cfg.getInt("trace_packets");
        if (n < 0)
            fatal("trace_packets must be non-negative");
        tc.tracePackets = static_cast<std::uint64_t>(n);
    }
    return tc;
}

void
TelemetryHub::beginPhase(const std::string& name, std::int64_t cycle)
{
    if (!enabled_)
        return;
    phase_ = name;
    marks_.push_back(PhaseMark{name, cycle});
}

void
TelemetryHub::finish(std::int64_t cycle)
{
    if (!enabled_)
        return;
    if (sampling_ && sampler_.lastSampleCycle() != cycle)
        sampler_.sample(cycle, phase_);
    if (tracer_)
        tracer_->flush();
    sampler_.flush();
}

double
TelemetryHub::meanInPhase(const std::string& name,
                          const std::string& phase) const
{
    // Determine the cycle range(s) the phase covered.
    std::int64_t begin = -1;
    std::int64_t end = -1;
    for (std::size_t i = 0; i < marks_.size(); ++i) {
        if (marks_[i].name != phase)
            continue;
        begin = marks_[i].cycle;
        end = i + 1 < marks_.size()
            ? marks_[i + 1].cycle
            : std::numeric_limits<std::int64_t>::max();
        break;
    }
    if (begin < 0)
        return 0.0;
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const Sample& s : sampler_.series(name)) {
        if (s.cycle >= begin && s.cycle < end) {
            sum += s.value;
            ++n;
        }
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

} // namespace footprint
