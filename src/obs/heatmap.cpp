#include "obs/heatmap.hpp"

#include <cstdio>
#include <fstream>

#include "network/network.hpp"
#include "obs/run_metadata.hpp"
#include "sim/config.hpp"

namespace footprint {

HeatmapConfig
HeatmapConfig::fromSim(const SimConfig& cfg)
{
    HeatmapConfig hc;
    hc.enabled = cfg.contains("heatmap") && cfg.getBool("heatmap");
    if (cfg.contains("heatmap_out")
        && !cfg.getStr("heatmap_out").empty())
        hc.outPath = cfg.getStr("heatmap_out");
    if (cfg.contains("heatmap_window"))
        hc.window = cfg.getInt("heatmap_window");
    if (cfg.contains("heatmap_sample_interval"))
        hc.sampleInterval = cfg.getInt("heatmap_sample_interval");
    if (hc.window < 1)
        hc.window = 1;
    if (hc.sampleInterval < 1)
        hc.sampleInterval = 1;
    if (hc.sampleInterval > hc.window)
        hc.sampleInterval = hc.window;
    return hc;
}

HeatmapCollector::HeatmapCollector(const Network& net,
                                   const HeatmapConfig& cfg)
    : net_(net), cfg_(cfg)
{
    if (!cfg_.enabled)
        return;
    width_ = net.mesh().width();
    height_ = net.mesh().height();
    nodes_ = net.mesh().numNodes();
    escapeVcs_ = net.routing().numEscapeVcs();

    const auto n = static_cast<std::size_t>(nodes_);
    vcOccSum_.assign(n, 0.0);
    fpOccSum_.assign(n, 0.0);
    escOccSum_.assign(n, 0.0);
    injBacklogSum_.assign(n, 0.0);

    // Baselines come from the fabric's flat sent lane (one contiguous
    // read per link) rather than chasing per-channel objects.
    linkSentBase_.reserve(net.links().size());
    for (const Network::LinkRecord& l : net.links())
        linkSentBase_.push_back(net.linkFabric().flitSent(l.flitId));
}

void
HeatmapCollector::sampleGauges()
{
    ++samples_;
    for (int node = 0; node < nodes_; ++node) {
        const auto i = static_cast<std::size_t>(node);
        const Router& r = net_.router(node);
        vcOccSum_[i] += static_cast<double>(r.inputBufferedFlits());
        fpOccSum_[i] += static_cast<double>(r.occupiedOutVcs());
        if (escapeVcs_ > 0) {
            escOccSum_[i] += static_cast<double>(
                r.occupiedOutVcsBelow(escapeVcs_));
        }
        injBacklogSum_[i] += static_cast<double>(
            net_.endpoint(node).sourceBacklogFlits());
    }
}

void
HeatmapCollector::closeWindow(std::int64_t end_cycle)
{
    HeatmapWindow w;
    w.startCycle = windowStart_;
    w.endCycle = end_cycle;
    w.samples = samples_;

    const auto n = static_cast<std::size_t>(nodes_);
    const double cycles =
        static_cast<double>(end_cycle - windowStart_);
    const double inv_samples =
        samples_ > 0 ? 1.0 / static_cast<double>(samples_) : 0.0;

    w.vcOcc.resize(n);
    w.fpOcc.resize(n);
    w.escOcc.resize(n);
    w.injBacklog.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        w.vcOcc[i] = vcOccSum_[i] * inv_samples;
        w.fpOcc[i] = fpOccSum_[i] * inv_samples;
        w.escOcc[i] = escOccSum_[i] * inv_samples;
        w.injBacklog[i] = injBacklogSum_[i] * inv_samples;
        vcOccSum_[i] = fpOccSum_[i] = escOccSum_[i] =
            injBacklogSum_[i] = 0.0;
    }

    for (auto& grid : w.linkUtil)
        grid.assign(n, 0.0);
    w.injectUtil.assign(n, 0.0);
    w.ejectUtil.assign(n, 0.0);
    const std::vector<Network::LinkRecord>& links = net_.links();
    for (std::size_t li = 0; li < links.size(); ++li) {
        const Network::LinkRecord& l = links[li];
        const std::uint64_t sent = net_.linkFabric().flitSent(l.flitId);
        const double flits =
            static_cast<double>(sent - linkSentBase_[li]);
        linkSentBase_[li] = sent;
        const double util = cycles > 0.0 ? flits / cycles : 0.0;
        const auto src = static_cast<std::size_t>(l.srcNode);
        switch (l.kind) {
        case Network::LinkRecord::Kind::RouterToRouter:
            // srcPort names the outgoing direction (E/W/N/S).
            w.linkUtil[l.srcPort][src] += util;
            break;
        case Network::LinkRecord::Kind::EndpointToRouter:
            w.injectUtil[src] += util;
            break;
        case Network::LinkRecord::Kind::RouterToEndpoint:
            w.ejectUtil[src] += util;
            break;
        }
    }

    windows_.push_back(std::move(w));
    windowStart_ = end_cycle;
    samples_ = 0;
}

void
HeatmapCollector::finish(std::int64_t cycle)
{
    if (!cfg_.enabled)
        return;
    // Close a partial trailing window if it saw any cycles.
    if (cycle > windowStart_)
        closeWindow(cycle);
}

namespace {

void
appendGrid(std::string& out, const char* name,
           const std::vector<double>& grid, bool leading_comma)
{
    if (leading_comma)
        out += ',';
    out += '"';
    out += name;
    out += "\":[";
    char buf[32];
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (i > 0)
            out += ',';
        std::snprintf(buf, sizeof(buf), "%.4g", grid[i]);
        out += buf;
    }
    out += ']';
}

} // namespace

std::string
HeatmapCollector::toJson(const RunMetadata* meta) const
{
    std::string out = "{\"schema\":\"footprint.heatmap/1\"";
    if (meta) {
        out += ",\"meta\":";
        out += meta->toJson();
    }
    out += ",\"mesh\":{\"width\":" + std::to_string(width_)
        + ",\"height\":" + std::to_string(height_) + "}";
    out += ",\"window\":" + std::to_string(cfg_.window)
        + ",\"sample_interval\":"
        + std::to_string(cfg_.sampleInterval);
    out += ",\"metrics\":[\"link_util\",\"inject_util\","
           "\"eject_util\",\"vc_occ\",\"fp_occ\",\"esc_occ\","
           "\"inj_backlog\"]";
    out += ",\"windows\":[";
    static const char* kDirNames[4] = {"east", "west", "north",
                                       "south"};
    for (std::size_t wi = 0; wi < windows_.size(); ++wi) {
        const HeatmapWindow& w = windows_[wi];
        if (wi > 0)
            out += ',';
        out += "{\"start\":" + std::to_string(w.startCycle)
            + ",\"end\":" + std::to_string(w.endCycle)
            + ",\"samples\":" + std::to_string(w.samples)
            + ",\"link_util\":{";
        for (int d = 0; d < 4; ++d)
            appendGrid(out, kDirNames[d], w.linkUtil[d], d > 0);
        out += '}';
        appendGrid(out, "inject_util", w.injectUtil, true);
        appendGrid(out, "eject_util", w.ejectUtil, true);
        appendGrid(out, "vc_occ", w.vcOcc, true);
        appendGrid(out, "fp_occ", w.fpOcc, true);
        appendGrid(out, "esc_occ", w.escOcc, true);
        appendGrid(out, "inj_backlog", w.injBacklog, true);
        out += '}';
    }
    out += "]}\n";
    return out;
}

bool
HeatmapCollector::writeTo(const std::string& path,
                          const RunMetadata* meta) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << toJson(meta);
    return static_cast<bool>(os);
}

} // namespace footprint
