/**
 * @file
 * Log-bucketed high-dynamic-range histogram for tail-latency and
 * wall-time distributions (p99/p999 in bounded memory).
 *
 * Values in [0, subBucketCount) are recorded exactly; above that,
 * each power-of-two range is split into subBucketCount/2 equal-width
 * sub-buckets, so the relative half-width of any bucket — and hence
 * the relative error of any reported quantile — is bounded by
 * 2^-subBucketBits (0.39% at the default 8 bits). Memory is fixed at
 * construction: ~(64 + maxValueBits/2) * 2^subBucketBits slots,
 * independent of sample count, unlike the linear-bin Histogram whose
 * resolution collapses into one overflow bin past its last edge.
 *
 * The same scheme as HdrHistogram (Gil Tene) restricted to what the
 * simulator needs: add / merge / percentile / max, all integer math
 * on the hot path (one bit_width, two shifts per add).
 */

#ifndef FOOTPRINT_OBS_HDR_HISTOGRAM_HPP
#define FOOTPRINT_OBS_HDR_HISTOGRAM_HPP

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace footprint {

class HdrHistogram
{
  public:
    /**
     * @param max_value largest value tracked at full precision; larger
     *        samples clamp into the top bucket (and count as
     *        overflow). The default covers 2^30 ~ 1e9, enough for
     *        cycle latencies and nanosecond-scale barrier waits.
     * @param sub_bucket_bits log2 of the linear sub-bucket count per
     *        power-of-two range; relative quantile error is bounded by
     *        2^-sub_bucket_bits.
     */
    explicit HdrHistogram(std::uint64_t max_value = (1ULL << 30),
                          int sub_bucket_bits = 8)
        : subBucketBits_(sub_bucket_bits < 2 ? 2 : sub_bucket_bits),
          subBucketCount_(std::uint64_t{1} << subBucketBits_),
          subBucketHalf_(subBucketCount_ >> 1),
          maxValue_(max_value < subBucketCount_ ? subBucketCount_
                                                : max_value)
    {
        // Number of power-of-two ranges past the exact region.
        const int max_bits = std::bit_width(maxValue_);
        expBuckets_ = max_bits > subBucketBits_
            ? max_bits - subBucketBits_
            : 1;
        counts_.assign(
            static_cast<std::size_t>(subBucketCount_)
                + static_cast<std::size_t>(expBuckets_)
                    * static_cast<std::size_t>(subBucketHalf_),
            0);
    }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        count_ = 0;
        overflow_ = 0;
        maxRecorded_ = 0;
        sum_ = 0.0;
    }

    void
    add(std::uint64_t value)
    {
        sum_ += static_cast<double>(value);
        if (value > maxValue_) {
            ++overflow_;
            value = maxValue_;
        }
        maxRecorded_ = std::max(maxRecorded_, value);
        ++counts_[indexOf(value)];
        ++count_;
    }

    /** Negative samples clamp to 0; fractional ones round to nearest. */
    void
    add(double value)
    {
        add(value <= 0.0
                ? std::uint64_t{0}
                : static_cast<std::uint64_t>(std::llround(value)));
    }

    /** Merge @p other (must share bucket geometry) into this. */
    void
    merge(const HdrHistogram& other)
    {
        if (other.counts_.size() != counts_.size()
            || other.subBucketBits_ != subBucketBits_)
            return;  // incompatible geometry: drop rather than corrupt
        for (std::size_t i = 0; i < counts_.size(); ++i)
            counts_[i] += other.counts_[i];
        count_ += other.count_;
        overflow_ += other.overflow_;
        maxRecorded_ = std::max(maxRecorded_, other.maxRecorded_);
        sum_ += other.sum_;
    }

    std::uint64_t count() const { return count_; }
    /** Samples past maxValue (clamped into the top bucket). */
    std::uint64_t overflowCount() const { return overflow_; }
    /** Largest recorded value (after clamping), exact. */
    std::uint64_t max() const { return maxRecorded_; }
    double mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /** Relative quantile error bound of this geometry. */
    double
    relativeErrorBound() const
    {
        return 1.0 / static_cast<double>(subBucketCount_);
    }

    /**
     * Value below which @p fraction of samples fall: the midpoint of
     * the bucket containing the target rank (exact for values in the
     * linear region). An empty histogram reports 0.
     */
    double
    percentile(double fraction) const
    {
        if (count_ == 0)
            return 0.0;
        fraction = std::clamp(fraction, 0.0, 1.0);
        const double target =
            fraction * static_cast<double>(count_);
        double seen = 0.0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            if (counts_[i] == 0)
                continue;
            seen += static_cast<double>(counts_[i]);
            if (target <= seen)
                return valueAt(i);
        }
        return valueAt(counts_.size() - 1);
    }

  private:
    std::size_t
    indexOf(std::uint64_t v) const
    {
        if (v < subBucketCount_)
            return static_cast<std::size_t>(v);
        int k = std::bit_width(v) - subBucketBits_;  // >= 1
        if (k > expBuckets_)
            k = expBuckets_;  // clamp (v == maxValue_ top range)
        const std::uint64_t sub = v >> k;  // in [half, count)
        return static_cast<std::size_t>(
            subBucketCount_
            + static_cast<std::uint64_t>(k - 1) * subBucketHalf_
            + (sub - subBucketHalf_));
    }

    /** Midpoint of the value range bucket @p idx covers. */
    double
    valueAt(std::size_t idx) const
    {
        if (idx < subBucketCount_)
            return static_cast<double>(idx);
        const std::uint64_t r =
            static_cast<std::uint64_t>(idx) - subBucketCount_;
        const std::uint64_t k = r / subBucketHalf_ + 1;
        const std::uint64_t sub = subBucketHalf_ + r % subBucketHalf_;
        const std::uint64_t lower = sub << k;
        const std::uint64_t width = std::uint64_t{1} << k;
        return static_cast<double>(lower)
            + static_cast<double>(width) / 2.0;
    }

    int subBucketBits_;
    std::uint64_t subBucketCount_;
    std::uint64_t subBucketHalf_;
    std::uint64_t maxValue_;
    int expBuckets_ = 1;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t maxRecorded_ = 0;
    double sum_ = 0.0;
};

} // namespace footprint

#endif // FOOTPRINT_OBS_HDR_HISTOGRAM_HPP
