/**
 * @file
 * Live run console: a rate-limited single-line status display for
 * long `simulate` runs and sweep batches. Strictly display-only — it
 * reads wall time and prints to stderr, never touches simulation
 * state — so determinism is unaffected, and it is off by default so
 * CI logs stay clean.
 *
 * On a TTY the line redraws in place (`\r` + erase-to-EOL); when
 * stderr is redirected it degrades to plain rate-limited progress
 * lines so `tee`'d logs stay readable. updateSweep() is
 * mutex-protected for the sweep runner's worker threads; updateRun()
 * is called from the serial driver loop only.
 */

#ifndef FOOTPRINT_OBS_CONSOLE_HPP
#define FOOTPRINT_OBS_CONSOLE_HPP

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace footprint {

struct WindowRecord;

class RunConsole
{
  public:
    /** @param interval_ms minimum milliseconds between redraws. */
    explicit RunConsole(int interval_ms = 250);

    /** Finishes the in-place line with a newline. */
    ~RunConsole();

    /**
     * Per-cycle progress of a single run: current cycle out of
     * @p total_cycles, phase name ("warmup"/"measure"/"drain"), and
     * optionally the most recently closed flight-recorder window for
     * live throughput/latency. Cheap when rate-limited out: one
     * steady_clock read per call.
     */
    void updateRun(std::int64_t cycle, std::int64_t total_cycles,
                   const char* phase, const WindowRecord* last_window,
                   int nodes);

    /** Sweep progress: @p done of @p total jobs finished. */
    void updateSweep(int done, int total);

    /** Terminate the status line (idempotent). */
    void close();

  private:
    using Clock = std::chrono::steady_clock;

    bool shouldDraw(Clock::time_point now);
    void draw(const std::string& line);

    std::mutex mu_;
    std::chrono::milliseconds interval_;
    Clock::time_point start_;
    Clock::time_point lastDraw_;
    std::int64_t lastCycle_ = 0;
    Clock::time_point lastCycleAt_;
    bool tty_ = false;
    bool drewInPlace_ = false;
    bool closed_ = false;
};

} // namespace footprint

#endif // FOOTPRINT_OBS_CONSOLE_HPP
