#include "obs/trace_event.hpp"

#include "sim/log.hpp"

namespace footprint {

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(&os)
{
    *os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

ChromeTraceWriter::ChromeTraceWriter(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(owned_.get())
{
    if (!*owned_)
        fatal("cannot open chrome trace file: " + path);
    *os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

void
ChromeTraceWriter::setMeta(const RunMetadata& meta)
{
    meta_ = meta;
    hasMeta_ = true;
}

void
ChromeTraceWriter::beginEvent()
{
    FP_ASSERT(!closed_, "event written to a closed trace");
    if (!first_)
        *os_ << ',';
    *os_ << '\n';
    first_ = false;
    ++events_;
}

void
ChromeTraceWriter::completeEvent(const std::string& name,
                                 std::int64_t pid, std::int64_t tid,
                                 std::int64_t ts, std::int64_t dur,
                                 const std::string& args)
{
    beginEvent();
    *os_ << "{\"name\":\"" << jsonEscape(name)
         << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"ts\":" << ts << ",\"dur\":" << dur;
    if (!args.empty())
        *os_ << ",\"args\":{" << args << '}';
    *os_ << '}';
}

void
ChromeTraceWriter::instantEvent(const std::string& name,
                                std::int64_t ts)
{
    beginEvent();
    *os_ << "{\"name\":\"" << jsonEscape(name)
         << "\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":"
         << ts << '}';
}

void
ChromeTraceWriter::counterEvent(const std::string& name,
                                std::int64_t pid, std::int64_t ts,
                                double value)
{
    beginEvent();
    *os_ << "{\"name\":\"" << jsonEscape(name)
         << "\",\"ph\":\"C\",\"pid\":" << pid << ",\"ts\":" << ts
         << ",\"args\":{\"value\":" << formatTelemetryValue(value)
         << "}}";
}

void
ChromeTraceWriter::processName(std::int64_t pid,
                               const std::string& name)
{
    beginEvent();
    *os_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":\"" << jsonEscape(name)
         << "\"}}";
}

void
ChromeTraceWriter::threadName(std::int64_t pid, std::int64_t tid,
                              const std::string& name)
{
    beginEvent();
    *os_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
         << jsonEscape(name) << "\"}}";
}

void
ChromeTraceWriter::close()
{
    if (closed_ || !os_)
        return;
    closed_ = true;
    *os_ << "\n]";
    if (hasMeta_)
        *os_ << ",\"metadata\":" << meta_.toJson();
    *os_ << "}\n";
    os_->flush();
}

void
ChromeCounterSink::writeHeader(const std::vector<std::string>& columns)
{
    columns_ = columns;
    forwarded_.clear();
    forwarded_.reserve(columns.size());
    for (const std::string& c : columns)
        forwarded_.push_back(c.rfind("net.", 0) == 0);
}

void
ChromeCounterSink::writeRow(std::int64_t cycle,
                            const std::string& phase,
                            const std::vector<double>& values)
{
    (void)phase;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i < forwarded_.size() && forwarded_[i])
            writer_->counterEvent(columns_[i], 2, cycle, values[i]);
    }
}

} // namespace footprint
