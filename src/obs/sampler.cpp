#include "obs/sampler.hpp"

#include "sim/log.hpp"

namespace footprint {

std::size_t
Sampler::addChannel(const std::string& name, ChannelKind kind,
                    std::function<double()> probe)
{
    FP_ASSERT(!headerWritten_,
              "telemetry channel registered after sampling started: "
                  << name);
    FP_ASSERT(find(name) == nullptr,
              "duplicate telemetry channel: " << name);
    Channel ch;
    ch.name = name;
    ch.kind = kind;
    ch.probe = std::move(probe);
    channels_.push_back(std::move(ch));
    return channels_.size() - 1;
}

void
Sampler::addSink(std::unique_ptr<TimeSeriesSink> sink)
{
    FP_ASSERT(!headerWritten_,
              "telemetry sink attached after sampling started");
    sinks_.push_back(std::move(sink));
}

void
Sampler::writeMeta(const RunMetadata& meta)
{
    FP_ASSERT(!headerWritten_,
              "run metadata stamped after sampling started");
    for (auto& sink : sinks_)
        sink->writeMeta(meta);
}

void
Sampler::sample(std::int64_t cycle, const std::string& phase)
{
    if (!headerWritten_) {
        const std::vector<std::string> names = channelNames();
        for (auto& sink : sinks_)
            sink->writeHeader(names);
        headerWritten_ = true;
    }

    const std::int64_t elapsed =
        lastSampleCycle_ >= 0 ? cycle - lastSampleCycle_ : 0;
    row_.clear();
    for (Channel& ch : channels_) {
        const double raw = ch.probe();
        double value = raw;
        if (ch.kind != ChannelKind::Gauge) {
            // Counter/Rate: emit the increase since the last sample;
            // a shrinking reading means the underlying counter was
            // reset, so the raw reading is the whole delta.
            const double delta = (ch.hasPrev && raw >= ch.prevRaw)
                ? raw - ch.prevRaw
                : raw;
            if (ch.kind == ChannelKind::Rate) {
                value = elapsed > 0
                    ? delta / static_cast<double>(elapsed)
                    : 0.0;
            } else {
                value = delta;
            }
            ch.prevRaw = raw;
            ch.hasPrev = true;
        }
        row_.push_back(value);
        if (keepInMemory_)
            ch.retained.push_back(Sample{cycle, value});
    }
    for (auto& sink : sinks_)
        sink->writeRow(cycle, phase, row_);
    ++samplesTaken_;
    lastSampleCycle_ = cycle;
}

void
Sampler::flush()
{
    for (auto& sink : sinks_)
        sink->flush();
}

std::vector<std::string>
Sampler::channelNames() const
{
    std::vector<std::string> names;
    names.reserve(channels_.size());
    for (const Channel& ch : channels_)
        names.push_back(ch.name);
    return names;
}

const std::vector<Sample>&
Sampler::series(const std::string& name) const
{
    static const std::vector<Sample> kEmpty;
    for (const Channel& ch : channels_) {
        if (ch.name == name)
            return ch.retained;
    }
    return kEmpty;
}

Sampler::Channel*
Sampler::find(const std::string& name)
{
    for (Channel& ch : channels_) {
        if (ch.name == name)
            return &ch;
    }
    return nullptr;
}

} // namespace footprint
