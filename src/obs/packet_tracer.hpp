/**
 * @file
 * Packet lifecycle tracer: records inject, per-hop VA/SA/ST
 * timestamps, and eject for a configurable prefix of packets, derives
 * per-hop VA/SA stall breakdowns, and writes one JSONL record per
 * packet as it completes.
 *
 * The tracer is wired into Router and Endpoint as a raw pointer that
 * is nullptr when tracing is disabled, so the hot-path cost of the
 * compiled-in hooks is a single predictable branch.
 */

#ifndef FOOTPRINT_OBS_PACKET_TRACER_HPP
#define FOOTPRINT_OBS_PACKET_TRACER_HPP

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "router/flit.hpp"
#include "router/packet_pool.hpp"

namespace footprint {

class ChromeTraceWriter;
struct RunMetadata;

/**
 * Records the lifecycle of the first N packets (by packet id, which
 * traffic sources assign sequentially from 1) and streams completed
 * records to a JSONL sink, a Chrome trace-event timeline, or both.
 *
 * Record schema (one JSON object per line):
 *   {"packet":id,"src":s,"dest":d,"size":flits,"class":"bg|hotspot",
 *    "create":c,"inject":i,"eject":e,"latency":e-c,
 *    "hops":[{"node":n,"arrive":a,"va":v,"st":t,
 *             "va_stall":v-a,"sa_stall":t-v}, ...]}
 * Packets still in flight when the run ends are flushed with
 * "eject":-1 and "complete":false.
 */
class PacketTracer
{
  public:
    /** Trace packets with id in [1, max_packets], borrow @p os. */
    PacketTracer(std::ostream& os, std::uint64_t max_packets);

    /** Trace into a file; fatal() if @p path cannot be opened. */
    PacketTracer(const std::string& path, std::uint64_t max_packets);

    /**
     * Sink-less tracer: records lifecycles without writing JSONL
     * (chrome-trace-only runs and watchdog history lookups).
     */
    explicit PacketTracer(std::uint64_t max_packets);

    /**
     * Also re-emit completed lifecycles onto @p writer (borrowed;
     * nullptr detaches). One slice per hop on a per-packet track.
     */
    void setChromeTrace(ChromeTraceWriter* writer)
    {
        chrome_ = writer;
    }

    /** Stamp run metadata as the first JSONL record. */
    void setMeta(const RunMetadata& meta);

    /**
     * Attach the pool holding per-packet constants (size, timestamps,
     * flow class) that flits reference by Flit::desc; without a pool
     * those record fields keep null-descriptor defaults. Network
     * wires this automatically in attachTelemetry().
     */
    void setPool(const PacketPool* pool) { pool_ = pool; }

    /** Cheap hot-path filter: is @p packet_id being traced? */
    bool
    traced(std::uint64_t packet_id) const
    {
        return packet_id >= 1 && packet_id <= maxPackets_;
    }

    /** Head flit entered a router's input buffer. */
    void onHopArrive(const Flit& flit, int node, std::int64_t cycle);

    /** Head flit won VC allocation at @p node. */
    void onVaGrant(const Flit& flit, int node, std::int64_t cycle);

    /** Head flit won switch allocation and traversed the crossbar. */
    void onSwitchTraverse(const Flit& flit, int node,
                          std::int64_t cycle);

    /** Tail flit drained at the destination endpoint's sink. */
    void onEject(const Flit& flit, int node, std::int64_t cycle);

    /** Write out records of packets that never completed. */
    void flush();

    /**
     * Hop-by-hop history of an in-flight traced packet, one
     * "node@arrive(va=..,st=..)" entry per hop — the watchdog's
     * livelock forensics. Empty when the packet is unknown.
     */
    std::string describe(std::uint64_t packet_id) const;

    std::uint64_t packetsCompleted() const { return completed_; }
    std::uint64_t packetsInFlight() const { return records_.size(); }

  private:
    struct HopRecord
    {
        int node = -1;
        std::int64_t arrive = -1;
        std::int64_t va = -1;
        std::int64_t st = -1;
    };

    struct PacketRecord
    {
        int src = -1;
        int dest = -1;
        int size = 1;
        FlowClass flowClass = FlowClass::Background;
        std::int64_t create = 0;
        std::int64_t inject = -1;
        std::vector<HopRecord> hops;
    };

    PacketRecord& record(const Flit& flit);
    void writeRecord(std::uint64_t id, const PacketRecord& rec,
                     std::int64_t eject);

    std::unique_ptr<std::ofstream> owned_;
    std::ostream* os_;  ///< nullptr for sink-less tracers
    std::uint64_t maxPackets_;
    std::uint64_t completed_ = 0;
    std::unordered_map<std::uint64_t, PacketRecord> records_;
    ChromeTraceWriter* chrome_ = nullptr;
    const PacketPool* pool_ = nullptr;
};

} // namespace footprint

#endif // FOOTPRINT_OBS_PACKET_TRACER_HPP
