/**
 * @file
 * Deadlock/livelock watchdog.
 *
 * The watchdog periodically checks that the network is making forward
 * progress. When it is not — or when the driver asks for a post-mortem
 * at a saturated exit — it builds a wait-for graph over input virtual
 * channels and classifies the stall:
 *
 *  - Deadlock: a knot — a set of VCs from which no wait path reaches
 *    a draining resource (a routing-protocol failure; Duato-based
 *    algorithms must never produce one). A mere cycle is not enough:
 *    waits have OR semantics, so an adaptive-layer cycle with an
 *    escape path out resolves.
 *  - TreeSaturation: VCs are blocked, but every one has a wait path
 *    to a draining resource (an ejection port or a moving VC) — the
 *    expected shape of endpoint congestion under hotspot traffic.
 *
 * A per-packet livelock detector rides along: head flits whose hop
 * count or age exceeds a bound are reported, with the packet's hop
 * history when a PacketTracer is attached.
 */

#ifndef FOOTPRINT_OBS_WATCHDOG_HPP
#define FOOTPRINT_OBS_WATCHDOG_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "router/channel.hpp"

namespace footprint {

class Network;
class PacketTracer;

/**
 * A directed graph over dense node ids with cycle detection; the
 * watchdog's wait-for relation, kept separate so tests can exercise
 * cycle detection on hand-built graphs.
 */
class WaitForGraph
{
  public:
    explicit WaitForGraph(int num_nodes)
        : adj_(static_cast<std::size_t>(num_nodes))
    {}

    int numNodes() const { return static_cast<int>(adj_.size()); }

    void
    addEdge(int from, int to)
    {
        adj_[static_cast<std::size_t>(from)].push_back(to);
        ++numEdges_;
    }

    int numEdges() const { return numEdges_; }

    const std::vector<int>& successors(int node) const
    {
        return adj_[static_cast<std::size_t>(node)];
    }

    /**
     * Find a cycle, returned as the node sequence around it (first
     * node not repeated); empty when the graph is acyclic. When
     * @p within is non-null the search is restricted to that node set.
     */
    std::vector<int> findCycle(
        const std::vector<int>* within = nullptr) const;

    /**
     * Nodes from which no path reaches a drain (a node without
     * outgoing edges), sorted. Wait edges have OR semantics — a VC
     * progresses when ANY resource it waits on frees — so a mere
     * cycle is survivable as long as some alternative leads out (the
     * Duato escape-layer argument); a non-empty unsafe set is a true
     * knot: every wait path from it loops forever.
     */
    std::vector<int> unsafeNodes() const;

  private:
    std::vector<std::vector<int>> adj_;
    int numEdges_ = 0;
};

/** Progress watchdog over a Network. */
class Watchdog
{
  public:
    struct Params
    {
        /** Cycles between progress checks; <= 0 disables tick(). */
        std::int64_t interval = 5000;
        /** Livelock hop bound; 0 derives 2*(width+height). */
        int maxHops = 0;
        /** Livelock age bound in cycles; 0 disables the age check. */
        std::int64_t maxAge = 0;
    };

    /** How a non-progressing network is classified. */
    enum class StallClass {
        None,            ///< network is empty or progressing
        TreeSaturation,  ///< blocked VCs, all wait chains drain
        Deadlock,        ///< cyclic wait-for dependency
    };

    static const char* stallClassName(StallClass c);

    /** One watchdog detection (progress stall or livelock suspect). */
    struct Event
    {
        std::string kind;  ///< "deadlock", "tree_saturation", "livelock"
        std::int64_t cycle = 0;
        std::string detail;
    };

    /** Result of a wait-for-graph classification pass. */
    struct Report
    {
        StallClass stallClass = StallClass::None;
        int blockedVcs = 0;       ///< input VCs with a wait edge
        /** A wait cycle inside the knot when Deadlock (node ids). */
        std::vector<int> cycle;
        std::string detail;
    };

    Watchdog(const Network& net, PacketTracer* tracer,
             const Params& params);

    /**
     * Per-cycle hook: a single compare until the interval elapses,
     * then a progress check. No forward progress across a whole
     * interval with flits resident triggers classification and (if
     * bounds are set) the livelock scan.
     */
    void
    tick(std::int64_t cycle)
    {
        if (params_.interval <= 0 || cycle < nextDue_)
            return;
        check(cycle);
    }

    /**
     * Next cycle at which tick() will run a check (max() when the
     * watchdog is off); skip-ahead horizon clamp, as for the auditor.
     */
    std::int64_t
    nextDueCycle() const
    {
        return params_.interval <= 0
            ? std::numeric_limits<std::int64_t>::max()
            : nextDue_;
    }

    /**
     * Build the wait-for graph over input VCs and classify the current
     * stall state. Safe to call at any cycle boundary.
     */
    Report classify(std::int64_t cycle) const;

    /**
     * Scan buffered head flits for hop-count/age bound violations.
     * @return number of suspect packets found (also recorded).
     */
    std::size_t scanForLivelock(std::int64_t cycle);

    /** True once a cyclic deadlock has been detected. */
    bool deadlockDetected() const { return deadlockDetected_; }

    const std::vector<Event>& events() const { return events_; }

    /** Effective livelock hop bound after auto-derivation. */
    int maxHops() const { return maxHops_; }

    /** Dense wait-for node id of input VC (node, port, vc). */
    int waitNodeId(int node, int port, int vc) const;

    /** Human-readable "(node, port, vc)" name of a wait-for node id. */
    std::string waitNodeName(int id) const;

  private:
    void check(std::int64_t cycle);
    WaitForGraph buildGraph(int* blocked_vcs) const;

    /**
     * True when a credit for (node, output port, vc) is in flight on
     * the link's credit channel: the VC is about to regain a slot, so
     * an instantaneous credits==0 is pipeline latency, not blockage.
     */
    bool creditInFlight(int node, int port, int vc) const;

    const Network* net_;
    PacketTracer* tracer_;
    Params params_;
    /** Credit channel of each (node, output port); indexed densely. */
    std::vector<const CreditChannel*> creditAt_;
    int maxHops_ = 0;
    std::int64_t nextDue_ = 0;
    std::uint64_t lastWork_ = 0;
    bool deadlockDetected_ = false;
    std::vector<Event> events_;
    std::vector<std::uint64_t> livelockReported_;
};

} // namespace footprint

#endif // FOOTPRINT_OBS_WATCHDOG_HPP
