#include "exec/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <tuple>

#include "exec/exec_context.hpp"
#include "network/traffic_manager.hpp"
#include "obs/console.hpp"
#include "obs/run_metadata.hpp"
#include "obs/sink.hpp"
#include "sim/log.hpp"
#include "sim/rng.hpp"

namespace footprint {

namespace {

/**
 * "out.csv" -> "out.job3.csv": per-job artifact paths, so parallel
 * jobs with telemetry enabled never clobber one another's files.
 */
std::string
jobSuffixedPath(const std::string& path, std::size_t job)
{
    const std::string tag = ".job" + std::to_string(job);
    const auto dot = path.find_last_of('.');
    const auto slash = path.find_last_of('/');
    if (dot == std::string::npos
        || (slash != std::string::npos && dot < slash))
        return path + tag;
    return path.substr(0, dot) + tag + path.substr(dot);
}

/**
 * Isolate every output artifact a job's config could write. Telemetry
 * defaults that are empty but implicitly enabled (trace_out with
 * trace_packets > 0, chrome_trace_out with chrome_trace) are pinned to
 * explicit per-job paths too.
 */
void
isolateArtifactPaths(SimConfig& cfg, std::size_t job)
{
    if (cfg.contains("telemetry_out")
        && !cfg.getStr("telemetry_out").empty())
        cfg.set("telemetry_out",
                jobSuffixedPath(cfg.getStr("telemetry_out"), job));
    if (cfg.contains("trace_packets")
        && cfg.getInt("trace_packets") > 0) {
        const std::string base = cfg.contains("trace_out")
                && !cfg.getStr("trace_out").empty()
            ? cfg.getStr("trace_out")
            : std::string("trace.jsonl");
        cfg.set("trace_out", jobSuffixedPath(base, job));
    }
    if (cfg.contains("chrome_trace") && cfg.getBool("chrome_trace")) {
        const std::string base = cfg.contains("chrome_trace_out")
                && !cfg.getStr("chrome_trace_out").empty()
            ? cfg.getStr("chrome_trace_out")
            : std::string("trace.json");
        cfg.set("chrome_trace_out", jobSuffixedPath(base, job));
    }
    if (cfg.contains("dump_on_abort") && cfg.getBool("dump_on_abort"))
        cfg.set("dump_path",
                jobSuffixedPath(cfg.getStr("dump_path"), job));
    if (cfg.contains("timeseries") && cfg.getBool("timeseries")) {
        const std::string base = cfg.contains("timeseries_out")
                && !cfg.getStr("timeseries_out").empty()
            ? cfg.getStr("timeseries_out")
            : std::string("timeseries.jsonl");
        cfg.set("timeseries_out", jobSuffixedPath(base, job));
    }
}

/**
 * Shortest decimal rendering of @p v that round-trips to the same
 * double — readable where possible, bit-faithful always, and a pure
 * function of the value (deterministic artifact bytes).
 */
std::string
jsonDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.15g", v);
    if (std::strtod(buf, nullptr) != v)
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
isoUtcNow()
{
    const std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

/** Ladder interpolation shared with bench::saturationFromLadder. */
double
saturationFromPoints(const std::vector<const JobResult*>& ladder)
{
    double last_good = 0.0;
    for (const JobResult* r : ladder) {
        if (r->point.saturated) {
            return last_good > 0.0
                ? (last_good + r->point.offered) / 2.0
                : r->point.offered / 2.0;
        }
        last_good = r->point.offered;
    }
    return last_good;
}

} // namespace

MeshSize
parseMeshSize(const std::string& label)
{
    MeshSize m;
    int w = 0;
    int h = 0;
    char x = '\0';
    std::istringstream iss(label);
    if (iss >> w) {
        if (iss >> x >> h) {
            if (x != 'x' || w <= 0 || h <= 0 || !iss.eof())
                fatal("malformed mesh size: " + label);
            m.width = w;
            m.height = h;
            return m;
        }
        if (w <= 0)
            fatal("malformed mesh size: " + label);
        m.width = m.height = w; // "8" means square 8x8
        return m;
    }
    fatal("malformed mesh size: " + label);
    return m;
}

std::vector<std::string>
splitList(const std::string& csv)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream iss(csv);
    while (std::getline(iss, item, ',')) {
        const auto begin = item.find_first_not_of(" \t");
        if (begin == std::string::npos)
            continue;
        const auto end = item.find_last_not_of(" \t");
        out.push_back(item.substr(begin, end - begin + 1));
    }
    return out;
}

std::vector<double>
parseRateSpec(const std::string& spec)
{
    std::vector<double> rates;
    if (spec.find(':') != std::string::npos) {
        double lo = 0.0;
        double hi = 0.0;
        int count = 0;
        char c1 = '\0';
        char c2 = '\0';
        std::istringstream iss(spec);
        if (!(iss >> lo >> c1 >> hi >> c2 >> count) || c1 != ':'
            || c2 != ':' || count < 2 || !iss.eof())
            fatal("malformed rate spec (want lo:hi:count): " + spec);
        return linspace(lo, hi, count);
    }
    for (const std::string& item : splitList(spec)) {
        char* end = nullptr;
        const double v = std::strtod(item.c_str(), &end);
        if (end == item.c_str() || *end != '\0' || v <= 0.0)
            fatal("malformed rate in list: " + item);
        rates.push_back(v);
    }
    if (rates.empty())
        fatal("empty rate spec: " + spec);
    return rates;
}

std::vector<SimJob>
SweepRunner::expand(const SweepSpec& spec)
{
    FP_ASSERT(!spec.rates.empty(), "sweep needs at least one rate");
    FP_ASSERT(!spec.routings.empty(),
              "sweep needs at least one routing algorithm");
    FP_ASSERT(!spec.meshes.empty(), "sweep needs at least one mesh");
    FP_ASSERT(!spec.traffics.empty(),
              "sweep needs at least one traffic pattern");
    FP_ASSERT(spec.seeds >= 1, "sweep needs at least one seed");

    const auto base_seed =
        static_cast<std::uint64_t>(spec.base.getInt("seed"));
    std::vector<SimJob> jobs;
    jobs.reserve(spec.meshes.size() * spec.routings.size()
                 * spec.traffics.size()
                 * static_cast<std::size_t>(spec.seeds)
                 * (spec.rates.size() + 1));

    auto materialize = [&](const MeshSize& mesh,
                           const std::string& routing,
                           const std::string& traffic, int replicate,
                           bool probe, double rate) {
        SimJob job;
        job.index = jobs.size();
        job.mesh = mesh;
        job.routing = routing;
        job.traffic = traffic;
        job.replicate = replicate;
        job.probe = probe;
        job.rate = rate;
        job.seed = deriveStreamSeed(base_seed, job.index);
        job.cfg = spec.base;
        job.cfg.setInt("mesh_width", mesh.width);
        job.cfg.setInt("mesh_height", mesh.height);
        job.cfg.set("routing", routing);
        job.cfg.set("traffic", traffic);
        job.cfg.setDouble("injection_rate", rate);
        job.cfg.setInt("seed", static_cast<std::int64_t>(job.seed));
        // A per-job status line would interleave across workers; the
        // sweep-level console owns the display.
        job.cfg.setBool("console", false);
        isolateArtifactPaths(job.cfg, job.index);
        jobs.push_back(std::move(job));
    };

    for (const MeshSize& mesh : spec.meshes) {
        for (const std::string& routing : spec.routings) {
            for (const std::string& traffic : spec.traffics) {
                for (int rep = 0; rep < spec.seeds; ++rep) {
                    materialize(mesh, routing, traffic, rep,
                                /*probe=*/true, spec.probeRate);
                    for (double rate : spec.rates)
                        materialize(mesh, routing, traffic, rep,
                                    /*probe=*/false, rate);
                }
            }
        }
    }
    return jobs;
}

SweepResult
SweepRunner::run(const SweepSpec& spec)
{
    std::vector<SimJob> jobs = expand(spec);

    const auto start = std::chrono::steady_clock::now();
    const int total = static_cast<int>(jobs.size());
    auto done = std::make_shared<std::atomic<int>>(0);
    RunConsole* console = console_;
    if (console)
        console->updateSweep(0, total);
    std::vector<std::function<JobResult()>> tasks;
    tasks.reserve(jobs.size());
    for (const SimJob& job : jobs) {
        tasks.push_back([&job, console, done, total]() {
            const RunStats stats = runExperiment(job.cfg);
            JobResult r;
            r.index = job.index;
            r.mesh = job.mesh;
            r.routing = job.routing;
            r.traffic = job.traffic;
            r.replicate = job.replicate;
            r.probe = job.probe;
            r.seed = job.seed;
            r.point.offered = job.rate;
            r.point.accepted = stats.acceptedFlitsPerNodeCycle;
            r.point.latency = stats.avgLatency();
            // Provisional: the latency criterion is applied once the
            // cell's zero-load probe is known.
            r.point.saturated = stats.saturated;
            r.p50 = stats.latencyHist.percentile(0.50);
            r.p99 = stats.latencyHist.percentile(0.99);
            r.hops = stats.hops.mean();
            r.cycles = stats.cyclesRun;
            r.drained = stats.drained;
            r.stallClass = stats.stallClass;
            r.steadyCycle = stats.steadyStateCycle;
            r.satOnsetCycle = stats.saturationOnsetCycle;
            if (console)
                console->updateSweep(done->fetch_add(1) + 1, total);
            return r;
        });
    }

    SweepResult result;
    result.jobs = ctx_.map(std::move(tasks));
    const auto end = std::chrono::steady_clock::now();

    // Classify every rate point against its cell+replicate zero-load
    // probe, then reduce each cell's ladders to one saturation point.
    using CellKey = std::tuple<int, int, std::string, std::string>;
    std::map<std::pair<CellKey, int>, double> zero_load;
    for (const JobResult& r : result.jobs) {
        if (r.probe) {
            zero_load[{CellKey{r.mesh.width, r.mesh.height, r.routing,
                               r.traffic},
                       r.replicate}] = r.point.latency;
        }
    }
    std::map<CellKey, std::vector<std::vector<const JobResult*>>>
        ladders;
    std::map<CellKey, double> zero_load_sum;
    for (JobResult& r : result.jobs) {
        const CellKey key{r.mesh.width, r.mesh.height, r.routing,
                          r.traffic};
        if (r.probe) {
            auto& cell = ladders[key]; // ensure cell exists in order
            cell.emplace_back();
            zero_load_sum[key] += r.point.latency;
            continue;
        }
        const double zl = zero_load.at({key, r.replicate});
        if (!r.point.saturated) {
            r.point.saturated = zl > 0.0
                && r.point.latency > spec.latencyFactor * zl;
        }
        ladders.at(key).back().push_back(&r);
    }
    for (const auto& [key, replicate_ladders] : ladders) {
        SaturationPoint sp;
        sp.mesh.width = std::get<0>(key);
        sp.mesh.height = std::get<1>(key);
        sp.routing = std::get<2>(key);
        sp.traffic = std::get<3>(key);
        double sum = 0.0;
        for (const auto& ladder : replicate_ladders)
            sum += saturationFromPoints(ladder);
        const auto n =
            static_cast<double>(replicate_ladders.size());
        sp.throughput = sum / n;
        sp.zeroLoadLatency = zero_load_sum.at(key) / n;
        result.saturation.push_back(sp);
    }

    result.baseSeed =
        static_cast<std::uint64_t>(spec.base.getInt("seed"));
    result.jobsUsed = ctx_.jobs();
    result.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    result.jobsPerSec = result.wallSeconds > 0.0
        ? static_cast<double>(result.jobs.size()) / result.wallSeconds
        : 0.0;
    return result;
}

std::string
benchResultsJson(const SweepSpec& spec, const SweepResult& result,
                 bool include_timing)
{
    const RunMetadata meta = RunMetadata::fromConfig(spec.base);
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"footprint.bench/1\",\n";

    // Uniform self-describing header shared by every artifact family
    // (same shape as the CSV/JSONL/profile/heatmap/timeseries meta).
    os << "  \"meta\": " << meta.toJson() << ",\n";

    // Deterministic run identity.
    os << "  \"run\": {\"git\": \""
       << jsonEscape(RunMetadata::buildVersion())
       << "\", \"config_hash\": \"" << jsonEscape(meta.configHash)
       << "\", \"base_seed\": " << result.baseSeed
       << ", \"total_jobs\": " << result.jobs.size() << "},\n";

    // Wall-clock metadata, the only schedule-dependent content; the
    // determinism gate compares documents with this object omitted.
    if (include_timing) {
        os << "  \"timing\": {\"created\": \"" << isoUtcNow()
           << "\", \"jobs\": " << result.jobsUsed
           << ", \"wall_seconds\": " << jsonDouble(result.wallSeconds)
           << ", \"jobs_per_sec\": " << jsonDouble(result.jobsPerSec)
           << "},\n";
    }

    os << "  \"sweep\": {\"rates\": [";
    for (std::size_t i = 0; i < spec.rates.size(); ++i)
        os << (i ? ", " : "") << jsonDouble(spec.rates[i]);
    os << "], \"routings\": [";
    for (std::size_t i = 0; i < spec.routings.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(spec.routings[i])
           << '"';
    os << "], \"meshes\": [";
    for (std::size_t i = 0; i < spec.meshes.size(); ++i)
        os << (i ? ", " : "") << '"' << spec.meshes[i].label() << '"';
    os << "], \"traffics\": [";
    for (std::size_t i = 0; i < spec.traffics.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(spec.traffics[i])
           << '"';
    os << "], \"seeds\": " << spec.seeds << ", \"latency_factor\": "
       << jsonDouble(spec.latencyFactor) << "},\n";

    os << "  \"results\": [\n";
    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        const JobResult& r = result.jobs[i];
        os << "    {\"job\": " << r.index << ", \"mesh\": \""
           << r.mesh.label() << "\", \"routing\": \""
           << jsonEscape(r.routing) << "\", \"traffic\": \""
           << jsonEscape(r.traffic)
           << "\", \"replicate\": " << r.replicate << ", \"probe\": "
           << (r.probe ? "true" : "false") << ", \"seed\": " << r.seed
           << ", \"offered\": " << jsonDouble(r.point.offered)
           << ", \"accepted\": " << jsonDouble(r.point.accepted)
           << ", \"latency\": " << jsonDouble(r.point.latency)
           << ", \"p50\": " << jsonDouble(r.p50) << ", \"p99\": "
           << jsonDouble(r.p99) << ", \"hops\": " << jsonDouble(r.hops)
           << ", \"cycles\": " << r.cycles << ", \"drained\": "
           << (r.drained ? "true" : "false") << ", \"saturated\": "
           << (r.point.saturated ? "true" : "false")
           << ", \"stall\": \"" << jsonEscape(r.stallClass)
           << "\", \"steady_cycle\": " << r.steadyCycle
           << ", \"sat_onset\": " << r.satOnsetCycle << "}"
           << (i + 1 < result.jobs.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"saturation\": [\n";
    for (std::size_t i = 0; i < result.saturation.size(); ++i) {
        const SaturationPoint& sp = result.saturation[i];
        os << "    {\"mesh\": \"" << sp.mesh.label()
           << "\", \"routing\": \"" << jsonEscape(sp.routing)
           << "\", \"traffic\": \"" << jsonEscape(sp.traffic)
           << "\", \"throughput\": " << jsonDouble(sp.throughput)
           << ", \"zero_load_latency\": "
           << jsonDouble(sp.zeroLoadLatency) << "}"
           << (i + 1 < result.saturation.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

void
writeBenchResults(const std::string& path, const SweepSpec& spec,
                  const SweepResult& result)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open bench results file: " + path);
    out << benchResultsJson(spec, result);
    if (!out)
        fatal("failed writing bench results file: " + path);
}

} // namespace footprint
