/**
 * @file
 * Fixed-size worker thread pool behind the parallel experiment engine.
 *
 * Tasks are executed in FIFO submission order (a single-threaded pool
 * is therefore a plain deferred executor), exceptions propagate to the
 * caller through the returned futures, and destruction drains every
 * already-submitted task before joining — submitted work is never
 * dropped.
 */

#ifndef FOOTPRINT_EXEC_THREAD_POOL_HPP
#define FOOTPRINT_EXEC_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace footprint {

class ThreadPool
{
  public:
    /**
     * Start @p threads workers; @p threads == 0 uses the hardware
     * concurrency (at least 1).
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue, then stops and joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue @p fn and return a future for its result. An exception
     * thrown by @p fn is captured and rethrown by future::get().
     */
    template <typename Fn>
    std::future<std::invoke_result_t<Fn>>
    submit(Fn&& fn)
    {
        using R = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> result = task->get_future();
        post([task]() { (*task)(); });
        return result;
    }

    /** Enqueue fire-and-forget work (FIFO with submit()). */
    void post(std::function<void()> fn);

    /**
     * Run fn(begin, end) over every chunk of [0, n) and return when
     * all chunks are done. Chunking is static: the range is split into
     * @p chunks near-equal contiguous pieces (0 = one per worker plus
     * one for the caller, the default); pass chunks == n for
     * item-granularity chunks that the FIFO queue balances
     * dynamically. The calling thread executes chunk 0 itself, so a
     * pool of W workers runs up to W + 1 chunks concurrently.
     *
     * Exceptions thrown by @p fn are captured per chunk; the first (in
     * chunk order) is rethrown after every chunk has finished.
     *
     * Chunks are guaranteed to be *concurrently resident* — required
     * when @p fn synchronizes across chunks with a barrier — only on
     * an otherwise-idle pool with chunks <= size() + 1. Calls must
     * not overlap on one pool: the chunk countdown is pool state (it
     * must outlive the call's stack frame — the last worker's wakeup
     * notification can land after the caller has already observed
     * completion and returned).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t, std::size_t)>& fn,
                     std::size_t chunks = 0);

    /** Hardware concurrency, clamped to at least 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    /** parallelFor's chunk countdown; see that method's lifetime note. */
    std::atomic<std::size_t> forRemaining_{0};
};

} // namespace footprint

#endif // FOOTPRINT_EXEC_THREAD_POOL_HPP
