/**
 * @file
 * Fixed-size worker thread pool behind the parallel experiment engine.
 *
 * Tasks are executed in FIFO submission order (a single-threaded pool
 * is therefore a plain deferred executor), exceptions propagate to the
 * caller through the returned futures, and destruction drains every
 * already-submitted task before joining — submitted work is never
 * dropped.
 */

#ifndef FOOTPRINT_EXEC_THREAD_POOL_HPP
#define FOOTPRINT_EXEC_THREAD_POOL_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace footprint {

class ThreadPool
{
  public:
    /**
     * Start @p threads workers; @p threads == 0 uses the hardware
     * concurrency (at least 1).
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue, then stops and joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue @p fn and return a future for its result. An exception
     * thrown by @p fn is captured and rethrown by future::get().
     */
    template <typename Fn>
    std::future<std::invoke_result_t<Fn>>
    submit(Fn&& fn)
    {
        using R = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> result = task->get_future();
        post([task]() { (*task)(); });
        return result;
    }

    /** Enqueue fire-and-forget work (FIFO with submit()). */
    void post(std::function<void()> fn);

    /** Hardware concurrency, clamped to at least 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

} // namespace footprint

#endif // FOOTPRINT_EXEC_THREAD_POOL_HPP
