/**
 * @file
 * ExecContext — the execution policy handed to experiment drivers.
 *
 * Wraps an optional ThreadPool behind one ordered fan-out primitive,
 * map(): run a batch of independent closures and return their results
 * in submission order. A context with jobs == 1 owns no pool and runs
 * everything inline, so sequential and parallel execution share one
 * code path in the drivers.
 *
 * Determinism contract: map() affects only *when* tasks run, never
 * what they compute or the order results are returned in. Drivers
 * built on it (latencyThroughputCurve, saturationThroughput,
 * SweepRunner) produce bit-identical results for any jobs value as
 * long as each task is itself deterministic — which simulation jobs
 * are, because every one owns its private SimConfig, RNG streams, and
 * telemetry sinks.
 */

#ifndef FOOTPRINT_EXEC_EXEC_CONTEXT_HPP
#define FOOTPRINT_EXEC_EXEC_CONTEXT_HPP

#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "exec/thread_pool.hpp"

namespace footprint {

class ExecContext
{
  public:
    /**
     * @param jobs worker count; 0 means hardware concurrency. A
     * context with one job runs tasks inline on the calling thread.
     */
    explicit ExecContext(unsigned jobs = 0);

    /** Effective parallelism (>= 1). */
    unsigned jobs() const { return jobs_; }

    bool parallel() const { return jobs_ > 1; }

    /**
     * Run every task and return the results in task order. Parallel
     * contexts execute tasks on the pool; the first exception (in task
     * order) is rethrown after all tasks have finished, so no job is
     * abandoned mid-run.
     */
    template <typename T>
    std::vector<T>
    map(std::vector<std::function<T()>> tasks)
    {
        std::vector<T> results;
        results.reserve(tasks.size());
        if (!pool_) {
            for (auto& task : tasks)
                results.push_back(task());
            return results;
        }
        std::vector<std::future<T>> futures;
        futures.reserve(tasks.size());
        for (auto& task : tasks)
            futures.push_back(pool_->submit(std::move(task)));
        std::exception_ptr first_error;
        for (auto& f : futures) {
            try {
                results.push_back(f.get());
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        if (first_error)
            std::rethrow_exception(first_error);
        return results;
    }

    /** Sequential context (jobs == 1), for delegating legacy APIs. */
    static ExecContext& sequential();

  private:
    unsigned jobs_ = 1;
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace footprint

#endif // FOOTPRINT_EXEC_EXEC_CONTEXT_HPP
