/**
 * @file
 * ExecContext — the execution policy handed to experiment drivers.
 *
 * Wraps an optional ThreadPool behind one ordered fan-out primitive,
 * map(): run a batch of independent closures and return their results
 * in submission order. A context with jobs == 1 owns no pool and runs
 * everything inline, so sequential and parallel execution share one
 * code path in the drivers.
 *
 * Determinism contract: map() affects only *when* tasks run, never
 * what they compute or the order results are returned in. Drivers
 * built on it (latencyThroughputCurve, saturationThroughput,
 * SweepRunner) produce bit-identical results for any jobs value as
 * long as each task is itself deterministic — which simulation jobs
 * are, because every one owns its private SimConfig, RNG streams, and
 * telemetry sinks.
 */

#ifndef FOOTPRINT_EXEC_EXEC_CONTEXT_HPP
#define FOOTPRINT_EXEC_EXEC_CONTEXT_HPP

#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "exec/thread_pool.hpp"

namespace footprint {

class ExecContext
{
  public:
    /**
     * @param jobs worker count; 0 means hardware concurrency. A
     * context with one job runs tasks inline on the calling thread.
     */
    explicit ExecContext(unsigned jobs = 0);

    /** Effective parallelism (>= 1). */
    unsigned jobs() const { return jobs_; }

    bool parallel() const { return jobs_ > 1; }

    /**
     * Run every task and return the results in task order. Parallel
     * contexts fan out through ThreadPool::parallelFor with
     * item-granularity chunks — simulation jobs vary wildly in
     * duration (a saturated ladder point costs many times a zero-load
     * one), so per-item chunks let the pool's FIFO queue balance load
     * dynamically while the calling thread works instead of sleeping
     * on futures. The first exception (in task order) is rethrown
     * after all tasks have finished, so no job is abandoned mid-run.
     */
    template <typename T>
    std::vector<T>
    map(std::vector<std::function<T()>> tasks)
    {
        const std::size_t n = tasks.size();
        std::vector<T> results;
        results.reserve(n);
        if (!pool_) {
            for (auto& task : tasks)
                results.push_back(task());
            return results;
        }
        std::vector<std::optional<T>> staging(n);
        std::vector<std::exception_ptr> errors(n);
        pool_->parallelFor(
            n,
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    try {
                        staging[i].emplace(tasks[i]());
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                }
            },
            /*chunks=*/n);
        for (std::size_t i = 0; i < n; ++i) {
            if (errors[i])
                std::rethrow_exception(errors[i]);
        }
        for (std::size_t i = 0; i < n; ++i)
            results.push_back(std::move(*staging[i]));
        return results;
    }

    /** Sequential context (jobs == 1), for delegating legacy APIs. */
    static ExecContext& sequential();

  private:
    unsigned jobs_ = 1;
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace footprint

#endif // FOOTPRINT_EXEC_EXEC_CONTEXT_HPP
