/**
 * @file
 * SweepRunner — the parallel experiment engine behind the paper's
 * figure sweeps and the CI benchmark gate.
 *
 * A SweepSpec describes a grid of independent simulations (offered
 * rates x routing algorithms x mesh sizes x traffic patterns x seed
 * replicates). expand() flattens it, in a fixed row-major order, into
 * SimJobs; each job owns a private SimConfig, an RNG seed derived via
 * SplitMix64 from the base seed and the job index, and its own
 * telemetry artifact paths. run() executes the jobs on an ExecContext
 * and reassembles results in job order, so the output — including the
 * exported footprint.bench/1 JSON, minus wall-clock metadata — is
 * bit-identical for any thread count or schedule.
 */

#ifndef FOOTPRINT_EXEC_SWEEP_RUNNER_HPP
#define FOOTPRINT_EXEC_SWEEP_RUNNER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "network/sweep.hpp"
#include "sim/config.hpp"

namespace footprint {

class ExecContext;
class RunConsole;

/** One mesh size of a sweep. */
struct MeshSize
{
    int width = 8;
    int height = 8;

    std::string
    label() const
    {
        return std::to_string(width) + "x" + std::to_string(height);
    }
};

/** The experiment grid one SweepRunner::run expands and executes. */
struct SweepSpec
{
    /** Baseline configuration every job derives from. */
    SimConfig base;
    /** Offered rates (flits/node/cycle); one job per rate per cell. */
    std::vector<double> rates;
    /** Routing algorithms ("routing" values). */
    std::vector<std::string> routings;
    /** Mesh sizes. */
    std::vector<MeshSize> meshes;
    /** Traffic patterns ("traffic" values). */
    std::vector<std::string> traffics{"uniform"};
    /** Seed replicates per (mesh, routing, traffic, rate) cell. */
    int seeds = 1;
    /** Saturation criterion: latency > factor x zero-load latency. */
    double latencyFactor = 3.0;
    /** Probe rate of the per-cell zero-load job. */
    double probeRate = 0.02;
};

/** One fully materialized simulation of a sweep. */
struct SimJob
{
    std::size_t index = 0; ///< position in expansion order
    MeshSize mesh;
    std::string routing;
    std::string traffic;
    int replicate = 0;     ///< seed replicate [0, spec.seeds)
    bool probe = false;    ///< zero-load probe (not a curve point)
    double rate = 0.0;     ///< offered rate (probeRate for probes)
    std::uint64_t seed = 0; ///< deriveStreamSeed(base_seed, index)
    SimConfig cfg;         ///< private, ready-to-run configuration
};

/** Result of one SimJob. */
struct JobResult
{
    // Job identity (copied so results are self-describing).
    std::size_t index = 0;
    MeshSize mesh;
    std::string routing;
    std::string traffic;
    int replicate = 0;
    bool probe = false;
    std::uint64_t seed = 0;

    CurvePoint point;      ///< offered/accepted/latency/saturated
    double p50 = 0.0;      ///< median packet latency
    double p99 = 0.0;      ///< tail packet latency
    double hops = 0.0;     ///< mean hop count
    std::int64_t cycles = 0;
    bool drained = false;
    std::string stallClass = "none";
    /** Steady-state cycle from the flight recorder (-1 = off/never). */
    std::int64_t steadyCycle = -1;
    /** Saturation-onset cycle from the flight recorder (-1 = none). */
    std::int64_t satOnsetCycle = -1;
};

/**
 * Saturation throughput of one (mesh, routing, traffic) cell,
 * ladder-interpolated per replicate and averaged across replicates.
 */
struct SaturationPoint
{
    MeshSize mesh;
    std::string routing;
    std::string traffic;
    double throughput = 0.0;
    double zeroLoadLatency = 0.0;
};

/** Everything one sweep produced. */
struct SweepResult
{
    std::vector<JobResult> jobs;          ///< in job-index order
    std::vector<SaturationPoint> saturation;
    std::uint64_t baseSeed = 0;
    unsigned jobsUsed = 1;                ///< worker threads
    double wallSeconds = 0.0;             ///< wall clock of run()
    double jobsPerSec = 0.0;              ///< jobs / wallSeconds
};

class SweepRunner
{
  public:
    explicit SweepRunner(ExecContext& ctx) : ctx_(ctx) {}

    /**
     * Show live per-job progress on @p console while run() executes
     * (nullptr = silent). The console is display-only and updated
     * from worker threads through its internal lock, so artifact
     * bytes are unaffected. Must outlive run().
     */
    void attachConsole(RunConsole* console) { console_ = console; }

    /**
     * Flatten @p spec into jobs in the canonical order: mesh, then
     * routing, then traffic, then replicate, then (zero-load probe,
     * rates ascending in spec order). The order is part of the
     * determinism contract — job index feeds seed derivation.
     */
    static std::vector<SimJob> expand(const SweepSpec& spec);

    /** Execute every job of @p spec and assemble the results. */
    SweepResult run(const SweepSpec& spec);

  private:
    ExecContext& ctx_;
    RunConsole* console_ = nullptr;
};

/**
 * Render @p result as a schema-versioned footprint.bench/1 JSON
 * document (the repo's canonical BENCH_*.json format; see README).
 * When @p include_timing is false the wall-clock fields ("created",
 * "wall_seconds", "jobs_per_sec") are omitted, leaving only the
 * deterministic payload — the form the CI determinism gate compares
 * across thread counts.
 */
std::string benchResultsJson(const SweepSpec& spec,
                             const SweepResult& result,
                             bool include_timing = true);

/** Write benchResultsJson to @p path; fatal() if unwritable. */
void writeBenchResults(const std::string& path, const SweepSpec& spec,
                       const SweepResult& result);

/**
 * Parse "8x8" / "16x8"-style mesh labels (fatal() on malformed input);
 * shared by the sweep CLI and bench drivers.
 */
MeshSize parseMeshSize(const std::string& label);

/** Split "a,b,c" into trimmed non-empty elements. */
std::vector<std::string> splitList(const std::string& csv);

/**
 * Parse a rate specification: either an explicit comma list
 * ("0.05,0.1,0.2") or an inclusive linspace "lo:hi:count"
 * ("0.05:0.4:6"). fatal() on malformed input.
 */
std::vector<double> parseRateSpec(const std::string& spec);

} // namespace footprint

#endif // FOOTPRINT_EXEC_SWEEP_RUNNER_HPP
