/**
 * @file
 * Reusable spin/futex barrier for phase-synchronized worker crews.
 *
 * A SpinBarrier rendezvouses a fixed number of parties; every
 * arriveAndWait() blocks until all parties of the current round have
 * arrived, then releases them together. Rounds are tracked by an epoch
 * counter (a counting variant of sense reversal), so the barrier is
 * immediately reusable: a thread racing ahead into the next round
 * cannot confuse a straggler still leaving the previous one.
 *
 * Waiters spin briefly (cheap when all parties run on their own core
 * and phases are microseconds apart, as in sharded network stepping)
 * and then park on the epoch word via C++20 atomic wait — a futex on
 * Linux — so an oversubscribed run (more parties than cores) degrades
 * to sleeping instead of burning whole timeslices. When the barrier is
 * constructed with more parties than hardware threads the spin phase
 * is skipped entirely: spinning can only delay the thread everyone is
 * waiting for.
 *
 * Memory ordering: every write made before arriveAndWait() by any
 * party is visible to every party after it returns (release/acquire
 * through the arrival counter and the epoch word).
 */

#ifndef FOOTPRINT_EXEC_SPIN_BARRIER_HPP
#define FOOTPRINT_EXEC_SPIN_BARRIER_HPP

#include <atomic>
#include <cstdint>
#include <thread>

namespace footprint {

class SpinBarrier
{
  public:
    explicit SpinBarrier(int parties = 1) { reset(parties); }

    SpinBarrier(const SpinBarrier&) = delete;
    SpinBarrier& operator=(const SpinBarrier&) = delete;

    /**
     * Set the party count for subsequent rounds. Must not be called
     * while any thread is inside arriveAndWait().
     */
    void
    reset(int parties)
    {
        parties_ = parties < 1 ? 1 : parties;
        unsigned hw = std::thread::hardware_concurrency();
        if (hw == 0)
            hw = 1;
        spinLimit_ =
            static_cast<unsigned>(parties_) <= hw ? kSpinIters : 0;
    }

    int parties() const { return parties_; }

    /** Block until all parties have arrived at this round. */
    void
    arriveAndWait()
    {
        const std::uint32_t epoch =
            epoch_.load(std::memory_order_relaxed);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1
            == parties_) {
            // Last arrival: open the next round. The counter reset is
            // ordered before the epoch bump, so a party observing the
            // new epoch can immediately arrive at the next round.
            arrived_.store(0, std::memory_order_relaxed);
            epoch_.fetch_add(1, std::memory_order_release);
            epoch_.notify_all();
            return;
        }
        for (int i = 0; i < spinLimit_; ++i) {
            if (epoch_.load(std::memory_order_acquire) != epoch)
                return;
            cpuRelax();
        }
        while (epoch_.load(std::memory_order_acquire) == epoch)
            epoch_.wait(epoch, std::memory_order_acquire);
    }

  private:
    static constexpr int kSpinIters = 4096;

    static void
    cpuRelax()
    {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield");
#else
        std::this_thread::yield();
#endif
    }

    std::atomic<std::uint32_t> epoch_{0};
    std::atomic<int> arrived_{0};
    int parties_ = 1;
    int spinLimit_ = kSpinIters;
};

} // namespace footprint

#endif // FOOTPRINT_EXEC_SPIN_BARRIER_HPP
