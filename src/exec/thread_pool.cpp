#include "exec/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "sim/log.hpp"

namespace footprint {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> fn)
{
    FP_ASSERT(fn != nullptr, "ThreadPool::post needs a callable");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        FP_ASSERT(!stopping_,
                  "ThreadPool::post after shutdown started");
        queue_.push_back(std::move(fn));
    }
    wake_.notify_one();
}

void
ThreadPool::parallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t chunks)
{
    FP_ASSERT(fn != nullptr, "ThreadPool::parallelFor needs a callable");
    if (n == 0)
        return;
    std::size_t nchunks = chunks == 0 ? size() + std::size_t{1} : chunks;
    if (nchunks > n)
        nchunks = n;
    if (nchunks <= 1) {
        fn(0, n);
        return;
    }

    // Lifetime discipline: the caller returns as soon as it observes
    // the countdown at zero, which can be *before* the last worker
    // executes its post-decrement notify. So nothing a chunk touches
    // after its decrement may live on this stack frame: the countdown
    // is pool state, and runChunk captures everything by value
    // (posted copies own their captures), so the only post-decrement
    // reads are the task's own closure and the pool itself — both of
    // which outlive the call. errors/fn are only touched before the
    // decrement, and the acquire load below pairs with the acq_rel
    // decrements to publish the error slots back to the caller. A
    // stale notify landing in a later call is a harmless spurious
    // wake (the wait loop re-checks).
    std::vector<std::exception_ptr> errors(nchunks);
    forRemaining_.store(nchunks, std::memory_order_relaxed);
    auto runChunk = [pool = this, fnp = &fn, errs = errors.data(), n,
                     nchunks](std::size_t c) {
        try {
            (*fnp)(c * n / nchunks, (c + 1) * n / nchunks);
        } catch (...) {
            errs[c] = std::current_exception();
        }
        if (pool->forRemaining_.fetch_sub(
                1, std::memory_order_acq_rel)
            == 1)
            pool->forRemaining_.notify_all();
    };
    for (std::size_t c = 1; c < nchunks; ++c)
        post([runChunk, c]() { runChunk(c); });
    runChunk(0);
    for (std::size_t left =
             forRemaining_.load(std::memory_order_acquire);
         left != 0;
         left = forRemaining_.load(std::memory_order_acquire))
        forRemaining_.wait(left, std::memory_order_acquire);

    for (std::size_t c = 0; c < nchunks; ++c) {
        if (errors[c])
            std::rethrow_exception(errors[c]);
    }
}

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this]() { return stopping_ || !queue_.empty(); });
            // Drain-before-exit: a stopping pool still runs every task
            // that was submitted before shutdown began.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // Exceptions are captured by the packaged_task wrapper from
        // submit(); a throwing post()ed task would terminate, exactly
        // like a throwing detached thread.
        task();
    }
}

} // namespace footprint
