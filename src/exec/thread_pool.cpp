#include "exec/thread_pool.hpp"

#include "sim/log.hpp"

namespace footprint {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> fn)
{
    FP_ASSERT(fn != nullptr, "ThreadPool::post needs a callable");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        FP_ASSERT(!stopping_,
                  "ThreadPool::post after shutdown started");
        queue_.push_back(std::move(fn));
    }
    wake_.notify_one();
}

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this]() { return stopping_ || !queue_.empty(); });
            // Drain-before-exit: a stopping pool still runs every task
            // that was submitted before shutdown began.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // Exceptions are captured by the packaged_task wrapper from
        // submit(); a throwing post()ed task would terminate, exactly
        // like a throwing detached thread.
        task();
    }
}

} // namespace footprint
