#include "exec/exec_context.hpp"

namespace footprint {

ExecContext::ExecContext(unsigned jobs)
    : jobs_(jobs == 0 ? ThreadPool::hardwareThreads() : jobs)
{
    if (jobs_ > 1)
        pool_ = std::make_unique<ThreadPool>(jobs_);
}

ExecContext&
ExecContext::sequential()
{
    // Stateless (no pool), so sharing one instance across threads is
    // safe.
    static ExecContext ctx(1);
    return ctx;
}

} // namespace footprint
