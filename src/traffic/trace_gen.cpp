#include "traffic/trace_gen.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "sim/rng.hpp"

namespace footprint {

std::vector<AppProfile>
parsecProfiles()
{
    // Loads and destination skews are calibrated to the qualitative
    // per-application behaviour the paper reports in Fig. 10:
    //  - fluidanimate: heavy traffic, very diverse destinations
    //    (lowest purity ~10%) -> largest Footprint benefit;
    //  - bodytrack: concentrated sharing (highest purity ~32%) ->
    //    smallest opportunity;
    //  - blackscholes / swaptions: too little traffic to matter;
    //  - canneal / x264: moderate, fairly uniform traffic.
    // Intensities are chosen so that co-scheduling two heavy apps
    // drives the 8x8 baseline near saturation (the paper stresses the
    // network by executing two workloads simultaneously).
    return {
        {"blackscholes", 0.05, 150, 600, 0.50, 2, 1, 5},
        {"bodytrack",    0.28, 300, 200, 0.50, 4, 1, 5},
        {"canneal",      0.34, 400, 150, 0.20, 8, 1, 5},
        {"dedup",        0.26, 250, 250, 0.40, 4, 1, 5},
        {"ferret",       0.30, 300, 200, 0.35, 4, 1, 5},
        {"fluidanimate", 0.44, 500, 100, 0.10, 16, 1, 5},
        {"freqmine",     0.20, 200, 300, 0.45, 4, 1, 5},
        {"swaptions",    0.06, 150, 500, 0.50, 2, 1, 5},
        {"vips",         0.26, 250, 200, 0.30, 4, 1, 5},
        {"x264",         0.22, 200, 250, 0.25, 8, 1, 5},
    };
}

AppProfile
parsecProfile(const std::string& name)
{
    for (const AppProfile& p : parsecProfiles()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown PARSEC profile: " + name);
}

namespace {

/** Evenly spread "home" nodes over the mesh for shared traffic. */
std::vector<int>
homeNodes(const Mesh& mesh, int count)
{
    std::vector<int> homes;
    const int n = mesh.numNodes();
    for (int i = 0; i < count; ++i) {
        // Stride through the node space; offset by half a stride so
        // homes avoid clustering at node 0.
        const int node = (i * n / count + n / (2 * count)) % n;
        homes.push_back(node);
    }
    return homes;
}

} // namespace

std::vector<TraceEvent>
generateTrace(const Mesh& mesh, const AppProfile& profile,
              std::int64_t length, std::uint64_t seed)
{
    FP_ASSERT(profile.minPacket >= 1
                  && profile.maxPacket >= profile.minPacket,
              "bad packet size range in profile");
    Rng rng(seed ^ 0xf007f007f007ULL);
    const int n = mesh.numNodes();
    const std::vector<int> homes =
        homeNodes(mesh, std::max(1, profile.numSharedHotspots));

    const double mean_size =
        (profile.minPacket + profile.maxPacket) / 2.0;
    const double pkt_prob = std::min(1.0, profile.onLoad / mean_size);
    const double p_off =
        profile.meanOnCycles > 0 ? 1.0 / profile.meanOnCycles : 1.0;
    const double p_on =
        profile.meanOffCycles > 0 ? 1.0 / profile.meanOffCycles : 1.0;

    // Per-node ON/OFF Markov state, started at the stationary mix.
    const double stationary_on = p_on / (p_on + p_off);
    std::vector<bool> on(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        on[static_cast<std::size_t>(i)] = rng.nextBool(stationary_on);

    std::vector<TraceEvent> events;
    for (std::int64_t cycle = 0; cycle < length; ++cycle) {
        for (int src = 0; src < n; ++src) {
            auto idx = static_cast<std::size_t>(src);
            if (on[idx]) {
                if (rng.nextBool(p_off))
                    on[idx] = false;
            } else {
                if (rng.nextBool(p_on))
                    on[idx] = true;
                continue;
            }
            if (!rng.nextBool(pkt_prob))
                continue;
            int dest;
            if (rng.nextBool(profile.sharedFraction)) {
                dest = homes[rng.nextBounded(homes.size())];
            } else {
                dest = static_cast<int>(
                    rng.nextBounded(static_cast<std::uint64_t>(n)));
            }
            if (dest == src)
                continue;
            TraceEvent ev;
            ev.cycle = cycle;
            ev.src = src;
            ev.dest = dest;
            ev.size = static_cast<int>(
                rng.nextRange(profile.minPacket, profile.maxPacket));
            events.push_back(ev);
        }
    }
    return events;
}

std::vector<TraceEvent>
mergeTraces(const std::vector<TraceEvent>& a,
            const std::vector<TraceEvent>& b)
{
    std::vector<TraceEvent> merged;
    merged.reserve(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(merged),
               [](const TraceEvent& x, const TraceEvent& y) {
                   return x.cycle < y.cycle;
               });
    return merged;
}

std::uint64_t
writeTraceFile(const std::string& path, const Mesh& mesh,
               const AppProfile& profile, std::int64_t length,
               std::uint64_t seed)
{
    TraceWriter writer(path);
    writer.comment("synthetic PARSEC-like trace: " + profile.name);
    writer.comment("mesh " + std::to_string(mesh.width()) + "x"
                   + std::to_string(mesh.height()) + ", length "
                   + std::to_string(length) + " cycles");
    for (const TraceEvent& ev : generateTrace(mesh, profile, length, seed))
        writer.append(ev);
    return writer.eventCount();
}

} // namespace footprint
