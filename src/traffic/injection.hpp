/**
 * @file
 * Packet-size distributions and the Bernoulli injection process used by
 * open-loop synthetic traffic.
 */

#ifndef FOOTPRINT_TRAFFIC_INJECTION_HPP
#define FOOTPRINT_TRAFFIC_INJECTION_HPP

#include <string>

namespace footprint {

class Rng;

/**
 * Packet length distribution. Supports fixed sizes ("1", "4") and the
 * paper's uniformly distributed variable size ("uniform1-6").
 */
class PacketSizeDist
{
  public:
    /** Fixed size @p n. */
    static PacketSizeDist fixed(int n);

    /** Uniform over [lo, hi] flits. */
    static PacketSizeDist uniform(int lo, int hi);

    /**
     * Parse a config string: "<n>" (fixed) or "uniform<lo>-<hi>".
     * fatal() on malformed input.
     */
    static PacketSizeDist parse(const std::string& spec);

    int sample(Rng& rng) const;
    double mean() const;
    int maxSize() const { return hi_; }
    int minSize() const { return lo_; }

    std::string toString() const;

  private:
    PacketSizeDist(int lo, int hi) : lo_(lo), hi_(hi) {}

    int lo_;
    int hi_;
};

/**
 * Open-loop Bernoulli injection: at a flit injection rate r and mean
 * packet size s, a new packet is generated each cycle with probability
 * r / s, keeping the offered load in flits/node/cycle equal to r.
 */
class BernoulliInjection
{
  public:
    BernoulliInjection(double flit_rate, double mean_packet_size);

    /** @return true if a packet should be generated this cycle. */
    bool fires(Rng& rng) const;

    double flitRate() const { return flitRate_; }

  private:
    double flitRate_;
    double packetProb_;
};

} // namespace footprint

#endif // FOOTPRINT_TRAFFIC_INJECTION_HPP
