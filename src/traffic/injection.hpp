/**
 * @file
 * Packet-size distributions and the Bernoulli injection process used by
 * open-loop synthetic traffic.
 */

#ifndef FOOTPRINT_TRAFFIC_INJECTION_HPP
#define FOOTPRINT_TRAFFIC_INJECTION_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace footprint {

class Rng;

/**
 * Packet length distribution. Supports fixed sizes ("1", "4") and the
 * paper's uniformly distributed variable size ("uniform1-6").
 */
class PacketSizeDist
{
  public:
    /** Fixed size @p n. */
    static PacketSizeDist fixed(int n);

    /** Uniform over [lo, hi] flits. */
    static PacketSizeDist uniform(int lo, int hi);

    /**
     * Parse a config string: "<n>" (fixed) or "uniform<lo>-<hi>".
     * fatal() on malformed input.
     */
    static PacketSizeDist parse(const std::string& spec);

    int sample(Rng& rng) const;
    double mean() const;
    int maxSize() const { return hi_; }
    int minSize() const { return lo_; }

    std::string toString() const;

  private:
    PacketSizeDist(int lo, int hi) : lo_(lo), hi_(hi) {}

    int lo_;
    int hi_;
};

/**
 * Open-loop Bernoulli injection: at a flit injection rate r and mean
 * packet size s, a new packet is generated each cycle with probability
 * r / s, keeping the offered load in flits/node/cycle equal to r.
 */
class BernoulliInjection
{
  public:
    BernoulliInjection(double flit_rate, double mean_packet_size);

    /** @return true if a packet should be generated this cycle. */
    bool fires(Rng& rng) const;

    double flitRate() const { return flitRate_; }

  private:
    double flitRate_;
    double packetProb_;
};

/**
 * Next-arrival schedule over a set of Bernoulli injection slots.
 *
 * Equivalent in distribution to calling BernoulliInjection::fires()
 * for every slot every cycle, but instead of consuming one RNG draw
 * per slot per cycle it draws geometric inter-arrival gaps and keeps
 * a min-heap of (cycle, slot) fire events. That gives the stepping
 * loop two things: O(fires) instead of O(slots × cycles) injection
 * cost, and — the reason this exists — an exact answer to "when does
 * the next packet arrive?", which the event-horizon fast path needs
 * to jump over idle spans without changing results.
 *
 * RNG discipline: the constructor draws one gap per slot in ascending
 * slot order; thereafter exactly one gap is drawn per fired packet
 * (by the caller, interleaved with its dest/size draws). Because
 * draws are tied to fire events rather than cycles, the consumption
 * sequence is identical whether or not idle cycles are skipped.
 *
 * Events are packed as cycle * slots + slot, so popDue() yields
 * same-cycle fires in ascending slot order — the same node order the
 * per-cycle loop had.
 */
class InjectionSchedule
{
  public:
    /** Sentinel for "no pending arrival". */
    static constexpr std::int64_t kNever =
        std::numeric_limits<std::int64_t>::max();

    /**
     * @param slots       number of independent injection processes
     * @param packet_prob per-slot per-cycle firing probability
     * @param rng         stream to draw the initial gaps from
     *
     * The first fire of slot i lands at cycle gap_i - 1, matching a
     * per-cycle process whose first trial happens at cycle 0.
     */
    InjectionSchedule(int slots, double packet_prob, Rng& rng);

    /** Earliest cycle with a pending fire, or kNever. */
    std::int64_t
    nextFireCycle() const
    {
        return heap_.empty() ? kNever
                             : heap_.front() / static_cast<std::int64_t>(slots_);
    }

    /**
     * Pop the lowest-numbered slot firing at @p cycle, or -1 if none.
     * Call repeatedly to drain a cycle; reschedule each popped slot
     * with scheduleNext() before popping the next so the RNG order
     * matches the per-cycle formulation.
     */
    int popDue(std::int64_t cycle);

    /** Draw the next gap for @p slot after it fired at @p fired_cycle. */
    void scheduleNext(int slot, std::int64_t fired_cycle, Rng& rng);

    int slots() const { return slots_; }

  private:
    void push(std::int64_t key);

    int slots_;
    double prob_;
    double logOneMinusP_;              ///< detLog(1 - prob_), or 0 if p >= 1
    std::vector<std::int64_t> heap_;   ///< min-heap of cycle*slots+slot
};

} // namespace footprint

#endif // FOOTPRINT_TRAFFIC_INJECTION_HPP
