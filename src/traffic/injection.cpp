#include "traffic/injection.hpp"

#include <cstdio>

#include "sim/log.hpp"
#include "sim/rng.hpp"

namespace footprint {

PacketSizeDist
PacketSizeDist::fixed(int n)
{
    if (n < 1)
        fatal("packet size must be at least 1 flit");
    return PacketSizeDist(n, n);
}

PacketSizeDist
PacketSizeDist::uniform(int lo, int hi)
{
    if (lo < 1 || hi < lo)
        fatal("invalid uniform packet size range");
    return PacketSizeDist(lo, hi);
}

PacketSizeDist
PacketSizeDist::parse(const std::string& spec)
{
    int lo = 0;
    int hi = 0;
    if (std::sscanf(spec.c_str(), "uniform%d-%d", &lo, &hi) == 2)
        return uniform(lo, hi);
    if (std::sscanf(spec.c_str(), "%d", &lo) == 1)
        return fixed(lo);
    fatal("cannot parse packet size spec: " + spec);
}

int
PacketSizeDist::sample(Rng& rng) const
{
    if (lo_ == hi_)
        return lo_;
    return static_cast<int>(rng.nextRange(lo_, hi_));
}

double
PacketSizeDist::mean() const
{
    return (static_cast<double>(lo_) + static_cast<double>(hi_)) / 2.0;
}

std::string
PacketSizeDist::toString() const
{
    if (lo_ == hi_)
        return std::to_string(lo_);
    return "uniform" + std::to_string(lo_) + "-" + std::to_string(hi_);
}

BernoulliInjection::BernoulliInjection(double flit_rate,
                                       double mean_packet_size)
    : flitRate_(flit_rate), packetProb_(flit_rate / mean_packet_size)
{
    if (flit_rate < 0.0)
        fatal("injection rate must be non-negative");
    if (packetProb_ > 1.0)
        packetProb_ = 1.0;
}

bool
BernoulliInjection::fires(Rng& rng) const
{
    return packetProb_ > 0.0 && rng.nextBool(packetProb_);
}

} // namespace footprint
