#include "traffic/injection.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "sim/det_math.hpp"
#include "sim/log.hpp"
#include "sim/rng.hpp"

namespace footprint {

PacketSizeDist
PacketSizeDist::fixed(int n)
{
    if (n < 1)
        fatal("packet size must be at least 1 flit");
    return PacketSizeDist(n, n);
}

PacketSizeDist
PacketSizeDist::uniform(int lo, int hi)
{
    if (lo < 1 || hi < lo)
        fatal("invalid uniform packet size range");
    return PacketSizeDist(lo, hi);
}

PacketSizeDist
PacketSizeDist::parse(const std::string& spec)
{
    int lo = 0;
    int hi = 0;
    if (std::sscanf(spec.c_str(), "uniform%d-%d", &lo, &hi) == 2)
        return uniform(lo, hi);
    if (std::sscanf(spec.c_str(), "%d", &lo) == 1)
        return fixed(lo);
    fatal("cannot parse packet size spec: " + spec);
}

int
PacketSizeDist::sample(Rng& rng) const
{
    if (lo_ == hi_)
        return lo_;
    return static_cast<int>(rng.nextRange(lo_, hi_));
}

double
PacketSizeDist::mean() const
{
    return (static_cast<double>(lo_) + static_cast<double>(hi_)) / 2.0;
}

std::string
PacketSizeDist::toString() const
{
    if (lo_ == hi_)
        return std::to_string(lo_);
    return "uniform" + std::to_string(lo_) + "-" + std::to_string(hi_);
}

BernoulliInjection::BernoulliInjection(double flit_rate,
                                       double mean_packet_size)
    : flitRate_(flit_rate), packetProb_(flit_rate / mean_packet_size)
{
    if (flit_rate < 0.0)
        fatal("injection rate must be non-negative");
    if (packetProb_ > 1.0)
        packetProb_ = 1.0;
}

bool
BernoulliInjection::fires(Rng& rng) const
{
    return packetProb_ > 0.0 && rng.nextBool(packetProb_);
}

InjectionSchedule::InjectionSchedule(int slots, double packet_prob,
                                     Rng& rng)
    : slots_(slots), prob_(packet_prob), logOneMinusP_(0.0)
{
    if (slots < 1)
        fatal("injection schedule needs at least one slot");
    if (prob_ < 0.0)
        fatal("injection rate must be non-negative");
    if (prob_ > 1.0)
        prob_ = 1.0;
    if (prob_ > 0.0 && prob_ < 1.0)
        logOneMinusP_ = detLog(1.0 - prob_);
    heap_.reserve(static_cast<std::size_t>(slots));
    // First trial of every slot is at cycle 0, i.e. the gap is
    // measured from a virtual fire at cycle -1.
    for (int slot = 0; slot < slots_; ++slot)
        scheduleNext(slot, -1, rng);
}

int
InjectionSchedule::popDue(std::int64_t cycle)
{
    if (heap_.empty())
        return -1;
    const std::int64_t key = heap_.front();
    const std::int64_t m = static_cast<std::int64_t>(slots_);
    if (key / m != cycle)
        return -1;
    std::pop_heap(heap_.begin(), heap_.end(),
                  std::greater<std::int64_t>());
    heap_.pop_back();
    return static_cast<int>(key % m);
}

void
InjectionSchedule::scheduleNext(int slot, std::int64_t fired_cycle,
                                Rng& rng)
{
    if (prob_ <= 0.0)
        return;
    std::int64_t gap = 1;
    if (prob_ < 1.0) {
        gap = geometricGap(rng.nextDouble(), logOneMinusP_);
        if (gap < 0)
            return; // beyond any reachable cycle: never fires again
    }
    // Guard the packed key cycle*slots+slot against overflow; a fire
    // this far out is unreachable anyway.
    const std::int64_t fire = fired_cycle + gap;
    if (fire > (std::int64_t{1} << 48))
        return;
    push(fire * static_cast<std::int64_t>(slots_) + slot);
}

void
InjectionSchedule::push(std::int64_t key)
{
    heap_.push_back(key);
    std::push_heap(heap_.begin(), heap_.end(),
                   std::greater<std::int64_t>());
}

} // namespace footprint
