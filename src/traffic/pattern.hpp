/**
 * @file
 * Synthetic traffic patterns (uniform random, transpose, shuffle) and
 * the Table-3 hotspot flow set.
 */

#ifndef FOOTPRINT_TRAFFIC_PATTERN_HPP
#define FOOTPRINT_TRAFFIC_PATTERN_HPP

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "topo/mesh.hpp"

namespace footprint {

class Rng;

/**
 * Maps a source node to a destination node per generated packet.
 * Returns -1 when the node generates no traffic under this pattern
 * (e.g. fixed points of transpose/shuffle).
 */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;

    virtual std::string name() const = 0;

    /**
     * Pick the destination for a packet from @p src.
     * @return destination node id, or -1 for "no traffic".
     */
    virtual int dest(int src, Rng& rng) const = 0;
};

/** Uniform random over all nodes except the source. */
class UniformPattern : public TrafficPattern
{
  public:
    explicit UniformPattern(const Mesh& mesh) : numNodes_(mesh.numNodes())
    {}

    std::string name() const override { return "uniform"; }
    int dest(int src, Rng& rng) const override;

  private:
    int numNodes_;
};

/** Matrix transpose: (x, y) sends to (y, x); requires a square mesh. */
class TransposePattern : public TrafficPattern
{
  public:
    explicit TransposePattern(const Mesh& mesh);

    std::string name() const override { return "transpose"; }
    int dest(int src, Rng& rng) const override;

  private:
    const Mesh* mesh_;
};

/**
 * Perfect shuffle: destination id is the source id rotated left by one
 * bit (in log2(N) bits); requires a power-of-two node count.
 */
class ShufflePattern : public TrafficPattern
{
  public:
    explicit ShufflePattern(const Mesh& mesh);

    std::string name() const override { return "shuffle"; }
    int dest(int src, Rng& rng) const override;

  private:
    int numNodes_;
    int bits_;
};

/**
 * The Table-3 hotspot flow set, scaled to the mesh size: eight
 * persistent source->destination flows oversubscribing four endpoints
 * (two flows per hotspot), with all remaining nodes generating uniform
 * random background traffic.
 */
std::vector<std::pair<int, int>> defaultHotspotFlows(const Mesh& mesh);

/**
 * Instantiate a pattern by name: "uniform", "transpose" or "shuffle".
 * ("hotspot" and "trace" are traffic-manager modes, not patterns.)
 * fatal() on unknown names.
 */
std::unique_ptr<TrafficPattern>
makeTrafficPattern(const std::string& name, const Mesh& mesh);

} // namespace footprint

#endif // FOOTPRINT_TRAFFIC_PATTERN_HPP
