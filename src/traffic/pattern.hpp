/**
 * @file
 * Synthetic traffic patterns (uniform random, transpose, shuffle) and
 * the Table-3 hotspot flow set.
 */

#ifndef FOOTPRINT_TRAFFIC_PATTERN_HPP
#define FOOTPRINT_TRAFFIC_PATTERN_HPP

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "topo/mesh.hpp"

namespace footprint {

class Rng;
class Topology;

/**
 * Maps a source terminal to a destination terminal per generated
 * packet. On unconcentrated topologies terminals coincide with nodes;
 * on a cmesh terminal t is attached to router t / c (the patterns work
 * in terminal space so every terminal gets an independent traffic
 * stream). Returns -1 when the terminal generates no traffic under
 * this pattern (e.g. fixed points of transpose/shuffle).
 */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;

    virtual std::string name() const = 0;

    /**
     * Pick the destination for a packet from @p src.
     * @return destination terminal id, or -1 for "no traffic".
     */
    virtual int dest(int src, Rng& rng) const = 0;
};

/** Uniform random over all terminals except the source. */
class UniformPattern : public TrafficPattern
{
  public:
    explicit UniformPattern(const Mesh& mesh, int concentration = 1)
        : numNodes_(mesh.numNodes() * concentration)
    {}

    std::string name() const override { return "uniform"; }
    int dest(int src, Rng& rng) const override;

  private:
    int numNodes_;
};

/**
 * Matrix transpose: router (x, y) sends to (y, x); requires a square
 * mesh. Under concentration the intra-router terminal index is
 * preserved, so terminal k of (x, y) sends to terminal k of (y, x).
 */
class TransposePattern : public TrafficPattern
{
  public:
    explicit TransposePattern(const Mesh& mesh, int concentration = 1);

    std::string name() const override { return "transpose"; }
    int dest(int src, Rng& rng) const override;

  private:
    const Mesh* mesh_;
    int conc_;
};

/**
 * Perfect shuffle: destination id is the source id rotated left by one
 * bit (in log2(N) bits over terminal ids); requires a power-of-two
 * terminal count.
 */
class ShufflePattern : public TrafficPattern
{
  public:
    explicit ShufflePattern(const Mesh& mesh, int concentration = 1);

    std::string name() const override { return "shuffle"; }
    int dest(int src, Rng& rng) const override;

  private:
    int numNodes_;
    int bits_;
};

/**
 * The Table-3 hotspot flow set, scaled to the mesh size: eight
 * persistent source->destination flows oversubscribing four endpoints
 * (two flows per hotspot), with all remaining nodes generating uniform
 * random background traffic.
 */
std::vector<std::pair<int, int>> defaultHotspotFlows(const Mesh& mesh);

/**
 * Instantiate a pattern by name: "uniform", "transpose" or "shuffle".
 * ("hotspot" and "trace" are traffic-manager modes, not patterns.)
 * fatal() on unknown names.
 */
std::unique_ptr<TrafficPattern>
makeTrafficPattern(const std::string& name, const Mesh& mesh);

/**
 * Topology-aware overload: patterns run in terminal space, so a cmesh
 * with concentration c gets c independent streams per router.
 */
std::unique_ptr<TrafficPattern>
makeTrafficPattern(const std::string& name, const Topology& topo);

} // namespace footprint

#endif // FOOTPRINT_TRAFFIC_PATTERN_HPP
