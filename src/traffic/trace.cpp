#include "traffic/trace.hpp"

#include <sstream>

#include "sim/log.hpp"

namespace footprint {

TraceWriter::TraceWriter(const std::string& path)
    : out_(path), lastCycle_(-1), count_(0)
{
    if (!out_)
        fatal("cannot open trace file for writing: " + path);
}

void
TraceWriter::comment(const std::string& text)
{
    out_ << "# " << text << "\n";
}

void
TraceWriter::append(const TraceEvent& event)
{
    FP_ASSERT(event.cycle >= lastCycle_,
              "trace events must be appended in cycle order");
    FP_ASSERT(event.size >= 1, "trace event with empty packet");
    lastCycle_ = event.cycle;
    ++count_;
    out_ << event.cycle << " " << event.src << " " << event.dest << " "
         << event.size << "\n";
}

TraceReader::TraceReader(const std::string& path)
    : in_(path), path_(path), lastCycle_(-1), lineNo_(0)
{
    if (!in_)
        fatal("cannot open trace file for reading: " + path);
}

std::optional<TraceEvent>
TraceReader::next()
{
    std::string line;
    while (std::getline(in_, line)) {
        ++lineNo_;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream iss(line);
        TraceEvent ev;
        if (!(iss >> ev.cycle >> ev.src >> ev.dest >> ev.size)) {
            fatal("malformed trace line " + std::to_string(lineNo_)
                  + " in " + path_);
        }
        if (ev.cycle < lastCycle_) {
            fatal("trace not sorted by cycle at line "
                  + std::to_string(lineNo_) + " in " + path_);
        }
        lastCycle_ = ev.cycle;
        return ev;
    }
    return std::nullopt;
}

std::vector<TraceEvent>
TraceReader::readAll()
{
    std::vector<TraceEvent> events;
    while (auto ev = next())
        events.push_back(*ev);
    return events;
}

} // namespace footprint
