/**
 * @file
 * Trace-driven traffic: a minimal, Netrace-like packet trace format
 * with a writer and a streaming reader.
 *
 * Format: '#'-prefixed comment lines, then one event per line:
 *   <cycle> <src> <dest> <size>
 * Events must be sorted by cycle (the reader enforces this).
 */

#ifndef FOOTPRINT_TRAFFIC_TRACE_HPP
#define FOOTPRINT_TRAFFIC_TRACE_HPP

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace footprint {

/** One packet-injection event in a trace. */
struct TraceEvent
{
    std::int64_t cycle = 0;
    int src = -1;
    int dest = -1;
    int size = 1;

    bool operator==(const TraceEvent&) const = default;
};

/** Write a trace file; events must be appended in cycle order. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string& path);

    /** Add a free-form header comment line. */
    void comment(const std::string& text);

    void append(const TraceEvent& event);

    std::uint64_t eventCount() const { return count_; }

  private:
    std::ofstream out_;
    std::int64_t lastCycle_;
    std::uint64_t count_;
};

/** Stream trace events from a file in cycle order. */
class TraceReader
{
  public:
    explicit TraceReader(const std::string& path);

    /** @return next event, or nullopt at end of trace. */
    std::optional<TraceEvent> next();

    /** Read every remaining event (convenience for tests/benches). */
    std::vector<TraceEvent> readAll();

  private:
    std::ifstream in_;
    std::string path_;
    std::int64_t lastCycle_;
    std::uint64_t lineNo_;
};

} // namespace footprint

#endif // FOOTPRINT_TRAFFIC_TRACE_HPP
