#include "traffic/pattern.hpp"

#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace footprint {

int
UniformPattern::dest(int src, Rng& rng) const
{
    // Uniform over all nodes except the source.
    const int d =
        static_cast<int>(rng.nextBounded(
            static_cast<std::uint64_t>(numNodes_ - 1)));
    return d >= src ? d + 1 : d;
}

TransposePattern::TransposePattern(const Mesh& mesh, int concentration)
    : mesh_(&mesh), conc_(concentration)
{
    if (mesh.width() != mesh.height())
        fatal("transpose pattern requires a square mesh");
}

int
TransposePattern::dest(int src, Rng& /*rng*/) const
{
    const int router = src / conc_;
    const int k = src % conc_;
    const Coord c = mesh_->coordOf(router);
    const int d = mesh_->nodeId(Coord{c.y, c.x}) * conc_ + k;
    return d == src ? -1 : d;
}

ShufflePattern::ShufflePattern(const Mesh& mesh, int concentration)
    : numNodes_(mesh.numNodes() * concentration), bits_(0)
{
    int n = numNodes_;
    while (n > 1) {
        if (n % 2 != 0)
            fatal("shuffle pattern requires a power-of-two node count");
        n /= 2;
        ++bits_;
    }
}

int
ShufflePattern::dest(int src, Rng& /*rng*/) const
{
    const int msb = (src >> (bits_ - 1)) & 1;
    const int d = ((src << 1) | msb) & (numNodes_ - 1);
    return d == src ? -1 : d;
}

std::vector<std::pair<int, int>>
defaultHotspotFlows(const Mesh& mesh)
{
    const int w = mesh.width();
    const int h = mesh.height();
    auto id = [&](int x, int y) { return mesh.nodeId(Coord{x, y}); };
    // Table 3 on an 8x8 mesh, expressed in relative coordinates so the
    // same flow structure scales to other mesh sizes: two flows per
    // hotspot destination, four hotspot corners.
    return {
        {id(0, 0), id(w - 1, h - 1)},          // f1: n0  -> n63
        {id(0, h / 2), id(w - 1, h - 1)},      // f2: n32 -> n63
        {id(w - 1, 0), id(0, h - 1)},          // f3: n7  -> n56
        {id(w - 1, h / 2), id(0, h - 1)},      // f4: n39 -> n56
        {id(w - 1, h - 1), id(0, 0)},          // f5: n63 -> n0
        {id(w - 1, h / 2 - 1), id(0, 0)},      // f6: n31 -> n0
        {id(0, h - 1), id(w - 1, 0)},          // f7: n56 -> n7
        {id(0, h / 2 - 1), id(w - 1, 0)},      // f8: n24 -> n7
    };
}

std::unique_ptr<TrafficPattern>
makeTrafficPattern(const std::string& name, const Mesh& mesh)
{
    if (name == "uniform")
        return std::make_unique<UniformPattern>(mesh);
    if (name == "transpose")
        return std::make_unique<TransposePattern>(mesh);
    if (name == "shuffle")
        return std::make_unique<ShufflePattern>(mesh);
    fatal("unknown traffic pattern: " + name);
}

std::unique_ptr<TrafficPattern>
makeTrafficPattern(const std::string& name, const Topology& topo)
{
    const Mesh& mesh = topo.grid();
    const int c = topo.concentration();
    if (name == "uniform")
        return std::make_unique<UniformPattern>(mesh, c);
    if (name == "transpose")
        return std::make_unique<TransposePattern>(mesh, c);
    if (name == "shuffle")
        return std::make_unique<ShufflePattern>(mesh, c);
    fatal("unknown traffic pattern: " + name);
}

} // namespace footprint
