/**
 * @file
 * Synthetic PARSEC-like trace generation.
 *
 * The paper drives its Fig. 10 evaluation with PARSEC 2.0 traces
 * captured by Netrace. Those traces are not redistributable, so this
 * module synthesises statistically similar traces from per-application
 * profiles (offered load, packet-size mix, destination skew towards
 * shared hotspot nodes, and ON/OFF burstiness). The profile parameters
 * are chosen to reproduce the qualitative properties the paper's
 * analysis attributes to each workload: traffic intensity and
 * "purity of blocking" (destination diversity inside routers).
 */

#ifndef FOOTPRINT_TRAFFIC_TRACE_GEN_HPP
#define FOOTPRINT_TRAFFIC_TRACE_GEN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "topo/mesh.hpp"
#include "traffic/trace.hpp"

namespace footprint {

/**
 * Statistical profile of one application's NoC traffic.
 *
 * Destinations are drawn from a mixture: with probability
 * sharedFraction, one of numSharedHotspots "directory/home" nodes
 * (evenly spread over the mesh); otherwise uniform random. Sources
 * alternate between ON bursts and OFF gaps with the given mean
 * lengths; packets are injected during ON periods at onLoad
 * flits/node/cycle.
 */
struct AppProfile
{
    std::string name;
    double onLoad = 0.1;        ///< flits/node/cycle while ON
    double meanOnCycles = 200;  ///< mean burst length
    double meanOffCycles = 200; ///< mean gap length
    double sharedFraction = 0.3;///< traffic share to hotspot nodes
    int numSharedHotspots = 4;  ///< shared "home node" count
    int minPacket = 1;          ///< flits
    int maxPacket = 5;          ///< flits
};

/** Per-application profiles for the PARSEC 2.0 workloads (Fig. 10). */
std::vector<AppProfile> parsecProfiles();

/** Look up a profile by application name; fatal() if unknown. */
AppProfile parsecProfile(const std::string& name);

/**
 * Generate @p length cycles of trace events for @p profile on
 * @p mesh. Deterministic in @p seed.
 */
std::vector<TraceEvent> generateTrace(const Mesh& mesh,
                                      const AppProfile& profile,
                                      std::int64_t length,
                                      std::uint64_t seed);

/**
 * Merge two event streams (e.g. two co-running applications) into one
 * cycle-sorted trace, as the paper does when executing two workloads
 * simultaneously.
 */
std::vector<TraceEvent> mergeTraces(const std::vector<TraceEvent>& a,
                                    const std::vector<TraceEvent>& b);

/** Generate a trace and write it to @p path; @return event count. */
std::uint64_t writeTraceFile(const std::string& path, const Mesh& mesh,
                             const AppProfile& profile,
                             std::int64_t length, std::uint64_t seed);

} // namespace footprint

#endif // FOOTPRINT_TRAFFIC_TRACE_GEN_HPP
