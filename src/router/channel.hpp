/**
 * @file
 * Fixed-latency pipelined channels carrying flits (forward) and credits
 * (backward) between routers and endpoints.
 *
 * A channel is written during the transmit phase of cycle t and the
 * payload becomes visible to the receiver during the receive phase of
 * cycle t + latency. Channels accept at most one payload per cycle,
 * modelling a single physical link.
 */

#ifndef FOOTPRINT_ROUTER_CHANNEL_HPP
#define FOOTPRINT_ROUTER_CHANNEL_HPP

#include <cstdint>
#include <limits>
#include <optional>

#include "router/flit.hpp"
#include "sim/active_set.hpp"
#include "sim/ring_buffer.hpp"

namespace footprint {

/**
 * A fixed-latency pipe carrying one item per cycle.
 *
 * In-flight entries live in a pair of parallel ring buffers sized
 * from the latency (a pipe holds at most latency+1 entries when
 * polled every cycle); the buffers are growable so unit tests may
 * send without receiving. Arrival timestamps and payloads are stored
 * structure-of-arrays: the per-cycle receive poll usually fails (the
 * head entry is still in flight), and the SoA split means a failed
 * poll touches only the contiguous 8-byte timestamp lane instead of
 * dragging a full Flit (several cache lines across a router's five
 * input pipes) through the cache.
 *
 * @tparam T payload type (Flit or Credit).
 */
template <typename T>
class Pipe
{
  public:
    /** headReadyCycle() when nothing is in flight. */
    static constexpr std::int64_t kNoArrival =
        std::numeric_limits<std::int64_t>::max();

    explicit Pipe(int latency = 1)
        : latency_(latency),
          ready_(static_cast<std::size_t>(latency) + 1,
                 /*growable=*/true),
          payload_(static_cast<std::size_t>(latency) + 1,
                   /*growable=*/true)
    {}

    int latency() const { return latency_; }

    /**
     * Wake component @p comp on @p set whenever something is sent into
     * this pipe (activity-driven stepping: the receiver must run until
     * the pipe drains; its own pending-work check keeps it awake
     * across the latency window after this initial wake).
     */
    void
    setWakeHook(ActiveSet* set, int comp)
    {
        wakeSet_ = set;
        wakeComp_ = comp;
    }

    /** Send @p item at @p cycle; at most one send per cycle. */
    void
    send(const T& item, std::int64_t cycle)
    {
        ready_.push_back(cycle + latency_);
        payload_.push_back(item);
        ++sentCount_;
        if (wakeSet_)
            wakeSet_->wake(wakeComp_);
    }

    /**
     * Receive the item (if any) arriving at @p cycle.
     * Must be polled every cycle so arrivals are consumed in order.
     */
    std::optional<T>
    receive(std::int64_t cycle)
    {
        if (ready_.empty() || ready_.front() > cycle)
            return std::nullopt;
        T item = payload_.front();
        ready_.pop_front();
        payload_.pop_front();
        return item;
    }

    /**
     * Arrival cycle of the oldest in-flight item, or kNoArrival. The
     * event-horizon fast path reads this to bound how far the clock
     * may jump while the network is quiescent.
     */
    std::int64_t
    headReadyCycle() const
    {
        return ready_.empty() ? kNoArrival : ready_.front();
    }

    bool empty() const { return ready_.empty(); }
    std::size_t inFlightCount() const { return ready_.size(); }

    /** Items ever sent (telemetry link-utilisation counter). */
    std::uint64_t sentCount() const { return sentCount_; }

    /**
     * Visit every in-flight payload, oldest first (audit/forensic
     * inspection only — never on the per-cycle hot path).
     */
    template <typename Fn>
    void
    forEachInFlight(Fn&& fn) const
    {
        for (const T& p : payload_)
            fn(p);
    }

  private:
    int latency_;
    RingBuffer<std::int64_t> ready_;  ///< arrival cycles, SoA lane
    RingBuffer<T> payload_;           ///< payloads, parallel to ready_
    std::uint64_t sentCount_ = 0;
    ActiveSet* wakeSet_ = nullptr;
    int wakeComp_ = -1;
};

using FlitChannel = Pipe<Flit>;
using CreditChannel = Pipe<Credit>;

} // namespace footprint

#endif // FOOTPRINT_ROUTER_CHANNEL_HPP
