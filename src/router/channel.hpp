/**
 * @file
 * Fixed-latency pipelined channels carrying flits (forward) and credits
 * (backward) between routers and endpoints.
 *
 * A channel is written during the transmit phase of cycle t and the
 * payload becomes visible to the receiver during the receive phase of
 * cycle t + latency. Channels accept a bounded number of payloads per
 * cycle (one for flit links, the flow-control fan-in for credit
 * links), modelling a single physical link.
 */

#ifndef FOOTPRINT_ROUTER_CHANNEL_HPP
#define FOOTPRINT_ROUTER_CHANNEL_HPP

#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "router/flit.hpp"
#include "sim/active_set.hpp"
#include "sim/log.hpp"

namespace footprint {

/**
 * A fixed-latency pipe carrying a bounded number of items per cycle.
 *
 * In-flight entries live in a pair of parallel power-of-two rings
 * (arrival timestamps and payloads, structure-of-arrays): the
 * per-cycle receive poll usually fails (the head entry is still in
 * flight), and the SoA split means a failed poll touches only the
 * 8-byte timestamp lane instead of dragging a full Flit through the
 * cache.
 *
 * A standalone Pipe owns growable ring storage (unit tests may send
 * without receiving). Inside a Network every pipe is instead *bound*
 * onto the LinkFabric's flat arenas (bindLanes): ring storage,
 * head-arrival slot, and sent counter all live in network-owned
 * arrays grouped by writer node, so batched passes (horizon
 * next-arrival queries, heatmap sent-counter deltas) scan contiguous
 * memory instead of chasing per-channel objects, and a shard's
 * transmit-phase writes land in a contiguous, 64-byte-padded arena
 * range (DESIGN.md §17). Bound pipes have fixed capacity — the
 * flow-control invariants bound their occupancy, and overflow is a
 * simulator bug (FP_ASSERT).
 *
 * @tparam T payload type (Flit or Credit).
 */
template <typename T>
class Pipe
{
  public:
    /** headReadyCycle() when nothing is in flight. */
    static constexpr std::int64_t kNoArrival =
        std::numeric_limits<std::int64_t>::max();

    explicit Pipe(int latency = 1)
        : latency_(latency), headReady_(&inlineHeadReady_),
          sent_(&inlineSent_)
    {
        const std::size_t cap =
            ceilPow2(static_cast<std::size_t>(latency) + 1);
        ownReady_.assign(cap, 0);
        ownPayload_.assign(cap, T{});
        ready_ = ownReady_.data();
        payload_ = ownPayload_.data();
        mask_ = cap - 1;
    }

    Pipe(const Pipe&) = delete;
    Pipe& operator=(const Pipe&) = delete;

    Pipe(Pipe&& o) noexcept
        : latency_(o.latency_), ready_(o.ready_),
          payload_(o.payload_), mask_(o.mask_), head_(o.head_),
          size_(o.size_), growable_(o.growable_),
          headReady_(o.headReady_ == &o.inlineHeadReady_
                         ? &inlineHeadReady_
                         : o.headReady_),
          sent_(o.sent_ == &o.inlineSent_ ? &inlineSent_ : o.sent_),
          inlineHeadReady_(o.inlineHeadReady_),
          inlineSent_(o.inlineSent_),
          ownReady_(std::move(o.ownReady_)),
          ownPayload_(std::move(o.ownPayload_)), wakeSet_(o.wakeSet_),
          wakeComp_(o.wakeComp_)
    {
        // Self-owned ring storage moves with the vectors (their heap
        // buffers transfer), so ready_/payload_ stay valid; only the
        // inline head/sent slots need rebinding (done above).
    }

    /** Smallest power of two >= @p n (and >= 1). */
    static std::size_t
    ceilPow2(std::size_t n)
    {
        std::size_t cap = 1;
        while (cap < n)
            cap <<= 1;
        return cap;
    }

    int latency() const { return latency_; }

    /**
     * Rebind this pipe onto fabric-owned lanes: ring storage of
     * @p cap slots (a power of two), plus dedicated head-arrival and
     * sent-counter slots inside the fabric's flat lanes. Must be
     * called before any send; the pipe becomes fixed-capacity and
     * frees its own storage.
     */
    void
    bindLanes(std::int64_t* ready, T* payload, std::size_t cap,
              std::int64_t* head_ready, std::uint64_t* sent)
    {
        FP_ASSERT(size_ == 0, "bindLanes on a non-empty pipe");
        FP_ASSERT((cap & (cap - 1)) == 0 && cap > 0,
                  "pipe capacity must be a power of two");
        ready_ = ready;
        payload_ = payload;
        mask_ = cap - 1;
        head_ = 0;
        growable_ = false;
        headReady_ = head_ready;
        *headReady_ = kNoArrival;
        sent_ = sent;
        *sent_ = 0;
        ownReady_ = std::vector<std::int64_t>();
        ownPayload_ = std::vector<T>();
    }

    /**
     * Wake component @p comp on @p set whenever something is sent into
     * this pipe (activity-driven stepping: the receiver must run until
     * the pipe drains; its own pending-work check keeps it awake
     * across the latency window after this initial wake).
     */
    void
    setWakeHook(ActiveSet* set, int comp)
    {
        wakeSet_ = set;
        wakeComp_ = comp;
    }

    /** Send @p item at @p cycle. */
    void
    send(const T& item, std::int64_t cycle)
    {
        if (size_ > mask_) {
            FP_ASSERT(growable_,
                      "pipe overflow (capacity " << (mask_ + 1)
                                                 << ")");
            grow();
        }
        const std::int64_t at = cycle + latency_;
        const std::size_t slot = (head_ + size_) & mask_;
        ready_[slot] = at;
        payload_[slot] = item;
        if (size_ == 0)
            *headReady_ = at;
        ++size_;
        ++*sent_;
        if (wakeSet_)
            wakeSet_->wake(wakeComp_);
    }

    /**
     * Receive the item (if any) arriving at @p cycle.
     * Must be polled every cycle so arrivals are consumed in order.
     */
    std::optional<T>
    receive(std::int64_t cycle)
    {
        if (size_ == 0 || ready_[head_] > cycle)
            return std::nullopt;
        T item = payload_[head_];
        head_ = (head_ + 1) & mask_;
        --size_;
        *headReady_ = size_ != 0 ? ready_[head_] : kNoArrival;
        return item;
    }

    /**
     * Arrival cycle of the oldest in-flight item, or kNoArrival. The
     * event-horizon fast path reads this to bound how far the clock
     * may jump while the network is quiescent; for fabric-bound pipes
     * the same value lives in the fabric's flat head-arrival lane.
     */
    std::int64_t headReadyCycle() const { return *headReady_; }

    bool empty() const { return size_ == 0; }
    std::size_t inFlightCount() const { return size_; }

    /** Items ever sent (telemetry link-utilisation counter). */
    std::uint64_t sentCount() const { return *sent_; }

    /**
     * Visit every in-flight payload, oldest first (audit/forensic
     * inspection only — never on the per-cycle hot path).
     */
    template <typename Fn>
    void
    forEachInFlight(Fn&& fn) const
    {
        for (std::size_t i = 0; i < size_; ++i)
            fn(payload_[(head_ + i) & mask_]);
    }

    /** Arrival cycle of in-flight entry @p i (0 == oldest). */
    std::int64_t
    inFlightReadyCycle(std::size_t i) const
    {
        FP_ASSERT(i < size_, "inFlightReadyCycle out of range");
        return ready_[(head_ + i) & mask_];
    }

  private:
    void
    grow()
    {
        const std::size_t cap = (mask_ + 1) * 2;
        std::vector<std::int64_t> r(cap);
        std::vector<T> p(cap);
        for (std::size_t i = 0; i < size_; ++i) {
            r[i] = ready_[(head_ + i) & mask_];
            p[i] = payload_[(head_ + i) & mask_];
        }
        ownReady_.swap(r);
        ownPayload_.swap(p);
        ready_ = ownReady_.data();
        payload_ = ownPayload_.data();
        head_ = 0;
        mask_ = cap - 1;
    }

    int latency_;
    std::int64_t* ready_ = nullptr;  ///< arrival-cycle ring lane
    T* payload_ = nullptr;           ///< payload ring lane
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    bool growable_ = true;  ///< false once bound to a fabric
    std::int64_t* headReady_;  ///< fabric lane slot or inline
    std::uint64_t* sent_;      ///< fabric lane slot or inline
    std::int64_t inlineHeadReady_ = kNoArrival;
    std::uint64_t inlineSent_ = 0;
    std::vector<std::int64_t> ownReady_;  ///< standalone storage
    std::vector<T> ownPayload_;
    ActiveSet* wakeSet_ = nullptr;
    int wakeComp_ = -1;
};

using FlitChannel = Pipe<Flit>;
using CreditChannel = Pipe<Credit>;

} // namespace footprint

#endif // FOOTPRINT_ROUTER_CHANNEL_HPP
