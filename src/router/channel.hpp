/**
 * @file
 * Fixed-latency pipelined channels carrying flits (forward) and credits
 * (backward) between routers and endpoints.
 *
 * A channel is written during the transmit phase of cycle t and the
 * payload becomes visible to the receiver during the receive phase of
 * cycle t + latency. Channels accept at most one payload per cycle,
 * modelling a single physical link.
 */

#ifndef FOOTPRINT_ROUTER_CHANNEL_HPP
#define FOOTPRINT_ROUTER_CHANNEL_HPP

#include <cstdint>
#include <optional>

#include "router/flit.hpp"
#include "sim/active_set.hpp"
#include "sim/ring_buffer.hpp"

namespace footprint {

/**
 * A fixed-latency pipe carrying one item per cycle.
 *
 * In-flight entries live in a ring buffer sized from the latency (a
 * pipe holds at most latency+1 entries when polled every cycle). The
 * buffer is growable so unit tests may send without receiving.
 *
 * @tparam T payload type (Flit or Credit).
 */
template <typename T>
class Pipe
{
  public:
    explicit Pipe(int latency = 1)
        : latency_(latency),
          inFlight_(static_cast<std::size_t>(latency) + 1,
                    /*growable=*/true)
    {}

    int latency() const { return latency_; }

    /**
     * Wake component @p comp on @p set whenever something is sent into
     * this pipe (activity-driven stepping: the receiver must run until
     * the pipe drains; its own pending-work check keeps it awake
     * across the latency window after this initial wake).
     */
    void
    setWakeHook(ActiveSet* set, int comp)
    {
        wakeSet_ = set;
        wakeComp_ = comp;
    }

    /** Send @p item at @p cycle; at most one send per cycle. */
    void
    send(const T& item, std::int64_t cycle)
    {
        inFlight_.push_back(Entry{cycle + latency_, item});
        ++sentCount_;
        if (wakeSet_)
            wakeSet_->wake(wakeComp_);
    }

    /**
     * Receive the item (if any) arriving at @p cycle.
     * Must be polled every cycle so arrivals are consumed in order.
     */
    std::optional<T>
    receive(std::int64_t cycle)
    {
        if (inFlight_.empty() || inFlight_.front().readyCycle > cycle)
            return std::nullopt;
        T item = inFlight_.front().payload;
        inFlight_.pop_front();
        return item;
    }

    bool empty() const { return inFlight_.empty(); }
    std::size_t inFlightCount() const { return inFlight_.size(); }

    /** Items ever sent (telemetry link-utilisation counter). */
    std::uint64_t sentCount() const { return sentCount_; }

    /**
     * Visit every in-flight payload, oldest first (audit/forensic
     * inspection only — never on the per-cycle hot path).
     */
    template <typename Fn>
    void
    forEachInFlight(Fn&& fn) const
    {
        for (const Entry& e : inFlight_)
            fn(e.payload);
    }

  private:
    struct Entry
    {
        std::int64_t readyCycle;
        T payload;
    };

    int latency_;
    RingBuffer<Entry> inFlight_;
    std::uint64_t sentCount_ = 0;
    ActiveSet* wakeSet_ = nullptr;
    int wakeComp_ = -1;
};

using FlitChannel = Pipe<Flit>;
using CreditChannel = Pipe<Credit>;

} // namespace footprint

#endif // FOOTPRINT_ROUTER_CHANNEL_HPP
