#include "router/router.hpp"

#include <algorithm>
#include <bit>

#include "obs/packet_tracer.hpp"
#include "sim/log.hpp"

namespace footprint {

Router::Router(const Topology& topo, int node,
               const RouterParams& params,
               const RoutingAlgorithm* routing, std::uint64_t seed,
               const StatusProvider* status)
    : topo_(&topo), node_(node), params_(params), routing_(routing),
      status_(status),
      rng_(seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(node))
{
    FP_ASSERT(params.numVcs >= 1 && params.numVcs <= 64,
              "numVcs must be in [1, 64]");
    FP_ASSERT(params.vcBufSize >= 1, "vcBufSize must be positive");
    FP_ASSERT(params.outputFifoSize >= 1,
              "outputFifoSize must be positive");
    for (auto& in : inputs_) {
        in.vcs.resize(static_cast<std::size_t>(params.numVcs));
        for (auto& vc : in.vcs)
            vc.buffer.reset(static_cast<std::size_t>(params.vcBufSize));
        in.saArbiter.resize(params.numVcs);
        in.requests.resize(static_cast<std::size_t>(params.numVcs));
    }
    for (auto& out : outputs_) {
        out.saArbiter.resize(kNumPorts);
        out.fifo.reset(static_cast<std::size_t>(params.outputFifoSize));
    }
    neighborNode_.fill(-1);

    vcAll_ = maskOfFirst(params.numVcs);
    const auto total_vcs =
        static_cast<std::size_t>(kNumPorts * params.numVcs);
    outCredits_.assign(total_vcs,
                       static_cast<std::int16_t>(params.vcBufSize));
    outOwner_.assign(total_vcs, -1);
    outFullCredit_.fill(vcAll_);
    if (params.vcBufSize == 0)
        outZeroCredit_.fill(vcAll_);

    // VA scratch: fixed flat tables, never resized after this.
    waiting_.reserve(total_vcs);
    touchedOutVcs_.reserve(total_vcs);
    vaBestPri_.assign(total_vcs, -1);
    vaBestDist_.assign(total_vcs, 0);
    vaBestReq_.assign(total_vcs, 0);
    vcRrPtr_.assign(total_vcs, 0);
    bestGrant_.resize(total_vcs);
    destConvergence_.assign(static_cast<std::size_t>(topo.numNodes()),
                            0);
    destWaitTouched_.reserve(static_cast<std::size_t>(topo.numNodes()));
    publishDirty_ = (std::uint32_t{1} << kNumPorts) - 1;
}

void
Router::connectInput(int port, FlitChannel* flit_in,
                     CreditChannel* credit_out)
{
    inputs_.at(static_cast<std::size_t>(port)).flitIn = flit_in;
    inputs_.at(static_cast<std::size_t>(port)).creditOut = credit_out;
}

void
Router::connectOutput(int port, FlitChannel* flit_out,
                      CreditChannel* credit_in)
{
    outputs_.at(static_cast<std::size_t>(port)).flitOut = flit_out;
    outputs_.at(static_cast<std::size_t>(port)).creditIn = credit_in;
}

void
Router::setNeighbor(int port, int node)
{
    neighborNode_.at(static_cast<std::size_t>(port)) = node;
}

void
Router::receivePhase(std::int64_t cycle)
{
    for (auto& in : inputs_) {
        if (!in.flitIn)
            continue;
        while (auto f = in.flitIn->receive(cycle)) {
            FP_ASSERT(f->vc >= 0 && f->vc < params_.numVcs,
                      "flit arrived with bad VC " << f->vc);
            InputVc& ivc = in.vcs[static_cast<std::size_t>(f->vc)];
            FP_ASSERT(static_cast<int>(ivc.occupancy())
                          < params_.vcBufSize,
                      "input VC buffer overflow (credit protocol bug)");
            if (tracer_ && f->head && tracer_->traced(f->packetId))
                tracer_->onHopArrive(*f, node_, cycle);
            ivc.buffer.push_back(*f);
            in.occMask |= VcMask{1} << f->vc;
            ++bufferedFlits_;
        }
    }
    for (int op = 0; op < kNumPorts; ++op) {
        OutputPort& out = outputs_[static_cast<std::size_t>(op)];
        if (!out.creditIn)
            continue;
        while (auto c = out.creditIn->receive(cycle)) {
            FP_ASSERT(c->vc >= 0 && c->vc < params_.numVcs,
                      "credit arrived with bad VC " << c->vc);
            ovReturnCredit(op, c->vc);
            publishDirty_ |= std::uint32_t{1} << op;
        }
    }
}

void
Router::computePhase(std::int64_t cycle)
{
    cycle_ = cycle;
    runVcAllocation();
    runSwitchAllocation();
}

void
Router::runVcAllocation()
{
    const bool atomic = routing_->atomicVcAlloc();
    const int num_vcs = params_.numVcs;
    const int total_ids = kNumPorts * num_vcs;

    // Early out: with no buffered flits there are no requests to
    // gather, and with no touched convergence counters there is
    // nothing stale to refresh either.
    if (bufferedFlits_ == 0 && destWaitTouched_.empty())
        return;

    // Refresh the per-destination convergence counters: the number of
    // input VCs holding flits to each destination. Two or more means
    // traffic to that destination is accumulating at this router —
    // either converging flows or a backlogged (blocked-downstream)
    // stream, both of which Footprint confines to footprint lanes.
    // Then gather requests from every input VC whose head flit waits
    // for an output VC. The routing function is re-evaluated every
    // cycle so adaptive decisions (and Footprint's priorities) track
    // the live occupancy state.
    for (const int dest : destWaitTouched_)
        destConvergence_[static_cast<std::size_t>(dest)] = 0;
    destWaitTouched_.clear();
    if (bufferedFlits_ == 0)
        return;
    for (int ip = 0; ip < kNumPorts; ++ip) {
        const InputPort& in = inputs_[static_cast<std::size_t>(ip)];
        for (VcMask m = in.occMask; m != 0; m &= m - 1) {
            const int v = std::countr_zero(m);
            const auto dest = static_cast<std::size_t>(
                in.vcs[static_cast<std::size_t>(v)].front().dest);
            if (destConvergence_[dest]++ == 0)
                destWaitTouched_.push_back(static_cast<int>(dest));
        }
    }

    waiting_.clear();
    for (int ip = 0; ip < kNumPorts; ++ip) {
        InputPort& in = inputs_[static_cast<std::size_t>(ip)];
        // A VC in VcAlloc state always holds its head flit, so the
        // occupancy mask covers every allocation candidate.
        for (VcMask occ = in.occMask; occ != 0; occ &= occ - 1) {
            const int v = std::countr_zero(occ);
            InputVc& ivc = in.vcs[static_cast<std::size_t>(v)];
            if (ivc.state == InputVc::State::Idle) {
                FP_ASSERT(ivc.front().head,
                          "non-head flit at front of idle VC");
                ivc.state = InputVc::State::VcAlloc;
            }
            if (ivc.state != InputVc::State::VcAlloc)
                continue;
            OutputSet& set = in.requests[static_cast<std::size_t>(v)];
            set.clear();
            routing_->route(*this, ivc.front(), set);
            if (!set.empty())
                waiting_.emplace_back(ip, v);
        }
    }
    if (waiting_.empty())
        return;

    // Scatter requests onto the allocatable output VCs they target,
    // keeping a per-output-VC running best instead of materialising
    // requester lists: the arbitration below is a strict max over
    // (priority, round-robin distance), so folding requesters in
    // scatter order picks the same winner the old list walk did —
    // distances are unique per requester id, making the max
    // order-independent. Output-VC state is constant throughout the
    // gather/scatter window (commits happen strictly after), so the
    // live masks are safe to read here.
    for (const auto& [ip, v] : waiting_) {
        const int id = ip * num_vcs + v;
        bestGrant_[static_cast<std::size_t>(id)] = VaGrant{};
        const OutputSet& set = inputs_[static_cast<std::size_t>(ip)]
                                   .requests[static_cast<std::size_t>(v)];
        for (const VcRequest& r : set.requests()) {
            VcMask m = r.vcs & allocatableMaskOf(r.port, atomic);
            const auto pri =
                static_cast<std::int8_t>(r.priority);
            const int base = r.port * num_vcs;
            while (m != 0) {
                const int ov = std::countr_zero(m);
                m &= m - 1;
                const auto idx = static_cast<std::size_t>(base + ov);
                if (vaBestPri_[idx] < 0) {
                    touchedOutVcs_.push_back(
                        static_cast<int>(idx));
                }
                int dist = id - vcRrPtr_[idx];
                if (dist < 0)
                    dist += total_ids;
                if (pri > vaBestPri_[idx]
                    || (pri == vaBestPri_[idx]
                        && dist < vaBestDist_[idx])) {
                    vaBestPri_[idx] = pri;
                    vaBestDist_[idx] =
                        static_cast<std::int16_t>(dist);
                    vaBestReq_[idx] =
                        static_cast<std::int16_t>(id);
                }
            }
        }
    }

    // Output-side arbitration: each requested output VC offers itself
    // to its highest-priority requester (round-robin tie-break), then
    // each input VC accepts its best offer; declined output VCs stay
    // free this cycle. Resetting each entry's sentinel here keeps the
    // tables clean without a bulk clear.
    for (const int idx : touchedOutVcs_) {
        const auto i = static_cast<std::size_t>(idx);
        const int best_id = vaBestReq_[i];
        const auto pri = static_cast<Priority>(vaBestPri_[i]);
        vaBestPri_[i] = -1;
        const int next = best_id + 1;
        vcRrPtr_[i] =
            static_cast<std::int16_t>(next == total_ids ? 0 : next);
        VaGrant& g = bestGrant_[static_cast<std::size_t>(best_id)];
        if (g.outPort < 0 || pri > g.priority) {
            g.outPort = idx / num_vcs;
            g.outVc = idx % num_vcs;
            g.priority = pri;
        }
    }
    touchedOutVcs_.clear();

    // Commit accepted grants; record blocking events for the rest.
    for (const auto& [ip, v] : waiting_) {
        const int id = ip * num_vcs + v;
        InputPort& in = inputs_[static_cast<std::size_t>(ip)];
        InputVc& ivc = in.vcs[static_cast<std::size_t>(v)];
        const VaGrant& g = bestGrant_[static_cast<std::size_t>(id)];
        if (g.outPort >= 0) {
            ivc.state = InputVc::State::Active;
            ivc.outPort = g.outPort;
            ivc.outVc = g.outVc;
            in.activeMask |= VcMask{1} << v;
            ovAllocate(g.outPort, g.outVc, ivc.front().dest);
            publishDirty_ |= std::uint32_t{1} << g.outPort;
            ++counters_.vcAllocSuccess;
            ++counters_.vaGrantsByPriority[static_cast<std::size_t>(
                g.priority)];
            if (tracer_ && tracer_->traced(ivc.front().packetId))
                tracer_->onVaGrant(ivc.front(), node_, cycle_);
        } else {
            // Blocking event: VC allocation failed this cycle. Sample
            // the purity of blocking (footprint share of busy VCs) on
            // the packet's primary requested port.
            ++counters_.vcAllocFail;
            const OutputSet& set =
                in.requests[static_cast<std::size_t>(v)];
            const int port = set.requests().front().port;
            const VcMask occ_mask = occupiedVcMask(port);
            const int occ = popcount(occ_mask);
            if (occ > 0) {
                // Purity counts footprint VCs among *busy* VCs only.
                const int fp = popcount(
                    footprintVcMask(port, ivc.front().dest) & occ_mask);
                counters_.puritySum += static_cast<double>(fp)
                    / static_cast<double>(occ);
                ++counters_.puritySamples;
            }
        }
    }
}

void
Router::runSwitchAllocation()
{
    // No buffered flits means no eligible input VC (eligibility
    // requires a non-empty buffer); the output FIFOs drain in the
    // transmit phase regardless.
    if (bufferedFlits_ == 0)
        return;

    std::array<int, kNumPorts> winner_vc{};

    for (int pass = 0; pass < params_.internalSpeedup; ++pass) {
        // Input-side: each input port nominates one eligible VC. Only
        // non-empty Active VCs (occupancy & active masks) qualify.
        std::array<std::uint64_t, kNumPorts> port_req{};
        bool any_winner = false;
        for (int ip = 0; ip < kNumPorts; ++ip) {
            InputPort& in = inputs_[static_cast<std::size_t>(ip)];
            VcMask elig = 0;
            for (VcMask m = in.occMask & in.activeMask; m != 0;
                 m &= m - 1) {
                const int v = std::countr_zero(m);
                const InputVc& ivc =
                    in.vcs[static_cast<std::size_t>(v)];
                const auto op =
                    static_cast<std::size_t>(ivc.outPort);
                if (!((outZeroCredit_[op] >> ivc.outVc) & VcMask{1})
                    && static_cast<int>(outputs_[op].fifo.size())
                        < params_.outputFifoSize) {
                    elig |= VcMask{1} << v;
                }
            }
            const int win =
                elig != 0 ? in.saArbiter.arbitrate(elig) : -1;
            winner_vc[static_cast<std::size_t>(ip)] = win;
            if (win >= 0) {
                const auto op = static_cast<std::size_t>(
                    in.vcs[static_cast<std::size_t>(win)].outPort);
                port_req[op] |= std::uint64_t{1}
                    << static_cast<unsigned>(ip);
                any_winner = true;
            }
        }
        if (!any_winner)
            break;

        // Output-side: each output port accepts one input port.
        bool moved = false;
        for (int op = 0; op < kNumPorts; ++op) {
            const std::uint64_t req =
                port_req[static_cast<std::size_t>(op)];
            if (req == 0)
                continue;
            OutputPort& out = outputs_[static_cast<std::size_t>(op)];
            const int wip = out.saArbiter.arbitrate(req);
            if (wip >= 0) {
                moveFlit(wip, winner_vc[static_cast<std::size_t>(wip)]);
                moved = true;
            }
        }
        if (!moved)
            break;
    }
}

void
Router::moveFlit(int in_port, int in_vc)
{
    InputPort& in = inputs_[static_cast<std::size_t>(in_port)];
    InputVc& ivc = in.vcs[static_cast<std::size_t>(in_vc)];
    FP_ASSERT(ivc.state == InputVc::State::Active && !ivc.empty(),
              "moving flit from inactive VC");

    Flit f = ivc.buffer.front();
    ivc.buffer.pop_front();
    if (ivc.buffer.empty())
        in.occMask &= ~(VcMask{1} << in_vc);
    --bufferedFlits_;

    const int out_port = ivc.outPort;
    const int out_vc = ivc.outVc;
    OutputPort& out = outputs_[static_cast<std::size_t>(out_port)];
    publishDirty_ |= std::uint32_t{1} << out_port;
    f.vc = static_cast<std::int16_t>(out_vc);
    ++f.hops;
    ovConsumeCredit(out_port, out_vc);
    if (f.tail) {
        ovTailSent(out_port, out_vc);
        ivc.releaseRoute();
        in.activeMask &= ~(VcMask{1} << in_vc);
    }
    out.fifo.push_back(f);
    ++fifoFlits_;
    ++counters_.flitsTraversed;
    if (tracer_ && f.head && tracer_->traced(f.packetId))
        tracer_->onSwitchTraverse(f, node_, cycle_);

    // The input-buffer slot frees: return a credit upstream.
    if (in.creditOut)
        in.creditOut->send(Credit{in_vc}, cycle_);
}

void
Router::transmitPhase(std::int64_t cycle)
{
    for (auto& out : outputs_) {
        if (!out.flitOut || out.fifo.empty())
            continue;
        out.flitOut->send(out.fifo.front(), cycle);
        out.fifo.pop_front();
        --fifoFlits_;
    }
}

bool
Router::hasPendingWork() const
{
    if (bufferedFlits_ > 0 || fifoFlits_ > 0)
        return true;
    for (const auto& in : inputs_) {
        if (in.flitIn && !in.flitIn->empty())
            return true;
    }
    for (const auto& out : outputs_) {
        if (out.creditIn && !out.creditIn->empty())
            return true;
    }
    return false;
}

VcMask
Router::idleVcMask(int port) const
{
    return idleMaskOf(port);
}

VcMask
Router::footprintVcMask(int port, int dest) const
{
    // Owner registers persist after a VC drains (they are only
    // overwritten on reallocation, as the Sec. 4.4 hardware does), so a
    // freshly drained VC remains a footprint VC for its destination
    // until another packet claims it. Contiguous int16 compare over
    // the port's slice of the owner lane; vectorisable.
    const std::int16_t* owner = outOwner_.data()
        + static_cast<std::size_t>(port * params_.numVcs);
    const auto d = static_cast<std::int16_t>(dest);
    VcMask m = 0;
    for (int v = 0; v < params_.numVcs; ++v)
        m |= static_cast<VcMask>(owner[v] == d) << v;
    return m;
}

VcMask
Router::occupiedVcMask(int port) const
{
    return occupiedMaskOf(port);
}

VcMask
Router::zeroCreditVcMask(int port) const
{
    return outZeroCredit_[static_cast<std::size_t>(port)];
}

int
Router::convergingInputs(int dest) const
{
    return destConvergence_[static_cast<std::size_t>(dest)];
}

int
Router::remoteIdleCount(int through_port, int port) const
{
    const int nbr = neighborNode_[static_cast<std::size_t>(through_port)];
    if (nbr < 0 || !status_)
        return -1;
    return status_->idleCount(nbr, port);
}

std::uint32_t
Router::takePublishMask()
{
    const std::uint32_t m = publishDirty_;
    publishDirty_ = 0;
    return m;
}

int
Router::idleVcCount(int port) const
{
    return popcount(idleMaskOf(port));
}

int
Router::outVcOwner(int port, int vc) const
{
    return ((occupiedMaskOf(port) >> vc) & VcMask{1})
        ? outOwner_[ovIdx(port, vc)]
        : -1;
}

bool
Router::outVcOccupied(int port, int vc) const
{
    return ((occupiedMaskOf(port) >> vc) & VcMask{1}) != 0;
}

int
Router::inputOccupancy(int port, int vc) const
{
    return static_cast<int>(inputs_[static_cast<std::size_t>(port)]
                                .vcs[static_cast<std::size_t>(vc)]
                                .occupancy());
}

int
Router::inputFrontDest(int port, int vc) const
{
    const InputVc& ivc = inputs_[static_cast<std::size_t>(port)]
                             .vcs[static_cast<std::size_t>(vc)];
    return ivc.empty() ? -1 : ivc.front().dest;
}

bool
Router::inputHoldsDest(int port, int vc, int dest) const
{
    const InputVc& ivc = inputs_[static_cast<std::size_t>(port)]
                             .vcs[static_cast<std::size_t>(vc)];
    for (const Flit& f : ivc.buffer) {
        if (f.dest == dest)
            return true;
    }
    return false;
}

int
Router::totalBufferedFlits() const
{
    return inputBufferedFlits() + outputFifoFlits();
}

int
Router::inputBufferedFlits() const
{
    return bufferedFlits_;
}

int
Router::totalOutputCredits() const
{
    int total = 0;
    for (const std::int16_t c : outCredits_)
        total += c;
    return total;
}

int
Router::occupiedOutVcs() const
{
    int total = 0;
    for (int port = 0; port < kNumPorts; ++port)
        total += popcount(occupiedMaskOf(port));
    return total;
}

int
Router::occupiedOutVcsBelow(int vc_limit) const
{
    if (vc_limit <= 0)
        return 0;
    const VcMask low = vc_limit >= params_.numVcs
        ? ~VcMask{0}
        : static_cast<VcMask>((VcMask{1} << vc_limit) - 1);
    int total = 0;
    for (int port = 0; port < kNumPorts; ++port)
        total += popcount(
            static_cast<VcMask>(occupiedMaskOf(port) & low));
    return total;
}

int
Router::outputFifoFlits() const
{
    return fifoFlits_;
}

int
Router::outVcCredits(int port, int vc) const
{
    return outCredits_[ovIdx(port, vc)];
}

bool
Router::outVcBusy(int port, int vc) const
{
    return ((outBusy_[static_cast<std::size_t>(port)] >> vc) & VcMask{1})
        != 0;
}

const InputVc&
Router::inputVc(int port, int vc) const
{
    return inputs_[static_cast<std::size_t>(port)]
        .vcs[static_cast<std::size_t>(vc)];
}

const RingBuffer<Flit>&
Router::outputFifo(int port) const
{
    return outputs_[static_cast<std::size_t>(port)].fifo;
}

int
Router::outputFifoFlitsForVc(int port, int vc) const
{
    int total = 0;
    for (const Flit& f : outputs_[static_cast<std::size_t>(port)].fifo) {
        if (f.vc == vc)
            ++total;
    }
    return total;
}

void
Router::debugLeakCredit(int port, int vc)
{
    ovConsumeCredit(port, vc);
    publishDirty_ |= std::uint32_t{1} << port;
}

} // namespace footprint
