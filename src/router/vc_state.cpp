#include "router/vc_state.hpp"

#include <bit>

#include "sim/log.hpp"

namespace footprint {

int
popcount(VcMask m)
{
    return std::popcount(m);
}

const char*
inputVcStateName(InputVc::State state)
{
    switch (state) {
    case InputVc::State::Idle: return "idle";
    case InputVc::State::VcAlloc: return "va";
    case InputVc::State::Active: return "active";
    }
    return "?";
}

void
OutVcState::allocate(int dest)
{
    FP_ASSERT(!busy_, "allocating a busy output VC");
    busy_ = true;
    ownerDest_ = dest;
}

void
OutVcState::tailSent()
{
    FP_ASSERT(busy_, "tailSent on an unallocated output VC");
    busy_ = false;
    // ownerDest_ is intentionally retained: the VC remains a footprint
    // VC for its destination while flits are still draining downstream
    // (credits below bufSize).
}

void
OutVcState::consumeCredit()
{
    FP_ASSERT(credits_ > 0, "consuming a credit the VC does not have");
    --credits_;
}

void
OutVcState::returnCredit()
{
    FP_ASSERT(credits_ < bufSize_, "credit overflow on output VC");
    ++credits_;
}

} // namespace footprint
