/**
 * @file
 * Input-queued virtual-channel router with credit-based wormhole flow
 * control, a priority-based separable VC allocator, a round-robin
 * switch allocator with internal speedup, and the per-output-VC owner
 * registers Footprint routing relies on.
 */

#ifndef FOOTPRINT_ROUTER_ROUTER_HPP
#define FOOTPRINT_ROUTER_ROUTER_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "router/allocators.hpp"
#include "router/channel.hpp"
#include "router/vc_state.hpp"
#include "routing/routing.hpp"
#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace footprint {

class PacketTracer;

/**
 * One-cycle-delayed per-router status (idle-VC counts per output
 * port), modelling the side-band wires adaptive algorithms like DBAR
 * use to see one hop ahead.
 */
class StatusProvider
{
  public:
    virtual ~StatusProvider() = default;

    /** Idle-VC count of @p port at @p node as of the previous cycle. */
    virtual int idleCount(int node, int port) const = 0;
};

/** Router microarchitecture parameters (Table 2). */
struct RouterParams
{
    int numVcs = 10;
    int vcBufSize = 4;
    int internalSpeedup = 2;
    int outputFifoSize = 8;
};

/**
 * A 5-port (E/W/N/S/Local) input-queued VC router.
 *
 * Per cycle the router runs three externally sequenced phases:
 *  - receivePhase: drain flit/credit channels into buffers,
 *  - computePhase: routing + VC allocation + switch allocation
 *    (internalSpeedup passes) + crossbar traversal into output FIFOs,
 *  - transmitPhase: each output FIFO pushes one flit into its link.
 *
 * Output-VC bookkeeping is stored structure-of-arrays (DESIGN.md §17):
 * per-port busy / zero-credit / full-credit bitmasks maintained
 * incrementally on every state transition, plus flat credit and
 * owner-destination lanes. The RouterView mask queries adaptive
 * routing hammers every cycle (idle / occupied / zero-credit /
 * footprint) reduce to one or two bitwise ops or a short contiguous
 * scan instead of per-VC object walks, and a saturated compute phase
 * performs zero heap allocations: all VA/SA scratch lives in
 * fixed-capacity flat tables sized once at construction.
 */
class Router : public RouterView
{
  public:
    /** Event counters used by the paper's Fig. 10 analysis. */
    struct Counters
    {
        std::uint64_t vcAllocSuccess = 0;
        std::uint64_t vcAllocFail = 0;    ///< blocking events
        double puritySum = 0.0;           ///< sum of per-event purity
        std::uint64_t puritySamples = 0;
        std::uint64_t flitsTraversed = 0;
        /**
         * VC-allocation grants split by the winning request's
         * Priority regime (escape / busy / footprint / idle /
         * reclaim), indexed by the Priority enum value. Sums to
         * vcAllocSuccess; the flight recorder diffs this per window
         * to expose Algorithm-1 regime transitions over time.
         */
        std::array<std::uint64_t, 5> vaGrantsByPriority{};

        /** Mean footprint share of busy VCs at blocking events. */
        double
        purity() const
        {
            return puritySamples == 0
                ? 0.0
                : puritySum / static_cast<double>(puritySamples);
        }

        /** Degree of HoL blocking: (1 - purity) x #blocking events. */
        double
        holDegree() const
        {
            return (1.0 - purity())
                * static_cast<double>(vcAllocFail);
        }

        void reset() { *this = Counters{}; }
    };

    Router(const Topology& topo, int node, const RouterParams& params,
           const RoutingAlgorithm* routing, std::uint64_t seed,
           const StatusProvider* status);

    /** Wire the incoming-flit and outgoing-credit channels of a port. */
    void connectInput(int port, FlitChannel* flit_in,
                      CreditChannel* credit_out);

    /** Wire the outgoing-flit and incoming-credit channels of a port. */
    void connectOutput(int port, FlitChannel* flit_out,
                       CreditChannel* credit_in);

    /** Record the neighbor node reachable through @p port (status). */
    void setNeighbor(int port, int node);

    void receivePhase(std::int64_t cycle);
    void computePhase(std::int64_t cycle);
    void transmitPhase(std::int64_t cycle);

    /**
     * True when stepping this router next cycle could change state:
     * flits buffered in input VCs or output FIFOs, or anything (even
     * not yet arrived) in an incoming flit/credit pipe. Quiescent
     * routers (pending work == false) are observationally inert — all
     * three phases are no-ops — which is what makes activity-driven
     * stepping bit-identical to full stepping.
     */
    bool hasPendingWork() const;

    // RouterView interface.
    int nodeId() const override { return node_; }
    const Topology& topo() const override { return *topo_; }
    int numVcs() const override { return params_.numVcs; }
    int vcBufSize() const override { return params_.vcBufSize; }
    VcMask idleVcMask(int port) const override;
    VcMask footprintVcMask(int port, int dest) const override;
    VcMask occupiedVcMask(int port) const override;
    VcMask zeroCreditVcMask(int port) const override;
    int convergingInputs(int dest) const override;
    int remoteIdleCount(int through_port, int port) const override;
    Rng& rng() const override { return rng_; }

    /** Idle-VC count of an output port (published to the status net). */
    int idleVcCount(int port) const;

    /**
     * Bitmask of output ports whose idle-VC count may have changed
     * since the last call; clears the mask. The transmit phase
     * publishes only these ports to the status board — an unchanged
     * count is already current there (the board is never reset).
     */
    std::uint32_t takePublishMask();

    /** Owner destination of output VC (port, vc); -1 when idle. */
    int outVcOwner(int port, int vc) const;

    /** True if output VC (port, vc) is occupied. */
    bool outVcOccupied(int port, int vc) const;

    /** Number of buffered flits in input VC (port, vc). */
    int inputOccupancy(int port, int vc) const;

    /** Destination of a flit buffered in input VC, -1 if empty. */
    int inputFrontDest(int port, int vc) const;

    /** True if any buffered flit in (port, vc) targets @p dest. */
    bool inputHoldsDest(int port, int vc, int dest) const;

    const Counters& counters() const { return counters_; }
    void resetCounters() { counters_.reset(); }

    /** Total flits buffered in the router (for drain checks). */
    int totalBufferedFlits() const;

    // Telemetry probes (sampled off the critical path).

    /** Flits buffered in input VCs only (the "VC occupancy" probe). */
    int inputBufferedFlits() const;

    /** Sum of available credits over all output VCs. */
    int totalOutputCredits() const;

    /** Occupied output VCs across all ports (live footprint lanes). */
    int occupiedOutVcs() const;

    /**
     * Occupied output VCs with index < @p vc_limit across all ports —
     * with vc_limit = numEscapeVcs(), the router's escape-VC usage
     * (the spatial-observatory esc_occ probe).
     */
    int occupiedOutVcsBelow(int vc_limit) const;

    /** Flits waiting in output FIFOs. */
    int outputFifoFlits() const;

    /**
     * Attach (or detach with nullptr) a packet-lifecycle tracer. The
     * per-flit hooks cost one branch while @p tracer is nullptr.
     */
    void setTracer(PacketTracer* tracer) { tracer_ = tracer; }

    // Forensic accessors (auditor / watchdog / state dumps; never on
    // the per-cycle hot path).

    /** Available credits of output VC (port, vc). */
    int outVcCredits(int port, int vc) const;

    /** True if output VC (port, vc) is allocated to a packet. */
    bool outVcBusy(int port, int vc) const;

    /** Full input-VC state (stage, granted route, buffered flits). */
    const InputVc& inputVc(int port, int vc) const;

    /** Flits waiting in the output FIFO of @p port, head first. */
    const RingBuffer<Flit>& outputFifo(int port) const;

    /** Flits of output FIFO @p port destined for downstream VC @p vc. */
    int outputFifoFlitsForVc(int port, int vc) const;

    /** Neighbor node wired to @p port; -1 when unconnected. */
    int neighborAt(int port) const
    {
        return neighborNode_[static_cast<std::size_t>(port)];
    }

    /**
     * Fault-injection hook: silently consume one credit of output VC
     * (port, vc) without moving a flit, breaking credit conservation.
     * Tests use it to prove the auditor catches credit leaks.
     */
    void debugLeakCredit(int port, int vc);

  private:
    struct InputPort
    {
        FlitChannel* flitIn = nullptr;
        CreditChannel* creditOut = nullptr;
        std::vector<InputVc> vcs;
        RoundRobinArbiter saArbiter;  ///< over this port's VCs
        std::vector<OutputSet> requests;  ///< per-VC request sets
        VcMask occMask = 0;     ///< bit v set while vcs[v] is non-empty
        VcMask activeMask = 0;  ///< bit v set while vcs[v] is Active
    };

    struct OutputPort
    {
        FlitChannel* flitOut = nullptr;
        CreditChannel* creditIn = nullptr;
        RoundRobinArbiter saArbiter;  ///< over input ports
        RingBuffer<Flit> fifo;  ///< capacity fixed to outputFifoSize
    };

    void runVcAllocation();
    void runSwitchAllocation();
    void moveFlit(int in_port, int in_vc);

    /** Tentative VC-allocation grant offered to one input VC. */
    struct VaGrant
    {
        int outPort = -1;
        int outVc = -1;
        Priority priority = Priority::Lowest;
    };

    // --- Output-VC state, structure-of-arrays. ---
    //
    // The per-port masks are the primary representation of the boolean
    // VC states (busy / zero credits / full credits); the flat credit
    // and owner lanes carry the counts routing and forensics read.
    // Every transition goes through the ov*() helpers below so masks
    // and lanes never disagree.

    std::size_t
    ovIdx(int port, int vc) const
    {
        return static_cast<std::size_t>(port * params_.numVcs + vc);
    }

    void
    ovAllocate(int port, int vc, int dest)
    {
        FP_ASSERT(!((outBusy_[static_cast<std::size_t>(port)] >> vc)
                    & VcMask{1}),
                  "allocating a busy output VC");
        outBusy_[static_cast<std::size_t>(port)] |= VcMask{1} << vc;
        outOwner_[ovIdx(port, vc)] = static_cast<std::int16_t>(dest);
    }

    void
    ovTailSent(int port, int vc)
    {
        FP_ASSERT((outBusy_[static_cast<std::size_t>(port)] >> vc)
                      & VcMask{1},
                  "tailSent on an unallocated output VC");
        // The owner lane is intentionally retained: the VC remains a
        // footprint VC for its destination while flits are still
        // draining downstream (credits below bufSize).
        outBusy_[static_cast<std::size_t>(port)] &= ~(VcMask{1} << vc);
    }

    void
    ovConsumeCredit(int port, int vc)
    {
        const std::int16_t c = --outCredits_[ovIdx(port, vc)];
        FP_ASSERT(c >= 0, "consuming a credit the VC does not have");
        const auto p = static_cast<std::size_t>(port);
        outFullCredit_[p] &= ~(VcMask{1} << vc);
        if (c == 0)
            outZeroCredit_[p] |= VcMask{1} << vc;
    }

    void
    ovReturnCredit(int port, int vc)
    {
        const std::int16_t c = ++outCredits_[ovIdx(port, vc)];
        FP_ASSERT(c <= params_.vcBufSize,
                  "credit overflow on output VC");
        const auto p = static_cast<std::size_t>(port);
        outZeroCredit_[p] &= ~(VcMask{1} << vc);
        if (c == params_.vcBufSize)
            outFullCredit_[p] |= VcMask{1} << vc;
    }

    /** Idle = unallocated with a full downstream buffer. */
    VcMask
    idleMaskOf(int port) const
    {
        const auto p = static_cast<std::size_t>(port);
        return outFullCredit_[p] & ~outBusy_[p];
    }

    /** Occupied = busy or any flit still draining downstream. */
    VcMask
    occupiedMaskOf(int port) const
    {
        const auto p = static_cast<std::size_t>(port);
        return outBusy_[p] | (vcAll_ & ~outFullCredit_[p]);
    }

    /** Which VCs a new packet may claim (VC-reallocation policy). */
    VcMask
    allocatableMaskOf(int port, bool atomic) const
    {
        const auto p = static_cast<std::size_t>(port);
        return atomic ? (outFullCredit_[p] & ~outBusy_[p])
                      : (vcAll_ & ~outBusy_[p]);
    }

    const Topology* topo_;
    int node_;
    RouterParams params_;
    const RoutingAlgorithm* routing_;
    const StatusProvider* status_;
    mutable Rng rng_;

    std::array<InputPort, kNumPorts> inputs_;
    std::array<OutputPort, kNumPorts> outputs_;
    std::array<int, kNumPorts> neighborNode_;
    std::int64_t cycle_ = 0;

    VcMask vcAll_ = 0;  ///< maskOfFirst(numVcs)

    // Output-VC SoA lanes (kNumPorts * numVcs, port-major).
    std::array<VcMask, kNumPorts> outBusy_{};
    std::array<VcMask, kNumPorts> outZeroCredit_{};
    std::array<VcMask, kNumPorts> outFullCredit_{};
    std::vector<std::int16_t> outCredits_;
    std::vector<std::int16_t> outOwner_;

    // Per-cycle scratch state: fixed-capacity flat tables sized at
    // construction, so the per-cycle hot path performs no heap
    // allocation (waiting_ / touchedOutVcs_ / destWaitTouched_ are
    // reserved to their structural maxima up front).
    std::vector<std::pair<int, int>> waiting_;  ///< (in port, in vc)
    std::vector<int> touchedOutVcs_;  ///< out-VC ids, first-touch order
    // Per-output-VC running best over this cycle's requesters: the
    // highest (priority, then round-robin distance) request seen so
    // far. A sentinel priority of -1 marks "no requester yet"; entries
    // are reset to the sentinel as the offer pass consumes them, so
    // the tables never need a bulk clear.
    std::vector<std::int8_t> vaBestPri_;    ///< -1 = untouched
    std::vector<std::int16_t> vaBestDist_;  ///< rr distance of best
    std::vector<std::int16_t> vaBestReq_;   ///< input-VC id of best
    std::vector<std::int16_t> vcRrPtr_;  ///< per-out-VC tie-break ptr
    std::vector<VaGrant> bestGrant_;  ///< per flattened input VC id
    std::vector<std::uint8_t>
        destConvergence_;  ///< input VCs holding flits per destination
    std::vector<int> destWaitTouched_;  ///< dests to clear next cycle

    // Incrementally maintained totals backing the telemetry probes and
    // hasPendingWork() without walking every VC each cycle.
    int bufferedFlits_ = 0;  ///< flits across all input VCs
    int fifoFlits_ = 0;      ///< flits across all output FIFOs

    /** Ports not yet re-published since their count last changed. */
    std::uint32_t publishDirty_ = 0;

    Counters counters_;
    PacketTracer* tracer_ = nullptr;
};

} // namespace footprint

#endif // FOOTPRINT_ROUTER_ROUTER_HPP
