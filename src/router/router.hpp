/**
 * @file
 * Input-queued virtual-channel router with credit-based wormhole flow
 * control, a priority-based separable VC allocator, a round-robin
 * switch allocator with internal speedup, and the per-output-VC owner
 * registers Footprint routing relies on.
 */

#ifndef FOOTPRINT_ROUTER_ROUTER_HPP
#define FOOTPRINT_ROUTER_ROUTER_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "router/allocators.hpp"
#include "router/channel.hpp"
#include "router/vc_state.hpp"
#include "routing/routing.hpp"
#include "sim/rng.hpp"
#include "topo/mesh.hpp"

namespace footprint {

class PacketTracer;

/**
 * One-cycle-delayed per-router status (idle-VC counts per output
 * port), modelling the side-band wires adaptive algorithms like DBAR
 * use to see one hop ahead.
 */
class StatusProvider
{
  public:
    virtual ~StatusProvider() = default;

    /** Idle-VC count of @p port at @p node as of the previous cycle. */
    virtual int idleCount(int node, int port) const = 0;
};

/** Router microarchitecture parameters (Table 2). */
struct RouterParams
{
    int numVcs = 10;
    int vcBufSize = 4;
    int internalSpeedup = 2;
    int outputFifoSize = 8;
};

/**
 * A 5-port (E/W/N/S/Local) input-queued VC router.
 *
 * Per cycle the router runs three externally sequenced phases:
 *  - receivePhase: drain flit/credit channels into buffers,
 *  - computePhase: routing + VC allocation + switch allocation
 *    (internalSpeedup passes) + crossbar traversal into output FIFOs,
 *  - transmitPhase: each output FIFO pushes one flit into its link.
 */
class Router : public RouterView
{
  public:
    /** Event counters used by the paper's Fig. 10 analysis. */
    struct Counters
    {
        std::uint64_t vcAllocSuccess = 0;
        std::uint64_t vcAllocFail = 0;    ///< blocking events
        double puritySum = 0.0;           ///< sum of per-event purity
        std::uint64_t puritySamples = 0;
        std::uint64_t flitsTraversed = 0;
        /**
         * VC-allocation grants split by the winning request's
         * Priority regime (escape / busy / footprint / idle /
         * reclaim), indexed by the Priority enum value. Sums to
         * vcAllocSuccess; the flight recorder diffs this per window
         * to expose Algorithm-1 regime transitions over time.
         */
        std::array<std::uint64_t, 5> vaGrantsByPriority{};

        /** Mean footprint share of busy VCs at blocking events. */
        double
        purity() const
        {
            return puritySamples == 0
                ? 0.0
                : puritySum / static_cast<double>(puritySamples);
        }

        /** Degree of HoL blocking: (1 - purity) x #blocking events. */
        double
        holDegree() const
        {
            return (1.0 - purity())
                * static_cast<double>(vcAllocFail);
        }

        void reset() { *this = Counters{}; }
    };

    Router(const Mesh& mesh, int node, const RouterParams& params,
           const RoutingAlgorithm* routing, std::uint64_t seed,
           const StatusProvider* status);

    /** Wire the incoming-flit and outgoing-credit channels of a port. */
    void connectInput(int port, FlitChannel* flit_in,
                      CreditChannel* credit_out);

    /** Wire the outgoing-flit and incoming-credit channels of a port. */
    void connectOutput(int port, FlitChannel* flit_out,
                       CreditChannel* credit_in);

    /** Record the neighbor node reachable through @p port (status). */
    void setNeighbor(int port, int node);

    void receivePhase(std::int64_t cycle);
    void computePhase(std::int64_t cycle);
    void transmitPhase(std::int64_t cycle);

    /**
     * True when stepping this router next cycle could change state:
     * flits buffered in input VCs or output FIFOs, or anything (even
     * not yet arrived) in an incoming flit/credit pipe. Quiescent
     * routers (pending work == false) are observationally inert — all
     * three phases are no-ops — which is what makes activity-driven
     * stepping bit-identical to full stepping.
     */
    bool hasPendingWork() const;

    // RouterView interface.
    int nodeId() const override { return node_; }
    const Mesh& mesh() const override { return *mesh_; }
    int numVcs() const override { return params_.numVcs; }
    int vcBufSize() const override { return params_.vcBufSize; }
    VcMask idleVcMask(int port) const override;
    VcMask footprintVcMask(int port, int dest) const override;
    VcMask occupiedVcMask(int port) const override;
    VcMask zeroCreditVcMask(int port) const override;
    int convergingInputs(int dest) const override;
    int remoteIdleCount(int through_port, int port) const override;
    Rng& rng() const override { return rng_; }

    /** Idle-VC count of an output port (published to the status net). */
    int idleVcCount(int port) const;

    /**
     * Bitmask of output ports whose idle-VC count may have changed
     * since the last call; clears the mask. The transmit phase
     * publishes only these ports to the status board — an unchanged
     * count is already current there (the board is never reset).
     */
    std::uint32_t takePublishMask();

    /** Owner destination of output VC (port, vc); -1 when idle. */
    int outVcOwner(int port, int vc) const;

    /** True if output VC (port, vc) is occupied. */
    bool outVcOccupied(int port, int vc) const;

    /** Number of buffered flits in input VC (port, vc). */
    int inputOccupancy(int port, int vc) const;

    /** Destination of a flit buffered in input VC, -1 if empty. */
    int inputFrontDest(int port, int vc) const;

    /** True if any buffered flit in (port, vc) targets @p dest. */
    bool inputHoldsDest(int port, int vc, int dest) const;

    const Counters& counters() const { return counters_; }
    void resetCounters() { counters_.reset(); }

    /** Total flits buffered in the router (for drain checks). */
    int totalBufferedFlits() const;

    // Telemetry probes (sampled off the critical path).

    /** Flits buffered in input VCs only (the "VC occupancy" probe). */
    int inputBufferedFlits() const;

    /** Sum of available credits over all output VCs. */
    int totalOutputCredits() const;

    /** Occupied output VCs across all ports (live footprint lanes). */
    int occupiedOutVcs() const;

    /**
     * Occupied output VCs with index < @p vc_limit across all ports —
     * with vc_limit = numEscapeVcs(), the router's escape-VC usage
     * (the spatial-observatory esc_occ probe).
     */
    int occupiedOutVcsBelow(int vc_limit) const;

    /** Flits waiting in output FIFOs. */
    int outputFifoFlits() const;

    /**
     * Attach (or detach with nullptr) a packet-lifecycle tracer. The
     * per-flit hooks cost one branch while @p tracer is nullptr.
     */
    void setTracer(PacketTracer* tracer) { tracer_ = tracer; }

    // Forensic accessors (auditor / watchdog / state dumps; never on
    // the per-cycle hot path).

    /** Available credits of output VC (port, vc). */
    int outVcCredits(int port, int vc) const;

    /** True if output VC (port, vc) is allocated to a packet. */
    bool outVcBusy(int port, int vc) const;

    /** Full input-VC state (stage, granted route, buffered flits). */
    const InputVc& inputVc(int port, int vc) const;

    /** Flits waiting in the output FIFO of @p port, head first. */
    const RingBuffer<Flit>& outputFifo(int port) const;

    /** Flits of output FIFO @p port destined for downstream VC @p vc. */
    int outputFifoFlitsForVc(int port, int vc) const;

    /** Neighbor node wired to @p port; -1 when unconnected. */
    int neighborAt(int port) const
    {
        return neighborNode_[static_cast<std::size_t>(port)];
    }

    /**
     * Fault-injection hook: silently consume one credit of output VC
     * (port, vc) without moving a flit, breaking credit conservation.
     * Tests use it to prove the auditor catches credit leaks.
     */
    void debugLeakCredit(int port, int vc);

  private:
    struct InputPort
    {
        FlitChannel* flitIn = nullptr;
        CreditChannel* creditOut = nullptr;
        std::vector<InputVc> vcs;
        RoundRobinArbiter saArbiter;  ///< over this port's VCs
        std::vector<OutputSet> requests;  ///< per-VC request sets
        VcMask occMask = 0;  ///< bit v set while vcs[v] is non-empty
    };

    struct OutputPort
    {
        FlitChannel* flitOut = nullptr;
        CreditChannel* creditIn = nullptr;
        std::vector<OutVcState> vcs;
        RoundRobinArbiter saArbiter;  ///< over input ports
        RingBuffer<Flit> fifo;  ///< capacity fixed to outputFifoSize
    };

    void runVcAllocation();
    void runSwitchAllocation();
    void moveFlit(int in_port, int in_vc);

    /** Tentative VC-allocation grant offered to one input VC. */
    struct VaGrant
    {
        int outPort = -1;
        int outVc = -1;
        Priority priority = Priority::Lowest;
    };

    const Mesh* mesh_;
    int node_;
    RouterParams params_;
    const RoutingAlgorithm* routing_;
    const StatusProvider* status_;
    mutable Rng rng_;

    std::array<InputPort, kNumPorts> inputs_;
    std::array<OutputPort, kNumPorts> outputs_;
    std::array<int, kNumPorts> neighborNode_;
    std::int64_t cycle_ = 0;

    // Per-cycle scratch state, kept as members so the per-cycle hot
    // path performs no heap allocation.
    std::vector<std::pair<int, int>> waiting_;  ///< (in port, in vc)
    std::vector<std::vector<std::pair<int, int>>>
        vcRequesters_;              ///< [port*V+vc] -> (id, priority)
    std::vector<int> touchedOutVcs_;
    std::vector<int> vcRrPtr_;      ///< per-output-VC tie-break pointer
    std::vector<VaGrant> bestGrant_;  ///< per flattened input VC id
    std::vector<std::uint8_t>
        destConvergence_;  ///< input VCs holding flits per destination
    std::vector<int> destWaitTouched_;  ///< dests to clear next cycle

    // Per-port output-VC masks, cached for the request-gathering
    // phase of a cycle (no output VC changes state during it). The
    // routing functions hit these masks many times per cycle, but many
    // cycles route through only a subset of ports, so each port's
    // masks are computed lazily on first access within the window.
    mutable std::array<VcMask, kNumPorts> cachedIdle_{};
    mutable std::array<VcMask, kNumPorts> cachedOccupied_{};
    mutable std::array<VcMask, kNumPorts> cachedZeroCredit_{};
    mutable std::array<std::uint8_t, kNumPorts> maskPortValid_{};
    bool maskCacheValid_ = false;  ///< caching window open

    void fillMaskCache(int port) const;
    VcMask computeIdleVcMask(int port) const;
    VcMask computeOccupiedVcMask(int port) const;
    VcMask computeZeroCreditVcMask(int port) const;

    // Incrementally maintained totals backing the telemetry probes and
    // hasPendingWork() without walking every VC each cycle.
    int bufferedFlits_ = 0;  ///< flits across all input VCs
    int fifoFlits_ = 0;      ///< flits across all output FIFOs

    // Per-port idle-VC count published to the status network every
    // cycle; recomputed only after an output-VC state change on the
    // port (credit return, allocation, credit consumption, tail).
    mutable std::array<int, kNumPorts> statusIdleCount_{};
    mutable std::array<std::uint8_t, kNumPorts> statusIdleDirty_{};
    /** Ports not yet re-published since their count last changed. */
    std::uint32_t publishDirty_ = 0;

    Counters counters_;
    PacketTracer* tracer_ = nullptr;
};

} // namespace footprint

#endif // FOOTPRINT_ROUTER_ROUTER_HPP
