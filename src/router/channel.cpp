#include "router/channel.hpp"

namespace footprint {

// Explicit instantiations for the two channel types used by the
// network, so template code is compiled (and warned about) once here.
template class Pipe<Flit>;
template class Pipe<Credit>;

} // namespace footprint
