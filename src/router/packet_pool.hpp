/**
 * @file
 * Pooled per-packet constants referenced by Flit::desc.
 *
 * A flit is copied at every hop, so the fields only the measurement
 * apparatus reads (size, timestamps, flow class, measured flag) are
 * hoisted out of the flit into a PacketDescriptor slot allocated at
 * injection and released when the tail flit is ejected. The pool is
 * owned by the Network.
 *
 * The pool is *segmented* so sharded stepping never contends on it:
 * each source endpoint allocates exclusively from its own segment (a
 * private LIFO free list plus slot array), and a descriptor handle
 * encodes (segment, slot index). Cross-segment get() during parallel
 * phases is safe because it only touches live descriptors no
 * allocator writes; cross-segment release at ejection is deferred by
 * the endpoints and flushed in a serial end-of-step epilogue, in node
 * order, so free-list contents — and hence allocation sequences — are
 * identical for every step mode and thread count. refillAll() (also
 * called from the serial epilogue) keeps at least one free slot per
 * segment, and since an endpoint allocates at most one descriptor per
 * cycle, an in-network alloc never grows a slot array mid-phase.
 *
 * Slots recycle LIFO, so a steady-state run touches the same few
 * cache lines. Descriptor 0 (segment 0, slot 0) is a reserved null
 * descriptor — default-constructed, never released — so hand-crafted
 * flits in tests and forensic paths can dereference desc == 0 safely;
 * slot 0 of every other segment is reserved too, keeping the live/
 * free accounting uniform.
 */

#ifndef FOOTPRINT_ROUTER_PACKET_POOL_HPP
#define FOOTPRINT_ROUTER_PACKET_POOL_HPP

#include <cstdint>
#include <vector>

#include "router/flit.hpp"
#include "sim/log.hpp"

namespace footprint {

/** Per-packet constants shared by all flits of one packet. */
struct PacketDescriptor
{
    int packetSize = 1;             ///< length in flits (>= 1)
    std::int64_t createTime = 0;    ///< cycle the source generated it
    std::int64_t injectTime = -1;   ///< cycle the head flit was injected
    FlowClass flowClass = FlowClass::Background;
    bool measured = false;
};

/**
 * Segmented free-list pool of PacketDescriptors. Capacity grows on
 * demand but reaches a fixed point once each segment has seen its
 * peak number of in-flight packets; after that alloc/release never
 * touch the heap.
 */
class PacketPool
{
  public:
    /** desc layout: segment in the high bits, slot index in the low. */
    static constexpr std::uint32_t kIdxBits = 20;
    static constexpr std::uint32_t kIdxMask = (1u << kIdxBits) - 1;
    static constexpr std::uint32_t kMaxSegments = 1u << (32 - kIdxBits);

    PacketPool() { ensureSegment(0); }

    /**
     * Pre-create segments 0..n-1 (one per source endpoint) so sharded
     * stepping never grows the segment table concurrently.
     */
    void
    initSegments(int n)
    {
        if (n > 0)
            ensureSegment(n - 1);
    }

    /** Allocate from segment 0 (standalone/test convenience). */
    std::uint32_t alloc(const Packet& pkt) { return allocFrom(0, pkt); }

    /**
     * Allocate a slot in @p seg describing @p pkt; injectTime starts
     * at -1. Only @p seg's owner may call this during a parallel
     * phase.
     */
    std::uint32_t
    allocFrom(int seg, const Packet& pkt)
    {
        ensureSegment(seg);
        Segment& s = segments_[static_cast<std::size_t>(seg)];
        std::uint32_t idx;
        if (s.freeIdx.empty()) {
            // Standalone growth path; in-network use never reaches it
            // because refillAll() runs between cycles and an endpoint
            // allocates at most one descriptor per cycle.
            idx = static_cast<std::uint32_t>(s.slots.size());
            FP_ASSERT(idx <= kIdxMask, "packet pool segment overflow");
            s.slots.emplace_back();
        } else {
            idx = s.freeIdx.back();
            s.freeIdx.pop_back();
        }
        PacketDescriptor& d = s.slots[idx];
        d.packetSize = pkt.size;
        d.createTime = pkt.createTime;
        d.injectTime = -1;
        d.flowClass = pkt.flowClass;
        d.measured = pkt.measured;
        return (static_cast<std::uint32_t>(seg) << kIdxBits) | idx;
    }

    /** Return a slot to its segment; releasing desc 0 is a no-op. */
    void
    release(std::uint32_t desc)
    {
        if (desc == 0)
            return;
        segments_[desc >> kIdxBits].freeIdx.push_back(desc & kIdxMask);
    }

    const PacketDescriptor& get(std::uint32_t desc) const
    {
        return segments_[desc >> kIdxBits].slots[desc & kIdxMask];
    }

    PacketDescriptor& get(std::uint32_t desc)
    {
        return segments_[desc >> kIdxBits].slots[desc & kIdxMask];
    }

    /**
     * Top up every segment to at least one free slot. Serial-only
     * (Network's end-of-step epilogue); this is what lets in-network
     * alloc stay growth-free during parallel phases.
     */
    void
    refillAll()
    {
        for (Segment& s : segments_) {
            if (s.freeIdx.empty())
                addSpare(s);
        }
    }

    /** refillAll() for a single segment. */
    void
    refill(int seg)
    {
        Segment& s = segments_[static_cast<std::size_t>(seg)];
        if (s.freeIdx.empty())
            addSpare(s);
    }

    /**
     * Reserve vector capacity for @p n slots in every segment. The
     * pool still grows lazily (addSpare at high-water marks), but
     * growth within the reserved capacity never touches the heap —
     * zero-allocation benches call this before measuring so late
     * high-water marks cannot allocate mid-window (DESIGN.md §17).
     */
    void
    reserveSlotCapacity(std::size_t n)
    {
        for (Segment& s : segments_) {
            s.slots.reserve(n);
            s.freeIdx.reserve(n);
        }
    }

    /** Slots currently allocated to live packets (excl. reserved). */
    std::size_t
    liveCount() const
    {
        std::size_t live = 0;
        for (const Segment& s : segments_)
            live += s.slots.size() - 1 - s.freeIdx.size();
        return live;
    }

    /** Total slots ever created, including the reserved ones. */
    std::size_t
    slotCount() const
    {
        std::size_t total = 0;
        for (const Segment& s : segments_)
            total += s.slots.size();
        return total;
    }

    int segmentCount() const
    {
        return static_cast<int>(segments_.size());
    }

  private:
    // One cache line per segment header: under sharded stepping each
    // worker allocates/releases only from its own nodes' segments, so
    // padding the headers apart keeps the vector bookkeeping of
    // neighboring segments from false-sharing at 4096-node scale.
    struct alignas(64) Segment
    {
        std::vector<PacketDescriptor> slots;
        std::vector<std::uint32_t> freeIdx;
    };

    static void
    addSpare(Segment& s)
    {
        s.freeIdx.push_back(static_cast<std::uint32_t>(s.slots.size()));
        s.slots.emplace_back();
    }

    void
    ensureSegment(int seg)
    {
        FP_ASSERT(seg >= 0
                      && static_cast<std::uint32_t>(seg) < kMaxSegments,
                  "packet pool segment id out of range: " << seg);
        while (segments_.size() <= static_cast<std::size_t>(seg)) {
            Segment s;
            s.slots.emplace_back();  // reserved slot 0 (null for seg 0)
            addSpare(s);
            segments_.push_back(std::move(s));
        }
    }

    std::vector<Segment> segments_;
};

} // namespace footprint

#endif // FOOTPRINT_ROUTER_PACKET_POOL_HPP
