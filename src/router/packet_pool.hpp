/**
 * @file
 * Pooled per-packet constants referenced by Flit::desc.
 *
 * A flit is copied at every hop, so the fields only the measurement
 * apparatus reads (size, timestamps, flow class, measured flag) are
 * hoisted out of the flit into a PacketDescriptor slot allocated at
 * injection and released when the tail flit is ejected. The pool is
 * owned by the Network; slots are recycled LIFO, so a steady-state run
 * touches the same few cache lines no matter how many packets flow.
 *
 * Slot 0 is a reserved null descriptor (default-constructed, never
 * released) so hand-crafted flits in tests and forensic paths can
 * dereference desc == 0 safely.
 */

#ifndef FOOTPRINT_ROUTER_PACKET_POOL_HPP
#define FOOTPRINT_ROUTER_PACKET_POOL_HPP

#include <cstdint>
#include <vector>

#include "router/flit.hpp"

namespace footprint {

/** Per-packet constants shared by all flits of one packet. */
struct PacketDescriptor
{
    int packetSize = 1;             ///< length in flits (>= 1)
    std::int64_t createTime = 0;    ///< cycle the source generated it
    std::int64_t injectTime = -1;   ///< cycle the head flit was injected
    FlowClass flowClass = FlowClass::Background;
    bool measured = false;
};

/**
 * Free-list pool of PacketDescriptors. Capacity grows on demand but
 * reaches a fixed point once the peak number of in-flight packets has
 * been seen; after that alloc/release never touch the heap.
 */
class PacketPool
{
  public:
    PacketPool() { slots_.emplace_back(); }  // slot 0: null descriptor

    /** Allocate a slot describing @p pkt; injectTime starts at -1. */
    std::uint32_t
    alloc(const Packet& pkt)
    {
        std::uint32_t idx;
        if (freeList_.empty()) {
            idx = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        } else {
            idx = freeList_.back();
            freeList_.pop_back();
        }
        PacketDescriptor& d = slots_[idx];
        d.packetSize = pkt.size;
        d.createTime = pkt.createTime;
        d.injectTime = -1;
        d.flowClass = pkt.flowClass;
        d.measured = pkt.measured;
        return idx;
    }

    /** Return a slot to the free list; releasing slot 0 is a no-op. */
    void
    release(std::uint32_t idx)
    {
        if (idx == 0)
            return;
        freeList_.push_back(idx);
    }

    const PacketDescriptor& get(std::uint32_t idx) const
    {
        return slots_[idx];
    }

    PacketDescriptor& get(std::uint32_t idx) { return slots_[idx]; }

    /** Slots currently allocated to live packets (excludes slot 0). */
    std::size_t liveCount() const
    {
        return slots_.size() - 1 - freeList_.size();
    }

    /** Total slots ever created, including the null slot. */
    std::size_t slotCount() const { return slots_.size(); }

  private:
    std::vector<PacketDescriptor> slots_;
    std::vector<std::uint32_t> freeList_;
};

} // namespace footprint

#endif // FOOTPRINT_ROUTER_PACKET_POOL_HPP
