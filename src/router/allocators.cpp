#include "router/allocators.hpp"

#include <bit>

#include "sim/log.hpp"

namespace footprint {

RoundRobinArbiter::RoundRobinArbiter(int num_requesters)
    : size_(static_cast<std::size_t>(num_requesters)), pointer_(0)
{}

void
RoundRobinArbiter::resize(int num_requesters)
{
    size_ = static_cast<std::size_t>(num_requesters);
    pointer_ = 0;
}

int
RoundRobinArbiter::arbitrate(const std::vector<bool>& requests)
{
    FP_ASSERT(requests.size() == size_, "arbiter size mismatch");
    for (std::size_t i = 0; i < size_; ++i) {
        const std::size_t idx =
            (static_cast<std::size_t>(pointer_) + i) % size_;
        if (requests[idx]) {
            pointer_ = static_cast<int>((idx + 1) % size_);
            return static_cast<int>(idx);
        }
    }
    return -1;
}

int
RoundRobinArbiter::arbitrate(std::uint64_t requests)
{
    FP_ASSERT(size_ <= 64, "mask arbitrate needs <= 64 requesters");
    FP_ASSERT(size_ == 64
                  || (requests >> size_) == 0,
              "request bits beyond arbiter size");
    if (requests == 0)
        return -1;
    // First request at or after the pointer wins; wrap otherwise.
    const std::uint64_t at_or_after =
        requests >> pointer_ << pointer_;
    const int winner = std::countr_zero(
        at_or_after != 0 ? at_or_after : requests);
    pointer_ = static_cast<int>(
        (static_cast<std::size_t>(winner) + 1) % size_);
    return winner;
}

PriorityArbiter::PriorityArbiter(int num_requesters)
    : priorities_(static_cast<std::size_t>(num_requesters), -1),
      anyRequest_(false), pointer_(0)
{}

void
PriorityArbiter::resize(int num_requesters)
{
    priorities_.assign(static_cast<std::size_t>(num_requesters), -1);
    anyRequest_ = false;
    pointer_ = 0;
}

void
PriorityArbiter::clearRequests()
{
    if (anyRequest_)
        std::fill(priorities_.begin(), priorities_.end(), -1);
    anyRequest_ = false;
}

void
PriorityArbiter::addRequest(int requester, int priority)
{
    FP_ASSERT(priority >= 0, "priority must be non-negative");
    auto idx = static_cast<std::size_t>(requester);
    FP_ASSERT(idx < priorities_.size(), "requester out of range");
    if (priority > priorities_[idx])
        priorities_[idx] = priority;
    anyRequest_ = true;
}

int
PriorityArbiter::arbitrate()
{
    if (!anyRequest_)
        return -1;
    const std::size_t n = priorities_.size();
    int best = -1;
    int best_pri = -1;
    // Scan starting at the round-robin pointer so that the first
    // max-priority requester at or after the pointer wins ties.
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx =
            (static_cast<std::size_t>(pointer_) + i) % n;
        if (priorities_[idx] > best_pri) {
            best_pri = priorities_[idx];
            best = static_cast<int>(idx);
        }
    }
    if (best >= 0 && best_pri >= 0) {
        pointer_ = static_cast<int>(
            (static_cast<std::size_t>(best) + 1) % n);
        return best;
    }
    return -1;
}

} // namespace footprint
