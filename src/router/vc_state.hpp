/**
 * @file
 * Virtual-channel state kept by a router: per-input-VC buffers and the
 * per-output-VC bookkeeping (credits, busy flag, and the "owner
 * destination" register that identifies footprint VCs).
 */

#ifndef FOOTPRINT_ROUTER_VC_STATE_HPP
#define FOOTPRINT_ROUTER_VC_STATE_HPP

#include <cstdint>

#include "router/flit.hpp"
#include "sim/ring_buffer.hpp"

namespace footprint {

/** Bitmask over VC indices; supports up to 64 VCs per channel. */
using VcMask = std::uint64_t;

/** @return mask with the low @p n bits set. */
inline constexpr VcMask
maskOfFirst(int n)
{
    return n >= 64 ? ~VcMask{0} : ((VcMask{1} << n) - 1);
}

/** @return number of set bits in @p m. */
int popcount(VcMask m);

/**
 * State of one input virtual channel: its flit FIFO and routing
 * progress. An input VC holds flits of at most one packet under the
 * atomic reallocation policy; under non-atomic reallocation the next
 * packet's flits may queue behind the previous tail.
 */
class InputVc
{
  public:
    /** Routing progress of the packet at the head of the FIFO. */
    enum class State {
        Idle,     ///< no packet being routed
        VcAlloc,  ///< head flit at front, waiting for an output VC
        Active,   ///< output VC granted; flits may traverse the switch
    };

    State state = State::Idle;
    int outPort = -1;  ///< granted output port (valid when Active)
    int outVc = -1;    ///< granted output VC (valid when Active)

    /** Flit FIFO; capacity fixed to the VC buffer depth at reset(). */
    RingBuffer<Flit> buffer;

    bool empty() const { return buffer.empty(); }
    std::size_t occupancy() const { return buffer.size(); }
    const Flit& front() const { return buffer.front(); }

    /** Reset routing state after the tail flit leaves. */
    void
    releaseRoute()
    {
        state = State::Idle;
        outPort = -1;
        outVc = -1;
    }
};

/** Human-readable name of an input-VC state ("idle" / "va" / "active"). */
const char* inputVcStateName(InputVc::State state);

/**
 * Upstream-side tracking of one downstream input VC: credit count, busy
 * flag (allocated to an in-flight packet), and the destination of the
 * packet that currently occupies it. The owner register is exactly the
 * log2(N)-bit state the paper's cost analysis (Sec. 4.4) accounts for,
 * and it is what makes a VC a "footprint" VC for a given destination.
 */
class OutVcState
{
  public:
    explicit OutVcState(int buf_size = 0)
        : credits_(buf_size), bufSize_(buf_size)
    {}

    /** Allocate this VC to a packet headed for @p dest. */
    void allocate(int dest);

    /** Mark the tail flit as sent (packet no longer growing). */
    void tailSent();

    /** Consume one credit (a flit was sent into the downstream VC). */
    void consumeCredit();

    /** Return one credit (a downstream slot freed). */
    void returnCredit();

    bool busy() const { return busy_; }
    int credits() const { return credits_; }
    int bufSize() const { return bufSize_; }

    /** True while any flit of the current packet is still downstream. */
    bool occupied() const { return busy_ || credits_ < bufSize_; }

    /** Destination of the occupying packet; valid while occupied(). */
    int ownerDest() const { return ownerDest_; }

    /** Fully idle: unallocated with an empty downstream buffer. */
    bool idle() const { return !busy_ && credits_ == bufSize_; }

    /**
     * Whether a new packet may be allocated to this VC.
     *
     * @param atomic Duato-based algorithms must wait for the tail
     *        flit's credit (empty downstream buffer); others only for
     *        the tail to have been sent.
     */
    bool
    allocatable(bool atomic) const
    {
        return atomic ? idle() : !busy_;
    }

  private:
    bool busy_ = false;
    int credits_ = 0;
    int bufSize_ = 0;
    int ownerDest_ = -1;
};

} // namespace footprint

#endif // FOOTPRINT_ROUTER_VC_STATE_HPP
