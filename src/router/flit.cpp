#include "router/flit.hpp"

#include <sstream>

#include "sim/log.hpp"

namespace footprint {

std::string
Flit::toString() const
{
    std::ostringstream oss;
    oss << "flit[pkt=" << packetId << " " << src << "->" << dest
        << (head ? " H" : "") << (tail ? " T" : "") << " vc=" << vc
        << " hops=" << hops << "]";
    return oss.str();
}

Flit
makeFlit(const Packet& pkt, int index)
{
    FP_ASSERT(index >= 0 && index < pkt.size,
              "flit index " << index << " out of packet of size "
                            << pkt.size);
    Flit f;
    f.packetId = pkt.id;
    f.src = pkt.src;
    f.dest = pkt.dest;
    f.head = (index == 0);
    f.tail = (index == pkt.size - 1);
    f.packetSize = pkt.size;
    f.createTime = pkt.createTime;
    f.flowClass = pkt.flowClass;
    f.measured = pkt.measured;
    return f;
}

} // namespace footprint
