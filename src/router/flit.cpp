#include "router/flit.hpp"

#include <cinttypes>
#include <cstdio>

#include "sim/log.hpp"

namespace footprint {

std::string
Flit::toString() const
{
    // snprintf instead of ostringstream: toString() feeds FP_ASSERT
    // messages on the hot path, and the stream machinery allocates
    // even for messages that are never used.
    char buf[96];
    const int n = std::snprintf(
        buf, sizeof(buf), "flit[pkt=%" PRIu64 " %d->%d%s%s vc=%d hops=%d]",
        packetId, src, dest, head ? " H" : "", tail ? " T" : "",
        static_cast<int>(vc), static_cast<int>(hops));
    const std::size_t len =
        n < 0 ? 0
              : (static_cast<std::size_t>(n) < sizeof(buf)
                     ? static_cast<std::size_t>(n)
                     : sizeof(buf) - 1);
    return std::string(buf, len);
}

Flit
makeFlit(const Packet& pkt, int index, std::uint32_t desc)
{
    FP_ASSERT(index >= 0 && index < pkt.size,
              "flit index " << index << " out of packet of size "
                            << pkt.size);
    Flit f;
    f.packetId = pkt.id;
    f.src = pkt.src;
    f.dest = pkt.dest;
    f.desc = desc;
    f.head = (index == 0);
    f.tail = (index == pkt.size - 1);
    return f;
}

} // namespace footprint
