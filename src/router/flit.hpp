/**
 * @file
 * Packet and flit types plus credit messages — the units of transfer in
 * the wormhole, credit-based flow-controlled network.
 */

#ifndef FOOTPRINT_ROUTER_FLIT_HPP
#define FOOTPRINT_ROUTER_FLIT_HPP

#include <cstdint>
#include <string>

namespace footprint {

/** Traffic classes used by the measurement apparatus. */
enum class FlowClass : int {
    Background = 0,  ///< regular / background traffic (latency measured)
    Hotspot = 1,     ///< persistent hotspot flows (latency ignored)
};

/**
 * A packet as created by a traffic source. Packets are segmented into
 * flits at injection; the Packet itself never travels through the
 * network.
 */
struct Packet
{
    std::uint64_t id = 0;
    int src = -1;
    int dest = -1;
    int size = 1;                   ///< length in flits (>= 1)
    std::int64_t createTime = 0;    ///< cycle the source generated it
    FlowClass flowClass = FlowClass::Background;
    bool measured = false;          ///< counted in latency statistics
};

/**
 * A flit in flight. Single-flit packets have head == tail == true.
 *
 * The vc field is context-dependent: on a channel it names the
 * downstream input VC the flit is destined for; inside an input buffer
 * it names the VC the flit occupies.
 *
 * A flit is copied at every hop (channel -> input VC -> output FIFO ->
 * channel), so it carries only what routers read per cycle: identity
 * (packetId), the routing inputs (src/dest, used by every routing
 * function), framing (head/tail), and mutable in-flight state
 * (vc/hops). Per-packet constants that only the measurement apparatus
 * reads (size, timestamps, flow class, measured flag) live in a pooled
 * PacketDescriptor referenced by the desc index; slot 0 is a reserved
 * null descriptor for hand-crafted flits in tests.
 */
struct Flit
{
    std::uint64_t packetId = 0;
    int src = -1;
    int dest = -1;
    std::uint32_t desc = 0;   ///< PacketDescriptor pool slot (0 = none)
    std::int16_t vc = -1;
    std::int16_t hops = 0;
    bool head = false;
    bool tail = false;

    std::string toString() const;
};

static_assert(sizeof(Flit) <= 32, "Flit is copied per hop; keep it small");

/** A credit returned upstream when an input-buffer slot frees. */
struct Credit
{
    int vc = -1;
};

/** Build the flit sequence for @p pkt (head..body..tail). */
Flit makeFlit(const Packet& pkt, int index, std::uint32_t desc = 0);

} // namespace footprint

#endif // FOOTPRINT_ROUTER_FLIT_HPP
