/**
 * @file
 * Arbitration primitives: a round-robin arbiter (switch allocation and
 * tie-breaking) and a priority arbiter with round-robin tie-break (the
 * priority-based VC allocator Algorithm 1 drives).
 */

#ifndef FOOTPRINT_ROUTER_ALLOCATORS_HPP
#define FOOTPRINT_ROUTER_ALLOCATORS_HPP

#include <cstdint>
#include <vector>

namespace footprint {

/**
 * Classic round-robin arbiter over a fixed number of requesters.
 * The grant pointer advances past the winner, guaranteeing fairness.
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(int num_requesters = 0);

    void resize(int num_requesters);
    int size() const { return static_cast<int>(size_); }

    /**
     * Arbitrate among the requesters flagged in @p requests.
     *
     * @param requests requests[i] true if requester i is requesting.
     * @return winning requester index, or -1 if none requested.
     */
    int arbitrate(const std::vector<bool>& requests);

    /**
     * Bitmask form of arbitrate() for hot paths (identical grants and
     * pointer updates): bit i of @p requests set if requester i is
     * requesting. Requires at most 64 requesters.
     */
    int arbitrate(std::uint64_t requests);

    /** Current position of the grant pointer (for tests). */
    int pointer() const { return pointer_; }

  private:
    std::size_t size_;
    int pointer_;
};

/**
 * Priority arbiter with round-robin tie-break.
 *
 * Grants the requester with the numerically largest priority; among
 * equal-priority requesters a per-arbiter round-robin pointer breaks
 * the tie. This is the output-VC-side arbiter of the separable,
 * priority-based VC allocator.
 */
class PriorityArbiter
{
  public:
    explicit PriorityArbiter(int num_requesters = 0);

    void resize(int num_requesters);

    /** Remove all requests (call before each allocation round). */
    void clearRequests();

    /** Register a request from @p requester at @p priority (>= 0). */
    void addRequest(int requester, int priority);

    bool hasRequests() const { return anyRequest_; }

    /**
     * @return winner among current requests (-1 if none); advances the
     * round-robin pointer past the winner.
     */
    int arbitrate();

  private:
    std::vector<int> priorities_;  ///< -1 when not requesting
    bool anyRequest_;
    int pointer_;
};

} // namespace footprint

#endif // FOOTPRINT_ROUTER_ALLOCATORS_HPP
