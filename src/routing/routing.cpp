#include "routing/routing.hpp"

#include "routing/dbar.hpp"
#include "routing/dor.hpp"
#include "routing/footprint.hpp"
#include "routing/odd_even.hpp"
#include "routing/xordet.hpp"
#include "sim/config.hpp"
#include "sim/log.hpp"

namespace footprint {

Dir
dorDir(const Mesh& mesh, int cur, int dest)
{
    const Coord cc = mesh.coordOf(cur);
    const Coord cd = mesh.coordOf(dest);
    if (cd.x > cc.x)
        return Dir::East;
    if (cd.x < cc.x)
        return Dir::West;
    if (cd.y > cc.y)
        return Dir::North;
    if (cd.y < cc.y)
        return Dir::South;
    return Dir::Local;
}

Dir
dorDir(const Topology& topo, int cur, int dest)
{
    if (!topo.hasWrap())
        return dorDir(topo.grid(), cur, dest);
    const Coord cc = topo.coordOf(cur);
    const Coord cd = topo.coordOf(dest);
    if (cd.x != cc.x) {
        if (!topo.wrapX())
            return cd.x > cc.x ? Dir::East : Dir::West;
        const int w = topo.width();
        const int east = (cd.x - cc.x + w) % w;
        return east <= w - east ? Dir::East : Dir::West;
    }
    if (cd.y != cc.y) {
        if (!topo.wrapY())
            return cd.y > cc.y ? Dir::North : Dir::South;
        const int h = topo.height();
        const int north = (cd.y - cc.y + h) % h;
        return north <= h - north ? Dir::North : Dir::South;
    }
    return Dir::Local;
}

namespace {

std::unique_ptr<RoutingAlgorithm>
makeBase(const std::string& name, const SimConfig& cfg)
{
    const int threshold =
        cfg.contains("congestion_threshold")
            ? static_cast<int>(cfg.getInt("congestion_threshold"))
            : 0;
    if (name == "dor")
        return std::make_unique<DorRouting>();
    if (name == "oddeven")
        return std::make_unique<OddEvenRouting>();
    if (name == "dbar") {
        const bool remote = cfg.contains("dbar_use_remote")
            ? cfg.getBool("dbar_use_remote")
            : true;
        return std::make_unique<DbarRouting>(threshold, remote);
    }
    if (name == "footprint") {
        const int cap = cfg.contains("fp_vc_cap")
            ? static_cast<int>(cfg.getInt("fp_vc_cap"))
            : 0;
        const FootprintRouting::Variant variant =
            cfg.contains("fp_variant")
                ? FootprintRouting::parseVariant(
                      cfg.getStr("fp_variant"))
                : FootprintRouting::Variant::Converge;
        const int converge = cfg.contains("fp_converge_threshold")
            ? static_cast<int>(cfg.getInt("fp_converge_threshold"))
            : 2;
        return std::make_unique<FootprintRouting>(threshold, cap,
                                                  variant, converge);
    }
    fatal("unknown routing algorithm: " + name);
}

} // namespace

std::unique_ptr<RoutingAlgorithm>
makeRoutingAlgorithm(const std::string& name, const SimConfig& cfg)
{
    const std::string suffix = "+xordet";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        auto base =
            makeBase(name.substr(0, name.size() - suffix.size()), cfg);
        return std::make_unique<XordetRouting>(std::move(base));
    }
    return makeBase(name, cfg);
}

std::vector<std::string>
allRoutingAlgorithmNames()
{
    return {
        "dor",       "oddeven",        "dbar",         "footprint",
        "dor+xordet", "oddeven+xordet", "dbar+xordet",
    };
}

} // namespace footprint
