#include "routing/routing.hpp"

#include "routing/dbar.hpp"
#include "routing/dor.hpp"
#include "routing/footprint.hpp"
#include "routing/odd_even.hpp"
#include "routing/xordet.hpp"
#include "sim/config.hpp"
#include "sim/log.hpp"

namespace footprint {

Dir
dorDir(const Mesh& mesh, int cur, int dest)
{
    const Coord cc = mesh.coordOf(cur);
    const Coord cd = mesh.coordOf(dest);
    if (cd.x > cc.x)
        return Dir::East;
    if (cd.x < cc.x)
        return Dir::West;
    if (cd.y > cc.y)
        return Dir::North;
    if (cd.y < cc.y)
        return Dir::South;
    return Dir::Local;
}

namespace {

std::unique_ptr<RoutingAlgorithm>
makeBase(const std::string& name, const SimConfig& cfg)
{
    const int threshold =
        cfg.contains("congestion_threshold")
            ? static_cast<int>(cfg.getInt("congestion_threshold"))
            : 0;
    if (name == "dor")
        return std::make_unique<DorRouting>();
    if (name == "oddeven")
        return std::make_unique<OddEvenRouting>();
    if (name == "dbar") {
        const bool remote = cfg.contains("dbar_use_remote")
            ? cfg.getBool("dbar_use_remote")
            : true;
        return std::make_unique<DbarRouting>(threshold, remote);
    }
    if (name == "footprint") {
        const int cap = cfg.contains("fp_vc_cap")
            ? static_cast<int>(cfg.getInt("fp_vc_cap"))
            : 0;
        const FootprintRouting::Variant variant =
            cfg.contains("fp_variant")
                ? FootprintRouting::parseVariant(
                      cfg.getStr("fp_variant"))
                : FootprintRouting::Variant::Converge;
        const int converge = cfg.contains("fp_converge_threshold")
            ? static_cast<int>(cfg.getInt("fp_converge_threshold"))
            : 2;
        return std::make_unique<FootprintRouting>(threshold, cap,
                                                  variant, converge);
    }
    fatal("unknown routing algorithm: " + name);
}

} // namespace

std::unique_ptr<RoutingAlgorithm>
makeRoutingAlgorithm(const std::string& name, const SimConfig& cfg)
{
    const std::string suffix = "+xordet";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        auto base =
            makeBase(name.substr(0, name.size() - suffix.size()), cfg);
        return std::make_unique<XordetRouting>(std::move(base));
    }
    return makeBase(name, cfg);
}

std::vector<std::string>
allRoutingAlgorithmNames()
{
    return {
        "dor",       "oddeven",        "dbar",         "footprint",
        "dor+xordet", "oddeven+xordet", "dbar+xordet",
    };
}

} // namespace footprint
