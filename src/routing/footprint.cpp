#include "routing/footprint.hpp"

#include "sim/log.hpp"
#include "sim/rng.hpp"

namespace footprint {

int
FootprintRouting::congestionThreshold(int num_vcs) const
{
    return threshold_ > 0 ? threshold_ : num_vcs / 2;
}

FootprintRouting::Variant
FootprintRouting::parseVariant(const std::string& name)
{
    if (name == "literal")
        return Variant::Literal;
    if (name == "wait")
        return Variant::Wait;
    if (name == "converge")
        return Variant::Converge;
    fatal("unknown footprint variant: " + name);
}

void
FootprintRouting::addVcRequests(const RouterView& view, int port,
                                int dest, OutputSet& out) const
{
    const int num_vcs = view.numVcs();
    const VcMask adaptive = maskOfFirst(num_vcs) & ~VcMask{1};

    // Congestion is estimated from the idle-VC population of the whole
    // physical channel; requests themselves target adaptive VCs only.
    //
    // Footprint sets come from the persistent per-VC owner registers
    // (Sec. 4.4): fp_busy are VCs currently occupied by packets to the
    // same destination; fp_free are VCs this destination drained but
    // no other packet has claimed yet (re-usable lanes).
    const VcMask idle_all = view.idleVcMask(port);
    const VcMask occupied = view.occupiedVcMask(port);
    const VcMask owner = view.footprintVcMask(port, dest) & adaptive;
    const VcMask fp_busy = owner & occupied;
    const VcMask fp_free = owner & idle_all;
    const VcMask idle = idle_all & adaptive & ~owner;
    const VcMask busy = occupied & adaptive & ~owner;
    const int idle_count = popcount(idle_all);
    const int fp_busy_count = popcount(fp_busy);
    const int threshold = congestionThreshold(num_vcs);

    // Footprint-VC cap (isolation extension, Sec. 4.2.5): once a
    // destination occupies cap VCs on this port, it may not claim
    // further VCs.
    if (fpVcCap_ > 0 && fp_busy_count >= fpVcCap_) {
        out.add(port, fp_busy, Priority::High);
        out.add(port, fp_free, Priority::Reclaim);
        return;
    }

    if (idle_count >= threshold) {
        // Uncongested: waiting on footprint channels would only add
        // latency, so request every adaptive VC.
        out.add(port, adaptive, Priority::Low);
        return;
    }

    // The port is congested. Decide whether this packet must wait on
    // its footprint channels.
    bool wait_on_footprints = false;
    switch (variant_) {
      case Variant::Literal:
        wait_on_footprints = idle_count == 0 && fp_busy_count != 0;
        break;
      case Variant::Wait:
        wait_on_footprints = fp_busy_count != 0;
        break;
      case Variant::Converge:
        // "If the network is congested and packets having the same
        // destination will be blocked downstream, then it is likely
        // that the destination is congested" (Sec. 1): traffic to this
        // destination accumulating at this router while the port is
        // congested is exactly that situation. A destination may keep
        // two lanes before waiting binds, so a regulated stream is
        // never serialised onto a single VC (whose reallocation
        // turnaround would cap its throughput below a link's).
        wait_on_footprints =
            (idle_count == 0 && fp_busy_count != 0)
            || (fp_busy_count >= 2
                && view.convergingInputs(dest) >= convergeThreshold_);
        break;
    }

    if (wait_on_footprints) {
        // Follow the footprints: wait on the destination's occupied
        // lanes and re-claim its drained ones, but open no new VC —
        // the congestion tree keeps its current width and every other
        // VC stays available to other flows.
        out.add(port, fp_busy, Priority::High);
        out.add(port, fp_free, Priority::Reclaim);
        return;
    }

    if (idle_count == 0) {
        // Saturated with no footprint to follow: request every
        // adaptive VC and queue up like ordinary adaptive routing.
        out.add(port, adaptive, Priority::Low);
        return;
    }

    // Moderate load: prefer the destination's own drained lanes, then
    // idle VCs, then footprint VCs, then VCs busy with other
    // destinations (Algorithm 1 lines 40-42, with the Reclaim
    // refinement keeping trees in the lanes they already own).
    out.add(port, fp_free, Priority::Reclaim);
    out.add(port, idle, Priority::Highest);
    out.add(port, fp_busy, Priority::High);
    out.add(port, busy, Priority::Low);
}

void
FootprintRouting::route(const RouterView& view, const Flit& flit,
                        OutputSet& out) const
{
    const Mesh& mesh = view.mesh();
    const int node = view.nodeId();

    if (node == flit.dest) {
        // Ejection: the same regulation applies at the local port —
        // converging same-destination flows are precisely the endpoint
        // congestion case.
        addVcRequests(view, portOf(Dir::Local), flit.dest, out);
        out.add(portOf(Dir::Local), VcMask{1}, Priority::Lowest);
        return;
    }

    // STEP 1: legal minimal ports.
    Dir dirs[2];
    const int num_dirs = mesh.minimalDirsInto(node, flit.dest, dirs);
    FP_ASSERT(num_dirs > 0, "no minimal direction but not at dest");

    // STEP 2: output-port selection by (idle VCs, footprint VCs,
    // random).
    Dir chosen = dirs[0];
    if (num_dirs == 2) {
        const int pa = portOf(dirs[0]);
        const int pb = portOf(dirs[1]);
        const int idle_a = popcount(view.idleVcMask(pa));
        const int idle_b = popcount(view.idleVcMask(pb));
        if (idle_a > idle_b) {
            chosen = dirs[0];
        } else if (idle_a < idle_b) {
            chosen = dirs[1];
        } else {
            const int fp_a =
                popcount(view.footprintVcMask(pa, flit.dest));
            const int fp_b =
                popcount(view.footprintVcMask(pb, flit.dest));
            if (fp_a > fp_b)
                chosen = dirs[0];
            else if (fp_a < fp_b)
                chosen = dirs[1];
            else
                chosen = view.rng().nextBool(0.5) ? dirs[1] : dirs[0];
        }
    }

    // STEP 3: prioritized VC requests on the chosen port.
    addVcRequests(view, portOf(chosen), flit.dest, out);

    // Escape channel, always requested at the lowest priority.
    const Dir escape = dorDir(mesh, node, flit.dest);
    out.add(portOf(escape), VcMask{1}, Priority::Lowest);
}

} // namespace footprint
