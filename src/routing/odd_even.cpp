#include "routing/odd_even.hpp"

#include "sim/log.hpp"
#include "sim/rng.hpp"

namespace footprint {

std::vector<Dir>
OddEvenRouting::legalDirs(const Mesh& mesh, int src, int cur, int dest)
{
    Dir buf[2];
    const int n = legalDirsInto(mesh, src, cur, dest, buf);
    return std::vector<Dir>(buf, buf + n);
}

int
OddEvenRouting::legalDirsInto(const Mesh& mesh, int src, int cur,
                              int dest, Dir out[2])
{
    if (cur == dest)
        return 0;

    const Coord cc = mesh.coordOf(cur);
    const Coord cd = mesh.coordOf(dest);
    const Coord cs = mesh.coordOf(src);

    const int dx = cd.x - cc.x;
    const int dy = cd.y - cc.y;
    const Dir vertical = dy > 0 ? Dir::North : Dir::South;
    const bool cur_even = (cc.x % 2) == 0;
    const bool dest_even = (cd.x % 2) == 0;

    int n = 0;
    if (dx == 0) {
        out[n++] = vertical;
    } else if (dx > 0) {
        // Eastbound.
        if (dy == 0) {
            out[n++] = Dir::East;
        } else {
            // An EN/ES turn at an even column is forbidden, so the
            // vertical move is only allowed in odd columns — or in the
            // source column, where no turn is taken.
            if (!cur_even || cc.x == cs.x)
                out[n++] = vertical;
            // Keep heading east unless that would force a forbidden
            // NW/SW turn later (destination column even and adjacent).
            if (!dest_even || dx != 1)
                out[n++] = Dir::East;
        }
    } else {
        // Westbound: west is always legal; the vertical move is only
        // legal in even columns (NW/SW turns forbidden in odd columns).
        out[n++] = Dir::West;
        if (cur_even && dy != 0)
            out[n++] = vertical;
    }

    FP_ASSERT(n > 0, "odd-even produced no legal direction");
    return n;
}

void
OddEvenRouting::route(const RouterView& view, const Flit& flit,
                      OutputSet& out) const
{
    const int num_vcs = view.numVcs();
    const VcMask all = maskOfFirst(num_vcs);

    if (view.nodeId() == flit.dest) {
        out.add(portOf(Dir::Local), all, Priority::Low);
        return;
    }

    Dir dirs[2];
    const int num_dirs =
        legalDirsInto(view.mesh(), flit.src, view.nodeId(), flit.dest,
                      dirs);

    int port = portOf(dirs[0]);
    if (num_dirs == 2) {
        const int idle_a = popcount(view.idleVcMask(portOf(dirs[0])));
        const int idle_b = popcount(view.idleVcMask(portOf(dirs[1])));
        if (idle_b > idle_a)
            port = portOf(dirs[1]);
        else if (idle_a == idle_b && view.rng().nextBool(0.5))
            port = portOf(dirs[1]);
    }
    out.add(port, all, Priority::Low);
}

} // namespace footprint
