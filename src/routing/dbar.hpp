/**
 * @file
 * DBAR-style fully adaptive routing (Ma et al., ISCA 2011): Duato
 * escape channel for deadlock freedom, with output-port selection that
 * combines local idle-VC counts with one-hop-neighbor status obtained
 * through a side-band status network.
 */

#ifndef FOOTPRINT_ROUTING_DBAR_HPP
#define FOOTPRINT_ROUTING_DBAR_HPP

#include "routing/routing.hpp"

namespace footprint {

/**
 * Fully adaptive minimal routing with DBAR's dimension-aware selection.
 *
 * Port selection between the two minimal candidates:
 *  1. if exactly one candidate's local idle-VC count clears the
 *     congestion threshold (num_vcs / 2 by default, per the paper's
 *     methodology), that candidate wins;
 *  2. otherwise the candidate with the larger combined score
 *     (local idle VCs + the neighbor's idle VCs on the port the packet
 *     would continue through) wins, ties broken randomly.
 *
 * VC selection is oblivious (all adaptive VCs at equal priority) — the
 * property Footprint improves on. Deadlock freedom follows Duato's
 * theory: VC 0 is the escape channel, routed XY, requested every hop at
 * the lowest priority; VCs are reallocated atomically.
 */
class DbarRouting : public RoutingAlgorithm
{
  public:
    /**
     * @param congestion_threshold idle-VC count below which a port is
     *        predicted congested; 0 selects num_vcs / 2 at route time.
     * @param use_remote include the one-hop neighbor status in the
     *        selection score (DBAR's defining feature); disabling it
     *        yields a purely local fully adaptive baseline.
     */
    explicit DbarRouting(int congestion_threshold = 0,
                         bool use_remote = true)
        : threshold_(congestion_threshold), useRemote_(use_remote)
    {}

    std::string name() const override { return "dbar"; }

    void route(const RouterView& view, const Flit& flit,
               OutputSet& out) const override;

    bool atomicVcAlloc() const override { return true; }
    int numEscapeVcs() const override { return 1; }

  private:
    /** Neighbor's continuation port for a packet moving through
     * @p d towards @p dest; Local if the neighbor is the destination. */
    static Dir continuationDir(const Mesh& mesh, int node, Dir d,
                               int dest);

    int threshold_;
    bool useRemote_;
};

} // namespace footprint

#endif // FOOTPRINT_ROUTING_DBAR_HPP
