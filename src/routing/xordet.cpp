#include "routing/xordet.hpp"

#include "sim/log.hpp"

namespace footprint {

XordetRouting::XordetRouting(std::unique_ptr<RoutingAlgorithm> base)
    : base_(std::move(base))
{
    FP_ASSERT(base_ != nullptr, "xordet requires a base algorithm");
}

int
XordetRouting::vcFor(const Mesh& mesh, int dest, int num_vcs) const
{
    const int escape = base_->numEscapeVcs();
    const int usable = num_vcs - escape;
    FP_ASSERT(usable > 0, "xordet needs at least one non-escape VC");
    const Coord c = mesh.coordOf(dest);
    return escape + ((c.x ^ c.y) % usable);
}

void
XordetRouting::route(const RouterView& view, const Flit& flit,
                     OutputSet& out) const
{
    OutputSet base_set;
    base_->route(view, flit, base_set);

    const VcMask mapped =
        VcMask{1} << vcFor(view.mesh(), flit.dest, view.numVcs());

    // Keep the base algorithm's port choices but restrict non-escape
    // requests to the statically mapped VC. Escape requests (Lowest
    // priority, by construction unique to Duato bases) pass through.
    for (const VcRequest& r : base_set.requests()) {
        if (base_->numEscapeVcs() > 0 && r.priority == Priority::Lowest)
            out.add(r.port, r.vcs, r.priority);
        else
            out.add(r.port, mapped, Priority::Low);
    }
}

} // namespace footprint
