/**
 * @file
 * The Footprint routing algorithm (the paper's contribution,
 * Algorithm 1): fully adaptive routing whose adaptiveness is regulated
 * under congestion by steering packets onto "footprint" VCs — VCs
 * already occupied by packets to the same destination.
 */

#ifndef FOOTPRINT_ROUTING_FOOTPRINT_HPP
#define FOOTPRINT_ROUTING_FOOTPRINT_HPP

#include "routing/routing.hpp"

namespace footprint {

/**
 * Footprint routing (Algorithm 1 of the paper).
 *
 * Step 1 — legal outputs: the (at most two) minimal ports, with VC 0
 * as the Duato escape channel along the XY path.
 *
 * Step 2 — port selection: more idle VCs wins; then more footprint VCs
 * wins; then a random choice.
 *
 * Step 3 — VC requests on the chosen port, by congestion regime
 * (threshold defaults to half the VCs per channel). The exact
 * behaviour under congestion is selected by a Variant (see below);
 * all variants request the escape VC at the lowest priority and all
 * adaptive VCs at Low priority when the port is uncongested.
 */
class FootprintRouting : public RoutingAlgorithm
{
  public:
    /**
     * How Step 3 regulates adaptiveness once the chosen port is
     * congested (idle VCs below the threshold).
     *
     * - Literal: the pseudo-code of Algorithm 1 verbatim. At zero idle
     *   VCs packets wait on footprint VCs; at moderate load idle VCs
     *   are requested at Highest, footprints at High, busy VCs at Low.
     * - Wait: the strictest reading of the paper's prose ("packets
     *   should wait on Footprint channels"): any packet whose
     *   destination has footprints waits on them whenever the port is
     *   congested. Maximally slim congestion trees, but a lone flow
     *   under ordinary network congestion is serialised onto one VC.
     * - Converge (default): waiting additionally requires traffic to
     *   the destination to be *accumulating* at this router (two or
     *   more input VCs holding flits to it — the paper's Sec.-2
     *   convergence) and the destination to already occupy at least
     *   two footprint lanes, so a regulated stream keeps enough lane
     *   parallelism to saturate a link. Pass-through flows stay fully
     *   adaptive; endpoint-congested traffic is confined to its
     *   footprint lanes.
     */
    enum class Variant {
        Literal,
        Wait,
        Converge,
    };

    /**
     * @param congestion_threshold idle-VC count at or above which the
     *        port is deemed uncongested; 0 selects num_vcs / 2.
     * @param fp_vc_cap maximum footprint VCs a destination may occupy
     *        per port; 0 means unlimited (the paper's evaluated
     *        configuration; Sec. 4.2.5 discusses the capped variant).
     * @param variant congested-regime behaviour, see Variant.
     * @param converge_threshold for Variant::Converge, the number of
     *        input VCs holding flits to the destination at which its
     *        traffic counts as converging.
     */
    explicit FootprintRouting(int congestion_threshold = 0,
                              int fp_vc_cap = 0,
                              Variant variant = Variant::Converge,
                              int converge_threshold = 2)
        : threshold_(congestion_threshold), fpVcCap_(fp_vc_cap),
          variant_(variant), convergeThreshold_(converge_threshold)
    {}

    std::string name() const override { return "footprint"; }

    void route(const RouterView& view, const Flit& flit,
               OutputSet& out) const override;

    bool atomicVcAlloc() const override { return true; }
    int numEscapeVcs() const override { return 1; }

    int congestionThreshold(int num_vcs) const;
    int fpVcCap() const { return fpVcCap_; }
    Variant variant() const { return variant_; }

    /** Parse "literal" / "wait" / "converge"; fatal() otherwise. */
    static Variant parseVariant(const std::string& name);

  private:
    /** Emit the Step-3 VC requests for port @p port. */
    void addVcRequests(const RouterView& view, int port, int dest,
                       OutputSet& out) const;

    int threshold_;
    int fpVcCap_;
    Variant variant_;
    int convergeThreshold_;
};

} // namespace footprint

#endif // FOOTPRINT_ROUTING_FOOTPRINT_HPP
