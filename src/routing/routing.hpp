/**
 * @file
 * Routing-algorithm interface.
 *
 * A routing algorithm turns (router state, head flit) into a set of
 * prioritized virtual-channel requests — exactly the interface the
 * paper's Algorithm 1 is written against (its ADD(P, v, pri) calls).
 * The router re-invokes the algorithm every cycle a packet waits in VC
 * allocation, so adaptive decisions track live VC occupancy.
 */

#ifndef FOOTPRINT_ROUTING_ROUTING_HPP
#define FOOTPRINT_ROUTING_ROUTING_HPP

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "router/flit.hpp"
#include "router/vc_state.hpp"
#include "sim/log.hpp"
#include "topo/topology.hpp"

namespace footprint {

class Rng;
class SimConfig;

/** Request priorities used by Algorithm 1. Larger value wins. */
enum class Priority : int {
    Lowest = 0,   ///< escape-channel requests
    Low = 1,      ///< ordinary adaptive / busy-VC requests
    High = 2,     ///< footprint-VC requests
    Highest = 3,  ///< idle-VC requests under moderate load
    Reclaim = 4,  ///< a destination re-claiming its own drained
                  ///< footprint VC (keeps the congestion tree in the
                  ///< same lanes instead of spreading to fresh VCs)
};

/** One prioritized VC request: a set of VCs on one output port. */
struct VcRequest
{
    int port = -1;
    VcMask vcs = 0;
    Priority priority = Priority::Low;
};

/**
 * The set of VC requests produced by one routing invocation. The VC
 * allocator grants at most one (port, vc) from this set per packet.
 *
 * Storage is a fixed inline array: one invocation adds at most a
 * handful of requests (Footprint's Algorithm 1 peaks at one escape
 * plus a few prioritized adaptive entries), so kMaxRequests bounds
 * every algorithm with room to spare and add() never touches the
 * heap. This keeps the per-(input, VC) request tables the router
 * holds allocation-free in steady state (DESIGN.md §17).
 */
class OutputSet
{
  public:
    /** Upper bound on requests per routing invocation. */
    static constexpr std::size_t kMaxRequests = 16;

    void clear() { count_ = 0; }

    /** Add a request; empty masks are dropped. */
    void
    add(int port, VcMask vcs, Priority priority)
    {
        if (vcs != 0) {
            FP_ASSERT(count_ < kMaxRequests,
                      "routing invocation exceeded OutputSet capacity");
            requests_[count_++] = VcRequest{port, vcs, priority};
        }
    }

    std::span<const VcRequest>
    requests() const
    {
        return {requests_.data(), count_};
    }

    bool empty() const { return count_ == 0; }

    /** Highest priority with which (port, vc) is requested, or none. */
    bool
    priorityFor(int port, int vc, Priority& out) const
    {
        bool found = false;
        for (const VcRequest& r : requests()) {
            if (r.port == port && (r.vcs >> vc) & 1) {
                if (!found || r.priority > out)
                    out = r.priority;
                found = true;
            }
        }
        return found;
    }

  private:
    std::array<VcRequest, kMaxRequests> requests_{};
    std::size_t count_ = 0;
};

/**
 * Read-only view of the router state a routing algorithm may consult.
 * All of it is *local* information (Footprint's key cost property),
 * except remoteIdleCount which models DBAR's one-hop side-band status
 * exchange.
 */
class RouterView
{
  public:
    virtual ~RouterView() = default;

    virtual int nodeId() const = 0;
    virtual const Topology& topo() const = 0;
    virtual int numVcs() const = 0;

    /**
     * The coordinate grid of the topology — the query surface of the
     * mesh-only adaptive algorithms (odd-even, DBAR, Footprint),
     * which are rejected at configuration time on wrapped topologies.
     */
    const Mesh& mesh() const { return topo().grid(); }
    virtual int vcBufSize() const = 0;

    /** Mask of fully idle output VCs on @p port. */
    virtual VcMask idleVcMask(int port) const = 0;

    /** Mask of occupied output VCs on @p port owned by @p dest. */
    virtual VcMask footprintVcMask(int port, int dest) const = 0;

    /** Mask of occupied output VCs on @p port (any owner). */
    virtual VcMask occupiedVcMask(int port) const = 0;

    /**
     * Mask of output VCs on @p port with zero credits — fully
     * backpressured VCs, the local signature of a congestion tree.
     */
    virtual VcMask zeroCreditVcMask(int port) const = 0;

    /**
     * Number of input VCs at this router holding flits destined to
     * @p dest. Two or more means traffic to @p dest is accumulating
     * here — converging flows or a backlogged stream, the local
     * signature of congestion forming around that destination
     * (Sec. 2).
     */
    virtual int convergingInputs(int dest) const = 0;

    /**
     * Idle-VC count of output @p port at the neighbor reached through
     * @p through_port, as of the previous cycle (DBAR side-band).
     * Returns -1 when no status is available.
     */
    virtual int remoteIdleCount(int through_port, int port) const = 0;

    /** RNG for tie-breaking (deterministic per router). */
    virtual Rng& rng() const = 0;
};

/**
 * Abstract routing algorithm.
 *
 * Implementations must be stateless with respect to individual packets
 * (all per-packet adaptivity is re-derived from the RouterView), which
 * is what allows per-cycle re-evaluation.
 */
class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm() = default;

    /** Short identifier, e.g. "footprint" or "dbar+xordet". */
    virtual std::string name() const = 0;

    /**
     * Compute the VC requests for the head flit @p flit at the router
     * viewed by @p view.
     *
     * @param view router state.
     * @param flit head flit being routed.
     * @param out request set to fill (cleared by the caller).
     */
    virtual void route(const RouterView& view, const Flit& flit,
                       OutputSet& out) const = 0;

    /**
     * Whether output VCs may only be reallocated once the tail flit's
     * credit has returned (Duato-based algorithms; see Sec. 4.2.1).
     */
    virtual bool atomicVcAlloc() const = 0;

    /** Number of escape VCs reserved per channel (0 or 1 here). */
    virtual int numEscapeVcs() const = 0;
};

/**
 * Instantiate a routing algorithm by name: "dor", "oddeven", "dbar",
 * "footprint", or any of them with a "+xordet" suffix.
 * fatal() on unknown names.
 */
std::unique_ptr<RoutingAlgorithm>
makeRoutingAlgorithm(const std::string& name, const SimConfig& cfg);

/** All algorithm names the factory accepts (for sweeps and tests). */
std::vector<std::string> allRoutingAlgorithmNames();

/** Dimension-order (XY) output port from @p cur to @p dest. */
Dir dorDir(const Mesh& mesh, int cur, int dest);

/**
 * Dimension-order (XY) output port on an arbitrary topology: on
 * wrapped dimensions the shorter way around wins (ties go East /
 * North), matching Topology::minimalDirsInto.
 */
Dir dorDir(const Topology& topo, int cur, int dest);

} // namespace footprint

#endif // FOOTPRINT_ROUTING_ROUTING_HPP
