#include "routing/dbar.hpp"

#include "sim/log.hpp"
#include "sim/rng.hpp"

namespace footprint {

Dir
DbarRouting::continuationDir(const Mesh& mesh, int node, Dir d, int dest)
{
    const int nbr = mesh.neighbor(node, d);
    if (nbr == dest)
        return Dir::Local;
    Dir dirs[2];
    const int n = mesh.minimalDirsInto(nbr, dest, dirs);
    // Prefer staying in the same dimension — that is the link whose
    // occupancy DBAR's dimension-aware status network reports.
    for (int i = 0; i < n; ++i) {
        if (dirs[i] == d)
            return dirs[i];
    }
    return dirs[0];
}

void
DbarRouting::route(const RouterView& view, const Flit& flit,
                   OutputSet& out) const
{
    const int num_vcs = view.numVcs();
    const VcMask adaptive = maskOfFirst(num_vcs) & ~VcMask{1};
    const int threshold = threshold_ > 0 ? threshold_ : num_vcs / 2;
    const Mesh& mesh = view.mesh();
    const int node = view.nodeId();

    if (node == flit.dest) {
        out.add(portOf(Dir::Local), adaptive, Priority::Low);
        out.add(portOf(Dir::Local), VcMask{1}, Priority::Lowest);
        return;
    }

    Dir dirs[2];
    const int num_dirs = mesh.minimalDirsInto(node, flit.dest, dirs);
    FP_ASSERT(num_dirs > 0, "no minimal direction but not at dest");

    Dir chosen = dirs[0];
    if (num_dirs == 2) {
        int local_idle[2];
        int score[2];
        for (int i = 0; i < 2; ++i) {
            const int port = portOf(dirs[i]);
            local_idle[i] = popcount(view.idleVcMask(port));
            int remote = -1;
            if (useRemote_) {
                const Dir cont =
                    continuationDir(mesh, node, dirs[i], flit.dest);
                remote = view.remoteIdleCount(port, portOf(cont));
            }
            score[i] = local_idle[i] + (remote >= 0 ? remote : 0);
        }
        const bool ok0 = local_idle[0] >= threshold;
        const bool ok1 = local_idle[1] >= threshold;
        if (ok0 != ok1) {
            chosen = ok0 ? dirs[0] : dirs[1];
        } else if (score[0] != score[1]) {
            chosen = score[0] > score[1] ? dirs[0] : dirs[1];
        } else {
            chosen = view.rng().nextBool(0.5) ? dirs[1] : dirs[0];
        }
    }

    out.add(portOf(chosen), adaptive, Priority::Low);
    // Escape channel: VC 0 along the dimension-order path, lowest
    // priority, requested every hop (Duato).
    const Dir escape = dorDir(mesh, node, flit.dest);
    out.add(portOf(escape), VcMask{1}, Priority::Lowest);
}

} // namespace footprint
