/**
 * @file
 * XORDET-style static destination-to-VC mapping (Peñaranda et al.,
 * 2014), layered as a combinator on top of any base routing algorithm:
 * the base algorithm selects ports, XORDET dictates the VC.
 */

#ifndef FOOTPRINT_ROUTING_XORDET_HPP
#define FOOTPRINT_ROUTING_XORDET_HPP

#include <memory>

#include "routing/routing.hpp"

namespace footprint {

/**
 * +XORDET combinator.
 *
 * Every destination is statically hashed to one VC
 * (vc = (x ^ y) mod usable VCs, offset past any escape VC of the base
 * algorithm). Packets to destinations in the same class share a VC, so
 * an endpoint congestion tree is confined to that single VC per link —
 * the thin-branch behaviour of Fig. 2(c) — at the price of zero VC
 * adaptiveness and reduced buffer utilisation.
 *
 * Escape-channel requests of the base algorithm pass through unchanged
 * so Duato-based bases remain deadlock-free.
 */
class XordetRouting : public RoutingAlgorithm
{
  public:
    explicit XordetRouting(std::unique_ptr<RoutingAlgorithm> base);

    std::string name() const override { return base_->name() + "+xordet"; }

    void route(const RouterView& view, const Flit& flit,
               OutputSet& out) const override;

    bool atomicVcAlloc() const override { return base_->atomicVcAlloc(); }
    int numEscapeVcs() const override { return base_->numEscapeVcs(); }

    /** The statically assigned VC for @p dest. */
    int vcFor(const Mesh& mesh, int dest, int num_vcs) const;

  private:
    std::unique_ptr<RoutingAlgorithm> base_;
};

} // namespace footprint

#endif // FOOTPRINT_ROUTING_XORDET_HPP
