#include "routing/dor.hpp"

namespace footprint {

void
DorRouting::route(const RouterView& view, const Flit& flit,
                  OutputSet& out) const
{
    const Dir d = dorDir(view.mesh(), view.nodeId(), flit.dest);
    out.add(portOf(d), maskOfFirst(view.numVcs()), Priority::Low);
}

} // namespace footprint
