#include "routing/dor.hpp"

namespace footprint {

void
DorRouting::route(const RouterView& view, const Flit& flit,
                  OutputSet& out) const
{
    const Topology& topo = view.topo();
    const Dir d = dorDir(topo, view.nodeId(), flit.dest);
    VcMask mask = maskOfFirst(view.numVcs());
    if (topo.hasWrap() && d != Dir::Local) {
        // Dateline VC classes (DESIGN.md §18): within each wrapped
        // dimension's ring the VCs split into class 0 (before the
        // dateline) and class 1 (after). Movement along a DOR
        // dimension is monotone, so "crossed" falls out of comparing
        // the current coordinate against the source's — no per-packet
        // state — and the class resets when DOR switches dimension.
        const int vcs = view.numVcs();
        const int class0 = (vcs + 1) / 2;
        const Coord cur = topo.coordOf(view.nodeId());
        const Coord src = topo.coordOf(flit.src);
        bool crossed = false;
        switch (d) {
          case Dir::East: crossed = cur.x < src.x; break;
          case Dir::West: crossed = cur.x > src.x; break;
          case Dir::North: crossed = cur.y < src.y; break;
          case Dir::South: crossed = cur.y > src.y; break;
          case Dir::Local: break;
        }
        // The hop about to be taken may itself cross the dateline;
        // the downstream VC must already be class 1 then.
        crossed = crossed || topo.datelineCrossing(view.nodeId(), d);
        mask = crossed ? static_cast<VcMask>(mask & ~maskOfFirst(class0))
                       : maskOfFirst(class0);
    }
    out.add(portOf(d), mask, Priority::Low);
}

} // namespace footprint
