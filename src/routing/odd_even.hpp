/**
 * @file
 * Odd-Even turn-model routing (Chiu, 2000): minimal, partially
 * adaptive, deadlock-free without virtual-channel restrictions.
 */

#ifndef FOOTPRINT_ROUTING_ODD_EVEN_HPP
#define FOOTPRINT_ROUTING_ODD_EVEN_HPP

#include "routing/routing.hpp"

namespace footprint {

/**
 * Minimal adaptive Odd-Even routing.
 *
 * Turn restrictions (columns are x indices):
 *  - EN and ES turns are forbidden in even columns,
 *  - NW and SW turns are forbidden in odd columns.
 *
 * Among the allowed output ports, the one with more idle VCs is chosen
 * (the selection strategy the paper's methodology specifies), with ties
 * broken randomly. All VCs of the chosen port are requested; no escape
 * channel is needed, and VCs are reallocated non-atomically.
 */
class OddEvenRouting : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "oddeven"; }

    void route(const RouterView& view, const Flit& flit,
               OutputSet& out) const override;

    bool atomicVcAlloc() const override { return false; }
    int numEscapeVcs() const override { return 0; }

    /**
     * The raw Odd-Even ROUTE function: legal minimal directions from
     * @p cur to @p dest for a packet injected at @p src. Exposed for
     * the adaptiveness metrics and unit tests.
     */
    static std::vector<Dir> legalDirs(const Mesh& mesh, int src, int cur,
                                      int dest);

    /** Allocation-free variant for the router critical path. */
    static int legalDirsInto(const Mesh& mesh, int src, int cur,
                             int dest, Dir out[2]);
};

} // namespace footprint

#endif // FOOTPRINT_ROUTING_ODD_EVEN_HPP
