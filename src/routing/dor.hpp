/**
 * @file
 * Deterministic dimension-order (XY) routing.
 */

#ifndef FOOTPRINT_ROUTING_DOR_HPP
#define FOOTPRINT_ROUTING_DOR_HPP

#include "routing/routing.hpp"

namespace footprint {

/**
 * Dimension-order routing: packets fully traverse the X dimension
 * before turning into Y. Deadlock-free without escape VCs, so every VC
 * is usable and VCs are reallocated non-atomically.
 */
class DorRouting : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "dor"; }

    void route(const RouterView& view, const Flit& flit,
               OutputSet& out) const override;

    bool atomicVcAlloc() const override { return false; }
    int numEscapeVcs() const override { return 0; }
};

} // namespace footprint

#endif // FOOTPRINT_ROUTING_DOR_HPP
