/**
 * @file
 * Explicit topology layer: connectivity as flat forward/reverse port
 * maps plus per-dimension link latencies, built once and queried by
 * Network construction, routing, and shard partitioning.
 *
 * Four builders share the 5-port (E/W/N/S/Local) router model:
 *  - mesh:  the paper's k x k mesh (identity with the historic path),
 *  - torus: mesh plus x/y wraparound links (DOR + dateline VCs only),
 *  - cmesh: mesh with `concentration` terminals per router sharing
 *    the router's local port,
 *  - ring:  an N x 1 wrapped row (DOR + dateline VCs only).
 *
 * The underlying row-major coordinate grid stays a Mesh (grid()), so
 * mesh-only adaptive algorithms (odd-even, DBAR, Footprint) keep
 * their exact historical queries; wrap-aware code paths go through
 * the Topology queries instead.
 */

#ifndef FOOTPRINT_TOPO_TOPOLOGY_HPP
#define FOOTPRINT_TOPO_TOPOLOGY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "topo/mesh.hpp"

namespace footprint {

class SimConfig;

/** Topology family of a network instance. */
enum class TopologyKind : int {
    Mesh = 0,
    Torus = 1,
    CMesh = 2,
    Ring = 3,
};

/** Name accepted by the `topology` config key ("mesh", "torus", ...). */
const char* topologyKindName(TopologyKind kind);

/**
 * One end of a directed link: input/output @p port of router @p node.
 * {-1, -1} marks "no link" (a mesh edge port).
 */
struct PortRef
{
    int node = -1;
    int port = -1;

    bool operator==(const PortRef&) const = default;
    bool valid() const { return node >= 0; }
};

/**
 * An immutable description of the network's shape: which router ports
 * connect where (flat forward/reverse maps), how many cycles each
 * link takes per dimension, and how endpoint terminals map onto
 * routers under concentration.
 *
 * Forward map: forward(n, p) is the (node, input port) that receives
 * what router n transmits on output port p. Reverse map: reverse(n, p)
 * is the (node, output port) that feeds router n's input port p. The
 * two are inverses of each other by construction; the Local port maps
 * a router to its own endpoint ({n, Local} on both sides).
 */
class Topology
{
  public:
    /** Plain w x h mesh; identical connectivity to Mesh itself. */
    static Topology mesh(int width, int height);

    /** w x h torus (x and y wraparound); requires w, h >= 3. */
    static Topology torus(int width, int height);

    /** Concentrated mesh: @p concentration terminals per router. */
    static Topology cmesh(int width, int height, int concentration);

    /** N-node wrapped row (grid N x 1); requires n >= 3. */
    static Topology ring(int nodes);

    /**
     * Build from config keys: `topology` (default "mesh"),
     * `mesh_width`/`mesh_height`, `concentration`, and the link
     * latencies `link_latency` (both dims), `link_latency_x`,
     * `link_latency_y`, `link_latency_local` (dimension overrides).
     * fatal() on unknown names or invalid (topology, key) combos.
     */
    static Topology fromConfig(const SimConfig& cfg);

    TopologyKind kind() const { return kind_; }
    const char* kindName() const { return topologyKindName(kind_); }

    /** The row-major coordinate grid (mesh-only algorithm queries). */
    const Mesh& grid() const { return grid_; }

    int width() const { return grid_.width(); }
    int height() const { return grid_.height(); }
    int numNodes() const { return grid_.numNodes(); }
    Coord coordOf(int node) const { return grid_.coordOf(node); }
    int nodeId(Coord c) const { return grid_.nodeId(c); }

    bool wrapX() const { return wrapX_; }
    bool wrapY() const { return wrapY_; }
    /** True when any dimension wraps (torus / ring). */
    bool hasWrap() const { return wrapX_ || wrapY_; }

    // --- Terminals (concentration). ---

    /** Terminals (endpoint slots) per router; 1 except for cmesh. */
    int concentration() const { return concentration_; }
    int numTerminals() const { return numNodes() * concentration_; }
    /** Router a terminal is attached to. */
    int terminalRouter(int t) const { return t / concentration_; }
    /** Intra-router index of a terminal (0..concentration-1). */
    int terminalIndex(int t) const { return t % concentration_; }
    /** Terminal id of slot @p k at @p router. */
    int terminalOf(int router, int k) const
    {
        return router * concentration_ + k;
    }

    // --- Connectivity. ---

    bool hasNeighbor(int node, Dir d) const
    {
        return forward(node, portOf(d)).valid()
            && d != Dir::Local;
    }

    /** Neighboring router through @p d; -1 when the port is edge. */
    int neighbor(int node, Dir d) const
    {
        return d == Dir::Local ? -1 : forward(node, portOf(d)).node;
    }

    /** Receiver of what @p node transmits on output @p port. */
    const PortRef& forward(int node, int port) const
    {
        return fwd_[flat(node, port)];
    }

    /** Transmitter feeding @p node's input @p port. */
    const PortRef& reverse(int node, int port) const
    {
        return rev_[flat(node, port)];
    }

    // --- Link latencies (cycles per hop, per dimension). ---

    /** Latency of a link leaving through @p d (Local = endpoint). */
    int linkLatency(Dir d) const
    {
        switch (d) {
          case Dir::East:
          case Dir::West: return latencyX_;
          case Dir::North:
          case Dir::South: return latencyY_;
          case Dir::Local: break;
        }
        return latencyLocal_;
    }

    void setLinkLatencies(int x, int y, int local);

    // --- Routing queries (wrap-aware; delegate to grid otherwise). ---

    /**
     * Minimal productive directions from @p cur to @p dest (0..2
     * entries, E/W before N/S). On wrapped dimensions the shorter way
     * around is chosen; exact ties break East/North.
     */
    int minimalDirsInto(int cur, int dest, Dir out[2]) const;

    /** Minimal hop count (wrap-aware Manhattan distance). */
    int hopDistance(int a, int b) const;

    /**
     * True when the hop leaving @p node through @p d crosses that
     * dimension's dateline (the single wrap edge of the ring): the
     * downstream flit must occupy a dateline-class-1 VC (see
     * DESIGN.md §18). Always false on unwrapped dimensions.
     */
    bool datelineCrossing(int node, Dir d) const;

  private:
    Topology(TopologyKind kind, int width, int height, bool wrap_x,
             bool wrap_y, int concentration);

    std::size_t flat(int node, int port) const
    {
        return static_cast<std::size_t>(node) * kNumPorts
            + static_cast<std::size_t>(port);
    }

    void buildPortMaps();

    TopologyKind kind_;
    Mesh grid_;
    bool wrapX_;
    bool wrapY_;
    int concentration_;
    int latencyX_ = 1;
    int latencyY_ = 1;
    int latencyLocal_ = 1;
    std::vector<PortRef> fwd_;
    std::vector<PortRef> rev_;
};

} // namespace footprint

#endif // FOOTPRINT_TOPO_TOPOLOGY_HPP
