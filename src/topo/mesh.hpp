/**
 * @file
 * 2D mesh topology: node/coordinate mapping, port directions, and
 * minimal-path queries used by every routing algorithm.
 */

#ifndef FOOTPRINT_TOPO_MESH_HPP
#define FOOTPRINT_TOPO_MESH_HPP

#include <array>
#include <string>
#include <vector>

namespace footprint {

/**
 * Router port directions in a 2D mesh.
 *
 * East/West move along +x/-x, North/South along +y/-y, and Local is the
 * injection/ejection port connecting a router to its endpoint node.
 */
enum class Dir : int {
    East = 0,
    West = 1,
    North = 2,
    South = 3,
    Local = 4,
};

/** Number of router ports in a 2D mesh (4 mesh directions + local). */
inline constexpr int kNumPorts = 5;

/** @return the port index for a direction. */
inline constexpr int portOf(Dir d) { return static_cast<int>(d); }

/** @return the direction for a port index in [0, kNumPorts). */
Dir dirOf(int port);

/** @return the opposite mesh direction (East<->West, North<->South). */
Dir opposite(Dir d);

/** @return short human-readable name ("E", "W", "N", "S", "L"). */
std::string dirName(Dir d);

/** Integer (x, y) coordinate of a mesh node. */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord&) const = default;
};

/**
 * A width x height 2D mesh.
 *
 * Node ids are row-major: id = y * width + x, matching the node
 * numbering in the paper's figures (n0 .. n15 for a 4x4 mesh).
 */
class Mesh
{
  public:
    Mesh(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    int numNodes() const { return width_ * height_; }

    /** @return the node id at @p c. */
    int nodeId(Coord c) const;

    /** @return the coordinate of @p node. */
    Coord coordOf(int node) const;

    /** @return true if moving from @p node in direction @p d stays
     * inside the mesh. */
    bool hasNeighbor(int node, Dir d) const;

    /** @return the neighboring node id (requires hasNeighbor). */
    int neighbor(int node, Dir d) const;

    /** @return minimal hop count between two nodes (Manhattan). */
    int hopDistance(int a, int b) const;

    /**
     * Minimal productive mesh directions from @p cur towards @p dest
     * (0, 1, or 2 entries; empty when cur == dest).
     */
    std::vector<Dir> minimalDirs(int cur, int dest) const;

    /**
     * Allocation-free variant of minimalDirs for the router critical
     * path: fills @p out and returns the direction count (0..2).
     */
    int minimalDirsInto(int cur, int dest, Dir out[2]) const;

    /**
     * Number of distinct minimal paths between two nodes,
     * C(|dx|+|dy|, |dx|) — used by the adaptiveness metrics.
     */
    double numMinimalPaths(int a, int b) const;

  private:
    int width_;
    int height_;
};

} // namespace footprint

#endif // FOOTPRINT_TOPO_MESH_HPP
