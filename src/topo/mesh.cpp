#include "topo/mesh.hpp"

#include <cmath>
#include <cstdlib>

#include "sim/log.hpp"

namespace footprint {

Dir
dirOf(int port)
{
    FP_ASSERT(port >= 0 && port < kNumPorts, "bad port index " << port);
    return static_cast<Dir>(port);
}

Dir
opposite(Dir d)
{
    switch (d) {
      case Dir::East: return Dir::West;
      case Dir::West: return Dir::East;
      case Dir::North: return Dir::South;
      case Dir::South: return Dir::North;
      case Dir::Local: break;
    }
    FP_PANIC("opposite() of Local port is undefined");
}

std::string
dirName(Dir d)
{
    switch (d) {
      case Dir::East: return "E";
      case Dir::West: return "W";
      case Dir::North: return "N";
      case Dir::South: return "S";
      case Dir::Local: return "L";
    }
    return "?";
}

Mesh::Mesh(int width, int height) : width_(width), height_(height)
{
    // 1-D grids (N x 1 / 1 x N) back the ring topology; anything with
    // fewer than two nodes has no links to route over.
    if (width < 1 || height < 1 || width * height < 2)
        fatal("mesh must have at least 2 nodes");
}

int
Mesh::nodeId(Coord c) const
{
    FP_ASSERT(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_,
              "coordinate out of mesh");
    return c.y * width_ + c.x;
}

Coord
Mesh::coordOf(int node) const
{
    FP_ASSERT(node >= 0 && node < numNodes(), "node id out of mesh");
    return Coord{node % width_, node / width_};
}

bool
Mesh::hasNeighbor(int node, Dir d) const
{
    const Coord c = coordOf(node);
    switch (d) {
      case Dir::East: return c.x + 1 < width_;
      case Dir::West: return c.x > 0;
      case Dir::North: return c.y + 1 < height_;
      case Dir::South: return c.y > 0;
      case Dir::Local: return false;
    }
    return false;
}

int
Mesh::neighbor(int node, Dir d) const
{
    FP_ASSERT(hasNeighbor(node, d),
              "no neighbor in direction " << dirName(d));
    Coord c = coordOf(node);
    switch (d) {
      case Dir::East: ++c.x; break;
      case Dir::West: --c.x; break;
      case Dir::North: ++c.y; break;
      case Dir::South: --c.y; break;
      case Dir::Local: break;
    }
    return nodeId(c);
}

int
Mesh::hopDistance(int a, int b) const
{
    const Coord ca = coordOf(a);
    const Coord cb = coordOf(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

std::vector<Dir>
Mesh::minimalDirs(int cur, int dest) const
{
    Dir buf[2];
    const int n = minimalDirsInto(cur, dest, buf);
    return std::vector<Dir>(buf, buf + n);
}

int
Mesh::minimalDirsInto(int cur, int dest, Dir out[2]) const
{
    const Coord cc = coordOf(cur);
    const Coord cd = coordOf(dest);
    int n = 0;
    if (cd.x > cc.x)
        out[n++] = Dir::East;
    else if (cd.x < cc.x)
        out[n++] = Dir::West;
    if (cd.y > cc.y)
        out[n++] = Dir::North;
    else if (cd.y < cc.y)
        out[n++] = Dir::South;
    return n;
}

double
Mesh::numMinimalPaths(int a, int b) const
{
    const Coord ca = coordOf(a);
    const Coord cb = coordOf(b);
    const int dx = std::abs(ca.x - cb.x);
    const int dy = std::abs(ca.y - cb.y);
    // C(dx + dy, dx), computed multiplicatively in doubles; mesh
    // distances are small enough that this is exact.
    double result = 1.0;
    for (int i = 1; i <= dx; ++i)
        result = result * static_cast<double>(dy + i)
            / static_cast<double>(i);
    return result;
}

} // namespace footprint
