#include "topo/topology.hpp"

#include <cstdlib>

#include "sim/config.hpp"
#include "sim/log.hpp"

namespace footprint {

const char*
topologyKindName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::Mesh: return "mesh";
      case TopologyKind::Torus: return "torus";
      case TopologyKind::CMesh: return "cmesh";
      case TopologyKind::Ring: return "ring";
    }
    return "?";
}

Topology::Topology(TopologyKind kind, int width, int height,
                   bool wrap_x, bool wrap_y, int concentration)
    : kind_(kind), grid_(width, height), wrapX_(wrap_x),
      wrapY_(wrap_y), concentration_(concentration)
{
    if (concentration_ < 1)
        fatal("concentration must be >= 1");
    buildPortMaps();
}

Topology
Topology::mesh(int width, int height)
{
    return Topology(TopologyKind::Mesh, width, height, false, false, 1);
}

Topology
Topology::torus(int width, int height)
{
    // A wrapped dimension of extent 2 would alias the mesh link and
    // the wrap link between the same node pair (two parallel East
    // links); extent >= 3 keeps every (node, port) pair unique.
    if (width < 3 || height < 3)
        fatal("torus needs width >= 3 and height >= 3");
    return Topology(TopologyKind::Torus, width, height, true, true, 1);
}

Topology
Topology::cmesh(int width, int height, int concentration)
{
    if (concentration < 1)
        fatal("cmesh concentration must be >= 1");
    return Topology(TopologyKind::CMesh, width, height, false, false,
                    concentration);
}

Topology
Topology::ring(int nodes)
{
    if (nodes < 3)
        fatal("ring needs >= 3 nodes");
    return Topology(TopologyKind::Ring, nodes, 1, true, false, 1);
}

Topology
Topology::fromConfig(const SimConfig& cfg)
{
    const std::string name = cfg.contains("topology")
        ? cfg.getStr("topology")
        : "mesh";
    const int w = static_cast<int>(cfg.getInt("mesh_width"));
    const int h = static_cast<int>(cfg.getInt("mesh_height"));
    const int c = cfg.contains("concentration")
        ? static_cast<int>(cfg.getInt("concentration"))
        : 1;

    Topology topo = [&]() -> Topology {
        if (name == "mesh") {
            if (c != 1)
                fatal("concentration > 1 requires topology=cmesh");
            return mesh(w, h);
        }
        if (name == "torus") {
            if (c != 1)
                fatal("concentration > 1 requires topology=cmesh");
            return torus(w, h);
        }
        if (name == "cmesh")
            return cmesh(w, h, c);
        if (name == "ring") {
            if (c != 1)
                fatal("concentration > 1 requires topology=cmesh");
            if (h != 1)
                fatal("ring requires mesh_height=1 (got "
                      + std::to_string(h) + ")");
            return ring(w);
        }
        fatal("unknown topology '" + name
              + "' (want mesh, torus, cmesh, or ring)");
    }();

    const int base = cfg.contains("link_latency")
        ? static_cast<int>(cfg.getInt("link_latency"))
        : 1;
    const int lx = cfg.contains("link_latency_x")
        ? static_cast<int>(cfg.getInt("link_latency_x"))
        : base;
    const int ly = cfg.contains("link_latency_y")
        ? static_cast<int>(cfg.getInt("link_latency_y"))
        : base;
    const int ll = cfg.contains("link_latency_local")
        ? static_cast<int>(cfg.getInt("link_latency_local"))
        : base;
    topo.setLinkLatencies(lx, ly, ll);
    return topo;
}

void
Topology::setLinkLatencies(int x, int y, int local)
{
    if (x < 1 || y < 1 || local < 1)
        fatal("link latencies must be >= 1 cycle");
    latencyX_ = x;
    latencyY_ = y;
    latencyLocal_ = local;
}

void
Topology::buildPortMaps()
{
    const int n = grid_.numNodes();
    const int w = grid_.width();
    const int h = grid_.height();
    fwd_.assign(static_cast<std::size_t>(n) * kNumPorts, PortRef{});
    rev_.assign(static_cast<std::size_t>(n) * kNumPorts, PortRef{});
    for (int node = 0; node < n; ++node) {
        const Coord c = grid_.coordOf(node);
        for (Dir d : {Dir::East, Dir::West, Dir::North, Dir::South}) {
            Coord nc = c;
            switch (d) {
              case Dir::East: ++nc.x; break;
              case Dir::West: --nc.x; break;
              case Dir::North: ++nc.y; break;
              case Dir::South: --nc.y; break;
              case Dir::Local: break;
            }
            if (wrapX_) {
                nc.x = (nc.x + w) % w;
            }
            if (wrapY_) {
                nc.y = (nc.y + h) % h;
            }
            if (nc.x < 0 || nc.x >= w || nc.y < 0 || nc.y >= h)
                continue; // mesh edge: no link through this port
            const int nbr = grid_.nodeId(nc);
            const int op = portOf(opposite(d));
            fwd_[flat(node, portOf(d))] = PortRef{nbr, op};
            rev_[flat(nbr, op)] = PortRef{node, portOf(d)};
        }
        // Local: a router's output Local feeds its own endpoint, whose
        // injection link feeds the router's input Local back.
        fwd_[flat(node, portOf(Dir::Local))] =
            PortRef{node, portOf(Dir::Local)};
        rev_[flat(node, portOf(Dir::Local))] =
            PortRef{node, portOf(Dir::Local)};
    }
}

int
Topology::minimalDirsInto(int cur, int dest, Dir out[2]) const
{
    if (!hasWrap())
        return grid_.minimalDirsInto(cur, dest, out);
    const Coord cc = grid_.coordOf(cur);
    const Coord cd = grid_.coordOf(dest);
    int n = 0;
    if (cd.x != cc.x) {
        if (!wrapX_) {
            out[n++] = cd.x > cc.x ? Dir::East : Dir::West;
        } else {
            const int w = grid_.width();
            const int east = (cd.x - cc.x + w) % w;
            // Exact ties (even extent, dest half-way around) go East.
            out[n++] = east <= w - east ? Dir::East : Dir::West;
        }
    }
    if (cd.y != cc.y) {
        if (!wrapY_) {
            out[n++] = cd.y > cc.y ? Dir::North : Dir::South;
        } else {
            const int h = grid_.height();
            const int north = (cd.y - cc.y + h) % h;
            out[n++] = north <= h - north ? Dir::North : Dir::South;
        }
    }
    return n;
}

int
Topology::hopDistance(int a, int b) const
{
    if (!hasWrap())
        return grid_.hopDistance(a, b);
    const Coord ca = grid_.coordOf(a);
    const Coord cb = grid_.coordOf(b);
    int dx = std::abs(ca.x - cb.x);
    int dy = std::abs(ca.y - cb.y);
    if (wrapX_)
        dx = dx < grid_.width() - dx ? dx : grid_.width() - dx;
    if (wrapY_)
        dy = dy < grid_.height() - dy ? dy : grid_.height() - dy;
    return dx + dy;
}

bool
Topology::datelineCrossing(int node, Dir d) const
{
    const Coord c = grid_.coordOf(node);
    switch (d) {
      case Dir::East:
        return wrapX_ && c.x == grid_.width() - 1;
      case Dir::West:
        return wrapX_ && c.x == 0;
      case Dir::North:
        return wrapY_ && c.y == grid_.height() - 1;
      case Dir::South:
        return wrapY_ && c.y == 0;
      case Dir::Local: break;
    }
    return false;
}

} // namespace footprint
