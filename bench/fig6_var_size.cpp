/**
 * @file
 * Figure 6 — latency-throughput curves with variable packet sizes
 * (uniformly distributed 1..6 flits), 8x8 mesh, 10 VCs. Larger
 * packets amortize the atomic VC-reallocation cost of Duato-based
 * algorithms, so DBAR/Footprint close the gap on DOR for uniform
 * traffic, and XORDET's static VC restriction hurts across the board.
 */

#include <cstdio>
#include <map>

#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace footprint;
    using namespace footprint::bench;
    setQuiet(true);
    ExecContext ctx(benchJobs(argc, argv));

    header("Figure 6: latency-throughput, uniform 1-6 flit packets "
           "(8x8, 10 VCs)");
    const std::vector<double> rates{0.10, 0.20, 0.30, 0.36, 0.40,
                                    0.44, 0.48, 0.52};

    for (const char* pattern : {"uniform", "transpose", "shuffle"}) {
        std::printf("\n-- %s --\n", pattern);
        std::map<std::string, double> saturation;
        for (const std::string& algo : evaluatedAlgorithms()) {
            SimConfig cfg = benchBaseline();
            cfg.set("traffic", pattern);
            cfg.set("routing", algo);
            cfg.set("packet_size", "uniform1-6");
            const auto points =
                latencyThroughputCurve(cfg, rates, ctx);
            std::printf("%s", formatCurve(algo, points).c_str());
            saturation[algo] = saturationFromLadder(points);
        }
        std::printf("saturation throughput:");
        for (const auto& [algo, sat] : saturation)
            std::printf("  %s=%.3f", algo.c_str(), sat);
        std::printf("\nfootprint vs dbar: %+.1f%%   xordet effect on "
                    "dbar: %+.1f%%\n",
                    pctGain(saturation["footprint"],
                            saturation["dbar"]),
                    pctGain(saturation["dbar+xordet"],
                            saturation["dbar"]));
    }
    return 0;
}
