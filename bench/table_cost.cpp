/**
 * @file
 * Sec. 4.4 — implementation cost of Footprint routing: the per-port
 * storage added by the idle-VC counter and the per-VC owner registers,
 * across network sizes and VC counts, expressed in bits and in
 * equivalent flit-buffer entries (128- and 256-bit flits).
 */

#include <cstdio>

#include "bench_common.hpp"
#include "metrics/cost_model.hpp"

int
main()
{
    using namespace footprint;
    using namespace footprint::bench;

    header("Sec 4.4: Footprint storage cost per router port");
    std::printf("%8s %6s %12s %12s %14s %14s\n", "mesh", "VCs",
                "owner_bits", "bits/port", "flits@128b",
                "flits@256b");
    for (int k : {4, 8, 16}) {
        for (int vcs : {2, 4, 8, 10, 16}) {
            const FootprintCost cost = footprintCost(vcs, k * k);
            std::printf("%5dx%-2d %6d %12d %12d %14.2f %14.2f\n", k, k,
                        vcs, cost.ownerBitsPerVc, cost.bitsPerPort(),
                        cost.flitEquivalents(128),
                        cost.flitEquivalents(256));
        }
    }
    std::printf("\nPaper reference point: 8x8 mesh with 16 VCs ~ 132"
                " bits/port (about one\nextra flit-buffer entry); our"
                " model gives %d bits with the same structure\n"
                "(log2(N) owner register per VC + busy bit + idle"
                " counter).\n",
                footprintCost(16, 64).bitsPerPort());
    return 0;
}
