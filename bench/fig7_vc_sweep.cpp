/**
 * @file
 * Figure 7 — impact of the number of VCs per physical channel
 * ({2, 4, 8, 16}) on DBAR vs Footprint, for uniform, transpose, and
 * shuffle traffic (8x8 mesh, single-flit packets). The paper reports
 * Footprint's saturation-throughput gain growing with VC count for
 * uniform/shuffle (12.5% at 2 VCs to 23.1% at 16 under uniform) and
 * shrinking for transpose (33% at 2 VCs to 22% at 16).
 *
 * Alongside the saturation ladder, each (algorithm, VC count) cell
 * runs once near its saturation point with the telemetry hub attached
 * and reports the measured per-router VC occupancy (mean buffered
 * flits during the measurement phase) — the queueing-state view the
 * ladder alone cannot show.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace footprint;

/**
 * Mean flits buffered per router over the measurement phase at
 * @p rate, sampled through an in-memory telemetry hub (aggregate
 * channels only).
 */
double
meanRouterOccupancy(SimConfig cfg, double rate)
{
    cfg.setDouble("injection_rate", rate);
    const int nodes = static_cast<int>(cfg.getInt("mesh_width")
                                       * cfg.getInt("mesh_height"));
    TelemetryConfig tc;
    tc.keepInMemory = true;
    tc.sampleInterval = 50;
    tc.perRouter = false;
    TelemetryHub hub(tc);
    TrafficManager tm(cfg);
    tm.attachTelemetry(&hub);
    tm.run();
    return hub.meanInPhase("net.vc_occ", "measure")
        / static_cast<double>(nodes);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace footprint::bench;
    setQuiet(true);
    ExecContext ctx(benchJobs(argc, argv));

    header("Figure 7: VC-count sweep, DBAR vs Footprint (8x8)");
    const std::vector<double> rates{0.10, 0.20, 0.28, 0.34, 0.40,
                                    0.46, 0.52};

    for (const char* pattern : {"uniform", "transpose", "shuffle"}) {
        std::printf("\n-- %s --\n", pattern);
        std::printf("%6s %14s %14s %10s %10s %10s\n", "VCs",
                    "dbar_sat", "footprint_sat", "gain", "dbar_occ",
                    "fp_occ");
        for (int vcs : {2, 4, 8, 16}) {
            double sat[2] = {0.0, 0.0};
            double occ[2] = {0.0, 0.0};
            int i = 0;
            for (const char* algo : {"dbar", "footprint"}) {
                SimConfig cfg = benchBaseline();
                cfg.set("traffic", pattern);
                cfg.set("routing", algo);
                cfg.setInt("num_vcs", vcs);
                sat[i] = saturationFromLadder(
                    latencyThroughputCurve(cfg, rates, ctx));
                // Queueing state just below this cell's saturation.
                occ[i] = meanRouterOccupancy(cfg, 0.9 * sat[i]);
                ++i;
            }
            std::printf("%6d %14.3f %14.3f %+9.1f%% %10.2f %10.2f\n",
                        vcs, sat[0], sat[1], pctGain(sat[1], sat[0]),
                        occ[0], occ[1]);
        }
    }
    return 0;
}
