/**
 * @file
 * Shared helpers for the per-figure/table benchmark harnesses.
 *
 * Every harness prints the rows/series of one table or figure of the
 * paper. Simulation length is controlled by FP_BENCH_SCALE (a
 * multiplier on warmup/measure/drain cycles, default 1.0; use >= 4 for
 * paper-quality statistics, < 1 for a quick smoke pass).
 */

#ifndef FOOTPRINT_BENCH_COMMON_HPP
#define FOOTPRINT_BENCH_COMMON_HPP

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec/exec_context.hpp"
#include "network/sweep.hpp"
#include "network/traffic_manager.hpp"
#include "sim/config.hpp"
#include "sim/log.hpp"

namespace footprint::bench {

/**
 * Worker-thread count for a bench harness: "--jobs N" on the command
 * line, else the FP_BENCH_JOBS environment variable, else all hardware
 * threads. Every harness is built on the deterministic sweep engine,
 * so the thread count changes wall-clock only, never the printed
 * numbers.
 */
inline unsigned
benchJobs(int argc, char** argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--jobs")
            return static_cast<unsigned>(std::atoi(argv[i + 1]));
    }
    if (const char* env = std::getenv("FP_BENCH_JOBS"))
        return static_cast<unsigned>(std::atoi(env));
    return 0; // ExecContext: 0 = hardware concurrency
}

/** Cycle-count multiplier from the FP_BENCH_SCALE environment var. */
inline double
benchScale()
{
    const char* env = std::getenv("FP_BENCH_SCALE");
    if (!env)
        return 1.0;
    const double s = std::atof(env);
    return s > 0.0 ? s : 1.0;
}

/**
 * The evaluation baseline (Table 2) with bench-sized phases: 8x8 mesh,
 * 10 VCs, buffer 4, speedup 2, single-flit packets.
 */
inline SimConfig
benchBaseline()
{
    SimConfig cfg = defaultConfig();
    const double s = benchScale();
    cfg.setInt("warmup_cycles", static_cast<std::int64_t>(2000 * s));
    cfg.setInt("measure_cycles", static_cast<std::int64_t>(4000 * s));
    cfg.setInt("drain_cycles", static_cast<std::int64_t>(8000 * s));
    return cfg;
}

/** Print a section header. */
inline void
header(const std::string& title)
{
    std::printf("\n== %s ==\n", title.c_str());
}

/**
 * Estimated saturation throughput from a rate ladder: the highest
 * offered rate whose run is not saturated (latency below
 * 3x zero-load, drained, accepted tracking offered), linearly
 * interpolated toward the first saturated rate.
 */
inline double
saturationFromLadder(const std::vector<CurvePoint>& points)
{
    double last_good = 0.0;
    for (const auto& p : points) {
        if (p.saturated) {
            // Midpoint between the last good and the first bad rate.
            return last_good > 0.0 ? (last_good + p.offered) / 2.0
                                   : p.offered / 2.0;
        }
        last_good = p.offered;
    }
    return last_good;
}

/**
 * Wall-clock simulation speed of one run of @p cfg at offered rate
 * @p rate, in simulated cycles per second. CurvePoint carries no
 * timing, so size-scaling benches measure speed with one dedicated
 * run per configuration instead of instrumenting the sweep engine.
 */
inline double
measureCyclesPerSec(SimConfig cfg, double rate)
{
    cfg.setDouble("injection_rate", rate);
    const auto t0 = std::chrono::steady_clock::now();
    const RunStats stats = runExperiment(cfg);
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return secs > 0.0 && stats.cyclesRun > 0
        ? static_cast<double>(stats.cyclesRun) / secs
        : 0.0;
}

/** Percentage improvement of @p ours over @p base. */
inline double
pctGain(double ours, double base)
{
    return base > 0.0 ? (ours / base - 1.0) * 100.0 : 0.0;
}

/** The seven algorithms of the paper's evaluation (Table 2). */
inline std::vector<std::string>
evaluatedAlgorithms()
{
    return {"dor",        "oddeven",        "dbar",
            "footprint",  "dor+xordet",     "oddeven+xordet",
            "dbar+xordet"};
}

} // namespace footprint::bench

#endif // FOOTPRINT_BENCH_COMMON_HPP
