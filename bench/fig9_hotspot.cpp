/**
 * @file
 * Figure 9 — hotspot experiment: the Table-3 persistent flows
 * oversubscribe four endpoints while all other nodes inject uniform
 * background traffic at a constant 0.30 flits/node/cycle. The x-axis
 * sweeps the hotspot injection rate; the y-axis is the average latency
 * of the *background* traffic only. The paper reports DBAR's
 * background collapsing at ~0.39 hotspot load while Footprint survives
 * to ~0.56 (over 40% improvement).
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace footprint;
    using namespace footprint::bench;
    setQuiet(true);
    ExecContext ctx(benchJobs(argc, argv));

    header("Figure 9: background latency vs hotspot injection rate "
           "(8x8, 10 VCs, background at 0.30)");
    const std::vector<double> hotspot_rates{0.10, 0.20, 0.30, 0.36,
                                            0.42, 0.48, 0.54, 0.60};
    const std::vector<const char*> algos{"dbar", "footprint"};

    std::printf("%12s", "hotspot_rate");
    for (const char* algo : algos)
        std::printf(" %18s", algo);
    std::printf("\n");

    // The whole (rate x algorithm) grid is independent runs: execute
    // it as one parallel batch, then print in grid order.
    std::vector<std::function<RunStats()>> tasks;
    for (double rate : hotspot_rates) {
        for (const char* algo : algos) {
            SimConfig cfg = benchBaseline();
            cfg.set("traffic", "hotspot");
            cfg.set("routing", algo);
            cfg.setDouble("injection_rate", rate);
            cfg.setDouble("background_rate", 0.30);
            tasks.push_back(
                [cfg]() { return runExperiment(cfg); });
        }
    }
    const std::vector<RunStats> grid = ctx.map(std::move(tasks));

    double collapse[2] = {0.0, 0.0};
    std::vector<std::vector<double>> lat(
        2, std::vector<double>(hotspot_rates.size(), 0.0));
    for (std::size_t r = 0; r < hotspot_rates.size(); ++r) {
        std::printf("%12.2f", hotspot_rates[r]);
        for (std::size_t i = 0; i < algos.size(); ++i) {
            const RunStats& stats = grid[r * algos.size() + i];
            lat[i][r] = stats.avgLatency();
            std::printf(" %12.1f%s", stats.avgLatency(),
                        stats.saturated ? " [sat]" : "      ");
        }
        std::printf("\n");
    }

    // Collapse point: first hotspot rate at which background latency
    // exceeds 8x its value at the lowest hotspot rate (the sharp
    // "performance collapse" the paper describes, as opposed to the
    // moderate latency plateau Footprint exhibits).
    for (int i = 0; i < 2; ++i) {
        collapse[i] = hotspot_rates.back();
        for (std::size_t r = 0; r < hotspot_rates.size(); ++r) {
            if (lat[static_cast<std::size_t>(i)][r]
                > 8.0 * lat[static_cast<std::size_t>(i)][0]) {
                collapse[i] = hotspot_rates[r];
                break;
            }
        }
    }
    std::printf("\nbackground collapse point: dbar=%.2f "
                "footprint=%.2f (footprint %+.0f%%)\n",
                collapse[0], collapse[1],
                pctGain(collapse[1], collapse[0]));
    return 0;
}
