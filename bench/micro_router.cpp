/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): cost of the routing
 * functions, the arbitration primitives, and a whole-network cycle at
 * several loads. These bound the wall-clock cost of the figure
 * harnesses and catch performance regressions in the hot path.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "network/network.hpp"
#include "network/traffic_manager.hpp"
#include "obs/heatmap.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeseries.hpp"
#include "router/allocators.hpp"
#include "routing/routing.hpp"
#include "sim/config.hpp"
#include "sim/log.hpp"
#include "sim/rng.hpp"

namespace footprint {
namespace {

SimConfig
netConfig(const std::string& routing)
{
    SimConfig cfg = defaultConfig();
    cfg.set("routing", routing);
    return cfg;
}

void
BM_RoundRobinArbiter(benchmark::State& state)
{
    RoundRobinArbiter arb(10);
    std::vector<bool> req(10, true);
    req[3] = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.arbitrate(req));
}
BENCHMARK(BM_RoundRobinArbiter);

void
BM_Rng(benchmark::State& state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.nextBounded(64));
}
BENCHMARK(BM_Rng);

void
BM_NetworkCycle(benchmark::State& state)
{
    const double rate = static_cast<double>(state.range(0)) / 100.0;
    SimConfig cfg = netConfig("footprint");
    setQuiet(true);
    Network net(cfg);
    Rng gen(7);
    std::uint64_t id = 0;
    std::int64_t cycle = 0;
    for (auto _ : state) {
        for (int n = 0; n < 64; ++n) {
            if (gen.nextBool(rate)) {
                Packet p;
                p.id = ++id;
                p.src = n;
                p.dest = static_cast<int>(gen.nextBounded(64));
                if (p.dest == n)
                    continue;
                p.size = 1;
                p.createTime = cycle;
                net.endpoint(n).enqueue(p);
            }
        }
        net.step(cycle++);
        for (int n = 0; n < 64; ++n)
            (void)net.endpoint(n).drainEjected();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NetworkCycle)->Arg(10)->Arg(30)->Arg(45);

/**
 * Shared body of the telemetry-overhead benchmarks: a whole-network
 * cycle at 30% load with a hub in the given state. The "Idle" variant
 * (attached but with sampling and tracing disabled) against plain
 * BM_NetworkCycle/30 is the overhead gate of the CI workflow: the two
 * must stay within 2% of each other, i.e. disabled telemetry must
 * cost no more than its guard branches.
 */
void
runTelemetryCycle(benchmark::State& state, TelemetryHub* hub)
{
    SimConfig cfg = netConfig("footprint");
    setQuiet(true);
    Network net(cfg);
    if (hub)
        net.attachTelemetry(*hub);
    Rng gen(7);
    std::uint64_t id = 0;
    std::int64_t cycle = 0;
    for (auto _ : state) {
        for (int n = 0; n < 64; ++n) {
            if (gen.nextBool(0.30)) {
                Packet p;
                p.id = ++id;
                p.src = n;
                p.dest = static_cast<int>(gen.nextBounded(64));
                if (p.dest == n)
                    continue;
                p.size = 1;
                p.createTime = cycle;
                net.endpoint(n).enqueue(p);
            }
        }
        net.step(cycle);
        if (hub)
            hub->tick(cycle);
        ++cycle;
        for (int n = 0; n < 64; ++n)
            (void)net.endpoint(n).drainEjected();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}

void
BM_NetworkCycleTelemetryIdle(benchmark::State& state)
{
    // Compiled in, attached, but disabled: the hot path sees only the
    // null-tracer and sampling-off branches.
    TelemetryHub hub;
    runTelemetryCycle(state, &hub);
}
BENCHMARK(BM_NetworkCycleTelemetryIdle);

void
BM_NetworkCycleObsIdle(benchmark::State& state)
{
    // Profiler/heatmap/flight-recorder observability compiled in but
    // disabled: a disabled profiler attach detaches (the stepping hot
    // path keeps its null profiler pointer) and the heatmap/recorder
    // null checks mirror TrafficManager's per-cycle gates. Against
    // BM_NetworkCycle/30 this is the ≤2% disabled-overhead CI gate
    // (check_telemetry_overhead.py --obs).
    SimConfig cfg = netConfig("footprint");
    setQuiet(true);
    Network net(cfg);
    Profiler prof(false);
    net.attachProfiler(&prof);
    std::unique_ptr<HeatmapCollector> heatmap;    // disabled => null
    std::unique_ptr<FlightRecorder> recorder;     // disabled => null
    Rng gen(7);
    std::uint64_t id = 0;
    std::int64_t cycle = 0;
    for (auto _ : state) {
        for (int n = 0; n < 64; ++n) {
            if (gen.nextBool(0.30)) {
                Packet p;
                p.id = ++id;
                p.src = n;
                p.dest = static_cast<int>(gen.nextBounded(64));
                if (p.dest == n)
                    continue;
                p.size = 1;
                p.createTime = cycle;
                net.endpoint(n).enqueue(p);
            }
        }
        net.step(cycle);
        if (heatmap)
            heatmap->tick(cycle);
        if (recorder)
            recorder->tick(cycle);
        benchmark::DoNotOptimize(heatmap);
        benchmark::DoNotOptimize(recorder);
        ++cycle;
        for (int n = 0; n < 64; ++n)
            (void)net.endpoint(n).drainEjected();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NetworkCycleObsIdle);

void
BM_NetworkCycleTelemetryActive(benchmark::State& state)
{
    // Full per-router sampling into an in-memory CSV sink at the
    // given interval.
    std::ostringstream ts;
    TelemetryConfig tc;
    tc.sampleInterval = state.range(0);
    TelemetryHub hub(tc);
    hub.addSink(std::make_unique<CsvSink>(ts));
    runTelemetryCycle(state, &hub);
}
BENCHMARK(BM_NetworkCycleTelemetryActive)->Arg(100)->Arg(10);

void
BM_RoutingFunction(benchmark::State& state)
{
    // Measure the whole-network step cost per algorithm at a fixed
    // moderate load; differences expose per-algorithm routing cost.
    const auto algos = allRoutingAlgorithmNames();
    const std::string algo = algos[static_cast<std::size_t>(
        state.range(0))];
    state.SetLabel(algo);
    SimConfig cfg = netConfig(algo);
    setQuiet(true);
    Network net(cfg);
    Rng gen(7);
    std::uint64_t id = 0;
    std::int64_t cycle = 0;
    for (auto _ : state) {
        for (int n = 0; n < 64; ++n) {
            if (gen.nextBool(0.3)) {
                Packet p;
                p.id = ++id;
                p.src = n;
                p.dest = static_cast<int>(gen.nextBounded(64));
                if (p.dest == n)
                    continue;
                p.size = 1;
                p.createTime = cycle;
                net.endpoint(n).enqueue(p);
            }
        }
        net.step(cycle++);
        for (int n = 0; n < 64; ++n)
            (void)net.endpoint(n).drainEjected();
    }
}
BENCHMARK(BM_RoutingFunction)->DenseRange(0, 6);

} // namespace
} // namespace footprint

BENCHMARK_MAIN();
