/**
 * @file
 * Ablation study of the Footprint design choices called out in
 * DESIGN.md:
 *  - Step-3 variant: literal Algorithm-1 vs always-wait vs the
 *    convergence-gated default (Sec. 3.2's prose vs pseudo-code);
 *  - congestion threshold (paper fixes it at V/2);
 *  - footprint-VC cap (the paper's Sec. 4.2.5 future-work isolation
 *    knob, 0 = unlimited as evaluated).
 * Each row reports background latency under the Fig. 9 hotspot load
 * and average latency under transpose (network congestion), the two
 * regimes the design must balance.
 */

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace footprint;
using namespace footprint::bench;

double
hotspotLatency(SimConfig cfg)
{
    cfg.set("traffic", "hotspot");
    cfg.setDouble("injection_rate", 0.44);
    cfg.setDouble("background_rate", 0.30);
    return runExperiment(cfg).avgLatency();
}

double
transposeLatency(SimConfig cfg)
{
    cfg.set("traffic", "transpose");
    cfg.setDouble("injection_rate", 0.40);
    return runExperiment(cfg).avgLatency();
}

void
row(const std::string& label, const SimConfig& cfg)
{
    std::printf("%-32s %14.1f %16.1f\n", label.c_str(),
                hotspotLatency(cfg), transposeLatency(cfg));
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Footprint ablations (8x8, 10 VCs; hotspot bg latency @ "
           "0.44, transpose latency @ 0.40)");
    std::printf("%-32s %14s %16s\n", "configuration", "hotspot_lat",
                "transpose_lat");

    SimConfig base = benchBaseline();
    base.set("routing", "footprint");

    {
        SimConfig cfg = base;
        row("default (converge, thr=V/2)", cfg);
    }
    for (const char* variant : {"literal", "wait"}) {
        SimConfig cfg = base;
        cfg.set("fp_variant", variant);
        row(std::string("variant=") + variant, cfg);
    }
    for (int thr : {2, 3, 7}) {
        SimConfig cfg = base;
        cfg.setInt("congestion_threshold", thr);
        row("threshold=" + std::to_string(thr), cfg);
    }
    for (int cap : {1, 2, 4}) {
        SimConfig cfg = base;
        cfg.setInt("fp_vc_cap", cap);
        row("fp_vc_cap=" + std::to_string(cap), cfg);
    }
    for (int ct : {3, 4}) {
        SimConfig cfg = base;
        cfg.setInt("fp_converge_threshold", ct);
        row("converge_threshold=" + std::to_string(ct), cfg);
    }
    {
        SimConfig cfg = base;
        cfg.set("routing", "dbar");
        row("dbar (reference)", cfg);
    }
    return 0;
}
