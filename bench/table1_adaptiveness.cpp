/**
 * @file
 * Table 1 — qualitative comparison of routing algorithms, backed by
 * the quantitative two-level adaptiveness metrics of Sec. 3.1:
 * P_adapt (Eq. 1) and VC_adapt (Eq. 2), averaged over all node pairs
 * of the 8x8 baseline mesh.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "metrics/adaptiveness.hpp"
#include "topo/mesh.hpp"

int
main()
{
    using namespace footprint;
    using namespace footprint::bench;
    setQuiet(true);

    header("Table 1: two-level routing adaptiveness (8x8 mesh, 10 VCs)");
    std::printf("%-16s %12s %12s %12s\n", "algorithm", "P_adapt",
                "path_adapt", "VC_adapt");

    const Mesh mesh(8, 8);
    for (const char* algo : {"dor", "oddeven", "dbar", "footprint"}) {
        const AdaptivenessReport rep =
            adaptivenessReport(mesh, algo, 10);
        std::printf("%-16s %12.4f %12.4f %12.4f\n", algo,
                    rep.portAdaptiveness, rep.pathAdaptiveness,
                    rep.vcAdaptiveness);
    }

    std::printf("\nPaper's qualitative rows (Table 1): DBAR has high"
                " P_adapt but zero VC_adapt;\nOdd-Even has partial"
                " P_adapt; Footprint is the only algorithm with both\n"
                "P_adapt = 1 and VC_adapt = (V-1)/V.\n");
    return 0;
}
