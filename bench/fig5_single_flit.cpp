/**
 * @file
 * Figure 5 — latency-throughput curves of all seven evaluated routing
 * algorithms under uniform random, transpose, and shuffle traffic with
 * single-flit packets (8x8 mesh, 10 VCs). For each (pattern,
 * algorithm) the harness prints the latency at each offered load and
 * the estimated saturation throughput, plus Footprint's gain over
 * DBAR (the paper reports up to 43%, average 27%).
 */

#include <cstdio>
#include <map>

#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace footprint;
    using namespace footprint::bench;
    setQuiet(true);
    ExecContext ctx(benchJobs(argc, argv));

    header("Figure 5: latency-throughput, single-flit packets "
           "(8x8, 10 VCs)");
    const std::vector<double> rates{0.10, 0.20, 0.30, 0.36, 0.40,
                                    0.44, 0.48, 0.52};

    for (const char* pattern : {"uniform", "transpose", "shuffle"}) {
        std::printf("\n-- %s --\n", pattern);
        std::map<std::string, double> saturation;
        for (const std::string& algo : evaluatedAlgorithms()) {
            SimConfig cfg = benchBaseline();
            cfg.set("traffic", pattern);
            cfg.set("routing", algo);
            const auto points =
                latencyThroughputCurve(cfg, rates, ctx);
            std::printf("%s", formatCurve(algo, points).c_str());
            saturation[algo] = saturationFromLadder(points);
        }
        std::printf("saturation throughput:");
        for (const auto& [algo, sat] : saturation)
            std::printf("  %s=%.3f", algo.c_str(), sat);
        std::printf("\nfootprint vs dbar: %+.1f%%   vs oddeven: "
                    "%+.1f%%   vs dor: %+.1f%%\n",
                    pctGain(saturation["footprint"],
                            saturation["dbar"]),
                    pctGain(saturation["footprint"],
                            saturation["oddeven"]),
                    pctGain(saturation["footprint"],
                            saturation["dor"]));
    }
    return 0;
}
