/**
 * @file
 * Whole-network cycles/sec microbench and stepping-equivalence check.
 *
 * Runs an 8x8 mesh at three operating points (idle, low load, past
 * saturation) under each of the four main routing algorithms, once
 * with step_mode=full and once with step_mode=activity, and:
 *
 *  - requires the two modes to produce bit-identical results (an
 *    FNV-1a checksum over every router counter, the network totals,
 *    and the drained-packet stream), and
 *  - reports cycles/sec for both modes, so the CI gate
 *    (tools/check_bench_regression.py --micro) can pin the checksums
 *    exactly and watch throughput for regressions.
 *
 * Three further operating points add a thread axis and are
 * additionally run with step_mode=sharded, each thread count emitted
 * as its own "@tN" result row: sat16 (16x16 near saturation, threads
 * 1/2/4 — its row names predate the 8-worker axis and stay frozen)
 * and the big-mesh points sat32 (32x32, 1024 nodes) and big64 (64x64,
 * 4096 nodes), both past saturation at threads 1/2/4/8. Every sharded
 * checksum must equal the serial reference checksum — this binary
 * exits nonzero on any divergence, and the CI gate cross-checks the
 * rows again from the artifact — so the bench doubles as the
 * determinism gate for parallel stepping.
 *
 * Every point also runs with the event-horizon fast path enabled
 * (DESIGN.md §16), emitted as an "@skip" row (activity stepping) and,
 * on the thread-axis points, an "@tNskip" row (sharded at the point's
 * largest thread count: t4 for sat16, t8 for the big meshes).
 * Injection is schedule-driven (InjectionSchedule draws geometric
 * inter-arrival gaps, consuming RNG only at fire events), so the
 * traffic is identical whether idle spans are ticked or jumped — the
 * skip rows must reproduce the full-stepping checksum bit for bit,
 * enforced both here (nonzero exit) and by the CI gate (rows sharing
 * a base name modulo '@...' must agree).
 *
 * Usage: micro_cycle [--cycles N] [--out FILE] [--point NAME]
 *                    [--profile [--profile-out FILE]]
 *
 * The JSON artifact is a footprint.bench/1 document with
 * kind="micro_cycle". Checksums are load-, seed-, and
 * algorithm-dependent but machine-independent; wall-clock fields are
 * the only machine-dependent values.
 *
 * --profile switches to self-profiling mode: only the thread-axis
 * point (sat16) runs, each configuration with a Profiler attached, and
 * the per-phase / per-shard / barrier-wait breakdown is printed and
 * written as a footprint.profile/1 document (default
 * micro_profile.json). Every profiled checksum must still equal the
 * unprofiled full-stepping reference — the mode proves on every run
 * that profiling cannot perturb simulation results.
 */

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <execinfo.h>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "obs/profiler.hpp"
#include "obs/run_metadata.hpp"
#include "sim/config.hpp"
#include "sim/horizon.hpp"
#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "traffic/injection.hpp"

// --- Hot-path heap-allocation counter (DESIGN.md §17). ---
// The bench replaces global operator new/delete so it can count every
// heap allocation made while the armed flag is set — i.e. during the
// steady-state half of a measured stepping loop. The zero-allocation
// invariant for saturated serial rows is asserted below (nonzero exit
// on violation) and allocs_per_cycle is reported for every row.

namespace {
std::atomic<bool> g_countAllocs{false};
std::atomic<std::uint64_t> g_heapAllocs{0};
/**
 * Debug aid: with FP_ALLOC_TRAP set in the environment, the first
 * counted allocation of a *serial* measured run prints a backtrace
 * and aborts, so a zero-allocation regression pinpoints its caller
 * instead of just failing the gate. (Sharded runs are excluded: the
 * thread pool's task dispatch allocates by design.)
 */
std::atomic<bool> g_trapAllocs{false};

void*
countedAlloc(std::size_t n)
{
    if (g_countAllocs.load(std::memory_order_relaxed)) {
        g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
        if (g_trapAllocs.load(std::memory_order_relaxed)) {
            void* frames[16];
            const int depth = ::backtrace(frames, 16);
            ::backtrace_symbols_fd(frames, depth, 2);
            std::abort();
        }
    }
    if (void* p = std::malloc(n != 0 ? n : 1))
        return p;
    throw std::bad_alloc();
}
} // namespace

void*
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void*
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace footprint {
namespace {

struct OperatingPoint
{
    const char* name;
    int meshW;
    int meshH;
    double load;
    /** Per-point cycle-budget multiplier (big meshes run shorter). */
    double cycleScale;
    /** Also run step_mode=sharded at each kThreadCounts entry. */
    bool threadAxis;
    /**
     * Past saturation: the serial activity rows (plain and @skip)
     * must perform zero heap allocations per steady-state cycle.
     * Sharded rows are reported but not asserted — the thread pool's
     * task dispatch may allocate outside the simulator proper.
     */
    bool saturated;
    /**
     * Largest kThreadCounts entry this point shards at; the trailing
     * "@tNskip" row runs at this count too. sat16 stays capped at 4
     * so its historical row names (through "@t4skip") are stable; the
     * big-mesh points exercise the 8-worker axis.
     */
    int maxThreads;
    /** --profile mode runs only the points with this flag. */
    bool profileAxis;
};

constexpr OperatingPoint kPoints[] = {
    {"idle", 8, 8, 0.0, 1.0, false, false, 1, false},
    {"low", 8, 8, 0.10, 1.0, false, false, 1, false},
    {"sat", 8, 8, 0.45, 1.0, false, true, 1, false},
    {"sat16", 16, 16, 0.25, 0.4, true, true, 4, true},
    // Big-mesh operating points: 1024 and 4096 nodes past their
    // uniform-DOR saturation loads (~4/k flits/node/cycle), with the
    // cycle budget scaled so each point costs about as much wall time
    // as sat16 despite the node count.
    {"sat32", 32, 32, 0.15, 0.12, true, true, 8, false},
    {"big64", 64, 64, 0.08, 0.03, true, true, 8, false},
};

constexpr const char* kRoutings[] = {"dor", "oddeven", "dbar",
                                     "footprint"};

constexpr int kThreadCounts[] = {1, 2, 4, 8};

constexpr std::uint64_t kSeed = 7;

/** One (operating point, routing, step mode) measurement. */
struct RunOutcome
{
    std::uint64_t checksum = 0;
    double wallSeconds = 0.0;
    std::uint64_t steadyAllocs = 0;   ///< heap allocs in the window
    std::int64_t steadyCycles = 0;    ///< cycles in the window
};

class Fnv1a
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xffu;
            hash_ *= 1099511628211ULL;
        }
    }

    void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 14695981039346656037ULL;
};

SimConfig
pointConfig(const std::string& routing, const OperatingPoint& pt,
            const char* step_mode, int threads)
{
    SimConfig cfg = defaultConfig();
    cfg.set("routing", routing);
    cfg.set("step_mode", step_mode);
    cfg.setInt("mesh_width", pt.meshW);
    cfg.setInt("mesh_height", pt.meshH);
    cfg.setInt("threads", threads);
    return cfg;
}

RunOutcome
runOne(const std::string& routing, const OperatingPoint& pt,
       std::int64_t cycles, const char* step_mode, int threads,
       bool skip_ahead = false, Profiler* prof = nullptr)
{
    SimConfig cfg = pointConfig(routing, pt, step_mode, threads);
    Network net(cfg);
    if (prof) {
        net.attachProfiler(prof);
        prof->beginRun();
    }

    const int nodes = pt.meshW * pt.meshH;
    Rng gen(kSeed);
    // Schedule-driven injection: per fire the draws are dest then next
    // gap, so the RNG sequence depends only on the fire events — never
    // on how many idle cycles elapsed — and skip-ahead runs reproduce
    // the per-cycle checksum exactly.
    std::unique_ptr<InjectionSchedule> sched;
    if (pt.load > 0.0)
        sched = std::make_unique<InjectionSchedule>(nodes, pt.load,
                                                    gen);
    std::uint64_t id = 0;
    std::uint64_t drained = 0;
    std::uint64_t hops_sum = 0;
    std::uint64_t create_sum = 0;

    // Warm every capacity the steady state needs so the allocation
    // counter below measures the simulator, not first-touch growth: a
    // saturated source queue backlog only ever grows, so pre-size it
    // for the worst case (one packet per cycle per endpoint), and
    // collect ejections through a reused scratch vector instead of a
    // by-value drain.
    for (int n = 0; n < nodes; ++n) {
        net.endpoint(n).reserveSourceQueue(
            static_cast<std::size_t>(cycles) + 1);
    }
    // A source starts at most one packet per cycle, so this bounds
    // every descriptor-pool high-water mark the run can reach.
    net.packetPool().reserveSlotCapacity(
        static_cast<std::size_t>(cycles) + 2);
    std::vector<EjectedPacket> eject_scratch;
    eject_scratch.reserve(64);

    // Allocation-count window: the second half of the run, past
    // warmup. Armed by comparison (not equality) because skip-ahead
    // may jump the clock over the boundary cycle.
    const std::int64_t steady_start = cycles / 2;
    bool counting = false;
    std::int64_t count_from = 0;
    std::uint64_t allocs_at_arm = 0;
    const bool trap = std::getenv("FP_ALLOC_TRAP") != nullptr
        && std::strcmp(step_mode, "sharded") != 0;

    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t cycle = 0; cycle < cycles; ++cycle) {
        if (!counting && cycle >= steady_start) {
            counting = true;
            count_from = cycle;
            allocs_at_arm =
                g_heapAllocs.load(std::memory_order_relaxed);
            g_trapAllocs.store(trap, std::memory_order_relaxed);
            g_countAllocs.store(true, std::memory_order_relaxed);
        }
        if (sched) {
            for (int slot; (slot = sched->popDue(cycle)) >= 0;) {
                const int dest = static_cast<int>(gen.nextBounded(
                    static_cast<std::uint64_t>(nodes)));
                sched->scheduleNext(slot, cycle, gen);
                if (dest == slot)
                    continue;
                Packet p;
                p.id = ++id;
                p.src = slot;
                p.dest = dest;
                p.size = 1;
                p.createTime = cycle;
                net.endpoint(slot).enqueue(p);
            }
        }
        net.step(cycle);
        for (int n = 0; n < nodes; ++n) {
            if (net.endpoint(n).ejectedCount() == 0)
                continue;
            eject_scratch.clear();
            net.endpoint(n).drainEjectedInto(eject_scratch);
            for (const EjectedPacket& p : eject_scratch) {
                ++drained;
                hops_sum += static_cast<std::uint64_t>(p.hops);
                create_sum +=
                    static_cast<std::uint64_t>(p.createTime);
            }
        }
        if (skip_ahead && net.idle()) {
            HorizonTracker hz(cycle + 1, cycles);
            if (sched)
                hz.clamp(sched->nextFireCycle());
            if (hz.skips()) {
                net.skipTo(hz.cycle());
                cycle = hz.cycle() - 1;
            }
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    std::uint64_t steady_allocs = 0;
    if (counting) {
        g_countAllocs.store(false, std::memory_order_relaxed);
        g_trapAllocs.store(false, std::memory_order_relaxed);
        steady_allocs =
            g_heapAllocs.load(std::memory_order_relaxed)
            - allocs_at_arm;
    }
    if (prof)
        prof->endRun(cycles);

    Fnv1a sum;
    sum.mix(net.totalFlitsInjected());
    sum.mix(net.totalFlitsEjected());
    sum.mix(static_cast<std::uint64_t>(net.totalFlitsInFlight()));
    sum.mix(net.totalFlitsSent());
    sum.mix(drained);
    sum.mix(hops_sum);
    sum.mix(create_sum);
    for (int n = 0; n < nodes; ++n) {
        const Router::Counters& c = net.router(n).counters();
        sum.mix(c.vcAllocSuccess);
        sum.mix(c.vcAllocFail);
        sum.mix(c.flitsTraversed);
        sum.mix(c.puritySamples);
        sum.mix(c.puritySum);
    }

    RunOutcome out;
    out.checksum = sum.value();
    out.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.steadyAllocs = steady_allocs;
    out.steadyCycles = counting ? cycles - count_from : 0;
    return out;
}

struct ResultRow
{
    std::string name;
    std::string routing;
    std::string topology = "mesh";  ///< every micro point is a mesh
    std::string mode;               ///< "activity" or "sharded"
    int threads = 1;
    double load = 0.0;
    std::int64_t cycles = 0;
    double wallSeconds = 0.0;       ///< measured mode
    double cyclesPerSec = 0.0;      ///< measured mode
    double fullCyclesPerSec = 0.0;  ///< full (reference) mode
    double allocsPerCycle = 0.0;    ///< steady-state heap allocs
    std::uint64_t checksum = 0;
};

std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
writeJson(std::ostream& os, const std::vector<ResultRow>& rows,
          std::int64_t cycles)
{
    // Uniform self-describing meta header (same as every other
    // artifact family); the config hash covers the bench's baseline
    // operating-point configuration.
    RunMetadata meta = RunMetadata::fromConfig(defaultConfig());
    meta.seed = kSeed;
    os << "{\"schema\":\"footprint.bench/1\",\"kind\":\"micro_cycle\""
       << ",\"meta\":" << meta.toJson()
       << ",\"run\":{\"mesh\":\"multi\",\"seed\":" << kSeed
       << ",\"cycles\":" << cycles << "},\"results\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ResultRow& r = rows[i];
        if (i > 0)
            os << ',';
        char buf[384];
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"%s\",\"routing\":\"%s\","
            "\"topology\":\"%s\",\"mode\":\"%s\","
            "\"threads\":%d,\"load\":%.2f,"
            "\"cycles\":%lld,\"wall_seconds\":%.6f,"
            "\"cycles_per_sec\":%.1f,\"full_cycles_per_sec\":%.1f,"
            "\"speedup\":%.3f,\"allocs_per_cycle\":%.6f,"
            "\"checksum\":\"%s\"}",
            r.name.c_str(), r.routing.c_str(), r.topology.c_str(),
            r.mode.c_str(),
            r.threads, r.load, static_cast<long long>(r.cycles),
            r.wallSeconds, r.cyclesPerSec, r.fullCyclesPerSec,
            r.fullCyclesPerSec > 0.0
                ? r.cyclesPerSec / r.fullCyclesPerSec
                : 0.0,
            r.allocsPerCycle, hex64(r.checksum).c_str());
        os << buf;
    }
    os << "]}\n";
}

ResultRow
makeRow(const OperatingPoint& pt, const char* routing,
        const std::string& name, const char* mode, int threads,
        std::int64_t cycles, const RunOutcome& run,
        const RunOutcome& full)
{
    ResultRow row;
    row.name = name;
    row.routing = routing;
    row.mode = mode;
    row.threads = threads;
    row.load = pt.load;
    row.cycles = cycles;
    row.wallSeconds = run.wallSeconds;
    row.cyclesPerSec = run.wallSeconds > 0.0
        ? static_cast<double>(cycles) / run.wallSeconds
        : 0.0;
    row.fullCyclesPerSec = full.wallSeconds > 0.0
        ? static_cast<double>(cycles) / full.wallSeconds
        : 0.0;
    row.allocsPerCycle = run.steadyCycles > 0
        ? static_cast<double>(run.steadyAllocs)
            / static_cast<double>(run.steadyCycles)
        : 0.0;
    row.checksum = run.checksum;
    return row;
}

/**
 * Enforce the zero-allocation invariant: a saturated serial row must
 * not heap-allocate during its steady-state window.
 */
bool
checkZeroAllocs(const OperatingPoint& pt, const char* routing,
                const char* variant, const RunOutcome& run)
{
    if (!pt.saturated || run.steadyAllocs == 0)
        return true;
    std::fprintf(stderr,
                 "FAIL: %s/%s%s: %llu heap allocations in the "
                 "steady-state window (%lld cycles) — the saturated "
                 "hot path must be allocation-free\n",
                 pt.name, routing, variant,
                 static_cast<unsigned long long>(run.steadyAllocs),
                 static_cast<long long>(run.steadyCycles));
    return false;
}

void
printRow(const ResultRow& row)
{
    std::printf("%-20s %12.0f %12.0f %7.2fx  %s\n", row.name.c_str(),
                row.fullCyclesPerSec, row.cyclesPerSec,
                row.fullCyclesPerSec > 0.0
                    ? row.cyclesPerSec / row.fullCyclesPerSec
                    : 0.0,
                hex64(row.checksum).c_str());
}

/** One profiled row's terminal summary: phase shares + barrier tail. */
void
printProfileRow(const std::string& name, const Profiler& prof)
{
    const double run = prof.runSeconds();
    std::printf("%-24s %10.0f c/s ", name.c_str(),
                run > 0.0 ? static_cast<double>(prof.cycles()) / run
                          : 0.0);
    for (int p = 0; p < static_cast<int>(ProfPhase::Count); ++p) {
        const auto phase = static_cast<ProfPhase>(p);
        if (prof.phaseCalls(phase) == 0)
            continue;
        std::printf(" %s %4.1f%%", profPhaseName(phase),
                    run > 0.0
                        ? 100.0 * prof.phaseSeconds(phase) / run
                        : 0.0);
    }
    if (prof.sharded() && prof.barrierWaits().count() > 0) {
        std::printf("  imbalance %.2f  barrier p99 %llu ns",
                    prof.imbalanceRatio(),
                    static_cast<unsigned long long>(
                        prof.barrierWaits().percentile(0.99)));
    }
    std::printf("\n");
}

/**
 * --profile mode: the thread-axis point only, every configuration
 * profiled, every checksum still pinned to the unprofiled reference.
 */
int
runProfileMode(std::int64_t cycles, const std::string& out_path)
{
    setQuiet(true);
    std::vector<std::string> rows;
    SimConfig meta_cfg = defaultConfig();
    for (const OperatingPoint& pt : kPoints) {
        if (!pt.profileAxis)
            continue;
        const auto pt_cycles = static_cast<std::int64_t>(
            static_cast<double>(cycles) * pt.cycleScale);
        for (const char* routing : kRoutings) {
            const RunOutcome full =
                runOne(routing, pt, pt_cycles, "full", 1);
            const std::string base =
                std::string(pt.name) + "/" + routing;
            meta_cfg = pointConfig(routing, pt, "sharded", 1);

            Profiler act_prof;
            const RunOutcome act = runOne(routing, pt, pt_cycles,
                                          "activity", 1, false,
                                          &act_prof);
            if (act.checksum != full.checksum) {
                std::fprintf(stderr,
                             "FAIL: %s: profiled activity run "
                             "diverged from unprofiled full stepping "
                             "(checksum %s vs %s)\n",
                             base.c_str(), hex64(act.checksum).c_str(),
                             hex64(full.checksum).c_str());
                return 1;
            }
            rows.push_back(act_prof.toJsonRow(base, "activity", 1));
            printProfileRow(base, act_prof);

            for (const int threads : kThreadCounts) {
                if (threads > pt.maxThreads)
                    continue;
                Profiler prof;
                const RunOutcome sharded =
                    runOne(routing, pt, pt_cycles, "sharded", threads,
                           false, &prof);
                if (sharded.checksum != full.checksum) {
                    std::fprintf(
                        stderr,
                        "FAIL: %s@t%d: profiled sharded run diverged "
                        "from unprofiled full stepping (checksum %s "
                        "vs %s)\n",
                        base.c_str(), threads,
                        hex64(sharded.checksum).c_str(),
                        hex64(full.checksum).c_str());
                    return 1;
                }
                const std::string name =
                    base + "@t" + std::to_string(threads);
                rows.push_back(
                    prof.toJsonRow(name, "sharded", threads));
                printProfileRow(name, prof);
            }
        }
    }

    const RunMetadata meta = RunMetadata::fromConfig(meta_cfg);
    if (!writeProfileDocument(out_path, &meta, rows)) {
        std::fprintf(stderr, "FAIL: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("wrote %s (schema footprint.profile/1, %zu rows)\n",
                out_path.c_str(), rows.size());
    return 0;
}

int
run(int argc, char** argv)
{
    std::int64_t cycles = 5000;
    std::string out_path;
    std::string profile_out = "micro_profile.json";
    std::string only_point;
    bool profile = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
            cycles = std::atoll(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0
                   && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--point") == 0
                   && i + 1 < argc) {
            only_point = argv[++i];
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            profile = true;
        } else if (std::strcmp(argv[i], "--profile-out") == 0
                   && i + 1 < argc) {
            profile_out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: micro_cycle [--cycles N] "
                         "[--out FILE] [--point NAME] [--profile "
                         "[--profile-out FILE]]\n");
            return 2;
        }
    }

    if (profile)
        return runProfileMode(cycles, profile_out);

    setQuiet(true);
    std::vector<ResultRow> rows;
    std::printf("%-20s %12s %12s %8s  %s\n", "config",
                "full c/s", "mode c/s", "speedup", "checksum");
    for (const OperatingPoint& pt : kPoints) {
        // --point: run a single operating point (CI smoke jobs).
        if (!only_point.empty() && only_point != pt.name)
            continue;
        const auto pt_cycles = static_cast<std::int64_t>(
            static_cast<double>(cycles) * pt.cycleScale);
        for (const char* routing : kRoutings) {
            const RunOutcome full =
                runOne(routing, pt, pt_cycles, "full", 1);
            const RunOutcome act =
                runOne(routing, pt, pt_cycles, "activity", 1);
            if (full.checksum != act.checksum) {
                std::fprintf(
                    stderr,
                    "FAIL: %s/%s: activity stepping diverged from "
                    "full stepping (checksum %s vs %s)\n",
                    pt.name, routing,
                    hex64(act.checksum).c_str(),
                    hex64(full.checksum).c_str());
                return 1;
            }
            if (!checkZeroAllocs(pt, routing, "", act))
                return 1;
            const std::string base =
                std::string(pt.name) + "/" + routing;
            rows.push_back(makeRow(pt, routing, base, "activity", 1,
                                   pt_cycles, act, full));
            printRow(rows.back());
            const RunOutcome skip = runOne(routing, pt, pt_cycles,
                                           "activity", 1, true);
            if (skip.checksum != full.checksum) {
                std::fprintf(
                    stderr,
                    "FAIL: %s/%s: skip-ahead stepping diverged from "
                    "full stepping (checksum %s vs %s)\n",
                    pt.name, routing, hex64(skip.checksum).c_str(),
                    hex64(full.checksum).c_str());
                return 1;
            }
            if (!checkZeroAllocs(pt, routing, "@skip", skip))
                return 1;
            rows.push_back(makeRow(pt, routing, base + "@skip",
                                   "activity", 1, pt_cycles, skip,
                                   full));
            printRow(rows.back());
            if (!pt.threadAxis)
                continue;
            for (const int threads : kThreadCounts) {
                if (threads > pt.maxThreads)
                    continue;
                const RunOutcome sharded = runOne(
                    routing, pt, pt_cycles, "sharded", threads);
                if (sharded.checksum != full.checksum) {
                    std::fprintf(
                        stderr,
                        "FAIL: %s/%s: sharded stepping with "
                        "threads=%d diverged from full stepping "
                        "(checksum %s vs %s)\n",
                        pt.name, routing, threads,
                        hex64(sharded.checksum).c_str(),
                        hex64(full.checksum).c_str());
                    return 1;
                }
                rows.push_back(makeRow(
                    pt, routing,
                    base + "@t" + std::to_string(threads), "sharded",
                    threads, pt_cycles, sharded, full));
                printRow(rows.back());
            }
            const RunOutcome sharded_skip =
                runOne(routing, pt, pt_cycles, "sharded",
                       pt.maxThreads, true);
            if (sharded_skip.checksum != full.checksum) {
                std::fprintf(
                    stderr,
                    "FAIL: %s/%s: sharded skip-ahead stepping "
                    "diverged from full stepping (checksum %s vs "
                    "%s)\n",
                    pt.name, routing,
                    hex64(sharded_skip.checksum).c_str(),
                    hex64(full.checksum).c_str());
                return 1;
            }
            rows.push_back(makeRow(
                pt, routing,
                base + "@t" + std::to_string(pt.maxThreads) + "skip",
                "sharded", pt.maxThreads, pt_cycles, sharded_skip,
                full));
            printRow(rows.back());
        }
    }

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os) {
            std::fprintf(stderr, "FAIL: cannot open %s\n",
                         out_path.c_str());
            return 1;
        }
        writeJson(os, rows, cycles);
        std::printf("wrote %s\n", out_path.c_str());
    } else {
        writeJson(std::cout, rows, cycles);
    }
    return 0;
}

} // namespace
} // namespace footprint

int
main(int argc, char** argv)
{
    return footprint::run(argc, argv);
}
