/**
 * @file
 * Figure 2 — the motivating example: a 4x4 mesh with 4 VCs per channel
 * and the four-flow permutation
 *   f1: n0 -> n10, f2: n1 -> n15 (network congestion on n1 -> n2),
 *   f3: n4 -> n13, f4: n12 -> n13 (endpoint congestion at n13).
 * For each routing algorithm we drive the flows persistently and
 * report the congestion tree of the oversubscribed endpoint n13:
 * branch count and thickness (VCs per channel), plus the network-wide
 * VC footprint of all four flows. DOR should show thick branches,
 * fully adaptive routing should spread them further, XORDET should be
 * thin-but-static, and Footprint should be both thin and adaptive
 * (Fig. 2(d)).
 *
 * The transient view comes from the telemetry hub: each run samples
 * the hotspot router's footprint-lane count and buffered flits every
 * 10 cycles, and the harness reports when the tree reached its final
 * extent (formation time) alongside the end-state snapshot.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "metrics/congestion_tree.hpp"
#include "network/network.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace footprint;

struct Flow
{
    int src;
    int dest;
};

constexpr int kHotspot = 13;  ///< the oversubscribed endpoint

/** Drive the Fig. 2 flows at full rate for a while, then snapshot. */
void
runScenario(const std::string& label, const std::string& algo,
            int fp_vc_cap = 0)
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    cfg.set("routing", algo);
    cfg.setInt("fp_vc_cap", fp_vc_cap);
    Network net(cfg);

    // In-memory telemetry: per-router channels, sampled every 10
    // cycles, no file sinks.
    TelemetryConfig tc;
    tc.keepInMemory = true;
    tc.sampleInterval = 10;
    TelemetryHub hub(tc);
    net.attachTelemetry(hub);
    hub.beginPhase("measure", 0);

    const Flow flows[] = {{0, 10}, {1, 15}, {4, kHotspot},
                          {12, kHotspot}};
    std::uint64_t id = 0;
    std::int64_t cycle = 0;
    for (; cycle < 300; ++cycle) {
        // Persistent flows: keep every source backlogged.
        for (const Flow& f : flows) {
            if (net.endpoint(f.src).sourceBacklogFlits() < 8) {
                Packet p;
                p.id = ++id;
                p.src = f.src;
                p.dest = f.dest;
                p.size = 1;
                p.createTime = cycle;
                net.endpoint(f.src).enqueue(p);
            }
        }
        net.step(cycle);
        hub.tick(cycle);
        for (int n = 0; n < 16; ++n)
            (void)net.endpoint(n).drainEjected();
    }
    hub.finish(cycle - 1);

    const CongestionTree hotspot = extractCongestionTree(net, kHotspot);
    const int all_flows_vcs =
        totalCongestionVcs(net, {10, 15, kHotspot});

    // Formation time of the hotspot's congestion tree, read off the
    // sampled footprint-lane series of the hotspot router: the first
    // sample at which the lane count reached its steady value.
    const std::string fp_chan =
        "r" + std::to_string(kHotspot) + ".fp_occ";
    const auto& series = hub.series(fp_chan);
    std::int64_t formed = -1;
    if (!series.empty()) {
        const double steady = series.back().value;
        for (const Sample& s : series) {
            if (s.value >= steady) {
                formed = s.cycle;
                break;
            }
        }
    }

    std::printf("%-18s endpoint-tree(n13): %2d branches, %2d VCs, "
                "avg thickness %.2f, max %d | all-flow VCs: %d | "
                "lanes steady@%4lld, occ avg %.1f\n",
                label.c_str(), hotspot.numBranches(),
                hotspot.totalVcs(), hotspot.avgThickness(),
                hotspot.maxThickness(), all_flows_vcs,
                static_cast<long long>(formed),
                hub.meanInPhase(
                    "r" + std::to_string(kHotspot) + ".vc_occ",
                    "measure"));
}

} // namespace

int
main()
{
    using namespace footprint::bench;
    footprint::setQuiet(true);
    header("Figure 2: congestion trees of the motivating example "
           "(4x4 mesh, 4 VCs)");
    for (const char* algo :
         {"dor", "dbar", "dor+xordet", "dbar+xordet", "footprint"}) {
        runScenario(algo, algo);
    }
    // The Sec. 4.2.5 isolation extension: capping footprint VCs per
    // (port, destination) bounds the branch thickness explicitly.
    runScenario("footprint cap=1", "footprint", 1);
    runScenario("footprint cap=2", "footprint", 2);
    std::printf("\nExpectation (paper): DOR/full-adaptive saturate all"
                " 4 VCs per branch;\nXORDET confines the endpoint tree"
                " to ~1 VC per branch; Footprint keeps\nbranches thin"
                " while remaining adaptive (with 4 VCs the V/2"
                " threshold only\nbinds once 3 of 4 VCs are taken;"
                " the capped variant bounds thickness\ndirectly).\n");
    return 0;
}
