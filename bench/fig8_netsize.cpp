/**
 * @file
 * Figure 8 — scalability with network size: DBAR's saturation
 * throughput normalized to Footprint's on 4x4, 8x8, and 16x16 meshes
 * (10 VCs, single-flit). The paper reports Footprint's edge growing
 * with network size (uniform: 11% -> 13%, shuffle: 25% -> 46% between
 * 4x4 and 16x16).
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace footprint;
    using namespace footprint::bench;
    setQuiet(true);
    ExecContext ctx(benchJobs(argc, argv));

    header("Figure 8: DBAR throughput normalized to Footprint, by "
           "mesh size");
    const std::vector<double> rates{0.08, 0.16, 0.24, 0.32, 0.40,
                                    0.48};

    std::printf("%10s %-12s %12s %14s %18s\n", "mesh", "pattern",
                "dbar_sat", "footprint_sat", "dbar/footprint");
    for (int k : {4, 8, 16}) {
        for (const char* pattern :
             {"uniform", "transpose", "shuffle"}) {
            double sat[2] = {0.0, 0.0};
            int i = 0;
            for (const char* algo : {"dbar", "footprint"}) {
                SimConfig cfg = benchBaseline();
                cfg.setInt("mesh_width", k);
                cfg.setInt("mesh_height", k);
                cfg.set("traffic", pattern);
                cfg.set("routing", algo);
                sat[i++] = saturationFromLadder(
                    latencyThroughputCurve(cfg, rates, ctx));
            }
            std::printf("%7dx%-2d %-12s %12.3f %14.3f %17.3f\n", k, k,
                        pattern, sat[0], sat[1],
                        sat[1] > 0.0 ? sat[0] / sat[1] : 0.0);
        }
    }
    return 0;
}
