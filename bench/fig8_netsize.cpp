/**
 * @file
 * Figure 8 — scalability with network size: DBAR's saturation
 * throughput normalized to Footprint's on 4x4 through 32x32 meshes
 * (10 VCs, single-flit). The paper reports Footprint's edge growing
 * with network size (uniform: 11% -> 13%, shuffle: 25% -> 46% between
 * 4x4 and 16x16); the 32x32 extension runs under sharded stepping
 * (bit-identical to serial, see DESIGN.md §13) to keep the 1024-node
 * sweeps tractable.
 *
 * Each size also reports the simulator's own speed (cycles/sec at a
 * mid-ladder load) so the bench doubles as a size-scaling record of
 * the engine itself.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace footprint;
    using namespace footprint::bench;
    setQuiet(true);
    ExecContext ctx(benchJobs(argc, argv));

    header("Figure 8: DBAR throughput normalized to Footprint, by "
           "mesh size");
    const std::vector<double> rates{0.08, 0.16, 0.24, 0.32, 0.40,
                                    0.48};

    // Meshes of 1024+ nodes run with sharded stepping; thread count
    // changes wall-clock only, never the printed numbers.
    auto sizeConfig = [](int k) {
        SimConfig cfg = benchBaseline();
        cfg.setInt("mesh_width", k);
        cfg.setInt("mesh_height", k);
        if (k >= 32) {
            cfg.set("step_mode", "sharded");
            cfg.setInt("threads", 4);
        }
        return cfg;
    };

    std::printf("%10s %-12s %12s %14s %18s %14s\n", "mesh", "pattern",
                "dbar_sat", "footprint_sat", "dbar/footprint",
                "cycles/sec");
    for (int k : {4, 8, 16, 32}) {
        // Engine speed at this size: one timed footprint-routing run
        // at a mid-ladder load (printed on the size's first row).
        SimConfig speed_cfg = sizeConfig(k);
        speed_cfg.set("traffic", "uniform");
        speed_cfg.set("routing", "footprint");
        const double cps = measureCyclesPerSec(speed_cfg, rates[1]);
        bool first_row = true;
        for (const char* pattern :
             {"uniform", "transpose", "shuffle"}) {
            double sat[2] = {0.0, 0.0};
            int i = 0;
            for (const char* algo : {"dbar", "footprint"}) {
                SimConfig cfg = sizeConfig(k);
                cfg.set("traffic", pattern);
                cfg.set("routing", algo);
                sat[i++] = saturationFromLadder(
                    latencyThroughputCurve(cfg, rates, ctx));
            }
            std::printf("%7dx%-2d %-12s %12.3f %14.3f %17.3f",
                        k, k, pattern, sat[0], sat[1],
                        sat[1] > 0.0 ? sat[0] / sat[1] : 0.0);
            if (first_row) {
                std::printf(" %14.0f", cps);
                first_row = false;
            }
            std::printf("\n");
        }
    }
    return 0;
}
