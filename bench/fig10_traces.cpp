/**
 * @file
 * Figure 10 — application traces. The paper replays PARSEC 2.0
 * Netrace traces, two co-running workloads at a time, and reports
 * (a) Footprint's average-latency gain over DBAR per pair, (b) the
 * purity of blocking per application, and (c) the degree of HoL
 * blocking (impurity x blocking events). PARSEC traces are not
 * redistributable, so this harness uses the synthetic per-application
 * profiles of traffic/trace_gen (see DESIGN.md for the substitution
 * rationale); traces are written to and replayed from real trace
 * files, exercising the same code path Netrace would.
 */

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "traffic/trace_gen.hpp"

namespace {

using namespace footprint;
using namespace footprint::bench;

std::string
buildPairTrace(const Mesh& mesh, const std::string& a,
               const std::string& b, std::int64_t length)
{
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path =
        (dir / ("fp_fig10_" + a + "_" + b + ".trace")).string();
    const auto ta = generateTrace(mesh, parsecProfile(a), length, 11);
    const auto tb = generateTrace(mesh, parsecProfile(b), length, 23);
    const auto merged = mergeTraces(ta, tb);
    TraceWriter writer(path);
    writer.comment("co-running " + a + " + " + b);
    for (const auto& ev : merged)
        writer.append(ev);
    return path;
}

RunStats
replay(const std::string& trace_path, const std::string& algo,
       std::int64_t length)
{
    SimConfig cfg = benchBaseline();
    cfg.set("traffic", "trace");
    cfg.set("trace_file", trace_path);
    cfg.set("routing", algo);
    cfg.setInt("warmup_cycles", 0);
    cfg.setInt("measure_cycles", length);
    return runExperiment(cfg);
}

} // namespace

int
main()
{
    setQuiet(true);
    const Mesh mesh(8, 8);
    const auto length =
        static_cast<std::int64_t>(4000 * benchScale());

    // (a) latency difference per co-running pair.
    header("Figure 10(a): Footprint vs DBAR latency on co-running "
           "PARSEC-like trace pairs");
    const std::pair<const char*, const char*> pairs[] = {
        {"fluidanimate", "ferret"},  {"fluidanimate", "canneal"},
        {"bodytrack", "freqmine"},   {"x264", "canneal"},
        {"dedup", "vips"},           {"blackscholes", "swaptions"},
    };
    std::printf("%-28s %12s %12s %10s\n", "pair", "dbar_lat",
                "fp_lat", "fp_gain");
    for (const auto& [a, b] : pairs) {
        const std::string path = buildPairTrace(mesh, a, b, length);
        const RunStats dbar = replay(path, "dbar", length);
        const RunStats fp = replay(path, "footprint", length);
        std::printf("%-28s %12.2f %12.2f %+9.1f%%\n",
                    (std::string(a) + "+" + b).c_str(),
                    dbar.avgLatency(), fp.avgLatency(),
                    pctGain(dbar.avgLatency(), fp.avgLatency()));
        std::remove(path.c_str());
    }

    // (b, c) purity of blocking and HoL degree per application,
    // measured under DBAR (the blocking the paper attributes to
    // VC-oblivious allocation).
    header("Figure 10(b,c): purity of blocking and HoL degree per "
           "application (DBAR replay)");
    std::printf("%-16s %10s %14s %14s\n", "app", "purity",
                "blocking_evts", "hol_degree");
    for (const AppProfile& prof : parsecProfiles()) {
        const auto dir = std::filesystem::temp_directory_path();
        const std::string path =
            (dir / ("fp_fig10_" + prof.name + ".trace")).string();
        writeTraceFile(path, mesh, prof, length, 7);
        const RunStats stats = replay(path, "dbar", length);
        std::printf("%-16s %10.3f %14llu %14.0f\n", prof.name.c_str(),
                    stats.counters.purity(),
                    static_cast<unsigned long long>(
                        stats.counters.vcAllocFail),
                    stats.counters.holDegree());
        std::remove(path.c_str());
    }
    std::printf("\nExpectation (paper): the heavy, destination-diverse"
                " workloads (fluidanimate)\nshow low purity, many"
                " blocking events, and the largest Footprint gain;\n"
                "light workloads (blackscholes, swaptions) show"
                " little of either.\n");
    return 0;
}
