/**
 * @file
 * A scriptable RouterView for routing-algorithm unit tests: every
 * piece of router state the algorithms consult can be set directly.
 */

#ifndef FOOTPRINT_TESTS_FAKE_ROUTER_VIEW_HPP
#define FOOTPRINT_TESTS_FAKE_ROUTER_VIEW_HPP

#include <array>
#include <map>
#include <vector>

#include "routing/routing.hpp"
#include "sim/rng.hpp"
#include "topo/mesh.hpp"
#include "topo/topology.hpp"

namespace footprint {

class FakeRouterView : public RouterView
{
  public:
    /** View over an explicit topology (torus/ring routing tests). */
    FakeRouterView(const Topology& topo, int node, int num_vcs,
                   int buf_size = 4)
        : topo_(topo), node_(node), numVcs_(num_vcs),
          bufSize_(buf_size), rng_(1)
    {
        initMasks(num_vcs);
    }

    /** Mesh convenience: builds a mesh Topology of the same shape. */
    FakeRouterView(const Mesh& mesh, int node, int num_vcs,
                   int buf_size = 4)
        : topo_(Topology::mesh(mesh.width(), mesh.height())),
          node_(node), numVcs_(num_vcs), bufSize_(buf_size), rng_(1)
    {
        initMasks(num_vcs);
    }

    // --- Scripting interface ---

    /** Mark VC (port, vc) occupied by a packet to @p dest. */
    void
    occupy(int port, int vc, int dest)
    {
        idle_[static_cast<std::size_t>(port)] &= ~(VcMask{1} << vc);
        occupied_[static_cast<std::size_t>(port)] |= VcMask{1} << vc;
        owners_[static_cast<std::size_t>(port)]
               [static_cast<std::size_t>(vc)] = dest;
    }

    /** Mark VC (port, vc) drained but still owned by @p dest. */
    void
    drainedOwner(int port, int vc, int dest)
    {
        idle_[static_cast<std::size_t>(port)] |= VcMask{1} << vc;
        occupied_[static_cast<std::size_t>(port)] &= ~(VcMask{1} << vc);
        owners_[static_cast<std::size_t>(port)]
               [static_cast<std::size_t>(vc)] = dest;
    }

    void
    setZeroCredit(int port, VcMask mask)
    {
        zeroCredit_[static_cast<std::size_t>(port)] = mask;
    }

    void
    setRemoteIdle(int through_port, int port, int count)
    {
        remote_[{through_port, port}] = count;
    }

    void setConvergence(int dest, int count) { convergence_[dest] = count; }

    // --- RouterView ---

    int nodeId() const override { return node_; }
    const Topology& topo() const override { return topo_; }
    int numVcs() const override { return numVcs_; }
    int vcBufSize() const override { return bufSize_; }

    VcMask
    idleVcMask(int port) const override
    {
        return idle_[static_cast<std::size_t>(port)];
    }

    VcMask
    footprintVcMask(int port, int dest) const override
    {
        VcMask m = 0;
        for (int v = 0; v < numVcs_; ++v) {
            if (owners_[static_cast<std::size_t>(port)]
                       [static_cast<std::size_t>(v)] == dest) {
                m |= VcMask{1} << v;
            }
        }
        return m;
    }

    VcMask
    occupiedVcMask(int port) const override
    {
        return occupied_[static_cast<std::size_t>(port)];
    }

    VcMask
    zeroCreditVcMask(int port) const override
    {
        return zeroCredit_[static_cast<std::size_t>(port)];
    }

    int
    convergingInputs(int dest) const override
    {
        auto it = convergence_.find(dest);
        return it == convergence_.end() ? 0 : it->second;
    }

    int
    remoteIdleCount(int through_port, int port) const override
    {
        auto it = remote_.find({through_port, port});
        return it == remote_.end() ? -1 : it->second;
    }

    Rng& rng() const override { return rng_; }

  private:
    void
    initMasks(int num_vcs)
    {
        for (int p = 0; p < kNumPorts; ++p) {
            // Default: everything idle.
            idle_[static_cast<std::size_t>(p)] = maskOfFirst(num_vcs);
            occupied_[static_cast<std::size_t>(p)] = 0;
            zeroCredit_[static_cast<std::size_t>(p)] = 0;
            owners_[static_cast<std::size_t>(p)].assign(
                static_cast<std::size_t>(num_vcs), -1);
        }
    }

    Topology topo_;
    int node_;
    int numVcs_;
    int bufSize_;
    mutable Rng rng_;
    std::array<VcMask, kNumPorts> idle_{};
    std::array<VcMask, kNumPorts> occupied_{};
    std::array<VcMask, kNumPorts> zeroCredit_{};
    std::array<std::vector<int>, kNumPorts> owners_;
    std::map<std::pair<int, int>, int> remote_;
    std::map<int, int> convergence_;
};

/** Build a head flit from @p src to @p dest for routing tests. */
inline Flit
headFlit(int src, int dest)
{
    Flit f;
    f.src = src;
    f.dest = dest;
    f.head = true;
    f.tail = true;
    return f;
}

} // namespace footprint

#endif // FOOTPRINT_TESTS_FAKE_ROUTER_VIEW_HPP
