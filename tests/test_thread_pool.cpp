/**
 * @file
 * Tests for the execution engine's ThreadPool and ExecContext: FIFO
 * task ordering, exception propagation through futures and map(),
 * drain-on-shutdown under load, and result ordering independent of
 * worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/exec_context.hpp"
#include "exec/spin_barrier.hpp"
#include "exec/thread_pool.hpp"

namespace footprint {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    auto f1 = pool.submit([]() { return 41 + 1; });
    auto f2 = pool.submit([]() { return std::string("done"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> done;
    for (int i = 0; i < 64; ++i) {
        done.push_back(
            pool.submit([&order, i]() { order.push_back(i); }));
    }
    for (auto& f : done)
        f.get();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([]() { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i) {
            pool.post([&completed]() {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
                completed.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // Destructor must run every task submitted before shutdown.
    }
    EXPECT_EQ(completed.load(), 200);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    EXPECT_EQ(pool.size(), ThreadPool::hardwareThreads());
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), [&hits](std::size_t b,
                                          std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForWithItemGranularityChunks)
{
    // chunks == n queues one item per chunk (dynamic balancing).
    ThreadPool pool(4);
    std::atomic<long> sum{0};
    pool.parallelFor(
        100,
        [&sum](std::size_t b, std::size_t e) {
            EXPECT_EQ(e, b + 1);
            sum.fetch_add(static_cast<long>(b),
                          std::memory_order_relaxed);
        },
        /*chunks=*/100);
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPool, ParallelForPropagatesChunkException)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallelFor(
            8,
            [&ran](std::size_t b, std::size_t) {
                ran.fetch_add(1, std::memory_order_relaxed);
                if (b == 0)
                    throw std::runtime_error("chunk 0 failed");
            },
            /*chunks=*/8),
        std::runtime_error);
    // Every chunk still ran: a failure never strands queued work.
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ParallelForZeroAndTinyRanges)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&calls](std::size_t, std::size_t) {
        ++calls;
    });
    EXPECT_EQ(calls, 0);
    std::atomic<int> ones{0};
    pool.parallelFor(1, [&ones](std::size_t b, std::size_t e) {
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 1u);
        ones.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ones.load(), 1);
}

TEST(SpinBarrier, SynchronizesPhasesAcrossThreads)
{
    constexpr int kParties = 4;
    constexpr int kRounds = 50;
    SpinBarrier barrier(kParties);
    std::atomic<int> counter{0};
    std::atomic<bool> failed{false};

    auto body = [&]() {
        for (int r = 0; r < kRounds; ++r) {
            counter.fetch_add(1, std::memory_order_relaxed);
            barrier.arriveAndWait();
            // Between the two barriers nobody increments, so every
            // thread must observe the full round's count.
            if (counter.load(std::memory_order_relaxed)
                != kParties * (r + 1))
                failed.store(true, std::memory_order_relaxed);
            barrier.arriveAndWait();
        }
    };
    std::vector<std::thread> crew;
    for (int t = 0; t < kParties - 1; ++t)
        crew.emplace_back(body);
    body();
    for (auto& th : crew)
        th.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(counter.load(), kParties * kRounds);
}

TEST(SpinBarrier, SinglePartyNeverBlocks)
{
    SpinBarrier barrier(1);
    for (int i = 0; i < 10; ++i)
        barrier.arriveAndWait();
    SUCCEED();
}

TEST(ExecContext, MapReturnsResultsInTaskOrder)
{
    for (unsigned jobs : {1u, 4u}) {
        ExecContext ctx(jobs);
        std::vector<std::function<int()>> tasks;
        for (int i = 0; i < 32; ++i)
            tasks.push_back([i]() { return i * i; });
        const std::vector<int> out = ctx.map(std::move(tasks));
        ASSERT_EQ(out.size(), 32u) << "jobs=" << jobs;
        for (int i = 0; i < 32; ++i)
            EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
    }
}

TEST(ExecContext, MapFinishesAllTasksBeforeRethrowing)
{
    ExecContext ctx(4);
    std::atomic<int> ran{0};
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.push_back([&ran, i]() -> int {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i == 3)
                throw std::runtime_error("task 3 failed");
            return i;
        });
    }
    EXPECT_THROW(ctx.map(std::move(tasks)), std::runtime_error);
    // No task is abandoned: every job completed despite the failure.
    EXPECT_EQ(ran.load(), 16);
}

TEST(ExecContext, SequentialContextRunsInline)
{
    ExecContext& ctx = ExecContext::sequential();
    EXPECT_EQ(ctx.jobs(), 1u);
    EXPECT_FALSE(ctx.parallel());
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::function<std::thread::id()>> tasks;
    tasks.push_back([]() { return std::this_thread::get_id(); });
    EXPECT_EQ(ctx.map(std::move(tasks)).front(), caller);
}

} // namespace
} // namespace footprint
