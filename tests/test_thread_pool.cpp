/**
 * @file
 * Tests for the execution engine's ThreadPool and ExecContext: FIFO
 * task ordering, exception propagation through futures and map(),
 * drain-on-shutdown under load, and result ordering independent of
 * worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/exec_context.hpp"
#include "exec/thread_pool.hpp"

namespace footprint {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    auto f1 = pool.submit([]() { return 41 + 1; });
    auto f2 = pool.submit([]() { return std::string("done"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> done;
    for (int i = 0; i < 64; ++i) {
        done.push_back(
            pool.submit([&order, i]() { order.push_back(i); }));
    }
    for (auto& f : done)
        f.get();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([]() { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i) {
            pool.post([&completed]() {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
                completed.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // Destructor must run every task submitted before shutdown.
    }
    EXPECT_EQ(completed.load(), 200);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    EXPECT_EQ(pool.size(), ThreadPool::hardwareThreads());
}

TEST(ExecContext, MapReturnsResultsInTaskOrder)
{
    for (unsigned jobs : {1u, 4u}) {
        ExecContext ctx(jobs);
        std::vector<std::function<int()>> tasks;
        for (int i = 0; i < 32; ++i)
            tasks.push_back([i]() { return i * i; });
        const std::vector<int> out = ctx.map(std::move(tasks));
        ASSERT_EQ(out.size(), 32u) << "jobs=" << jobs;
        for (int i = 0; i < 32; ++i)
            EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
    }
}

TEST(ExecContext, MapFinishesAllTasksBeforeRethrowing)
{
    ExecContext ctx(4);
    std::atomic<int> ran{0};
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.push_back([&ran, i]() -> int {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i == 3)
                throw std::runtime_error("task 3 failed");
            return i;
        });
    }
    EXPECT_THROW(ctx.map(std::move(tasks)), std::runtime_error);
    // No task is abandoned: every job completed despite the failure.
    EXPECT_EQ(ran.load(), 16);
}

TEST(ExecContext, SequentialContextRunsInline)
{
    ExecContext& ctx = ExecContext::sequential();
    EXPECT_EQ(ctx.jobs(), 1u);
    EXPECT_FALSE(ctx.parallel());
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::function<std::thread::id()>> tasks;
    tasks.push_back([]() { return std::this_thread::get_id(); });
    EXPECT_EQ(ctx.map(std::move(tasks)).front(), caller);
}

} // namespace
} // namespace footprint
