/**
 * @file
 * Unit tests for flit construction and the fixed-latency channels.
 */

#include <gtest/gtest.h>

#include "router/channel.hpp"
#include "router/flit.hpp"
#include "router/packet_pool.hpp"

namespace footprint {
namespace {

Packet
makePacket(int size)
{
    Packet p;
    p.id = 7;
    p.src = 1;
    p.dest = 2;
    p.size = size;
    p.createTime = 100;
    p.measured = true;
    return p;
}

TEST(Flit, SingleFlitPacketIsHeadAndTail)
{
    const Flit f = makeFlit(makePacket(1), 0);
    EXPECT_TRUE(f.head);
    EXPECT_TRUE(f.tail);
}

TEST(Flit, MultiFlitPacketStructure)
{
    const Packet p = makePacket(4);
    for (int i = 0; i < 4; ++i) {
        const Flit f = makeFlit(p, i, /*desc=*/42);
        EXPECT_EQ(f.head, i == 0);
        EXPECT_EQ(f.tail, i == 3);
        EXPECT_EQ(f.packetId, p.id);
        EXPECT_EQ(f.src, p.src);
        EXPECT_EQ(f.dest, p.dest);
        EXPECT_EQ(f.desc, 42u);
    }
}

TEST(Flit, DescriptorPoolCarriesPerPacketConstants)
{
    // Per-packet constants live in the pooled descriptor, not in the
    // per-hop-copied flit.
    PacketPool pool;
    const Packet p = makePacket(4);
    const std::uint32_t d = pool.alloc(p);
    EXPECT_NE(d, 0u);
    EXPECT_EQ(pool.get(d).packetSize, 4);
    EXPECT_EQ(pool.get(d).createTime, 100);
    EXPECT_TRUE(pool.get(d).measured);
    EXPECT_EQ(pool.get(d).injectTime, -1);
    EXPECT_EQ(pool.liveCount(), 1u);

    // Released slots are recycled LIFO.
    pool.release(d);
    EXPECT_EQ(pool.liveCount(), 0u);
    EXPECT_EQ(pool.alloc(makePacket(1)), d);
}

TEST(Flit, StaysSmallEnoughToCopyPerHop)
{
    EXPECT_LE(sizeof(Flit), 32u);
}

TEST(Flit, ToStringMentionsEndpoints)
{
    const Flit f = makeFlit(makePacket(1), 0);
    const std::string s = f.toString();
    EXPECT_NE(s.find("1->2"), std::string::npos);
}

TEST(FlitChannel, DeliversAfterLatency)
{
    FlitChannel ch(1);
    Flit f = makeFlit(makePacket(1), 0);
    ch.send(f, 10);
    EXPECT_FALSE(ch.receive(10).has_value());
    const auto got = ch.receive(11);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->packetId, f.packetId);
    EXPECT_FALSE(ch.receive(12).has_value());
}

TEST(FlitChannel, MultiCycleLatency)
{
    FlitChannel ch(3);
    ch.send(makeFlit(makePacket(1), 0), 5);
    EXPECT_FALSE(ch.receive(7).has_value());
    EXPECT_TRUE(ch.receive(8).has_value());
}

TEST(FlitChannel, PreservesOrder)
{
    FlitChannel ch(2);
    Packet p = makePacket(3);
    for (int i = 0; i < 3; ++i) {
        Flit f = makeFlit(p, i);
        ch.send(f, 10 + i);
    }
    for (int i = 0; i < 3; ++i) {
        const auto got = ch.receive(12 + i);
        ASSERT_TRUE(got.has_value()) << "flit " << i;
        EXPECT_EQ(got->head, i == 0);
        EXPECT_EQ(got->tail, i == 2);
    }
}

TEST(FlitChannel, LateReceiveStillDelivers)
{
    FlitChannel ch(1);
    ch.send(makeFlit(makePacket(1), 0), 0);
    // Receiver polls late; delivery happens at the first poll after
    // readiness.
    EXPECT_TRUE(ch.receive(100).has_value());
}

TEST(FlitChannel, InFlightCount)
{
    FlitChannel ch(5);
    EXPECT_TRUE(ch.empty());
    ch.send(makeFlit(makePacket(1), 0), 0);
    ch.send(makeFlit(makePacket(1), 0), 1);
    EXPECT_EQ(ch.inFlightCount(), 2u);
    (void)ch.receive(5);
    EXPECT_EQ(ch.inFlightCount(), 1u);
}

TEST(CreditChannel, CarriesVcIndex)
{
    CreditChannel ch(1);
    ch.send(Credit{3}, 0);
    ch.send(Credit{7}, 0);
    const auto a = ch.receive(1);
    const auto b = ch.receive(1);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->vc, 3);
    EXPECT_EQ(b->vc, 7);
    EXPECT_FALSE(ch.receive(1).has_value());
}

} // namespace
} // namespace footprint
