/**
 * @file
 * Unit tests for the spatial heatmap observatory: config clamping,
 * window tiling, grid geometry, link-utilization delta math on a tiny
 * mesh with a known traffic pattern, and the footprint.heatmap/1
 * document shape.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "obs/heatmap.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace footprint {
namespace {

TEST(HeatmapConfig, FromSimReadsDefaults)
{
    const HeatmapConfig hc = HeatmapConfig::fromSim(defaultConfig());
    EXPECT_FALSE(hc.enabled);
    EXPECT_EQ(hc.outPath, "heatmap.json");
    EXPECT_EQ(hc.window, 1000);
    EXPECT_EQ(hc.sampleInterval, 8);
}

TEST(HeatmapConfig, FromSimClampsDegenerateValues)
{
    SimConfig cfg = defaultConfig();
    cfg.setBool("heatmap", true);
    cfg.setInt("heatmap_window", 0);
    cfg.setInt("heatmap_sample_interval", -3);
    HeatmapConfig hc = HeatmapConfig::fromSim(cfg);
    EXPECT_TRUE(hc.enabled);
    EXPECT_EQ(hc.window, 1);
    EXPECT_EQ(hc.sampleInterval, 1);

    // A sample interval longer than the window degrades to one
    // sample per window, not zero.
    cfg.setInt("heatmap_window", 10);
    cfg.setInt("heatmap_sample_interval", 50);
    hc = HeatmapConfig::fromSim(cfg);
    EXPECT_EQ(hc.window, 10);
    EXPECT_EQ(hc.sampleInterval, 10);
}

TEST(HeatmapCollector, DisabledCollectorRecordsNothing)
{
    SimConfig cfg = defaultConfig();
    Network net(cfg);
    HeatmapConfig hc;  // enabled = false
    HeatmapCollector col(net, hc);
    EXPECT_FALSE(col.enabled());
    for (std::int64_t cycle = 0; cycle < 50; ++cycle) {
        net.step(cycle);
        col.tick(cycle);
    }
    col.finish(50);
    EXPECT_TRUE(col.windows().empty());
}

/** Drive the default 8x8 mesh under uniform Bernoulli load. */
void
driveUniform(Network& net, HeatmapCollector& col, std::int64_t cycles,
             double load)
{
    const int nodes = net.mesh().numNodes();
    Rng gen(17);
    std::uint64_t id = 0;
    for (std::int64_t cycle = 0; cycle < cycles; ++cycle) {
        for (int n = 0; n < nodes; ++n) {
            if (gen.nextBool(load)) {
                Packet p;
                p.id = ++id;
                p.src = n;
                p.dest = static_cast<int>(gen.nextBounded(nodes));
                if (p.dest == n)
                    continue;
                p.size = 1 + static_cast<int>(gen.nextBounded(3));
                p.createTime = cycle;
                net.endpoint(n).enqueue(p);
            }
        }
        net.step(cycle);
        col.tick(cycle);
        for (int n = 0; n < nodes; ++n)
            net.endpoint(n).drainEjected();
    }
    col.finish(cycles);
}

TEST(HeatmapCollector, WindowsTileTheRunAndCountSamples)
{
    SimConfig cfg = defaultConfig();
    Network net(cfg);
    HeatmapConfig hc;
    hc.enabled = true;
    hc.window = 100;
    hc.sampleInterval = 4;
    HeatmapCollector col(net, hc);
    driveUniform(net, col, 250, 0.05);

    // [0,100), [100,200), and the partial trailing [200,250).
    ASSERT_EQ(col.windows().size(), 3u);
    const auto& w = col.windows();
    EXPECT_EQ(w[0].startCycle, 0);
    EXPECT_EQ(w[0].endCycle, 100);
    EXPECT_EQ(w[1].startCycle, 100);
    EXPECT_EQ(w[1].endCycle, 200);
    EXPECT_EQ(w[2].startCycle, 200);
    EXPECT_EQ(w[2].endCycle, 250);
    // Samples at offsets 0, 4, ..., 96 -> 25 per full window; the
    // 50-cycle tail samples offsets 0, 4, ..., 48 -> 13.
    EXPECT_EQ(w[0].samples, 25);
    EXPECT_EQ(w[1].samples, 25);
    EXPECT_EQ(w[2].samples, 13);

    const auto nodes =
        static_cast<std::size_t>(net.mesh().numNodes());
    for (const HeatmapWindow& win : w) {
        for (const auto& dir : win.linkUtil)
            EXPECT_EQ(dir.size(), nodes);
        EXPECT_EQ(win.injectUtil.size(), nodes);
        EXPECT_EQ(win.ejectUtil.size(), nodes);
        EXPECT_EQ(win.vcOcc.size(), nodes);
        EXPECT_EQ(win.fpOcc.size(), nodes);
        EXPECT_EQ(win.escOcc.size(), nodes);
        EXPECT_EQ(win.injBacklog.size(), nodes);
    }

    // Traffic flowed, so the gauges and link counters saw it.
    const auto sum = [](const std::vector<double>& g) {
        return std::accumulate(g.begin(), g.end(), 0.0);
    };
    EXPECT_GT(sum(w[0].injectUtil), 0.0);
    EXPECT_GT(sum(w[0].ejectUtil), 0.0);
    EXPECT_GT(sum(w[0].linkUtil[0]) + sum(w[0].linkUtil[1])
                  + sum(w[0].linkUtil[2]) + sum(w[0].linkUtil[3]),
              0.0);
    EXPECT_GT(sum(w[0].vcOcc) + sum(w[1].vcOcc), 0.0);
    EXPECT_GT(sum(w[0].fpOcc) + sum(w[1].fpOcc), 0.0);
}

TEST(HeatmapCollector, EastboundPacketLandsOnEastLinkGrid)
{
    // 2x2 mesh, one 2-flit packet from node 0 to its east neighbor
    // (node 1): the only router-to-router traffic is node 0's east
    // link, and the deltas are exact flit counts.
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 2);
    cfg.setInt("mesh_height", 2);
    cfg.set("routing", "dor");
    Network net(cfg);
    HeatmapConfig hc;
    hc.enabled = true;
    hc.window = 60;
    hc.sampleInterval = 1;
    HeatmapCollector col(net, hc);

    Packet p;
    p.id = 1;
    p.src = 0;
    p.dest = 1;
    p.size = 2;
    p.createTime = 0;
    net.endpoint(0).enqueue(p);
    std::uint64_t drained = 0;
    for (std::int64_t cycle = 0; cycle < 60; ++cycle) {
        net.step(cycle);
        col.tick(cycle);
        drained += net.endpoint(1).drainEjected().size();
    }
    col.finish(60);
    ASSERT_EQ(drained, 1u);

    ASSERT_EQ(col.windows().size(), 1u);
    const HeatmapWindow& w = col.windows()[0];
    const double cycles = 60.0;
    // All flits enter at node 0, cross its east link, leave at node 1.
    EXPECT_DOUBLE_EQ(w.injectUtil[0] * cycles, 2.0);
    EXPECT_DOUBLE_EQ(w.linkUtil[0][0] * cycles, 2.0);  // east @ node 0
    EXPECT_DOUBLE_EQ(w.ejectUtil[1] * cycles, 2.0);
    // Nothing else moved.
    EXPECT_DOUBLE_EQ(w.injectUtil[1] + w.injectUtil[2]
                         + w.injectUtil[3],
                     0.0);
    EXPECT_DOUBLE_EQ(w.ejectUtil[0] + w.ejectUtil[2] + w.ejectUtil[3],
                     0.0);
    for (int d = 0; d < 4; ++d) {
        for (int n = 0; n < 4; ++n) {
            if (d == 0 && n == 0)
                continue;
            EXPECT_DOUBLE_EQ(w.linkUtil[d][n], 0.0)
                << "dir " << d << " node " << n;
        }
    }
}

TEST(HeatmapCollector, JsonDocumentHasSchemaAndTiledWindows)
{
    SimConfig cfg = defaultConfig();
    Network net(cfg);
    HeatmapConfig hc;
    hc.enabled = true;
    hc.window = 50;
    hc.sampleInterval = 5;
    HeatmapCollector col(net, hc);
    driveUniform(net, col, 100, 0.05);

    const std::string doc = col.toJson(nullptr);
    EXPECT_EQ(doc.find("{\"schema\":\"footprint.heatmap/1\""), 0u);
    EXPECT_NE(doc.find("\"mesh\":{\"width\":8,\"height\":8}"),
              std::string::npos);
    EXPECT_NE(doc.find("\"window\":50"), std::string::npos);
    EXPECT_NE(doc.find("\"sample_interval\":5"), std::string::npos);
    for (const char* metric :
         {"link_util", "inject_util", "eject_util", "vc_occ",
          "fp_occ", "esc_occ", "inj_backlog"})
        EXPECT_NE(doc.find(metric), std::string::npos) << metric;
    for (const char* dir : {"east", "west", "north", "south"})
        EXPECT_NE(doc.find(std::string("\"") + dir + "\":["),
                  std::string::npos)
            << dir;
    EXPECT_NE(doc.find("\"start\":0,\"end\":50"), std::string::npos);
    EXPECT_NE(doc.find("\"start\":50,\"end\":100"),
              std::string::npos);
    EXPECT_EQ(doc.find("\"meta\":"), std::string::npos);
}

} // namespace
} // namespace footprint
