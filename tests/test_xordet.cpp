/**
 * @file
 * Unit tests for the XORDET static VC-mapping combinator.
 */

#include <gtest/gtest.h>

#include "fake_router_view.hpp"
#include "routing/dbar.hpp"
#include "routing/dor.hpp"
#include "routing/xordet.hpp"
#include "sim/config.hpp"

namespace footprint {
namespace {

constexpr int kVcs = 4;

std::unique_ptr<XordetRouting>
dorXordet()
{
    return std::make_unique<XordetRouting>(
        std::make_unique<DorRouting>());
}

TEST(Xordet, NameCombinesBase)
{
    EXPECT_EQ(dorXordet()->name(), "dor+xordet");
    XordetRouting dx(std::make_unique<DbarRouting>());
    EXPECT_EQ(dx.name(), "dbar+xordet");
}

TEST(Xordet, MappingIsDeterministicPerDestination)
{
    const Mesh mesh(8, 8);
    auto x = dorXordet();
    for (int d = 0; d < 64; ++d) {
        EXPECT_EQ(x->vcFor(mesh, d, kVcs), x->vcFor(mesh, d, kVcs));
        EXPECT_GE(x->vcFor(mesh, d, kVcs), 0);
        EXPECT_LT(x->vcFor(mesh, d, kVcs), kVcs);
    }
}

TEST(Xordet, MappingUsesXorOfCoordinates)
{
    const Mesh mesh(4, 4);
    auto x = dorXordet();
    // (x ^ y) mod 4 with no escape offset for a DOR base.
    EXPECT_EQ(x->vcFor(mesh, mesh.nodeId(Coord{1, 3}), 4), 2);
    EXPECT_EQ(x->vcFor(mesh, mesh.nodeId(Coord{3, 3}), 4), 0);
    EXPECT_EQ(x->vcFor(mesh, mesh.nodeId(Coord{2, 2}), 4), 0);
}

TEST(Xordet, Figure2CollisionStructure)
{
    // In Fig. 2(c), the two hotspot flows (to n13) share one VC while
    // the two network-congested flows (to n10 and n15) share another:
    // destinations 10 and 15 must map together, and differently from
    // destination 13.
    const Mesh mesh(4, 4);
    auto x = dorXordet();
    EXPECT_EQ(x->vcFor(mesh, 10, 4), x->vcFor(mesh, 15, 4));
    EXPECT_NE(x->vcFor(mesh, 10, 4), x->vcFor(mesh, 13, 4));
}

TEST(Xordet, EscapeVcIsSkippedForDuatoBase)
{
    const Mesh mesh(8, 8);
    XordetRouting x(std::make_unique<DbarRouting>());
    for (int d = 0; d < 64; ++d) {
        EXPECT_GE(x.vcFor(mesh, d, kVcs), 1)
            << "mapped onto the escape VC";
        EXPECT_LT(x.vcFor(mesh, d, kVcs), kVcs);
    }
}

TEST(Xordet, DorBaseRequestsOnlyMappedVc)
{
    const Mesh mesh(4, 4);
    FakeRouterView view(mesh, 0, kVcs);
    auto x = dorXordet();
    OutputSet out;
    x->route(view, headFlit(0, 10), out);
    ASSERT_EQ(out.requests().size(), 1u);
    EXPECT_EQ(out.requests()[0].port, portOf(Dir::East));
    const int vc = x->vcFor(mesh, 10, kVcs);
    EXPECT_EQ(out.requests()[0].vcs, VcMask{1} << vc);
}

TEST(Xordet, DbarBasePreservesEscapeRequest)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    XordetRouting x(std::make_unique<DbarRouting>());
    OutputSet out;
    x.route(view, headFlit(0, 18), out);
    bool saw_escape = false;
    bool saw_mapped = false;
    for (const auto& r : out.requests()) {
        if (r.priority == Priority::Lowest) {
            saw_escape = true;
            EXPECT_EQ(r.vcs, VcMask{1});
        } else {
            saw_mapped = true;
            EXPECT_EQ(popcount(r.vcs), 1);
            EXPECT_NE(r.vcs & VcMask{1}, VcMask{1}) << "escape reused";
        }
    }
    EXPECT_TRUE(saw_escape);
    EXPECT_TRUE(saw_mapped);
}

TEST(Xordet, InheritsReallocationPolicy)
{
    XordetRouting on_dor(std::make_unique<DorRouting>());
    EXPECT_FALSE(on_dor.atomicVcAlloc());
    EXPECT_EQ(on_dor.numEscapeVcs(), 0);
    XordetRouting on_dbar(std::make_unique<DbarRouting>());
    EXPECT_TRUE(on_dbar.atomicVcAlloc());
    EXPECT_EQ(on_dbar.numEscapeVcs(), 1);
}

TEST(RoutingFactory, BuildsAllAdvertisedAlgorithms)
{
    const SimConfig cfg = defaultConfig();
    for (const auto& name : allRoutingAlgorithmNames()) {
        auto algo = makeRoutingAlgorithm(name, cfg);
        ASSERT_NE(algo, nullptr);
        EXPECT_EQ(algo->name(), name);
    }
}

TEST(RoutingFactory, UnknownNameIsFatal)
{
    const SimConfig cfg = defaultConfig();
    EXPECT_EXIT((void)makeRoutingAlgorithm("warp", cfg),
                testing::ExitedWithCode(1), "unknown routing");
}

} // namespace
} // namespace footprint
