/**
 * @file
 * Unit tests for VC state tracking: masks, input VC lifecycle, and the
 * output-VC owner/credit registers that define footprint VCs.
 */

#include <gtest/gtest.h>

#include "expect_panic.hpp"
#include "router/vc_state.hpp"

namespace footprint {
namespace {

TEST(VcMaskHelpers, MaskOfFirst)
{
    EXPECT_EQ(maskOfFirst(0), 0u);
    EXPECT_EQ(maskOfFirst(1), 0b1u);
    EXPECT_EQ(maskOfFirst(4), 0b1111u);
    EXPECT_EQ(maskOfFirst(10), 0x3FFu);
    EXPECT_EQ(maskOfFirst(64), ~VcMask{0});
}

TEST(VcMaskHelpers, Popcount)
{
    EXPECT_EQ(popcount(0), 0);
    EXPECT_EQ(popcount(0b1011), 3);
    EXPECT_EQ(popcount(~VcMask{0}), 64);
}

TEST(OutVcState, FreshStateIsIdle)
{
    OutVcState s(4);
    EXPECT_TRUE(s.idle());
    EXPECT_FALSE(s.busy());
    EXPECT_FALSE(s.occupied());
    EXPECT_EQ(s.credits(), 4);
    EXPECT_EQ(s.ownerDest(), -1);
}

TEST(OutVcState, AllocateSetsOwnerAndBusy)
{
    OutVcState s(4);
    s.allocate(13);
    EXPECT_TRUE(s.busy());
    EXPECT_TRUE(s.occupied());
    EXPECT_FALSE(s.idle());
    EXPECT_EQ(s.ownerDest(), 13);
}

TEST(OutVcState, TailSentClearsBusyKeepsOwner)
{
    OutVcState s(4);
    s.allocate(13);
    s.consumeCredit();
    s.tailSent();
    EXPECT_FALSE(s.busy());
    // Flit still downstream (credit outstanding): occupied.
    EXPECT_TRUE(s.occupied());
    EXPECT_EQ(s.ownerDest(), 13);
    s.returnCredit();
    EXPECT_FALSE(s.occupied());
    EXPECT_TRUE(s.idle());
    // Owner register persists after drain (footprint memory).
    EXPECT_EQ(s.ownerDest(), 13);
}

TEST(OutVcState, CreditAccounting)
{
    OutVcState s(2);
    s.allocate(5);
    s.consumeCredit();
    EXPECT_EQ(s.credits(), 1);
    s.consumeCredit();
    EXPECT_EQ(s.credits(), 0);
    s.returnCredit();
    s.returnCredit();
    EXPECT_EQ(s.credits(), 2);
}

TEST(OutVcState, AtomicReallocationWaitsForCredits)
{
    OutVcState s(4);
    s.allocate(9);
    s.consumeCredit();
    s.tailSent();
    // Tail sent but credit outstanding: non-atomic may reallocate,
    // atomic (Duato-based) may not.
    EXPECT_TRUE(s.allocatable(false));
    EXPECT_FALSE(s.allocatable(true));
    s.returnCredit();
    EXPECT_TRUE(s.allocatable(true));
}

TEST(OutVcState, BusyIsNeverAllocatable)
{
    OutVcState s(4);
    s.allocate(9);
    EXPECT_FALSE(s.allocatable(false));
    EXPECT_FALSE(s.allocatable(true));
}

TEST(OutVcState, ReallocationOverwritesOwner)
{
    OutVcState s(4);
    s.allocate(9);
    s.tailSent();
    s.allocate(22);
    EXPECT_EQ(s.ownerDest(), 22);
}

TEST(OutVcStateDeath, DoubleAllocatePanics)
{
    OutVcState s(4);
    s.allocate(1);
    EXPECT_PANIC(s.allocate(2), "busy output VC");
}

TEST(OutVcStateDeath, CreditUnderflowPanics)
{
    OutVcState s(1);
    s.allocate(1);
    s.consumeCredit();
    EXPECT_PANIC(s.consumeCredit(), "credit");
}

TEST(OutVcStateDeath, CreditOverflowPanics)
{
    OutVcState s(1);
    EXPECT_PANIC(s.returnCredit(), "overflow");
}

TEST(InputVc, LifecycleAndRelease)
{
    InputVc vc;
    EXPECT_EQ(vc.state, InputVc::State::Idle);
    EXPECT_TRUE(vc.empty());
    vc.buffer.reset(4); // FIFOs start with zero capacity
    Flit f;
    f.head = true;
    vc.buffer.push_back(f);
    EXPECT_EQ(vc.occupancy(), 1u);
    vc.state = InputVc::State::Active;
    vc.outPort = 2;
    vc.outVc = 3;
    vc.releaseRoute();
    EXPECT_EQ(vc.state, InputVc::State::Idle);
    EXPECT_EQ(vc.outPort, -1);
    EXPECT_EQ(vc.outVc, -1);
}

} // namespace
} // namespace footprint
