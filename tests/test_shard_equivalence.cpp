/**
 * @file
 * Sharded-stepping equivalence tests: step_mode=sharded must be
 * observationally identical to full and activity stepping — same
 * injected/ejected totals, same per-packet hop and latency sums, same
 * per-router event counters — for every routing algorithm, any thread
 * count, and any shard count, including shard counts that do not
 * divide the mesh and thread counts above the machine's core count.
 * Also checks the shard-boundary mechanics directly: a credit loop
 * that crosses shards must round-trip every credit home.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "obs/heatmap.hpp"
#include "obs/profiler.hpp"
#include "routing/routing.hpp"
#include "sim/config.hpp"
#include "sim/horizon.hpp"
#include "sim/rng.hpp"
#include "traffic/injection.hpp"

namespace footprint {
namespace {

/**
 * Drive an 8x8 mesh with a deterministic schedule-driven workload and
 * fold everything observable into a flat signature (the same workload
 * and signature as test_step_equivalence, so all modes are
 * cross-checked against one reference behavior). With @p skip_ahead
 * the driver jumps idle spans via the event-horizon fast path
 * (DESIGN.md §16); the signature must not change.
 */
std::vector<std::uint64_t>
runSignature(const std::string& routing, double load,
             const char* step_mode, std::int64_t cycles,
             int threads = 1, int shards = 0,
             Profiler* prof = nullptr, bool heatmap = false,
             bool skip_ahead = false)
{
    SimConfig cfg = defaultConfig();
    cfg.set("routing", routing);
    cfg.set("step_mode", step_mode);
    cfg.setInt("threads", threads);
    cfg.setInt("shards", shards);
    Network net(cfg);
    const int nodes = net.mesh().numNodes();
    if (prof) {
        net.attachProfiler(prof);
        prof->beginRun();
    }
    HeatmapConfig hm_cfg;
    hm_cfg.enabled = heatmap;
    hm_cfg.window = 100;
    hm_cfg.sampleInterval = 4;
    std::unique_ptr<HeatmapCollector> hm;
    if (heatmap)
        hm = std::make_unique<HeatmapCollector>(net, hm_cfg);

    Rng gen(99);
    std::unique_ptr<InjectionSchedule> sched;
    if (load > 0.0)
        sched = std::make_unique<InjectionSchedule>(nodes, load, gen);
    std::uint64_t id = 0;
    std::uint64_t drained = 0;
    std::uint64_t hops_sum = 0;
    std::uint64_t latency_sum = 0;
    for (std::int64_t cycle = 0; cycle < cycles; ++cycle) {
        if (sched) {
            for (int slot; (slot = sched->popDue(cycle)) >= 0;) {
                const int dest =
                    static_cast<int>(gen.nextBounded(nodes));
                const int size =
                    1 + static_cast<int>(gen.nextBounded(3));
                sched->scheduleNext(slot, cycle, gen);
                if (dest == slot)
                    continue;
                Packet p;
                p.id = ++id;
                p.src = slot;
                p.dest = dest;
                p.size = size;
                p.createTime = cycle;
                p.measured = true;
                net.endpoint(slot).enqueue(p);
            }
        }
        net.step(cycle);
        if (hm)
            hm->tick(cycle);
        for (int n = 0; n < nodes; ++n) {
            for (const EjectedPacket& p :
                 net.endpoint(n).drainEjected()) {
                ++drained;
                hops_sum += static_cast<std::uint64_t>(p.hops);
                latency_sum +=
                    static_cast<std::uint64_t>(p.latency());
            }
        }
        if (skip_ahead && net.idle()) {
            HorizonTracker hz(cycle + 1, cycles);
            if (sched)
                hz.clamp(sched->nextFireCycle());
            if (hz.skips()) {
                net.skipTo(hz.cycle());
                if (hm)
                    hm->tick(hz.cycle() - 1);
                cycle = hz.cycle() - 1;
            }
        }
    }
    if (prof)
        prof->endRun(cycles);

    std::vector<std::uint64_t> sig;
    sig.push_back(net.totalFlitsInjected());
    sig.push_back(net.totalFlitsEjected());
    sig.push_back(
        static_cast<std::uint64_t>(net.totalFlitsInFlight()));
    sig.push_back(net.totalFlitsSent());
    sig.push_back(drained);
    sig.push_back(hops_sum);
    sig.push_back(latency_sum);
    for (int n = 0; n < nodes; ++n) {
        const Router::Counters& c = net.router(n).counters();
        sig.push_back(c.vcAllocSuccess);
        sig.push_back(c.vcAllocFail);
        for (const std::uint64_t g : c.vaGrantsByPriority)
            sig.push_back(g);
        sig.push_back(c.flitsTraversed);
        sig.push_back(c.puritySamples);
        sig.push_back(c.puritySum);
    }
    // Link-fabric lane state: per-link sent counters and in-flight
    // occupancy live in the network-owned flat arenas (DESIGN.md §17),
    // so fold them in directly — any divergence in transmit order or
    // credit return between step modes shows up here even when the
    // aggregate totals above happen to agree.
    const LinkFabric& fab = net.linkFabric();
    for (const Network::LinkRecord& l : net.links()) {
        sig.push_back(fab.flitSent(l.flitId));
        sig.push_back(
            static_cast<std::uint64_t>(l.flit->inFlightCount()));
        sig.push_back(
            static_cast<std::uint64_t>(l.credit->inFlightCount()));
    }
    sig.push_back(
        static_cast<std::uint64_t>(net.nextLinkArrivalCycle()));
    return sig;
}

class ShardEquivalence : public testing::TestWithParam<std::string>
{};

TEST_P(ShardEquivalence, TwoThreadsMatchFullAtLowLoad)
{
    const auto full = runSignature(GetParam(), 0.05, "full", 400);
    const auto sharded =
        runSignature(GetParam(), 0.05, "sharded", 400, 2);
    EXPECT_EQ(full, sharded);
}

TEST_P(ShardEquivalence, FourThreadsMatchFullAtMediumLoad)
{
    const auto full = runSignature(GetParam(), 0.15, "full", 300);
    const auto sharded =
        runSignature(GetParam(), 0.15, "sharded", 300, 4);
    EXPECT_EQ(full, sharded);
}

TEST_P(ShardEquivalence, SkipAheadMatchesPerCycleAcrossModes)
{
    // Load low enough that the network drains to quiescence between
    // arrival bursts: the skip-ahead runs jump those idle spans while
    // the reference ticks through them, and every observable total
    // must still agree bit for bit — serially and across shard seams.
    const auto full = runSignature(GetParam(), 0.01, "full", 600);
    const auto act_skip = runSignature(GetParam(), 0.01, "activity",
                                       600, 1, 0, nullptr, false,
                                       true);
    const auto sharded_skip = runSignature(GetParam(), 0.01, "sharded",
                                           600, 4, 0, nullptr, false,
                                           true);
    EXPECT_EQ(full, act_skip);
    EXPECT_EQ(full, sharded_skip);
}

TEST_P(ShardEquivalence, ThreadCountsAgreeNearSaturation)
{
    // Past saturation every shard is busy every cycle, so cross-shard
    // channel and wake traffic is at its densest.
    const auto full = runSignature(GetParam(), 0.45, "full", 300);
    const auto t2 = runSignature(GetParam(), 0.45, "sharded", 300, 2);
    const auto t4 = runSignature(GetParam(), 0.45, "sharded", 300, 4);
    EXPECT_EQ(full, t2);
    EXPECT_EQ(full, t4);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ShardEquivalence,
    testing::ValuesIn(allRoutingAlgorithmNames()),
    [](const testing::TestParamInfo<std::string>& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (c == '+')
                c = '_';
        }
        return name;
    });

TEST(ShardEquivalence, OneThreadMatchesActivityExactly)
{
    // threads=1 sharded takes the same phase path as the parallel
    // runs (per-shard drains, barrier epilogue), just on one thread;
    // it must match serial activity stepping, not merely full.
    const auto act =
        runSignature("footprint", 0.30, "activity", 400);
    const auto sharded =
        runSignature("footprint", 0.30, "sharded", 400, 1);
    EXPECT_EQ(act, sharded);
}

TEST(ShardEquivalence, MoreShardsThanThreads)
{
    // shards=8 on 2 threads: each worker owns several bands and the
    // barrier has fewer parties than shards.
    const auto full = runSignature("footprint", 0.20, "full", 300);
    const auto sharded =
        runSignature("footprint", 0.20, "sharded", 300, 2, 8);
    EXPECT_EQ(full, sharded);
}

TEST(ShardEquivalence, OddShardCountThatDoesNotDivideTheMesh)
{
    // 64 nodes into 7 bands: band sizes differ and band seams fall
    // mid-row, so shard-crossing links appear in both directions.
    const auto full = runSignature("dbar", 0.20, "full", 300);
    const auto sharded =
        runSignature("dbar", 0.20, "sharded", 300, 7, 7);
    EXPECT_EQ(full, sharded);
}

TEST(ShardEquivalence, ThreadsClampToNodeCount)
{
    // More threads than the mesh has nodes: shard count clamps to the
    // node count and the extra threads never materialize.
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 2);
    cfg.setInt("mesh_height", 2);
    cfg.set("step_mode", "sharded");
    cfg.setInt("threads", 16);
    Network net(cfg);
    Packet p;
    p.id = 1;
    p.src = 0;
    p.dest = 3;
    p.size = 3;
    p.createTime = 0;
    net.endpoint(0).enqueue(p);
    for (std::int64_t c = 0; c < 100; ++c)
        net.step(c);
    EXPECT_EQ(net.totalFlitsEjected(), 3u);
    EXPECT_EQ(net.totalFlitsInFlight(), 0);
}

TEST(ShardEquivalence, NonContiguousCyclesStillMatch)
{
    // A cycle jump forces a full re-seed of the wake bitmap; sharded
    // mode must handle it the same way activity mode does.
    auto run = [](const char* mode, int threads) {
        SimConfig cfg = defaultConfig();
        cfg.set("step_mode", mode);
        cfg.setInt("threads", threads);
        Network net(cfg);
        Packet p;
        p.id = 1;
        p.src = 0;
        p.dest = 63;
        p.size = 2;
        p.createTime = 0;
        net.endpoint(0).enqueue(p);
        for (std::int64_t c = 0; c < 40; ++c)
            net.step(c);
        net.step(100); // jump
        for (std::int64_t c = 101; c < 140; ++c)
            net.step(c);
        return std::vector<std::uint64_t>{
            net.totalFlitsInjected(), net.totalFlitsEjected(),
            static_cast<std::uint64_t>(net.totalFlitsInFlight()),
            net.totalFlitsSent()};
    };
    EXPECT_EQ(run("full", 1), run("sharded", 4));
}

TEST(ShardEquivalence, ProfiledShardedRunIsBitIdentical)
{
    // Observability determinism satellite: a sharded run with the
    // self-profiler attached and the heatmap collector ticking every
    // cycle must produce the exact signature of an unprofiled full
    // run — profiling reads clocks and network state, never writes.
    const auto full = runSignature("footprint", 0.30, "full", 300);
    Profiler prof;
    const auto profiled = runSignature("footprint", 0.30, "sharded",
                                       300, 4, 0, &prof, true);
    EXPECT_EQ(full, profiled);

    // The profiler must actually have measured the run it rode along.
    EXPECT_EQ(prof.cycles(), 300);
    EXPECT_GT(prof.runSeconds(), 0.0);
    EXPECT_TRUE(prof.sharded());
    EXPECT_GT(prof.phaseCalls(ProfPhase::Epilogue), 0u);
    EXPECT_GT(prof.barrierWaits().count(), 0u);
    double busy = 0.0;
    for (int s = 0; s < prof.shardCount(); ++s)
        busy += prof.shardBusySeconds(s);
    EXPECT_GT(busy, 0.0);
    EXPECT_GE(prof.imbalanceRatio(), 1.0);
}

TEST(ShardEquivalence, ProfiledSerialModesAreBitIdentical)
{
    const auto full = runSignature("dbar", 0.20, "full", 300);
    Profiler act_prof;
    const auto act = runSignature("dbar", 0.20, "activity", 300, 1, 0,
                                  &act_prof, true);
    EXPECT_EQ(full, act);
    EXPECT_GT(act_prof.phaseSeconds(ProfPhase::Compute), 0.0);
    EXPECT_EQ(act_prof.phaseCalls(ProfPhase::Drain), 300u);
    EXPECT_FALSE(act_prof.sharded());

    Profiler full_prof;
    const auto full_profiled = runSignature("dbar", 0.20, "full", 300,
                                            1, 0, &full_prof, false);
    EXPECT_EQ(full, full_profiled);
    EXPECT_EQ(full_prof.phaseCalls(ProfPhase::Transmit), 300u);
}

TEST(ShardEquivalence, DisabledProfilerDetaches)
{
    // attachProfiler with a disabled profiler must leave the hot path
    // unprofiled (nothing recorded) and results untouched.
    const auto full = runSignature("footprint", 0.15, "full", 200);
    Profiler off(false);
    const auto run = runSignature("footprint", 0.15, "sharded", 200,
                                  2, 0, &off, false);
    EXPECT_EQ(full, run);
    EXPECT_EQ(off.phaseCalls(ProfPhase::Compute), 0u);
    EXPECT_EQ(off.barrierWaits().count(), 0u);
}

TEST(ShardEquivalence, CreditRoundTripAcrossShardBoundary)
{
    // 2x2 mesh split into two shards of one row each: node 0 -> 3
    // crosses the shard seam, so its flits, the ejection credits, and
    // the descriptor release all traverse shard-boundary machinery.
    // After the packet drains, every credit must be back home: each
    // router's output-credit total equals a never-used network's.
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 2);
    cfg.setInt("mesh_height", 2);
    cfg.set("step_mode", "sharded");
    cfg.setInt("threads", 2);
    cfg.setInt("shards", 2);
    Network net(cfg);
    Network fresh(cfg);

    Packet p;
    p.id = 1;
    p.src = 0;
    p.dest = 3;
    p.size = 4;
    p.createTime = 0;
    net.endpoint(0).enqueue(p);
    for (std::int64_t c = 0; c < 200; ++c)
        net.step(c);

    EXPECT_EQ(net.totalFlitsInjected(), 4u);
    EXPECT_EQ(net.totalFlitsEjected(), 4u);
    EXPECT_EQ(net.totalFlitsInFlight(), 0);
    EXPECT_EQ(net.packetPool().liveCount(), 0u);
    for (int n = 0; n < 4; ++n) {
        EXPECT_EQ(net.router(n).totalOutputCredits(),
                  fresh.router(n).totalOutputCredits())
            << "credits failed to round-trip at router " << n;
    }
}

} // namespace
} // namespace footprint
