/**
 * @file
 * Unit tests for the fixed-capacity ring buffer that backs every FIFO
 * on the simulator's per-cycle hot path: FIFO order across
 * wrap-around, capacity rounding, both overflow policies, and the
 * forward iterator used by audits and forensic dumps.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "expect_panic.hpp"
#include "sim/ring_buffer.hpp"

namespace footprint {
namespace {

TEST(RingBuffer, DefaultConstructedHasZeroCapacity)
{
    RingBuffer<int> rb;
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 0u);
    // Pushing before reset() is a bug, not a silent allocation.
    EXPECT_PANIC(rb.push_back(1), "overflow");
}

TEST(RingBuffer, CapacityRoundsUpToPowerOfTwo)
{
    RingBuffer<int> rb(3);
    EXPECT_EQ(rb.capacity(), 4u);
    rb.reset(5);
    EXPECT_EQ(rb.capacity(), 8u);
    rb.reset(8);
    EXPECT_EQ(rb.capacity(), 8u);
    rb.reset(1);
    EXPECT_EQ(rb.capacity(), 1u);
}

TEST(RingBuffer, FifoOrderAcrossWrapAround)
{
    RingBuffer<int> rb(4);
    for (int i = 0; i < 4; ++i)
        rb.push_back(i);
    EXPECT_TRUE(rb.full());
    // Churn several times around the storage; order must hold even
    // though head/tail wrap repeatedly.
    int next_in = 4;
    int next_out = 0;
    for (int step = 0; step < 20; ++step) {
        EXPECT_EQ(rb.front(), next_out);
        rb.pop_front();
        ++next_out;
        rb.push_back(next_in++);
        EXPECT_EQ(rb.back(), next_in - 1);
        EXPECT_EQ(rb.size(), 4u);
    }
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(rb.front(), next_out + i);
        rb.pop_front();
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, IndexAndIteratorWalkFrontToBack)
{
    RingBuffer<std::string> rb(4);
    rb.push_back("a");
    rb.push_back("b");
    rb.push_back("c");
    rb.pop_front();
    rb.push_back("d"); // storage order now wraps: [d][b][c][.]
    rb.push_back("e");
    EXPECT_EQ(rb[0], "b");
    EXPECT_EQ(rb[1], "c");
    EXPECT_EQ(rb[2], "d");
    EXPECT_EQ(rb[3], "e");
    std::vector<std::string> seen;
    for (const std::string& s : rb)
        seen.push_back(s);
    EXPECT_EQ(seen, (std::vector<std::string>{"b", "c", "d", "e"}));
}

TEST(RingBuffer, FixedPolicyPanicsOnOverflow)
{
    RingBuffer<int> rb(2);
    rb.push_back(1);
    rb.push_back(2);
    EXPECT_TRUE(rb.full());
    EXPECT_PANIC(rb.push_back(3), "overflow");
    // The failed push must not have corrupted the contents.
    EXPECT_EQ(rb.size(), 2u);
    EXPECT_EQ(rb.front(), 1);
    EXPECT_EQ(rb.back(), 2);
}

TEST(RingBuffer, GrowablePolicyDoublesAndPreservesOrder)
{
    RingBuffer<int> rb(2, /*growable=*/true);
    rb.push_back(0);
    rb.push_back(1);
    rb.pop_front();
    rb.push_back(2); // wrapped before the growth below
    for (int i = 3; i < 40; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.size(), 39u);
    EXPECT_GE(rb.capacity(), 39u);
    for (int i = 0; i < 39; ++i) {
        EXPECT_EQ(rb.front(), i + 1);
        rb.pop_front();
    }
}

TEST(RingBuffer, AccessorsOnEmptyPanic)
{
    RingBuffer<int> rb(2);
    EXPECT_PANIC(rb.pop_front(), "pop_front on empty");
    EXPECT_PANIC(rb.front(), "front on empty");
    EXPECT_PANIC(rb.back(), "back on empty");
}

TEST(RingBuffer, ClearKeepsCapacity)
{
    RingBuffer<int> rb(4);
    rb.push_back(1);
    rb.push_back(2);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), 4u);
    rb.push_back(9);
    EXPECT_EQ(rb.front(), 9);
}

} // namespace
} // namespace footprint
