/**
 * @file
 * Unit tests for DBAR-style fully adaptive routing.
 */

#include <gtest/gtest.h>

#include "fake_router_view.hpp"
#include "routing/dbar.hpp"

namespace footprint {
namespace {

constexpr int kVcs = 10;

/** Extract the single non-escape request port. */
int
adaptivePort(const OutputSet& out)
{
    for (const auto& r : out.requests()) {
        if (r.priority != Priority::Lowest)
            return r.port;
    }
    return -1;
}

TEST(Dbar, RequestsAdaptiveVcsPlusEscape)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    DbarRouting dbar;
    OutputSet out;
    dbar.route(view, headFlit(0, 9), out);
    ASSERT_EQ(out.requests().size(), 2u);

    bool saw_adaptive = false;
    bool saw_escape = false;
    for (const auto& r : out.requests()) {
        if (r.priority == Priority::Lowest) {
            saw_escape = true;
            EXPECT_EQ(r.vcs, VcMask{1});
            // Escape follows DOR: X first -> East.
            EXPECT_EQ(r.port, portOf(Dir::East));
        } else {
            saw_adaptive = true;
            // VC 0 is reserved for escape.
            EXPECT_EQ(r.vcs, maskOfFirst(kVcs) & ~VcMask{1});
            EXPECT_EQ(r.priority, Priority::Low);
        }
    }
    EXPECT_TRUE(saw_adaptive);
    EXPECT_TRUE(saw_escape);
}

TEST(Dbar, SingleMinimalDirectionIsForced)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    DbarRouting dbar;
    OutputSet out;
    dbar.route(view, headFlit(0, 7), out); // same row, east only
    EXPECT_EQ(adaptivePort(out), portOf(Dir::East));
}

TEST(Dbar, ThresholdPrefersUncongestedPort)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    // East below threshold (5), North above.
    for (int v = 0; v < 7; ++v)
        view.occupy(portOf(Dir::East), v, 50);
    DbarRouting dbar;
    OutputSet out;
    dbar.route(view, headFlit(0, 9), out);
    EXPECT_EQ(adaptivePort(out), portOf(Dir::North));
}

TEST(Dbar, RemoteStatusBreaksLocalTie)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    // Local idle counts equal; remote differs. Destination 18 = (2,2):
    // continuation after East (to node 1) is East again; after North
    // (to node 8) is North again.
    view.setRemoteIdle(portOf(Dir::East), portOf(Dir::East), 1);
    view.setRemoteIdle(portOf(Dir::North), portOf(Dir::North), 9);
    DbarRouting dbar;
    OutputSet out;
    dbar.route(view, headFlit(0, 18), out);
    EXPECT_EQ(adaptivePort(out), portOf(Dir::North));
}

TEST(Dbar, RemoteDisabledIgnoresStatus)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    view.setRemoteIdle(portOf(Dir::East), portOf(Dir::East), 0);
    view.setRemoteIdle(portOf(Dir::North), portOf(Dir::North), 9);
    // Make east locally better so the local-only choice is East.
    view.occupy(portOf(Dir::North), 1, 50);
    DbarRouting dbar(0, /*use_remote=*/false);
    OutputSet out;
    dbar.route(view, headFlit(0, 18), out);
    EXPECT_EQ(adaptivePort(out), portOf(Dir::East));
}

TEST(Dbar, EjectionRequestsLocalPort)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 9, kVcs);
    DbarRouting dbar;
    OutputSet out;
    dbar.route(view, headFlit(0, 9), out);
    for (const auto& r : out.requests())
        EXPECT_EQ(r.port, portOf(Dir::Local));
}

TEST(Dbar, EscapeFollowsDorEvenWhenAdaptiveDiffers)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    // Congest East so the adaptive choice is North, while the DOR
    // escape for (0 -> 9) remains East.
    for (int v = 0; v < kVcs; ++v)
        view.occupy(portOf(Dir::East), v, 50);
    DbarRouting dbar;
    OutputSet out;
    dbar.route(view, headFlit(0, 9), out);
    EXPECT_EQ(adaptivePort(out), portOf(Dir::North));
    bool escape_east = false;
    for (const auto& r : out.requests()) {
        if (r.priority == Priority::Lowest)
            escape_east = r.port == portOf(Dir::East);
    }
    EXPECT_TRUE(escape_east);
}

TEST(Dbar, Properties)
{
    DbarRouting dbar;
    EXPECT_EQ(dbar.name(), "dbar");
    EXPECT_TRUE(dbar.atomicVcAlloc());
    EXPECT_EQ(dbar.numEscapeVcs(), 1);
}

} // namespace
} // namespace footprint
