/**
 * @file
 * Unit tests for the logging/error helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/log.hpp"

namespace footprint {
namespace {

TEST(LogDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "fatal: bad config");
}

TEST(LogDeath, PanicAborts)
{
    EXPECT_DEATH(FP_PANIC("broken invariant"),
                 "panic: broken invariant");
}

TEST(LogDeath, AssertMacroFiresOnFalse)
{
    const int x = 3;
    EXPECT_DEATH(FP_ASSERT(x == 4, "x was " << x),
                 "assertion failed: x == 4: x was 3");
}

TEST(Log, AssertMacroPassesOnTrue)
{
    const int x = 4;
    FP_ASSERT(x == 4, "never printed");
    SUCCEED();
}

TEST(Log, WarnAndInformRespectQuiet)
{
    // Capture stderr around quiet/verbose toggles.
    testing::internal::CaptureStderr();
    setQuiet(true);
    warn("hidden warning");
    inform("hidden info");
    setQuiet(false);
    warn("visible warning");
    inform("visible info");
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("hidden"), std::string::npos);
    EXPECT_NE(err.find("warn: visible warning"), std::string::npos);
    EXPECT_NE(err.find("info: visible info"), std::string::npos);
}

TEST(Log, SetLogSinkCapturesStatusMessages)
{
    std::ostringstream captured;
    setQuiet(false);
    setLogSink(&captured);
    warn("redirected warning");
    inform("redirected info");
    setLogSink(nullptr);
    EXPECT_NE(captured.str().find("warn: redirected warning"),
              std::string::npos);
    EXPECT_NE(captured.str().find("info: redirected info"),
              std::string::npos);
}

TEST(Log, SetLogSinkNullRestoresStderr)
{
    std::ostringstream captured;
    setQuiet(false);
    setLogSink(&captured);
    setLogSink(nullptr);
    testing::internal::CaptureStderr();
    warn("back on stderr");
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: back on stderr"), std::string::npos);
    EXPECT_EQ(captured.str().find("back on stderr"),
              std::string::npos);
}

TEST(Log, SinkStillRespectsQuiet)
{
    std::ostringstream captured;
    setLogSink(&captured);
    setQuiet(true);
    warn("muted");
    inform("muted too");
    setQuiet(false);
    setLogSink(nullptr);
    EXPECT_TRUE(captured.str().empty());
}

} // namespace
} // namespace footprint
