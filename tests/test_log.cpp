/**
 * @file
 * Unit tests for the logging/error helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "expect_panic.hpp"
#include "sim/log.hpp"

namespace footprint {
namespace {

TEST(LogDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "fatal: bad config");
}

TEST(LogDeath, PanicThrows)
{
    EXPECT_PANIC(FP_PANIC("broken invariant"), "broken invariant");
}

TEST(LogDeath, AssertMacroFiresOnFalse)
{
    const int x = 3;
    EXPECT_PANIC(FP_ASSERT(x == 4, "x was " << x),
                 "assertion failed: x == 4: x was 3");
}

TEST(Log, AssertMacroPassesOnTrue)
{
    const int x = 4;
    FP_ASSERT(x == 4, "never printed");
    SUCCEED();
}

TEST(Log, PanicThrowsCatchableInvariantError)
{
    // Supervisory layers (auditor, dump-on-abort) catch the violation
    // to attach forensics; the formatted message must survive.
    try {
        FP_PANIC("wedged allocator");
        FAIL() << "panic returned";
    } catch (const InvariantError& e) {
        EXPECT_STREQ(e.what(), "wedged allocator");
        EXPECT_NE(std::string(e.file()).find("test_log"),
                  std::string::npos);
        EXPECT_GT(e.line(), 0);
    }
}

TEST(Log, AssertCarriesFormattedMessageInException)
{
    const int credits = -1;
    try {
        FP_ASSERT(credits >= 0, "credits " << credits << " at vc 3");
        FAIL() << "assert passed";
    } catch (const InvariantError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("credits >= 0"), std::string::npos);
        EXPECT_NE(what.find("credits -1 at vc 3"), std::string::npos);
    }
}

TEST(Log, WarnAndInformRespectQuiet)
{
    // Capture stderr around quiet/verbose toggles.
    testing::internal::CaptureStderr();
    setQuiet(true);
    warn("hidden warning");
    inform("hidden info");
    setQuiet(false);
    warn("visible warning");
    inform("visible info");
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("hidden"), std::string::npos);
    EXPECT_NE(err.find("warn: visible warning"), std::string::npos);
    EXPECT_NE(err.find("info: visible info"), std::string::npos);
}

TEST(Log, SetLogSinkCapturesStatusMessages)
{
    std::ostringstream captured;
    setQuiet(false);
    setLogSink(&captured);
    warn("redirected warning");
    inform("redirected info");
    setLogSink(nullptr);
    EXPECT_NE(captured.str().find("warn: redirected warning"),
              std::string::npos);
    EXPECT_NE(captured.str().find("info: redirected info"),
              std::string::npos);
}

TEST(Log, SetLogSinkNullRestoresStderr)
{
    std::ostringstream captured;
    setQuiet(false);
    setLogSink(&captured);
    setLogSink(nullptr);
    testing::internal::CaptureStderr();
    warn("back on stderr");
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: back on stderr"), std::string::npos);
    EXPECT_EQ(captured.str().find("back on stderr"),
              std::string::npos);
}

TEST(Log, SinkStillRespectsQuiet)
{
    std::ostringstream captured;
    setLogSink(&captured);
    setQuiet(true);
    warn("muted");
    inform("muted too");
    setQuiet(false);
    setLogSink(nullptr);
    EXPECT_TRUE(captured.str().empty());
}

} // namespace
} // namespace footprint
