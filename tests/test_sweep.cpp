/**
 * @file
 * Tests for the experiment drivers (latency-throughput curves and
 * saturation search) on a small, fast configuration.
 */

#include <gtest/gtest.h>

#include "exec/exec_context.hpp"
#include "network/sweep.hpp"
#include "sim/config.hpp"

namespace footprint {
namespace {

SimConfig
tinyConfig()
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    cfg.set("routing", "dor");
    cfg.set("traffic", "uniform");
    cfg.setInt("warmup_cycles", 200);
    cfg.setInt("measure_cycles", 600);
    cfg.setInt("drain_cycles", 3000);
    return cfg;
}

TEST(Linspace, EndpointsAndSpacing)
{
    const auto v = linspace(0.1, 0.5, 5);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v.front(), 0.1);
    EXPECT_DOUBLE_EQ(v.back(), 0.5);
    EXPECT_NEAR(v[1] - v[0], 0.1, 1e-12);
    EXPECT_NEAR(v[3] - v[2], 0.1, 1e-12);
}

TEST(ZeroLoadLatency, IsSmallAndPositive)
{
    const double l0 = zeroLoadLatency(tinyConfig());
    EXPECT_GT(l0, 3.0);
    EXPECT_LT(l0, 15.0);
}

TEST(LatencyThroughputCurve, LatencyIncreasesWithLoad)
{
    const auto points =
        latencyThroughputCurve(tinyConfig(), {0.05, 0.2, 0.35});
    ASSERT_EQ(points.size(), 3u);
    EXPECT_LT(points[0].latency, points[2].latency);
    for (const auto& p : points) {
        EXPECT_GT(p.latency, 0.0);
        EXPECT_NEAR(p.accepted, p.offered, 0.05);
        EXPECT_FALSE(p.saturated) << "offered " << p.offered;
    }
}

TEST(LatencyThroughputCurve, OverloadedPointIsMarkedSaturated)
{
    SimConfig cfg = tinyConfig();
    cfg.set("traffic", "transpose");
    cfg.setInt("drain_cycles", 1200);
    const auto points = latencyThroughputCurve(cfg, {0.9});
    ASSERT_EQ(points.size(), 1u);
    EXPECT_TRUE(points[0].saturated);
    // Accepted throughput saturates below offered.
    EXPECT_LT(points[0].accepted, 0.6);
}

TEST(SaturationThroughput, LiesInPlausibleRange)
{
    const double sat = saturationThroughput(tinyConfig(), 3.0, 0.05);
    // 4x4 uniform with DOR: saturation well above 0.2 and below 1.0.
    EXPECT_GT(sat, 0.2);
    EXPECT_LT(sat, 1.0);
}

TEST(SaturationThroughput, AdversePatternSaturatesEarlier)
{
    SimConfig uniform = tinyConfig();
    SimConfig transpose = tinyConfig();
    transpose.set("traffic", "transpose");
    transpose.setInt("drain_cycles", 1500);
    const double s_uniform = saturationThroughput(uniform, 3.0, 0.05);
    const double s_transpose =
        saturationThroughput(transpose, 3.0, 0.05);
    EXPECT_LT(s_transpose, s_uniform);
}

TEST(LatencyThroughputCurve, ParallelMatchesSequentialExactly)
{
    const std::vector<double> rates{0.05, 0.2, 0.35};
    const auto seq = latencyThroughputCurve(tinyConfig(), rates);
    ExecContext ctx(4);
    const auto par = latencyThroughputCurve(tinyConfig(), rates, ctx);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_DOUBLE_EQ(par[i].offered, seq[i].offered);
        EXPECT_DOUBLE_EQ(par[i].accepted, seq[i].accepted);
        EXPECT_DOUBLE_EQ(par[i].latency, seq[i].latency);
        EXPECT_EQ(par[i].saturated, seq[i].saturated);
    }
}

TEST(LatencyThroughputCurve, ParallelReplaysSaturationCarryForward)
{
    // Push the ladder deep into saturation so the sequential path
    // exercises its "stop simulating after two saturated points"
    // shortcut; the parallel path must reproduce the carried-forward
    // points bit for bit.
    SimConfig cfg = tinyConfig();
    cfg.set("traffic", "transpose");
    cfg.setInt("drain_cycles", 1200);
    const std::vector<double> rates{0.1, 0.6, 0.7, 0.8, 0.9};
    const auto seq = latencyThroughputCurve(cfg, rates);
    ExecContext ctx(4);
    const auto par = latencyThroughputCurve(cfg, rates, ctx);
    ASSERT_EQ(par.size(), seq.size());
    bool saw_saturated = false;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        saw_saturated = saw_saturated || seq[i].saturated;
        EXPECT_DOUBLE_EQ(par[i].accepted, seq[i].accepted) << i;
        EXPECT_DOUBLE_EQ(par[i].latency, seq[i].latency) << i;
        EXPECT_EQ(par[i].saturated, seq[i].saturated) << i;
    }
    EXPECT_TRUE(saw_saturated)
        << "test should cover the saturated regime";
}

TEST(SaturationThroughput, BracketSearchIsJobsInvariant)
{
    SimConfig cfg = tinyConfig();
    cfg.setInt("drain_cycles", 1500);
    ExecContext one(1);
    ExecContext four(4);
    const double s1 = saturationThroughput(cfg, one, 3.0, 0.02, 3);
    const double s4 = saturationThroughput(cfg, four, 3.0, 0.02, 3);
    EXPECT_DOUBLE_EQ(s1, s4);
    // And the bracket result lands near the legacy bisection answer.
    const double legacy = saturationThroughput(cfg, 3.0, 0.02);
    EXPECT_NEAR(s1, legacy, 0.1);
}

TEST(SaturationThroughput, BracketOneMatchesLegacyBisection)
{
    SimConfig cfg = tinyConfig();
    cfg.setInt("drain_cycles", 1500);
    ExecContext ctx(2);
    const double bracketed =
        saturationThroughput(cfg, ctx, 3.0, 0.02, 1);
    const double legacy = saturationThroughput(cfg, 3.0, 0.02);
    EXPECT_DOUBLE_EQ(bracketed, legacy);
}

TEST(FormatCurve, ContainsLabelAndNumbers)
{
    std::vector<CurvePoint> pts{{0.1, 0.1, 12.0, false},
                                {0.5, 0.4, 900.0, true}};
    const std::string s = formatCurve("dor/uniform", pts);
    EXPECT_NE(s.find("dor/uniform"), std::string::npos);
    EXPECT_NE(s.find("offered=0.100"), std::string::npos);
    EXPECT_NE(s.find("[saturated]"), std::string::npos);
}

} // namespace
} // namespace footprint
