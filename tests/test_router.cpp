/**
 * @file
 * Router-level microarchitecture tests: a single Router instance with
 * hand-wired channels, checking the credit protocol, wormhole flit
 * ordering, VC allocation semantics (priorities, atomic reallocation,
 * footprint owner tracking), switch-allocation speedup, and escape-VC
 * usage — behaviours that network-level tests can only observe
 * indirectly.
 */

#include <gtest/gtest.h>

#include <memory>

#include "router/router.hpp"
#include "routing/dor.hpp"
#include "routing/footprint.hpp"
#include "sim/config.hpp"

namespace footprint {
namespace {

/**
 * Harness: one router at node 5 of a 4x4 mesh (an interior node with
 * all four mesh neighbors), with every port wired to channels we can
 * drive and observe directly.
 */
class RouterHarness
{
  public:
    RouterHarness(const RoutingAlgorithm* routing, int num_vcs = 4,
                  int buf_size = 4, int speedup = 2)
        : topo(Topology::mesh(4, 4))
    {
        RouterParams params;
        params.numVcs = num_vcs;
        params.vcBufSize = buf_size;
        params.internalSpeedup = speedup;
        router = std::make_unique<Router>(topo, 5, params, routing,
                                          1, nullptr);
        for (int p = 0; p < kNumPorts; ++p) {
            in[p] = std::make_unique<FlitChannel>(1);
            inCredit[p] = std::make_unique<CreditChannel>(1);
            out[p] = std::make_unique<FlitChannel>(1);
            outCredit[p] = std::make_unique<CreditChannel>(1);
            router->connectInput(p, in[p].get(), inCredit[p].get());
            router->connectOutput(p, out[p].get(), outCredit[p].get());
        }
    }

    /** Send a flit into input @p port on @p vc at the current cycle. */
    void
    inject(int port, int vc, const Flit& f)
    {
        Flit copy = f;
        copy.vc = vc;
        in[port]->send(copy, cycle - 1); // arrives this cycle
    }

    /** Advance one router cycle; @return flits emitted per port. */
    std::array<std::vector<Flit>, kNumPorts>
    step()
    {
        router->receivePhase(cycle);
        router->computePhase(cycle);
        router->transmitPhase(cycle);
        ++cycle;
        std::array<std::vector<Flit>, kNumPorts> emitted;
        for (int p = 0; p < kNumPorts; ++p) {
            while (auto f = out[p]->receive(cycle))
                emitted[static_cast<std::size_t>(p)].push_back(*f);
        }
        return emitted;
    }

    /** Return a credit to output (port, vc), visible next cycle. */
    void
    returnCredit(int port, int vc)
    {
        outCredit[port]->send(Credit{vc}, cycle - 1);
    }

    /** Credits the router sent upstream on input @p port this cycle. */
    std::vector<Credit>
    drainUpstreamCredits(int port)
    {
        std::vector<Credit> credits;
        while (auto c = inCredit[port]->receive(cycle))
            credits.push_back(*c);
        return credits;
    }

    Topology topo;
    std::unique_ptr<Router> router;
    std::unique_ptr<FlitChannel> in[kNumPorts];
    std::unique_ptr<CreditChannel> inCredit[kNumPorts];
    std::unique_ptr<FlitChannel> out[kNumPorts];
    std::unique_ptr<CreditChannel> outCredit[kNumPorts];
    std::int64_t cycle = 0;
};

Flit
flitTo(int dest, std::uint64_t pkt = 1, bool head = true,
       bool tail = true, int src = 5)
{
    Flit f;
    f.packetId = pkt;
    f.src = src;
    f.dest = dest;
    f.head = head;
    f.tail = tail;
    return f;
}

TEST(RouterMicro, ForwardsFlitTowardDestination)
{
    DorRouting dor;
    RouterHarness h(&dor);
    // Node 5 is (1,1); dest 7 is (3,1): East.
    h.inject(portOf(Dir::West), 0, flitTo(7));
    bool seen = false;
    for (int i = 0; i < 5 && !seen; ++i) {
        auto emitted = h.step();
        if (!emitted[portOf(Dir::East)].empty()) {
            seen = true;
            EXPECT_EQ(emitted[portOf(Dir::East)][0].dest, 7);
        }
    }
    EXPECT_TRUE(seen);
}

TEST(RouterMicro, EjectsAtOwnNode)
{
    DorRouting dor;
    RouterHarness h(&dor);
    h.inject(portOf(Dir::West), 1, flitTo(5));
    bool seen = false;
    for (int i = 0; i < 5 && !seen; ++i) {
        auto emitted = h.step();
        seen = !emitted[portOf(Dir::Local)].empty();
    }
    EXPECT_TRUE(seen);
}

TEST(RouterMicro, ReturnsCreditWhenFlitLeavesBuffer)
{
    DorRouting dor;
    RouterHarness h(&dor);
    h.inject(portOf(Dir::West), 2, flitTo(7));
    int credits = 0;
    for (int i = 0; i < 5 && credits == 0; ++i) {
        h.step();
        for (const Credit& c :
             h.drainUpstreamCredits(portOf(Dir::West))) {
            EXPECT_EQ(c.vc, 2);
            ++credits;
        }
    }
    EXPECT_EQ(credits, 1);
}

TEST(RouterMicro, StallsWithoutDownstreamCredits)
{
    DorRouting dor;
    RouterHarness h(&dor, 4, 2); // 2-flit buffers
    // Keep the west input backlogged (respecting its buffer space, as
    // a credit-honouring upstream would) and never return east
    // credits: at most 4 VCs x 2 credits = 8 flits can ever leave.
    std::uint64_t id = 0;
    int sent = 12;
    std::array<int, 4> consumed{};
    for (int i = 0; i < 30; ++i) {
        for (int v = 0; v < 4 && sent > 0; ++v) {
            if (h.router->inputOccupancy(portOf(Dir::West), v) < 2) {
                h.inject(portOf(Dir::West), v, flitTo(7, ++id));
                --sent;
                break; // one flit per cycle on the link
            }
        }
        const auto out = h.step();
        for (const Flit& f : out[portOf(Dir::East)])
            ++consumed[static_cast<std::size_t>(f.vc)];
    }
    // Stalled: all east credits consumed, nothing more comes out.
    auto emitted = h.step();
    EXPECT_TRUE(emitted[portOf(Dir::East)].empty());
    EXPECT_GT(h.router->totalBufferedFlits(), 0);
    // Returning the consumed credits un-stalls it.
    for (int v = 0; v < 4; ++v) {
        for (int c = 0; c < consumed[static_cast<std::size_t>(v)]; ++c)
            h.returnCredit(portOf(Dir::East), v);
    }
    bool resumed = false;
    for (int i = 0; i < 5 && !resumed; ++i)
        resumed = !h.step()[portOf(Dir::East)].empty();
    EXPECT_TRUE(resumed);
}

TEST(RouterMicro, WormholeKeepsPacketOnOneVcInOrder)
{
    DorRouting dor;
    RouterHarness h(&dor);
    // 4-flit packet arriving over 4 cycles.
    for (int i = 0; i < 4; ++i) {
        h.inject(portOf(Dir::West), 1,
                 flitTo(7, 1, i == 0, i == 3));
        h.step();
    }
    std::vector<Flit> got;
    for (int i = 0; i < 8; ++i) {
        auto emitted = h.step();
        for (const Flit& f : emitted[portOf(Dir::East)])
            got.push_back(f);
    }
    // Drain anything emitted during injection too.
    // (flits may have been forwarded while later ones arrived)
    ASSERT_LE(got.size(), 4u);
    int vc = -1;
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (vc < 0)
            vc = got[i].vc;
        EXPECT_EQ(got[i].vc, vc) << "packet switched output VC";
    }
}

TEST(RouterMicro, SpeedupMovesTwoFlitsPerCycleThroughCrossbar)
{
    DorRouting dor;
    RouterHarness h(&dor, 4, 4, /*speedup=*/2);
    // Two flits to different outputs, from different input ports,
    // injected the same cycle: with speedup 2 both traverse at once,
    // but each output link still emits one flit per cycle.
    h.inject(portOf(Dir::West), 0, flitTo(7, 1));  // -> East
    h.inject(portOf(Dir::East), 0, flitTo(4, 2));  // -> West
    auto e1 = h.step();
    auto e2 = h.step();
    const std::size_t first =
        e1[portOf(Dir::East)].size() + e1[portOf(Dir::West)].size();
    const std::size_t second =
        e2[portOf(Dir::East)].size() + e2[portOf(Dir::West)].size();
    EXPECT_EQ(first + second, 2u);
}

TEST(RouterMicro, SpeedupAllowsTwoFlitsFromOneInputPort)
{
    DorRouting dor;
    RouterHarness h(&dor, 4, 4, 2);
    // Two packets on different VCs of the same input port, to
    // different outputs.
    h.inject(portOf(Dir::West), 0, flitTo(7, 1));   // East
    h.inject(portOf(Dir::West), 1, flitTo(13, 2));  // North (1,3)
    // With speedup 2 the same input port sends both flits in the very
    // first cycle (one per switch-allocation pass).
    auto e = h.step();
    const int total = static_cast<int>(e[portOf(Dir::East)].size()
                                       + e[portOf(Dir::North)].size());
    EXPECT_EQ(total, 2);
}

TEST(RouterMicro, FootprintOwnerIsTrackedOnOutputVc)
{
    FootprintRouting fp;
    RouterHarness h(&fp);
    h.inject(portOf(Dir::West), 1, flitTo(7, 1));
    h.step();
    h.step();
    // Some east output VC must now be owned by destination 7.
    bool found = false;
    for (int v = 0; v < 4; ++v) {
        if (h.router->outVcOwner(portOf(Dir::East), v) == 7)
            found = true;
    }
    EXPECT_TRUE(found);
    EXPECT_NE(popcount(h.router->footprintVcMask(portOf(Dir::East), 7)),
              0);
    EXPECT_EQ(h.router->footprintVcMask(portOf(Dir::East), 9), 0u);
}

TEST(RouterMicro, AtomicVcNotReusedUntilCreditReturns)
{
    FootprintRouting fp;
    RouterHarness h(&fp, 4, 4);
    // First packet to dest 7 leaves on some east VC.
    h.inject(portOf(Dir::West), 0, flitTo(7, 1));
    h.step();
    h.step();
    VcMask occupied = h.router->occupiedVcMask(portOf(Dir::East));
    EXPECT_NE(occupied, 0u);
    // Without credit return the VC stays occupied (atomic policy).
    for (int i = 0; i < 5; ++i)
        h.step();
    EXPECT_EQ(h.router->occupiedVcMask(portOf(Dir::East)), occupied);
    // Credit return frees it.
    for (int v = 0; v < 4; ++v) {
        if ((occupied >> v) & 1)
            h.returnCredit(portOf(Dir::East), v);
    }
    h.step();
    EXPECT_EQ(h.router->occupiedVcMask(portOf(Dir::East)), 0u);
}

TEST(RouterMicro, ConvergenceCounterSeesMultipleInputVcs)
{
    FootprintRouting fp;
    RouterHarness h(&fp, 4, 4);
    // Saturate east so flits stay buffered: no credits ever returned
    // after the initial 4 per VC are consumed... simpler: inject two
    // heads to the same dest on different input VCs and check the
    // counter before they drain.
    h.inject(portOf(Dir::West), 0, flitTo(7, 1, true, true, 4));
    h.inject(portOf(Dir::South), 0, flitTo(7, 2, true, true, 1));
    h.router->receivePhase(h.cycle);
    h.router->computePhase(h.cycle);
    EXPECT_EQ(h.router->convergingInputs(7), 2);
    EXPECT_EQ(h.router->convergingInputs(9), 0);
}

TEST(RouterMicro, EscapeVcZeroIsUsedWhenAdaptiveVcsAreBlocked)
{
    // 2 VCs: VC 0 escape, VC 1 the only adaptive VC. Occupy VC 1 with
    // a packet to 7 (never return its credit), then a packet to a
    // different destination must fall through to the escape VC.
    FootprintRouting fp;
    RouterHarness h(&fp, 2, 4);
    h.inject(portOf(Dir::West), 0, flitTo(7, 1));
    for (int i = 0; i < 4; ++i)
        h.step();
    h.inject(portOf(Dir::West), 1, flitTo(6, 2));
    bool used_escape = false;
    for (int i = 0; i < 10 && !used_escape; ++i) {
        auto e = h.step();
        for (const Flit& f : e[portOf(Dir::East)])
            used_escape = used_escape || f.vc == 0;
    }
    EXPECT_TRUE(used_escape);
}

TEST(RouterMicro, BlockingCountersIncrementWhenNothingAllocatable)
{
    DorRouting dor;
    RouterHarness h(&dor, 2, 2);
    // Fill both east VCs, then a third packet must block.
    h.inject(portOf(Dir::West), 0, flitTo(7, 1));
    h.inject(portOf(Dir::West), 1, flitTo(7, 2));
    for (int i = 0; i < 4; ++i)
        h.step();
    h.inject(portOf(Dir::North), 0, flitTo(7, 3));
    for (int i = 0; i < 4; ++i)
        h.step();
    EXPECT_GT(h.router->counters().vcAllocFail, 0u);
}

TEST(RouterMicro, InputOccupancyAndFrontDestAccessors)
{
    DorRouting dor;
    RouterHarness h(&dor, 4, 4);
    h.inject(portOf(Dir::West), 2, flitTo(7, 1));
    h.router->receivePhase(h.cycle);
    EXPECT_EQ(h.router->inputOccupancy(portOf(Dir::West), 2), 1);
    EXPECT_EQ(h.router->inputFrontDest(portOf(Dir::West), 2), 7);
    EXPECT_TRUE(h.router->inputHoldsDest(portOf(Dir::West), 2, 7));
    EXPECT_FALSE(h.router->inputHoldsDest(portOf(Dir::West), 2, 9));
    EXPECT_EQ(h.router->inputFrontDest(portOf(Dir::West), 0), -1);
}

} // namespace
} // namespace footprint
