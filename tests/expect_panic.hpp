/**
 * @file
 * Test helper for violated-invariant expectations. FP_PANIC/FP_ASSERT
 * throw a catchable InvariantError (so supervisory layers can write
 * forensic dumps before terminating); EXPECT_PANIC asserts that a
 * statement throws it with the expected message fragment.
 */

#ifndef FOOTPRINT_TESTS_EXPECT_PANIC_HPP
#define FOOTPRINT_TESTS_EXPECT_PANIC_HPP

#include <string>

#include <gtest/gtest.h>

#include "sim/log.hpp"

#define EXPECT_PANIC(stmt, substr)                                      \
    do {                                                                \
        try {                                                           \
            stmt;                                                       \
            ADD_FAILURE() << "expected InvariantError from " #stmt;     \
        } catch (const ::footprint::InvariantError& e_) {               \
            EXPECT_NE(std::string(e_.what()).find(substr),              \
                      std::string::npos)                                \
                << "panic message \"" << e_.what()                      \
                << "\" lacks \"" << (substr) << '"';                    \
        }                                                               \
    } while (0)

#endif // FOOTPRINT_TESTS_EXPECT_PANIC_HPP
