/**
 * @file
 * Integration tests at the Network level: packet delivery, latency and
 * hop bounds at zero load, flit conservation, credit restoration, and
 * multi-packet wormhole integrity — parameterized over every routing
 * algorithm.
 */

#include <gtest/gtest.h>

#include <map>

#include "network/network.hpp"
#include "sim/config.hpp"

namespace footprint {
namespace {

SimConfig
smallConfig(const std::string& routing)
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    cfg.set("routing", routing);
    return cfg;
}

Packet
packet(std::uint64_t id, int src, int dest, int size,
       std::int64_t cycle)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dest = dest;
    p.size = size;
    p.createTime = cycle;
    p.measured = true;
    return p;
}

/** Run until @p count packets eject anywhere, or cycle limit. */
std::vector<EjectedPacket>
runUntilEjected(Network& net, std::size_t count, std::int64_t limit)
{
    std::vector<EjectedPacket> done;
    for (std::int64_t cycle = 0; cycle < limit; ++cycle) {
        net.step(cycle);
        for (int n = 0; n < net.mesh().numNodes(); ++n) {
            for (const auto& p : net.endpoint(n).drainEjected())
                done.push_back(p);
        }
        if (done.size() >= count)
            break;
    }
    return done;
}

class NetworkAlgoTest : public testing::TestWithParam<std::string>
{};

TEST_P(NetworkAlgoTest, SinglePacketIsDelivered)
{
    SimConfig cfg = smallConfig(GetParam());
    Network net(cfg);
    net.endpoint(0).enqueue(packet(1, 0, 15, 1, 0));
    const auto done = runUntilEjected(net, 1, 200);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].packetId, 1u);
    EXPECT_EQ(done[0].src, 0);
    EXPECT_EQ(done[0].dest, 15);
}

TEST_P(NetworkAlgoTest, ZeroLoadHopsAreMinimal)
{
    SimConfig cfg = smallConfig(GetParam());
    Network net(cfg);
    net.endpoint(1).enqueue(packet(1, 1, 14, 1, 0));
    const auto done = runUntilEjected(net, 1, 200);
    ASSERT_EQ(done.size(), 1u);
    // Hops counts router traversals: distance + 1 (the source router).
    EXPECT_EQ(done[0].hops, net.mesh().hopDistance(1, 14) + 1);
}

TEST_P(NetworkAlgoTest, ZeroLoadLatencyIsBounded)
{
    SimConfig cfg = smallConfig(GetParam());
    Network net(cfg);
    net.endpoint(0).enqueue(packet(1, 0, 5, 1, 0));
    const auto done = runUntilEjected(net, 1, 200);
    ASSERT_EQ(done.size(), 1u);
    // 2 mesh hops: a handful of cycles through injection, three
    // routers, and ejection; generous upper bound.
    EXPECT_GE(done[0].latency(), 3);
    EXPECT_LE(done[0].latency(), 20);
}

TEST_P(NetworkAlgoTest, MultiFlitPacketArrivesIntact)
{
    SimConfig cfg = smallConfig(GetParam());
    Network net(cfg);
    net.endpoint(0).enqueue(packet(1, 0, 15, 6, 0));
    const auto done = runUntilEjected(net, 1, 300);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].size, 6);
    EXPECT_EQ(net.endpoint(15).flitsEjected(), 6u);
}

TEST_P(NetworkAlgoTest, ManyPacketsAllDeliveredToRightPlaces)
{
    SimConfig cfg = smallConfig(GetParam());
    Network net(cfg);
    std::uint64_t id = 0;
    // Every node sends one packet to every other node, staggered.
    for (int s = 0; s < 16; ++s) {
        for (int d = 0; d < 16; ++d) {
            if (s != d)
                net.endpoint(s).enqueue(packet(++id, s, d, 2, 0));
        }
    }
    const auto done = runUntilEjected(net, 240, 5000);
    ASSERT_EQ(done.size(), 240u);
    std::map<int, int> per_dest;
    for (const auto& p : done) {
        EXPECT_NE(p.src, p.dest);
        ++per_dest[p.dest];
    }
    for (const auto& [dest, count] : per_dest)
        EXPECT_EQ(count, 15) << "dest " << dest;
}

TEST_P(NetworkAlgoTest, NetworkFullyDrainsAfterBurst)
{
    SimConfig cfg = smallConfig(GetParam());
    Network net(cfg);
    std::uint64_t id = 0;
    for (int s = 0; s < 16; ++s)
        net.endpoint(s).enqueue(packet(++id, s, 15 - s, 4, 0));
    // 15 -> 0 etc.; node 7 -> 8 valid; 8->7 etc. Node (15-s)==s never
    // happens on 16 nodes.
    const auto done = runUntilEjected(net, 16, 3000);
    EXPECT_EQ(done.size(), 16u);
    // Let credits propagate back, then everything must be quiescent.
    for (std::int64_t c = 3000; c < 3050; ++c)
        net.step(c);
    EXPECT_EQ(net.totalFlitsInFlight(), 0);
}

TEST_P(NetworkAlgoTest, FlitConservation)
{
    SimConfig cfg = smallConfig(GetParam());
    Network net(cfg);
    std::uint64_t id = 0;
    std::int64_t flits_in = 0;
    for (int s = 0; s < 16; ++s) {
        for (int k = 1; k <= 4; ++k) {
            const int d = (s + 3 * k) % 16;
            if (d == s)
                continue;
            net.endpoint(s).enqueue(packet(++id, s, d, k, 0));
            flits_in += k;
        }
    }
    (void)runUntilEjected(net, id, 5000);
    std::int64_t flits_out = 0;
    for (int n = 0; n < 16; ++n)
        flits_out +=
            static_cast<std::int64_t>(net.endpoint(n).flitsEjected());
    EXPECT_EQ(flits_out, flits_in);
    EXPECT_EQ(net.totalFlitsInFlight(), 0);
}

TEST_P(NetworkAlgoTest, WormholeFlitsStayContiguousPerPacket)
{
    SimConfig cfg = smallConfig(GetParam());
    Network net(cfg);
    // Two long packets from different sources to the same dest.
    net.endpoint(0).enqueue(packet(1, 0, 10, 6, 0));
    net.endpoint(3).enqueue(packet(2, 3, 10, 6, 0));
    const auto done = runUntilEjected(net, 2, 500);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(net.endpoint(10).flitsEjected(), 12u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, NetworkAlgoTest,
    testing::ValuesIn(allRoutingAlgorithmNames()),
    [](const testing::TestParamInfo<std::string>& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (c == '+')
                c = '_';
        }
        return name;
    });

TEST(Network, StatusBoardPublishesDirectly)
{
    // The board is written only in the transmit phase, after every
    // compute-phase read of the cycle, so a single direct-write array
    // gives readers exactly last cycle's values — the one-cycle status
    // delay — without double buffering.
    StatusBoard board;
    board.init(2);
    EXPECT_EQ(board.idleCount(1, 0), 0);
    board.publish(1, 0, 7);
    EXPECT_EQ(board.idleCount(1, 0), 7);
    board.publish(1, 0, 3);
    EXPECT_EQ(board.idleCount(1, 0), 3);
    // Other slots are untouched.
    EXPECT_EQ(board.idleCount(0, 0), 0);
}

TEST(Network, TooFewVcsForDuatoIsFatal)
{
    SimConfig cfg = smallConfig("footprint");
    cfg.setInt("num_vcs", 1);
    EXPECT_EXIT(Network{cfg}, testing::ExitedWithCode(1), "more VCs");
}

TEST(Network, RoutersSeeNeighborStatus)
{
    SimConfig cfg = smallConfig("dbar");
    Network net(cfg);
    // After one step, every router's published idle counts (all VCs
    // idle) must be visible to its neighbors.
    net.step(0);
    const Router& r = net.router(5);
    EXPECT_EQ(r.remoteIdleCount(portOf(Dir::East),
                                portOf(Dir::East)),
              4);
}

TEST(Network, AggregateCountersSumAndReset)
{
    SimConfig cfg = smallConfig("footprint");
    Network net(cfg);
    net.endpoint(0).enqueue(packet(1, 0, 15, 1, 0));
    for (std::int64_t c = 0; c < 50; ++c)
        net.step(c);
    EXPECT_GT(net.aggregateCounters().vcAllocSuccess, 0u);
    net.resetCounters();
    EXPECT_EQ(net.aggregateCounters().vcAllocSuccess, 0u);
}

} // namespace
} // namespace footprint
