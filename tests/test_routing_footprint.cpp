/**
 * @file
 * Unit tests for the Footprint routing algorithm: port selection by
 * (idle, footprint, random), congestion-regime VC request priorities,
 * footprint waiting, the converge gate, the VC cap, and the escape
 * channel.
 */

#include <gtest/gtest.h>

#include "fake_router_view.hpp"
#include "routing/footprint.hpp"

namespace footprint {
namespace {

constexpr int kVcs = 10;
constexpr VcMask kAdaptive = maskOfFirst(kVcs) & ~VcMask{1};

/** Find the request covering (port, vc); false if absent. */
bool
requested(const OutputSet& out, int port, int vc, Priority& pri)
{
    return out.priorityFor(port, vc, pri);
}

/** The single non-escape port in the set. */
int
adaptivePort(const OutputSet& out)
{
    for (const auto& r : out.requests()) {
        if (r.priority != Priority::Lowest)
            return r.port;
    }
    return -1;
}

TEST(Footprint, UncongestedRequestsAllAdaptiveLow)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    FootprintRouting fp;
    OutputSet out;
    fp.route(view, headFlit(0, 9), out);
    // Adaptive request on one minimal port + escape.
    int adaptive_reqs = 0;
    for (const auto& r : out.requests()) {
        if (r.priority == Priority::Lowest) {
            EXPECT_EQ(r.vcs, VcMask{1});
        } else {
            ++adaptive_reqs;
            EXPECT_EQ(r.vcs, kAdaptive);
            EXPECT_EQ(r.priority, Priority::Low);
        }
    }
    EXPECT_EQ(adaptive_reqs, 1);
}

TEST(Footprint, EscapeAlwaysRequestedLowest)
{
    const Mesh mesh(8, 8);
    FootprintRouting fp;
    for (int dest : {9, 7, 56, 63}) {
        FakeRouterView view(mesh, 0, kVcs);
        OutputSet out;
        fp.route(view, headFlit(0, dest), out);
        Priority pri = Priority::High;
        ASSERT_TRUE(requested(out, portOf(dorDir(mesh, 0, dest)), 0,
                              pri));
        EXPECT_EQ(pri, Priority::Lowest);
    }
}

TEST(Footprint, PortSelectionPrefersMoreIdleVcs)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    for (int v = 0; v < 3; ++v)
        view.occupy(portOf(Dir::East), v, 50);
    FootprintRouting fp;
    OutputSet out;
    fp.route(view, headFlit(0, 18), out);
    EXPECT_EQ(adaptivePort(out), portOf(Dir::North));
}

TEST(Footprint, PortSelectionTieBrokenByFootprints)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    // Equal idle counts (one occupied VC each), but East's occupant
    // shares the packet's destination.
    view.occupy(portOf(Dir::East), 2, 18);
    view.occupy(portOf(Dir::North), 2, 50);
    FootprintRouting fp;
    OutputSet out;
    fp.route(view, headFlit(0, 18), out);
    EXPECT_EQ(adaptivePort(out), portOf(Dir::East));
}

TEST(Footprint, SaturatedPortWaitsOnFootprints)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    // Fully occupy both minimal ports; east VC 3 carries a packet to
    // the same destination.
    for (int v = 0; v < kVcs; ++v) {
        view.occupy(portOf(Dir::East), v, v == 3 ? 18 : 50);
        view.occupy(portOf(Dir::North), v, 60);
    }
    FootprintRouting fp;
    OutputSet out;
    fp.route(view, headFlit(0, 18), out);
    // Port selection: idle tie (0), fp tie-break picks East.
    EXPECT_EQ(adaptivePort(out), portOf(Dir::East));
    Priority pri = Priority::Lowest;
    ASSERT_TRUE(requested(out, portOf(Dir::East), 3, pri));
    EXPECT_EQ(pri, Priority::High);
    // No other adaptive VC may be requested.
    for (int v = 1; v < kVcs; ++v) {
        if (v == 3)
            continue;
        Priority p2 = Priority::Lowest;
        EXPECT_FALSE(requested(out, portOf(Dir::East), v, p2))
            << "unexpected request on VC " << v;
    }
}

TEST(Footprint, SaturatedPortNoFootprintRequestsAllAdaptive)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    for (int v = 0; v < kVcs; ++v)
        view.occupy(portOf(Dir::East), v, 50);
    FootprintRouting fp;
    OutputSet out;
    fp.route(view, headFlit(0, 7), out); // East is the only option
    Priority pri = Priority::Lowest;
    ASSERT_TRUE(requested(out, portOf(Dir::East), 5, pri));
    EXPECT_EQ(pri, Priority::Low);
}

TEST(Footprint, ConvergeGateConfinesConvergingTraffic)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    // Moderately congested east port (2 idle < threshold 5), with two
    // footprint lanes for dest 7 and converging traffic to 7.
    for (int v = 1; v < 9; ++v) {
        view.occupy(portOf(Dir::East), v,
                    (v == 4 || v == 6) ? 7 : 50);
    }
    view.setConvergence(7, 2);
    FootprintRouting fp;
    OutputSet out;
    fp.route(view, headFlit(0, 7), out);
    // Wait on the footprint VCs only.
    Priority pri = Priority::Lowest;
    ASSERT_TRUE(requested(out, portOf(Dir::East), 4, pri));
    EXPECT_EQ(pri, Priority::High);
    ASSERT_TRUE(requested(out, portOf(Dir::East), 6, pri));
    EXPECT_EQ(pri, Priority::High);
    EXPECT_FALSE(requested(out, portOf(Dir::East), 9, pri));
}

TEST(Footprint, SingleLaneIsNotSerialisedByConvergeGate)
{
    // With only one occupied footprint lane and idle VCs available,
    // the packet stays adaptive even under convergence — a stream is
    // never pinned to a single VC whose reallocation turnaround would
    // cap its throughput.
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    for (int v = 1; v < 9; ++v)
        view.occupy(portOf(Dir::East), v, v == 4 ? 7 : 50);
    view.setConvergence(7, 5);
    FootprintRouting fp;
    OutputSet out;
    fp.route(view, headFlit(0, 7), out);
    Priority pri = Priority::Lowest;
    ASSERT_TRUE(requested(out, portOf(Dir::East), 9, pri));
    EXPECT_EQ(pri, Priority::Highest);
}

TEST(Footprint, NonConvergingTrafficStaysAdaptive)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    for (int v = 1; v < 9; ++v)
        view.occupy(portOf(Dir::East), v, v == 4 ? 7 : 50);
    view.setConvergence(7, 1); // a lone stream, not converging
    FootprintRouting fp;
    OutputSet out;
    fp.route(view, headFlit(0, 7), out);
    // The idle VC (9) must be requested at Highest priority.
    Priority pri = Priority::Lowest;
    ASSERT_TRUE(requested(out, portOf(Dir::East), 9, pri));
    EXPECT_EQ(pri, Priority::Highest);
    // The busy footprint VC is still preferred over other busy VCs.
    ASSERT_TRUE(requested(out, portOf(Dir::East), 4, pri));
    EXPECT_EQ(pri, Priority::High);
    ASSERT_TRUE(requested(out, portOf(Dir::East), 5, pri));
    EXPECT_EQ(pri, Priority::Low);
}

TEST(Footprint, DrainedLaneIsReclaimed)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    for (int v = 1; v < 9; ++v)
        view.occupy(portOf(Dir::East), v, 50);
    // VC 9 idle but still owned by dest 7 (persistent owner register).
    view.drainedOwner(portOf(Dir::East), 9, 7);
    FootprintRouting fp;
    OutputSet out;
    fp.route(view, headFlit(0, 7), out);
    Priority pri = Priority::Lowest;
    ASSERT_TRUE(requested(out, portOf(Dir::East), 9, pri));
    EXPECT_EQ(pri, Priority::Reclaim);
}

TEST(Footprint, LiteralVariantMiddleRegime)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    for (int v = 1; v < 9; ++v)
        view.occupy(portOf(Dir::East), v, v == 4 ? 7 : 50);
    view.setConvergence(7, 5);
    FootprintRouting fp(0, 0, FootprintRouting::Variant::Literal);
    OutputSet out;
    fp.route(view, headFlit(0, 7), out);
    // Literal variant ignores convergence: idle VC at Highest.
    Priority pri = Priority::Lowest;
    ASSERT_TRUE(requested(out, portOf(Dir::East), 9, pri));
    EXPECT_EQ(pri, Priority::Highest);
}

TEST(Footprint, WaitVariantAlwaysWaitsWhenCongested)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    for (int v = 1; v < 9; ++v)
        view.occupy(portOf(Dir::East), v, v == 4 ? 7 : 50);
    FootprintRouting fp(0, 0, FootprintRouting::Variant::Wait);
    OutputSet out;
    fp.route(view, headFlit(0, 7), out);
    Priority pri = Priority::Lowest;
    EXPECT_FALSE(requested(out, portOf(Dir::East), 9, pri));
    ASSERT_TRUE(requested(out, portOf(Dir::East), 4, pri));
    EXPECT_EQ(pri, Priority::High);
}

TEST(Footprint, VcCapLimitsFootprintGrowth)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 0, kVcs);
    // Two occupied footprint VCs with cap 2: must wait even though
    // the port is otherwise idle.
    view.occupy(portOf(Dir::East), 2, 7);
    view.occupy(portOf(Dir::East), 3, 7);
    FootprintRouting fp(0, /*fp_vc_cap=*/2);
    OutputSet out;
    fp.route(view, headFlit(0, 7), out);
    Priority pri = Priority::Lowest;
    ASSERT_TRUE(requested(out, portOf(Dir::East), 2, pri));
    EXPECT_EQ(pri, Priority::High);
    EXPECT_FALSE(requested(out, portOf(Dir::East), 5, pri));
}

TEST(Footprint, EjectionAppliesRegulationAtLocalPort)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 9, kVcs);
    for (int v = 1; v < kVcs; ++v) {
        view.occupy(portOf(Dir::Local), v,
                    (v == 2 || v == 5) ? 9 : 50);
    }
    view.setConvergence(9, 3);
    FootprintRouting fp;
    OutputSet out;
    fp.route(view, headFlit(0, 9), out);
    Priority pri = Priority::Lowest;
    ASSERT_TRUE(requested(out, portOf(Dir::Local), 2, pri));
    EXPECT_EQ(pri, Priority::High);
    // Escape VC on the local port keeps ejection deadlock-free.
    ASSERT_TRUE(requested(out, portOf(Dir::Local), 0, pri));
    EXPECT_EQ(pri, Priority::Lowest);
}

TEST(Footprint, ThresholdDefaultsToHalfTheVcs)
{
    FootprintRouting fp;
    EXPECT_EQ(fp.congestionThreshold(10), 5);
    EXPECT_EQ(fp.congestionThreshold(2), 1);
    FootprintRouting fp3(3);
    EXPECT_EQ(fp3.congestionThreshold(10), 3);
}

TEST(Footprint, ParseVariant)
{
    EXPECT_EQ(FootprintRouting::parseVariant("literal"),
              FootprintRouting::Variant::Literal);
    EXPECT_EQ(FootprintRouting::parseVariant("wait"),
              FootprintRouting::Variant::Wait);
    EXPECT_EQ(FootprintRouting::parseVariant("converge"),
              FootprintRouting::Variant::Converge);
    EXPECT_EXIT(FootprintRouting::parseVariant("bogus"),
                testing::ExitedWithCode(1), "unknown footprint");
}

TEST(Footprint, Properties)
{
    FootprintRouting fp;
    EXPECT_EQ(fp.name(), "footprint");
    EXPECT_TRUE(fp.atomicVcAlloc());
    EXPECT_EQ(fp.numEscapeVcs(), 1);
}

} // namespace
} // namespace footprint
