/**
 * @file
 * Unit tests for the simulator self-profiler: phase attribution, RAII
 * scopes, sharded accumulators with the serial scratch merge, and the
 * footprint.profile/1 row/document emitters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/profiler.hpp"

namespace footprint {
namespace {

TEST(Profiler, PhaseNamesCoverAllPhases)
{
    EXPECT_STREQ(profPhaseName(ProfPhase::Inject), "inject");
    EXPECT_STREQ(profPhaseName(ProfPhase::Drain), "drain");
    EXPECT_STREQ(profPhaseName(ProfPhase::Compute), "compute");
    EXPECT_STREQ(profPhaseName(ProfPhase::Transmit), "transmit");
    EXPECT_STREQ(profPhaseName(ProfPhase::Epilogue), "epilogue");
    EXPECT_STREQ(profPhaseName(ProfPhase::Collect), "collect");
}

TEST(Profiler, AddPhaseAccumulatesTimeAndCalls)
{
    Profiler prof;
    prof.addPhaseNs(ProfPhase::Compute, 1500);
    prof.addPhaseNs(ProfPhase::Compute, 500);
    prof.addPhaseNs(ProfPhase::Drain, 250);
    EXPECT_DOUBLE_EQ(prof.phaseSeconds(ProfPhase::Compute), 2e-6);
    EXPECT_EQ(prof.phaseCalls(ProfPhase::Compute), 2u);
    EXPECT_EQ(prof.phaseCalls(ProfPhase::Drain), 1u);
    EXPECT_EQ(prof.phaseCalls(ProfPhase::Transmit), 0u);
}

TEST(Profiler, ScopeRecordsElapsedTime)
{
    Profiler prof;
    {
        ProfileScope scope(&prof, ProfPhase::Transmit);
        // Burn a little time so the scope measures something nonzero.
        volatile int x = 0;
        for (int i = 0; i < 10000; ++i)
            x = x + i;
        (void)x;
    }
    EXPECT_EQ(prof.phaseCalls(ProfPhase::Transmit), 1u);
    EXPECT_GT(prof.phaseSeconds(ProfPhase::Transmit), 0.0);
}

TEST(Profiler, NullScopeIsNoOp)
{
    // The hot path's disabled configuration: scope on a null profiler.
    ProfileScope scope(nullptr, ProfPhase::Compute);
    SUCCEED();
}

TEST(Profiler, RunClockAnchorsCycles)
{
    Profiler prof;
    prof.beginRun();
    prof.endRun(1234);
    EXPECT_EQ(prof.cycles(), 1234);
    EXPECT_GE(prof.runSeconds(), 0.0);
}

TEST(Profiler, ShardedAccumulatorsAndImbalance)
{
    Profiler prof;
    prof.configureSharded(4, 2, 2);
    ASSERT_TRUE(prof.sharded());
    ASSERT_EQ(prof.shardCount(), 4);
    // Shard busy: 1ms, 2ms, 3ms, 2ms -> mean 2ms, max 3ms.
    prof.addShardBusyNs(0, 1000000);
    prof.addShardBusyNs(1, 2000000);
    prof.addShardBusyNs(2, 3000000);
    prof.addShardBusyNs(3, 2000000);
    EXPECT_DOUBLE_EQ(prof.shardBusySeconds(2), 3e-3);
    EXPECT_DOUBLE_EQ(prof.imbalanceRatio(), 1.5);
}

TEST(Profiler, BalancedShardsReportRatioOne)
{
    Profiler prof;
    prof.configureSharded(2, 2, 2);
    prof.addShardBusyNs(0, 5000);
    prof.addShardBusyNs(1, 5000);
    EXPECT_DOUBLE_EQ(prof.imbalanceRatio(), 1.0);
}

TEST(Profiler, UnshardedImbalanceIsZero)
{
    Profiler prof;
    EXPECT_FALSE(prof.sharded());
    EXPECT_DOUBLE_EQ(prof.imbalanceRatio(), 0.0);
}

TEST(Profiler, BarrierWaitsMergeFromScratch)
{
    Profiler prof;
    prof.configureSharded(4, 2, 2);
    // One simulated cycle: both chunks wait at three barriers.
    for (int chunk = 0; chunk < 2; ++chunk) {
        prof.recordBarrierWaitNs(chunk, 100);
        prof.recordBarrierWaitNs(chunk, 1000);
        prof.recordBarrierWaitNs(chunk, 10000);
    }
    // Not yet merged: the histogram only fills from the serial fold.
    EXPECT_EQ(prof.barrierWaits().count(), 0u);
    prof.mergeCycleScratch();
    EXPECT_EQ(prof.barrierWaits().count(), 6u);
    EXPECT_EQ(prof.barrierWaits().max(), 10000u);
    // Scratch is consumed: merging again adds nothing.
    prof.mergeCycleScratch();
    EXPECT_EQ(prof.barrierWaits().count(), 6u);
}

TEST(Profiler, BarrierScratchBoundsWaitsPerCycle)
{
    Profiler prof;
    prof.configureSharded(1, 1, 1);
    // Pathological cycle recording more waits than the scratch holds:
    // the excess is dropped, never written out of bounds.
    for (int i = 0; i < 100; ++i)
        prof.recordBarrierWaitNs(0, 50);
    prof.mergeCycleScratch();
    EXPECT_LE(prof.barrierWaits().count(), 8u);
    EXPECT_GT(prof.barrierWaits().count(), 0u);
}

TEST(Profiler, JsonRowHasPhaseTableAndShardedBlock)
{
    Profiler prof;
    prof.configureSharded(2, 2, 2);
    prof.beginRun();
    prof.addPhaseNs(ProfPhase::Epilogue, 1000);
    prof.addShardBusyNs(0, 4000);
    prof.addShardBusyNs(1, 2000);
    prof.recordBarrierWaitNs(0, 300);
    prof.mergeCycleScratch();
    prof.endRun(10);

    const std::string row = prof.toJsonRow("sat16/dor@t2", "sharded", 2);
    EXPECT_NE(row.find("\"name\":\"sat16/dor@t2\""), std::string::npos);
    EXPECT_NE(row.find("\"mode\":\"sharded\""), std::string::npos);
    EXPECT_NE(row.find("\"threads\":2"), std::string::npos);
    EXPECT_NE(row.find("\"cycles\":10"), std::string::npos);
    for (const char* phase :
         {"inject", "drain", "compute", "transmit", "epilogue",
          "collect"})
        EXPECT_NE(row.find(std::string("\"name\":\"") + phase + "\""),
                  std::string::npos)
            << phase;
    EXPECT_NE(row.find("\"sharded\":{"), std::string::npos);
    EXPECT_NE(row.find("\"shard_busy_seconds\":["), std::string::npos);
    EXPECT_NE(row.find("\"imbalance_ratio\":"), std::string::npos);
    EXPECT_NE(row.find("\"p999_ns\":"), std::string::npos);
}

TEST(Profiler, SerialRowHasNullShardedBlock)
{
    Profiler prof;
    prof.beginRun();
    prof.addPhaseNs(ProfPhase::Compute, 1000);
    prof.endRun(5);
    const std::string row = prof.toJsonRow("low/dor", "activity", 1);
    EXPECT_NE(row.find("\"sharded\":null"), std::string::npos);
}

TEST(Profiler, DocumentWrapsRowsWithSchema)
{
    Profiler prof;
    prof.beginRun();
    prof.endRun(1);
    const std::vector<std::string> rows = {
        prof.toJsonRow("a", "full", 1),
        prof.toJsonRow("b", "activity", 1),
    };
    const std::string doc = profileDocument(nullptr, rows);
    EXPECT_EQ(doc.find("{\"schema\":\"footprint.profile/1\""), 0u);
    EXPECT_NE(doc.find("\"rows\":["), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"a\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"b\""), std::string::npos);
    EXPECT_EQ(doc.find("\"meta\":"), std::string::npos);
}

TEST(Profiler, WriteDocumentRoundTrips)
{
    Profiler prof;
    prof.beginRun();
    prof.endRun(1);
    const std::string path = testing::TempDir() + "fp_profile_ut.json";
    ASSERT_TRUE(writeProfileDocument(
        path, nullptr, {prof.toJsonRow("x", "full", 1)}));
    std::ifstream is(path);
    std::stringstream buf;
    buf << is.rdbuf();
    EXPECT_NE(buf.str().find("footprint.profile/1"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(Profiler, DisabledProfilerReportsDisabled)
{
    Profiler prof(false);
    EXPECT_FALSE(prof.enabled());
    Profiler on;
    EXPECT_TRUE(on.enabled());
}

} // namespace
} // namespace footprint
