/**
 * @file
 * Unit tests for the deadlock/livelock watchdog: wait-for-graph cycle
 * and knot detection on hand-built graphs, stall classification on a
 * live network, and the per-packet livelock scan.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

#include "network/network.hpp"
#include "network/traffic_manager.hpp"
#include "obs/watchdog.hpp"
#include "sim/config.hpp"

namespace footprint {
namespace {

// ------------------------------------------------- WaitForGraph units

TEST(WaitForGraph, EmptyGraphHasNoCycle)
{
    WaitForGraph g(4);
    EXPECT_TRUE(g.findCycle().empty());
    EXPECT_TRUE(g.unsafeNodes().empty());
}

TEST(WaitForGraph, AcyclicChainHasNoCycleAndIsSafe)
{
    WaitForGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3); // 3 has no outgoing edge: a drain
    EXPECT_TRUE(g.findCycle().empty());
    EXPECT_TRUE(g.unsafeNodes().empty());
}

TEST(WaitForGraph, SelfLoopIsACycleAndAKnot)
{
    WaitForGraph g(3);
    g.addEdge(1, 1);
    const auto cycle = g.findCycle();
    ASSERT_EQ(cycle.size(), 1u);
    EXPECT_EQ(cycle[0], 1);
    EXPECT_EQ(g.unsafeNodes(), std::vector<int>{1});
}

TEST(WaitForGraph, ThreeCycleIsFoundInOrder)
{
    WaitForGraph g(5);
    g.addEdge(0, 2);
    g.addEdge(2, 4);
    g.addEdge(4, 0);
    const auto cycle = g.findCycle();
    ASSERT_EQ(cycle.size(), 3u);
    // The sequence walks the cycle: each node's successor is next.
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const int next = cycle[(i + 1) % cycle.size()];
        const auto& succ = g.successors(cycle[i]);
        EXPECT_NE(std::find(succ.begin(), succ.end(), next),
                  succ.end());
    }
}

TEST(WaitForGraph, CycleWithEscapeEdgeIsNotAKnot)
{
    // 0 <-> 1 cycle, but 1 also waits on 2, which drains. OR
    // semantics: 1 progresses via 2, then 0 via 1 — survivable, the
    // shape an adaptive-layer cycle with a Duato escape path takes.
    WaitForGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    g.addEdge(1, 2);
    EXPECT_FALSE(g.findCycle().empty()); // a cycle exists...
    EXPECT_TRUE(g.unsafeNodes().empty()); // ...but it is not deadlock
}

TEST(WaitForGraph, ClosedCycleIsAKnot)
{
    WaitForGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    g.addEdge(3, 0); // blocked on the knot, hence unsafe too
    const auto unsafe = g.unsafeNodes();
    EXPECT_EQ(unsafe, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WaitForGraph, KnotFeedingASafeNodeStaysUnsafe)
{
    // The knot 0->1->0 also has an edge arriving FROM safe node 2;
    // inbound edges must not rescue it.
    WaitForGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    g.addEdge(2, 0);
    g.addEdge(2, 3); // 2 has an alternative that drains
    const auto unsafe = g.unsafeNodes();
    EXPECT_EQ(unsafe, (std::vector<int>{0, 1}));
}

TEST(WaitForGraph, RestrictedCycleSearchStaysInSet)
{
    // Two disjoint cycles; restricting to {3, 4} must find that one.
    WaitForGraph g(5);
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    g.addEdge(3, 4);
    g.addEdge(4, 3);
    const std::vector<int> within{3, 4};
    const auto cycle = g.findCycle(&within);
    ASSERT_EQ(cycle.size(), 2u);
    for (int node : cycle)
        EXPECT_TRUE(node == 3 || node == 4);
}

// --------------------------------------------- Watchdog on a network

SimConfig
smallConfig()
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    return cfg;
}

TEST(Watchdog, AutoHopBoundDerivesFromMeshSize)
{
    const SimConfig cfg = smallConfig();
    Network net(cfg);
    Watchdog::Params params;
    Watchdog wd(net, nullptr, params);
    EXPECT_EQ(wd.maxHops(), 2 * (4 + 4));
}

TEST(Watchdog, WaitNodeNamesRoundTrip)
{
    const SimConfig cfg = smallConfig();
    Network net(cfg);
    Watchdog::Params params;
    Watchdog wd(net, nullptr, params);
    const int id = wd.waitNodeId(5, portOf(Dir::East), 2);
    EXPECT_EQ(wd.waitNodeName(id), "(n5, E, vc2)");
}

TEST(Watchdog, IdleNetworkClassifiesAsNone)
{
    const SimConfig cfg = smallConfig();
    Network net(cfg);
    Watchdog::Params params;
    Watchdog wd(net, nullptr, params);
    const Watchdog::Report rep = wd.classify(0);
    EXPECT_EQ(rep.stallClass, Watchdog::StallClass::None);
    EXPECT_EQ(rep.blockedVcs, 0);
    EXPECT_FALSE(wd.deadlockDetected());
}

TEST(Watchdog, FlowingTrafficIsNeverDeadlocked)
{
    const SimConfig cfg = smallConfig();
    Network net(cfg);
    Watchdog::Params params;
    Watchdog wd(net, nullptr, params);

    std::uint64_t id = 1;
    for (int node = 0; node < 16; ++node) {
        Packet p;
        p.id = id++;
        p.src = node;
        p.dest = 15 - node;
        p.size = 4;
        p.createTime = 0;
        if (p.src != p.dest)
            net.endpoint(node).enqueue(p);
    }
    for (std::int64_t cycle = 0; cycle < 120; ++cycle) {
        net.step(cycle);
        const Watchdog::Report rep = wd.classify(cycle);
        EXPECT_NE(rep.stallClass, Watchdog::StallClass::Deadlock)
            << "cycle " << cycle << ": " << rep.detail;
    }
}

TEST(Watchdog, LivelockScanFlagsPacketsOverHopBound)
{
    const SimConfig cfg = smallConfig();
    Network net(cfg);
    Watchdog::Params params;
    params.maxHops = 1; // absurdly tight: any multi-hop packet
    Watchdog wd(net, nullptr, params);

    // Converging traffic so head flits sit in buffers mid-journey
    // (hops increments when a flit leaves a router, so a buffered
    // head two routers in carries hops == 2 > 1).
    std::uint64_t id = 1;
    for (int node = 0; node < 15; ++node) {
        Packet p;
        p.id = id++;
        p.src = node;
        p.dest = 15;
        p.size = 5;
        p.createTime = 0;
        net.endpoint(node).enqueue(p);
    }

    std::size_t found = 0;
    for (std::int64_t cycle = 0; cycle < 80 && found == 0; ++cycle) {
        net.step(cycle);
        found = wd.scanForLivelock(cycle);
    }
    ASSERT_GE(found, 1u);
    ASSERT_FALSE(wd.events().empty());
    EXPECT_EQ(wd.events()[0].kind, "livelock");
    EXPECT_NE(wd.events()[0].detail.find("packet "),
              std::string::npos);
    EXPECT_NE(wd.events()[0].detail.find("bounds: 1 hops"),
              std::string::npos);

    // Dedup: keep scanning; each suspect packet is reported once, so
    // events never exceed the number of distinct packets.
    for (std::int64_t cycle = 80; cycle < 120; ++cycle) {
        net.step(cycle);
        wd.scanForLivelock(cycle);
    }
    EXPECT_LE(wd.events().size(), 15u);
    std::set<std::string> details;
    for (const auto& e : wd.events())
        details.insert(e.detail.substr(0, e.detail.find(" at node")));
    EXPECT_EQ(details.size(), wd.events().size())
        << "a packet was reported more than once";
}

TEST(Watchdog, SaturatedHotspotClassifiesAsTreeSaturation)
{
    SimConfig cfg = smallConfig();
    cfg.set("traffic", "hotspot");
    cfg.setDouble("injection_rate", 1.0); // ~2x saturation
    cfg.setDouble("background_rate", 0.9);
    cfg.setInt("warmup_cycles", 300);
    cfg.setInt("measure_cycles", 600);
    cfg.setInt("drain_cycles", 1500);
    cfg.setBool("audit", true);
    cfg.setInt("audit_interval", 500);

    const RunStats stats = runExperiment(cfg);
    EXPECT_FALSE(stats.drained);
    EXPECT_EQ(stats.stallClass, "tree_saturation")
        << "endpoint congestion must not read as deadlock";
    EXPECT_EQ(stats.auditViolations, 0u);
}

} // namespace
} // namespace footprint
