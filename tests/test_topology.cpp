/**
 * @file
 * Tests for the explicit topology layer (DESIGN.md §18): port-map
 * consistency, wraparound and dateline legality, terminal mapping
 * under concentration, link-latency plumbing into delivered packets,
 * and torus-DOR deadlock freedom at saturation under the auditor.
 */

#include <gtest/gtest.h>

#include <vector>

#include "network/network.hpp"
#include "network/traffic_manager.hpp"
#include "routing/routing.hpp"
#include "sim/config.hpp"
#include "topo/topology.hpp"

namespace footprint {
namespace {

std::vector<Topology>
allTopologies()
{
    std::vector<Topology> topos;
    topos.push_back(Topology::mesh(5, 3));
    topos.push_back(Topology::torus(4, 4));
    topos.push_back(Topology::cmesh(4, 4, 4));
    topos.push_back(Topology::ring(6));
    return topos;
}

TEST(Topology, ForwardAndReverseMapsAreInverses)
{
    for (const Topology& topo : allTopologies()) {
        for (int n = 0; n < topo.numNodes(); ++n) {
            for (int p = 0; p < kNumPorts; ++p) {
                const PortRef f = topo.forward(n, p);
                ASSERT_EQ(f.valid(), topo.reverse(n, p).valid())
                    << topo.kindName() << " node " << n << " port "
                    << p;
                if (!f.valid())
                    continue;
                // What n transmits on p arrives at f; f's reverse map
                // for that input port must point straight back.
                EXPECT_EQ(topo.reverse(f.node, f.port),
                          (PortRef{n, p}))
                    << topo.kindName() << " node " << n << " port "
                    << p;
            }
        }
    }
}

TEST(Topology, NeighborIsSymmetric)
{
    for (const Topology& topo : allTopologies()) {
        for (int n = 0; n < topo.numNodes(); ++n) {
            for (Dir d :
                 {Dir::East, Dir::West, Dir::North, Dir::South}) {
                if (!topo.hasNeighbor(n, d))
                    continue;
                const int m = topo.neighbor(n, d);
                ASSERT_TRUE(topo.hasNeighbor(m, opposite(d)));
                EXPECT_EQ(topo.neighbor(m, opposite(d)), n)
                    << topo.kindName() << " node " << n;
            }
        }
    }
}

TEST(Topology, LocalPortLoopsBackToSelf)
{
    for (const Topology& topo : allTopologies()) {
        for (int n = 0; n < topo.numNodes(); ++n) {
            const PortRef f = topo.forward(n, portOf(Dir::Local));
            EXPECT_EQ(f, (PortRef{n, portOf(Dir::Local)}));
            EXPECT_FALSE(topo.hasNeighbor(n, Dir::Local));
        }
    }
}

TEST(Topology, MeshTopologyMatchesMeshConnectivity)
{
    const Topology topo = Topology::mesh(5, 3);
    const Mesh mesh(5, 3);
    for (int n = 0; n < mesh.numNodes(); ++n) {
        for (Dir d : {Dir::East, Dir::West, Dir::North, Dir::South}) {
            ASSERT_EQ(topo.hasNeighbor(n, d), mesh.hasNeighbor(n, d));
            if (mesh.hasNeighbor(n, d)) {
                EXPECT_EQ(topo.neighbor(n, d), mesh.neighbor(n, d));
            }
        }
    }
    // Unwrapped routing queries delegate to the grid bit for bit.
    Dir tbuf[2];
    Dir mbuf[2];
    for (int s = 0; s < mesh.numNodes(); ++s) {
        for (int d = 0; d < mesh.numNodes(); ++d) {
            EXPECT_EQ(topo.hopDistance(s, d), mesh.hopDistance(s, d));
            const int tn = topo.minimalDirsInto(s, d, tbuf);
            const int mn = mesh.minimalDirsInto(s, d, mbuf);
            ASSERT_EQ(tn, mn);
            for (int i = 0; i < tn; ++i)
                EXPECT_EQ(tbuf[i], mbuf[i]);
        }
    }
}

TEST(Topology, TorusWrapsBothDimensions)
{
    const Topology topo = Topology::torus(4, 4);
    for (int n = 0; n < topo.numNodes(); ++n) {
        // Every torus router has all four neighbors.
        for (Dir d : {Dir::East, Dir::West, Dir::North, Dir::South})
            EXPECT_TRUE(topo.hasNeighbor(n, d));
    }
    // Edge nodes wrap to the far side.
    EXPECT_EQ(topo.neighbor(topo.nodeId(Coord{3, 0}), Dir::East),
              topo.nodeId(Coord{0, 0}));
    EXPECT_EQ(topo.neighbor(topo.nodeId(Coord{0, 2}), Dir::West),
              topo.nodeId(Coord{3, 2}));
    EXPECT_EQ(topo.neighbor(topo.nodeId(Coord{1, 3}), Dir::North),
              topo.nodeId(Coord{1, 0}));
    EXPECT_EQ(topo.neighbor(topo.nodeId(Coord{2, 0}), Dir::South),
              topo.nodeId(Coord{2, 3}));
}

TEST(Topology, DatelineCrossesOnlyOnWrapLinks)
{
    const Topology torus = Topology::torus(4, 4);
    for (int n = 0; n < torus.numNodes(); ++n) {
        const Coord c = torus.coordOf(n);
        EXPECT_EQ(torus.datelineCrossing(n, Dir::East), c.x == 3);
        EXPECT_EQ(torus.datelineCrossing(n, Dir::West), c.x == 0);
        EXPECT_EQ(torus.datelineCrossing(n, Dir::North), c.y == 3);
        EXPECT_EQ(torus.datelineCrossing(n, Dir::South), c.y == 0);
    }
    // Unwrapped topologies never cross a dateline.
    const Topology mesh = Topology::mesh(4, 4);
    for (int n = 0; n < mesh.numNodes(); ++n) {
        for (Dir d : {Dir::East, Dir::West, Dir::North, Dir::South})
            EXPECT_FALSE(mesh.datelineCrossing(n, d));
    }
}

TEST(Topology, WrapAwareHopDistanceTakesShortWayAround)
{
    const Topology torus = Topology::torus(8, 8);
    EXPECT_EQ(torus.hopDistance(0, 7), 1);   // wrap West
    EXPECT_EQ(torus.hopDistance(0, 4), 4);   // exact tie
    EXPECT_EQ(torus.hopDistance(0, 63), 2);  // wrap both dims
    const Topology ring = Topology::ring(8);
    EXPECT_EQ(ring.hopDistance(0, 7), 1);
    EXPECT_EQ(ring.hopDistance(0, 3), 3);
}

TEST(Topology, MinimalDirsWrapAndBreakTiesEast)
{
    const Topology torus = Topology::torus(8, 8);
    Dir buf[2];
    // 0 -> 7: one hop West around the wrap.
    ASSERT_EQ(torus.minimalDirsInto(0, 7, buf), 1);
    EXPECT_EQ(buf[0], Dir::West);
    // 0 -> 4: exact tie in x breaks East.
    ASSERT_EQ(torus.minimalDirsInto(0, 4, buf), 1);
    EXPECT_EQ(buf[0], Dir::East);
    // Every minimal dir must reduce the wrap-aware distance.
    for (int s = 0; s < torus.numNodes(); s += 3) {
        for (int d = 0; d < torus.numNodes(); ++d) {
            const int n = torus.minimalDirsInto(s, d, buf);
            for (int i = 0; i < n; ++i) {
                const int next = torus.neighbor(s, buf[i]);
                EXPECT_EQ(torus.hopDistance(next, d),
                          torus.hopDistance(s, d) - 1);
            }
        }
    }
}

TEST(Topology, TorusDorWalksAreMinimalAndTerminate)
{
    const Topology torus = Topology::torus(5, 5);
    for (int s = 0; s < torus.numNodes(); ++s) {
        for (int d = 0; d < torus.numNodes(); ++d) {
            int cur = s;
            int hops = 0;
            while (true) {
                const Dir dir = dorDir(torus, cur, d);
                if (dir == Dir::Local)
                    break;
                cur = torus.neighbor(cur, dir);
                ASSERT_LE(++hops, torus.hopDistance(s, d))
                    << "DOR detour from " << s << " to " << d;
            }
            EXPECT_EQ(cur, d);
            EXPECT_EQ(hops, torus.hopDistance(s, d));
        }
    }
}

TEST(Topology, CmeshTerminalMapping)
{
    const Topology topo = Topology::cmesh(4, 4, 4);
    EXPECT_EQ(topo.concentration(), 4);
    EXPECT_EQ(topo.numNodes(), 16);
    EXPECT_EQ(topo.numTerminals(), 64);
    EXPECT_EQ(topo.terminalRouter(13), 3);
    EXPECT_EQ(topo.terminalIndex(13), 1);
    EXPECT_EQ(topo.terminalOf(3, 1), 13);
    for (int t = 0; t < topo.numTerminals(); ++t) {
        EXPECT_EQ(topo.terminalOf(topo.terminalRouter(t),
                                  topo.terminalIndex(t)),
                  t);
    }
}

TEST(Topology, FromConfigBuildsEachKind)
{
    SimConfig cfg = defaultConfig();
    EXPECT_EQ(Topology::fromConfig(cfg).kind(), TopologyKind::Mesh);
    cfg.set("topology", "torus");
    EXPECT_EQ(Topology::fromConfig(cfg).kind(), TopologyKind::Torus);
    cfg.set("topology", "cmesh");
    cfg.setInt("concentration", 2);
    EXPECT_EQ(Topology::fromConfig(cfg).kind(), TopologyKind::CMesh);
    cfg = defaultConfig();
    cfg.set("topology", "ring");
    cfg.setInt("mesh_width", 8);
    cfg.setInt("mesh_height", 1);
    EXPECT_EQ(Topology::fromConfig(cfg).kind(), TopologyKind::Ring);
}

TEST(TopologyDeath, InvalidShapesAreFatal)
{
    EXPECT_EXIT(Topology::torus(2, 4), testing::ExitedWithCode(1),
                "torus needs width >= 3 and height >= 3");
    EXPECT_EXIT(Topology::ring(2), testing::ExitedWithCode(1),
                "ring needs >= 3 nodes");
    SimConfig cfg = defaultConfig();
    cfg.set("topology", "hypercube");
    EXPECT_EXIT(Topology::fromConfig(cfg), testing::ExitedWithCode(1),
                "unknown topology");
    cfg = defaultConfig();
    cfg.setInt("concentration", 4);
    EXPECT_EXIT(Topology::fromConfig(cfg), testing::ExitedWithCode(1),
                "requires topology=cmesh");
    cfg = defaultConfig();
    cfg.set("topology", "ring");  // keeps mesh_height = 8
    EXPECT_EXIT(Topology::fromConfig(cfg), testing::ExitedWithCode(1),
                "ring requires mesh_height=1");
}

TEST(TopologyDeath, UnsupportedRoutingPairsAreFatal)
{
    // Adaptive algorithms have no dateline discipline: wrapped
    // topologies must reject them at construction.
    SimConfig cfg = defaultConfig();
    cfg.set("topology", "torus");
    cfg.set("routing", "footprint");
    EXPECT_EXIT(Network net(cfg), testing::ExitedWithCode(1),
                "supports routing=dor only");
    cfg.set("routing", "dor+xordet");
    EXPECT_EXIT(Network net(cfg), testing::ExitedWithCode(1),
                "supports routing=dor only");
    cfg.set("routing", "dor");
    cfg.setInt("num_vcs", 1);
    EXPECT_EXIT(Network net(cfg), testing::ExitedWithCode(1),
                "num_vcs >= 2");
}

/**
 * Deliver one single-flit packet three x-hops away and return its
 * latency. Only link_latency_x varies, so the latency delta between
 * two calls isolates exactly the router-to-router x links crossed.
 */
std::int64_t
deliveryLatency(const std::string& topology, int latency_x, int dest)
{
    SimConfig cfg = defaultConfig();
    cfg.set("topology", topology);
    cfg.setInt("mesh_width", topology == "ring" ? 8 : 4);
    cfg.setInt("mesh_height", topology == "ring" ? 1 : 4);
    cfg.set("routing", "dor");
    if (topology == "cmesh")
        cfg.setInt("concentration", 2);
    cfg.setInt("link_latency_x", latency_x);
    Network net(cfg);

    Packet p;
    p.id = 1;
    p.src = 0;
    p.dest = dest;
    p.size = 1;
    p.createTime = 0;
    p.measured = true;
    net.endpoint(0).enqueue(p);
    for (std::int64_t cycle = 0; cycle < 300; ++cycle) {
        net.step(cycle);
        auto done = net.endpoint(dest).drainEjected();
        if (!done.empty())
            return done[0].latency();
    }
    ADD_FAILURE() << topology << ": packet not delivered";
    return -1;
}

TEST(Topology, LinkLatencyReachesDeliveredPackets)
{
    for (const char* topology : {"mesh", "cmesh"}) {
        // 0 -> 3 crosses three x links; each extra cycle of x-link
        // latency costs exactly three cycles end to end.
        const std::int64_t base = deliveryLatency(topology, 1, 3);
        const std::int64_t slow = deliveryLatency(topology, 4, 3);
        EXPECT_EQ(slow - base, 3 * 3) << topology;
    }
    // With wraparound, DOR crosses exactly one x link to the last
    // node in the row: 0 -> 3 on the 4-wide torus, 0 -> 7 on the
    // 8-node ring, one West wrap hop each.
    {
        const std::int64_t base = deliveryLatency("torus", 1, 3);
        const std::int64_t slow = deliveryLatency("torus", 4, 3);
        EXPECT_EQ(slow - base, 1 * 3) << "torus";
    }
    {
        const std::int64_t base = deliveryLatency("ring", 1, 7);
        const std::int64_t slow = deliveryLatency("ring", 4, 7);
        EXPECT_EQ(slow - base, 1 * 3) << "ring";
    }
}

TEST(Topology, TorusDorStaysDeadlockFreeAtSaturation)
{
    // Drive an 8x8 torus far past its uniform-DOR saturation load
    // with the invariant auditor and watchdog on: the dateline VC
    // discipline must keep the wrap rings deadlock-free (a deadlock
    // shows up as watchdog events / nonzero violations).
    SimConfig cfg = defaultConfig();
    cfg.set("topology", "torus");
    cfg.setInt("mesh_width", 8);
    cfg.setInt("mesh_height", 8);
    cfg.set("routing", "dor");
    cfg.set("traffic", "uniform");
    cfg.setDouble("injection_rate", 0.8);
    cfg.setInt("warmup_cycles", 200);
    cfg.setInt("measure_cycles", 400);
    cfg.setInt("drain_cycles", 400);
    cfg.setBool("audit", true);
    cfg.setInt("audit_interval", 100);
    const RunStats stats = runExperiment(cfg);
    EXPECT_EQ(stats.auditViolations, 0u);
    EXPECT_EQ(stats.watchdogEvents, 0u);
    // Past saturation the run must still make forward progress.
    EXPECT_GT(stats.measuredEjected, 0u);
}

TEST(Topology, RingAndCmeshCompleteUniformRuns)
{
    for (const char* topology : {"ring", "cmesh"}) {
        SimConfig cfg = defaultConfig();
        cfg.set("topology", topology);
        if (std::string(topology) == "ring") {
            cfg.setInt("mesh_width", 8);
            cfg.setInt("mesh_height", 1);
            cfg.set("routing", "dor");
        } else {
            cfg.setInt("mesh_width", 4);
            cfg.setInt("mesh_height", 4);
            cfg.setInt("concentration", 4);
            cfg.set("routing", "footprint");
        }
        cfg.set("traffic", "uniform");
        cfg.setDouble("injection_rate", 0.05);
        cfg.setInt("warmup_cycles", 100);
        cfg.setInt("measure_cycles", 300);
        cfg.setInt("drain_cycles", 2000);
        cfg.setBool("audit", true);
        const RunStats stats = runExperiment(cfg);
        EXPECT_TRUE(stats.drained) << topology;
        EXPECT_EQ(stats.auditViolations, 0u) << topology;
        EXPECT_GT(stats.measuredEjected, 0u) << topology;
    }
}

} // namespace
} // namespace footprint
