/**
 * @file
 * Execution-engine equivalence tests: activity-driven stepping must be
 * observationally identical to full stepping — same injected/ejected
 * totals, same per-packet hop and latency sums, same per-router event
 * counters — for every routing algorithm at low load and past
 * saturation. Verify mode (full stepping that cross-checks the active
 * list) must complete without tripping its under-wake invariant.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "routing/routing.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace footprint {
namespace {

/**
 * Drive an 8x8 mesh with a deterministic Bernoulli workload and fold
 * everything observable into a flat signature. Two runs are
 * behaviorally identical iff their signatures match.
 */
std::vector<std::uint64_t>
runSignature(const std::string& routing, double load,
             const char* step_mode, std::int64_t cycles)
{
    SimConfig cfg = defaultConfig();
    cfg.set("routing", routing);
    cfg.set("step_mode", step_mode);
    Network net(cfg);
    const int nodes = net.mesh().numNodes();

    Rng gen(99);
    std::uint64_t id = 0;
    std::uint64_t drained = 0;
    std::uint64_t hops_sum = 0;
    std::uint64_t latency_sum = 0;
    for (std::int64_t cycle = 0; cycle < cycles; ++cycle) {
        for (int n = 0; n < nodes; ++n) {
            if (gen.nextBool(load)) {
                Packet p;
                p.id = ++id;
                p.src = n;
                p.dest = static_cast<int>(gen.nextBounded(nodes));
                if (p.dest == n)
                    continue;
                p.size = 1 + static_cast<int>(gen.nextBounded(3));
                p.createTime = cycle;
                p.measured = true;
                net.endpoint(n).enqueue(p);
            }
        }
        net.step(cycle);
        for (int n = 0; n < nodes; ++n) {
            for (const EjectedPacket& p :
                 net.endpoint(n).drainEjected()) {
                ++drained;
                hops_sum += static_cast<std::uint64_t>(p.hops);
                latency_sum +=
                    static_cast<std::uint64_t>(p.latency());
            }
        }
    }

    std::vector<std::uint64_t> sig;
    sig.push_back(net.totalFlitsInjected());
    sig.push_back(net.totalFlitsEjected());
    sig.push_back(
        static_cast<std::uint64_t>(net.totalFlitsInFlight()));
    sig.push_back(net.totalFlitsSent());
    sig.push_back(drained);
    sig.push_back(hops_sum);
    sig.push_back(latency_sum);
    for (int n = 0; n < nodes; ++n) {
        const Router::Counters& c = net.router(n).counters();
        sig.push_back(c.vcAllocSuccess);
        sig.push_back(c.vcAllocFail);
        for (const std::uint64_t g : c.vaGrantsByPriority)
            sig.push_back(g);
        sig.push_back(c.flitsTraversed);
        sig.push_back(c.puritySamples);
        sig.push_back(c.puritySum);
    }
    return sig;
}

class StepEquivalence : public testing::TestWithParam<std::string>
{};

TEST_P(StepEquivalence, ActivityMatchesFullAtLowLoad)
{
    const auto full = runSignature(GetParam(), 0.05, "full", 400);
    const auto act = runSignature(GetParam(), 0.05, "activity", 400);
    EXPECT_EQ(full, act);
}

TEST_P(StepEquivalence, ActivityMatchesFullPastSaturation)
{
    const auto full = runSignature(GetParam(), 0.6, "full", 400);
    const auto act = runSignature(GetParam(), 0.6, "activity", 400);
    EXPECT_EQ(full, act);
}

TEST_P(StepEquivalence, ActivityMatchesFullOnIdleNetwork)
{
    // Nothing ever injected: the active list should go (and stay)
    // empty, and the totals must agree with stepping everything.
    const auto full = runSignature(GetParam(), 0.0, "full", 200);
    const auto act = runSignature(GetParam(), 0.0, "activity", 200);
    EXPECT_EQ(full, act);
}

TEST_P(StepEquivalence, VerifyModeFindsNoUnderWake)
{
    // Verify mode steps every component while FP_ASSERTing that each
    // one the active list would have skipped is genuinely quiescent;
    // any under-wake bug panics with an InvariantError here.
    const auto verify =
        runSignature(GetParam(), 0.15, "verify", 300);
    const auto full = runSignature(GetParam(), 0.15, "full", 300);
    EXPECT_EQ(verify, full);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, StepEquivalence,
    testing::ValuesIn(allRoutingAlgorithmNames()),
    [](const testing::TestParamInfo<std::string>& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (c == '+')
                c = '_';
        }
        return name;
    });

TEST(StepEquivalence, NonContiguousCyclesStillMatch)
{
    // Drivers may step with gaps (e.g. a warmup loop that skips
    // cycles); a gap forces a full sweep to re-seed the active list.
    auto run = [](const char* mode) {
        SimConfig cfg = defaultConfig();
        cfg.set("step_mode", mode);
        Network net(cfg);
        Packet p;
        p.id = 1;
        p.src = 0;
        p.dest = 63;
        p.size = 2;
        p.createTime = 0;
        net.endpoint(0).enqueue(p);
        for (std::int64_t c = 0; c < 40; ++c)
            net.step(c);
        net.step(100); // jump
        for (std::int64_t c = 101; c < 140; ++c)
            net.step(c);
        return std::vector<std::uint64_t>{
            net.totalFlitsInjected(), net.totalFlitsEjected(),
            static_cast<std::uint64_t>(net.totalFlitsInFlight()),
            net.totalFlitsSent()};
    };
    EXPECT_EQ(run("full"), run("activity"));
}

} // namespace
} // namespace footprint
