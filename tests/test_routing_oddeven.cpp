/**
 * @file
 * Unit and property tests for Odd-Even turn-model routing: every path
 * the routing relation allows must be minimal, reach the destination,
 * and respect the odd-even turn prohibitions.
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "fake_router_view.hpp"
#include "routing/odd_even.hpp"

namespace footprint {
namespace {

TEST(OddEven, AtDestinationNoDirs)
{
    const Mesh mesh(8, 8);
    EXPECT_TRUE(OddEvenRouting::legalDirs(mesh, 0, 5, 5).empty());
}

TEST(OddEven, AlwaysAtLeastOneDir)
{
    const Mesh mesh(8, 8);
    for (int s = 0; s < 64; ++s) {
        for (int c = 0; c < 64; ++c) {
            for (int d = 0; d < 64; ++d) {
                if (c == d)
                    continue;
                // Only consider cur nodes reachable on minimal paths
                // from s; legality is still well defined elsewhere,
                // but routers only ever see reachable states.
                if (mesh.hopDistance(s, c) + mesh.hopDistance(c, d)
                    != mesh.hopDistance(s, d)) {
                    continue;
                }
                EXPECT_FALSE(
                    OddEvenRouting::legalDirs(mesh, s, c, d).empty())
                    << "no legal dir at " << c << " for " << s << "->"
                    << d;
            }
        }
    }
}

TEST(OddEven, DirsAreMinimal)
{
    const Mesh mesh(8, 8);
    for (int s = 0; s < 64; s += 3) {
        for (int d = 0; d < 64; d += 5) {
            if (s == d)
                continue;
            for (Dir dir : OddEvenRouting::legalDirs(mesh, s, s, d)) {
                const int next = mesh.neighbor(s, dir);
                EXPECT_EQ(mesh.hopDistance(next, d),
                          mesh.hopDistance(s, d) - 1);
            }
        }
    }
}

/**
 * Walk every path allowed by the odd-even relation from src to dest,
 * verifying the turn prohibitions edge by edge and that every path
 * terminates at dest within the minimal hop count.
 */
void
checkAllPaths(const Mesh& mesh, int src, int dest)
{
    // (node, incoming dir) states; incoming Local means "at source".
    std::set<std::pair<int, int>> visited;
    std::function<void(int, Dir)> walk = [&](int cur, Dir came) {
        if (cur == dest)
            return;
        if (!visited.insert({cur, portOf(came)}).second)
            return;
        const auto dirs =
            OddEvenRouting::legalDirs(mesh, src, cur, dest);
        ASSERT_FALSE(dirs.empty());
        const bool cur_even = mesh.coordOf(cur).x % 2 == 0;
        for (Dir d : dirs) {
            // Turn prohibitions (Chiu's odd-even rules).
            if (came == Dir::East
                && (d == Dir::North || d == Dir::South)) {
                EXPECT_FALSE(cur_even)
                    << "EN/ES turn in even column at " << cur;
            }
            if ((came == Dir::North || came == Dir::South)
                && d == Dir::West) {
                EXPECT_TRUE(cur_even)
                    << "NW/SW turn in odd column at " << cur;
            }
            walk(mesh.neighbor(cur, d), d);
        }
    };
    walk(src, Dir::Local);
}

TEST(OddEven, TurnRulesHoldOnAllAllowedPaths8x8)
{
    const Mesh mesh(8, 8);
    for (int s = 0; s < 64; s += 7) {
        for (int d = 0; d < 64; d += 3) {
            if (s != d)
                checkAllPaths(mesh, s, d);
        }
    }
}

TEST(OddEven, TurnRulesHoldOnAllAllowedPaths5x5)
{
    const Mesh mesh(5, 5);
    for (int s = 0; s < 25; ++s) {
        for (int d = 0; d < 25; ++d) {
            if (s != d)
                checkAllPaths(mesh, s, d);
        }
    }
}

TEST(OddEven, WestboundAlwaysAllowsWest)
{
    const Mesh mesh(8, 8);
    for (int s = 8; s < 64; ++s) {
        const Coord c = mesh.coordOf(s);
        if (c.x == 0)
            continue;
        // Destination strictly west and north.
        const int d = mesh.nodeId(Coord{0, std::min(c.y + 1, 7)});
        if (d == s)
            continue;
        const auto dirs = OddEvenRouting::legalDirs(mesh, s, s, d);
        EXPECT_NE(std::find(dirs.begin(), dirs.end(), Dir::West),
                  dirs.end());
    }
}

TEST(OddEvenRouting, SelectsPortWithMoreIdleVcs)
{
    const Mesh mesh(8, 8);
    // At node 0 (even column, source column) heading to 9 (1,1):
    // both East and North legal.
    FakeRouterView view(mesh, 0, 4);
    for (int v = 0; v < 3; ++v)
        view.occupy(portOf(Dir::East), v, 50);
    OddEvenRouting oe;
    OutputSet out;
    oe.route(view, headFlit(0, 9), out);
    ASSERT_EQ(out.requests().size(), 1u);
    EXPECT_EQ(out.requests()[0].port, portOf(Dir::North));
    EXPECT_EQ(out.requests()[0].vcs, maskOfFirst(4));
}

TEST(OddEvenRouting, EjectsAtDestination)
{
    const Mesh mesh(8, 8);
    FakeRouterView view(mesh, 9, 4);
    OddEvenRouting oe;
    OutputSet out;
    oe.route(view, headFlit(0, 9), out);
    ASSERT_EQ(out.requests().size(), 1u);
    EXPECT_EQ(out.requests()[0].port, portOf(Dir::Local));
}

TEST(OddEvenRouting, Properties)
{
    OddEvenRouting oe;
    EXPECT_EQ(oe.name(), "oddeven");
    EXPECT_FALSE(oe.atomicVcAlloc());
    EXPECT_EQ(oe.numEscapeVcs(), 0);
}

} // namespace
} // namespace footprint
