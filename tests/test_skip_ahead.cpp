/**
 * @file
 * Event-horizon skip-ahead tests (DESIGN.md §16): the fast path that
 * jumps the clock over quiescent spans must be observationally
 * invisible. Covers the HorizonTracker fold itself, Network
 * idle()/skipTo() (including credits in flight as the only pending
 * event), injection landing exactly on the horizon, jump-aware window
 * closing in the flight recorder (empty windows, exact boundaries,
 * byte-identical stream records), and full TrafficManager runs —
 * serial and sharded — whose statistics and timeseries bytes must not
 * depend on skip_ahead.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "network/traffic_manager.hpp"
#include "obs/timeseries.hpp"
#include "sim/config.hpp"
#include "sim/horizon.hpp"
#include "sim/rng.hpp"
#include "traffic/injection.hpp"

namespace footprint {
namespace {

TEST(HorizonTracker, StartsAtTheLimitAndFoldsCandidatesDown)
{
    HorizonTracker hz(10, 1000);
    EXPECT_EQ(hz.cycle(), 1000);
    EXPECT_TRUE(hz.skips());
    hz.clamp(500);
    hz.clamp(700);  // later than current horizon: ignored
    EXPECT_EQ(hz.cycle(), 500);
    hz.clamp(10);
    EXPECT_EQ(hz.cycle(), 10);
    EXPECT_FALSE(hz.skips());  // landing on `from` skips nothing
}

TEST(HorizonTracker, PastCandidatesCannotDragTheHorizonBackwards)
{
    // A boundary already behind the clock (e.g. a long-elapsed warmup
    // end) must not produce a backwards jump.
    HorizonTracker hz(100, 1000);
    hz.clamp(40);
    hz.clamp(-5);
    EXPECT_EQ(hz.cycle(), 1000);
    hz.clamp(100);
    EXPECT_EQ(hz.cycle(), 100);
}

TEST(HorizonTracker, LimitBelowFromClampsToFrom)
{
    HorizonTracker hz(50, 20);
    EXPECT_EQ(hz.cycle(), 50);
    EXPECT_FALSE(hz.skips());
}

TEST(HorizonTracker, NeverSentinelLeavesTheLimit)
{
    HorizonTracker hz(7, 9999);
    hz.clamp(HorizonTracker::kNever);
    EXPECT_EQ(hz.cycle(), 9999);
}

TEST(HorizonTracker, PeriodicClampFindsTheNextGridCycle)
{
    {
        HorizonTracker hz(25, 1000);
        hz.clampPeriodic(0, 10);  // fires at 0, 10, 20, 30, ...
        EXPECT_EQ(hz.cycle(), 30);
    }
    {
        HorizonTracker hz(30, 1000);
        hz.clampPeriodic(0, 10);  // from is itself on the grid
        EXPECT_EQ(hz.cycle(), 30);
    }
    {
        HorizonTracker hz(5, 1000);
        hz.clampPeriodic(8, 10);  // anchor in the future
        EXPECT_EQ(hz.cycle(), 8);
    }
    {
        HorizonTracker hz(5, 1000);
        hz.clampPeriodic(3, 0);  // disabled interval: no-op
        EXPECT_EQ(hz.cycle(), 1000);
    }
}

/** Step net for cycles [from, to). */
void
stepRange(Network& net, std::int64_t from, std::int64_t to)
{
    for (std::int64_t c = from; c < to; ++c)
        net.step(c);
}

TEST(SkipAhead, IdleOnlyAfterEveryCreditIsHome)
{
    // After the sink ejects the tail flit, ejection credits are still
    // in flight back to the router: idle() must stay false until the
    // credit pipes drain, or a skip would erase the credit returns.
    // Checked by requiring full credit occupancy the moment idle()
    // first turns true.
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 2);
    cfg.setInt("mesh_height", 2);
    Network net(cfg);
    Network fresh(cfg);
    EXPECT_TRUE(net.idle());

    Packet p;
    p.id = 1;
    p.src = 0;
    p.dest = 3;
    p.size = 4;
    p.createTime = 0;
    net.endpoint(0).enqueue(p);
    EXPECT_FALSE(net.idle());

    std::int64_t first_idle = -1;
    for (std::int64_t c = 0; c < 200; ++c) {
        net.step(c);
        if (net.idle()) {
            first_idle = c;
            break;
        }
    }
    ASSERT_GE(first_idle, 0) << "network never quiesced";
    EXPECT_EQ(net.totalFlitsEjected(), 4u);
    EXPECT_EQ(net.totalFlitsInFlight(), 0);
    for (int n = 0; n < 4; ++n) {
        EXPECT_EQ(net.router(n).totalOutputCredits(),
                  fresh.router(n).totalOutputCredits())
            << "idle() reported true with credits missing at router "
            << n;
    }
    // And a quiescent network must know its next link arrival is
    // "never".
    EXPECT_EQ(net.nextLinkArrivalCycle(),
              std::numeric_limits<std::int64_t>::max());
}

TEST(SkipAhead, SkipToIsAnExactNoOpOverAnIdleGap)
{
    // Reference: a packet at cycle 0, a dead gap, a packet at cycle
    // 500, stepping every cycle. Skip run: jump the gap in one
    // skipTo. All totals and per-router counters must agree.
    auto drive = [](bool skip) {
        SimConfig cfg = defaultConfig();
        Network net(cfg);
        auto inject = [&](std::uint64_t id, std::int64_t cycle) {
            Packet p;
            p.id = id;
            p.src = 5;
            p.dest = 58;
            p.size = 3;
            p.createTime = cycle;
            net.endpoint(5).enqueue(p);
        };
        inject(1, 0);
        std::int64_t c = 0;
        while (c < 500) {
            if (c == 500 - 1)
                break;
            net.step(c);
            ++c;
            if (skip && net.idle()) {
                HorizonTracker hz(c, 500);
                EXPECT_TRUE(hz.skips());
                net.skipTo(hz.cycle());
                c = hz.cycle();
                break;
            }
        }
        stepRange(net, c, 500);
        inject(2, 500);
        stepRange(net, 500, 600);
        return std::vector<std::uint64_t>{
            net.totalFlitsInjected(), net.totalFlitsEjected(),
            static_cast<std::uint64_t>(net.totalFlitsInFlight()),
            net.totalFlitsSent(),
            net.router(5).counters().vcAllocSuccess,
            net.router(5).counters().flitsTraversed};
    };
    EXPECT_EQ(drive(false), drive(true));
}

TEST(SkipAhead, PacketInjectedExactlyAtTheHorizonIsNotLost)
{
    // The landing cycle is the first cycle the schedule fires again:
    // the jump must land exactly there (not one past), and the fire
    // must inject normally. Run a schedule-driven workload with and
    // without skipping; totals must agree and the skip run must have
    // actually jumped.
    auto drive = [](bool skip, std::int64_t* skipped) {
        SimConfig cfg = defaultConfig();
        Network net(cfg);
        const int nodes = net.mesh().numNodes();
        Rng gen(31);
        InjectionSchedule sched(nodes, 0.0005, gen);
        const std::int64_t cycles = 4000;
        std::uint64_t id = 0;
        std::uint64_t drained = 0;
        std::uint64_t hops = 0;
        for (std::int64_t cycle = 0; cycle < cycles; ++cycle) {
            for (int slot; (slot = sched.popDue(cycle)) >= 0;) {
                const int dest =
                    static_cast<int>(gen.nextBounded(nodes));
                sched.scheduleNext(slot, cycle, gen);
                if (dest == slot)
                    continue;
                Packet p;
                p.id = ++id;
                p.src = slot;
                p.dest = dest;
                p.size = 2;
                p.createTime = cycle;
                net.endpoint(slot).enqueue(p);
            }
            net.step(cycle);
            for (int n = 0; n < nodes; ++n) {
                for (const EjectedPacket& e :
                     net.endpoint(n).drainEjected()) {
                    ++drained;
                    hops += static_cast<std::uint64_t>(e.hops);
                }
            }
            if (skip && net.idle()) {
                HorizonTracker hz(cycle + 1, cycles);
                hz.clamp(sched.nextFireCycle());
                if (hz.skips()) {
                    net.skipTo(hz.cycle());
                    *skipped += hz.cycle() - (cycle + 1);
                    cycle = hz.cycle() - 1;
                }
            }
        }
        return std::vector<std::uint64_t>{id, drained, hops,
                                          net.totalFlitsInjected(),
                                          net.totalFlitsEjected()};
    };
    std::int64_t skipped_ref = 0;
    std::int64_t skipped = 0;
    const auto ref = drive(false, &skipped_ref);
    const auto fast = drive(true, &skipped);
    EXPECT_EQ(ref, fast);
    EXPECT_GT(ref[0], 0u) << "workload injected nothing";
    EXPECT_GT(skipped, 0) << "skip run never skipped";
    EXPECT_EQ(skipped_ref, 0);
}

/** Recorder over a tiny idle network, interval 50, no stream. */
std::unique_ptr<FlightRecorder>
makeRecorder(const Network& net)
{
    TimeseriesConfig tc;
    tc.enabled = false;
    tc.warmupAuto = true;  // active() without touching the filesystem
    tc.interval = 50;
    return std::make_unique<FlightRecorder>(net, tc, nullptr);
}

TEST(SkipAhead, RecorderClosesEveryWindowInsideAJumpedSpan)
{
    // tick() lands 7.5 windows past the last tick: all seven elapsed
    // boundaries must close, in order, at their exact cycles, as
    // empty windows.
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 2);
    cfg.setInt("mesh_height", 2);
    Network net(cfg);
    auto rec = makeRecorder(net);

    rec->tick(374);  // as if the clock jumped 0 -> 374
    const auto& ws = rec->windows();
    ASSERT_EQ(ws.size(), 7u);
    for (std::size_t i = 0; i < ws.size(); ++i) {
        EXPECT_EQ(ws[i].index, static_cast<std::int64_t>(i));
        EXPECT_EQ(ws[i].startCycle, static_cast<std::int64_t>(i) * 50);
        EXPECT_EQ(ws[i].endCycle,
                  static_cast<std::int64_t>(i + 1) * 50);
        EXPECT_EQ(ws[i].offeredFlits, 0u);
        EXPECT_EQ(ws[i].acceptedFlits, 0u);
        EXPECT_EQ(ws[i].latencyCount, 0u);
        EXPECT_EQ(ws[i].activeNodes, 0);
    }
    EXPECT_EQ(rec->nextWindowBoundary(), 399);
    // Empty windows are no evidence of steady state.
    EXPECT_FALSE(rec->detector().converged());
}

TEST(SkipAhead, JumpedWindowRecordsAreByteIdenticalToPerCycleOnes)
{
    // Same network, same (absent) traffic: one recorder ticked every
    // cycle, one ticked once at the end of the span. The serialized
    // window records must match byte for byte.
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 2);
    cfg.setInt("mesh_height", 2);
    Network net(cfg);
    auto per_cycle = makeRecorder(net);
    auto jumped = makeRecorder(net);

    for (std::int64_t c = 0; c <= 374; ++c)
        per_cycle->tick(c);
    jumped->tick(374);

    ASSERT_EQ(per_cycle->windows().size(), jumped->windows().size());
    for (std::size_t i = 0; i < jumped->windows().size(); ++i) {
        EXPECT_EQ(per_cycle->windows()[i], jumped->windows()[i]);
        EXPECT_EQ(per_cycle->windowJson(per_cycle->windows()[i]),
                  jumped->windowJson(jumped->windows()[i]));
    }
}

/** Read a whole file; empty string when it cannot be opened. */
std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

SimConfig
lowLoadRunConfig(const char* step_mode, bool skip_ahead)
{
    SimConfig cfg = defaultConfig();
    cfg.set("routing", "footprint");
    cfg.set("traffic", "uniform");
    cfg.setDouble("injection_rate", 0.002);
    cfg.set("step_mode", step_mode);
    cfg.setInt("threads",
               std::string(step_mode) == "sharded" ? 4 : 1);
    cfg.setInt("warmup_cycles", 400);
    cfg.setInt("measure_cycles", 2000);
    cfg.setInt("drain_cycles", 3000);
    cfg.setBool("skip_ahead", skip_ahead);
    return cfg;
}

/** The stats fields a skip must leave untouched, flattened. */
std::vector<double>
statsFingerprint(const RunStats& s)
{
    return {static_cast<double>(s.cyclesRun),
            static_cast<double>(s.measuredCreated),
            static_cast<double>(s.measuredEjected),
            s.latency.mean(),
            s.latency.max(),
            static_cast<double>(s.latencyHdr.percentile(0.99)),
            s.hops.mean(),
            s.offeredFlitsPerNodeCycle,
            s.acceptedFlitsPerNodeCycle,
            s.drained ? 1.0 : 0.0};
}

TEST(SkipAhead, TrafficManagerRunIsInvariantUnderSkipAndTimeseries)
{
    // Full end-to-end invariance at the driver level: the measured
    // statistics AND the streamed timeseries bytes (window boundaries
    // fall inside jumped spans at this load) must be identical with
    // skip-ahead on and off; the skip run must actually skip.
    SimConfig off = lowLoadRunConfig("activity", false);
    off.setBool("timeseries", true);
    off.setInt("timeseries_interval", 300);
    off.set("timeseries_out", "skip_ts_off.jsonl");
    const RunStats s_off = runExperiment(off);

    SimConfig on = lowLoadRunConfig("activity", true);
    on.setBool("timeseries", true);
    on.setInt("timeseries_interval", 300);
    on.set("timeseries_out", "skip_ts_on.jsonl");
    const RunStats s_on = runExperiment(on);

    EXPECT_EQ(s_off.cyclesSkipped, 0);
    EXPECT_GT(s_on.cyclesSkipped, 0);
    EXPECT_EQ(statsFingerprint(s_off), statsFingerprint(s_on));

    // Drop the header line before comparing: it stamps a hash of the
    // full config, which differs in the skip_ahead key by design.
    // Every window record after it must match byte for byte.
    auto records = [](const std::string& bytes) {
        return bytes.substr(bytes.find('\n') + 1);
    };
    const std::string bytes_off = slurp("skip_ts_off.jsonl");
    const std::string bytes_on = slurp("skip_ts_on.jsonl");
    ASSERT_FALSE(bytes_off.empty());
    EXPECT_EQ(records(bytes_off), records(bytes_on));
    std::remove("skip_ts_off.jsonl");
    std::remove("skip_ts_on.jsonl");
}

TEST(SkipAhead, ShardedSkipMatchesFullPerCycleStepping)
{
    // Shard-seam horizons: the sharded epilogue computes idleness
    // over the union of shards, so a jump must be safe even when the
    // last in-flight flit crossed a seam. Compare against serial full
    // stepping with skipping off.
    const RunStats ref = runExperiment(lowLoadRunConfig("full", false));
    const RunStats fast =
        runExperiment(lowLoadRunConfig("sharded", true));
    EXPECT_GT(fast.cyclesSkipped, 0);
    EXPECT_EQ(statsFingerprint(ref), statsFingerprint(fast));
}

TEST(SkipAhead, PeriodicObserversSeeTheirExactDueCycles)
{
    // Auditor and watchdog run on fixed intervals; with skipping on
    // at near-zero load their due cycles sit inside idle spans. The
    // run must land on each due cycle: equal event/violation counts
    // with skip on and off prove no observation was lost or shifted.
    auto run = [](bool skip) {
        SimConfig cfg = lowLoadRunConfig("activity", skip);
        cfg.setBool("audit", true);  // enables auditor + watchdog
        cfg.setInt("audit_interval", 171);
        cfg.setInt("watchdog_interval", 133);
        return runExperiment(cfg);
    };
    const RunStats off = run(false);
    const RunStats on = run(true);
    EXPECT_GT(on.cyclesSkipped, 0);
    EXPECT_EQ(off.auditViolations, on.auditViolations);
    EXPECT_EQ(off.watchdogEvents, on.watchdogEvents);
    EXPECT_EQ(statsFingerprint(off), statsFingerprint(on));
}

TEST(SkipAhead, ConfigKeyDefaultsOnAndDisables)
{
    EXPECT_TRUE(defaultConfig().getBool("skip_ahead"));
    const RunStats off =
        runExperiment(lowLoadRunConfig("activity", false));
    EXPECT_EQ(off.cyclesSkipped, 0);
}

} // namespace
} // namespace footprint
