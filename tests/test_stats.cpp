/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/hdr_histogram.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace footprint {
namespace {

TEST(StatAccumulator, EmptyIsZero)
{
    StatAccumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 0.0);
    EXPECT_DOUBLE_EQ(acc.max(), 0.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(StatAccumulator, SingleSample)
{
    StatAccumulator acc;
    acc.add(5.0);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 5.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulator, MeanMinMax)
{
    StatAccumulator acc;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        acc.add(v);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 4.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(StatAccumulator, Variance)
{
    StatAccumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_NEAR(acc.variance(), 4.0, 1e-9);
    EXPECT_NEAR(acc.stddev(), 2.0, 1e-9);
}

TEST(StatAccumulator, NegativeSamples)
{
    StatAccumulator acc;
    acc.add(-3.0);
    acc.add(3.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), -3.0);
    EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(StatAccumulator, ResetClears)
{
    StatAccumulator acc;
    acc.add(1.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(StatAccumulator, MergeCombinesSamples)
{
    StatAccumulator a;
    StatAccumulator b;
    a.add(1.0);
    a.add(2.0);
    b.add(3.0);
    b.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(StatAccumulator, MergeWithEmpty)
{
    StatAccumulator a;
    StatAccumulator b;
    a.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 2.0);
}

TEST(StatAccumulator, MergeEmptyIntoNonEmpty)
{
    StatAccumulator empty;
    StatAccumulator b;
    b.add(-1.0);
    b.add(5.0);
    empty.merge(b);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
    EXPECT_DOUBLE_EQ(empty.min(), -1.0);
    EXPECT_DOUBLE_EQ(empty.max(), 5.0);
}

TEST(StatAccumulator, MergeBothEmptyStaysEmpty)
{
    StatAccumulator a;
    StatAccumulator b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(StatAccumulator, MergeMatchesSingleAccumulator)
{
    // Merging two halves must reproduce sum/min/max/variance of one
    // accumulator fed every sample.
    const std::vector<double> samples{2.0, 4.0, 4.0, 4.0,
                                      5.0, 5.0, 7.0, 9.0};
    StatAccumulator whole;
    StatAccumulator lo;
    StatAccumulator hi;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        whole.add(samples[i]);
        (i < samples.size() / 2 ? lo : hi).add(samples[i]);
    }
    lo.merge(hi);
    EXPECT_EQ(lo.count(), whole.count());
    EXPECT_DOUBLE_EQ(lo.sum(), whole.sum());
    EXPECT_DOUBLE_EQ(lo.min(), whole.min());
    EXPECT_DOUBLE_EQ(lo.max(), whole.max());
    EXPECT_NEAR(lo.variance(), whole.variance(), 1e-12);
    EXPECT_NEAR(lo.variance(), 4.0, 1e-12);
}

TEST(Histogram, BinsSamplesCorrectly)
{
    Histogram h(10.0, 5);
    h.add(0.0);
    h.add(9.99);
    h.add(10.0);
    h.add(45.0);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, OverflowBin)
{
    Histogram h(1.0, 4);
    h.add(100.0);
    h.add(3.5);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(Histogram, NegativeClampsToFirstBin)
{
    Histogram h(1.0, 4);
    h.add(-5.0);
    EXPECT_EQ(h.binCount(0), 1u);
}

TEST(Histogram, ResetClears)
{
    Histogram h(1.0, 4);
    h.add(2.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.binCount(2), 0u);
}

TEST(Histogram, PercentileMedian)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 1.5);
}

TEST(Histogram, PercentileEmptyIsZero)
{
    Histogram h(1.0, 4);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, PercentileExtremesHitBinEdges)
{
    Histogram h(10.0, 10);
    h.add(25.0);  // bin 2: [20, 30)
    h.add(27.0);
    h.add(44.0);  // bin 4: [40, 50)
    // fraction 0 -> lower edge of the first non-empty bin.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 20.0);
    // fraction 1 -> upper edge of the last non-empty bin.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 50.0);
    // Out-of-range fractions clamp.
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), 20.0);
    EXPECT_DOUBLE_EQ(h.percentile(2.0), 50.0);
}

TEST(Histogram, PercentileInterpolatesWithinBin)
{
    Histogram h(10.0, 10);
    for (int i = 0; i < 4; ++i)
        h.add(15.0);  // all four samples in bin 1: [10, 20)
    // Quartile targets interpolate across the single occupied bin
    // instead of reporting its upper edge for every fraction.
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 12.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 15.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.75), 17.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 20.0);
}

TEST(Histogram, PercentileAllOverflowReportsThreshold)
{
    Histogram h(1.0, 4);
    h.add(100.0);
    h.add(200.0);
    // Overflow sample values are unknown; every fraction reports the
    // histogram's upper resolution limit.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
}

TEST(Histogram, PercentileMixedOverflow)
{
    Histogram h(1.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(9.0);  // overflow
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    // Fractions inside the binned range interpolate normally...
    EXPECT_NEAR(h.percentile(0.5), 1.5, 1e-12);
    // ...and fractions past the binned samples hit the threshold.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
}

TEST(Histogram, ToStringListsNonEmptyBins)
{
    Histogram h(1.0, 4);
    h.add(1.5);
    const std::string s = h.toString();
    EXPECT_NE(s.find("1-2: 1"), std::string::npos);
    EXPECT_EQ(s.find("0-1"), std::string::npos);
}

TEST(Histogram, PercentileP999ResolvesDeepTail)
{
    // 1000 distinct samples, one per bin: p999 must land in the last
    // occupied bin, not collapse into p99's.
    Histogram h(1.0, 1000);
    for (int i = 0; i < 1000; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.percentile(0.999), 999.0, 1.5);
    EXPECT_GT(h.percentile(0.999), h.percentile(0.99) + 5.0);
}

// --- HdrHistogram (log-bucketed tail-latency histogram). ---

/** Exact quantile of a sorted sample set, percentile()'s convention. */
std::uint64_t
exactQuantile(const std::vector<std::uint64_t>& sorted, double f)
{
    const double target = f * static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(target));
    if (rank > 0)
        --rank;
    return sorted[std::min(rank, sorted.size() - 1)];
}

TEST(HdrHistogram, EmptyIsZero)
{
    HdrHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(HdrHistogram, LinearRegionIsExact)
{
    HdrHistogram h;
    for (std::uint64_t v = 0; v < 256; ++v)
        h.add(v);
    // Values below the sub-bucket count have one bucket each.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 127.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 255.0);
    EXPECT_EQ(h.max(), 255u);
    EXPECT_DOUBLE_EQ(h.mean(), 127.5);
}

TEST(HdrHistogram, QuantilesWithinOnePercentOfExact)
{
    // Cross-validation satellite: a heavy-tailed deterministic sample
    // set spanning five decades; every reported quantile must be
    // within 1% relative of the exact sorted-sample quantile (the
    // geometry's own bound is 2^-8 = 0.39%).
    HdrHistogram h;
    Rng gen(99);
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 20000; ++i) {
        // Bulk near 100..1100, tail stretched by squaring.
        const std::uint64_t u = gen.nextBounded(1000) + 100;
        const std::uint64_t v = (i % 100 == 0) ? u * u : u;
        samples.push_back(v);
        h.add(v);
    }
    std::sort(samples.begin(), samples.end());
    ASSERT_EQ(h.count(), samples.size());
    for (const double f : {0.05, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999}) {
        const auto exact =
            static_cast<double>(exactQuantile(samples, f));
        const double got = h.percentile(f);
        EXPECT_NEAR(got, exact, 0.01 * exact + 0.5)
            << "fraction " << f;
    }
    EXPECT_LE(h.relativeErrorBound(), 0.01);
}

TEST(HdrHistogram, OverflowClampsIntoTopBucket)
{
    HdrHistogram h(1 << 10);
    h.add(std::uint64_t{500});
    h.add(std::uint64_t{1} << 40);  // far past max_value
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.overflowCount(), 1u);
    // The clamped sample still shows up in the top of the range.
    EXPECT_EQ(h.max(), std::uint64_t{1} << 10);
    EXPECT_GE(h.percentile(1.0), 1000.0);
}

TEST(HdrHistogram, NegativeAndFractionalDoublesClamp)
{
    HdrHistogram h;
    h.add(-3.0);
    h.add(2.6);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 3.0);  // rounded to nearest
}

TEST(HdrHistogram, MergeMatchesCombinedSamples)
{
    HdrHistogram a, b, all;
    Rng gen(7);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = gen.nextBounded(1 << 20);
        (i % 2 == 0 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.max(), all.max());
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    for (const double f : {0.1, 0.5, 0.99, 0.999})
        EXPECT_DOUBLE_EQ(a.percentile(f), all.percentile(f));
}

TEST(HdrHistogram, MergeRejectsIncompatibleGeometry)
{
    HdrHistogram narrow(1 << 10), wide(1ULL << 40);
    wide.add(std::uint64_t{42});
    narrow.merge(wide);  // dropped, not corrupted
    EXPECT_EQ(narrow.count(), 0u);
}

TEST(HdrHistogram, ResetClears)
{
    HdrHistogram h;
    h.add(std::uint64_t{1000});
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

} // namespace
} // namespace footprint
