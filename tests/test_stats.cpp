/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/stats.hpp"

namespace footprint {
namespace {

TEST(StatAccumulator, EmptyIsZero)
{
    StatAccumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 0.0);
    EXPECT_DOUBLE_EQ(acc.max(), 0.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(StatAccumulator, SingleSample)
{
    StatAccumulator acc;
    acc.add(5.0);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 5.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulator, MeanMinMax)
{
    StatAccumulator acc;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        acc.add(v);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 4.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(StatAccumulator, Variance)
{
    StatAccumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_NEAR(acc.variance(), 4.0, 1e-9);
    EXPECT_NEAR(acc.stddev(), 2.0, 1e-9);
}

TEST(StatAccumulator, NegativeSamples)
{
    StatAccumulator acc;
    acc.add(-3.0);
    acc.add(3.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), -3.0);
    EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(StatAccumulator, ResetClears)
{
    StatAccumulator acc;
    acc.add(1.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(StatAccumulator, MergeCombinesSamples)
{
    StatAccumulator a;
    StatAccumulator b;
    a.add(1.0);
    a.add(2.0);
    b.add(3.0);
    b.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(StatAccumulator, MergeWithEmpty)
{
    StatAccumulator a;
    StatAccumulator b;
    a.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 2.0);
}

TEST(StatAccumulator, MergeEmptyIntoNonEmpty)
{
    StatAccumulator empty;
    StatAccumulator b;
    b.add(-1.0);
    b.add(5.0);
    empty.merge(b);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
    EXPECT_DOUBLE_EQ(empty.min(), -1.0);
    EXPECT_DOUBLE_EQ(empty.max(), 5.0);
}

TEST(StatAccumulator, MergeBothEmptyStaysEmpty)
{
    StatAccumulator a;
    StatAccumulator b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(StatAccumulator, MergeMatchesSingleAccumulator)
{
    // Merging two halves must reproduce sum/min/max/variance of one
    // accumulator fed every sample.
    const std::vector<double> samples{2.0, 4.0, 4.0, 4.0,
                                      5.0, 5.0, 7.0, 9.0};
    StatAccumulator whole;
    StatAccumulator lo;
    StatAccumulator hi;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        whole.add(samples[i]);
        (i < samples.size() / 2 ? lo : hi).add(samples[i]);
    }
    lo.merge(hi);
    EXPECT_EQ(lo.count(), whole.count());
    EXPECT_DOUBLE_EQ(lo.sum(), whole.sum());
    EXPECT_DOUBLE_EQ(lo.min(), whole.min());
    EXPECT_DOUBLE_EQ(lo.max(), whole.max());
    EXPECT_NEAR(lo.variance(), whole.variance(), 1e-12);
    EXPECT_NEAR(lo.variance(), 4.0, 1e-12);
}

TEST(Histogram, BinsSamplesCorrectly)
{
    Histogram h(10.0, 5);
    h.add(0.0);
    h.add(9.99);
    h.add(10.0);
    h.add(45.0);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, OverflowBin)
{
    Histogram h(1.0, 4);
    h.add(100.0);
    h.add(3.5);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(Histogram, NegativeClampsToFirstBin)
{
    Histogram h(1.0, 4);
    h.add(-5.0);
    EXPECT_EQ(h.binCount(0), 1u);
}

TEST(Histogram, ResetClears)
{
    Histogram h(1.0, 4);
    h.add(2.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.binCount(2), 0u);
}

TEST(Histogram, PercentileMedian)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 1.5);
}

TEST(Histogram, PercentileEmptyIsZero)
{
    Histogram h(1.0, 4);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, PercentileExtremesHitBinEdges)
{
    Histogram h(10.0, 10);
    h.add(25.0);  // bin 2: [20, 30)
    h.add(27.0);
    h.add(44.0);  // bin 4: [40, 50)
    // fraction 0 -> lower edge of the first non-empty bin.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 20.0);
    // fraction 1 -> upper edge of the last non-empty bin.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 50.0);
    // Out-of-range fractions clamp.
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), 20.0);
    EXPECT_DOUBLE_EQ(h.percentile(2.0), 50.0);
}

TEST(Histogram, PercentileInterpolatesWithinBin)
{
    Histogram h(10.0, 10);
    for (int i = 0; i < 4; ++i)
        h.add(15.0);  // all four samples in bin 1: [10, 20)
    // Quartile targets interpolate across the single occupied bin
    // instead of reporting its upper edge for every fraction.
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 12.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 15.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.75), 17.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 20.0);
}

TEST(Histogram, PercentileAllOverflowReportsThreshold)
{
    Histogram h(1.0, 4);
    h.add(100.0);
    h.add(200.0);
    // Overflow sample values are unknown; every fraction reports the
    // histogram's upper resolution limit.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
}

TEST(Histogram, PercentileMixedOverflow)
{
    Histogram h(1.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(9.0);  // overflow
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    // Fractions inside the binned range interpolate normally...
    EXPECT_NEAR(h.percentile(0.5), 1.5, 1e-12);
    // ...and fractions past the binned samples hit the threshold.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
}

TEST(Histogram, ToStringListsNonEmptyBins)
{
    Histogram h(1.0, 4);
    h.add(1.5);
    const std::string s = h.toString();
    EXPECT_NE(s.find("1-2: 1"), std::string::npos);
    EXPECT_EQ(s.find("0-1"), std::string::npos);
}

} // namespace
} // namespace footprint
