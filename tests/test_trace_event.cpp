/**
 * @file
 * Tests for the Chrome trace-event exporter: JSON shape of the
 * streaming writer, the counter-sink channel filter, and end-to-end
 * timeline production through a config-driven TrafficManager run.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "network/traffic_manager.hpp"
#include "obs/run_metadata.hpp"
#include "obs/trace_event.hpp"
#include "sim/config.hpp"

namespace footprint {
namespace {

std::size_t
countOccurrences(const std::string& hay, const std::string& needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle);
         pos != std::string::npos; pos = hay.find(needle, pos + 1))
        ++n;
    return n;
}

TEST(ChromeTraceWriter, EmptyTraceIsAValidDocument)
{
    std::ostringstream os;
    {
        ChromeTraceWriter w(os);
    }
    const std::string doc = os.str();
    EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ms\","
                        "\"traceEvents\":[", 0), 0u);
    EXPECT_NE(doc.find("]}"), std::string::npos);
}

TEST(ChromeTraceWriter, EmitsAllEventKinds)
{
    std::ostringstream os;
    ChromeTraceWriter w(os);
    w.processName(1, "packets");
    w.threadName(1, 7, "pkt 7");
    w.completeEvent("pkt", 1, 7, 100, 25, "\"hops\":3");
    w.instantEvent("phase: measure", 300);
    w.counterEvent("net.vc_occ", 2, 300, 12.5);
    w.close();
    EXPECT_EQ(w.eventsWritten(), 5u);

    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"name\":\"process_name\",\"ph\":\"M\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"thread_name\",\"ph\":\"M\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ts\":100"), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":25"), std::string::npos);
    EXPECT_NE(doc.find("\"args\":{\"hops\":3}"), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
    // No trailing comma before the closing bracket.
    EXPECT_EQ(doc.find(",\n]"), std::string::npos);
}

TEST(ChromeTraceWriter, CloseIsIdempotentAndAppendsMetadata)
{
    std::ostringstream os;
    ChromeTraceWriter w(os);
    RunMetadata meta;
    meta.seed = 99;
    meta.configHash = "cafe";
    meta.gitDescribe = "test";
    w.setMeta(meta);
    w.instantEvent("x", 1);
    w.close();
    w.close();
    const std::string doc = os.str();
    EXPECT_EQ(countOccurrences(doc, "\"metadata\":"), 1u);
    EXPECT_NE(doc.find("\"seed\":99"), std::string::npos);
    EXPECT_NE(doc.find("\"config_hash\":\"cafe\""), std::string::npos);
}

TEST(ChromeCounterSink, ForwardsOnlyNetworkAggregateChannels)
{
    std::ostringstream os;
    ChromeTraceWriter w(os);
    ChromeCounterSink sink(&w);
    sink.writeHeader({"net.vc_occ", "r0.vc_occ", "net.link_util",
                      "ep3.inj_q"});
    sink.writeRow(100, "measure", {1.0, 2.0, 3.0, 4.0});
    sink.writeRow(200, "measure", {5.0, 6.0, 7.0, 8.0});
    w.close();

    const std::string doc = os.str();
    EXPECT_EQ(countOccurrences(doc, "\"name\":\"net.vc_occ\""), 2u);
    EXPECT_EQ(countOccurrences(doc, "\"name\":\"net.link_util\""), 2u);
    EXPECT_EQ(doc.find("r0.vc_occ"), std::string::npos);
    EXPECT_EQ(doc.find("ep3.inj_q"), std::string::npos);
    EXPECT_NE(doc.find("\"ts\":100"), std::string::npos);
    EXPECT_NE(doc.find("\"value\":1"), std::string::npos);
}

TEST(ChromeTraceIntegration, ConfigDrivenRunWritesTimeline)
{
    namespace fs = std::filesystem;
    const fs::path path =
        fs::temp_directory_path() / "fp_test_trace.json";
    fs::remove(path);

    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setDouble("injection_rate", 0.1);
    cfg.setInt("warmup_cycles", 100);
    cfg.setInt("measure_cycles", 300);
    cfg.setInt("drain_cycles", 2000);
    cfg.setBool("chrome_trace", true);
    cfg.set("chrome_trace_out", path.string());

    const RunStats stats = runExperiment(cfg);
    EXPECT_TRUE(stats.drained);
    ASSERT_TRUE(fs::exists(path));

    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string doc = buf.str();

    EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
    // Packet lifecycles: whole-packet slices + per-hop slices on the
    // "packets" process, plus the phase markers from the hub.
    EXPECT_NE(doc.find("\"name\":\"process_name\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"pkt\""), std::string::npos);
    EXPECT_GT(countOccurrences(doc, "\"ph\":\"X\""), 10u);
    EXPECT_NE(doc.find("\"name\":\"phase: measure\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"phase: drain\""),
              std::string::npos);
    // Run metadata lands in the document footer.
    EXPECT_NE(doc.find("\"metadata\":{\"seed\":"), std::string::npos);
    fs::remove(path);
}

} // namespace
} // namespace footprint
