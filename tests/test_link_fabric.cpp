/**
 * @file
 * Directed tests for the flat link/credit fabric (DESIGN.md §17):
 * credit round-trips through bound pipes, in-flight timestamp
 * ordering, the horizon next-arrival query across a shard seam, and
 * the identity-value padding contract of the combined lanes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "network/link_fabric.hpp"
#include "network/network.hpp"
#include "router/channel.hpp"
#include "sim/config.hpp"

namespace footprint {
namespace {

SimConfig
meshConfig(const std::string& routing, int threads = 1)
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    cfg.set("routing", routing);
    if (threads > 1) {
        cfg.set("step_mode", "sharded");
        cfg.setInt("threads", threads);
    }
    return cfg;
}

Packet
packet(std::uint64_t id, int src, int dest, int size,
       std::int64_t cycle)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dest = dest;
    p.size = size;
    p.createTime = cycle;
    return p;
}

/** Earliest head arrival over every pipe, via the channel objects. */
std::int64_t
minHeadReadyViaChannels(const Network& net)
{
    std::int64_t earliest = FlitChannel::kNoArrival;
    for (const auto& l : net.links()) {
        earliest = std::min(earliest, l.flit->headReadyCycle());
        earliest = std::min(earliest, l.credit->headReadyCycle());
    }
    return earliest;
}

TEST(LinkFabric, CreditRoundTripThroughBoundPipes)
{
    LinkFabric fab;
    // One flit channel written by node 0, its credit return written by
    // node 1 (the flit receiver), both latency 2.
    fab.build({{0, 2, 1}}, {{1, 2, 1}});
    FlitChannel& flit = fab.flit(0);
    CreditChannel& credit = fab.credit(0);

    Flit f;
    f.vc = 3;
    flit.send(f, 0);  // sent at cycle 0, arrives at 0 + 2
    EXPECT_EQ(flit.headReadyCycle(), 2);
    EXPECT_FALSE(flit.receive(1).has_value());
    auto got = flit.receive(2);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->vc, 3);
    EXPECT_EQ(flit.headReadyCycle(), FlitChannel::kNoArrival);

    // Receiver returns the credit; it lands latency cycles later.
    credit.send(Credit{got->vc}, 2);
    EXPECT_EQ(credit.headReadyCycle(), 4);
    EXPECT_EQ(fab.minHeadReady(), 4);
    auto back = credit.receive(4);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->vc, 3);
    EXPECT_TRUE(credit.empty());
    EXPECT_EQ(fab.minHeadReady(), FlitChannel::kNoArrival);
    EXPECT_EQ(fab.flitSent(0), 1u);
}

TEST(LinkFabric, InFlightTimestampsStayOrdered)
{
    LinkFabric fab;
    // maxRate 2 at latency 3 -> ring holds up to 8 concurrent flits.
    fab.build({{0, 3, 2}}, {{1, 1, 1}});
    FlitChannel& ch = fab.flit(0);

    for (int cycle = 0; cycle < 3; ++cycle) {
        for (int k = 0; k < 2; ++k) {
            Flit f;
            f.vc = cycle * 2 + k;
            ch.send(f, cycle);
        }
    }
    ASSERT_EQ(ch.inFlightCount(), 6u);
    // Arrival timestamps are FIFO-ordered and nondecreasing.
    for (std::size_t i = 1; i < ch.inFlightCount(); ++i)
        EXPECT_LE(ch.inFlightReadyCycle(i - 1),
                  ch.inFlightReadyCycle(i));
    EXPECT_EQ(ch.headReadyCycle(), ch.inFlightReadyCycle(0));

    // Draining pops in send order and re-publishes the next arrival.
    int expect_vc = 0;
    for (std::int64_t cycle = 3; cycle <= 5; ++cycle) {
        for (int k = 0; k < 2; ++k) {
            auto f = ch.receive(cycle);
            ASSERT_TRUE(f.has_value()) << "cycle " << cycle;
            EXPECT_EQ(f->vc, expect_vc++);
        }
        EXPECT_FALSE(ch.receive(cycle).has_value());
    }
    EXPECT_EQ(ch.headReadyCycle(), FlitChannel::kNoArrival);
}

TEST(LinkFabric, NextArrivalMatchesChannelsAcrossShardSeam)
{
    // Two shards on a 4x4 mesh: nodes 0..7 vs 8..15. A packet from
    // node 0 to node 15 crosses the seam, so in-flight state straddles
    // both shards' lane regions; the fabric's single-lane min must
    // still equal the min over every channel object at every cycle.
    Network net(meshConfig("dor", 2));
    net.endpoint(0).enqueue(packet(1, 0, 15, 4, 0));
    bool saw_inflight = false;
    for (std::int64_t cycle = 0; cycle < 60; ++cycle) {
        net.step(cycle);
        EXPECT_EQ(net.nextLinkArrivalCycle(),
                  minHeadReadyViaChannels(net))
            << "cycle " << cycle;
        if (net.totalFlitsInFlight() > 0)
            saw_inflight = true;
        for (int n = 0; n < net.mesh().numNodes(); ++n)
            net.endpoint(n).drainEjected();
    }
    EXPECT_TRUE(saw_inflight);
    EXPECT_EQ(net.totalFlitsEjected(), 4u);
}

TEST(LinkFabric, FabricAgreesWithLinkRecords)
{
    Network net(meshConfig("oddeven"));
    const LinkFabric& fab = net.linkFabric();
    ASSERT_EQ(fab.flitCount(), net.links().size());
    ASSERT_EQ(fab.creditCount(), net.links().size());
    for (const auto& l : net.links()) {
        // The record's pipe pointers are the fabric's own channels.
        EXPECT_EQ(l.flit, &fab.flit(l.flitId));
        EXPECT_EQ(l.credit, &fab.credit(l.creditId));
        // Writer-node layout: the flit writer is the link source, the
        // credit writer is the flit receiver returning credits.
        EXPECT_EQ(fab.flitWriter(l.flitId), l.srcNode);
        EXPECT_EQ(fab.creditWriter(l.creditId), l.dstNode);
        EXPECT_EQ(fab.flitSent(l.flitId), l.flit->sentCount());
    }
}

TEST(LinkFabric, LanePaddingHoldsIdentityValues)
{
    Network net(meshConfig("dor"));
    const LinkFabric& fab = net.linkFabric();

    // Quiescent network: every real slot and every padding slot holds
    // the respective identity, so the batched queries see "nothing".
    EXPECT_EQ(fab.minHeadReady(), FlitChannel::kNoArrival);
    EXPECT_EQ(fab.totalFlitsSent(), 0u);
    for (const std::int64_t v : fab.headReadyLane())
        EXPECT_EQ(v, FlitChannel::kNoArrival);
    for (const std::uint64_t v : fab.sentLane())
        EXPECT_EQ(v, 0u);
    EXPECT_LE(fab.flitLaneEnd(), fab.headReadyLane().size());

    // After traffic, the batched sums still equal the per-channel
    // sums: padding slots stayed at their identities.
    net.endpoint(0).enqueue(packet(1, 0, 5, 3, 0));
    for (std::int64_t cycle = 0; cycle < 40; ++cycle) {
        net.step(cycle);
        std::uint64_t sent = 0;
        for (const auto& l : net.links()) {
            sent += l.flit->sentCount();
        }
        EXPECT_EQ(fab.totalFlitsSent(), sent) << "cycle " << cycle;
        EXPECT_EQ(fab.minHeadReady(), minHeadReadyViaChannels(net))
            << "cycle " << cycle;
        for (int n = 0; n < net.mesh().numNodes(); ++n)
            net.endpoint(n).drainEjected();
    }
    EXPECT_GT(fab.totalFlitsSent(), 0u);
}

} // namespace
} // namespace footprint
