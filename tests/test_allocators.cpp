/**
 * @file
 * Unit tests for the arbitration primitives.
 */

#include <gtest/gtest.h>

#include <vector>

#include "router/allocators.hpp"

namespace footprint {
namespace {

TEST(RoundRobinArbiter, NoRequestsNoGrant)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.arbitrate({false, false, false, false}), -1);
}

TEST(RoundRobinArbiter, SingleRequesterWins)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.arbitrate({false, false, true, false}), 2);
}

TEST(RoundRobinArbiter, RotatesAmongContenders)
{
    RoundRobinArbiter arb(3);
    const std::vector<bool> all{true, true, true};
    EXPECT_EQ(arb.arbitrate(all), 0);
    EXPECT_EQ(arb.arbitrate(all), 1);
    EXPECT_EQ(arb.arbitrate(all), 2);
    EXPECT_EQ(arb.arbitrate(all), 0);
}

TEST(RoundRobinArbiter, PointerSkipsNonRequesters)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.arbitrate({true, false, false, true}), 0);
    // Pointer now at 1; requester 3 is next among the requesting.
    EXPECT_EQ(arb.arbitrate({true, false, false, true}), 3);
    EXPECT_EQ(arb.arbitrate({true, false, false, true}), 0);
}

TEST(RoundRobinArbiter, FairnessOverManyRounds)
{
    RoundRobinArbiter arb(4);
    std::vector<int> grants(4, 0);
    const std::vector<bool> all{true, true, true, true};
    for (int i = 0; i < 400; ++i)
        ++grants[static_cast<std::size_t>(arb.arbitrate(all))];
    for (int g : grants)
        EXPECT_EQ(g, 100);
}

TEST(RoundRobinArbiter, ResizeResetsPointer)
{
    RoundRobinArbiter arb(2);
    (void)arb.arbitrate({true, true});
    arb.resize(3);
    EXPECT_EQ(arb.pointer(), 0);
    EXPECT_EQ(arb.arbitrate({true, true, true}), 0);
}

// Helper: arbitrate and clear, returning the winner.
int
arbitrateOnce(PriorityArbiter& arb)
{
    const int winner = arb.arbitrate();
    arb.clearRequests();
    return winner;
}

TEST(PriorityArbiter, NoRequestsNoGrant)
{
    PriorityArbiter arb(4);
    EXPECT_EQ(arbitrateOnce(arb), -1);
}

TEST(PriorityArbiter, HighestPriorityWins)
{
    PriorityArbiter arb(4);
    arb.addRequest(0, 1);
    arb.addRequest(1, 3);
    arb.addRequest(2, 2);
    EXPECT_EQ(arbitrateOnce(arb), 1);
}

TEST(PriorityArbiter, EqualPriorityRotates)
{
    PriorityArbiter arb(3);
    std::vector<int> grants(3, 0);
    for (int i = 0; i < 300; ++i) {
        arb.addRequest(0, 2);
        arb.addRequest(1, 2);
        arb.addRequest(2, 2);
        ++grants[static_cast<std::size_t>(arbitrateOnce(arb))];
    }
    for (int g : grants)
        EXPECT_EQ(g, 100);
}

TEST(PriorityArbiter, DuplicateRequestKeepsMaxPriority)
{
    PriorityArbiter arb(2);
    arb.addRequest(0, 1);
    arb.addRequest(0, 3);
    arb.addRequest(1, 2);
    EXPECT_EQ(arbitrateOnce(arb), 0);
}

TEST(PriorityArbiter, LowPriorityWinsWhenAlone)
{
    PriorityArbiter arb(4);
    arb.addRequest(3, 0);
    EXPECT_EQ(arbitrateOnce(arb), 3);
}

TEST(PriorityArbiter, ClearRemovesRequests)
{
    PriorityArbiter arb(2);
    arb.addRequest(0, 1);
    arb.clearRequests();
    EXPECT_EQ(arb.arbitrate(), -1);
}

TEST(PriorityArbiter, HighPriorityAlwaysBeatsLowUnderRotation)
{
    PriorityArbiter arb(3);
    for (int i = 0; i < 50; ++i) {
        arb.addRequest(0, 1);
        arb.addRequest(1, 1);
        arb.addRequest(2, 2);
        EXPECT_EQ(arbitrateOnce(arb), 2);
    }
}

} // namespace
} // namespace footprint
