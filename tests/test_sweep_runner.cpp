/**
 * @file
 * Tests for the parallel sweep engine: deterministic job expansion and
 * seed derivation, thread-count-invariant results and artifacts,
 * per-job artifact-path isolation, and the sweep CLI helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "exec/exec_context.hpp"
#include "exec/sweep_runner.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace footprint {
namespace {

SimConfig
tinyBase()
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    cfg.setInt("warmup_cycles", 100);
    cfg.setInt("measure_cycles", 300);
    cfg.setInt("drain_cycles", 1500);
    cfg.setInt("seed", 7);
    return cfg;
}

SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.base = tinyBase();
    spec.rates = {0.05, 0.15};
    spec.routings = {"dor", "dbar"};
    spec.meshes = {{4, 4}};
    spec.traffics = {"uniform"};
    spec.seeds = 2;
    return spec;
}

TEST(SweepExpand, CanonicalOrderAndDerivedSeeds)
{
    const SweepSpec spec = tinySpec();
    const std::vector<SimJob> jobs = SweepRunner::expand(spec);
    // 1 mesh x 2 routings x 1 traffic x 2 replicates x (1 probe + 2
    // rates) = 12 jobs.
    ASSERT_EQ(jobs.size(), 12u);

    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].index, i);
        EXPECT_EQ(jobs[i].seed, deriveStreamSeed(7, i));
        EXPECT_EQ(static_cast<std::uint64_t>(
                      jobs[i].cfg.getInt("seed")),
                  jobs[i].seed);
        seeds.insert(jobs[i].seed);
    }
    EXPECT_EQ(seeds.size(), jobs.size()) << "job seeds must be unique";

    // Row-major order: routing varies before replicate, probe first.
    EXPECT_TRUE(jobs[0].probe);
    EXPECT_EQ(jobs[0].routing, "dor");
    EXPECT_DOUBLE_EQ(jobs[1].rate, 0.05);
    EXPECT_DOUBLE_EQ(jobs[2].rate, 0.15);
    EXPECT_EQ(jobs[3].replicate, 1);
    EXPECT_EQ(jobs[6].routing, "dbar");
    EXPECT_EQ(jobs[6].replicate, 0);

    // Materialized configs carry the grid coordinates.
    EXPECT_EQ(jobs[1].cfg.getStr("routing"), "dor");
    EXPECT_EQ(jobs[1].cfg.getInt("mesh_width"), 4);
    EXPECT_DOUBLE_EQ(jobs[1].cfg.getDouble("injection_rate"), 0.05);
}

TEST(SweepExpand, ExpansionIsReproducible)
{
    const SweepSpec spec = tinySpec();
    const auto a = SweepRunner::expand(spec);
    const auto b = SweepRunner::expand(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].cfg.toString(), b[i].cfg.toString());
    }
}

TEST(SweepExpand, IsolatesPerJobArtifactPaths)
{
    SweepSpec spec = tinySpec();
    spec.base.set("telemetry_out", "ts.csv");
    spec.base.setInt("trace_packets", 5);
    spec.base.setBool("dump_on_abort", true);
    const std::vector<SimJob> jobs = SweepRunner::expand(spec);
    std::set<std::string> telemetry;
    std::set<std::string> traces;
    std::set<std::string> dumps;
    for (const SimJob& job : jobs) {
        telemetry.insert(job.cfg.getStr("telemetry_out"));
        traces.insert(job.cfg.getStr("trace_out"));
        dumps.insert(job.cfg.getStr("dump_path"));
    }
    // Every job writes its own files — no clobbering across threads.
    EXPECT_EQ(telemetry.size(), jobs.size());
    EXPECT_EQ(traces.size(), jobs.size());
    EXPECT_EQ(dumps.size(), jobs.size());
    EXPECT_EQ(jobs[3].cfg.getStr("telemetry_out"), "ts.job3.csv");
    EXPECT_EQ(jobs[3].cfg.getStr("trace_out"), "trace.job3.jsonl");
}

TEST(SweepRun, ResultsAreIdenticalForAnyThreadCount)
{
    const SweepSpec spec = tinySpec();
    ExecContext seq(1);
    ExecContext par(4);
    const SweepResult a = SweepRunner(seq).run(spec);
    const SweepResult b = SweepRunner(par).run(spec);

    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].index, b.jobs[i].index);
        EXPECT_EQ(a.jobs[i].seed, b.jobs[i].seed);
        EXPECT_DOUBLE_EQ(a.jobs[i].point.accepted,
                         b.jobs[i].point.accepted);
        EXPECT_DOUBLE_EQ(a.jobs[i].point.latency,
                         b.jobs[i].point.latency);
        EXPECT_EQ(a.jobs[i].point.saturated,
                  b.jobs[i].point.saturated);
        EXPECT_EQ(a.jobs[i].cycles, b.jobs[i].cycles);
    }
    ASSERT_EQ(a.saturation.size(), b.saturation.size());
    for (std::size_t i = 0; i < a.saturation.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.saturation[i].throughput,
                         b.saturation[i].throughput);
    }
    // The exported artifact, minus wall-clock metadata, is
    // byte-identical — the CI determinism gate in C++ form.
    EXPECT_EQ(benchResultsJson(spec, a, /*include_timing=*/false),
              benchResultsJson(spec, b, /*include_timing=*/false));
}

TEST(SweepRun, ProducesSaturationPerCell)
{
    SweepSpec spec = tinySpec();
    spec.routings = {"dor"};
    ExecContext ctx(2);
    const SweepResult result = SweepRunner(ctx).run(spec);
    ASSERT_EQ(result.saturation.size(), 1u);
    EXPECT_EQ(result.saturation[0].routing, "dor");
    EXPECT_GT(result.saturation[0].throughput, 0.0);
    EXPECT_GT(result.saturation[0].zeroLoadLatency, 0.0);
    EXPECT_GT(result.jobsPerSec, 0.0);
    EXPECT_EQ(result.baseSeed, 7u);
}

TEST(BenchResultsJson, CarriesSchemaAndSections)
{
    SweepSpec spec = tinySpec();
    spec.routings = {"dor"};
    spec.rates = {0.05};
    spec.seeds = 1;
    ExecContext ctx(1);
    const SweepResult result = SweepRunner(ctx).run(spec);
    const std::string doc = benchResultsJson(spec, result);
    EXPECT_NE(doc.find("\"schema\": \"footprint.bench/1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"timing\""), std::string::npos);
    EXPECT_NE(doc.find("\"results\""), std::string::npos);
    EXPECT_NE(doc.find("\"saturation\""), std::string::npos);
    EXPECT_NE(doc.find("\"config_hash\""), std::string::npos);
    // Timing is confined to its own object, absent in canonical form.
    const std::string canonical =
        benchResultsJson(spec, result, /*include_timing=*/false);
    EXPECT_EQ(canonical.find("\"timing\""), std::string::npos);
    EXPECT_EQ(canonical.find("wall_seconds"), std::string::npos);
}

TEST(SweepHelpers, ParseMeshSizeAndRates)
{
    EXPECT_EQ(parseMeshSize("8x8").width, 8);
    EXPECT_EQ(parseMeshSize("16x4").height, 4);
    EXPECT_EQ(parseMeshSize("8").width, 8);
    EXPECT_EQ(parseMeshSize("8").height, 8);

    const auto listed = parseRateSpec("0.05, 0.1,0.2");
    ASSERT_EQ(listed.size(), 3u);
    EXPECT_DOUBLE_EQ(listed[1], 0.1);

    const auto spaced = parseRateSpec("0.1:0.5:5");
    ASSERT_EQ(spaced.size(), 5u);
    EXPECT_DOUBLE_EQ(spaced.front(), 0.1);
    EXPECT_DOUBLE_EQ(spaced.back(), 0.5);

    const auto parts = splitList("a, b ,c");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "b");
}

TEST(DeriveStreamSeed, DeterministicAndWellSeparated)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const std::uint64_t s = deriveStreamSeed(42, i);
        EXPECT_EQ(s, deriveStreamSeed(42, i));
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 1000u);
    // Different bases give different streams.
    EXPECT_NE(deriveStreamSeed(1, 0), deriveStreamSeed(2, 0));
}

} // namespace
} // namespace footprint
