/**
 * @file
 * Unit and property tests for the 2D mesh topology.
 */

#include <gtest/gtest.h>

#include "topo/mesh.hpp"

namespace footprint {
namespace {

TEST(Dir, PortRoundTrip)
{
    for (int p = 0; p < kNumPorts; ++p)
        EXPECT_EQ(portOf(dirOf(p)), p);
}

TEST(Dir, Opposites)
{
    EXPECT_EQ(opposite(Dir::East), Dir::West);
    EXPECT_EQ(opposite(Dir::West), Dir::East);
    EXPECT_EQ(opposite(Dir::North), Dir::South);
    EXPECT_EQ(opposite(Dir::South), Dir::North);
}

TEST(Dir, Names)
{
    EXPECT_EQ(dirName(Dir::East), "E");
    EXPECT_EQ(dirName(Dir::West), "W");
    EXPECT_EQ(dirName(Dir::North), "N");
    EXPECT_EQ(dirName(Dir::South), "S");
    EXPECT_EQ(dirName(Dir::Local), "L");
}

TEST(Mesh, NodeCoordRoundTrip4x4)
{
    const Mesh mesh(4, 4);
    for (int n = 0; n < mesh.numNodes(); ++n)
        EXPECT_EQ(mesh.nodeId(mesh.coordOf(n)), n);
}

TEST(Mesh, RowMajorNumberingMatchesPaperFigures)
{
    // Figure 2 uses a 4x4 mesh with n0..n15 row-major: n10 = (2, 2),
    // n13 = (1, 3), n15 = (3, 3).
    const Mesh mesh(4, 4);
    EXPECT_EQ(mesh.coordOf(10), (Coord{2, 2}));
    EXPECT_EQ(mesh.coordOf(13), (Coord{1, 3}));
    EXPECT_EQ(mesh.coordOf(15), (Coord{3, 3}));
    EXPECT_EQ(mesh.nodeId(Coord{0, 0}), 0);
}

TEST(Mesh, RectangularMesh)
{
    const Mesh mesh(4, 2);
    EXPECT_EQ(mesh.numNodes(), 8);
    EXPECT_EQ(mesh.coordOf(5), (Coord{1, 1}));
}

TEST(Mesh, NeighborsInterior)
{
    const Mesh mesh(4, 4);
    const int n = mesh.nodeId(Coord{1, 1}); // node 5
    EXPECT_EQ(mesh.neighbor(n, Dir::East), mesh.nodeId(Coord{2, 1}));
    EXPECT_EQ(mesh.neighbor(n, Dir::West), mesh.nodeId(Coord{0, 1}));
    EXPECT_EQ(mesh.neighbor(n, Dir::North), mesh.nodeId(Coord{1, 2}));
    EXPECT_EQ(mesh.neighbor(n, Dir::South), mesh.nodeId(Coord{1, 0}));
}

TEST(Mesh, EdgesHaveNoNeighborOutside)
{
    const Mesh mesh(4, 4);
    EXPECT_FALSE(mesh.hasNeighbor(0, Dir::West));
    EXPECT_FALSE(mesh.hasNeighbor(0, Dir::South));
    EXPECT_TRUE(mesh.hasNeighbor(0, Dir::East));
    EXPECT_TRUE(mesh.hasNeighbor(0, Dir::North));
    EXPECT_FALSE(mesh.hasNeighbor(15, Dir::East));
    EXPECT_FALSE(mesh.hasNeighbor(15, Dir::North));
}

TEST(Mesh, LocalIsNeverANeighbor)
{
    const Mesh mesh(4, 4);
    for (int n = 0; n < 16; ++n)
        EXPECT_FALSE(mesh.hasNeighbor(n, Dir::Local));
}

TEST(Mesh, NeighborIsSymmetric)
{
    const Mesh mesh(5, 3);
    for (int n = 0; n < mesh.numNodes(); ++n) {
        for (Dir d :
             {Dir::East, Dir::West, Dir::North, Dir::South}) {
            if (!mesh.hasNeighbor(n, d))
                continue;
            const int m = mesh.neighbor(n, d);
            EXPECT_EQ(mesh.neighbor(m, opposite(d)), n);
        }
    }
}

TEST(Mesh, HopDistanceIsManhattan)
{
    const Mesh mesh(8, 8);
    EXPECT_EQ(mesh.hopDistance(0, 63), 14);
    EXPECT_EQ(mesh.hopDistance(0, 0), 0);
    EXPECT_EQ(mesh.hopDistance(0, 7), 7);
    EXPECT_EQ(mesh.hopDistance(7, 0), 7);
    EXPECT_EQ(mesh.hopDistance(0, 9), 2);
}

TEST(Mesh, MinimalDirsPointTowardsDest)
{
    const Mesh mesh(8, 8);
    for (int s = 0; s < 64; ++s) {
        for (int d = 0; d < 64; ++d) {
            const auto dirs = mesh.minimalDirs(s, d);
            if (s == d) {
                EXPECT_TRUE(dirs.empty());
                continue;
            }
            EXPECT_GE(dirs.size(), 1u);
            EXPECT_LE(dirs.size(), 2u);
            for (Dir dir : dirs) {
                const int next = mesh.neighbor(s, dir);
                EXPECT_EQ(mesh.hopDistance(next, d),
                          mesh.hopDistance(s, d) - 1)
                    << "non-minimal direction from " << s << " to "
                    << d;
            }
        }
    }
}

TEST(Mesh, MinimalDirsIntoMatchesVectorVersion)
{
    const Mesh mesh(6, 5);
    Dir buf[2];
    for (int s = 0; s < mesh.numNodes(); ++s) {
        for (int d = 0; d < mesh.numNodes(); ++d) {
            const auto vec = mesh.minimalDirs(s, d);
            const int n = mesh.minimalDirsInto(s, d, buf);
            ASSERT_EQ(static_cast<std::size_t>(n), vec.size());
            for (int i = 0; i < n; ++i)
                EXPECT_EQ(buf[i], vec[static_cast<std::size_t>(i)]);
        }
    }
}

TEST(Mesh, NumMinimalPathsKnownValues)
{
    const Mesh mesh(8, 8);
    // Same row/column: exactly one minimal path.
    EXPECT_DOUBLE_EQ(mesh.numMinimalPaths(0, 7), 1.0);
    EXPECT_DOUBLE_EQ(mesh.numMinimalPaths(0, 56), 1.0);
    // 1x1 offset: two paths.
    EXPECT_DOUBLE_EQ(mesh.numMinimalPaths(0, 9), 2.0);
    // Corner to corner on 8x8: C(14, 7) = 3432.
    EXPECT_DOUBLE_EQ(mesh.numMinimalPaths(0, 63), 3432.0);
    // Symmetric.
    EXPECT_DOUBLE_EQ(mesh.numMinimalPaths(63, 0), 3432.0);
}

TEST(Mesh, TooSmallMeshIsFatal)
{
    EXPECT_EXIT(Mesh(1, 1), testing::ExitedWithCode(1),
                "at least 2 nodes");
}

TEST(Mesh, OneDimensionalGridsAreLegal)
{
    // N x 1 grids back the ring topology.
    const Mesh row(4, 1);
    EXPECT_EQ(row.numNodes(), 4);
    EXPECT_TRUE(row.hasNeighbor(0, Dir::East));
    EXPECT_FALSE(row.hasNeighbor(0, Dir::North));
    EXPECT_FALSE(row.hasNeighbor(3, Dir::East));
    const Mesh col(1, 3);
    EXPECT_EQ(col.numNodes(), 3);
    EXPECT_TRUE(col.hasNeighbor(0, Dir::North));
    EXPECT_FALSE(col.hasNeighbor(0, Dir::East));
}

class MeshSizeTest : public testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(MeshSizeTest, AllNodesHaveTwoToFourNeighbors)
{
    const auto [w, h] = GetParam();
    const Mesh mesh(w, h);
    for (int n = 0; n < mesh.numNodes(); ++n) {
        int count = 0;
        for (Dir d :
             {Dir::East, Dir::West, Dir::North, Dir::South}) {
            if (mesh.hasNeighbor(n, d))
                ++count;
        }
        EXPECT_GE(count, 2);
        EXPECT_LE(count, 4);
    }
}

TEST_P(MeshSizeTest, DistanceTriangleInequality)
{
    const auto [w, h] = GetParam();
    const Mesh mesh(w, h);
    const int n = mesh.numNodes();
    for (int a = 0; a < n; a += 3) {
        for (int b = 0; b < n; b += 3) {
            for (int c = 0; c < n; c += 3) {
                EXPECT_LE(mesh.hopDistance(a, c),
                          mesh.hopDistance(a, b)
                              + mesh.hopDistance(b, c));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizeTest,
                         testing::Values(std::pair{4, 4}, std::pair{8, 8},
                                         std::pair{16, 16},
                                         std::pair{4, 8}));

} // namespace
} // namespace footprint
