/**
 * @file
 * Unit tests for SimConfig.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/config.hpp"
#include "sim/log.hpp"

namespace footprint {
namespace {

TEST(SimConfig, SetAndGetString)
{
    SimConfig cfg;
    cfg.set("routing", "footprint");
    EXPECT_EQ(cfg.getStr("routing"), "footprint");
}

TEST(SimConfig, SetAndGetInt)
{
    SimConfig cfg;
    cfg.setInt("num_vcs", 10);
    EXPECT_EQ(cfg.getInt("num_vcs"), 10);
}

TEST(SimConfig, SetAndGetNegativeInt)
{
    SimConfig cfg;
    cfg.setInt("x", -42);
    EXPECT_EQ(cfg.getInt("x"), -42);
}

TEST(SimConfig, SetAndGetDoubleRoundTrips)
{
    SimConfig cfg;
    cfg.setDouble("rate", 0.123456789012345);
    EXPECT_DOUBLE_EQ(cfg.getDouble("rate"), 0.123456789012345);
}

TEST(SimConfig, SetAndGetBool)
{
    SimConfig cfg;
    cfg.setBool("flag", true);
    EXPECT_TRUE(cfg.getBool("flag"));
    cfg.setBool("flag", false);
    EXPECT_FALSE(cfg.getBool("flag"));
}

TEST(SimConfig, BoolAcceptsNumericForms)
{
    SimConfig cfg;
    cfg.set("a", "1");
    cfg.set("b", "0");
    EXPECT_TRUE(cfg.getBool("a"));
    EXPECT_FALSE(cfg.getBool("b"));
}

TEST(SimConfig, ContainsReflectsPresence)
{
    SimConfig cfg;
    EXPECT_FALSE(cfg.contains("nope"));
    cfg.set("nope", "yes");
    EXPECT_TRUE(cfg.contains("nope"));
}

TEST(SimConfig, OverrideReplacesValue)
{
    SimConfig cfg;
    cfg.setInt("x", 1);
    cfg.setInt("x", 2);
    EXPECT_EQ(cfg.getInt("x"), 2);
}

TEST(SimConfig, IntAsDoubleIsReadable)
{
    SimConfig cfg;
    cfg.setInt("x", 3);
    EXPECT_DOUBLE_EQ(cfg.getDouble("x"), 3.0);
}

TEST(SimConfig, ParseAssignmentValid)
{
    SimConfig cfg;
    EXPECT_TRUE(cfg.parseAssignment("traffic=shuffle"));
    EXPECT_EQ(cfg.getStr("traffic"), "shuffle");
}

TEST(SimConfig, ParseAssignmentWithEqualsInValue)
{
    SimConfig cfg;
    EXPECT_TRUE(cfg.parseAssignment("expr=a=b"));
    EXPECT_EQ(cfg.getStr("expr"), "a=b");
}

TEST(SimConfig, ParseAssignmentRejectsMalformed)
{
    SimConfig cfg;
    EXPECT_FALSE(cfg.parseAssignment("no-equals-here"));
    EXPECT_FALSE(cfg.parseAssignment("=leading"));
}

TEST(SimConfig, KeysAreSorted)
{
    SimConfig cfg;
    cfg.set("b", "1");
    cfg.set("a", "2");
    cfg.set("c", "3");
    const auto keys = cfg.keys();
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[1], "b");
    EXPECT_EQ(keys[2], "c");
}

TEST(SimConfig, ToStringContainsAllEntries)
{
    SimConfig cfg;
    cfg.set("alpha", "1");
    cfg.set("beta", "two");
    const std::string s = cfg.toString();
    EXPECT_NE(s.find("alpha = 1"), std::string::npos);
    EXPECT_NE(s.find("beta = two"), std::string::npos);
}

TEST(SimConfig, MissingKeyIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(cfg.getStr("missing"), testing::ExitedWithCode(1),
                "config key not found");
}

TEST(SimConfig, MalformedIntIsFatal)
{
    SimConfig cfg;
    cfg.set("x", "abc");
    EXPECT_EXIT((void)cfg.getInt("x"), testing::ExitedWithCode(1),
                "not an integer");
}

TEST(SimConfig, MalformedBoolIsFatal)
{
    SimConfig cfg;
    cfg.set("x", "maybe");
    EXPECT_EXIT((void)cfg.getBool("x"), testing::ExitedWithCode(1),
                "not a bool");
}

class ConfigFileTest : public testing::Test
{
  protected:
    std::string
    writeFile(const std::string& contents)
    {
        path_ = (std::filesystem::temp_directory_path()
                 / "fp_config_test.cfg")
                    .string();
        std::ofstream out(path_);
        out << contents;
        return path_;
    }

    void
    TearDown() override
    {
        if (!path_.empty())
            std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(ConfigFileTest, LoadsKeyValueLines)
{
    SimConfig cfg;
    cfg.loadFile(writeFile("routing = footprint\nnum_vcs=8\n"));
    EXPECT_EQ(cfg.getStr("routing"), "footprint");
    EXPECT_EQ(cfg.getInt("num_vcs"), 8);
}

TEST_F(ConfigFileTest, SkipsCommentsAndBlankLines)
{
    SimConfig cfg;
    cfg.loadFile(writeFile(
        "# a comment\n\nrouting = dbar   # trailing comment\n\n"));
    EXPECT_EQ(cfg.getStr("routing"), "dbar");
}

TEST_F(ConfigFileTest, TrimsWhitespaceAroundKeyAndValue)
{
    SimConfig cfg;
    cfg.loadFile(writeFile("   traffic   =   shuffle   \n"));
    EXPECT_EQ(cfg.getStr("traffic"), "shuffle");
}

TEST_F(ConfigFileTest, LaterOverridesWin)
{
    SimConfig cfg;
    cfg.setInt("num_vcs", 10);
    cfg.loadFile(writeFile("num_vcs = 4\n"));
    EXPECT_EQ(cfg.getInt("num_vcs"), 4);
    cfg.parseAssignment("num_vcs=16");
    EXPECT_EQ(cfg.getInt("num_vcs"), 16);
}

TEST_F(ConfigFileTest, MalformedLineIsFatal)
{
    SimConfig cfg;
    const std::string path = writeFile("this is not an assignment\n");
    EXPECT_EXIT(cfg.loadFile(path), testing::ExitedWithCode(1),
                "malformed config line 1");
}

TEST_F(ConfigFileTest, MissingFileIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(cfg.loadFile("/nonexistent/file.cfg"),
                testing::ExitedWithCode(1), "cannot open config");
}

TEST(ConfigFileExamples, ShippedConfigsLoad)
{
    // The example configs in examples/configs/ must stay loadable.
    for (const char* name :
         {"baseline.cfg", "hotspot.cfg", "transpose_16x16.cfg"}) {
        const std::string path =
            std::string(FP_SOURCE_DIR) + "/examples/configs/" + name;
        if (!std::filesystem::exists(path))
            GTEST_SKIP() << "source tree not available";
        SimConfig cfg = defaultConfig();
        cfg.loadFile(path);
        EXPECT_GE(cfg.getInt("mesh_width"), 4) << name;
        EXPECT_FALSE(cfg.getStr("routing").empty()) << name;
    }
}

TEST(UnknownKeys, DefaultConfigHasNone)
{
    EXPECT_TRUE(defaultConfig().unknownKeys().empty());
}

TEST(UnknownKeys, DetectsTypodSubsystemKey)
{
    SimConfig cfg = defaultConfig();
    cfg.set("telemetr_out", "x.csv");  // typo'd telemetry_out
    cfg.set("audit_intrval", "500");   // typo'd audit_interval
    const auto unknown = cfg.unknownKeys();
    ASSERT_EQ(unknown.size(), 2u);
    EXPECT_EQ(unknown[0], "audit_intrval");
    EXPECT_EQ(unknown[1], "telemetr_out");
}

TEST(UnknownKeys, WarnSuggestsClosestKnownKey)
{
    SimConfig cfg = defaultConfig();
    cfg.set("telemetr_out", "x.csv");
    std::ostringstream sink;
    setLogSink(&sink);
    const std::size_t n = cfg.warnUnknownKeys();
    setLogSink(nullptr);
    EXPECT_EQ(n, 1u);
    EXPECT_NE(sink.str().find("telemetr_out"), std::string::npos);
    EXPECT_NE(sink.str().find("did you mean 'telemetry_out'"),
              std::string::npos);
}

TEST(UnknownKeys, CleanConfigWarnsNothing)
{
    SimConfig cfg = defaultConfig();
    cfg.set("background_rate", "0.3");  // optional but recognized
    std::ostringstream sink;
    setLogSink(&sink);
    EXPECT_EQ(cfg.warnUnknownKeys(), 0u);
    setLogSink(nullptr);
    EXPECT_TRUE(sink.str().empty());
}

TEST(UnknownKeys, IsKnownKeyCoversNewAuditKeys)
{
    EXPECT_TRUE(SimConfig::isKnownKey("audit"));
    EXPECT_TRUE(SimConfig::isKnownKey("watchdog_interval"));
    EXPECT_TRUE(SimConfig::isKnownKey("chrome_trace_out"));
    EXPECT_FALSE(SimConfig::isKnownKey("watchdogg"));
}

TEST(UnknownKeys, AcceptsTopologyAndShardKeys)
{
    // The topology-layer keys (DESIGN.md §18) must be registered:
    // selecting a topology, concentration, per-dimension link
    // latencies, or a shard partition policy may not trip the
    // unknown-key warning.
    SimConfig cfg = defaultConfig();
    cfg.set("topology", "torus");
    cfg.set("concentration", "4");
    cfg.set("link_latency_x", "2");
    cfg.set("link_latency_y", "3");
    cfg.set("link_latency_local", "1");
    cfg.set("shard_partition", "weighted");
    std::ostringstream sink;
    setLogSink(&sink);
    EXPECT_EQ(cfg.warnUnknownKeys(), 0u);
    setLogSink(nullptr);
    EXPECT_TRUE(sink.str().empty());
    // ...and near-misses still get a suggestion.
    EXPECT_FALSE(SimConfig::isKnownKey("topolgy"));
    EXPECT_FALSE(SimConfig::isKnownKey("link_latency_z"));
}

TEST(DefaultConfig, TopologyDefaultsToUnconcentratedMesh)
{
    const SimConfig cfg = defaultConfig();
    EXPECT_EQ(cfg.getStr("topology"), "mesh");
    EXPECT_EQ(cfg.getInt("concentration"), 1);
    EXPECT_EQ(cfg.getStr("shard_partition"), "weighted");
    // The per-dimension overrides are deliberately not defaulted:
    // Topology::fromConfig falls back to link_latency when absent.
    EXPECT_FALSE(cfg.contains("link_latency_x"));
    EXPECT_FALSE(cfg.contains("link_latency_y"));
    EXPECT_FALSE(cfg.contains("link_latency_local"));
}

TEST(UnknownKeys, AcceptsProfilerAndHeatmapKeys)
{
    // The profile_* / heatmap_* observability keys (DESIGN.md §14)
    // must be registered: enabling them may not trip the
    // unknown-key warning.
    SimConfig cfg = defaultConfig();
    cfg.set("profile", "true");
    cfg.set("profile_out", "p.json");
    cfg.set("heatmap", "true");
    cfg.set("heatmap_out", "h.json");
    cfg.set("heatmap_window", "500");
    cfg.set("heatmap_sample_interval", "4");
    std::ostringstream sink;
    setLogSink(&sink);
    EXPECT_EQ(cfg.warnUnknownKeys(), 0u);
    setLogSink(nullptr);
    EXPECT_TRUE(sink.str().empty());
    // ...and a near-miss still gets a suggestion.
    EXPECT_FALSE(SimConfig::isKnownKey("heatmap_widow"));
}

TEST(DefaultConfig, ProfilerAndHeatmapDefaultOff)
{
    const SimConfig cfg = defaultConfig();
    EXPECT_FALSE(cfg.getBool("profile"));
    EXPECT_FALSE(cfg.getBool("heatmap"));
    EXPECT_EQ(cfg.getStr("profile_out"), "profile.json");
    EXPECT_EQ(cfg.getStr("heatmap_out"), "heatmap.json");
    EXPECT_EQ(cfg.getInt("heatmap_window"), 1000);
    EXPECT_EQ(cfg.getInt("heatmap_sample_interval"), 8);
}

TEST(DefaultConfig, MatchesTable2Baseline)
{
    const SimConfig cfg = defaultConfig();
    EXPECT_EQ(cfg.getInt("mesh_width"), 8);
    EXPECT_EQ(cfg.getInt("mesh_height"), 8);
    EXPECT_EQ(cfg.getInt("num_vcs"), 10);
    EXPECT_EQ(cfg.getInt("vc_buf_size"), 4);
    EXPECT_EQ(cfg.getInt("internal_speedup"), 2);
    EXPECT_EQ(cfg.getStr("routing"), "footprint");
    EXPECT_EQ(cfg.getStr("packet_size"), "1");
}

} // namespace
} // namespace footprint
