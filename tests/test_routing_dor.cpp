/**
 * @file
 * Unit tests for dimension-order routing.
 */

#include <gtest/gtest.h>

#include "fake_router_view.hpp"
#include "routing/dor.hpp"

namespace footprint {
namespace {

TEST(DorDir, RoutesXFirst)
{
    const Mesh mesh(4, 4);
    // From n0 (0,0) to n10 (2,2): X first -> East.
    EXPECT_EQ(dorDir(mesh, 0, 10), Dir::East);
    // From n2 (2,0) to n10 (2,2): X done -> North.
    EXPECT_EQ(dorDir(mesh, 2, 10), Dir::North);
    // Westbound.
    EXPECT_EQ(dorDir(mesh, 3, 0), Dir::West);
    // Southbound after X.
    EXPECT_EQ(dorDir(mesh, 12, 0), Dir::South);
    // At destination.
    EXPECT_EQ(dorDir(mesh, 10, 10), Dir::Local);
}

TEST(DorDir, FullPathIsMinimal)
{
    const Mesh mesh(8, 8);
    for (int s = 0; s < 64; s += 5) {
        for (int d = 0; d < 64; d += 3) {
            int cur = s;
            int hops = 0;
            while (cur != d) {
                const Dir dir = dorDir(mesh, cur, d);
                ASSERT_NE(dir, Dir::Local);
                cur = mesh.neighbor(cur, dir);
                ++hops;
                ASSERT_LE(hops, 14) << "DOR path too long";
            }
            EXPECT_EQ(hops, mesh.hopDistance(s, d));
        }
    }
}

TEST(DorDir, NeverTurnsBackIntoX)
{
    // Once Y movement starts, X must be finished: the Y segment only
    // begins when the x coordinates match.
    const Mesh mesh(8, 8);
    for (int s = 0; s < 64; ++s) {
        for (int d = 0; d < 64; ++d) {
            if (s == d)
                continue;
            const Dir dir = dorDir(mesh, s, d);
            if (dir == Dir::North || dir == Dir::South) {
                EXPECT_EQ(mesh.coordOf(s).x, mesh.coordOf(d).x);
            }
        }
    }
}

TEST(DorRouting, RequestsAllVcsOnOnePort)
{
    const Mesh mesh(4, 4);
    FakeRouterView view(mesh, 0, 4);
    DorRouting dor;
    OutputSet out;
    dor.route(view, headFlit(0, 10), out);
    ASSERT_EQ(out.requests().size(), 1u);
    EXPECT_EQ(out.requests()[0].port, portOf(Dir::East));
    EXPECT_EQ(out.requests()[0].vcs, maskOfFirst(4));
    EXPECT_EQ(out.requests()[0].priority, Priority::Low);
}

TEST(DorRouting, EjectsAtDestination)
{
    const Mesh mesh(4, 4);
    FakeRouterView view(mesh, 10, 4);
    DorRouting dor;
    OutputSet out;
    dor.route(view, headFlit(0, 10), out);
    ASSERT_EQ(out.requests().size(), 1u);
    EXPECT_EQ(out.requests()[0].port, portOf(Dir::Local));
}

TEST(DorRouting, IsObliviousToCongestion)
{
    const Mesh mesh(4, 4);
    FakeRouterView view(mesh, 0, 4);
    // Saturate the east port completely; DOR must still pick it.
    for (int v = 0; v < 4; ++v)
        view.occupy(portOf(Dir::East), v, 99);
    DorRouting dor;
    OutputSet out;
    dor.route(view, headFlit(0, 10), out);
    ASSERT_EQ(out.requests().size(), 1u);
    EXPECT_EQ(out.requests()[0].port, portOf(Dir::East));
}

TEST(DorRouting, Properties)
{
    DorRouting dor;
    EXPECT_EQ(dor.name(), "dor");
    EXPECT_FALSE(dor.atomicVcAlloc());
    EXPECT_EQ(dor.numEscapeVcs(), 0);
}

TEST(OutputSet, PriorityForFindsMaxAcrossRequests)
{
    OutputSet out;
    out.add(1, 0b0110, Priority::Low);
    out.add(1, 0b0010, Priority::High);
    Priority pri = Priority::Lowest;
    EXPECT_TRUE(out.priorityFor(1, 1, pri));
    EXPECT_EQ(pri, Priority::High);
    EXPECT_TRUE(out.priorityFor(1, 2, pri));
    EXPECT_EQ(pri, Priority::Low);
    EXPECT_FALSE(out.priorityFor(1, 0, pri));
    EXPECT_FALSE(out.priorityFor(2, 1, pri));
}

TEST(OutputSet, EmptyMasksAreDropped)
{
    OutputSet out;
    out.add(1, 0, Priority::Low);
    EXPECT_TRUE(out.empty());
}

} // namespace
} // namespace footprint
