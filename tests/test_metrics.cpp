/**
 * @file
 * Unit tests for the metrics library: two-level adaptiveness,
 * congestion-tree extraction, the cost model, and purity summaries.
 */

#include <gtest/gtest.h>

#include "metrics/adaptiveness.hpp"
#include "metrics/congestion_tree.hpp"
#include "metrics/cost_model.hpp"
#include "metrics/purity.hpp"
#include "network/network.hpp"
#include "sim/config.hpp"

namespace footprint {
namespace {

TEST(Adaptiveness, DorAllowsExactlyOnePath)
{
    const Mesh mesh(8, 8);
    // 0 -> 63 has 3432 minimal paths; DOR allows one.
    EXPECT_NEAR(pathAdaptiveness(mesh, "dor", 0, 63), 1.0 / 3432.0,
                1e-12);
    // Along a row there is only one minimal path anyway.
    EXPECT_DOUBLE_EQ(pathAdaptiveness(mesh, "dor", 0, 7), 1.0);
}

TEST(Adaptiveness, FullyAdaptiveAllowsAllPaths)
{
    const Mesh mesh(8, 8);
    for (const char* algo : {"dbar", "footprint"}) {
        EXPECT_DOUBLE_EQ(pathAdaptiveness(mesh, algo, 0, 63), 1.0);
        EXPECT_DOUBLE_EQ(portAdaptiveness(mesh, algo, 0, 63), 1.0);
        EXPECT_DOUBLE_EQ(pathAdaptiveness(mesh, algo, 5, 40), 1.0);
    }
}

TEST(Adaptiveness, OddEvenIsBetweenDorAndFullyAdaptive)
{
    const Mesh mesh(8, 8);
    const double oe = pathAdaptiveness(mesh, "oddeven", 0, 63);
    EXPECT_GT(oe, pathAdaptiveness(mesh, "dor", 0, 63));
    EXPECT_LT(oe, 1.0);
    const double oe_port = portAdaptiveness(mesh, "oddeven", 0, 63);
    EXPECT_GT(oe_port, portAdaptiveness(mesh, "dor", 0, 63));
    EXPECT_LT(oe_port, 1.0);
}

TEST(Adaptiveness, DorPortAdaptivenessBelowOneOffDiagonal)
{
    const Mesh mesh(8, 8);
    const double p = portAdaptiveness(mesh, "dor", 0, 63);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
}

TEST(Adaptiveness, SameNodeIsFullyAdaptive)
{
    const Mesh mesh(4, 4);
    EXPECT_DOUBLE_EQ(portAdaptiveness(mesh, "dor", 3, 3), 1.0);
    EXPECT_DOUBLE_EQ(pathAdaptiveness(mesh, "dor", 3, 3), 1.0);
}

TEST(Adaptiveness, VcAdaptivenessPerEquation2)
{
    // Only Footprint selects VCs adaptively: (V-1)/V on non-escape
    // channels; every baseline scores 0.
    EXPECT_DOUBLE_EQ(vcAdaptiveness("footprint", 10), 0.9);
    EXPECT_DOUBLE_EQ(vcAdaptiveness("footprint", 2), 0.5);
    EXPECT_DOUBLE_EQ(vcAdaptiveness("dor", 10), 0.0);
    EXPECT_DOUBLE_EQ(vcAdaptiveness("oddeven", 10), 0.0);
    EXPECT_DOUBLE_EQ(vcAdaptiveness("dbar", 10), 0.0);
    EXPECT_DOUBLE_EQ(vcAdaptiveness("dor+xordet", 10), 0.0);
}

TEST(Adaptiveness, ReportOrdersAlgorithmsAsTable1)
{
    const Mesh mesh(4, 4);
    const auto dor = adaptivenessReport(mesh, "dor", 10);
    const auto oe = adaptivenessReport(mesh, "oddeven", 10);
    const auto fp = adaptivenessReport(mesh, "footprint", 10);
    EXPECT_LT(dor.pathAdaptiveness, oe.pathAdaptiveness);
    EXPECT_LT(oe.pathAdaptiveness, fp.pathAdaptiveness);
    EXPECT_DOUBLE_EQ(fp.pathAdaptiveness, 1.0);
    EXPECT_DOUBLE_EQ(fp.portAdaptiveness, 1.0);
    EXPECT_GT(fp.vcAdaptiveness, dor.vcAdaptiveness);
}

TEST(CostModel, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0);
    EXPECT_EQ(ceilLog2(2), 1);
    EXPECT_EQ(ceilLog2(3), 2);
    EXPECT_EQ(ceilLog2(64), 6);
    EXPECT_EQ(ceilLog2(65), 7);
}

TEST(CostModel, PaperConfiguration)
{
    // 8x8 mesh (64 nodes) with 16 VCs: 16 x (6 owner + 1 busy) + 5
    // counter bits = 117 bits/port — the same order as the ~132 bits
    // the paper quotes (~one flit of storage).
    const FootprintCost cost = footprintCost(16, 64);
    EXPECT_EQ(cost.ownerBitsPerVc, 6);
    EXPECT_EQ(cost.idleCounterBits, 5);
    EXPECT_EQ(cost.bitsPerPort(), 117);
    EXPECT_LT(cost.flitEquivalents(128), 1.0);
    EXPECT_GT(cost.flitEquivalents(128), 0.5);
}

TEST(CostModel, ScalesWithNetworkSize)
{
    const FootprintCost small = footprintCost(10, 16);
    const FootprintCost large = footprintCost(10, 256);
    EXPECT_LT(small.bitsPerPort(), large.bitsPerPort());
    EXPECT_EQ(large.ownerBitsPerVc, 8);
}

TEST(CongestionTree, EmptyNetworkHasNoTree)
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    Network net(cfg);
    const auto tree = extractCongestionTree(net, 13);
    EXPECT_EQ(tree.numBranches(), 0);
    EXPECT_EQ(tree.totalVcs(), 0);
    EXPECT_DOUBLE_EQ(tree.avgThickness(), 0.0);
}

TEST(CongestionTree, CapturesBufferedTraffic)
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    Network net(cfg);
    // Oversubscribe node 13 from two sources.
    std::uint64_t id = 0;
    for (int i = 0; i < 12; ++i) {
        Packet p;
        p.id = ++id;
        p.src = i % 2 == 0 ? 4 : 12;
        p.dest = 13;
        p.size = 4;
        p.createTime = 0;
        net.endpoint(p.src).enqueue(p);
    }
    for (std::int64_t c = 0; c < 25; ++c)
        net.step(c);
    const auto tree = extractCongestionTree(net, 13);
    EXPECT_GT(tree.numBranches(), 0);
    EXPECT_GT(tree.totalVcs(), 0);
    EXPECT_GE(tree.maxThickness(), 1);
    EXPECT_GE(tree.totalVcs(), tree.numBranches());
    const std::string s = tree.toString();
    EXPECT_NE(s.find("dest=13"), std::string::npos);

    // No other destination has a tree.
    EXPECT_EQ(extractCongestionTree(net, 2).totalVcs(), 0);
    EXPECT_EQ(totalCongestionVcs(net, {13, 2}), tree.totalVcs());
}

TEST(PuritySummary, BlockingRateAndToString)
{
    PuritySummary s;
    s.purity = 0.25;
    s.blockingEvents = 30;
    s.allocSuccesses = 70;
    s.holDegree = 22.5;
    EXPECT_DOUBLE_EQ(s.blockingRate(), 0.3);
    const std::string str = s.toString();
    EXPECT_NE(str.find("purity=0.25"), std::string::npos);
    EXPECT_NE(str.find("blocking_events=30"), std::string::npos);
}

TEST(PuritySummary, CollectsFromNetwork)
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    Network net(cfg);
    for (int i = 0; i < 20; ++i) {
        Packet p;
        p.id = static_cast<std::uint64_t>(i) + 1;
        p.src = i % 4;
        p.dest = 13;
        p.size = 2;
        net.endpoint(p.src).enqueue(p);
    }
    for (std::int64_t c = 0; c < 60; ++c)
        net.step(c);
    const PuritySummary s = collectPurity(net);
    EXPECT_GT(s.allocSuccesses, 0u);
    EXPECT_GE(s.purity, 0.0);
    EXPECT_LE(s.purity, 1.0);
}

} // namespace
} // namespace footprint
