/**
 * @file
 * Unit tests for the deterministic xoshiro256** RNG.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/rng.hpp"

namespace footprint {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDifferentSequences)
{
    Rng a(1);
    Rng b(2);
    int diffs = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() != b.next())
            ++diffs;
    }
    EXPECT_GT(diffs, 90);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(r.next());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(13), 13u);
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng r(7);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[r.nextBounded(8)];
    for (int v = 0; v < 8; ++v)
        EXPECT_GT(counts[v], 0) << "value " << v << " never produced";
}

TEST(Rng, BoundedIsApproximatelyUniform)
{
    Rng r(11);
    const int n = 100000;
    std::vector<int> counts(10, 0);
    for (int i = 0; i < n; ++i)
        ++counts[r.nextBounded(10)];
    for (int v = 0; v < 10; ++v) {
        EXPECT_NEAR(counts[v], n / 10, n / 100)
            << "bucket " << v << " skewed";
    }
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng r(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.nextRange(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo = saw_lo || v == 2;
        saw_hi = saw_hi || v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeSingleValue)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextRange(4, 4), 4);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(5);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanIsHalf)
{
    Rng r(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoolProbabilityZeroAndOne)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
    }
}

TEST(Rng, BoolProbabilityMatchesRate)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (r.nextBool(0.3))
            ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

} // namespace
} // namespace footprint
