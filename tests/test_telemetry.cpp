/**
 * @file
 * Tests for the telemetry subsystem: sink formatting (golden CSV and
 * JSONL strings), channel-kind semantics (Gauge/Counter/Rate,
 * counter-reset handling), TelemetryHub sampling cadence and phase
 * accounting, the packet lifecycle tracer's JSONL records, and the
 * end-to-end TrafficManager integration through the telemetry_*
 * config keys.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "expect_panic.hpp"
#include "network/traffic_manager.hpp"
#include "obs/packet_tracer.hpp"
#include "obs/telemetry.hpp"
#include "router/packet_pool.hpp"
#include "sim/config.hpp"
#include "sim/log.hpp"

namespace footprint {
namespace {

// ---------------------------------------------------------------- sinks

TEST(Sink, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("x\x01y")), "x\\u0001y");
}

TEST(Sink, FormatTelemetryValue)
{
    EXPECT_EQ(formatTelemetryValue(0.0), "0");
    EXPECT_EQ(formatTelemetryValue(42.0), "42");
    EXPECT_EQ(formatTelemetryValue(-3.0), "-3");
    EXPECT_EQ(formatTelemetryValue(0.5), "0.5");
    EXPECT_EQ(formatTelemetryValue(0.123456789), "0.123457");
}

TEST(Sink, CsvGolden)
{
    std::ostringstream out;
    CsvSink sink(out);
    sink.writeHeader({"a.gauge", "b.rate"});
    sink.writeRow(0, "warmup", {3.0, 0.0});
    sink.writeRow(100, "measure", {1.5, 0.25});
    sink.flush();
    EXPECT_EQ(out.str(),
              "cycle,phase,a.gauge,b.rate\n"
              "0,warmup,3,0\n"
              "100,measure,1.5,0.25\n");
}

TEST(Sink, JsonlGolden)
{
    std::ostringstream out;
    JsonlSink sink(out);
    sink.writeHeader({"a.gauge", "b.rate"});
    sink.writeRow(0, "warmup", {3.0, 0.0});
    sink.writeRow(100, "measure", {1.5, 0.25});
    sink.flush();
    EXPECT_EQ(out.str(),
              "{\"cycle\":0,\"phase\":\"warmup\","
              "\"metrics\":{\"a.gauge\":3,\"b.rate\":0}}\n"
              "{\"cycle\":100,\"phase\":\"measure\","
              "\"metrics\":{\"a.gauge\":1.5,\"b.rate\":0.25}}\n");
}

// -------------------------------------------------------------- sampler

TEST(Sampler, GaugeEmitsInstantaneousValue)
{
    double v = 7.0;
    Sampler s;
    s.setKeepInMemory(true);
    s.addChannel("g", ChannelKind::Gauge, [&] { return v; });
    s.sample(0, "p");
    v = 3.0;
    s.sample(10, "p");
    const auto& series = s.series("g");
    ASSERT_EQ(series.size(), 2u);
    EXPECT_DOUBLE_EQ(series[0].value, 7.0);
    EXPECT_DOUBLE_EQ(series[1].value, 3.0);
    EXPECT_EQ(series[1].cycle, 10);
}

TEST(Sampler, CounterEmitsDeltaAndHandlesReset)
{
    double raw = 5.0;
    Sampler s;
    s.setKeepInMemory(true);
    s.addChannel("c", ChannelKind::Counter, [&] { return raw; });
    s.sample(0, "p");   // first sample: no previous -> raw
    raw = 12.0;
    s.sample(10, "p");  // delta 7
    raw = 2.0;          // counter reset (measurement-window reset)
    s.sample(20, "p");  // raw is the whole delta
    const auto& series = s.series("c");
    ASSERT_EQ(series.size(), 3u);
    EXPECT_DOUBLE_EQ(series[0].value, 5.0);
    EXPECT_DOUBLE_EQ(series[1].value, 7.0);
    EXPECT_DOUBLE_EQ(series[2].value, 2.0);
}

TEST(Sampler, RateDividesDeltaByElapsedCycles)
{
    double raw = 0.0;
    Sampler s;
    s.setKeepInMemory(true);
    s.addChannel("r", ChannelKind::Rate, [&] { return raw; });
    s.sample(0, "p");   // first sample: no elapsed window -> 0
    raw = 50.0;
    s.sample(100, "p"); // 50 events / 100 cycles
    raw = 50.0;
    s.sample(200, "p"); // idle window
    const auto& series = s.series("r");
    ASSERT_EQ(series.size(), 3u);
    EXPECT_DOUBLE_EQ(series[0].value, 0.0);
    EXPECT_DOUBLE_EQ(series[1].value, 0.5);
    EXPECT_DOUBLE_EQ(series[2].value, 0.0);
}

TEST(SamplerDeath, RejectsDuplicateChannel)
{
    Sampler s;
    s.addChannel("dup", ChannelKind::Gauge, [] { return 0.0; });
    EXPECT_PANIC(
        s.addChannel("dup", ChannelKind::Gauge, [] { return 0.0; }),
        "duplicate telemetry channel");
}

TEST(SamplerDeath, RejectsChannelAfterFirstSample)
{
    Sampler s;
    s.addChannel("a", ChannelKind::Gauge, [] { return 0.0; });
    s.sample(0, "p");
    EXPECT_PANIC(
        s.addChannel("late", ChannelKind::Gauge, [] { return 0.0; }),
        "registered after sampling started");
}

// ------------------------------------------------------------------ hub

TEST(TelemetryHub, DefaultConstructedIsDisabled)
{
    TelemetryHub hub;
    EXPECT_FALSE(hub.enabled());
    EXPECT_FALSE(hub.samplingEnabled());
    EXPECT_EQ(hub.tracer(), nullptr);
    hub.tick(0);  // must be a no-op, not a crash
    hub.finish(0);
    EXPECT_EQ(hub.sampler().samplesTaken(), 0u);
}

TEST(TelemetryHub, SamplingCadenceFollowsInterval)
{
    TelemetryConfig tc;
    tc.keepInMemory = true;
    tc.sampleInterval = 100;
    TelemetryHub hub(tc);
    hub.addChannel("g", ChannelKind::Gauge, [] { return 1.0; });
    hub.beginPhase("measure", 0);
    for (std::int64_t cycle = 0; cycle < 1000; ++cycle)
        hub.tick(cycle);
    // Samples at 0, 100, ..., 900.
    EXPECT_EQ(hub.sampler().samplesTaken(), 10u);
    EXPECT_EQ(hub.sampler().lastSampleCycle(), 900);
    // finish() takes a final off-interval sample...
    hub.finish(999);
    EXPECT_EQ(hub.sampler().samplesTaken(), 11u);
    EXPECT_EQ(hub.sampler().lastSampleCycle(), 999);
    // ...but not a duplicate when the last cycle was already sampled.
    hub.finish(999);
    EXPECT_EQ(hub.sampler().samplesTaken(), 11u);
}

TEST(TelemetryHub, PhaseTagAndMeanInPhase)
{
    double v = 10.0;
    TelemetryConfig tc;
    tc.keepInMemory = true;
    tc.sampleInterval = 10;
    TelemetryHub hub(tc);
    hub.addChannel("g", ChannelKind::Gauge, [&] { return v; });
    hub.beginPhase("warmup", 0);
    for (std::int64_t cycle = 0; cycle < 30; ++cycle)
        hub.tick(cycle);  // samples 0, 10, 20 at v=10
    hub.beginPhase("measure", 30);
    v = 20.0;
    for (std::int64_t cycle = 30; cycle < 60; ++cycle)
        hub.tick(cycle);  // samples 30, 40, 50 at v=20
    hub.beginPhase("drain", 60);
    v = 2.0;
    hub.tick(60);
    hub.finish(60);
    EXPECT_DOUBLE_EQ(hub.meanInPhase("g", "warmup"), 10.0);
    EXPECT_DOUBLE_EQ(hub.meanInPhase("g", "measure"), 20.0);
    EXPECT_DOUBLE_EQ(hub.meanInPhase("g", "drain"), 2.0);
    EXPECT_DOUBLE_EQ(hub.meanInPhase("g", "nonexistent"), 0.0);
    EXPECT_DOUBLE_EQ(hub.meanInPhase("nope", "measure"), 0.0);
    ASSERT_EQ(hub.phaseMarks().size(), 3u);
    EXPECT_EQ(hub.phaseMarks()[1].name, "measure");
    EXPECT_EQ(hub.phaseMarks()[1].cycle, 30);
}

TEST(TelemetryHub, CsvRoundTripThroughSink)
{
    auto out = std::make_unique<std::ostringstream>();
    std::ostringstream& ref = *out;
    double v = 1.0;
    TelemetryConfig tc;
    tc.sampleInterval = 5;
    tc.keepInMemory = true;
    TelemetryHub hub(tc);
    hub.addChannel("x", ChannelKind::Gauge, [&] { return v; });
    hub.addChannel("y", ChannelKind::Counter, [&] { return 2 * v; });
    hub.addSink(std::make_unique<CsvSink>(ref));
    hub.beginPhase("measure", 0);
    hub.tick(0);
    v = 4.0;
    hub.tick(5);
    hub.finish(5);
    EXPECT_EQ(ref.str(),
              "cycle,phase,x,y\n"
              "0,measure,1,2\n"
              "5,measure,4,6\n");
    // The same samples are retained for programmatic access.
    ASSERT_EQ(hub.series("x").size(), 2u);
    EXPECT_DOUBLE_EQ(hub.series("x")[1].value, 4.0);
}

TEST(TelemetryHub, ConfigFromSimReadsKeys)
{
    SimConfig cfg = defaultConfig();
    cfg.set("telemetry_out", "ts.csv");
    cfg.set("telemetry_format", "jsonl");
    cfg.setInt("sample_interval", 25);
    cfg.setBool("telemetry_per_router", false);
    cfg.set("trace_out", "t.jsonl");
    cfg.setInt("trace_packets", 64);
    const TelemetryConfig tc = TelemetryHub::configFromSim(cfg);
    EXPECT_EQ(tc.timeSeriesPath, "ts.csv");
    EXPECT_EQ(tc.format, "jsonl");
    EXPECT_EQ(tc.sampleInterval, 25);
    EXPECT_FALSE(tc.perRouter);
    EXPECT_EQ(tc.tracePath, "t.jsonl");
    EXPECT_EQ(tc.tracePackets, 64u);
    EXPECT_TRUE(tc.anyEnabled());
    // The defaults describe a fully disabled hub.
    const TelemetryConfig off =
        TelemetryHub::configFromSim(defaultConfig());
    EXPECT_FALSE(off.anyEnabled());
}

// --------------------------------------------------------------- tracer

/**
 * Single-flit packet with its constants in a pooled descriptor, the
 * way the tracer sees flits from a real network.
 */
Flit
testFlit(PacketPool& pool, std::uint64_t id)
{
    Packet p;
    p.id = id;
    p.src = 1;
    p.dest = 6;
    p.size = 1;
    p.createTime = 4;
    const std::uint32_t d = pool.alloc(p);
    pool.get(d).injectTime = 5;
    return makeFlit(p, 0, d);
}

TEST(PacketTracer, TracedFilterIsIdPrefix)
{
    std::ostringstream out;
    PacketTracer tracer(out, 10);
    EXPECT_FALSE(tracer.traced(0));
    EXPECT_TRUE(tracer.traced(1));
    EXPECT_TRUE(tracer.traced(10));
    EXPECT_FALSE(tracer.traced(11));
}

TEST(PacketTracer, CompletedPacketGoldenRecord)
{
    std::ostringstream out;
    PacketPool pool;
    PacketTracer tracer(out, 10);
    tracer.setPool(&pool);
    const Flit f = testFlit(pool, 3);
    // Two hops: one with a 2-cycle VA stall and a 1-cycle SA stall,
    // one that clears the minimum pipeline in a single cycle.
    tracer.onHopArrive(f, 1, 5);
    tracer.onVaGrant(f, 1, 7);
    tracer.onSwitchTraverse(f, 1, 8);
    tracer.onHopArrive(f, 2, 9);
    tracer.onVaGrant(f, 2, 9);
    tracer.onSwitchTraverse(f, 2, 9);
    tracer.onEject(f, 6, 12);
    EXPECT_EQ(tracer.packetsCompleted(), 1u);
    EXPECT_EQ(tracer.packetsInFlight(), 0u);
    EXPECT_EQ(out.str(),
              "{\"packet\":3,\"src\":1,\"dest\":6,\"size\":1,"
              "\"class\":\"bg\",\"create\":4,\"inject\":5,"
              "\"eject\":12,\"latency\":8,\"hops\":["
              "{\"node\":1,\"arrive\":5,\"va\":7,\"st\":8,"
              "\"va_stall\":2,\"sa_stall\":1},"
              "{\"node\":2,\"arrive\":9,\"va\":9,\"st\":9,"
              "\"va_stall\":0,\"sa_stall\":0}]}\n");
}

TEST(PacketTracer, FlushEmitsIncompletePacketsInIdOrder)
{
    std::ostringstream out;
    PacketPool pool;
    PacketTracer tracer(out, 10);
    tracer.setPool(&pool);
    tracer.onHopArrive(testFlit(pool, 7), 1, 5);
    tracer.onHopArrive(testFlit(pool, 2), 1, 6);
    tracer.flush();
    EXPECT_EQ(tracer.packetsInFlight(), 0u);
    const std::string text = out.str();
    // id order, regardless of event order.
    EXPECT_LT(text.find("\"packet\":2"), text.find("\"packet\":7"));
    EXPECT_NE(text.find("\"eject\":-1"), std::string::npos);
    EXPECT_NE(text.find("\"complete\":false"), std::string::npos);
}

TEST(PacketTracer, UntracedEjectIsIgnored)
{
    std::ostringstream out;
    PacketPool pool;
    PacketTracer tracer(out, 10);
    tracer.setPool(&pool);
    tracer.onEject(testFlit(pool, 3), 6, 12);
    EXPECT_EQ(tracer.packetsCompleted(), 0u);
    EXPECT_TRUE(out.str().empty());
}

// ---------------------------------------------- TrafficManager wiring

TEST(TelemetryIntegration, ConfigDrivenCsvAndTrace)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path();
    const fs::path csv = dir / "fp_test_telemetry.csv";
    const fs::path trace = dir / "fp_test_trace.jsonl";

    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    cfg.setDouble("injection_rate", 0.1);
    cfg.setInt("warmup_cycles", 200);
    cfg.setInt("measure_cycles", 400);
    cfg.setInt("drain_cycles", 2000);
    cfg.set("telemetry_out", csv.string());
    cfg.setInt("sample_interval", 50);
    cfg.set("trace_out", trace.string());
    cfg.setInt("trace_packets", 20);

    setQuiet(true);
    const RunStats stats = runExperiment(cfg);
    EXPECT_TRUE(stats.drained);

    // CSV: a run-metadata comment precedes the header, which carries
    // aggregate + per-router channels; the phase column walks
    // warmup -> measure -> drain.
    std::ifstream in(csv);
    ASSERT_TRUE(in.is_open());
    std::string meta_line;
    ASSERT_TRUE(std::getline(in, meta_line));
    EXPECT_EQ(meta_line.rfind("# footprint.telemetry/1 ", 0), 0u);
    EXPECT_NE(meta_line.find("seed="), std::string::npos);
    EXPECT_NE(meta_line.find("config_hash="), std::string::npos);
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header.rfind("cycle,phase,", 0), 0u);
    EXPECT_NE(header.find("net.vc_occ"), std::string::npos);
    EXPECT_NE(header.find("net.link_util"), std::string::npos);
    EXPECT_NE(header.find("r0.vc_occ"), std::string::npos);
    EXPECT_NE(header.find("r15.credits"), std::string::npos);
    EXPECT_NE(header.find("ep0.inj_q"), std::string::npos);
    bool sawWarmup = false;
    bool sawMeasure = false;
    bool sawDrain = false;
    std::size_t rows = 0;
    for (std::string line; std::getline(in, line); ++rows) {
        sawWarmup = sawWarmup
            || line.find(",warmup,") != std::string::npos;
        sawMeasure = sawMeasure
            || line.find(",measure,") != std::string::npos;
        sawDrain = sawDrain
            || line.find(",drain,") != std::string::npos;
    }
    EXPECT_GE(rows, 12u);  // 600+ cycles at interval 50
    EXPECT_TRUE(sawWarmup);
    EXPECT_TRUE(sawMeasure);
    EXPECT_TRUE(sawDrain);
    in.close();

    // Trace: a metadata record first, then one packet record per
    // traced packet with per-hop stalls.
    std::ifstream tin(trace);
    ASSERT_TRUE(tin.is_open());
    std::string tmeta;
    ASSERT_TRUE(std::getline(tin, tmeta));
    EXPECT_EQ(tmeta.rfind("{\"schema\":\"footprint.packet_trace/1\"", 0),
              0u);
    EXPECT_NE(tmeta.find("\"meta\":{"), std::string::npos);
    std::size_t lines = 0;
    bool sawStall = false;
    for (std::string line; std::getline(tin, line); ++lines) {
        EXPECT_EQ(line.rfind("{\"packet\":", 0), 0u);
        EXPECT_NE(line.find("\"hops\":["), std::string::npos);
        sawStall = sawStall
            || line.find("\"va_stall\":") != std::string::npos;
    }
    EXPECT_EQ(lines, 20u);
    EXPECT_TRUE(sawStall);
    tin.close();

    fs::remove(csv);
    fs::remove(trace);
}

TEST(TelemetryIntegration, AttachedInMemoryHubSeesPhases)
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setDouble("injection_rate", 0.1);
    cfg.setInt("warmup_cycles", 200);
    cfg.setInt("measure_cycles", 400);
    cfg.setInt("drain_cycles", 2000);

    TelemetryConfig tc;
    tc.keepInMemory = true;
    tc.sampleInterval = 50;
    tc.perRouter = false;
    TelemetryHub hub(tc);

    setQuiet(true);
    TrafficManager tm(cfg);
    tm.attachTelemetry(&hub);
    const RunStats stats = tm.run();
    EXPECT_TRUE(stats.drained);

    ASSERT_GE(hub.phaseMarks().size(), 3u);
    EXPECT_EQ(hub.phaseMarks()[0].name, "warmup");
    EXPECT_EQ(hub.phaseMarks()[1].name, "measure");
    EXPECT_EQ(hub.phaseMarks()[1].cycle, 200);
    EXPECT_EQ(hub.phaseMarks()[2].name, "drain");
    EXPECT_EQ(hub.phaseMarks()[2].cycle, 600);

    // Traffic flowed during measurement, so the network held flits and
    // moved them across links.
    EXPECT_GT(hub.meanInPhase("net.vc_occ", "measure"), 0.0);
    EXPECT_GT(hub.meanInPhase("net.link_util", "measure"), 0.0);
    // Utilisation is a fraction of link-cycles.
    EXPECT_LE(hub.meanInPhase("net.link_util", "measure"), 1.0);
    // Per-router channels were not registered in aggregate mode.
    EXPECT_TRUE(hub.series("r0.vc_occ").empty());
}

} // namespace
} // namespace footprint
