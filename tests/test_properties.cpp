/**
 * @file
 * Randomized property tests over seeds and configurations: deadlock
 * freedom (every packet eventually delivered), flit conservation,
 * minimal routing, and quiescence — the invariants the simulator must
 * hold under any admissible traffic.
 */

#include <gtest/gtest.h>

#include <map>

#include "network/network.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace footprint {
namespace {

struct PropertyCase
{
    std::string algo;
    std::uint64_t seed;
    int numVcs;
    int maxPacketSize;
};

std::vector<PropertyCase>
propertyCases()
{
    std::vector<PropertyCase> cases;
    for (const auto& algo : allRoutingAlgorithmNames()) {
        for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
            cases.push_back({algo, seed, 4, 3});
            cases.push_back({algo, seed, 2, 1});
        }
    }
    return cases;
}

class RandomTrafficProperty
    : public testing::TestWithParam<PropertyCase>
{};

TEST_P(RandomTrafficProperty, AllPacketsDeliveredMinimallyAndDrained)
{
    const PropertyCase& pc = GetParam();
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", pc.numVcs);
    cfg.set("routing", pc.algo);
    Network net(cfg);
    const Mesh& mesh = net.mesh();

    Rng gen(pc.seed);
    std::map<std::uint64_t, std::pair<int, int>> outstanding;
    std::uint64_t id = 0;
    std::int64_t flits_in = 0;

    // 600 cycles of random moderate-load traffic, then drain.
    std::int64_t cycle = 0;
    for (; cycle < 600; ++cycle) {
        for (int src = 0; src < 16; ++src) {
            if (!gen.nextBool(0.25))
                continue;
            Packet p;
            p.id = ++id;
            p.src = src;
            p.dest = static_cast<int>(gen.nextBounded(16));
            if (p.dest == src)
                continue;
            p.size = static_cast<int>(
                gen.nextRange(1, pc.maxPacketSize));
            p.createTime = cycle;
            net.endpoint(src).enqueue(p);
            outstanding[p.id] = {p.src, p.dest};
            flits_in += p.size;
        }
        net.step(cycle);
        for (int n = 0; n < 16; ++n) {
            for (const auto& done : net.endpoint(n).drainEjected()) {
                auto it = outstanding.find(done.packetId);
                ASSERT_NE(it, outstanding.end()) << "duplicate eject";
                EXPECT_EQ(it->second.second, done.dest);
                EXPECT_EQ(n, done.dest);
                // Minimal routing: hops == distance + 1.
                EXPECT_EQ(done.hops,
                          mesh.hopDistance(done.src, done.dest) + 1);
                outstanding.erase(it);
            }
        }
    }
    // Drain phase: everything must complete (deadlock freedom).
    for (; cycle < 20000 && !outstanding.empty(); ++cycle) {
        net.step(cycle);
        for (int n = 0; n < 16; ++n) {
            for (const auto& done : net.endpoint(n).drainEjected())
                outstanding.erase(done.packetId);
        }
    }
    EXPECT_TRUE(outstanding.empty())
        << outstanding.size() << " packets stuck (deadlock?) with "
        << pc.algo;

    // Conservation and quiescence.
    std::int64_t flits_out = 0;
    for (int n = 0; n < 16; ++n) {
        flits_out += static_cast<std::int64_t>(
            net.endpoint(n).flitsEjected());
    }
    EXPECT_EQ(flits_out, flits_in);
    for (std::int64_t c = cycle; c < cycle + 30; ++c)
        net.step(c);
    EXPECT_EQ(net.totalFlitsInFlight(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomTrafficProperty, testing::ValuesIn(propertyCases()),
    [](const testing::TestParamInfo<PropertyCase>& info) {
        std::string name = info.param.algo + "_s"
            + std::to_string(info.param.seed) + "_v"
            + std::to_string(info.param.numVcs);
        for (char& c : name) {
            if (c == '+')
                c = 'X';
        }
        return name;
    });

TEST(StressProperty, HotspotBurstEventuallyDrains)
{
    // Oversubscribe one endpoint hard, stop, and verify the tree
    // drains completely for the Duato-based algorithms.
    for (const char* algo : {"dbar", "footprint"}) {
        SimConfig cfg = defaultConfig();
        cfg.setInt("mesh_width", 4);
        cfg.setInt("mesh_height", 4);
        cfg.setInt("num_vcs", 4);
        cfg.set("routing", algo);
        Network net(cfg);
        std::uint64_t id = 0;
        std::int64_t ejected = 0;
        std::int64_t created = 0;
        for (std::int64_t cycle = 0; cycle < 400; ++cycle) {
            if (cycle < 200) {
                for (int src : {0, 3, 12}) {
                    Packet p;
                    p.id = ++id;
                    p.src = src;
                    p.dest = 15;
                    p.size = 1;
                    p.createTime = cycle;
                    net.endpoint(src).enqueue(p);
                    ++created;
                }
            }
            net.step(cycle);
        }
        std::int64_t cycle = 400;
        for (; cycle < 10000 && ejected < created; ++cycle) {
            net.step(cycle);
            ejected = static_cast<std::int64_t>(
                net.endpoint(15).flitsEjected());
        }
        EXPECT_EQ(ejected, created) << algo;
    }
}

} // namespace
} // namespace footprint
