/**
 * @file
 * Tests for the streaming flight recorder (DESIGN.md §15): config
 * parsing and clamping, per-window latency-histogram mergeability,
 * steady-state detector convergence, window math against a driven
 * network, JSONL record shape, warmup=auto, measured-before-steady
 * flagging, saturation-onset extraction, and bit-identical window
 * records across the full / activity / sharded step modes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "network/traffic_manager.hpp"
#include "obs/hdr_histogram.hpp"
#include "obs/timeseries.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace footprint {
namespace {

TEST(TimeseriesConfig, FromSimReadsDefaults)
{
    const TimeseriesConfig tc =
        TimeseriesConfig::fromSim(defaultConfig());
    EXPECT_FALSE(tc.enabled);
    EXPECT_EQ(tc.outPath, "timeseries.jsonl");
    EXPECT_EQ(tc.interval, 1000);
    EXPECT_EQ(tc.steadyWindows, 8);
    EXPECT_DOUBLE_EQ(tc.steadyTolerance, 0.02);
    EXPECT_FALSE(tc.warmupAuto);
    EXPECT_EQ(tc.warmupMax, 50000);
    EXPECT_FALSE(tc.active());
}

TEST(TimeseriesConfig, FromSimClampsDegenerateValues)
{
    SimConfig cfg = defaultConfig();
    cfg.setBool("timeseries", true);
    cfg.setInt("timeseries_interval", 0);
    cfg.setInt("steady_windows", 1);
    cfg.setDouble("steady_tolerance", -0.5);
    cfg.setInt("warmup_max_cycles", -100);
    const TimeseriesConfig tc = TimeseriesConfig::fromSim(cfg);
    EXPECT_TRUE(tc.enabled);
    EXPECT_TRUE(tc.active());
    EXPECT_EQ(tc.interval, 1);
    EXPECT_EQ(tc.steadyWindows, 2);
    EXPECT_DOUBLE_EQ(tc.steadyTolerance, 0.02);
    // warmup_max_cycles floors at one window interval.
    EXPECT_GE(tc.warmupMax, tc.interval);
}

TEST(TimeseriesConfig, WarmupAutoActivatesRecorderWithoutStream)
{
    SimConfig cfg = defaultConfig();
    cfg.set("warmup", "auto");
    const TimeseriesConfig tc = TimeseriesConfig::fromSim(cfg);
    EXPECT_FALSE(tc.enabled);
    EXPECT_TRUE(tc.warmupAuto);
    EXPECT_TRUE(tc.active());
}

TEST(TimeseriesConfig, NewKeysAreRegistered)
{
    for (const char* key :
         {"timeseries", "timeseries_out", "timeseries_interval",
          "steady_windows", "steady_tolerance", "warmup",
          "warmup_max_cycles", "console", "console_interval_ms"}) {
        EXPECT_TRUE(SimConfig::isKnownKey(key))
            << key << " must be a registered config key";
    }
}

/** Hand-build a window with the given latency mean and rate. */
WindowRecord
makeWindow(std::int64_t index, double latency_mean,
           std::uint64_t accepted, std::int64_t interval = 100)
{
    WindowRecord w;
    w.index = index;
    w.startCycle = index * interval;
    w.endCycle = (index + 1) * interval;
    w.latencyCount = 50;
    w.latencyMean = latency_mean;
    w.acceptedFlits = accepted;
    return w;
}

TEST(SteadyStateDetector, ConvergesOnFlatSeries)
{
    SteadyStateDetector det(4, 0.02);
    EXPECT_FALSE(det.converged());
    for (std::int64_t i = 0; i < 4; ++i) {
        det.addWindow(makeWindow(i, 20.0, 500), 16);
        // Needs the full trailing ring before it may converge.
        EXPECT_EQ(det.converged(), i == 3);
    }
    EXPECT_EQ(det.steadyCycle(), 400);
    // The detected cycle is latched at first convergence.
    det.addWindow(makeWindow(4, 20.0, 500), 16);
    EXPECT_EQ(det.steadyCycle(), 400);
}

TEST(SteadyStateDetector, RejectsDriftingLatency)
{
    SteadyStateDetector det(4, 0.02);
    // Latency grows 20% per window: never within a 2% half-width.
    double lat = 20.0;
    for (std::int64_t i = 0; i < 12; ++i, lat *= 1.2)
        det.addWindow(makeWindow(i, lat, 500), 16);
    EXPECT_FALSE(det.converged());
    EXPECT_EQ(det.steadyCycle(), -1);
    EXPECT_GT(det.lastLatencySpread(), 0.02);
}

TEST(SteadyStateDetector, RejectsDriftingThroughputEvenIfLatencyFlat)
{
    SteadyStateDetector det(4, 0.02);
    std::uint64_t accepted = 100;
    for (std::int64_t i = 0; i < 12; ++i, accepted += 40)
        det.addWindow(makeWindow(i, 20.0, accepted), 16);
    EXPECT_FALSE(det.converged());
}

TEST(SteadyStateDetector, EmptyWindowResetsTheRing)
{
    SteadyStateDetector det(3, 0.02);
    det.addWindow(makeWindow(0, 20.0, 500), 16);
    det.addWindow(makeWindow(1, 20.0, 500), 16);
    // A window with no ejections (e.g. drain tail / dead network)
    // invalidates the trailing means instead of polluting them.
    WindowRecord empty = makeWindow(2, 0.0, 0);
    empty.latencyCount = 0;
    det.addWindow(empty, 16);
    det.addWindow(makeWindow(3, 20.0, 500), 16);
    det.addWindow(makeWindow(4, 20.0, 500), 16);
    EXPECT_FALSE(det.converged());
    det.addWindow(makeWindow(5, 20.0, 500), 16);
    EXPECT_TRUE(det.converged());
    EXPECT_EQ(det.steadyCycle(), 600);
}

/** Drive a network with the recorder attached, uniform load. */
void
driveUniform(Network& net, FlightRecorder& rec, std::int64_t cycles,
             double load, std::uint64_t seed = 23)
{
    const int nodes = net.mesh().numNodes();
    Rng gen(seed);
    std::uint64_t id = 0;
    for (std::int64_t cycle = 0; cycle < cycles; ++cycle) {
        for (int n = 0; n < nodes; ++n) {
            if (gen.nextBool(load)) {
                Packet p;
                p.id = ++id;
                p.src = n;
                p.dest = static_cast<int>(gen.nextBounded(nodes));
                if (p.dest == n)
                    continue;
                p.size = 1 + static_cast<int>(gen.nextBounded(3));
                p.createTime = cycle;
                net.endpoint(n).enqueue(p);
                rec.onOffered(p.size);
            }
        }
        net.step(cycle);
        for (int n = 0; n < nodes; ++n)
            for (const EjectedPacket& e :
                 net.endpoint(n).drainEjected())
                rec.onEjected(e.latency());
        rec.tick(cycle);
    }
    rec.finish(cycles);
}

TimeseriesConfig
recorderConfig(std::int64_t interval)
{
    TimeseriesConfig tc;
    tc.enabled = true;
    tc.outPath = "";  // no stream; in-memory windows only
    tc.interval = interval;
    return tc;
}

TEST(FlightRecorder, WindowsTileTheRunWithConservedFlits)
{
    SimConfig cfg = defaultConfig();
    Network net(cfg);
    FlightRecorder rec(net, recorderConfig(100), nullptr);
    driveUniform(net, rec, 250, 0.05);

    // [0,100), [100,200), and the partial trailing [200,250).
    ASSERT_EQ(rec.windows().size(), 3u);
    const auto& w = rec.windows();
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_EQ(w[i].index, static_cast<std::int64_t>(i));
        if (i > 0) {
            EXPECT_EQ(w[i].startCycle, w[i - 1].endCycle);
        }
    }
    EXPECT_EQ(w[2].endCycle, 250);

    // Window deltas of the network counters must sum to the totals.
    std::uint64_t accepted = 0;
    std::uint64_t va_grants = 0;
    std::uint64_t packets = 0;
    for (const WindowRecord& rw : w) {
        accepted += rw.acceptedFlits;
        va_grants += rw.vaGrants[0] + rw.vaGrants[1] + rw.vaGrants[2] +
                     rw.vaGrants[3] + rw.vaGrants[4];
        packets += rw.packetsEjected;
    }
    EXPECT_EQ(accepted, net.totalFlitsEjected());
    EXPECT_EQ(va_grants, net.aggregateCounters().vcAllocSuccess);
    EXPECT_GT(packets, 0u);
}

TEST(FlightRecorder, PerRegimeGrantsSumToVcAllocSuccess)
{
    SimConfig cfg = defaultConfig();
    cfg.set("routing", "footprint");
    Network net(cfg);
    FlightRecorder rec(net, recorderConfig(200), nullptr);
    driveUniform(net, rec, 400, 0.2);
    const Router::Counters total = net.aggregateCounters();
    std::uint64_t by_regime = 0;
    for (int r = 0; r < kNumVaRegimes; ++r)
        by_regime += total.vaGrantsByPriority[static_cast<std::size_t>(
            r)];
    EXPECT_EQ(by_regime, total.vcAllocSuccess);
    EXPECT_GT(by_regime, 0u);
}

TEST(FlightRecorder, MergedWindowHistogramEqualsRunWideHistogram)
{
    // The mergeability property: per-window histograms merged window
    // by window must be indistinguishable from one histogram fed
    // every sample — identical counts and quantiles.
    SimConfig cfg = defaultConfig();
    Network net(cfg);
    FlightRecorder rec(net, recorderConfig(50), nullptr);

    HdrHistogram direct;
    const int nodes = net.mesh().numNodes();
    Rng gen(31);
    std::uint64_t id = 0;
    for (std::int64_t cycle = 0; cycle < 300; ++cycle) {
        for (int n = 0; n < nodes; ++n) {
            if (gen.nextBool(0.1)) {
                Packet p;
                p.id = ++id;
                p.src = n;
                p.dest = static_cast<int>(gen.nextBounded(nodes));
                if (p.dest == n)
                    continue;
                p.size = 1;
                p.createTime = cycle;
                net.endpoint(n).enqueue(p);
                rec.onOffered(p.size);
            }
        }
        net.step(cycle);
        for (int n = 0; n < nodes; ++n) {
            for (const EjectedPacket& e :
                 net.endpoint(n).drainEjected()) {
                rec.onEjected(e.latency());
                direct.add(
                    static_cast<std::uint64_t>(e.latency()));
            }
        }
        rec.tick(cycle);
    }
    rec.finish(300);

    const HdrHistogram& merged = rec.mergedLatencyHist();
    ASSERT_GT(direct.count(), 0u);
    EXPECT_EQ(merged.count(), direct.count());
    EXPECT_EQ(merged.max(), direct.max());
    EXPECT_DOUBLE_EQ(merged.mean(), direct.mean());
    for (double q : {0.5, 0.9, 0.99, 0.999})
        EXPECT_DOUBLE_EQ(merged.percentile(q), direct.percentile(q));

    // And the per-window latency counts sum to the total.
    std::uint64_t window_count = 0;
    for (const WindowRecord& w : rec.windows())
        window_count += w.latencyCount;
    EXPECT_EQ(window_count, direct.count());
}

TEST(FlightRecorder, WindowJsonHasSchemaFieldsAndHeaderHasSchema)
{
    SimConfig cfg = defaultConfig();
    Network net(cfg);
    FlightRecorder rec(net, recorderConfig(100), nullptr);
    driveUniform(net, rec, 120, 0.05);
    ASSERT_FALSE(rec.windows().empty());

    const std::string header = rec.headerJson();
    EXPECT_NE(header.find("\"schema\":\"footprint.timeseries/1\""),
              std::string::npos);
    EXPECT_NE(header.find("\"mesh\""), std::string::npos);

    const std::string line = rec.windowJson(rec.windows().front());
    for (const char* field :
         {"\"window\"", "\"start\"", "\"end\"", "\"offered_flits\"",
          "\"accepted_flits\"", "\"packets\"", "\"offered_rate\"",
          "\"accepted_rate\"", "\"latency\"", "\"in_flight\"",
          "\"active_nodes\"", "\"va_grants\"", "\"va_fails\"",
          "\"watchdog_events\"", "\"escape\"", "\"busy\"",
          "\"footprint\"", "\"idle\"", "\"reclaim\"", "\"p99\"",
          "\"p999\""}) {
        EXPECT_NE(line.find(field), std::string::npos)
            << "window record is missing " << field;
    }
}

// ---------------------------------------------------------------
// runExperiment integration.
// ---------------------------------------------------------------

SimConfig
runConfig(double rate)
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    cfg.set("routing", "footprint");
    cfg.set("traffic", "uniform");
    cfg.setDouble("injection_rate", rate);
    cfg.setInt("warmup_cycles", 300);
    cfg.setInt("measure_cycles", 1500);
    cfg.setInt("drain_cycles", 4000);
    cfg.setInt("timeseries_interval", 100);
    return cfg;
}

TEST(TimeseriesRun, StreamIsWrittenAndWellFormed)
{
    const std::string path = "ts_run_stream.jsonl";
    SimConfig cfg = runConfig(0.1);
    cfg.setBool("timeseries", true);
    cfg.set("timeseries_out", path);
    const RunStats stats = runExperiment(cfg);
    EXPECT_TRUE(stats.drained);
    EXPECT_EQ(stats.timeseriesPath, path);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        if (!line.empty())
            lines.push_back(line);
    // Header plus at least the warmup+measure windows.
    ASSERT_GE(lines.size(), 2u);
    EXPECT_NE(
        lines[0].find("\"schema\":\"footprint.timeseries/1\""),
        std::string::npos);
    // The header carries the run metadata stamp.
    EXPECT_NE(lines[0].find("\"seed\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"config_hash\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"window\":0"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TimeseriesRun, TooShortWarmupIsFlagged)
{
    // With a 100-cycle warmup the 8-window detector cannot possibly
    // have converged by measurement start: the run must carry the
    // measured-before-steady flag instead of silently reporting
    // biased numbers.
    SimConfig cfg = runConfig(0.1);
    cfg.setBool("timeseries", true);
    cfg.set("timeseries_out", "ts_short_warmup.jsonl");
    cfg.setInt("warmup_cycles", 100);
    const RunStats stats = runExperiment(cfg);
    EXPECT_TRUE(stats.measuredBeforeSteady);
    EXPECT_EQ(stats.warmupUsed, 100);
    std::remove("ts_short_warmup.jsonl");
}

TEST(TimeseriesRun, WarmupAutoEndsWarmupAtConvergence)
{
    SimConfig cfg = runConfig(0.1);
    cfg.set("warmup", "auto");
    cfg.setInt("warmup_max_cycles", 20000);
    // Wider windows and a looser tolerance than the default: a 4x4
    // mesh at 10% load has too few packets per 100-cycle window for
    // a 2% half-width to be statistically reachable.
    cfg.setInt("timeseries_interval", 500);
    cfg.setDouble("steady_tolerance", 0.08);
    const RunStats stats = runExperiment(cfg);
    EXPECT_TRUE(stats.drained);
    // Converged strictly before the cap, on a window boundary.
    ASSERT_GE(stats.steadyStateCycle, 0);
    EXPECT_LT(stats.warmupUsed, 20000);
    EXPECT_EQ(stats.warmupUsed, stats.steadyStateCycle);
    EXPECT_EQ(stats.warmupUsed % 500, 0);
    EXPECT_FALSE(stats.measuredBeforeSteady);
    EXPECT_GT(stats.measuredEjected, 0u);
}

TEST(TimeseriesRun, SaturatedRunReportsOnsetAndNoSteadyState)
{
    // Far past saturation: accepted lags offered with a growing
    // backlog, so onset must be detected; the 2%-tolerance detector
    // must not declare such a run steady before measurement.
    SimConfig cfg = runConfig(0.95);
    cfg.setBool("timeseries", true);
    cfg.set("timeseries_out", "ts_saturated.jsonl");
    cfg.setInt("measure_cycles", 2000);
    cfg.setInt("drain_cycles", 300);
    const RunStats stats = runExperiment(cfg);
    EXPECT_GE(stats.saturationOnsetCycle, 0);
    EXPECT_TRUE(stats.measuredBeforeSteady);
    std::remove("ts_saturated.jsonl");
}

TEST(TimeseriesRun, WindowRecordsAreIdenticalAcrossStepModes)
{
    // The determinism contract: recorder windows — and hence every
    // steady-state / saturation decision — must be bit-identical
    // across the serial and parallel stepping engines.
    auto windows = [](const std::string& mode, unsigned shards) {
        SimConfig cfg = runConfig(0.25);
        cfg.setBool("timeseries", true);
        const std::string path = "ts_mode_" + mode + ".jsonl";
        cfg.set("timeseries_out", path);
        cfg.set("step_mode", mode);
        if (shards > 0)
            cfg.setInt("shards", static_cast<std::int64_t>(shards));
        const RunStats stats = runExperiment(cfg);
        std::ifstream in(path);
        std::vector<std::string> lines;
        for (std::string line; std::getline(in, line);)
            if (!line.empty())
                lines.push_back(line);
        std::remove(path.c_str());
        // Drop the header: config_hash differs across step modes by
        // construction (step_mode is part of the config identity).
        return std::pair<std::vector<std::string>, std::int64_t>(
            std::vector<std::string>(lines.begin() + 1, lines.end()),
            stats.steadyStateCycle);
    };

    const auto full = windows("full", 0);
    const auto act = windows("activity", 0);
    const auto shard2 = windows("sharded", 2);
    const auto shard4 = windows("sharded", 4);
    ASSERT_GT(full.first.size(), 5u);
    EXPECT_EQ(full.first, act.first);
    EXPECT_EQ(full.first, shard2.first);
    EXPECT_EQ(full.first, shard4.first);
    EXPECT_EQ(full.second, act.second);
    EXPECT_EQ(full.second, shard2.second);
    EXPECT_EQ(full.second, shard4.second);
}

} // namespace
} // namespace footprint
