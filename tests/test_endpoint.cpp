/**
 * @file
 * Unit tests for the endpoint model: source-side injection (credit
 * respect, VC rotation, one flit per cycle) and sink-side ejection
 * (drain rate, credit return, completion records).
 */

#include <gtest/gtest.h>

#include <memory>

#include "expect_panic.hpp"
#include "network/endpoint.hpp"

namespace footprint {
namespace {

class EndpointHarness
{
  public:
    explicit EndpointHarness(int num_vcs = 4, int buf_size = 4,
                             int ejection_rate = 1,
                             bool atomic = true)
    {
        EndpointParams params;
        params.numVcs = num_vcs;
        params.vcBufSize = buf_size;
        params.ejectionRate = ejection_rate;
        params.atomicVcAlloc = atomic;
        ep = std::make_unique<Endpoint>(3, params, 1, &pool);
        toRouter = std::make_unique<FlitChannel>(1);
        creditFromRouter = std::make_unique<CreditChannel>(1);
        fromRouter = std::make_unique<FlitChannel>(1);
        creditToRouter = std::make_unique<CreditChannel>(1);
        ep->connect(toRouter.get(), creditFromRouter.get(),
                    fromRouter.get(), creditToRouter.get());
    }

    /** One endpoint cycle; @return flits the source emitted. */
    std::vector<Flit>
    step()
    {
        ep->receivePhase(cycle);
        ep->computePhase(cycle);
        ++cycle;
        std::vector<Flit> sent;
        while (auto f = toRouter->receive(cycle))
            sent.push_back(*f);
        return sent;
    }

    Packet
    packet(std::uint64_t id, int dest, int size)
    {
        Packet p;
        p.id = id;
        p.src = 3;
        p.dest = dest;
        p.size = size;
        p.createTime = cycle;
        p.measured = true;
        return p;
    }

    PacketPool pool;
    std::unique_ptr<Endpoint> ep;
    std::unique_ptr<FlitChannel> toRouter;
    std::unique_ptr<CreditChannel> creditFromRouter;
    std::unique_ptr<FlitChannel> fromRouter;
    std::unique_ptr<CreditChannel> creditToRouter;
    std::int64_t cycle = 0;
};

TEST(EndpointSource, InjectsOneFlitPerCycle)
{
    EndpointHarness h;
    h.ep->enqueue(h.packet(1, 7, 3));
    for (int i = 0; i < 3; ++i) {
        const auto sent = h.step();
        ASSERT_EQ(sent.size(), 1u) << "cycle " << i;
        EXPECT_EQ(sent[0].head, i == 0);
        EXPECT_EQ(sent[0].tail, i == 2);
        EXPECT_GE(h.pool.get(sent[0].desc).injectTime, 0);
    }
    EXPECT_TRUE(h.step().empty());
    EXPECT_EQ(h.ep->flitsInjected(), 3u);
}

TEST(EndpointSource, PacketFlitsShareOneVc)
{
    EndpointHarness h;
    h.ep->enqueue(h.packet(1, 7, 4));
    int vc = -1;
    for (int i = 0; i < 4; ++i) {
        const auto sent = h.step();
        ASSERT_EQ(sent.size(), 1u);
        if (vc < 0)
            vc = sent[0].vc;
        EXPECT_EQ(sent[0].vc, vc);
    }
}

TEST(EndpointSource, RespectsBufferCredits)
{
    // 2 VCs x 2 slots = 4 flits may be outstanding; atomic policy
    // pins each VC to one packet until its credits return.
    EndpointHarness h(2, 2);
    h.ep->enqueue(h.packet(1, 7, 2));
    h.ep->enqueue(h.packet(2, 9, 2));
    h.ep->enqueue(h.packet(3, 10, 2));
    int sent_total = 0;
    for (int i = 0; i < 10; ++i)
        sent_total += static_cast<int>(h.step().size());
    EXPECT_EQ(sent_total, 4); // packet 3 blocked on credits
    EXPECT_EQ(h.ep->sourceBacklogFlits(), 2);
    // Return packet 1's credits; packet 3 proceeds.
    h.creditFromRouter->send(Credit{0}, h.cycle - 1);
    h.creditFromRouter->send(Credit{0}, h.cycle - 1);
    for (int i = 0; i < 5; ++i)
        sent_total += static_cast<int>(h.step().size());
    EXPECT_EQ(sent_total, 6);
    EXPECT_EQ(h.ep->sourceBacklogFlits(), 0);
}

TEST(EndpointSource, RotatesAcrossInjectionVcs)
{
    EndpointHarness h(4, 4);
    for (int i = 0; i < 4; ++i)
        h.ep->enqueue(h.packet(static_cast<std::uint64_t>(i + 1),
                               7 + i, 1));
    std::set<int> vcs;
    for (int i = 0; i < 4; ++i) {
        const auto sent = h.step();
        ASSERT_EQ(sent.size(), 1u);
        vcs.insert(sent[0].vc);
    }
    // Round-robin spreads consecutive packets over distinct VCs.
    EXPECT_EQ(vcs.size(), 4u);
}

TEST(EndpointSink, DrainsAtConfiguredRate)
{
    EndpointHarness h(4, 4, /*ejection_rate=*/1);
    // Two flits arrive in the same cycle on different VCs.
    Flit a;
    a.dest = 3;
    a.vc = 0;
    a.head = a.tail = true;
    a.packetId = 1;
    Flit b = a;
    b.vc = 1;
    b.packetId = 2;
    h.fromRouter->send(a, h.cycle - 1);
    h.fromRouter->send(b, h.cycle - 1);
    h.step();
    EXPECT_EQ(h.ep->flitsEjected(), 1u); // rate 1: one per cycle
    h.step();
    EXPECT_EQ(h.ep->flitsEjected(), 2u);
}

TEST(EndpointSink, HigherEjectionRateDrainsFaster)
{
    EndpointHarness h(4, 4, /*ejection_rate=*/2);
    for (int v = 0; v < 2; ++v) {
        Flit f;
        f.dest = 3;
        f.vc = v;
        f.head = f.tail = true;
        f.packetId = static_cast<std::uint64_t>(v + 1);
        h.fromRouter->send(f, h.cycle - 1);
    }
    h.step();
    EXPECT_EQ(h.ep->flitsEjected(), 2u);
}

TEST(EndpointSink, ReturnsCreditPerDrainedFlit)
{
    EndpointHarness h;
    Flit f;
    f.dest = 3;
    f.vc = 2;
    f.head = f.tail = true;
    f.packetId = 9;
    h.fromRouter->send(f, h.cycle - 1);
    h.step();
    ++h.cycle; // allow the credit channel latency to elapse
    const auto credit = h.creditToRouter->receive(h.cycle);
    ASSERT_TRUE(credit.has_value());
    EXPECT_EQ(credit->vc, 2);
}

TEST(EndpointSink, RecordsCompletionOnTailWithLatency)
{
    EndpointHarness h;
    // Per-packet constants (size, createTime) ride in a pooled
    // descriptor rather than the flit itself.
    Packet p;
    p.id = 4;
    p.src = 0;
    p.dest = 3;
    p.size = 2;
    p.createTime = 0;
    p.measured = true;
    const std::uint32_t d = h.pool.alloc(p);
    Flit head;
    head.dest = 3;
    head.vc = 0;
    head.head = true;
    head.tail = false;
    head.packetId = 4;
    head.desc = d;
    head.hops = 5;
    Flit tail = head;
    tail.head = false;
    tail.tail = true;
    h.fromRouter->send(head, h.cycle - 1);
    h.step();
    EXPECT_TRUE(h.ep->drainEjected().empty()); // only the head so far
    h.fromRouter->send(tail, h.cycle - 1);
    h.step();
    const auto done = h.ep->drainEjected();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].packetId, 4u);
    EXPECT_EQ(done[0].size, 2);
    EXPECT_EQ(done[0].hops, 5);
    EXPECT_GT(done[0].latency(), 0);
    // drainEjected consumes the records.
    EXPECT_TRUE(h.ep->drainEjected().empty());
}

TEST(EndpointDeath, MisroutedFlitPanics)
{
    EndpointHarness h;
    Flit f;
    f.dest = 11; // endpoint is node 3
    f.vc = 0;
    f.head = f.tail = true;
    h.fromRouter->send(f, h.cycle - 1);
    EXPECT_PANIC(h.step(), "misrouted");
}

TEST(EndpointDeath, WrongSourcePanics)
{
    EndpointHarness h;
    Packet p;
    p.src = 9; // endpoint is node 3
    p.dest = 7;
    EXPECT_PANIC(h.ep->enqueue(p), "wrong endpoint");
}

} // namespace
} // namespace footprint
