/**
 * @file
 * Unit tests for the trace format and the synthetic PARSEC-like trace
 * generator.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "topo/mesh.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_gen.hpp"

namespace footprint {
namespace {

class TraceFileTest : public testing::Test
{
  protected:
    std::string
    tmpPath(const std::string& name)
    {
        const auto dir = std::filesystem::temp_directory_path();
        return (dir / ("fp_trace_test_" + name)).string();
    }

    void
    TearDown() override
    {
        for (const auto& p : created_)
            std::remove(p.c_str());
    }

    std::string
    makePath(const std::string& name)
    {
        const std::string p = tmpPath(name);
        created_.push_back(p);
        return p;
    }

  private:
    std::vector<std::string> created_;
};

TEST_F(TraceFileTest, WriteReadRoundTrip)
{
    const std::string path = makePath("roundtrip");
    {
        TraceWriter w(path);
        w.comment("test trace");
        w.append(TraceEvent{0, 1, 2, 3});
        w.append(TraceEvent{5, 4, 5, 1});
        w.append(TraceEvent{5, 6, 7, 2});
        EXPECT_EQ(w.eventCount(), 3u);
    }
    TraceReader r(path);
    const auto events = r.readAll();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0], (TraceEvent{0, 1, 2, 3}));
    EXPECT_EQ(events[1], (TraceEvent{5, 4, 5, 1}));
    EXPECT_EQ(events[2], (TraceEvent{5, 6, 7, 2}));
}

TEST_F(TraceFileTest, CommentsAndBlankLinesAreSkipped)
{
    const std::string path = makePath("comments");
    {
        std::ofstream out(path);
        out << "# header\n\n10 1 2 1\n# middle\n11 3 4 2\n";
    }
    TraceReader r(path);
    const auto events = r.readAll();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].cycle, 10);
    EXPECT_EQ(events[1].size, 2);
}

TEST_F(TraceFileTest, StreamingNextMatchesReadAll)
{
    const std::string path = makePath("streaming");
    {
        TraceWriter w(path);
        for (int i = 0; i < 10; ++i)
            w.append(TraceEvent{i, i % 4, (i + 1) % 4, 1});
    }
    TraceReader r(path);
    int count = 0;
    while (auto ev = r.next()) {
        EXPECT_EQ(ev->cycle, count);
        ++count;
    }
    EXPECT_EQ(count, 10);
}

TEST_F(TraceFileTest, UnsortedTraceIsFatal)
{
    const std::string path = makePath("unsorted");
    {
        std::ofstream out(path);
        out << "10 1 2 1\n5 1 2 1\n";
    }
    TraceReader r(path);
    (void)r.next();
    EXPECT_EXIT((void)r.next(), testing::ExitedWithCode(1),
                "not sorted");
}

TEST_F(TraceFileTest, MalformedLineIsFatal)
{
    const std::string path = makePath("malformed");
    {
        std::ofstream out(path);
        out << "10 1 junk\n";
    }
    TraceReader r(path);
    EXPECT_EXIT((void)r.next(), testing::ExitedWithCode(1),
                "malformed");
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceReader{"/nonexistent/trace.txt"},
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceGen, DeterministicForSeed)
{
    const Mesh mesh(8, 8);
    const AppProfile p = parsecProfile("fluidanimate");
    const auto a = generateTrace(mesh, p, 500, 42);
    const auto b = generateTrace(mesh, p, 500, 42);
    EXPECT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(TraceGen, DifferentSeedsDiffer)
{
    const Mesh mesh(8, 8);
    const AppProfile p = parsecProfile("fluidanimate");
    const auto a = generateTrace(mesh, p, 500, 1);
    const auto b = generateTrace(mesh, p, 500, 2);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = !(a[i] == b[i]);
    EXPECT_TRUE(differs);
}

TEST(TraceGen, EventsAreSortedAndValid)
{
    const Mesh mesh(8, 8);
    const AppProfile p = parsecProfile("canneal");
    const auto events = generateTrace(mesh, p, 1000, 7);
    ASSERT_FALSE(events.empty());
    std::int64_t last = -1;
    for (const auto& ev : events) {
        EXPECT_GE(ev.cycle, last);
        last = ev.cycle;
        EXPECT_GE(ev.src, 0);
        EXPECT_LT(ev.src, 64);
        EXPECT_GE(ev.dest, 0);
        EXPECT_LT(ev.dest, 64);
        EXPECT_NE(ev.src, ev.dest);
        EXPECT_GE(ev.size, p.minPacket);
        EXPECT_LE(ev.size, p.maxPacket);
    }
}

TEST(TraceGen, LoadTracksProfileIntensity)
{
    const Mesh mesh(8, 8);
    const auto light = generateTrace(
        mesh, parsecProfile("blackscholes"), 2000, 3);
    const auto heavy = generateTrace(
        mesh, parsecProfile("fluidanimate"), 2000, 3);
    EXPECT_GT(heavy.size(), 3 * light.size());
}

TEST(TraceGen, AllProfilesPresent)
{
    const auto profiles = parsecProfiles();
    EXPECT_EQ(profiles.size(), 10u);
    for (const auto& p : profiles) {
        EXPECT_GT(p.onLoad, 0.0);
        EXPECT_GE(p.sharedFraction, 0.0);
        EXPECT_LE(p.sharedFraction, 1.0);
        // Round-trip by name.
        EXPECT_EQ(parsecProfile(p.name).name, p.name);
    }
    EXPECT_EXIT((void)parsecProfile("doom"), testing::ExitedWithCode(1),
                "unknown PARSEC");
}

TEST(TraceGen, MergePreservesOrderAndCount)
{
    const Mesh mesh(4, 4);
    const auto a =
        generateTrace(mesh, parsecProfile("canneal"), 300, 1);
    const auto b =
        generateTrace(mesh, parsecProfile("x264"), 300, 2);
    const auto m = mergeTraces(a, b);
    EXPECT_EQ(m.size(), a.size() + b.size());
    std::int64_t last = -1;
    for (const auto& ev : m) {
        EXPECT_GE(ev.cycle, last);
        last = ev.cycle;
    }
}

TEST_F(TraceFileTest, WriteTraceFileProducesReadableTrace)
{
    const Mesh mesh(4, 4);
    const std::string path = makePath("gen");
    const auto count = writeTraceFile(
        path, mesh, parsecProfile("dedup"), 500, 11);
    TraceReader r(path);
    EXPECT_EQ(r.readAll().size(), count);
}

} // namespace
} // namespace footprint
