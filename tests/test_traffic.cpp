/**
 * @file
 * Unit tests for traffic patterns, packet-size distributions, and the
 * Bernoulli injection process.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/rng.hpp"
#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"

namespace footprint {
namespace {

TEST(UniformPattern, NeverSelectsSelf)
{
    const Mesh mesh(8, 8);
    UniformPattern p(mesh);
    Rng rng(1);
    for (int src = 0; src < 64; ++src) {
        for (int i = 0; i < 200; ++i) {
            const int d = p.dest(src, rng);
            EXPECT_NE(d, src);
            EXPECT_GE(d, 0);
            EXPECT_LT(d, 64);
        }
    }
}

TEST(UniformPattern, CoversAllDestinations)
{
    const Mesh mesh(4, 4);
    UniformPattern p(mesh);
    Rng rng(2);
    std::set<int> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(p.dest(0, rng));
    EXPECT_EQ(seen.size(), 15u); // everything but the source
}

TEST(TransposePattern, MapsCoordinates)
{
    const Mesh mesh(4, 4);
    TransposePattern p(mesh);
    Rng rng(1);
    // (1, 0) -> (0, 1): node 1 -> node 4.
    EXPECT_EQ(p.dest(1, rng), 4);
    // (3, 2) -> (2, 3): node 11 -> node 14.
    EXPECT_EQ(p.dest(11, rng), 14);
}

TEST(TransposePattern, DiagonalSendsNothing)
{
    const Mesh mesh(4, 4);
    TransposePattern p(mesh);
    Rng rng(1);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(p.dest(mesh.nodeId(Coord{i, i}), rng), -1);
}

TEST(TransposePattern, IsAnInvolution)
{
    const Mesh mesh(8, 8);
    TransposePattern p(mesh);
    Rng rng(1);
    for (int src = 0; src < 64; ++src) {
        const int d = p.dest(src, rng);
        if (d < 0)
            continue;
        EXPECT_EQ(p.dest(d, rng), src);
    }
}

TEST(TransposePattern, RequiresSquareMesh)
{
    const Mesh mesh(4, 2);
    EXPECT_EXIT(TransposePattern{mesh}, testing::ExitedWithCode(1),
                "square");
}

TEST(ShufflePattern, RotatesBits)
{
    const Mesh mesh(8, 8); // 64 nodes, 6 bits
    ShufflePattern p(mesh);
    Rng rng(1);
    // 0b000001 -> 0b000010.
    EXPECT_EQ(p.dest(1, rng), 2);
    // 0b100000 -> 0b000001.
    EXPECT_EQ(p.dest(32, rng), 1);
    // 0b101010 -> 0b010101.
    EXPECT_EQ(p.dest(42, rng), 21);
}

TEST(ShufflePattern, FixedPointsSendNothing)
{
    const Mesh mesh(8, 8);
    ShufflePattern p(mesh);
    Rng rng(1);
    EXPECT_EQ(p.dest(0, rng), -1);
    EXPECT_EQ(p.dest(63, rng), -1);
    // 0b010101 -> 0b101010 != self.
    EXPECT_EQ(p.dest(21, rng), 42);
}

TEST(ShufflePattern, IsAPermutation)
{
    const Mesh mesh(8, 8);
    ShufflePattern p(mesh);
    Rng rng(1);
    std::set<int> dests;
    for (int src = 0; src < 64; ++src) {
        const int d = p.dest(src, rng);
        if (d >= 0) {
            EXPECT_TRUE(dests.insert(d).second)
                << "duplicate destination " << d;
        }
    }
}

TEST(ShufflePattern, RequiresPowerOfTwo)
{
    const Mesh mesh(3, 4);
    EXPECT_EXIT(ShufflePattern{mesh}, testing::ExitedWithCode(1),
                "power-of-two");
}

TEST(HotspotFlows, MatchesTable3On8x8)
{
    // Table 3 (8x8): f1 n0->n63, f2 n32->n63, f3 n7->n56, f4 n39->n56,
    // f5 n63->n0, f6 n31->n0, f7 n56->n7, f8 n24->n7.
    const Mesh mesh(8, 8);
    const auto flows = defaultHotspotFlows(mesh);
    ASSERT_EQ(flows.size(), 8u);
    EXPECT_EQ(flows[0], (std::pair{0, 63}));
    EXPECT_EQ(flows[1], (std::pair{32, 63}));
    EXPECT_EQ(flows[2], (std::pair{7, 56}));
    EXPECT_EQ(flows[3], (std::pair{39, 56}));
    EXPECT_EQ(flows[4], (std::pair{63, 0}));
    EXPECT_EQ(flows[5], (std::pair{31, 0}));
    EXPECT_EQ(flows[6], (std::pair{56, 7}));
    EXPECT_EQ(flows[7], (std::pair{24, 7}));
}

TEST(HotspotFlows, EveryHotspotHasTwoFlows)
{
    for (int k : {4, 8, 16}) {
        const Mesh mesh(k, k);
        const auto flows = defaultHotspotFlows(mesh);
        std::map<int, int> per_dest;
        for (const auto& f : flows) {
            EXPECT_NE(f.first, f.second);
            ++per_dest[f.second];
        }
        EXPECT_EQ(per_dest.size(), 4u);
        for (const auto& [dest, count] : per_dest)
            EXPECT_EQ(count, 2) << "hotspot " << dest;
    }
}

TEST(PatternFactory, BuildsKnownPatterns)
{
    const Mesh mesh(8, 8);
    EXPECT_EQ(makeTrafficPattern("uniform", mesh)->name(), "uniform");
    EXPECT_EQ(makeTrafficPattern("transpose", mesh)->name(),
              "transpose");
    EXPECT_EQ(makeTrafficPattern("shuffle", mesh)->name(), "shuffle");
    EXPECT_EXIT((void)makeTrafficPattern("tornado", mesh),
                testing::ExitedWithCode(1), "unknown traffic");
}

TEST(PacketSizeDist, FixedParse)
{
    const auto d = PacketSizeDist::parse("1");
    EXPECT_DOUBLE_EQ(d.mean(), 1.0);
    EXPECT_EQ(d.minSize(), 1);
    EXPECT_EQ(d.maxSize(), 1);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(d.sample(rng), 1);
}

TEST(PacketSizeDist, UniformParse)
{
    const auto d = PacketSizeDist::parse("uniform1-6");
    EXPECT_DOUBLE_EQ(d.mean(), 3.5);
    Rng rng(1);
    std::set<int> seen;
    for (int i = 0; i < 1000; ++i) {
        const int s = d.sample(rng);
        EXPECT_GE(s, 1);
        EXPECT_LE(s, 6);
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(PacketSizeDist, ToStringRoundTrips)
{
    EXPECT_EQ(PacketSizeDist::parse("4").toString(), "4");
    EXPECT_EQ(PacketSizeDist::parse("uniform1-6").toString(),
              "uniform1-6");
}

TEST(PacketSizeDist, RejectsGarbage)
{
    EXPECT_EXIT((void)PacketSizeDist::parse("banana"),
                testing::ExitedWithCode(1), "cannot parse");
    EXPECT_EXIT((void)PacketSizeDist::parse("0"),
                testing::ExitedWithCode(1), "at least 1");
    EXPECT_EXIT((void)PacketSizeDist::parse("uniform6-1"),
                testing::ExitedWithCode(1), "invalid uniform");
}

TEST(BernoulliInjection, MatchesConfiguredFlitRate)
{
    // At packet size 4 and flit rate 0.4, packets fire at rate 0.1.
    BernoulliInjection inj(0.4, 4.0);
    Rng rng(5);
    int fires = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (inj.fires(rng))
            ++fires;
    }
    EXPECT_NEAR(static_cast<double>(fires) / n, 0.1, 0.005);
}

TEST(BernoulliInjection, ZeroRateNeverFires)
{
    BernoulliInjection inj(0.0, 1.0);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(inj.fires(rng));
}

TEST(BernoulliInjection, ProbabilityIsClamped)
{
    // Flit rate 2.0 with single-flit packets: probability clamps to 1.
    BernoulliInjection inj(2.0, 1.0);
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(inj.fires(rng));
}

} // namespace
} // namespace footprint
