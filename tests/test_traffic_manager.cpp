/**
 * @file
 * Integration tests for the traffic manager: full warmup / measure /
 * drain runs across algorithms and traffic modes, deadlock freedom
 * under load, hotspot measurement methodology, and trace replay.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "network/traffic_manager.hpp"
#include "sim/config.hpp"
#include "traffic/trace_gen.hpp"

namespace footprint {
namespace {

SimConfig
quickConfig(const std::string& routing, const std::string& traffic,
            double rate)
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    cfg.set("routing", routing);
    cfg.set("traffic", traffic);
    cfg.setDouble("injection_rate", rate);
    cfg.setInt("warmup_cycles", 300);
    cfg.setInt("measure_cycles", 800);
    cfg.setInt("drain_cycles", 4000);
    return cfg;
}

using AlgoTraffic = std::tuple<std::string, std::string>;

class RunTest : public testing::TestWithParam<AlgoTraffic>
{};

TEST_P(RunTest, LowLoadRunDrainsWithSaneStats)
{
    const auto [algo, traffic] = GetParam();
    SimConfig cfg = quickConfig(algo, traffic, 0.1);
    const RunStats stats = runExperiment(cfg);
    EXPECT_TRUE(stats.drained)
        << algo << "/" << traffic << " failed to drain at low load";
    EXPECT_FALSE(stats.saturated);
    EXPECT_GT(stats.measuredEjected, 0u);
    EXPECT_EQ(stats.measuredEjected, stats.measuredCreated);
    EXPECT_GT(stats.avgLatency(), 2.0);
    EXPECT_LT(stats.avgLatency(), 60.0);
    EXPECT_GT(stats.hops.mean(), 1.0);
}

TEST_P(RunTest, ModerateLoadDoesNotDeadlock)
{
    const auto [algo, traffic] = GetParam();
    SimConfig cfg = quickConfig(algo, traffic, 0.3);
    const RunStats stats = runExperiment(cfg);
    // The run may saturate (partially adaptive algorithms on adverse
    // patterns) but must make continuous forward progress.
    EXPECT_GT(stats.measuredEjected, stats.measuredCreated / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AlgoTrafficMatrix, RunTest,
    testing::Combine(testing::ValuesIn(allRoutingAlgorithmNames()),
                     testing::Values("uniform", "transpose",
                                     "shuffle")),
    [](const testing::TestParamInfo<AlgoTraffic>& info) {
        std::string name = std::get<0>(info.param) + "_"
            + std::get<1>(info.param);
        for (char& c : name) {
            if (c == '+')
                c = 'X';
        }
        return name;
    });

TEST(RunDeterminism, SameSeedSameResult)
{
    SimConfig cfg = quickConfig("footprint", "uniform", 0.2);
    const RunStats a = runExperiment(cfg);
    const RunStats b = runExperiment(cfg);
    EXPECT_EQ(a.measuredCreated, b.measuredCreated);
    EXPECT_EQ(a.measuredEjected, b.measuredEjected);
    EXPECT_DOUBLE_EQ(a.avgLatency(), b.avgLatency());
    EXPECT_EQ(a.counters.vcAllocFail, b.counters.vcAllocFail);
}

TEST(RunDeterminism, DifferentSeedsDiffer)
{
    SimConfig cfg = quickConfig("footprint", "uniform", 0.2);
    const RunStats a = runExperiment(cfg);
    cfg.setInt("seed", 99);
    const RunStats b = runExperiment(cfg);
    EXPECT_NE(a.avgLatency(), b.avgLatency());
}

TEST(AcceptedThroughput, TracksOfferedBelowSaturation)
{
    SimConfig cfg = quickConfig("dor", "uniform", 0.2);
    cfg.setInt("measure_cycles", 2000);
    const RunStats stats = runExperiment(cfg);
    EXPECT_NEAR(stats.acceptedFlitsPerNodeCycle, 0.2, 0.03);
}

TEST(AcceptedThroughput, VariablePacketSizesCountFlits)
{
    SimConfig cfg = quickConfig("dor", "uniform", 0.2);
    cfg.set("packet_size", "uniform1-6");
    cfg.setInt("measure_cycles", 2000);
    const RunStats stats = runExperiment(cfg);
    EXPECT_NEAR(stats.acceptedFlitsPerNodeCycle, 0.2, 0.04);
}

TEST(HotspotMode, OnlyBackgroundIsMeasured)
{
    SimConfig cfg = quickConfig("footprint", "hotspot", 0.3);
    cfg.setDouble("background_rate", 0.2);
    const RunStats stats = runExperiment(cfg);
    EXPECT_GT(stats.measuredEjected, 0u);
    // Hotspot packets were generated and ejected but never measured.
    EXPECT_GT(stats.hotspotLatency.count(), 0u);
}

TEST(HotspotMode, HotspotPressureRaisesBackgroundLatency)
{
    SimConfig low = quickConfig("dbar", "hotspot", 0.05);
    low.setDouble("background_rate", 0.2);
    SimConfig high = quickConfig("dbar", "hotspot", 0.45);
    high.setDouble("background_rate", 0.2);
    const RunStats a = runExperiment(low);
    const RunStats b = runExperiment(high);
    EXPECT_GT(b.avgLatency(), a.avgLatency());
}

TEST(TraceMode, ReplaysAllPackets)
{
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path = (dir / "fp_tm_trace.txt").string();
    const Mesh mesh(4, 4);
    AppProfile prof = parsecProfile("dedup");
    const auto count = writeTraceFile(path, mesh, prof, 500, 5);
    ASSERT_GT(count, 0u);

    SimConfig cfg = quickConfig("footprint", "trace", 0.0);
    cfg.set("trace_file", path);
    cfg.setInt("warmup_cycles", 0);
    cfg.setInt("measure_cycles", 500);
    const RunStats stats = runExperiment(cfg);
    EXPECT_TRUE(stats.drained);
    EXPECT_EQ(stats.measuredCreated, count);
    EXPECT_EQ(stats.measuredEjected, count);
    std::remove(path.c_str());
}

TEST(TraceMode, HonorsPerEventPacketSizes)
{
    // Regression: replayed packets must use the trace's size field,
    // not the synthetic packet_size distribution.
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path = (dir / "fp_tm_sizes.txt").string();
    std::int64_t total_flits = 0;
    {
        TraceWriter w(path);
        for (int i = 0; i < 20; ++i) {
            const int size = 1 + (i % 5);
            w.append(TraceEvent{i * 3, i % 16, (i + 5) % 16, size});
            total_flits += size;
        }
    }
    SimConfig cfg = quickConfig("dor", "trace", 0.0);
    cfg.set("trace_file", path);
    cfg.setInt("warmup_cycles", 0);
    cfg.setInt("measure_cycles", 100);
    const RunStats stats = runExperiment(cfg);
    EXPECT_TRUE(stats.drained);
    // Accepted throughput is measured in flits: it must reflect the
    // multi-flit sizes (window 100 cycles, 16 nodes).
    EXPECT_NEAR(stats.acceptedFlitsPerNodeCycle,
                static_cast<double>(total_flits) / (16.0 * 100.0),
                0.01);
    std::remove(path.c_str());
}

TEST(Saturation, OversubscribedRunIsFlagged)
{
    SimConfig cfg = quickConfig("dor", "transpose", 0.9);
    cfg.setInt("drain_cycles", 1500);
    const RunStats stats = runExperiment(cfg);
    EXPECT_TRUE(stats.saturated);
    EXPECT_FALSE(stats.drained);
}

TEST(PurityCounters, PopulatedUnderContention)
{
    SimConfig cfg = quickConfig("footprint", "uniform", 0.35);
    const RunStats stats = runExperiment(cfg);
    EXPECT_GT(stats.counters.vcAllocFail, 0u);
    EXPECT_GE(stats.counters.purity(), 0.0);
    EXPECT_LE(stats.counters.purity(), 1.0);
    EXPECT_GE(stats.counters.holDegree(), 0.0);
}

} // namespace
} // namespace footprint
