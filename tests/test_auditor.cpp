/**
 * @file
 * Tests for the runtime invariant auditor and the forensic state-dump
 * path: clean audits across all routing algorithms under saturating
 * hotspot load, fault-seeded detection latency (a leaked credit must
 * be caught within one audit interval), and dump-on-abort artifacts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "network/network.hpp"
#include "network/traffic_manager.hpp"
#include "obs/auditor.hpp"
#include "obs/run_metadata.hpp"
#include "obs/state_dump.hpp"
#include "sim/config.hpp"
#include "sim/log.hpp"

namespace footprint {
namespace {

SimConfig
meshConfig()
{
    SimConfig cfg = defaultConfig();
    cfg.setInt("mesh_width", 4);
    cfg.setInt("mesh_height", 4);
    cfg.setInt("num_vcs", 4);
    return cfg;
}

std::string
readFile(const std::filesystem::path& path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ------------------------------------------------ clean-network runs

class AuditAlgo : public testing::TestWithParam<std::string>
{};

TEST_P(AuditAlgo, SaturatedHotspotRunsWithZeroViolations)
{
    SimConfig cfg = meshConfig();
    cfg.set("routing", GetParam());
    cfg.set("traffic", "hotspot");
    cfg.setDouble("injection_rate", 1.0); // ~2x saturation
    cfg.setDouble("background_rate", 0.9);
    cfg.setInt("warmup_cycles", 300);
    cfg.setInt("measure_cycles", 600);
    cfg.setInt("drain_cycles", 1500);
    cfg.setBool("audit", true);
    cfg.setInt("audit_interval", 250);

    const RunStats stats = runExperiment(cfg);
    EXPECT_EQ(stats.auditViolations, 0u)
        << GetParam() << " violated invariants under saturation";
    // Saturation is congestion, never deadlock, for every algorithm.
    if (!stats.drained) {
        EXPECT_EQ(stats.stallClass, "tree_saturation") << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AuditAlgo,
                         testing::Values("dor", "oddeven", "dbar",
                                         "footprint"));

// ------------------------------------------------ fault seeding

TEST(Auditor, LeakedCreditCaughtWithinOneAuditInterval)
{
    SimConfig cfg = meshConfig();
    Network net(cfg);

    InvariantAuditor::Params params;
    params.interval = 100;
    InvariantAuditor auditor(net, params);

    // Light traffic so the audited state is not trivially empty.
    std::uint64_t id = 1;
    for (int node = 0; node < 4; ++node) {
        Packet p;
        p.id = id++;
        p.src = node;
        p.dest = 15 - node;
        p.size = 3;
        p.createTime = 0;
        net.endpoint(node).enqueue(p);
    }

    constexpr std::int64_t kLeakCycle = 150;
    std::int64_t caught_at = -1;
    for (std::int64_t cycle = 0; cycle < 300; ++cycle) {
        net.step(cycle);
        if (cycle == kLeakCycle)
            net.router(5).debugLeakCredit(portOf(Dir::East), 1);
        auditor.tick(cycle);
        if (caught_at < 0 && !auditor.clean())
            caught_at = cycle;
    }

    ASSERT_GT(auditor.auditsRun(), 0u);
    ASSERT_FALSE(auditor.clean());
    // Detection latency: no later than the first audit after the leak.
    ASSERT_GE(caught_at, kLeakCycle);
    EXPECT_LE(caught_at, kLeakCycle + params.interval);

    ASSERT_FALSE(auditor.violations().empty());
    const auto& v = auditor.violations().front();
    EXPECT_EQ(v.check, "credit_conservation");
    EXPECT_EQ(v.node, 5);
    EXPECT_NE(v.toString().find("credit_conservation"),
              std::string::npos);
}

TEST(Auditor, CleanIdleNetworkAuditsClean)
{
    SimConfig cfg = meshConfig();
    Network net(cfg);
    InvariantAuditor::Params params;
    InvariantAuditor auditor(net, params);
    EXPECT_EQ(auditor.auditNow(0), 0u);
    EXPECT_TRUE(auditor.clean());
    EXPECT_EQ(auditor.auditsRun(), 1u);
}

// ------------------------------------------------ forensic dumps

TEST(StateDump, SaturatedRunWithDumpOnAbortWritesSchemaValidFile)
{
    namespace fs = std::filesystem;
    const fs::path path =
        fs::temp_directory_path() / "fp_test_state_dump.json";
    fs::remove(path);

    SimConfig cfg = meshConfig();
    cfg.set("traffic", "hotspot");
    cfg.setDouble("injection_rate", 1.0);
    cfg.setDouble("background_rate", 0.9);
    cfg.setInt("warmup_cycles", 200);
    cfg.setInt("measure_cycles", 400);
    cfg.setInt("drain_cycles", 800);
    cfg.setBool("audit", true);
    cfg.setBool("dump_on_abort", true);
    cfg.set("dump_path", path.string());

    const RunStats stats = runExperiment(cfg);
    ASSERT_FALSE(stats.drained);
    EXPECT_EQ(stats.stateDumpPath, path.string());
    ASSERT_TRUE(fs::exists(path));

    const std::string dump = readFile(path);
    EXPECT_EQ(dump.rfind("{\"schema\":\"footprint.state_dump/1\"", 0),
              0u);
    EXPECT_NE(dump.find("\"reason\":"), std::string::npos);
    EXPECT_NE(dump.find("\"stall\":{\"class\":\"tree_saturation\""),
              std::string::npos);
    EXPECT_NE(dump.find("\"config_hash\":"), std::string::npos);
    EXPECT_NE(dump.find("\"routers\":["), std::string::npos);
    EXPECT_NE(dump.find("\"endpoints\":["), std::string::npos);
    EXPECT_NE(dump.find("\"channels\":["), std::string::npos);
    fs::remove(path);
}

TEST(StateDump, DrainedCleanRunWritesNoDump)
{
    namespace fs = std::filesystem;
    const fs::path path =
        fs::temp_directory_path() / "fp_test_no_dump.json";
    fs::remove(path);

    SimConfig cfg = meshConfig();
    cfg.setDouble("injection_rate", 0.05);
    cfg.setInt("warmup_cycles", 100);
    cfg.setInt("measure_cycles", 200);
    cfg.setInt("drain_cycles", 2000);
    cfg.setBool("audit", true);
    cfg.setBool("dump_on_abort", true);
    cfg.set("dump_path", path.string());

    const RunStats stats = runExperiment(cfg);
    EXPECT_TRUE(stats.drained);
    EXPECT_EQ(stats.auditViolations, 0u);
    EXPECT_TRUE(stats.stateDumpPath.empty());
    EXPECT_FALSE(fs::exists(path));
}

TEST(StateDump, PanicPathProducesDumpBeforeRethrow)
{
    // The supervisory pattern TrafficManager::run uses: catch the
    // InvariantError, serialize forensics, rethrow. Exercised here at
    // the Network level by underflowing a credit counter.
    namespace fs = std::filesystem;
    const fs::path path =
        fs::temp_directory_path() / "fp_test_panic_dump.json";
    fs::remove(path);

    SimConfig cfg = meshConfig();
    Network net(cfg);
    const RunMetadata meta = RunMetadata::fromConfig(cfg);

    bool threw = false;
    try {
        // Drain all credits of one output VC, then one more.
        for (int i = 0; i <= cfg.getInt("vc_buf_size"); ++i)
            net.router(5).debugLeakCredit(portOf(Dir::East), 1);
    } catch (const InvariantError& e) {
        threw = true;
        StateDumpContext ctx;
        ctx.cycle = 42;
        ctx.reason = std::string("panic: ") + e.what();
        ctx.meta = &meta;
        EXPECT_TRUE(dumpStateToFile(path.string(), net, ctx));
    }
    ASSERT_TRUE(threw);
    const std::string dump = readFile(path);
    EXPECT_NE(dump.find("\"reason\":\"panic: "), std::string::npos);
    EXPECT_NE(dump.find("\"cycle\":42"), std::string::npos);
    fs::remove(path);
}

TEST(StateDump, UnwritablePathWarnsInsteadOfAborting)
{
    SimConfig cfg = meshConfig();
    Network net(cfg);
    StateDumpContext ctx;
    ctx.reason = "test";
    setQuiet(true);
    EXPECT_FALSE(dumpStateToFile("/nonexistent_dir/x/y.json", net,
                                 ctx));
    setQuiet(false);
}

} // namespace
} // namespace footprint
