/**
 * @file
 * Quickstart: build the paper's baseline configuration (8x8 mesh,
 * 10 VCs, Footprint routing), run uniform random traffic at a moderate
 * load, and print the headline statistics.
 *
 * Usage: quickstart [key=value ...]
 *   e.g. quickstart routing=dbar injection_rate=0.3 traffic=transpose
 */

#include <cstdio>

#include "network/sweep.hpp"
#include "network/traffic_manager.hpp"
#include "sim/config.hpp"

int
main(int argc, char** argv)
{
    using namespace footprint;

    SimConfig cfg = defaultConfig();
    cfg.set("routing", "footprint");
    cfg.set("traffic", "uniform");
    cfg.setDouble("injection_rate", 0.2);
    cfg.parseArgs(argc, argv);

    std::printf("== Footprint NoC quickstart ==\n");
    std::printf("configuration:\n%s\n", cfg.toString().c_str());

    const RunStats stats = runExperiment(cfg);

    std::printf("results:\n");
    std::printf("  packets measured : %llu\n",
                static_cast<unsigned long long>(stats.measuredEjected));
    std::printf("  avg latency      : %.2f cycles\n", stats.avgLatency());
    std::printf("  min / max latency: %.0f / %.0f cycles\n",
                stats.latency.min(), stats.latency.max());
    std::printf("  avg hops         : %.2f\n", stats.hops.mean());
    std::printf("  offered load     : %.3f flits/node/cycle\n",
                stats.offeredFlitsPerNodeCycle);
    std::printf("  accepted load    : %.3f flits/node/cycle\n",
                stats.acceptedFlitsPerNodeCycle);
    std::printf("  drained          : %s\n",
                stats.drained ? "yes" : "NO (saturated)");
    std::printf("  blocking events  : %llu (purity %.3f)\n",
                static_cast<unsigned long long>(
                    stats.counters.vcAllocFail),
                stats.counters.purity());
    return 0;
}
