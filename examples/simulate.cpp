/**
 * @file
 * Full command-line simulator front end (the BookSim-equivalent entry
 * point): load an optional config file, apply key=value overrides, run
 * one experiment, and print a complete statistics report including the
 * latency distribution.
 *
 * Usage: simulate [config=<file>] [key=value ...] [--key value ...]
 *   e.g. simulate config=examples/configs/hotspot.cfg routing=dbar
 *        simulate traffic=shuffle injection_rate=0.42 num_vcs=8
 *
 * Telemetry flags (sugar over the telemetry_* config keys):
 *   --telemetry-out FILE    per-interval time series (CSV by default)
 *   --telemetry-format FMT  csv | jsonl
 *   --sample-interval N     cycles between samples (default 100)
 *   --trace-packets N       JSONL lifecycle trace of packets 1..N
 *   --trace-out FILE        trace path (default trace.jsonl)
 *
 * Observability flags (take no value; see DESIGN.md):
 *   --audit                 periodic invariant audits + watchdog
 *   --dump-on-abort         forensic state dump on abort/violation
 *   --chrome-trace          chrome://tracing timeline (trace.json)
 */

#include <cstdio>
#include <string>

#include "metrics/purity.hpp"
#include "network/traffic_manager.hpp"
#include "sim/config.hpp"
#include "sim/log.hpp"

namespace {

/** Map "--some-flag" to its config key, e.g. "some_flag". */
std::string
flagToKey(const std::string& flag)
{
    std::string key = flag.substr(2);
    for (char& c : key) {
        if (c == '-')
            c = '_';
    }
    return key;
}

/** Boolean switches that take no value argument. */
bool
isBareFlag(const std::string& key)
{
    return key == "audit" || key == "dump_on_abort"
        || key == "chrome_trace";
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace footprint;

    SimConfig cfg = defaultConfig();
    // A config= argument loads a file first; later key=value overrides
    // win, matching BookSim's "config file then overrides" convention.
    // "--key value" flags are equivalent to "key=value" with dashes
    // mapped to underscores.
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg.rfind("config=", 0) == 0) {
            cfg.loadFile(arg.substr(7));
        } else if (arg.rfind("--", 0) == 0) {
            const std::string key = flagToKey(arg);
            if (isBareFlag(key)) {
                cfg.set(key, "true");
                continue;
            }
            if (key.empty() || i + 1 >= argc)
                fatal("flag " + arg + " needs a value");
            cfg.set(key, argv[++i]);
        } else if (!cfg.parseAssignment(arg)) {
            fatal("arguments must be key=value or --key value, got: "
                  + arg);
        }
    }
    cfg.warnUnknownKeys();

    std::printf("== footprint-noc simulator ==\n%s\n",
                cfg.toString().c_str());

    RunStats stats;
    try {
        stats = runExperiment(cfg);
    } catch (const InvariantError& e) {
        std::fprintf(stderr,
                     "simulate: aborted on violated invariant: %s "
                     "(%s:%d)\n",
                     e.what(), e.file(), e.line());
        if (cfg.getBool("dump_on_abort")) {
            std::fprintf(stderr, "simulate: forensic state dump: %s\n",
                         cfg.getStr("dump_path").c_str());
        }
        return 2;
    }

    std::printf("--- results ---\n");
    std::printf("cycles run               : %lld\n",
                static_cast<long long>(stats.cyclesRun));
    std::printf("measured packets         : %llu created, %llu "
                "ejected\n",
                static_cast<unsigned long long>(stats.measuredCreated),
                static_cast<unsigned long long>(stats.measuredEjected));
    std::printf("status                   : %s\n",
                stats.drained ? "drained" : "SATURATED (not drained)");
    std::printf("offered / accepted load  : %.3f / %.3f "
                "flits/node/cycle\n",
                stats.offeredFlitsPerNodeCycle,
                stats.acceptedFlitsPerNodeCycle);
    std::printf("packet latency           : avg %.2f  min %.0f  "
                "max %.0f  stddev %.2f\n",
                stats.latency.mean(), stats.latency.min(),
                stats.latency.max(), stats.latency.stddev());
    std::printf("latency percentiles      : p50 %.0f  p90 %.0f  "
                "p99 %.0f\n",
                stats.latencyHist.percentile(0.50),
                stats.latencyHist.percentile(0.90),
                stats.latencyHist.percentile(0.99));
    std::printf("hops                     : avg %.2f  max %.0f\n",
                stats.hops.mean(), stats.hops.max());
    if (stats.hotspotLatency.count() > 0) {
        std::printf("hotspot-class latency    : avg %.2f over %llu "
                    "packets\n",
                    stats.hotspotLatency.mean(),
                    static_cast<unsigned long long>(
                        stats.hotspotLatency.count()));
    }
    std::printf("VC allocation            : %llu grants, %llu "
                "blocking events\n",
                static_cast<unsigned long long>(
                    stats.counters.vcAllocSuccess),
                static_cast<unsigned long long>(
                    stats.counters.vcAllocFail));
    std::printf("purity of blocking       : %.3f (HoL degree %.0f)\n",
                stats.counters.purity(), stats.counters.holDegree());
    const std::string ts_out = cfg.getStr("telemetry_out");
    if (!ts_out.empty()) {
        std::printf("telemetry time series    : %s (every %lld "
                    "cycles)\n",
                    ts_out.c_str(),
                    static_cast<long long>(
                        cfg.getInt("sample_interval")));
    }
    if (cfg.getInt("trace_packets") > 0) {
        const std::string trace_out = cfg.getStr("trace_out");
        std::printf("packet lifecycle trace   : %s (packets 1..%lld)\n",
                    trace_out.empty() ? "trace.jsonl"
                                      : trace_out.c_str(),
                    static_cast<long long>(
                        cfg.getInt("trace_packets")));
    }
    if (cfg.getBool("chrome_trace")) {
        const std::string chrome_out = cfg.getStr("chrome_trace_out");
        std::printf("chrome trace timeline    : %s (load in "
                    "chrome://tracing or ui.perfetto.dev)\n",
                    chrome_out.empty() ? "trace.json"
                                       : chrome_out.c_str());
    }
    if (cfg.getBool("audit")) {
        std::printf("invariant audit          : %llu violations, "
                    "%llu watchdog events\n",
                    static_cast<unsigned long long>(
                        stats.auditViolations),
                    static_cast<unsigned long long>(
                        stats.watchdogEvents));
    }
    if (!stats.drained) {
        std::printf("stall classification     : %s\n",
                    stats.stallClass.c_str());
    }
    if (!stats.stateDumpPath.empty()) {
        std::printf("forensic state dump      : %s\n",
                    stats.stateDumpPath.c_str());
    }
    // A run that violated its own invariants must not exit 0, even
    // though it completed enough to print statistics.
    return stats.auditViolations > 0 ? 3 : 0;
}
