/**
 * @file
 * Full command-line simulator front end (the BookSim-equivalent entry
 * point): load an optional config file, apply key=value overrides, run
 * one experiment, and print a complete statistics report including the
 * latency distribution.
 *
 * Usage: simulate [config=<file>] [key=value ...] [--key value ...]
 *   e.g. simulate config=examples/configs/hotspot.cfg routing=dbar
 *        simulate traffic=shuffle injection_rate=0.42 num_vcs=8
 *
 * Telemetry flags (sugar over the telemetry_* config keys):
 *   --telemetry-out FILE    per-interval time series (CSV by default)
 *   --telemetry-format FMT  csv | jsonl
 *   --sample-interval N     cycles between samples (default 100)
 *   --trace-packets N       JSONL lifecycle trace of packets 1..N
 *   --trace-out FILE        trace path (default trace.jsonl)
 *
 * Observability flags (take no value; see DESIGN.md):
 *   --audit                 periodic invariant audits + watchdog
 *   --dump-on-abort         forensic state dump on abort/violation
 *   --chrome-trace          chrome://tracing timeline (trace.json)
 *   --profile               per-phase wall-time self-profile
 *                           (profile.json, footprint.profile/1)
 *   --heatmap               windowed spatial heatmaps (heatmap.json,
 *                           footprint.heatmap/1; render with
 *                           tools/render_heatmap.py)
 *   --timeseries            windowed flight-recorder JSONL stream
 *                           (timeseries.jsonl, footprint.timeseries/1;
 *                           render with tools/render_timeseries.py)
 *   --console               live rate-limited status line on stderr
 *
 * Steady state (DESIGN.md §15): the flight recorder's online detector
 * reports the convergence cycle and flags measurement windows that
 * opened too early; warmup=auto ends warmup at convergence (capped by
 * warmup_max_cycles).
 *
 * Sweep mode (rate ladder instead of a single run; see DESIGN.md §11):
 *   --sweep RATES           offered rates, "0.05,0.1,0.2" or lo:hi:n
 *   --jobs N                worker threads (default: all hardware
 *                           threads); results are identical for any N
 *   --bench-out FILE        write a footprint.bench/1 JSON artifact
 */

#include <cstdio>
#include <memory>
#include <string>

#include "exec/exec_context.hpp"
#include "exec/sweep_runner.hpp"
#include "metrics/purity.hpp"
#include "network/traffic_manager.hpp"
#include "obs/console.hpp"
#include "sim/config.hpp"
#include "sim/log.hpp"

namespace {

/** Map "--some-flag" to its config key, e.g. "some_flag". */
std::string
flagToKey(const std::string& flag)
{
    std::string key = flag.substr(2);
    for (char& c : key) {
        if (c == '-')
            c = '_';
    }
    return key;
}

/** Boolean switches that take no value argument. */
bool
isBareFlag(const std::string& key)
{
    return key == "audit" || key == "dump_on_abort"
        || key == "chrome_trace" || key == "profile"
        || key == "heatmap" || key == "timeseries"
        || key == "console";
}

/**
 * Rate-ladder mode: run the configured (routing, traffic, mesh) cell
 * at every rate of --sweep as parallel jobs, print the curve, and
 * optionally export the footprint.bench/1 artifact.
 */
int
runSweepMode(footprint::SimConfig cfg)
{
    using namespace footprint;

    SweepSpec spec;
    spec.rates = parseRateSpec(cfg.getStr("sweep_rates"));
    spec.routings = {cfg.getStr("routing")};
    spec.meshes = {
        {static_cast<int>(cfg.getInt("mesh_width")),
         static_cast<int>(cfg.getInt("mesh_height"))}};
    spec.traffics = {cfg.getStr("traffic")};
    spec.seeds = static_cast<int>(cfg.getInt("sweep_seeds"));

    const auto jobs = static_cast<unsigned>(cfg.getInt("jobs"));
    const std::string out = cfg.getStr("bench_out");
    const bool console = cfg.getBool("console");
    // Execution knobs are not part of the experiment identity: the
    // artifact must not depend on --jobs/--bench-out/--console (the
    // CI determinism gate compares payloads across thread counts).
    cfg.setInt("jobs", 0);
    cfg.set("bench_out", "");
    cfg.setBool("console", false);
    spec.base = cfg;

    ExecContext ctx(jobs);
    SweepRunner runner(ctx);
    std::unique_ptr<RunConsole> progress;
    if (console) {
        progress = std::make_unique<RunConsole>(
            static_cast<int>(cfg.getInt("console_interval_ms")));
        runner.attachConsole(progress.get());
    }
    const SweepResult result = runner.run(spec);
    if (progress)
        progress->close();

    std::vector<CurvePoint> points;
    for (const JobResult& r : result.jobs) {
        if (!r.probe)
            points.push_back(r.point);
    }
    const std::string label =
        cfg.getStr("routing") + "/" + cfg.getStr("traffic");
    std::printf("--- sweep results ---\n%s",
                formatCurve(label, points).c_str());
    for (const SaturationPoint& sp : result.saturation) {
        std::printf("saturation throughput    : %.3f "
                    "(zero-load latency %.2f)\n",
                    sp.throughput, sp.zeroLoadLatency);
    }
    std::printf("wall clock               : %.2f s (%zu jobs, "
                "%.2f jobs/s, --jobs %u)\n",
                result.wallSeconds, result.jobs.size(),
                result.jobsPerSec, ctx.jobs());
    if (!out.empty()) {
        writeBenchResults(out, spec, result);
        std::printf("bench results            : %s "
                    "(schema footprint.bench/1)\n",
                    out.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace footprint;

    SimConfig cfg = defaultConfig();
    cfg.set("sweep_rates", ""); // non-empty switches to sweep mode
    cfg.setInt("sweep_seeds", 1);
    cfg.setInt("jobs", 0); // 0 = all hardware threads
    cfg.set("bench_out", "");
    // A config= argument loads a file first; later key=value overrides
    // win, matching BookSim's "config file then overrides" convention.
    // "--key value" flags are equivalent to "key=value" with dashes
    // mapped to underscores; "--sweep" is sugar for "sweep_rates".
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg.rfind("config=", 0) == 0) {
            cfg.loadFile(arg.substr(7));
        } else if (arg.rfind("--", 0) == 0) {
            std::string key = flagToKey(arg);
            if (key == "sweep")
                key = "sweep_rates";
            if (isBareFlag(key)) {
                cfg.set(key, "true");
                continue;
            }
            if (key.empty() || i + 1 >= argc)
                fatal("flag " + arg + " needs a value");
            cfg.set(key, argv[++i]);
        } else if (!cfg.parseAssignment(arg)) {
            fatal("arguments must be key=value or --key value, got: "
                  + arg);
        }
    }
    cfg.warnUnknownKeys();

    std::printf("== footprint-noc simulator ==\n%s\n",
                cfg.toString().c_str());

    if (!cfg.getStr("sweep_rates").empty())
        return runSweepMode(cfg);

    RunStats stats;
    try {
        stats = runExperiment(cfg);
    } catch (const InvariantError& e) {
        std::fprintf(stderr,
                     "simulate: aborted on violated invariant: %s "
                     "(%s:%d)\n",
                     e.what(), e.file(), e.line());
        if (cfg.getBool("dump_on_abort")) {
            std::fprintf(stderr, "simulate: forensic state dump: %s\n",
                         cfg.getStr("dump_path").c_str());
        }
        return 2;
    }

    std::printf("--- results ---\n");
    std::printf("cycles run               : %lld (%lld skipped)\n",
                static_cast<long long>(stats.cyclesRun),
                static_cast<long long>(stats.cyclesSkipped));
    std::printf("measured packets         : %llu created, %llu "
                "ejected\n",
                static_cast<unsigned long long>(stats.measuredCreated),
                static_cast<unsigned long long>(stats.measuredEjected));
    std::printf("status                   : %s\n",
                stats.drained ? "drained" : "SATURATED (not drained)");
    std::printf("offered / accepted load  : %.3f / %.3f "
                "flits/node/cycle\n",
                stats.offeredFlitsPerNodeCycle,
                stats.acceptedFlitsPerNodeCycle);
    std::printf("packet latency           : avg %.2f  min %.0f  "
                "max %.0f  stddev %.2f\n",
                stats.latency.mean(), stats.latency.min(),
                stats.latency.max(), stats.latency.stddev());
    std::printf("latency percentiles      : p50 %.0f  p90 %.0f  "
                "p99 %.0f\n",
                stats.latencyHist.percentile(0.50),
                stats.latencyHist.percentile(0.90),
                stats.latencyHist.percentile(0.99));
    std::printf("latency tail (hdr)       : p99 %llu  p999 %llu  "
                "max %llu\n",
                static_cast<unsigned long long>(
                    stats.latencyHdr.percentile(0.99)),
                static_cast<unsigned long long>(
                    stats.latencyHdr.percentile(0.999)),
                static_cast<unsigned long long>(
                    stats.latencyHdr.max()));
    std::printf("hops                     : avg %.2f  max %.0f\n",
                stats.hops.mean(), stats.hops.max());
    if (stats.hotspotLatency.count() > 0) {
        std::printf("hotspot-class latency    : avg %.2f over %llu "
                    "packets (p99 %llu, p999 %llu)\n",
                    stats.hotspotLatency.mean(),
                    static_cast<unsigned long long>(
                        stats.hotspotLatency.count()),
                    static_cast<unsigned long long>(
                        stats.hotspotLatencyHdr.percentile(0.99)),
                    static_cast<unsigned long long>(
                        stats.hotspotLatencyHdr.percentile(0.999)));
    }
    std::printf("VC allocation            : %llu grants, %llu "
                "blocking events\n",
                static_cast<unsigned long long>(
                    stats.counters.vcAllocSuccess),
                static_cast<unsigned long long>(
                    stats.counters.vcAllocFail));
    std::printf("purity of blocking       : %.3f (HoL degree %.0f)\n",
                stats.counters.purity(), stats.counters.holDegree());
    const std::string ts_out = cfg.getStr("telemetry_out");
    if (!ts_out.empty()) {
        std::printf("telemetry time series    : %s (every %lld "
                    "cycles)\n",
                    ts_out.c_str(),
                    static_cast<long long>(
                        cfg.getInt("sample_interval")));
    }
    if (cfg.getInt("trace_packets") > 0) {
        const std::string trace_out = cfg.getStr("trace_out");
        std::printf("packet lifecycle trace   : %s (packets 1..%lld)\n",
                    trace_out.empty() ? "trace.jsonl"
                                      : trace_out.c_str(),
                    static_cast<long long>(
                        cfg.getInt("trace_packets")));
    }
    if (cfg.getBool("chrome_trace")) {
        const std::string chrome_out = cfg.getStr("chrome_trace_out");
        std::printf("chrome trace timeline    : %s (load in "
                    "chrome://tracing or ui.perfetto.dev)\n",
                    chrome_out.empty() ? "trace.json"
                                       : chrome_out.c_str());
    }
    if (cfg.getBool("audit")) {
        std::printf("invariant audit          : %llu violations, "
                    "%llu watchdog events\n",
                    static_cast<unsigned long long>(
                        stats.auditViolations),
                    static_cast<unsigned long long>(
                        stats.watchdogEvents));
    }
    if (!stats.drained) {
        std::printf("stall classification     : %s\n",
                    stats.stallClass.c_str());
    }
    // The recorder ran (timeseries stream and/or warmup=auto): report
    // the detector verdict and any tree-saturation onset it saw.
    if (cfg.getBool("timeseries")
        || cfg.getStr("warmup") == "auto") {
        if (stats.steadyStateCycle >= 0) {
            std::printf("steady state             : detected at cycle "
                        "%lld (warmup used %lld%s)\n",
                        static_cast<long long>(stats.steadyStateCycle),
                        static_cast<long long>(stats.warmupUsed),
                        stats.measuredBeforeSteady
                            ? ", MEASURED BEFORE STEADY"
                            : "");
        } else {
            std::printf("steady state             : NOT reached "
                        "(warmup used %lld)\n",
                        static_cast<long long>(stats.warmupUsed));
        }
        if (stats.saturationOnsetCycle >= 0) {
            std::printf("saturation onset         : cycle %lld "
                        "(accepted lagged offered with growing "
                        "backlog)\n",
                        static_cast<long long>(
                            stats.saturationOnsetCycle));
        }
    }
    if (!stats.timeseriesPath.empty()) {
        std::printf("timeseries stream        : %s (schema "
                    "footprint.timeseries/1; "
                    "tools/render_timeseries.py)\n",
                    stats.timeseriesPath.c_str());
    }
    if (!stats.stateDumpPath.empty()) {
        std::printf("forensic state dump      : %s\n",
                    stats.stateDumpPath.c_str());
    }
    if (!stats.profilePath.empty()) {
        std::printf("self-profile             : %s (schema "
                    "footprint.profile/1)\n",
                    stats.profilePath.c_str());
    }
    if (!stats.heatmapPath.empty()) {
        std::printf("spatial heatmap          : %s (schema "
                    "footprint.heatmap/1; tools/render_heatmap.py)\n",
                    stats.heatmapPath.c_str());
    }
    // A run that violated its own invariants must not exit 0, even
    // though it completed enough to print statistics.
    return stats.auditViolations > 0 ? 3 : 0;
}
