/**
 * @file
 * Trace-driven workflow demo: generate a synthetic PARSEC-like trace
 * (or co-running pair), write it to a file, replay it through the
 * network, and report latency and blocking statistics — the Fig. 10
 * methodology end to end.
 *
 * Usage: trace_replay [app=<name>] [app2=<name>] [key=value ...]
 *   e.g. trace_replay app=fluidanimate app2=ferret routing=footprint
 */

#include <cstdio>
#include <filesystem>

#include "network/traffic_manager.hpp"
#include "sim/log.hpp"
#include "sim/config.hpp"
#include "traffic/trace_gen.hpp"

int
main(int argc, char** argv)
{
    using namespace footprint;
    setQuiet(true);

    SimConfig cfg = defaultConfig();
    cfg.set("app", "fluidanimate");
    cfg.set("app2", "");
    cfg.setInt("trace_length", 4000);
    cfg.parseArgs(argc, argv);

    const Mesh mesh(static_cast<int>(cfg.getInt("mesh_width")),
                    static_cast<int>(cfg.getInt("mesh_height")));
    const auto length = cfg.getInt("trace_length");
    const std::string app = cfg.getStr("app");
    const std::string app2 = cfg.getStr("app2");

    // Build the trace file.
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path = (dir / "fp_example_trace.txt").string();
    std::uint64_t events = 0;
    if (app2.empty()) {
        events = writeTraceFile(path, mesh, parsecProfile(app), length,
                                17);
    } else {
        const auto a =
            generateTrace(mesh, parsecProfile(app), length, 17);
        const auto b =
            generateTrace(mesh, parsecProfile(app2), length, 29);
        TraceWriter writer(path);
        writer.comment("co-running " + app + " + " + app2);
        for (const auto& ev : mergeTraces(a, b))
            writer.append(ev);
        events = writer.eventCount();
    }
    std::printf("== Trace replay: %s%s (%llu packets over %lld "
                "cycles) ==\n\n",
                app.c_str(),
                app2.empty() ? "" : (" + " + app2).c_str(),
                static_cast<unsigned long long>(events),
                static_cast<long long>(length));

    // Replay under each adaptive algorithm.
    for (const char* algo : {"dbar", "footprint"}) {
        SimConfig run_cfg = cfg;
        run_cfg.set("traffic", "trace");
        run_cfg.set("trace_file", path);
        run_cfg.set("routing", algo);
        run_cfg.setInt("warmup_cycles", 0);
        run_cfg.setInt("measure_cycles", length);
        const RunStats stats = runExperiment(run_cfg);
        std::printf("%-10s latency %8.2f cycles | purity %.3f | "
                    "blocking %8llu | HoL degree %10.0f%s\n",
                    algo, stats.avgLatency(), stats.counters.purity(),
                    static_cast<unsigned long long>(
                        stats.counters.vcAllocFail),
                    stats.counters.holDegree(),
                    stats.saturated ? "  [not drained]" : "");
    }
    std::remove(path.c_str());
    return 0;
}
