/**
 * @file
 * Parallel sweep front end: expand a (rates x routings x meshes x
 * traffics x seeds) grid into independent jobs, run them on a
 * fixed-size thread pool, print per-cell saturation throughput, and
 * export the schema-versioned footprint.bench/1 artifact the CI
 * benchmark gate consumes.
 *
 * Usage: sweep [key=value ...] [--jobs N] [--out FILE] [--console]
 *
 * Sweep dimensions (key=value):
 *   sweep_rates=0.05,0.1,0.2   or lo:hi:count, e.g. 0.05:0.4:6
 *   sweep_routings=dor,oddeven,dbar,footprint
 *   sweep_meshes=8x8,16x16     ("8" means square 8x8)
 *   sweep_traffics=uniform,transpose,shuffle
 *   sweep_seeds=2              seed replicates per cell
 *
 * Every other key=value overrides the base SimConfig (cycle counts,
 * VCs, seed, ...). --jobs 0 (the default) uses all hardware threads;
 * results are bit-identical for any --jobs value.
 */

#include <cstdio>
#include <memory>
#include <string>

#include "exec/exec_context.hpp"
#include "exec/sweep_runner.hpp"
#include "obs/console.hpp"
#include "sim/config.hpp"
#include "sim/log.hpp"

int
main(int argc, char** argv)
{
    using namespace footprint;

    SimConfig cfg = defaultConfig();
    cfg.set("sweep_rates", "0.05:0.4:6");
    cfg.set("sweep_routings", "dor,oddeven,dbar,footprint");
    cfg.set("sweep_meshes", "8x8");
    cfg.set("sweep_traffics", "uniform");
    cfg.setInt("sweep_seeds", 1);
    cfg.setInt("jobs", 0);
    cfg.set("bench_out", "");

    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg == "--jobs" && i + 1 < argc) {
            cfg.set("jobs", argv[++i]);
        } else if (arg == "--out" && i + 1 < argc) {
            cfg.set("bench_out", argv[++i]);
        } else if (arg == "--console") {
            cfg.setBool("console", true);
        } else if (arg.rfind("config=", 0) == 0) {
            cfg.loadFile(arg.substr(7));
        } else if (!cfg.parseAssignment(arg)) {
            fatal("arguments must be key=value, --jobs N, --out FILE, "
                  "or --console, got: " + arg);
        }
    }
    cfg.warnUnknownKeys();
    setQuiet(true);

    SweepSpec spec;
    spec.rates = parseRateSpec(cfg.getStr("sweep_rates"));
    spec.routings = splitList(cfg.getStr("sweep_routings"));
    for (const std::string& m : splitList(cfg.getStr("sweep_meshes")))
        spec.meshes.push_back(parseMeshSize(m));
    spec.traffics = splitList(cfg.getStr("sweep_traffics"));
    spec.seeds = static_cast<int>(cfg.getInt("sweep_seeds"));

    const auto jobs = static_cast<unsigned>(cfg.getInt("jobs"));
    const std::string out = cfg.getStr("bench_out");
    const bool console = cfg.getBool("console");
    // Execution knobs are not part of the experiment's identity: the
    // artifact (config_hash included) must be byte-identical whatever
    // --jobs/--out/--console were, which is exactly what the CI
    // determinism gate asserts.
    cfg.setInt("jobs", 0);
    cfg.set("bench_out", "");
    cfg.setBool("console", false);
    spec.base = cfg;
    ExecContext ctx(jobs);
    SweepRunner runner(ctx);
    std::unique_ptr<RunConsole> progress;
    if (console) {
        progress = std::make_unique<RunConsole>(
            static_cast<int>(cfg.getInt("console_interval_ms")));
        runner.attachConsole(progress.get());
    }

    const std::size_t total = SweepRunner::expand(spec).size();
    std::printf("== footprint-noc sweep ==\n");
    std::printf("grid: %zu rates x %zu routings x %zu meshes x %zu "
                "traffics x %d seeds -> %zu jobs on %u threads\n",
                spec.rates.size(), spec.routings.size(),
                spec.meshes.size(), spec.traffics.size(), spec.seeds,
                total, ctx.jobs());

    const SweepResult result = runner.run(spec);
    if (progress)
        progress->close();

    std::printf("\n%-8s %-16s %-12s %12s %16s\n", "mesh", "routing",
                "traffic", "saturation", "zero-load lat");
    for (const SaturationPoint& sp : result.saturation) {
        std::printf("%-8s %-16s %-12s %12.3f %16.2f\n",
                    sp.mesh.label().c_str(), sp.routing.c_str(),
                    sp.traffic.c_str(), sp.throughput,
                    sp.zeroLoadLatency);
    }
    std::printf("\nwall clock: %.2f s  (%zu jobs, %.2f jobs/s, "
                "--jobs %u)\n",
                result.wallSeconds, result.jobs.size(),
                result.jobsPerSec, ctx.jobs());

    if (!out.empty()) {
        writeBenchResults(out, spec, result);
        std::printf("bench results: %s (schema footprint.bench/1)\n",
                    out.c_str());
    }
    return 0;
}
